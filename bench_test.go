package seesaw_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, each invoking the same experiment generator the
// cmd/seesaw-figures tool uses (at benchmark-friendly scale), plus
// microbenchmarks of the hot simulator paths.
//
//	go test -bench=. -benchmem
//
// Benchmarks print their headline result via b.ReportMetric where one
// number summarizes the experiment (e.g. avg % improvement), so `go test
// -bench` output doubles as a quick-look reproduction of the paper.

import (
	"context"
	"strconv"
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/core"
	"seesaw/internal/experiments"
	"seesaw/internal/machine"
	"seesaw/internal/metrics"
	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/tft"
	"seesaw/internal/workload"
)

// benchOpts keeps experiment benchmarks tractable: a representative
// workload subset and reduced reference counts.
func benchOpts() experiments.Options {
	return experiments.Options{
		Refs:      30_000,
		Seed:      42,
		Workloads: []string{"redis", "nutch", "olio", "mcf"},
	}
}

// runExperiment is the common body: regenerate the table b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig02a_MPKIvsAssoc(b *testing.B)          { runExperiment(b, "fig2a") }
func BenchmarkFig02b_LatencyvsAssoc(b *testing.B)       { runExperiment(b, "fig2b") }
func BenchmarkFig02c_EnergyvsAssoc(b *testing.B)        { runExperiment(b, "fig2c") }
func BenchmarkFig03_SuperpageCoverage(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkTable1_LookupAnatomy(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkTable2_SystemParams(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkTable3_CacheLatencies(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkFig07_RuntimeOoOPerWorkload(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig08_RuntimeOoOSweep(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkFig09_RuntimeInOrderSweep(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10_EnergySweep(b *testing.B)           { runExperiment(b, "fig10") }
func BenchmarkFig11_EnergySplit(b *testing.B)           { runExperiment(b, "fig11") }
func BenchmarkFig12_Fragmentation(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkFig13_TFTSizing(b *testing.B)             { runExperiment(b, "fig13") }
func BenchmarkFig14_PIPTAlternatives(b *testing.B)      { runExperiment(b, "fig14") }
func BenchmarkFig15_WayPrediction(b *testing.B)         { runExperiment(b, "fig15") }

func BenchmarkAblationInsertionPolicy(b *testing.B)  { runExperiment(b, "ablation-insertion") }
func BenchmarkAblationSchedulerPolicy(b *testing.B)  { runExperiment(b, "ablation-scheduler") }
func BenchmarkAblationTFTAssociativity(b *testing.B) { runExperiment(b, "ablation-tft-assoc") }
func BenchmarkAblationSnoopyCoherence(b *testing.B)  { runExperiment(b, "ablation-snoopy") }
func BenchmarkAblation1GSuperpages(b *testing.B)     { runExperiment(b, "ablation-1g") }
func BenchmarkExtICache(b *testing.B)                { runExperiment(b, "ext-icache") }
func BenchmarkAblationPartitionCount(b *testing.B)   { runExperiment(b, "ablation-partition") }
func BenchmarkAblationPrefetch(b *testing.B)         { runExperiment(b, "ablation-prefetch") }
func BenchmarkEnergyBreakdown(b *testing.B)          { runExperiment(b, "energy-breakdown") }
func BenchmarkAblationReplacement(b *testing.B)      { runExperiment(b, "ablation-replacement") }

// BenchmarkHeadline reports the paper's headline numbers as benchmark
// metrics: average % runtime improvement and % energy saving of SEESAW
// over baseline VIPT (64KB, 1.33GHz, OoO) across the bench workloads.
func BenchmarkHeadline(b *testing.B) {
	var perf, energy float64
	for i := 0; i < b.N; i++ {
		var ps, es stats.Summary
		for _, name := range benchOpts().Workloads {
			p, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sim.Config{
				Workload: p, Seed: 42, Refs: 30_000,
				CacheKind: sim.KindBaseline, L1Size: 64 << 10,
				FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 512 << 20,
			}
			base, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg.CacheKind = sim.KindSeesaw
			see, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ps.Add(stats.PctImprovement(float64(base.Cycles), float64(see.Cycles)))
			es.Add(stats.PctImprovement(base.EnergyTotalNJ, see.EnergyTotalNJ))
		}
		perf, energy = ps.Mean(), es.Mean()
	}
	b.ReportMetric(perf, "%runtime-improvement")
	b.ReportMetric(energy, "%energy-saving")
}

// --- Runner scaling ------------------------------------------------------

// benchRunner regenerates fig7 with a fixed worker count; comparing the
// Serial and Parallel variants measures the pool's wall-clock win on
// multi-core machines (they coincide on a single-core host).
func benchRunner(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Parallel = workers
		tb, err := experiments.Run("fig7", opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("fig7 produced no rows")
		}
	}
}

func BenchmarkRunnerSerial(b *testing.B)   { benchRunner(b, 1) }
func BenchmarkRunnerParallel(b *testing.B) { benchRunner(b, 0) }

// BenchmarkRunnerSharedPoolDedup measures the cross-figure result cache:
// fig11 and energy-breakdown submit identical cells, so the second figure
// reduces straight from cache.
func BenchmarkRunnerSharedPoolDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Pool = runner.New(0)
		for _, id := range []string{"fig11", "energy-breakdown"} {
			if _, err := experiments.Run(id, opts); err != nil {
				b.Fatal(err)
			}
		}
		if st := opts.Pool.Stats(); st.CacheHits == 0 {
			b.Fatal("shared pool saw no cache hits")
		}
	}
}

// --- Microbenchmarks of the hot paths -----------------------------------

// seesawForBench builds a warmed SEESAW cache with a resident superpage
// line.
func seesawForBench(b *testing.B) (*core.Seesaw, addr.VAddr, addr.PAddr) {
	b.Helper()
	s, err := core.NewSeesaw(core.Config{
		SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33, TFT: tft.DefaultConfig(),
	})
	if err != nil {
		b.Fatal(err)
	}
	va := addr.VAddr(0x4000_0000)
	pa := addr.Translate(va, 7, addr.Page2M)
	s.OnSuperpageTLBFill(va)
	s.Fill(pa, addr.Page2M, false, false)
	return s, va, pa
}

func BenchmarkSeesawFastPathAccess(b *testing.B) {
	s, va, pa := seesawForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Access(va, pa, addr.Page2M, false); !r.Hit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkSeesawSlowPathAccess(b *testing.B) {
	s, _, _ := seesawForBench(b)
	vb := addr.VAddr(0x1234_5000)
	pb := addr.Translate(vb, 99, addr.Page4K)
	s.Fill(pb, addr.Page4K, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Access(vb, pb, addr.Page4K, false); !r.Hit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkSeesawCoherenceSnoop(b *testing.B) {
	s, _, pa := seesawForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Snoop(pa, core.SnoopPeek); !r.Hit {
			b.Fatal("unexpected snoop miss")
		}
	}
}

func BenchmarkBaselineAccess(b *testing.B) {
	v, err := core.NewBaselineVIPT(core.Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33})
	if err != nil {
		b.Fatal(err)
	}
	va := addr.VAddr(0x4000_0000)
	pa := addr.Translate(va, 7, addr.Page2M)
	v.Fill(pa, addr.Page2M, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := v.Access(va, pa, addr.Page2M, false); !r.Hit {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkMachineStepBatched measures the epoch-batched measured phase
// in isolation: one machine is built and warmed once, then every
// iteration resumes a snapshot of the warm state and runs the measured
// phase through the batched loop (pre-generated epochs, devirtualized
// dispatch). Comparing against BenchmarkSimulatorThroughput separates
// steady-state stepping speed from Build/Warmup overhead.
func BenchmarkMachineStepBatched(b *testing.B) {
	p, err := workload.ByName("redis")
	if err != nil {
		b.Fatal(err)
	}
	refs := 50_000
	cfg := machine.Config{
		Workload: p, Seed: 42, Refs: refs, WarmupRefs: 20_000,
		CacheKind: machine.KindSeesaw, L1Size: 64 << 10,
		FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 256 << 20,
	}
	ctx := context.Background()
	m, err := machine.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Warmup(ctx); err != nil {
		b.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm := snap.Resume()
		if err := mm.Measure(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkMachineStepRegistry is BenchmarkMachineStepBatched for the
// registry's interface-fallback dispatch: VESPA has no devirtualized
// fast path in machine.fastL1s, so every L1 call goes through the
// core.L1Cache interface — the path any newly registered design takes
// before (or without) earning a fast-path hook. The perf gate holds it
// to the same 20% window as the devirtualized designs, pinning the
// registry's promise that the fallback is not a structural slow lane;
// the seesaw benchmarks above, gated against their pre-registry
// baselines, pin the complementary promise that the registry cost the
// fast-path designs nothing.
func BenchmarkMachineStepRegistry(b *testing.B) {
	p, err := workload.ByName("redis")
	if err != nil {
		b.Fatal(err)
	}
	refs := 50_000
	cfg := machine.Config{
		Workload: p, Seed: 42, Refs: refs, WarmupRefs: 20_000,
		CacheKind: machine.KindVespa, L1Size: 64 << 10,
		FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 256 << 20,
	}
	ctx := context.Background()
	m, err := machine.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Warmup(ctx); err != nil {
		b.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm := snap.Resume()
		if err := mm.Measure(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkSimulatorThroughput measures whole-system simulation speed in
// references per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := workload.ByName("redis")
	if err != nil {
		b.Fatal(err)
	}
	refs := 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			Workload: p, Seed: int64(i + 1), Refs: refs,
			CacheKind: sim.KindSeesaw, L1Size: 64 << 10,
			FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 256 << 20,
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// --- Observability layer overhead ----------------------------------------

// benchMetricsSim runs one fixed whole-system simulation, with or
// without the metrics recorder, and reports references per second.
// Comparing the two variants bounds the cost of the nil-check-guarded
// emit sites sprinkled through the hot paths:
//
//	go test -bench 'BenchmarkMetrics' -benchmem
//
// The Disabled variant must allocate nothing on the metrics' account and
// run within ~1% of a build without the observability layer (the emit
// sites compile to a nil check each); the Enabled variant pays for the
// counter stores and the epoch samples.
func benchMetricsSim(b *testing.B, mcfg func() *sim.Config) {
	b.Helper()
	p, err := workload.ByName("redis")
	if err != nil {
		b.Fatal(err)
	}
	refs := 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			Workload: p, Seed: 42, Refs: refs,
			CacheKind: sim.KindSeesaw, L1Size: 64 << 10,
			FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 256 << 20,
		}
		if m := mcfg(); m != nil {
			cfg.Metrics = m.Metrics
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

func BenchmarkMetricsDisabled(b *testing.B) {
	benchMetricsSim(b, func() *sim.Config { return nil })
}

func BenchmarkMetricsEnabled(b *testing.B) {
	benchMetricsSim(b, func() *sim.Config {
		return &sim.Config{Metrics: &metrics.Config{EpochRefs: 5_000}}
	})
}

// BenchmarkRecorderDisabledSites measures the raw cost of the disabled
// emit sites themselves — a nil Recorder's Add and Emit must be free of
// allocation and nearly free of time.
func BenchmarkRecorderDisabledSites(b *testing.B) {
	var rec *metrics.Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Add(0, metrics.CtrRefs, 1)
		rec.Emit(0, metrics.EvTLBFill, uint64(i), 0, 0)
		rec.TickRef()
	}
}

// BenchmarkRecorderEnabledSites: the enabled counter store and ring
// write paths stay allocation-free too (epoch sampling, the only
// allocating step, is amortized across EpochRefs references).
func BenchmarkRecorderEnabledSites(b *testing.B) {
	rec := metrics.New(metrics.Config{EpochRefs: 1 << 30}, 4, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Add(i&3, metrics.CtrRefs, 1)
		rec.Emit(i&3, metrics.EvTLBFill, uint64(i), 0, 0)
		rec.TickRef()
	}
}

// BenchmarkWorkloadGenerator measures trace-generation speed.
func BenchmarkWorkloadGenerator(b *testing.B) {
	p, err := workload.ByName("mongo")
	if err != nil {
		b.Fatal(err)
	}
	g := workload.NewGenerator(p, 42)
	g.BindDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next(i % p.Threads)
	}
}

// sink prevents dead-code elimination in microbenches that need it.
var sink = strconv.IntSize
