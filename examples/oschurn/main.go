// Oschurn: the correctness story of Section IV-C2, live. The OS
// splinters superpages into base pages and promotes base pages into
// superpages while SEESAW caches their lines; the design must keep every
// line reachable, invalidate the TFT on invlpg, and sweep stale lines on
// promotion.
//
//	go run ./examples/oschurn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"seesaw/internal/addr"
	"seesaw/internal/core"
	"seesaw/internal/osmm"
	"seesaw/internal/physmem"
	"seesaw/internal/sim"
	"seesaw/internal/tft"
	"seesaw/internal/workload"
)

func main() {
	// --- Part 1: splintering, at the cache level -----------------------
	buddy := physmem.MustNew(64 << 20)
	mgr := osmm.NewManager(buddy, rand.New(rand.NewSource(1)), true)
	proc, err := mgr.NewProcess(1)
	if err != nil {
		log.Fatal(err)
	}
	l1, err := core.NewSeesaw(core.Config{
		SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33, TFT: tft.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Wire the OS's invlpg to the TFT, as the simulator does.
	mgr.OnInvlpg = func(asid uint16, va addr.VAddr) {
		l1.InvalidatePage(va)
		fmt.Printf("  invlpg(%#x): TFT entry invalidated\n", uint64(va))
	}
	mgr.OnPromote = func(asid uint16, va addr.VAddr, old []addr.PAddr, newPA addr.PAddr) {
		swept := 0
		for _, f := range old {
			swept += len(l1.EvictRange(f, f+4096))
		}
		fmt.Printf("  promote(%#x): swept %d stale lines from the old frames\n", uint64(va), swept)
	}

	base, err := mgr.Mmap(proc, 2<<20) // one 2MB chunk, superpage-backed
	if err != nil {
		log.Fatal(err)
	}
	va := base + 0x1234c0
	pa, size, _ := proc.PT.Translate(va)
	fmt.Printf("mapped %#x as %v (PA %#x)\n", uint64(base), size, uint64(pa))

	// Cache a dirty line under the superpage, via the fast path.
	l1.OnSuperpageTLBFill(va)
	l1.Fill(pa, size, true, false)
	r := l1.Access(va, pa, size, true)
	fmt.Printf("superpage access: hit=%v fastPath=%v cycles=%d\n", r.Hit, r.FastPath, r.Cycles)

	// The OS splinters the superpage (e.g. to change protection on one
	// base page).
	fmt.Println("\nOS splinters the 2MB page:")
	if err := mgr.Splinter(proc, va); err != nil {
		log.Fatal(err)
	}
	pa2, size2, _ := proc.PT.Translate(va)
	fmt.Printf("  %#x now %v (PA %#x, unchanged frame)\n", uint64(va), size2, uint64(pa2))
	r = l1.Access(va, pa2, size2, false)
	fmt.Printf("  post-splinter access: hit=%v fastPath=%v cycles=%d (slow path, line intact)\n",
		r.Hit, r.FastPath, r.Cycles)

	// The OS promotes it back (khugepaged found the region hot).
	fmt.Println("\nkhugepaged promotes the region back to 2MB:")
	if err := mgr.Promote(proc, va); err != nil {
		log.Fatal(err)
	}
	pa3, size3, _ := proc.PT.Translate(va)
	fmt.Printf("  %#x now %v again (PA %#x, fresh contiguous block)\n", uint64(va), size3, uint64(pa3))
	r = l1.Access(va, pa3, size3, false)
	fmt.Printf("  post-promote access: hit=%v (old line was swept; refill required)\n", r.Hit)
	l1.OnSuperpageTLBFill(va)
	l1.Fill(pa3, size3, false, false)
	r = l1.Access(va, pa3, size3, false)
	fmt.Printf("  after refill:        hit=%v fastPath=%v cycles=%d (fast path restored)\n\n",
		r.Hit, r.FastPath, r.Cycles)

	// --- Part 2: churn under load, end to end --------------------------
	p, err := workload.ByName("mongo")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config{
		Workload: p, Seed: 7, Refs: 120_000,
		CacheKind: sim.KindSeesaw, L1Size: 64 << 10,
		FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 512 << 20,
		MemhogFraction:   0.5, // some chunks start base-paged -> promotions happen
		SplinterEvery:    9_000,
		PromoteScanEvery: 6_000,
	}
	r2, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mongo under continuous churn: %d splinters, %d promotions over %d refs\n",
		r2.Splinters, r2.Promotions, cfg.Refs)
	fmt.Printf("  IPC %.3f, TFT hit rate %.1f%%, superpage coverage %.1f%%\n",
		r2.IPC, 100*r2.TFT.HitRate, 100*r2.SuperpageCoverage)
	fmt.Println("  (page-size churn is safely absorbed: no stale lines, no correctness cliffs)")
}
