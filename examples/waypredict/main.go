// Waypredict: the paper's Fig 15 study — an MRU way predictor trades
// latency for energy and can *hurt* runtime on low-locality workloads,
// SEESAW never does, and the combination (SEESAW steering the predictor
// to the right partition) saves the most energy.
//
//	go run ./examples/waypredict
package main

import (
	"fmt"
	"log"

	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

func main() {
	fmt.Println("64KB L1 @1.33GHz, OoO; improvements vs baseline VIPT")
	fmt.Println("workload  WPacc%   WP perf%  WP en%   SEESAW perf%  SEESAW en%   WP+S perf%  WP+S en%")
	// nutch predicts well (high line reuse); olio and g500 are
	// pointer-chasers where MRU prediction collapses.
	for _, name := range []string{"nutch", "redis", "olio", "g500"} {
		p, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.Config{
			Workload: p, Seed: 11, Refs: 100_000,
			CacheKind: sim.KindBaseline, L1Size: 64 << 10,
			FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 512 << 20,
		}
		base, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		run := func(kind sim.CacheKind, wp bool) *sim.Report {
			c := cfg
			c.CacheKind = kind
			c.WayPredict = wp
			r, err := sim.Run(c)
			if err != nil {
				log.Fatal(err)
			}
			return r
		}
		wp := run(sim.KindBaseline, true)
		see := run(sim.KindSeesaw, false)
		both := run(sim.KindSeesaw, true)
		perf := func(r *sim.Report) float64 {
			return stats.PctImprovement(float64(base.Cycles), float64(r.Cycles))
		}
		en := func(r *sim.Report) float64 {
			return stats.PctImprovement(base.EnergyTotalNJ, r.EnergyTotalNJ)
		}
		fmt.Printf("%-8s  %5.1f   %7.2f  %6.2f      %7.2f      %7.2f      %7.2f   %7.2f\n",
			name, 100*wp.WPAccuracy,
			perf(wp), en(wp), perf(see), en(see), perf(both), en(both))
	}
	fmt.Println("\n(expected shape, per the paper: WP perf <= 0, worst where accuracy is low;")
	fmt.Println(" SEESAW perf always >= 0; WP+SEESAW has the best energy column)")
}
