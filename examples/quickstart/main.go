// Quickstart: build a SEESAW L1 cache directly, watch the Table I lookup
// cases happen, then run a small end-to-end simulation comparing SEESAW
// against baseline VIPT on a cloud workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seesaw/internal/addr"
	"seesaw/internal/core"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/tft"
	"seesaw/internal/workload"
)

func main() {
	// --- Part 1: the cache itself -------------------------------------
	// A 32KB 8-way SEESAW L1 at 1.33GHz: two partitions of 4 ways, a
	// 16-entry TFT.
	l1, err := core.NewSeesaw(core.Config{
		SizeBytes: 32 << 10,
		Ways:      8,
		FreqGHz:   1.33,
		TFT:       tft.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %v, fast hit %d cycle(s), slow hit %d cycle(s)\n\n",
		l1.Name(), l1.Geometry(), l1.FastCycles(), l1.SlowCycles())

	// A virtual address inside a 2MB superpage, translated to frame 7.
	va := addr.VAddr(0x4000_0000)
	pa := addr.Translate(va, 7, addr.Page2M)

	// The OS walks the page table and fills the 2MB TLB entry — which
	// also fills the TFT (Fig 5 in the paper).
	l1.OnSuperpageTLBFill(va)

	// Install the line (as an L1 fill after a miss would), then access.
	l1.Fill(pa, addr.Page2M, false, false)
	r := l1.Access(va, pa, addr.Page2M, false)
	fmt.Printf("superpage access: hit=%v fastPath=%v cycles=%d waysProbed=%d energy=%.4f nJ\n",
		r.Hit, r.FastPath, r.Cycles, r.WaysProbed, r.EnergyNJ)

	// A base-page access probes every way, like traditional VIPT.
	vb := addr.VAddr(0x1234_5000)
	pb := addr.Translate(vb, 99, addr.Page4K)
	l1.Fill(pb, addr.Page4K, false, false)
	r = l1.Access(vb, pb, addr.Page4K, false)
	fmt.Printf("base-page access: hit=%v fastPath=%v cycles=%d waysProbed=%d energy=%.4f nJ\n",
		r.Hit, r.FastPath, r.Cycles, r.WaysProbed, r.EnergyNJ)

	// Coherence probes carry physical addresses: with the 4way insertion
	// policy they always probe a single partition — even for base pages.
	pr := l1.Snoop(pb, core.SnoopPeek)
	fmt.Printf("coherence probe:  hit=%v waysProbed=%d energy=%.4f nJ\n\n",
		pr.Hit, pr.WaysProbed, pr.EnergyNJ)

	// --- Part 2: whole-system comparison ------------------------------
	p, err := workload.ByName("redis")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.Config{
		Workload:  p,
		Seed:      1,
		Refs:      120_000,
		CacheKind: sim.KindBaseline,
		L1Size:    64 << 10,
		FreqGHz:   1.33,
		CPUKind:   "ooo",
		MemBytes:  512 << 20,
	}
	base, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.CacheKind = sim.KindSeesaw
	see, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redis on 64KB L1 @1.33GHz (OoO), %d references:\n", cfg.Refs)
	fmt.Printf("  %-18s %12d cycles  %10.0f nJ\n", base.Design, base.Cycles, base.EnergyTotalNJ)
	fmt.Printf("  %-18s %12d cycles  %10.0f nJ\n", see.Design, see.Cycles, see.EnergyTotalNJ)
	fmt.Printf("  runtime improvement: %.2f%%   energy saving: %.2f%%\n",
		stats.PctImprovement(float64(base.Cycles), float64(see.Cycles)),
		stats.PctImprovement(base.EnergyTotalNJ, see.EnergyTotalNJ))
	fmt.Printf("  (%.0f%% of references hit superpage-backed memory; TFT hit rate %.0f%%)\n",
		100*see.SuperRefFraction, 100*see.TFT.HitRate)
}
