// Coherence: SEESAW's often-overlooked second benefit — every coherence
// lookup carries a physical address, so under the 4way insertion policy
// each probe reads one 4-way partition instead of the full set, for base
// pages and superpages alike (paper Section IV-C1, Fig 11).
//
// The example runs the multi-threaded canneal workload under directory
// and snoopy coherence and splits the L1 energy savings into CPU-side and
// coherence-side slices.
//
//	go run ./examples/coherence
package main

import (
	"fmt"
	"log"

	"seesaw/internal/coherence"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

func main() {
	p, err := workload.ByName("cann")
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []coherence.Mode{coherence.Directory, coherence.Snoopy} {
		cfg := sim.Config{
			Workload: p, Seed: 5, Refs: 120_000,
			CacheKind: sim.KindBaseline, L1Size: 64 << 10,
			FreqGHz: 1.33, CPUKind: "ooo",
			MemBytes:      512 << 20,
			CoherenceMode: mode,
		}
		base, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.CacheKind = sim.KindSeesaw
		see, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("canneal (4 threads + system activity), %v coherence:\n", mode)
		fmt.Printf("  probes delivered to L1s:   %d\n", base.Coh.ProbesSent)
		fmt.Printf("  invalidations/downgrades:  %d/%d\n",
			base.Coh.Invalidations, base.Coh.Downgrades)
		fmt.Printf("  coherence lookup energy:   baseline %8.1f nJ -> SEESAW %8.1f nJ (%.1f%% saved)\n",
			base.EnergyCoherenceNJ, see.EnergyCoherenceNJ,
			stats.PctImprovement(base.EnergyCoherenceNJ, see.EnergyCoherenceNJ))
		fmt.Printf("  CPU-side lookup energy:    baseline %8.1f nJ -> SEESAW %8.1f nJ (%.1f%% saved)\n",
			base.EnergyCPUSideNJ, see.EnergyCPUSideNJ,
			stats.PctImprovement(base.EnergyCPUSideNJ, see.EnergyCPUSideNJ))
		cpuSave := base.EnergyCPUSideNJ - see.EnergyCPUSideNJ
		cohSave := base.EnergyCoherenceNJ - see.EnergyCoherenceNJ
		if total := cpuSave + cohSave; total > 0 {
			fmt.Printf("  L1 energy-saving split:    %.0f%% CPU-side / %.0f%% coherence\n",
				100*cpuSave/total, 100*cohSave/total)
		}
		fmt.Printf("  whole-hierarchy saving:    %.2f%%\n\n",
			stats.PctImprovement(base.EnergyTotalNJ, see.EnergyTotalNJ))
	}
	fmt.Println("(paper: coherence contributes up to a third of the savings for")
	fmt.Println(" multithreaded workloads, and snoopy protocols amplify it)")
}
