// Fragmentation: reproduce the paper's central robustness claim — SEESAW
// keeps helping as physical-memory fragmentation erodes the OS's ability
// to allocate 2MB superpages (Figs 3 and 12).
//
// The example fragments memory with memhog at increasing intensities,
// shows how transparent-huge-page coverage collapses, and how SEESAW's
// runtime/energy benefits shrink but stay positive.
//
//	go run ./examples/fragmentation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"seesaw/internal/osmm"
	"seesaw/internal/physmem"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

func main() {
	// --- Part 1: the allocator-level view (Fig 3's mechanism) ---------
	fmt.Println("buddy-allocator view: what memhog does to 2MB block availability")
	fmt.Println("memhog%  free-memory  superpage-usable  fragmentation")
	for _, hog := range []float64{0, 0.4, 0.6, 0.8} {
		buddy := physmem.MustNew(512 << 20)
		rng := rand.New(rand.NewSource(9))
		if hog > 0 {
			if _, err := physmem.Run(buddy, rng, hog, 0.97); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  %3.0f%%    %6.1f MB     %6.1f MB          %.2f\n",
			hog*100,
			float64(buddy.FreeBytes())/(1<<20),
			float64(buddy.FreeBytesAtLeast(physmem.Order2M))/(1<<20),
			buddy.Fragmentation())
	}

	// --- Part 2: THP coverage of a real footprint ---------------------
	fmt.Println("\ntransparent-huge-page coverage of a 64MB heap:")
	for _, hog := range []float64{0, 0.4, 0.6, 0.8} {
		buddy := physmem.MustNew(512 << 20)
		rng := rand.New(rand.NewSource(9))
		if hog > 0 {
			physmem.Run(buddy, rng, hog, 0.97)
		}
		mgr := osmm.NewManager(buddy, rng, true)
		proc, err := mgr.NewProcess(1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := mgr.Mmap(proc, 64<<20); err != nil {
			log.Fatal(err)
		}
		mgr.PromoteScan(proc, 1<<30) // khugepaged catches stragglers
		fmt.Printf("  memhog %3.0f%%: %5.1f%% of footprint on 2MB pages\n",
			hog*100, 100*proc.SuperpageCoverage())
	}

	// --- Part 3: end-to-end effect on SEESAW (Fig 12) -----------------
	p, err := workload.ByName("olio")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nolio, 64KB L1 @1.33GHz: SEESAW vs baseline under fragmentation")
	fmt.Println("memhog%  coverage%  superRefs%  perf-improvement%  energy-saving%")
	for _, hog := range []float64{0, 0.3, 0.6} {
		cfg := sim.Config{
			Workload: p, Seed: 3, Refs: 100_000,
			CacheKind: sim.KindBaseline, L1Size: 64 << 10,
			FreqGHz: 1.33, CPUKind: "ooo",
			MemBytes: 512 << 20, MemhogFraction: hog,
		}
		base, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.CacheKind = sim.KindSeesaw
		see, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%%     %5.1f      %5.1f        %6.2f             %6.2f\n",
			hog*100, 100*see.SuperpageCoverage, 100*see.SuperRefFraction,
			stats.PctImprovement(float64(base.Cycles), float64(see.Cycles)),
			stats.PctImprovement(base.EnergyTotalNJ, see.EnergyTotalNJ))
	}
	fmt.Println("\n(the paper's observation: even heavy fragmentation leaves enough")
	fmt.Println(" superpages for SEESAW to stay profitable — benefits shrink, never invert)")
}
