package cpu

import "testing"

// fakeModel is an unknown Model implementation for the rejection paths.
type fakeModel struct{ Model }

// TestStateRoundTrip: accumulators captured from an advanced model and
// restored onto a fresh one of the same kind reproduce its totals, for
// both timing models and through both the concrete and the StateOf
// surfaces.
func TestStateRoundTrip(t *testing.T) {
	for _, kind := range []string{"inorder", "ooo"} {
		m, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		m.Retire(3, MemCost{Hit: true, L1Cycles: 2, SlowL1Cycles: 4})
		m.Retire(1, MemCost{L1Cycles: 4, ExtraCycles: 40})
		m.Stall(9)

		st, err := StateOf(m)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := New(kind)
		if err := SetModelState(fresh, st); err != nil {
			t.Fatal(err)
		}
		if fresh.Cycles() != m.Cycles() || fresh.Instructions() != m.Instructions() {
			t.Errorf("%s: restored %d cycles/%d instrs, want %d/%d",
				kind, fresh.Cycles(), fresh.Instructions(), m.Cycles(), m.Instructions())
		}
		// The restored model advances from the restored position.
		fresh.Retire(1, MemCost{Hit: true, L1Cycles: 2})
		if fresh.Instructions() <= m.Instructions() {
			t.Errorf("%s: restored model did not advance from the restored position", kind)
		}
	}
}

// TestConcreteSetState covers the typed State/SetState pairs directly.
func TestConcreteSetState(t *testing.T) {
	io := NewInOrder()
	io.SetState(CoreState{Cycles: 12.5, Instrs: 7})
	if s := io.State(); s.Cycles != 12.5 || s.Instrs != 7 {
		t.Errorf("InOrder state = %+v", s)
	}
	ooo := NewOutOfOrder()
	ooo.SetState(CoreState{Cycles: 3.25, Instrs: 2})
	if s := ooo.State(); s.Cycles != 3.25 || s.Instrs != 2 {
		t.Errorf("OutOfOrder state = %+v", s)
	}
}

// TestUnknownModelRejected: StateOf and SetModelState refuse a model
// kind they cannot serialize.
func TestUnknownModelRejected(t *testing.T) {
	if _, err := StateOf(fakeModel{}); err == nil {
		t.Error("StateOf accepted an unknown model")
	}
	if err := SetModelState(fakeModel{}, CoreState{}); err == nil {
		t.Error("SetModelState accepted an unknown model")
	}
}
