package cpu

import "fmt"

// CoreState is a CPU timing model's serializable state: the cycle and
// instruction accumulators. Model parameters are config-derived.
type CoreState struct {
	Cycles float64
	Instrs uint64
}

// State captures the in-order model's accumulators.
func (c *InOrder) State() CoreState { return CoreState{Cycles: c.cycles, Instrs: c.instrs} }

// SetState restores the in-order model's accumulators in place.
func (c *InOrder) SetState(s CoreState) { c.cycles, c.instrs = s.Cycles, s.Instrs }

// State captures the out-of-order model's accumulators.
func (c *OutOfOrder) State() CoreState { return CoreState{Cycles: c.cycles, Instrs: c.instrs} }

// SetState restores the out-of-order model's accumulators in place; the
// analytic parameters are untouched.
func (c *OutOfOrder) SetState(s CoreState) { c.cycles, c.instrs = s.Cycles, s.Instrs }

// StateOf captures any known model's accumulators.
func StateOf(m Model) (CoreState, error) {
	switch v := m.(type) {
	case *InOrder:
		return v.State(), nil
	case *OutOfOrder:
		return v.State(), nil
	}
	return CoreState{}, fmt.Errorf("cpu: unknown model %T", m)
}

// SetModelState restores any known model's accumulators in place.
func SetModelState(m Model, s CoreState) error {
	switch v := m.(type) {
	case *InOrder:
		v.SetState(s)
		return nil
	case *OutOfOrder:
		v.SetState(s)
		return nil
	}
	return fmt.Errorf("cpu: unknown model %T", m)
}
