package cpu

import "testing"

func hit(l1, slow int) MemCost {
	return MemCost{Hit: true, L1Cycles: l1, SlowL1Cycles: slow}
}

func TestNewByKind(t *testing.T) {
	if m, err := New("ooo"); err != nil || m.Name() != "ooo" {
		t.Errorf("New(ooo) = %v %v", m, err)
	}
	if m, err := New("inorder"); err != nil || m.Name() != "inorder" {
		t.Errorf("New(inorder) = %v %v", m, err)
	}
	if _, err := New("vliw"); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestInOrderExposesFullLatency(t *testing.T) {
	fast, slow := NewInOrder(), NewInOrder()
	for i := 0; i < 1000; i++ {
		fast.Retire(3, hit(1, 2))
		slow.Retire(3, hit(2, 2))
	}
	if fast.Cycles() >= slow.Cycles() {
		t.Errorf("1-cycle hits (%d cy) not faster than 2-cycle (%d cy)", fast.Cycles(), slow.Cycles())
	}
	// Each access differs by exactly 1 cycle on in-order.
	if d := slow.Cycles() - fast.Cycles(); d != 1000 {
		t.Errorf("delta = %d, want 1000", d)
	}
}

func TestOoOHidesIndependentLatencyPartially(t *testing.T) {
	// The fast case models SEESAW with the scheduler speculating fast
	// (the hit really is fast, so no squash).
	fastHit := MemCost{Hit: true, L1Cycles: 1, SlowL1Cycles: 5, AssumedFast: true}
	fast, slow := NewOutOfOrder(), NewOutOfOrder()
	for i := 0; i < 1000; i++ {
		fast.Retire(3, fastHit)
		slow.Retire(3, hit(5, 5))
	}
	dOoO := slow.Cycles() - fast.Cycles()
	if dOoO == 0 {
		t.Fatal("OoO fully hid L1 latency; SEESAW would show no benefit")
	}
	inFast, inSlow := NewInOrder(), NewInOrder()
	for i := 0; i < 1000; i++ {
		inFast.Retire(3, fastHit)
		inSlow.Retire(3, hit(5, 5))
	}
	dIn := inSlow.Cycles() - inFast.Cycles()
	if dOoO >= dIn {
		t.Errorf("OoO delta %d !< in-order delta %d (Fig 9: in-order benefits more)", dOoO, dIn)
	}
}

func TestDependentLoadsSerializeOnOoO(t *testing.T) {
	dep, indep := NewOutOfOrder(), NewOutOfOrder()
	cost := hit(5, 5)
	for i := 0; i < 1000; i++ {
		depCost := cost
		depCost.Dep = true
		dep.Retire(3, depCost)
		indep.Retire(3, cost)
	}
	if dep.Cycles() <= indep.Cycles() {
		t.Error("dependent loads must cost more than independent ones")
	}
}

func TestSquashPenaltyOnMispredictedFastHit(t *testing.T) {
	// Scheduler assumed fast, access took the slow path: dependents
	// squashed and replayed.
	squash, clean := NewOutOfOrder(), NewOutOfOrder()
	for i := 0; i < 1000; i++ {
		squash.Retire(0, MemCost{Hit: true, Dep: true, L1Cycles: 2, SlowL1Cycles: 2, AssumedFast: true})
		clean.Retire(0, MemCost{Hit: true, Dep: true, L1Cycles: 2, SlowL1Cycles: 2, AssumedFast: false})
	}
	d := squash.Cycles() - clean.Cycles()
	if d != SquashPenalty*1000 {
		t.Errorf("squash delta = %d, want %d", d, SquashPenalty*1000)
	}
}

func TestAssumedSlowForfeitsFastLatency(t *testing.T) {
	// With the conservative scheduler (superpages scarce), a fast hit's
	// data sits waiting until the slow wakeup slot: no latency benefit.
	cons, spec := NewOutOfOrder(), NewOutOfOrder()
	for i := 0; i < 1000; i++ {
		cons.Retire(0, MemCost{Hit: true, Dep: true, L1Cycles: 1, SlowL1Cycles: 5, AssumedFast: false})
		spec.Retire(0, MemCost{Hit: true, Dep: true, L1Cycles: 1, SlowL1Cycles: 5, AssumedFast: true})
	}
	if cons.Cycles() <= spec.Cycles() {
		t.Error("conservative scheduling must forfeit the fast-path latency")
	}
	slowBase := NewOutOfOrder()
	for i := 0; i < 1000; i++ {
		slowBase.Retire(0, MemCost{Hit: true, Dep: true, L1Cycles: 5, SlowL1Cycles: 5})
	}
	if cons.Cycles() != slowBase.Cycles() {
		t.Errorf("conservative fast hits (%d cy) must equal slow hits (%d cy)",
			cons.Cycles(), slowBase.Cycles())
	}
}

func TestInOrderNeverSquashes(t *testing.T) {
	// In-order pipelines just wait: AssumedFast is irrelevant.
	a, b := NewInOrder(), NewInOrder()
	for i := 0; i < 100; i++ {
		a.Retire(2, MemCost{Hit: true, L1Cycles: 2, SlowL1Cycles: 2, AssumedFast: true})
		b.Retire(2, MemCost{Hit: true, L1Cycles: 2, SlowL1Cycles: 2, AssumedFast: false})
	}
	if a.Cycles() != b.Cycles() {
		t.Error("in-order timing must not depend on scheduler speculation")
	}
}

func TestMissLatencyCharged(t *testing.T) {
	m := NewOutOfOrder()
	m.Retire(0, MemCost{Hit: false, Dep: true, L1Cycles: 2, SlowL1Cycles: 2, ExtraCycles: 50})
	if m.Cycles() < 50 {
		t.Errorf("miss cost %d cycles, want >= 50", m.Cycles())
	}
}

func TestStoresRarelyStall(t *testing.T) {
	st, ld := NewOutOfOrder(), NewOutOfOrder()
	for i := 0; i < 1000; i++ {
		st.Retire(3, MemCost{Hit: true, IsStore: true, L1Cycles: 5, SlowL1Cycles: 5})
		ld.Retire(3, MemCost{Hit: true, Dep: true, L1Cycles: 5, SlowL1Cycles: 5})
	}
	if st.Cycles() >= ld.Cycles() {
		t.Error("stores must stall less than dependent loads")
	}
}

func TestInstructionAccounting(t *testing.T) {
	m := NewInOrder()
	m.Retire(7, hit(1, 1))
	m.Retire(0, hit(1, 1))
	if m.Instructions() != 9 {
		t.Errorf("instructions = %d, want 9 (7+1 and 0+1)", m.Instructions())
	}
	if IPC(m) <= 0 {
		t.Error("IPC must be positive")
	}
	var empty InOrder
	if IPC(&empty) != 0 {
		t.Error("IPC of idle core must be 0")
	}
}
