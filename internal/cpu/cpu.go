// Package cpu provides the two core timing models of the paper's Table
// II: an out-of-order core modeled on Intel Sandybridge (168-entry ROB,
// 54-entry scheduler, 4-wide issue) and an in-order dual-issue core
// modeled on Intel Atom.
//
// Both are analytic pipeline models rather than full microarchitectural
// simulators: each retired instruction contributes issue bandwidth, and
// each memory access contributes a stall that depends on how much of its
// latency the core can hide. The models encode exactly the interactions
// the paper's evaluation turns on:
//
//   - The in-order core exposes the full L1 latency on every load, so
//     SEESAW's fast path helps more there (Fig 9 vs Fig 8).
//   - The out-of-order core hides most independent-load latency with its
//     instruction window, but dependent (pointer-chase) loads and the
//     scheduler's speculative wakeup keep L1 latency on the critical
//     path.
//   - Variable-hit-latency designs interact with speculative scheduling
//     (Section IV-B3): the scheduler wakes dependents assuming the fast
//     hit time; a slow hit squashes and replays them. When superpages
//     are scarce (2MB-TLB occupancy below ¼), the scheduler assumes the
//     slow time instead, forfeiting latency (but not energy) benefits.
package cpu

import "fmt"

// MemCost describes one memory access to a core model.
type MemCost struct {
	// Hit reports an L1 hit.
	Hit bool
	// IsStore marks stores (retired through the store buffer; they
	// rarely stall the pipeline).
	IsStore bool
	// Dep marks the access as data-dependent on the previous load
	// (pointer chase): its latency cannot be hidden.
	Dep bool
	// L1Cycles is the actual L1 lookup latency taken.
	L1Cycles int
	// SlowL1Cycles is the design's slow (full-set) hit latency.
	SlowL1Cycles int
	// AssumedFast reports the scheduler speculated the fast hit time
	// for this access (SEESAW designs; always false for fixed-latency
	// designs).
	AssumedFast bool
	// ExtraCycles is latency beyond the L1 lookup: TLB L2/walk penalty
	// plus miss service time.
	ExtraCycles int
}

// SquashPenalty is the replay cost when dependents were speculatively
// woken for a fast hit that turned out slow (Section IV-B3). It is a
// single cycle: the TFT resolves in about a quarter of the cycle time
// (Section IV-A2), so the slow-path signal arrives early enough to
// cancel most speculative wakeups before dependents issue — what remains
// is a one-cycle reschedule bubble rather than a full replay.
const SquashPenalty = 1

// Model is a core timing model.
type Model interface {
	// Name identifies the model.
	Name() string
	// Retire advances time by one memory access and the gap of
	// non-memory instructions that preceded it.
	Retire(gap int, mem MemCost)
	// Stall charges raw cycles (OS events such as TLB-shootdown
	// instructions).
	Stall(cycles int)
	// Cycles returns total cycles so far.
	Cycles() uint64
	// Instructions returns total retired instructions.
	Instructions() uint64
	// Clone returns an independent deep copy of the model's state, for
	// warm-state snapshots.
	Clone() Model
}

// IPC computes instructions per cycle for a model.
func IPC(m Model) float64 {
	if m.Cycles() == 0 {
		return 0
	}
	return float64(m.Instructions()) / float64(m.Cycles())
}

// loadUseLatency resolves the effective load-to-use L1 latency including
// scheduler speculation effects on hits.
func loadUseLatency(mem MemCost, speculative bool) int {
	l1 := mem.L1Cycles
	if !mem.Hit {
		// Misses squash dependents on every design; the differential
		// SEESAW effect is on hits, so charge the actual latency.
		return l1 + mem.ExtraCycles
	}
	if speculative {
		if mem.AssumedFast {
			if l1 >= mem.SlowL1Cycles && mem.SlowL1Cycles > 0 && l1 > 1 {
				// Speculated fast, got slow: squash and replay.
				l1 += SquashPenalty
			}
		} else if l1 < mem.SlowL1Cycles {
			// Scheduler assumed the slow time: data may be ready early
			// but dependents were not woken until the slow slot.
			l1 = mem.SlowL1Cycles
		}
	}
	return l1 + mem.ExtraCycles
}

// InOrder is the Atom-like dual-issue in-order core.
type InOrder struct {
	cycles float64
	instrs uint64
}

// NewInOrder creates the in-order model.
func NewInOrder() *InOrder { return &InOrder{} }

// Name implements Model.
func (c *InOrder) Name() string { return "inorder" }

// Retire implements Model. In-order pipelines expose the full load-to-use
// latency (no speculation on variable hit latency: the pipeline simply
// waits, so SEESAW needs no squash logic here). Stores drain through a
// small store buffer and rarely stall.
func (c *InOrder) Retire(gap int, mem MemCost) {
	c.instrs += uint64(gap) + 1
	c.cycles += float64(gap) / 2.0 // dual issue
	lat := float64(loadUseLatency(mem, false))
	if mem.IsStore {
		c.cycles += 1 + 0.1*lat
	} else {
		c.cycles += lat
	}
}

// Stall implements Model.
func (c *InOrder) Stall(cycles int) { c.cycles += float64(cycles) }

// Cycles implements Model.
func (c *InOrder) Cycles() uint64 { return uint64(c.cycles) }

// Instructions implements Model.
func (c *InOrder) Instructions() uint64 { return c.instrs }

// OutOfOrder is the Sandybridge-like core.
type OutOfOrder struct {
	// IssueWidth and HideWindow parameterize the analytic model:
	// HideWindow is the latency (cycles) the ROB/scheduler can overlap
	// for an independent load (~ROB size / issue width).
	IssueWidth float64
	HideWindow float64
	// IndepFactor is the fraction of an independent load's in-window
	// latency that still stalls retirement (consumers in the window).
	IndepFactor float64
	// BeyondFactor is the exposed fraction of latency beyond the
	// window (MLP overlaps the rest).
	BeyondFactor float64

	cycles float64
	instrs uint64
}

// NewOutOfOrder creates the Sandybridge-like model (168-entry ROB /
// 4-wide → ~40-cycle hide window).
func NewOutOfOrder() *OutOfOrder {
	return &OutOfOrder{IssueWidth: 4, HideWindow: 40, IndepFactor: 0.35, BeyondFactor: 0.5}
}

// Name implements Model.
func (c *OutOfOrder) Name() string { return "ooo" }

// Retire implements Model.
func (c *OutOfOrder) Retire(gap int, mem MemCost) {
	c.instrs += uint64(gap) + 1
	c.cycles += (float64(gap) + 1) / c.IssueWidth
	lat := float64(loadUseLatency(mem, true))
	switch {
	case mem.IsStore:
		c.cycles += 0.05 * lat // store buffer absorbs nearly everything
	case mem.Dep:
		c.cycles += lat // serialized: nothing to overlap
	default:
		in := lat
		if in > c.HideWindow {
			in = c.HideWindow
		}
		c.cycles += c.IndepFactor*in + c.BeyondFactor*(lat-in)
	}
}

// Stall implements Model.
func (c *OutOfOrder) Stall(cycles int) { c.cycles += float64(cycles) }

// Cycles implements Model.
func (c *OutOfOrder) Cycles() uint64 { return uint64(c.cycles) }

// Instructions implements Model.
func (c *OutOfOrder) Instructions() uint64 { return c.instrs }

// New creates a model by kind name ("ooo" or "inorder").
func New(kind string) (Model, error) {
	switch kind {
	case "ooo":
		return NewOutOfOrder(), nil
	case "inorder":
		return NewInOrder(), nil
	}
	return nil, fmt.Errorf("cpu: unknown core model %q", kind)
}
