package cpu

// Clone implements Model. Both models are plain value state.
func (c *InOrder) Clone() Model {
	cc := *c
	return &cc
}

// Clone implements Model.
func (c *OutOfOrder) Clone() Model {
	cc := *c
	return &cc
}
