package cpu

import "testing"

// TestClone: a cloned model carries its cycle/instruction state and then
// advances independently of the original.
func TestClone(t *testing.T) {
	for _, kind := range []string{"inorder", "ooo"} {
		m, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		m.Retire(3, MemCost{Hit: true, L1Cycles: 2, SlowL1Cycles: 4})
		m.Retire(1, MemCost{L1Cycles: 4, ExtraCycles: 40})
		m.Stall(7)

		c := m.Clone()
		if c.Name() != m.Name() {
			t.Errorf("%s: clone Name = %q", kind, c.Name())
		}
		if c.Cycles() != m.Cycles() || c.Instructions() != m.Instructions() {
			t.Errorf("%s: clone %d cycles/%d instrs, want %d/%d",
				kind, c.Cycles(), c.Instructions(), m.Cycles(), m.Instructions())
		}
		c.Retire(2, MemCost{Hit: true, L1Cycles: 2})
		if c.Cycles() == m.Cycles() || c.Instructions() == m.Instructions() {
			t.Errorf("%s: retiring on the clone advanced the original (both at %d cycles, %d instrs)",
				kind, m.Cycles(), m.Instructions())
		}
	}
}
