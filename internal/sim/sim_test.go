package sim

import (
	"testing"

	"seesaw/internal/workload"
)

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func quickCfg(t *testing.T, wl string, kind CacheKind) Config {
	return Config{
		Workload:  mustProfile(t, wl),
		Seed:      42,
		Refs:      40_000,
		CacheKind: kind,
		L1Size:    32 << 10,
		FreqGHz:   1.33,
		CPUKind:   "ooo",
		MemBytes:  256 << 20,
	}
}

func TestRunBaselineSmoke(t *testing.T) {
	r, err := Run(quickCfg(t, "redis", KindBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Fatal("no progress recorded")
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("IPC = %v, outside plausible range", r.IPC)
	}
	if r.L1Hits+r.L1Misses == 0 {
		t.Error("no L1 activity")
	}
	if r.EnergyTotalNJ <= 0 {
		t.Error("no energy accounted")
	}
	if r.MPKI <= 0 || r.MPKI > 300 {
		t.Errorf("MPKI = %v implausible", r.MPKI)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1, err := Run(quickCfg(t, "astar", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(quickCfg(t, "astar", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.EnergyTotalNJ != r2.EnergyTotalNJ || r1.L1Misses != r2.L1Misses {
		t.Errorf("non-deterministic: %d/%d cycles, %v/%v nJ",
			r1.Cycles, r2.Cycles, r1.EnergyTotalNJ, r2.EnergyTotalNJ)
	}
}

// TestSeesawBeatsBaseline is the headline result: on a
// superpage-friendly workload SEESAW must improve both runtime and
// memory-hierarchy energy versus baseline VIPT.
func TestSeesawBeatsBaseline(t *testing.T) {
	for _, wl := range []string{"redis", "olio"} {
		base, err := Run(quickCfg(t, wl, KindBaseline))
		if err != nil {
			t.Fatal(err)
		}
		see, err := Run(quickCfg(t, wl, KindSeesaw))
		if err != nil {
			t.Fatal(err)
		}
		if see.Cycles >= base.Cycles {
			t.Errorf("%s: SEESAW %d cycles !< baseline %d", wl, see.Cycles, base.Cycles)
		}
		if see.EnergyTotalNJ >= base.EnergyTotalNJ {
			t.Errorf("%s: SEESAW %.0f nJ !< baseline %.0f", wl, see.EnergyTotalNJ, base.EnergyTotalNJ)
		}
	}
}

func TestSeesawTFTReportPopulated(t *testing.T) {
	r, err := Run(quickCfg(t, "redis", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	if r.TFT.Lookups == 0 {
		t.Fatal("TFT never looked up")
	}
	if r.TFT.SuperAccesses == 0 || r.TFT.FastHits == 0 {
		t.Errorf("TFT report = %+v", r.TFT)
	}
	if r.TFT.SuperMissedPct < 0 || r.TFT.SuperMissedPct > 100 {
		t.Errorf("SuperMissedPct = %v", r.TFT.SuperMissedPct)
	}
	// Consistency: the split must sum to the total.
	sum := r.TFT.SuperMissedL1HitPct + r.TFT.SuperMissedL1MissPct
	if diff := sum - r.TFT.SuperMissedPct; diff > 0.01 || diff < -0.01 {
		t.Errorf("split %.2f+%.2f != total %.2f",
			r.TFT.SuperMissedL1HitPct, r.TFT.SuperMissedL1MissPct, r.TFT.SuperMissedPct)
	}
}

func TestSuperpageRefFractionPlausible(t *testing.T) {
	r, err := Run(quickCfg(t, "redis", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	// redis targets ~94% superpage-eligible refs with full coverage.
	if r.SuperRefFraction < 0.70 || r.SuperRefFraction > 0.98 {
		t.Errorf("superpage ref fraction = %v", r.SuperRefFraction)
	}
	if r.SuperpageCoverage < 0.9 {
		t.Errorf("coverage = %v on pristine memory", r.SuperpageCoverage)
	}
}

func TestFragmentationReducesSeesawBenefit(t *testing.T) {
	mk := func(hog float64) (base, see *Report) {
		cfg := quickCfg(t, "olio", KindBaseline)
		cfg.MemhogFraction = hog
		var err error
		base, err = Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CacheKind = KindSeesaw
		see, err = Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return base, see
	}
	b0, s0 := mk(0)
	b9, s9 := mk(0.75)
	imp0 := 100 * (float64(b0.Cycles) - float64(s0.Cycles)) / float64(b0.Cycles)
	imp9 := 100 * (float64(b9.Cycles) - float64(s9.Cycles)) / float64(b9.Cycles)
	if s9.SuperpageCoverage >= s0.SuperpageCoverage {
		t.Errorf("coverage did not drop: %.2f vs %.2f", s9.SuperpageCoverage, s0.SuperpageCoverage)
	}
	if imp9 >= imp0 {
		t.Errorf("benefit did not shrink with fragmentation: %.2f%% vs %.2f%%", imp9, imp0)
	}
	if imp9 < -1 {
		t.Errorf("SEESAW materially hurt performance under fragmentation: %.2f%%", imp9)
	}
}

func TestInOrderBenefitExceedsOoO(t *testing.T) {
	imp := func(cpuKind string) float64 {
		cfg := quickCfg(t, "redis", KindBaseline)
		cfg.CPUKind = cpuKind
		base, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CacheKind = KindSeesaw
		see, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return 100 * (float64(base.Cycles) - float64(see.Cycles)) / float64(base.Cycles)
	}
	ooo, ino := imp("ooo"), imp("inorder")
	if ino <= ooo {
		t.Errorf("in-order improvement %.2f%% !> OoO %.2f%% (paper Fig 9)", ino, ooo)
	}
}

func TestCoherenceEnergyLowerWithSeesaw(t *testing.T) {
	// canneal: 4 threads, heavy sharing.
	base, err := Run(quickCfg(t, "cann", KindBaseline))
	if err != nil {
		t.Fatal(err)
	}
	see, err := Run(quickCfg(t, "cann", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	if base.EnergyCoherenceNJ == 0 {
		t.Fatal("no coherence energy in a 4-thread shared workload")
	}
	if see.EnergyCoherenceNJ >= base.EnergyCoherenceNJ {
		t.Errorf("SEESAW coherence energy %.1f !< baseline %.1f",
			see.EnergyCoherenceNJ, base.EnergyCoherenceNJ)
	}
}

func TestPIPTRuns(t *testing.T) {
	cfg := quickCfg(t, "mcf", KindPIPT)
	cfg.L1Ways = 4
	cfg.SerialTLBCycles = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Error("PIPT made no progress")
	}
}

func TestOSActivityPaths(t *testing.T) {
	cfg := quickCfg(t, "redis", KindSeesaw)
	cfg.MemhogFraction = 0.5 // some chunks start as base pages
	cfg.PromoteScanEvery = 5_000
	cfg.SplinterEvery = 7_000
	cfg.ContextSwitchEvery = 9_000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Splinters == 0 {
		t.Error("no splinters exercised")
	}
	_ = r.Promotions // promotions depend on fragmentation; exercised path either way
}

func TestWayPredictConfigurations(t *testing.T) {
	cfg := quickCfg(t, "nutch", KindBaseline)
	cfg.WayPredict = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WPAccuracy <= 0 || r.WPAccuracy > 1 {
		t.Errorf("WP accuracy = %v", r.WPAccuracy)
	}
	// nutch is the paper's high-accuracy example (>85%).
	if r.WPAccuracy < 0.6 {
		t.Errorf("nutch WP accuracy = %.2f, expected high locality", r.WPAccuracy)
	}
}

func TestSnoopyModeIncreasesProbes(t *testing.T) {
	cfgD := quickCfg(t, "cann", KindSeesaw)
	rD, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	cfgS := cfgD
	cfgS.CoherenceMode = 1 // snoopy
	rS, err := Run(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if rS.Coh.ProbesSent <= rD.Coh.ProbesSent {
		t.Errorf("snoopy probes %d !> directory %d", rS.Coh.ProbesSent, rD.Coh.ProbesSent)
	}
}

func TestSchedulerPolicyAblation(t *testing.T) {
	// Under scarce superpages, always-fast scheduling should squash more
	// (be no faster) than the counter-gated policy.
	base := quickCfg(t, "mumm", KindSeesaw)
	base.MemhogFraction = 0.78
	counter, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	always := base
	always.SchedulerAlwaysFast = true
	alwaysR, err := Run(always)
	if err != nil {
		t.Fatal(err)
	}
	// Counter-gated must be at least competitive with always-fast under
	// fragmentation (within noise — the early-cancel squash penalty is
	// only one cycle, so the margins are small).
	if float64(alwaysR.Cycles) < float64(counter.Cycles)*0.998 {
		t.Errorf("always-fast (%d cy) materially beat counter-gated (%d cy) under fragmentation",
			alwaysR.Cycles, counter.Cycles)
	}
}
