package sim

import "testing"

// TestICacheRuns: enabling the instruction cache must model fetches and
// account their hits/misses.
func TestICacheRuns(t *testing.T) {
	cfg := quickCfg(t, "nutch", KindSeesaw)
	cfg.ICache = true
	cfg.TextHuge = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1IHits+r.L1IMisses == 0 {
		t.Fatal("no instruction-cache activity")
	}
	// The hot code working set fits easily, so fetches mostly hit.
	hitRate := float64(r.L1IHits) / float64(r.L1IHits+r.L1IMisses)
	if hitRate < 0.6 {
		t.Errorf("L1I hit rate = %.2f, implausibly low", hitRate)
	}
}

// TestICacheOffLeavesZeroStats: without the flag, no I-side stats.
func TestICacheOffLeavesZeroStats(t *testing.T) {
	r, err := Run(quickCfg(t, "nutch", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	if r.L1IHits != 0 || r.L1IMisses != 0 {
		t.Error("I-cache stats nonzero without ICache")
	}
}

// TestICacheCostsTime: modeling fetches adds front-end stalls (redirect
// bubbles and miss stalls), so runtime must grow vs the D-only model.
func TestICacheCostsTime(t *testing.T) {
	base := quickCfg(t, "redis", KindSeesaw)
	noI, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withI := base
	withI.ICache = true
	withIr, err := Run(withI)
	if err != nil {
		t.Fatal(err)
	}
	if withIr.Cycles <= noI.Cycles {
		t.Errorf("I-cache modeling did not add cycles: %d vs %d", withIr.Cycles, noI.Cycles)
	}
}

// TestSeesawIWithHugeText: with 2MB-mapped text, SEESAW-I makes fetches
// fast-path eligible and must beat baseline I+D at equal configuration —
// the paper's instruction-side proposal for cloud workloads.
func TestSeesawIWithHugeText(t *testing.T) {
	for _, wl := range []string{"nutch", "olio"} {
		cfg := quickCfg(t, wl, KindBaseline)
		cfg.ICache = true
		cfg.TextHuge = true
		base, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CacheKind = KindSeesaw
		see, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if see.Cycles >= base.Cycles {
			t.Errorf("%s: SEESAW I+D %d !< baseline I+D %d", wl, see.Cycles, base.Cycles)
		}
		if see.EnergyTotalNJ >= base.EnergyTotalNJ {
			t.Errorf("%s: SEESAW I+D energy not lower", wl)
		}
	}
}

// TestHugeTextBeatsSmallText: with 4KB-mapped text SEESAW-I has no
// instruction-side fast paths, so 2MB text must be at least as fast.
func TestHugeTextBeatsSmallText(t *testing.T) {
	cfg := quickCfg(t, "olio", KindSeesaw)
	cfg.ICache = true
	cfg.TextHuge = false
	small, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TextHuge = true
	huge, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if huge.Cycles > small.Cycles {
		t.Errorf("huge text slower: %d vs %d cycles", huge.Cycles, small.Cycles)
	}
}
