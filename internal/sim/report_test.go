package sim

import (
	"encoding/json"
	"math"
	"testing"
)

// TestEnergyAccountingConsistency: the report's total must equal the sum
// of its components plus leakage, and the component fields must mirror
// the account.
func TestEnergyAccountingConsistency(t *testing.T) {
	r, err := Run(quickCfg(t, "redis", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	a := r.Energy
	sum := a.L1CPUSideNJ + a.L1CoherenceNJ + a.TLBNJ + a.TFTNJ + a.WalkNJ + a.LLCNJ + a.DRAMNJ
	if math.Abs(sum-a.DynamicNJ()) > 1e-6 {
		t.Errorf("component sum %.3f != DynamicNJ %.3f", sum, a.DynamicNJ())
	}
	total := a.DynamicNJ() + a.LeakageNJ(r.RuntimeSec)
	if math.Abs(total-r.EnergyTotalNJ) > 1e-6 {
		t.Errorf("EnergyTotalNJ %.3f != dynamic+leakage %.3f", r.EnergyTotalNJ, total)
	}
	if r.EnergyCPUSideNJ != a.L1CPUSideNJ || r.EnergyCoherenceNJ != a.L1CoherenceNJ {
		t.Error("report energy fields do not mirror the account")
	}
	// Every component that should be active is.
	for name, v := range map[string]float64{
		"L1 CPU-side": a.L1CPUSideNJ,
		"TLB":         a.TLBNJ,
		"TFT":         a.TFTNJ,
		"walks":       a.WalkNJ,
		"LLC":         a.LLCNJ,
		"DRAM":        a.DRAMNJ,
	} {
		if v <= 0 {
			t.Errorf("component %s is zero", name)
		}
	}
}

// TestReportJSONSerializable: the -json CLI path depends on the Report
// marshalling cleanly with its nested account.
func TestReportJSONSerializable(t *testing.T) {
	r, err := Run(quickCfg(t, "astar", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Design", "Cycles", "EnergyTotalNJ", "TFT", "Coh", "Energy"} {
		if _, ok := back[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
}

// TestStatConservation: L1 hits + misses must equal the CPU-side accesses
// the caches saw (coherence probes are counted separately).
func TestStatConservation(t *testing.T) {
	cfg := quickCfg(t, "cann", KindSeesaw)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1Hits+r.L1Misses < uint64(cfg.Refs) {
		t.Errorf("L1 accesses %d < refs %d", r.L1Hits+r.L1Misses, cfg.Refs)
	}
	if r.Instructions == 0 || r.Cycles == 0 {
		t.Error("empty timing stats")
	}
	if r.IPC != float64(r.Instructions)/float64(r.Cycles) {
		t.Error("IPC inconsistent with instructions/cycles")
	}
}
