package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/tft"
)

// -update regenerates the golden report files instead of comparing:
//
//	go test ./internal/sim -run TestGoldenReport -update
var updateGolden = flag.Bool("update", false, "rewrite the golden report files")

// goldenConfig is seesaw-sim's default invocation for one cache kind:
// redis, seed 42, 200k references, 32KB L1 at 1.33GHz on the OoO core
// with a 16-entry TFT. The golden files pin the full text report this
// produces, so any change to simulation results, statistics, energy
// accounting, or report formatting shows up as a readable diff.
func goldenConfig(t *testing.T, kind CacheKind) Config {
	t.Helper()
	cfg := Config{
		Workload:  mustProfile(t, "redis"),
		Seed:      42,
		Refs:      200_000,
		CacheKind: kind,
		L1Size:    32 << 10,
		FreqGHz:   1.33,
		CPUKind:   "ooo",
		TFT:       tft.Config{Entries: 16},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestGoldenReport locks down the default-seed seesaw-sim report for all
// three cache designs, byte for byte. A legitimate behaviour change is
// recorded by re-running with -update and reviewing the diff.
func TestGoldenReport(t *testing.T) {
	kinds := []struct {
		name string
		kind CacheKind
	}{
		{"seesaw", KindSeesaw},
		{"baseline", KindBaseline},
		{"pipt", KindPIPT},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			r, err := Run(goldenConfig(t, k.kind))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", "golden", "report_"+k.name+".txt"), buf.Bytes())
		})
	}
}

// TestGoldenChaosReport pins one fault-injected run per cache design:
// the shootdown schedule with the invariant checker on. Beyond the
// report numbers it asserts the run stays violation-free, so the golden
// diff doubles as a chaos regression gate.
func TestGoldenChaosReport(t *testing.T) {
	kinds := []struct {
		name string
		kind CacheKind
	}{
		{"seesaw", KindSeesaw},
		{"baseline", KindBaseline},
		{"pipt", KindPIPT},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			cfg := goldenConfig(t, k.kind)
			cfg.Refs = 20_000
			cfg.MemhogFraction = 0.4
			cfg.CheckInvariants = true
			cfg.Faults = &faults.Config{Schedule: "shootdown", Every: 500}
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Check == nil || r.Check.Checks == 0 {
				t.Fatal("chaos golden run performed no invariant checks")
			}
			if r.Check.Violations != 0 {
				t.Fatalf("chaos golden run found %d violations", r.Check.Violations)
			}
			if r.Faults == nil || r.Faults.Injected == 0 {
				t.Fatal("chaos golden run injected no faults")
			}
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", "golden", "chaos_"+k.name+".txt"), buf.Bytes())
		})
	}
}

// TestGoldenReportMetricsInvisible: enabling the observability layer must
// not perturb the simulation — the report with metrics on differs from
// the golden file only by the added "metrics:" line.
func TestGoldenReportMetricsInvisible(t *testing.T) {
	cfg := goldenConfig(t, KindSeesaw)
	cfg.Metrics = &metrics.Config{EpochRefs: 10_000}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden", "report_seesaw.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	var stripped []byte
	for _, line := range bytes.SplitAfter(got, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("metrics:")) {
			continue
		}
		stripped = append(stripped, line...)
	}
	if !bytes.Equal(stripped, golden) {
		t.Errorf("metrics-enabled report diverges beyond the metrics line:\n--- got (stripped) ---\n%s\n--- golden ---\n%s",
			stripped, golden)
	}
	if bytes.Equal(got, stripped) {
		t.Error("metrics-enabled report is missing its metrics: line")
	}
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report diverges from %s (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
