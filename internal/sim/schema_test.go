package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"seesaw/internal/metrics"
	"seesaw/internal/trace"
)

// reportSchemaV1 is the pinned top-level field set of the version-1
// Report JSON. Service responses and store entries are only
// forward-compatible if this set changes together with a SchemaVersion
// bump: adding, removing, or renaming a field while leaving the version
// at 1 would let a stale store entry masquerade as current.
var reportSchemaV1 = []string{
	"Check",
	"Coh",
	"Cycles",
	"Design",
	"Energy",
	"EnergyCPUSideNJ",
	"EnergyCoherenceNJ",
	"EnergyTotalNJ",
	"Faults",
	"IPC",
	"Instructions",
	"L1Hits",
	"L1IHits",
	"L1IMisses",
	"L1Misses",
	"MPKI",
	"Metrics",
	"Promotions",
	"RuntimeSec",
	"SchemaVersion",
	"SuperRefFraction",
	"SuperpageCoverage",
	"Splinters",
	"TFT",
	"TLB",
	"WPAccuracy",
	"Workload",
}

// TestReportSchemaGolden pins the Report JSON schema: the exact
// top-level field names and the version constant. A failure here means
// the wire/store format changed — update reportSchemaV1 AND bump
// SchemaVersion together.
func TestReportSchemaGolden(t *testing.T) {
	if SchemaVersion != 1 {
		t.Fatalf("SchemaVersion = %d; this golden test pins version 1 — update reportSchemaV1 and this check together", SchemaVersion)
	}
	var fields []string
	rt := reflect.TypeOf(Report{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name := f.Name
		if tag := f.Tag.Get("json"); tag != "" && tag != "-" {
			name = tag
		}
		fields = append(fields, name)
	}
	sort.Strings(fields)
	want := append([]string(nil), reportSchemaV1...)
	sort.Strings(want)
	if !reflect.DeepEqual(fields, want) {
		t.Errorf("Report JSON schema drifted without a SchemaVersion bump:\n got  %v\n want %v", fields, want)
	}
}

// TestReportCarriesSchemaVersion: every produced report is stamped, and
// the stamp survives a JSON round-trip (the store path).
func TestReportCarriesSchemaVersion(t *testing.T) {
	r, err := Run(quickCfg(t, "redis", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	if r.SchemaVersion != SchemaVersion {
		t.Fatalf("report SchemaVersion = %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Fatalf("round-tripped SchemaVersion = %d, want %d", back.SchemaVersion, SchemaVersion)
	}
}

// TestReportJSONRoundTripStable: marshal -> unmarshal -> marshal is
// byte-identical, including a populated metrics series with events. The
// service's "resubmission returns byte-identical reports from the store"
// guarantee rests on exactly this property.
func TestReportJSONRoundTripStable(t *testing.T) {
	cfg := quickCfg(t, "redis", KindSeesaw)
	cfg.Metrics = &metrics.Config{EpochRefs: 500}
	cfg.SplinterEvery = 700 // populate the event ring
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("report JSON is not round-trip stable:\n first  %.200s...\n second %.200s...", first, second)
	}
}

// TestRunContextCancel: a canceled context stops the reference loop
// promptly with the context's error instead of running the cell to
// completion.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickCfg(t, "redis", KindSeesaw)
	cfg.Refs = 5_000_000 // would take far longer than the test budget
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("RunContext with canceled ctx: err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancellation took %v; the loop is not polling its context", d)
	}
}

// TestCanonicalKeyContract: value-equal configs share a key, differing
// configs (including through the dereferenced pointers) do not, and
// trace replays are never canonicalizable.
func TestCanonicalKeyContract(t *testing.T) {
	a := quickCfg(t, "redis", KindSeesaw)
	b := quickCfg(t, "redis", KindSeesaw)
	ka, ok := a.CanonicalKey()
	if !ok {
		t.Fatal("plain config not canonicalizable")
	}
	kb, _ := b.CanonicalKey()
	if ka != kb {
		t.Errorf("equal configs produced different keys")
	}
	b.Seed++
	if kb, _ = b.CanonicalKey(); ka == kb {
		t.Errorf("differing seeds share a key")
	}
	m := a
	m.Metrics = &metrics.Config{EpochRefs: 100}
	if km, _ := m.CanonicalKey(); km == ka {
		t.Errorf("metrics-enabled config shares the plain config's key")
	}
	tr := a
	tr.Trace = []trace.Record{{}}
	if _, ok := tr.CanonicalKey(); ok {
		t.Errorf("trace-replay config reported as canonicalizable")
	}
}
