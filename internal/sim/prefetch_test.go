package sim

import "testing"

// TestPrefetchRaisesHitRate: the next-line prefetcher must improve the
// hit rate of a streaming-heavy workload.
func TestPrefetchRaisesHitRate(t *testing.T) {
	cfg := quickCfg(t, "cact", KindBaseline) // 55% sequential
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Prefetch = true
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hr := func(r *Report) float64 { return float64(r.L1Hits) / float64(r.L1Hits+r.L1Misses) }
	if hr(on) <= hr(off) {
		t.Errorf("prefetch did not raise hit rate: %.3f vs %.3f", hr(on), hr(off))
	}
	if on.Cycles >= off.Cycles {
		t.Errorf("prefetch did not reduce cycles: %d vs %d", on.Cycles, off.Cycles)
	}
}

// TestPrefetchPreservesSeesawWin: SEESAW must still beat baseline with
// prefetching enabled on both.
func TestPrefetchPreservesSeesawWin(t *testing.T) {
	cfg := quickCfg(t, "redis", KindBaseline)
	cfg.Prefetch = true
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheKind = KindSeesaw
	see, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if see.Cycles >= base.Cycles {
		t.Errorf("SEESAW %d !< baseline %d with prefetch", see.Cycles, base.Cycles)
	}
}

// TestPrefetchDeterministic: prefetching must not break reproducibility.
func TestPrefetchDeterministic(t *testing.T) {
	cfg := quickCfg(t, "gems", KindSeesaw)
	cfg.Prefetch = true
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.EnergyTotalNJ != r2.EnergyTotalNJ {
		t.Error("prefetch runs diverged")
	}
}

// TestPartitionCountBuilds: the partition-count design sweep must run
// across 2, 4, and 8 partitions of a 16-way cache.
func TestPartitionCountBuilds(t *testing.T) {
	for _, parts := range []int{2, 4, 8} {
		cfg := quickCfg(t, "redis", KindSeesaw)
		cfg.L1Size = 64 << 10
		cfg.L1Ways = 16
		cfg.Partitions = parts
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		if r.TFT.FastHits == 0 {
			t.Errorf("partitions=%d: no fast hits", parts)
		}
	}
}
