package sim

import (
	"testing"

	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

// generateTrace produces records exactly as cmd/seesaw-tracegen does.
func generateTrace(t *testing.T, name string, seed int64, refs int) []trace.Record {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(p, seed)
	g.BindDefault()
	var schedule []int
	for tid := 0; tid < g.Threads(); tid++ {
		for k := 0; k < 8; k++ {
			schedule = append(schedule, tid)
		}
	}
	schedule = append(schedule, g.SystemTID())
	recs := make([]trace.Record, refs)
	for i := range recs {
		recs[i] = g.Next(schedule[i%len(schedule)])
	}
	return recs
}

// TestTraceReplayMatchesOnlineGeneration: replaying a pre-recorded trace
// must produce the identical report as generating the same stream online
// (same seed, same schedule).
func TestTraceReplayMatchesOnlineGeneration(t *testing.T) {
	cfg := quickCfg(t, "astar", KindSeesaw)
	online, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = generateTrace(t, "astar", cfg.Seed, cfg.Refs)
	replayed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if online.Cycles != replayed.Cycles || online.L1Misses != replayed.L1Misses ||
		online.EnergyTotalNJ != replayed.EnergyTotalNJ {
		t.Errorf("replay diverged: cycles %d/%d, misses %d/%d, energy %.1f/%.1f",
			online.Cycles, replayed.Cycles, online.L1Misses, replayed.L1Misses,
			online.EnergyTotalNJ, replayed.EnergyTotalNJ)
	}
}

func TestTraceReplayClampsRefs(t *testing.T) {
	cfg := quickCfg(t, "astar", KindBaseline)
	cfg.Trace = generateTrace(t, "astar", cfg.Seed, 1000)
	cfg.Refs = 1 << 30 // far more than the trace holds
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Error("no progress on clamped replay")
	}
}

func TestTraceReplayRejectsForeignThreads(t *testing.T) {
	cfg := quickCfg(t, "astar", KindBaseline) // astar: 1 app thread + system = 2 cores
	cfg.Trace = []trace.Record{{TID: 9, VA: 0x5555_5540_0000}}
	cfg.Refs = 1
	if _, err := Run(cfg); err == nil {
		t.Error("trace with out-of-range TID must error")
	}
}
