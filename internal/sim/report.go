package sim

import (
	"fmt"
	"io"

	"seesaw/internal/stats"
)

// WriteText renders the full human-readable report — timing, cache and
// TLB/TFT behaviour, coherence, OS activity, fault/check outcomes, and
// the energy breakdown. This is the exact output of seesaw-sim's default
// mode; the golden-report tests pin it byte for byte.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "design:    %s\n", r.Design)
	fmt.Fprintf(w, "workload:  %s\n", r.Workload)
	fmt.Fprintf(w, "cycles:    %d (IPC %.3f, runtime %.3f ms)\n", r.Cycles, r.IPC, r.RuntimeSec*1e3)
	fmt.Fprintf(w, "L1:        %d hits, %d misses (%.2f%% hit, MPKI %.1f)\n",
		r.L1Hits, r.L1Misses, 100*stats.Ratio(r.L1Hits, r.L1Hits+r.L1Misses), r.MPKI)
	if r.L1IHits+r.L1IMisses > 0 {
		fmt.Fprintf(w, "L1I:       %d hits, %d misses (%.2f%% hit)\n",
			r.L1IHits, r.L1IMisses, 100*stats.Ratio(r.L1IHits, r.L1IHits+r.L1IMisses))
	}
	fmt.Fprintf(w, "superpage: coverage %.1f%%, reference share %.1f%%\n",
		100*r.SuperpageCoverage, 100*r.SuperRefFraction)
	if r.TFT.Lookups > 0 {
		fmt.Fprintf(w, "TFT:       %.1f%% hit rate; %.2f%% of superpage accesses missed (%.2f%% L1-hit / %.2f%% L1-miss)\n",
			100*r.TFT.HitRate, r.TFT.SuperMissedPct, r.TFT.SuperMissedL1HitPct, r.TFT.SuperMissedL1MissPct)
		fmt.Fprintf(w, "TFT evts:  %d fills, %d invalidations, %d flushes, %d stale hits avoided\n",
			r.TFT.Fills, r.TFT.Invalidations, r.TFT.Flushes, r.TFT.StaleHitsAvoided)
	}
	fmt.Fprintf(w, "TLB:       %.2f%% L1 hit, %d L2 lookups, %d walks\n",
		100*r.TLB.L1HitRate, r.TLB.L2Lookups, r.TLB.Walks)
	fmt.Fprintf(w, "coherence: %d probes, %d invalidations, %d downgrades\n",
		r.Coh.ProbesSent, r.Coh.Invalidations, r.Coh.Downgrades)
	fmt.Fprintf(w, "OS:        %d promotions, %d splinters\n", r.Promotions, r.Splinters)
	if r.Faults != nil {
		fmt.Fprintf(w, "faults:    %d injected (%d splinters, %d shootdowns, %d ctx switches, %d promote storms, %d memhog spikes), %d skipped\n",
			r.Faults.Injected, r.Faults.Splinters, r.Faults.Shootdowns,
			r.Faults.ContextSwitches, r.Faults.PromoteStorms, r.Faults.MemhogSpikes, r.Faults.Skipped)
	}
	if r.Check != nil {
		fmt.Fprintf(w, "check:     %d invariant checks, %d violations\n", r.Check.Checks, r.Check.Violations)
		for _, v := range r.Check.Sample {
			fmt.Fprintf(w, "  VIOLATION %s\n", v.String())
		}
	}
	if r.WPAccuracy > 0 {
		fmt.Fprintf(w, "waypred:   %.1f%% accuracy\n", 100*r.WPAccuracy)
	}
	if r.Metrics != nil {
		m := r.Metrics
		fmt.Fprintf(w, "metrics:   %d epochs of %d refs; %d events emitted, %d dropped\n",
			len(m.Epochs), m.EpochRefs, m.EventsTotal, m.EventsDropped)
	}
	fmt.Fprintln(w)
	_, err := r.Energy.BreakdownTable(r.RuntimeSec).WriteTo(w)
	return err
}
