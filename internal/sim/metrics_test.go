package sim

import (
	"bytes"
	"testing"

	"seesaw/internal/faults"
	"seesaw/internal/metrics"
)

// TestMetricsSeriesMatchesReport: the observability layer is a second
// set of books — its counter totals must reconcile with the report's
// own statistics, and the epoch deltas must sum back to the totals.
func TestMetricsSeriesMatchesReport(t *testing.T) {
	cfg := chaosCfg(t, KindSeesaw)
	cfg.Metrics = &metrics.Config{EpochRefs: 500}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Metrics
	if s == nil {
		t.Fatal("metrics enabled but report carries no series")
	}
	if s.Refs != uint64(cfg.Refs) {
		t.Errorf("series refs = %d, want %d", s.Refs, cfg.Refs)
	}
	if got := s.Totals[metrics.CtrL1Hit]; got != r.L1Hits {
		t.Errorf("series l1_hits = %d, report says %d", got, r.L1Hits)
	}
	if got := s.Totals[metrics.CtrL1Miss]; got != r.L1Misses {
		t.Errorf("series l1_misses = %d, report says %d", got, r.L1Misses)
	}
	if got := s.Totals[metrics.CtrTFTFill]; got != r.TFT.Fills {
		t.Errorf("series tft_fills = %d, report says %d", got, r.TFT.Fills)
	}
	if got := s.Totals[metrics.CtrTFTFlush]; got != r.TFT.Flushes {
		t.Errorf("series tft_flushes = %d, report says %d", got, r.TFT.Flushes)
	}
	if got := s.Totals[metrics.CtrWalk]; got != r.TLB.Walks {
		t.Errorf("series walks = %d, report says %d", got, r.TLB.Walks)
	}
	if got := s.Totals[metrics.CtrCohProbe]; got != r.Coh.ProbesSent {
		t.Errorf("series coh_probes = %d, report says %d", got, r.Coh.ProbesSent)
	}
	if got := s.Totals[metrics.CtrPromotion]; got != r.Promotions {
		t.Errorf("series promotions = %d, report says %d", got, r.Promotions)
	}
	if got := s.Totals[metrics.CtrSplinter]; got != r.Splinters {
		t.Errorf("series splinters = %d, report says %d", got, r.Splinters)
	}
	// Epoch deltas must sum back to the totals — no epoch lost or
	// double-counted at the boundaries.
	var fromEpochs metrics.Counters
	var refs uint64
	for _, e := range s.Epochs {
		for i := range fromEpochs {
			fromEpochs[i] += e.Total[i]
		}
		refs += e.Refs
	}
	if fromEpochs != s.Totals {
		t.Errorf("epoch deltas do not sum to totals:\n  epochs: %v\n  totals: %v", fromEpochs, s.Totals)
	}
	if refs != s.Refs {
		t.Errorf("epoch ref spans sum to %d, series saw %d", refs, s.Refs)
	}
}

// TestChaosViolationVisibleInEventLog is the acceptance scenario: a
// seeded fault schedule that provably breaks an invariant (the dropped
// TFT invalidation mutation) must leave a legible trail in the event
// log — the injected fault and the violation it causes land within one
// epoch window of each other, so the -events dump localizes the bug.
func TestChaosViolationVisibleInEventLog(t *testing.T) {
	const epochRefs = 2_000
	cfg := chaosCfg(t, KindSeesaw)
	cfg.ContextSwitchEvery = -1 // TFT flushes would hide the stale entry
	cfg.Faults = &faults.Config{Schedule: "splinter", Every: 200, DropTFTInvalidate: true}
	cfg.Metrics = &metrics.Config{EpochRefs: epochRefs, EventCap: 65_536}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Check.Violations == 0 {
		t.Fatal("mutated run produced no violations; scenario is broken")
	}
	s := r.Metrics
	if s == nil {
		t.Fatal("no metrics recorded")
	}
	if s.EventsDropped != 0 {
		t.Fatalf("event ring dropped %d records; raise EventCap so the trail is complete", s.EventsDropped)
	}
	if got := s.Totals[metrics.CtrViolation]; got != r.Check.Violations {
		t.Errorf("series violations = %d, checker recorded %d", got, r.Check.Violations)
	}
	if got := s.Totals[metrics.CtrFault]; r.Faults != nil && got != r.Faults.Injected {
		t.Errorf("series faults = %d, injector recorded %d", got, r.Faults.Injected)
	}
	// Find the first violation event and the nearest injected fault
	// before it.
	var violation *metrics.Event
	lastFaultRef := uint64(0)
	haveFault := false
	faultBefore := uint64(0)
	for i := range s.Events {
		e := &s.Events[i]
		switch e.Kind {
		case metrics.EvFault:
			lastFaultRef = e.Ref
			haveFault = true
		case metrics.EvViolation:
			if violation == nil {
				violation = e
				faultBefore = lastFaultRef
			}
		}
	}
	if violation == nil {
		t.Fatal("no violation event in the log despite recorded violations")
	}
	if !haveFault {
		t.Fatal("no fault event in the log despite injected faults")
	}
	if violation.Ref < faultBefore {
		t.Fatalf("violation at ref %d precedes its fault at ref %d", violation.Ref, faultBefore)
	}
	if violation.Ref-faultBefore >= epochRefs {
		t.Errorf("violation at ref %d is %d refs after the last fault — outside one epoch window (%d)",
			violation.Ref, violation.Ref-faultBefore, epochRefs)
	}
	// The same window must be visible in the epoch series: the epoch
	// containing the violation records both a fault and a violation, so
	// the CSV time-series localizes the incident too.
	idx := int(violation.Ref) / epochRefs
	if idx >= len(s.Epochs) {
		t.Fatalf("violation ref %d maps to epoch %d but series has %d epochs", violation.Ref, idx, len(s.Epochs))
	}
	ep := s.Epochs[idx]
	if ep.Total[metrics.CtrViolation] == 0 {
		t.Errorf("epoch %d shows no violations despite event at ref %d", idx, violation.Ref)
	}
	if ep.Total[metrics.CtrFault] == 0 && idx > 0 && s.Epochs[idx-1].Total[metrics.CtrFault] == 0 {
		t.Errorf("neither epoch %d nor %d shows an injected fault", idx, idx-1)
	}
	// The event dump renders the violation with its kind name resolved.
	var buf bytes.Buffer
	if err := s.WriteEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(" violation ")) || !bytes.Contains(buf.Bytes(), []byte(" fault ")) {
		t.Error("event dump does not render both fault and violation records")
	}
}

// TestMetricsDeterministic: two identical metrics-enabled runs produce
// identical series — totals, epochs, and the full event stream.
func TestMetricsDeterministic(t *testing.T) {
	cfg := chaosCfg(t, KindSeesaw)
	cfg.Faults = &faults.Config{Schedule: "mix", Every: 250}
	cfg.Metrics = &metrics.Config{EpochRefs: 500}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := a.Metrics.WriteJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Metrics.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("two identical runs produced different metric series")
	}
}
