package sim

import (
	"testing"

	"seesaw/internal/faults"
)

// chaosCfg is quickCfg plus the invariant checker and aggressive OS
// background activity, so splinters, promotions, and context switches
// all land mid-run.
func chaosCfg(t *testing.T, kind CacheKind) Config {
	cfg := quickCfg(t, "redis", kind)
	cfg.Refs = 4_000
	cfg.ContextSwitchEvery = 1_000
	cfg.PromoteScanEvery = 400
	cfg.SplinterEvery = 300
	cfg.MemhogFraction = 0.3 // leave base chunks so promotion has work
	cfg.CheckInvariants = true
	if kind == KindPIPT {
		cfg.SerialTLBCycles = 2
	}
	return cfg
}

// TestMidRunSplinterPromoteAllKinds interleaves splinters and promotion
// scans with accesses on every cache design and asserts the invariant
// checker finds nothing: translations stay fresh, invlpgs reach every
// TLB/TFT, promotion sweeps leave no stale lines.
func TestMidRunSplinterPromoteAllKinds(t *testing.T) {
	for _, kind := range []CacheKind{KindBaseline, KindSeesaw, KindPIPT} {
		t.Run(kind.String(), func(t *testing.T) {
			r, err := Run(chaosCfg(t, kind))
			if err != nil {
				t.Fatal(err)
			}
			if r.Splinters == 0 {
				t.Error("no splinter ever fired mid-run")
			}
			if r.Promotions == 0 {
				t.Error("no promotion ever fired mid-run")
			}
			if r.Check == nil || r.Check.Checks == 0 {
				t.Fatal("invariant checker never ran")
			}
			if r.Check.Violations != 0 {
				t.Fatalf("%d invariant violations: %v", r.Check.Violations, r.Check.Sample)
			}
		})
	}
}

// TestFaultScheduleMixCleanOnAllKinds runs the full fault mix under the
// checker on every design: injected splinters, shootdown bursts, forced
// context switches, promotion storms, and memory-pressure spikes must
// all leave the system coherent.
func TestFaultScheduleMixCleanOnAllKinds(t *testing.T) {
	for _, kind := range []CacheKind{KindBaseline, KindSeesaw, KindPIPT} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := chaosCfg(t, kind)
			cfg.Refs = 3_000
			cfg.Faults = &faults.Config{Schedule: "mix", Every: 250}
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Faults == nil || r.Faults.Injected == 0 {
				t.Fatal("no faults injected")
			}
			if r.Check.Violations != 0 {
				t.Fatalf("fault mix broke invariants (%d): %v", r.Check.Violations, r.Check.Sample)
			}
		})
	}
}

// TestFaultedRunIsDeterministic: two runs of the same faulted, checked
// configuration must agree bit-for-bit on every headline number.
func TestFaultedRunIsDeterministic(t *testing.T) {
	cfg := chaosCfg(t, KindSeesaw)
	cfg.Faults = &faults.Config{Schedule: "mix", Every: 250}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.L1Hits != b.L1Hits || a.L1Misses != b.L1Misses {
		t.Fatalf("faulted run diverged: %d/%d/%d vs %d/%d/%d",
			a.Cycles, a.L1Hits, a.L1Misses, b.Cycles, b.L1Hits, b.L1Misses)
	}
	if *a.Faults != *b.Faults {
		t.Fatalf("fault stream diverged: %+v vs %+v", *a.Faults, *b.Faults)
	}
	if a.Check.Checks != b.Check.Checks || a.Check.Violations != b.Check.Violations {
		t.Fatalf("checker diverged: %d/%d vs %d/%d",
			a.Check.Checks, a.Check.Violations, b.Check.Checks, b.Check.Violations)
	}
}

// TestCheckerCatchesDroppedTFTInvalidation is the mutation test: with
// the TFT side of invlpg deliberately suppressed, splinters leave stale
// TFT entries behind, and the checker must catch them — either as an
// entry surviving the invlpg or as a later stale fast-path endorsement.
func TestCheckerCatchesDroppedTFTInvalidation(t *testing.T) {
	cfg := chaosCfg(t, KindSeesaw)
	cfg.ContextSwitchEvery = -1 // context switches flush the TFT and would hide the bug
	cfg.Faults = &faults.Config{Schedule: "splinter", Every: 200, DropTFTInvalidate: true}

	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.Splinters == 0 {
		t.Fatal("no splinter fault injected; mutation never exercised")
	}
	caught := r.Check.ByKind["tft-entry-survived"] + r.Check.ByKind["tft-stale-hit"]
	if caught == 0 {
		t.Fatalf("broken TFT invalidation not caught; report %+v", r.Check)
	}

	// The clean twin — same schedule with the invalidation intact —
	// passes every check.
	cfg.Faults = &faults.Config{Schedule: "splinter", Every: 200}
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Check.Violations != 0 {
		t.Fatalf("intact protocol flagged (%d): %v", clean.Check.Violations, clean.Check.Sample)
	}
	if clean.TFT.Invalidations == 0 {
		t.Error("clean twin recorded no TFT invalidations despite splinter faults")
	}
}

// TestTFTCountersSurfaceInReport: a run with context switches and
// splinters must surface non-zero TFT fill and flush counters.
func TestTFTCountersSurfaceInReport(t *testing.T) {
	r, err := Run(chaosCfg(t, KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	if r.TFT.Fills == 0 {
		t.Error("TFT.Fills = 0")
	}
	if r.TFT.Flushes == 0 {
		t.Error("TFT.Flushes = 0 despite context switches")
	}
}

// TestValidateRejectsImpossibleConfigs covers the error paths commands
// turn into exit code 2.
func TestValidateRejectsImpossibleConfigs(t *testing.T) {
	base := quickCfg(t, "redis", KindSeesaw)
	bad := []struct {
		name   string
		mutate func(*Config)
	}{
		{"vipt-constraint", func(c *Config) { c.L1Size = 256 << 10; c.L1Ways = 4 }},
		{"unknown-cpu", func(c *Config) { c.CPUKind = "vliw" }},
		{"memhog-range", func(c *Config) { c.MemhogFraction = 1.2 }},
		{"scheduler-conflict", func(c *Config) { c.SchedulerAlwaysFast = true; c.SchedulerAlwaysSlow = true }},
		{"bad-fault-schedule", func(c *Config) { c.Faults = &faults.Config{Schedule: "meteor"} }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted an impossible config")
			}
			if _, err := Run(cfg); err == nil {
				t.Fatal("Run accepted an impossible config")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("Validate rejected the known-good config: %v", err)
	}
}
