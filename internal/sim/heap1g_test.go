package sim

import (
	"testing"

	"seesaw/internal/addr"
)

// TestHeap1GRuns: the 1GB-superpage extension must run end-to-end, with
// every heap access superpage-backed and the TFT still driving the fast
// path (bit 12 is a page-offset bit for 1GB pages too).
func TestHeap1GRuns(t *testing.T) {
	cfg := quickCfg(t, "redis", KindSeesaw)
	cfg.Heap1G = true
	cfg.MemBytes = 0 // pick the 4GB default
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SuperpageCoverage < 0.9 {
		t.Errorf("coverage = %v with a 1GB heap", r.SuperpageCoverage)
	}
	if r.SuperRefFraction < 0.7 {
		t.Errorf("superpage ref fraction = %v", r.SuperRefFraction)
	}
	if r.TFT.FastHits == 0 {
		t.Error("no fast-path hits with a 1GB-backed heap")
	}
}

// TestHeap1GCompetitiveWith2M: 1GB backing must perform at least as well
// as 2MB backing (fewer TLB misses; same fast-path eligibility).
func TestHeap1GCompetitiveWith2M(t *testing.T) {
	cfg2m := quickCfg(t, "mongo", KindSeesaw)
	r2m, err := Run(cfg2m)
	if err != nil {
		t.Fatal(err)
	}
	cfg1g := cfg2m
	cfg1g.Heap1G = true
	cfg1g.MemBytes = 4 << 30
	r1g, err := Run(cfg1g)
	if err != nil {
		t.Fatal(err)
	}
	// Allow 2% slack: the streams are identical but OS events differ.
	if float64(r1g.Cycles) > float64(r2m.Cycles)*1.02 {
		t.Errorf("1GB heap slower than 2MB: %d vs %d cycles", r1g.Cycles, r2m.Cycles)
	}
	if r1g.TLB.Walks > r2m.TLB.Walks {
		t.Errorf("1GB heap walked more: %d vs %d", r1g.TLB.Walks, r2m.TLB.Walks)
	}
}

// TestHeap1GStillBeatsBaseline: the headline comparison holds with 1GB
// pages.
func TestHeap1GStillBeatsBaseline(t *testing.T) {
	cfg := quickCfg(t, "redis", KindBaseline)
	cfg.Heap1G = true
	cfg.MemBytes = 4 << 30
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheKind = KindSeesaw
	see, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if see.Cycles >= base.Cycles {
		t.Errorf("SEESAW %d !< baseline %d with 1GB heap", see.Cycles, base.Cycles)
	}
}

// TestHeap1GPartitionInvariant: for 1GB-backed data the VA and PA name
// the same partition (the addr-level property, revalidated through the
// whole stack by checking no fast-path hit ever misses the line).
func TestHeap1GPartitionInvariant(t *testing.T) {
	g := addr.MustCacheGeometry(64<<10, 16, 4)
	for _, raw := range []uint64{0x4000_0000, 0x7fff_0000, 0x5555_5555} {
		va := addr.VAddr(raw)
		pa := addr.Translate(va, 3, addr.Page1G)
		if g.PartitionIndexV(va) != g.PartitionIndexP(pa) {
			t.Errorf("partition mismatch for 1GB-backed %#x", raw)
		}
	}
}
