package sim

import (
	"testing"

	"seesaw/internal/workload"
)

func corunnerCfg(t *testing.T) Config {
	cfg := quickCfg(t, "redis", KindSeesaw)
	co := mustProfile(t, "astar")
	cfg.CoRunner = &co
	cfg.ContextSwitchEvery = 10_000
	cfg.CoRunSliceRefs = 1_000
	return cfg
}

// TestCoRunnerRuns: multiprogrammed mode must execute end-to-end with two
// address spaces sharing the TLB hierarchy via ASID tags.
func TestCoRunnerRuns(t *testing.T) {
	solo, err := Run(quickCfg(t, "redis", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(corunnerCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// The co-runner's timeslices land on the application cores, so
	// measured cycles grow.
	if multi.Cycles <= solo.Cycles {
		t.Errorf("co-runner added no time: %d vs %d", multi.Cycles, solo.Cycles)
	}
	if multi.TFT.Lookups == 0 {
		t.Fatal("TFT inactive in multiprogrammed mode")
	}
}

// TestCoRunnerDeterministic: multiprogrammed runs stay reproducible.
func TestCoRunnerDeterministic(t *testing.T) {
	r1, err := Run(corunnerCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(corunnerCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.EnergyTotalNJ != r2.EnergyTotalNJ {
		t.Errorf("non-deterministic multiprogrammed run: %d/%d cycles", r1.Cycles, r2.Cycles)
	}
}

// TestASIDTaggedTLBsSurviveSwitches: TLB entries are ASID-tagged, so
// context switches should not explode the walk count relative to the
// extra references executed. (If switches flushed TLBs, the walk count
// would grow far faster than the ~20% of added references.)
func TestASIDTaggedTLBsSurviveSwitches(t *testing.T) {
	solo, err := Run(quickCfg(t, "redis", KindSeesaw))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(corunnerCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// 3 switches x 2 cores x 1000 refs = 6000 extra refs on 40000 (15%).
	// Allow the co-runner's own compulsory walks: a generous 4x bound
	// still catches flush-like behaviour (which would re-walk redis's
	// whole hot set after every switch).
	if multi.TLB.Walks > solo.TLB.Walks*4+2000 {
		t.Errorf("walks exploded across context switches: %d vs solo %d",
			multi.TLB.Walks, solo.TLB.Walks)
	}
}

// TestCoRunnerSeesawStillWins: the headline comparison holds under
// multiprogramming (the paper's traces include co-running applications).
func TestCoRunnerSeesawStillWins(t *testing.T) {
	cfg := corunnerCfg(t)
	cfg.CacheKind = KindBaseline
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheKind = KindSeesaw
	see, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if see.Cycles >= base.Cycles {
		t.Errorf("SEESAW %d !< baseline %d under multiprogramming", see.Cycles, base.Cycles)
	}
}

// TestCoRunnerIsolation: the two processes must never share physical
// lines — cross-ASID coherence invalidations of the main process's data
// by the co-runner would indicate address-space leakage. We check a
// proxy: the run completes with plausible stats and the co-runner slices
// do not corrupt the main process's superpage fraction metric.
func TestCoRunnerIsolation(t *testing.T) {
	r, err := Run(corunnerCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.SuperRefFraction < 0.5 || r.SuperRefFraction > 1 {
		t.Errorf("main-process superpage fraction polluted: %v", r.SuperRefFraction)
	}
}

func TestCoRunnerDefaultSlice(t *testing.T) {
	cfg := quickCfg(t, "astar", KindSeesaw)
	co := mustProfile(t, "gups")
	cfg.CoRunner = &co
	cfg.ContextSwitchEvery = 15_000
	// CoRunSliceRefs left zero: default applies.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	_ = workload.OSRegionMB
}
