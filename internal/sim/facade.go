package sim

import (
	"seesaw/internal/check"
	"seesaw/internal/core"
	"seesaw/internal/faults"
	"seesaw/internal/machine"
	"seesaw/internal/metrics"
)

// This file re-exports the leaf-config vocabularies commands need to
// populate a Config and render a Report, so cmd/ depends on the sim
// surface alone rather than on every internal substrate package (the
// tools/importgate check enforces that boundary).

// FaultsConfig configures the deterministic fault injector
// (Config.Faults).
type FaultsConfig = faults.Config

// FaultSchedules lists the named fault schedules, for flag help and
// chaos sweeps.
func FaultSchedules() []string { return faults.Schedules() }

// FaultKindName renders a fault-kind event argument (metrics.EvFault's
// Arg) by name.
func FaultKindName(arg uint64) string { return faults.Kind(arg).String() }

// CheckKindName renders an invariant-violation event argument
// (EvViolation's Arg) by name.
func CheckKindName(arg uint64) string { return check.KindName(arg) }

// MetricsConfig configures the observability layer (Config.Metrics).
type MetricsConfig = metrics.Config

// MetricsSeries is the epoch time-series a metrics-enabled run reports
// (Report.Metrics) and a pool merges across cells.
type MetricsSeries = metrics.Series

// Event is one entry of the structured event ring; EvFault and
// EvViolation are the kinds whose arguments commands render by name.
type Event = metrics.Event

const (
	EvFault     = metrics.EvFault
	EvViolation = metrics.EvViolation
)

// PromMetric is one extra gauge appended to a Prometheus snapshot.
type PromMetric = metrics.PromMetric

// FourEightWay is the 4/8-way insertion-policy ablation knob
// (Config.Policy).
const FourEightWay = core.FourEightWay

// ConfigError is the typed rejection Config.Validate returns for knob
// combinations it can attribute to a single constraint (unwrap with
// errors.As); Rule enumerates the stable machine-readable identifiers.
// The evolutionary search (internal/evolve) prunes invalid genomes on
// these instead of crashing a worker.
type (
	ConfigError = machine.ConfigError
	Rule        = machine.Rule
)

const (
	RulePartitionsNotPow2      = machine.RulePartitionsNotPow2
	RulePartitionsExceedWays   = machine.RulePartitionsExceedWays
	RuleWaysNotDivisible       = machine.RuleWaysNotDivisible
	RuleTFTEntriesNegative     = machine.RuleTFTEntriesNegative
	RuleTFTAssocInvalid        = machine.RuleTFTAssocInvalid
	RuleTFTEntriesNotDivisible = machine.RuleTFTEntriesNotDivisible
	RuleTFTSetsNotPow2         = machine.RuleTFTSetsNotPow2
	RuleSpecThresholdNegative  = machine.RuleSpecThresholdNegative
	RuleSchedulerContradiction = machine.RuleSchedulerContradiction
	RuleMemhogRange            = machine.RuleMemhogRange
	RuleTraceWarmup            = machine.RuleTraceWarmup
	RuleUnknownDesign          = machine.RuleUnknownDesign
)
