// Package sim is the one-call front door to the whole-system simulator:
// Run (or RunContext) takes a Config, executes the warmup and measured
// phases, and returns the Report the experiment harness turns into the
// paper's tables and figures.
//
// The simulated machine itself — construction and wiring of physical
// memory, the OS memory manager, per-core TLB hierarchies, TFTs, L1
// data/instruction caches, the coherent LLC, and CPU timing models, plus
// per-reference execution and warm-state snapshots — lives in
// internal/machine. This package re-exports the machine's Config and
// Report types (and, in facade.go, the few leaf-config vocabularies
// commands need) so callers depend on one stable surface; sweeps that
// want to share a warmed machine across cells use internal/machine and
// internal/runner's shared-warmup pool directly.
package sim

import (
	"context"

	"seesaw/internal/machine"
)

// CacheKind selects the L1 design under test by registry name.
type CacheKind = machine.CacheKind

const (
	// KindBaseline is the conventional VIPT L1.
	KindBaseline = machine.KindBaseline
	// KindSeesaw is the paper's design.
	KindSeesaw = machine.KindSeesaw
	// KindPIPT is the serial physically-indexed alternative (Fig 14).
	KindPIPT = machine.KindPIPT
	// KindVespa is the superpage-aware VIPT alternative (no TFT).
	KindVespa = machine.KindVespa
)

// ParseCacheKind resolves a design name against the registry, returning
// a typed ConfigError (RuleUnknownDesign) for unknown spellings instead
// of silently defaulting to baseline.
func ParseCacheKind(name string) (CacheKind, error) {
	return machine.ParseCacheKind(name)
}

// DesignNames lists every registered L1 design in registration order,
// for flag help and sweep enumeration.
func DesignNames() []string { return machine.DesignNames() }

// DesignInfo is one registered design's enumeration metadata.
type DesignInfo = machine.DesignInfo

// DesignInfos lists every registered design's metadata in registration
// order, for registry-derived menus and sweep matrices.
func DesignInfos() []DesignInfo { return machine.DesignInfos() }

// Config describes one simulation. See machine.Config for the full
// field documentation.
type Config = machine.Config

// Report is the result of one simulation.
type Report = machine.Report

// TFTReport aggregates TFT behavior across cores.
type TFTReport = machine.TFTReport

// SchemaVersion identifies the Report wire format for persisted
// results; internal/store folds it into every content address.
const SchemaVersion = machine.SchemaVersion

// Run executes one simulation.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one simulation under ctx: when ctx is canceled the
// reference loop stops at the next poll point and returns ctx's error,
// releasing the goroutine and every structure the run allocated. This is
// how the runner's per-cell timeout and the service's per-job
// cancellation actually reclaim a stuck or abandoned cell instead of
// leaking it.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	m, err := machine.Build(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Warmup(ctx); err != nil {
		return nil, err
	}
	if err := m.Measure(ctx); err != nil {
		return nil, err
	}
	return m.Report()
}
