// Package sim wires every substrate into the whole-system simulator the
// evaluation runs on: per-core CPU timing models, L1 data caches
// (SEESAW, baseline VIPT, or PIPT), TLB hierarchies with TFTs, a shared
// page table managed by the OS memory manager over fragmentable physical
// memory, and a coherent LLC. One Run replays a deterministic workload
// and returns the Report the experiment harness turns into the paper's
// tables and figures.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/check"
	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/cpu"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/osmm"
	"seesaw/internal/pagetable"
	"seesaw/internal/physmem"
	"seesaw/internal/tft"
	"seesaw/internal/tlb"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

// CacheKind selects the L1 design under test.
type CacheKind int

const (
	// KindBaseline is the conventional VIPT L1.
	KindBaseline CacheKind = iota
	// KindSeesaw is the paper's design.
	KindSeesaw
	// KindPIPT is the serial physically-indexed alternative (Fig 14).
	KindPIPT
)

// String implements fmt.Stringer.
func (k CacheKind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindSeesaw:
		return "seesaw"
	case KindPIPT:
		return "pipt"
	}
	return fmt.Sprintf("CacheKind(%d)", int(k))
}

// Config describes one simulation.
type Config struct {
	Workload workload.Profile
	Seed     int64
	// Refs is the number of memory references to replay (0 defaults to
	// 200k). A negative value means an explicit zero: replay nothing and
	// report an empty timeline — the escape hatch callers whose own zero
	// value must mean "default" (experiments.Options, cmd flags) use to
	// express a genuine zero.
	Refs int
	// Trace, when non-nil, replays these pre-recorded references (e.g.
	// from cmd/seesaw-tracegen) instead of generating them online. The
	// trace must have been produced from the same Workload profile and
	// seed-independent region layout, since addresses are interpreted
	// against this run's mappings. Refs is clamped to the trace length.
	Trace []trace.Record

	CacheKind CacheKind
	L1Size    uint64
	L1Ways    int
	// Partitions: 0 = SEESAW default (4-way partitions).
	Partitions int
	Policy     core.InsertionPolicy
	WayPredict bool
	// Replacement selects the L1 victim policy (LRU default, SRRIP for
	// the replacement ablation).
	Replacement cache.Replacement
	TFT         tft.Config
	// SerialTLBCycles applies to PIPT only.
	SerialTLBCycles int
	// SmallTLB replaces the normal TLB hierarchy with the reduced one a
	// serial PIPT design forces (translation on the critical path must
	// resolve in one cycle) — the Fig 14 trade-off.
	SmallTLB bool

	FreqGHz float64
	// CPUKind is "ooo" (Sandybridge-like) or "inorder" (Atom-like).
	CPUKind string
	// SchedulerAlwaysFast / SchedulerAlwaysSlow override the paper's
	// counter-gated speculation policy (ablation).
	SchedulerAlwaysFast bool
	SchedulerAlwaysSlow bool

	CoherenceMode coherence.Mode

	// MemBytes is simulated physical memory (default 1GB; 4GB when
	// Heap1G is set).
	MemBytes uint64
	// Heap1G backs the workload's heap with explicit 1GB superpages
	// (hugetlbfs-style) instead of transparent 2MB pages — the paper's
	// "generalizes readily to 1GB superpages" extension.
	Heap1G bool
	// ICache models the private 32KB L1 instruction caches (Table II)
	// and the instruction-fetch stream, using the same design
	// (baseline/SEESAW) as the data cache — the paper's proposed
	// instruction-side application of SEESAW.
	ICache bool
	// TextHuge maps the text region with transparent 2MB pages (Linux's
	// hugepage-text); without it code is 4KB-backed and SEESAW-I has no
	// fast-path opportunities on fetches.
	TextHuge bool
	// MemhogFraction fragments physical memory before the workload maps
	// its footprint (Fig 3, Fig 12).
	MemhogFraction float64
	// THP disables transparent superpages entirely when false.
	THPOff bool

	// OS activity (in references; 0 disables).
	ContextSwitchEvery int
	PromoteScanEvery   int
	SplinterEvery      int

	// Prefetch enables a next-line L1 prefetcher: every demand miss also
	// fetches the following line (within the same 4KB frame, as hardware
	// prefetchers do). Prefetches run off the critical path; their
	// fills and coherence traffic are fully modeled. Used to check that
	// SEESAW's benefits survive a prefetcher's higher hit rates.
	Prefetch bool

	// Faults, when non-nil, injects a deterministic fault schedule into
	// the run: mid-run splinters, invlpg bursts, forced context
	// switches, promotion storms, and memory-pressure spikes (see
	// internal/faults). The injector draws from its own seeded RNG, so a
	// faulted run replays the same workload as its clean twin.
	Faults *faults.Config
	// CheckInvariants enables the online invariant checker (see
	// internal/check): after every reference the TLB/TFT/cache/directory
	// state is audited against page-table ground truth, and violations
	// are reported in Report.Check. Roughly doubles runtime; intended
	// for chaos sweeps and debugging, not performance measurement.
	CheckInvariants bool

	// Metrics, when non-nil, enables the observability layer (see
	// internal/metrics): per-core counters sampled into an epoch
	// time-series plus a bounded structured event ring that the fault
	// injector and invariant checker annotate. Report.Metrics carries
	// the result. Nil — the default — costs one nil check per emit site
	// and zero allocations.
	Metrics *metrics.Config

	// CoRunner, when non-nil, makes context switches real: every
	// ContextSwitchEvery references each application core switches to a
	// second process (ASID 2) running this profile for CoRunSliceRefs
	// references, then switches back. TLBs are ASID-tagged and keep the
	// application's entries across the switch; the TFT is not, and is
	// flushed (Section IV-C3). The co-runner's time is part of the
	// measured timeline, as in the paper's traces ("instructions of
	// other applications running in parallel").
	CoRunner       *workload.Profile
	CoRunSliceRefs int

	Prices energy.Prices
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Refs == 0 {
		c.Refs = 200_000
	} else if c.Refs < 0 {
		c.Refs = 0
	}
	if c.Trace != nil && c.Refs > len(c.Trace) {
		c.Refs = len(c.Trace)
	}
	if c.L1Size == 0 {
		c.L1Size = 32 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = int(c.L1Size / (16 << 10) * 4) // 4 ways per 16KB, as Table III
	}
	if c.FreqGHz == 0 {
		c.FreqGHz = 1.33
	}
	if c.CPUKind == "" {
		c.CPUKind = "ooo"
	}
	if c.MemBytes == 0 {
		c.MemBytes = 1 << 30
		if c.Heap1G {
			c.MemBytes = 4 << 30
		}
	}
	if c.TFT.Entries == 0 {
		c.TFT = tft.DefaultConfig()
	}
	if c.Prices == (energy.Prices{}) {
		c.Prices = energy.DefaultPrices()
	}
	if c.ContextSwitchEvery == 0 {
		c.ContextSwitchEvery = 100_000
	}
	if c.PromoteScanEvery == 0 {
		c.PromoteScanEvery = 50_000
	}
	if c.CoRunner != nil && c.CoRunSliceRefs == 0 {
		c.CoRunSliceRefs = 2_000
	}
	return c
}

// Validate reports configuration errors — impossible cache geometries,
// unknown CPU kinds, contradictory scheduler overrides, bad fault
// schedules — as errors instead of letting Run panic deep inside a
// constructor. Run calls it first, so callers get a typed error either
// way; commands call it up front to exit with a usage error.
func (c Config) Validate() (err error) {
	// Constructors validate their own inputs and return errors, but a
	// few deep paths (SRAM latency tables, geometry math) panic on
	// inputs no caller should produce; surface those as errors too.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: invalid config: %v", r)
		}
	}()
	d := c.withDefaults()
	if d.MemhogFraction < 0 || d.MemhogFraction > 0.95 {
		return fmt.Errorf("sim: memhog fraction %v outside [0, 0.95]", d.MemhogFraction)
	}
	if d.SchedulerAlwaysFast && d.SchedulerAlwaysSlow {
		return fmt.Errorf("sim: scheduler cannot be both always-fast and always-slow")
	}
	if _, err := cpu.New(d.CPUKind); err != nil {
		return err
	}
	l1cfg := core.Config{
		SizeBytes: d.L1Size, Ways: d.L1Ways, Partitions: d.Partitions,
		FreqGHz: d.FreqGHz, TFT: d.TFT, Policy: d.Policy,
		WayPredict: d.WayPredict, SerialTLBCycles: d.SerialTLBCycles,
		Replacement: d.Replacement,
	}
	switch d.CacheKind {
	case KindBaseline:
		_, err = core.NewBaselineVIPT(l1cfg)
	case KindSeesaw:
		_, err = core.NewSeesaw(l1cfg)
	case KindPIPT:
		_, err = core.NewPIPT(l1cfg)
	default:
		err = fmt.Errorf("sim: unknown cache kind %v", d.CacheKind)
	}
	if err != nil {
		return err
	}
	if d.ICache {
		icfg := l1cfg
		icfg.SizeBytes = 32 << 10
		icfg.Ways = 8
		icfg.Partitions = 0
		switch d.CacheKind {
		case KindBaseline:
			_, err = core.NewBaselineVIPT(icfg)
		case KindSeesaw:
			_, err = core.NewSeesaw(icfg)
		case KindPIPT:
			_, err = core.NewPIPT(icfg)
		}
		if err != nil {
			return err
		}
	}
	if d.Faults != nil {
		if err := d.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TFTReport carries the Fig 13 metrics.
type TFTReport struct {
	Lookups uint64
	HitRate float64
	// SuperMissedPct is the percentage of superpage accesses the TFT
	// failed to identify, split by whether the data cache hit.
	SuperMissedPct       float64
	SuperMissedL1HitPct  float64
	SuperMissedL1MissPct float64
	SuperAccesses        uint64
	FastHits, FastMisses uint64
	// Flush/invalidation counters, summed over every TFT (data and
	// instruction side): how often the Section IV-C2/C3 invalidation
	// protocol actually fired, and how many stale fast-path hits the
	// invalidations demonstrably prevented.
	Fills            uint64
	Invalidations    uint64
	Flushes          uint64
	StaleHitsAvoided uint64
}

// SchemaVersion is the current Report JSON schema generation. Bump it
// whenever the meaning or layout of a Report field changes: the disk
// store (internal/store) treats an entry whose SchemaVersion differs
// from this value as a miss and recomputes the cell, so stale results
// from an older binary are never served. The golden schema test in
// schema_test.go pins both this number and the field set; changing
// either without the other fails the build.
const SchemaVersion = 1

// Report is the outcome of one Run.
type Report struct {
	// SchemaVersion stamps which Report generation produced this value
	// (see the SchemaVersion constant).
	SchemaVersion int

	Design   string
	Workload string

	Cycles       uint64 // slowest application core
	Instructions uint64 // application instructions
	IPC          float64
	RuntimeSec   float64

	L1Hits, L1Misses uint64
	MPKI             float64
	// L1I statistics (zero unless Config.ICache).
	L1IHits, L1IMisses uint64

	SuperpageCoverage float64 // of the mapped footprint
	SuperRefFraction  float64 // of executed references

	EnergyTotalNJ     float64
	EnergyCPUSideNJ   float64 // L1 CPU-side lookups + fills
	EnergyCoherenceNJ float64
	Energy            *energy.Account

	TFT TFTReport
	Coh coherence.Stats
	TLB struct {
		L1HitRate float64
		L2Lookups uint64
		Walks     uint64
	}
	WPAccuracy float64

	Promotions, Splinters uint64

	// Faults reports the injected-fault tally (nil unless Config.Faults).
	Faults *faults.Stats
	// Check reports the invariant-checker outcome (nil unless
	// Config.CheckInvariants).
	Check *check.Report
	// Metrics carries the epoch time-series and event log (nil unless
	// Config.Metrics).
	Metrics *metrics.Series
}

// Run executes one simulation.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// cancelCheckMask sets how often the reference loop polls its context:
// every 4096 references, cheap enough to be invisible next to the work
// of one reference yet responsive enough that a canceled or timed-out
// cell unwinds within a fraction of a millisecond.
const cancelCheckMask = 1<<12 - 1

// RunContext executes one simulation under ctx: when ctx is canceled the
// reference loop stops at the next poll point and returns ctx's error,
// releasing the goroutine and every structure the run allocated. This is
// how the runner's per-cell timeout and the service's per-job
// cancellation actually reclaim a stuck or abandoned cell instead of
// leaking it.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Physical memory, fragmentation, OS.
	buddy, err := physmem.New(cfg.MemBytes)
	if err != nil {
		return nil, err
	}
	mgr := osmm.NewManager(buddy, rng, !cfg.THPOff)
	if cfg.MemhogFraction > 0 {
		hog, err := physmem.Run(buddy, rng, cfg.MemhogFraction, 0.97)
		if err != nil {
			return nil, err
		}
		// memhog's pages are movable anonymous memory: the OS can
		// migrate them when compacting for superpage allocations.
		mgr.Compactor = hog
	}
	proc, err := mgr.NewProcess(1)
	if err != nil {
		return nil, err
	}

	// Workload regions.
	gen := workload.NewGenerator(cfg.Workload, cfg.Seed)
	var heapBase addr.VAddr
	if cfg.Heap1G {
		heapBase, err = mgr.Mmap1G(proc, gen.HeapBytes())
	} else {
		heapBase, err = mgr.MmapHuge(proc, gen.HeapBytes(), true)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: mapping heap: %w", err)
	}
	smallBase, err := mgr.MmapHuge(proc, gen.SmallBytes(), false)
	if err != nil {
		return nil, fmt.Errorf("sim: mapping small region: %w", err)
	}
	osBase, err := mgr.MmapHuge(proc, gen.OSBytes(), false)
	if err != nil {
		return nil, fmt.Errorf("sim: mapping OS region: %w", err)
	}
	gen.Bind(heapBase, smallBase, osBase)
	if cfg.ICache {
		codeBase, err := mgr.MmapHuge(proc, gen.CodeBytes(), cfg.TextHuge)
		if err != nil {
			return nil, fmt.Errorf("sim: mapping text: %w", err)
		}
		gen.BindCode(codeBase)
	}

	// Per-core structures: application threads + the system thread.
	nCores := gen.Threads() + 1

	// Optional co-runner process (ASID 2): its own address space, its
	// own per-core generators for the timeslices it steals.
	const coASID = 2
	var coGens []*workload.Generator
	if cfg.CoRunner != nil {
		proc2, err := mgr.NewProcess(coASID)
		if err != nil {
			return nil, err
		}
		// All cores replay the co-runner's thread-0 stream, each from an
		// independent deterministic generator.
		coGens = make([]*workload.Generator, nCores)
		cg := workload.NewGenerator(*cfg.CoRunner, cfg.Seed+1000)
		heap2, err := mgr.MmapHuge(proc2, cg.HeapBytes(), true)
		if err != nil {
			return nil, fmt.Errorf("sim: mapping co-runner heap: %w", err)
		}
		small2, err := mgr.MmapHuge(proc2, cg.SmallBytes(), false)
		if err != nil {
			return nil, err
		}
		os2, err := mgr.MmapHuge(proc2, cg.OSBytes(), false)
		if err != nil {
			return nil, err
		}
		for c := 0; c < nCores; c++ {
			g2 := workload.NewGenerator(*cfg.CoRunner, cfg.Seed+1000+int64(c))
			g2.Bind(heap2, small2, os2)
			coGens[c] = g2
		}
	}
	// Observability: one recorder spans the whole coherence domain (data
	// caches 0..nCores-1, instruction caches nCores..2nCores-1). mrec is
	// nil when metrics are off — every emit site below is a nil-safe
	// no-op then.
	var mrec *metrics.Recorder
	if cfg.Metrics != nil {
		recCores := nCores
		if cfg.ICache {
			recCores = 2 * nCores
		}
		mrec = metrics.New(*cfg.Metrics, recCores, cfg.Refs)
	}

	l1s := make([]core.L1Cache, nCores)
	seesaws := make([]*core.Seesaw, nCores) // nil unless KindSeesaw
	hiers := make([]*tlb.Hierarchy, nCores)
	cpus := make([]cpu.Model, nCores)
	l1cfg := core.Config{
		SizeBytes: cfg.L1Size, Ways: cfg.L1Ways, Partitions: cfg.Partitions,
		FreqGHz: cfg.FreqGHz, TFT: cfg.TFT, Policy: cfg.Policy,
		WayPredict: cfg.WayPredict, SerialTLBCycles: cfg.SerialTLBCycles,
		Replacement: cfg.Replacement,
	}
	tlbCfg := tlb.SandybridgeTLBs()
	if cfg.CPUKind == "inorder" {
		tlbCfg = tlb.AtomTLBs()
	}
	if cfg.SmallTLB {
		tlbCfg = tlb.SmallTLBs()
	}
	newL1 := func(c core.Config) (core.L1Cache, *core.Seesaw, error) {
		switch cfg.CacheKind {
		case KindBaseline:
			l1, err := core.NewBaselineVIPT(c)
			return l1, nil, err
		case KindSeesaw:
			l1, err := core.NewSeesaw(c)
			return l1, l1, err
		case KindPIPT:
			l1, err := core.NewPIPT(c)
			return l1, nil, err
		}
		return nil, nil, fmt.Errorf("sim: unknown cache kind %v", cfg.CacheKind)
	}
	// Optional per-core L1 instruction caches (Table II: split 32KB I).
	var l1is []core.L1Cache
	var iseesaws []*core.Seesaw
	if cfg.ICache {
		l1is = make([]core.L1Cache, nCores)
		iseesaws = make([]*core.Seesaw, nCores)
	}
	for i := 0; i < nCores; i++ {
		l1, s, err := newL1(l1cfg)
		if err != nil {
			return nil, err
		}
		l1s[i], seesaws[i] = l1, s
		if mrec != nil {
			l1.Storage().Metrics, l1.Storage().MetricsCore = mrec, i
			if s != nil {
				s.TFT().Metrics, s.TFT().MetricsCore = mrec, i
			}
		}
		if cfg.ICache {
			icfg := l1cfg
			icfg.SizeBytes = 32 << 10
			icfg.Ways = 8
			icfg.Partitions = 0
			il1, is, err := newL1(icfg)
			if err != nil {
				return nil, err
			}
			l1is[i], iseesaws[i] = il1, is
			if mrec != nil {
				il1.Storage().Metrics, il1.Storage().MetricsCore = mrec, nCores+i
				if is != nil {
					is.TFT().Metrics, is.TFT().MetricsCore = mrec, nCores+i
				}
			}
		}
		walker := pagetable.NewWalker(proc.PT, 20)
		h, err := tlb.NewHierarchy(tlbCfg, walker)
		if err != nil {
			return nil, err
		}
		h.Metrics, h.MetricsCore = mrec, i
		ds, is := seesaws[i], (*core.Seesaw)(nil)
		if cfg.ICache {
			is = iseesaws[i]
		}
		if ds != nil || is != nil {
			h.OnL1SuperFill = func(va addr.VAddr, asid uint16) {
				if ds != nil {
					ds.OnSuperpageTLBFill(va)
				}
				if is != nil {
					is.OnSuperpageTLBFill(va)
				}
			}
		}
		hiers[i] = h
		m, err := cpu.New(cfg.CPUKind)
		if err != nil {
			return nil, err
		}
		cpus[i] = m
	}

	cohCfg := coherence.DefaultConfig(cfg.FreqGHz)
	cohCfg.Mode = cfg.CoherenceMode
	// The instruction caches join the coherent domain as extra read-only
	// participants: I-cache of core i sits at index nCores+i.
	cohL1s := append(append([]core.L1Cache{}, l1s...), l1is...)
	cohSys, err := coherence.New(cohCfg, cohL1s)
	if err != nil {
		return nil, err
	}
	cohSys.Metrics = mrec

	// Optional shadow oracle: audits every reference and OS event
	// against page-table / directory ground truth.
	var chk *check.Checker
	if cfg.CheckInvariants {
		chk = check.New(check.Wiring{
			L1s: cohL1s, Hiers: hiers, Seesaws: seesaws, ISeesaws: iseesaws,
			Coh: cohSys, Mgr: mgr,
		})
		chk.Metrics = mrec
	}
	// curRef tags checker findings and fault events with the reference
	// index they occurred at, so a violation reproduces from (cfg, seed,
	// ref).
	var curRef uint64

	// OS event wiring: invlpg reaches every core's TLBs and TFT; page
	// promotion sweeps old frames out of every L1 under cover of the
	// 150-200 cycle TLB-invalidate instructions (Section IV-C2).
	// dropTFT models a broken invalidation protocol (fault-injection
	// mutation): the TLB side of the invlpg still happens, the TFT side
	// is silently lost — exactly the stale-entry hazard the Section
	// IV-C2 protocol prevents and the invariant checker must catch.
	dropTFT := cfg.Faults != nil && cfg.Faults.DropTFTInvalidate
	mgr.OnInvlpg = func(asid uint16, vaBase addr.VAddr) {
		// One shootdown event per 2MB region (not per 4KB page per core —
		// that would flood the ring); the per-entry drop counts land in
		// CtrTLBShootdown via Hierarchy.Invalidate.
		mrec.Emit(-1, metrics.EvTLBShootdown, uint64(vaBase), 0, uint64(asid))
		for i := range hiers {
			for off := uint64(0); off < 2<<20; off += 4096 {
				hiers[i].Invalidate(vaBase+addr.VAddr(off), asid)
			}
			if !dropTFT {
				if seesaws[i] != nil {
					seesaws[i].InvalidatePage(vaBase)
				}
				if cfg.ICache && iseesaws[i] != nil {
					iseesaws[i].InvalidatePage(vaBase)
				}
			}
			cpus[i].Stall(175) // invlpg cost, mid paper range
		}
		if chk != nil {
			chk.AfterInvlpg(curRef, asid, vaBase)
		}
	}
	mgr.OnPromote = func(asid uint16, vaBase addr.VAddr, oldFrames []addr.PAddr, newPA addr.PAddr) {
		mrec.Add(0, metrics.CtrPromotion, 1)
		mrec.Emit(-1, metrics.EvPromote, uint64(vaBase), uint64(newPA), uint64(len(oldFrames)))
		for i, l1 := range l1s {
			for _, f := range oldFrames {
				for _, v := range l1.EvictRange(f, f+4096) {
					cohSys.Evicted(i, v.PA, v.State.Dirty())
				}
			}
		}
		for i, l1i := range l1is {
			for _, f := range oldFrames {
				for _, v := range l1i.EvictRange(f, f+4096) {
					cohSys.Evicted(nCores+i, v.PA, v.State.Dirty())
				}
			}
		}
		if chk != nil {
			chk.AfterPromote(curRef, oldFrames)
		}
	}

	acct := energy.NewAccount(cfg.Prices)
	var l2Lookups uint64
	var superRefs uint64

	// Interleave: each application thread runs 8 references per system
	// thread reference, approximating the paper's traces of the target
	// application plus background system activity.
	var schedule []int
	for t := 0; t < gen.Threads(); t++ {
		for k := 0; k < 8; k++ {
			schedule = append(schedule, t)
		}
	}
	schedule = append(schedule, gen.SystemTID())

	superTLBThreshold := 0
	if st := hiers[0].L1Super(); st != nil {
		superTLBThreshold = st.Config().Entries / 4
	}

	const mainASID = 1
	// lastWidth tracks each coherence participant's most recent probe
	// width so EvProbeWidth fires only on fast/slow transitions, not on
	// every reference. Only maintained when metrics are on.
	var lastWidth []int
	if mrec != nil {
		lastWidth = make([]int, len(cohL1s))
	}
	sampleAccess := func(mcore int, va addr.VAddr, ar core.AccessResult) {
		if mrec == nil {
			return
		}
		mrec.Add(mcore, metrics.CtrRefs, 1)
		mrec.Add(mcore, metrics.CtrWaysProbed, uint64(ar.WaysProbed))
		if ar.FastPath {
			mrec.Add(mcore, metrics.CtrFastProbe, 1)
		} else {
			mrec.Add(mcore, metrics.CtrSlowProbe, 1)
		}
		if ar.WaysProbed != lastWidth[mcore] {
			lastWidth[mcore] = ar.WaysProbed
			mrec.Emit(mcore, metrics.EvProbeWidth, uint64(va), 0, uint64(ar.WaysProbed))
		}
	}
	// dataAccess runs one data reference on core tid in the given
	// address space: translate, L1 lookup, miss service / coherence
	// upgrade, scheduler-speculation resolution, retire. countStats
	// marks main-process references (superpage-fraction metric).
	dataAccess := func(tid int, rec trace.Record, asid uint16, countStats bool) error {
		h := hiers[tid]
		tr := h.Translate(rec.VA, asid)
		if tr.Source == tlb.SourceFault {
			return fmt.Errorf("sim: fault at %#x (unmapped generator address)", uint64(rec.VA))
		}
		if tr.Source != tlb.SourceL1 {
			l2Lookups++
		}
		if countStats && tr.Size.IsSuper() {
			superRefs++
		}
		store := rec.Kind != 0
		ar := l1s[tid].Access(rec.VA, tr.PA, tr.Size, store)
		acct.AddL1CPUSide(ar.EnergyNJ)
		sampleAccess(tid, rec.VA, ar)
		// Audit before the miss is filled: the full-probe ground truth
		// must reflect the state this lookup actually saw.
		if chk != nil {
			chk.AfterAccess(check.Access{
				Ref: curRef, Core: tid, VA: rec.VA, ASID: asid, TR: tr, AR: ar,
			})
		}
		// A superpage L1 TLB hit refreshes the TFT *after* this access's
		// parallel TFT probe completed: the hitting TLB entry carries
		// the page size, so the hardware re-marks a region that a
		// conflicting fill displaced. The current access still paid
		// the slow path; the next one hits the TFT. (Completes the
		// paper's fill-on-TLB-fill policy, which alone would let a
		// region whose TLB entry stays resident miss indefinitely.)
		if tr.Size.IsSuper() && tr.Source == tlb.SourceL1 && seesaws[tid] != nil {
			seesaws[tid].OnSuperpageTLBFill(rec.VA)
		}
		extra := tr.ExtraCycles
		if !ar.Hit {
			mr := cohSys.Miss(tid, tr.PA, store)
			fill := l1s[tid].Fill(tr.PA, tr.Size, store, mr.Shared)
			acct.AddL1CPUSide(fill.EnergyNJ)
			if fill.Victim.Valid {
				cohSys.Evicted(tid, fill.VictimPA, fill.Writeback)
			}
			extra += mr.Cycles
			// Next-line prefetch, staying inside the 4KB frame.
			if cfg.Prefetch {
				nextPA := tr.PA.LineBase() + addr.LineSize
				if nextPA.PageBase(addr.Page4K) == tr.PA.PageBase(addr.Page4K) {
					if _, _, resident := l1s[tid].Storage().FindLine(nextPA); !resident {
						pmr := cohSys.Miss(tid, nextPA, false)
						pfill := l1s[tid].Fill(nextPA, tr.Size, false, pmr.Shared)
						acct.AddL1CPUSide(pfill.EnergyNJ)
						if pfill.Victim.Valid {
							cohSys.Evicted(tid, pfill.VictimPA, pfill.Writeback)
						}
					}
				}
			}
		} else if store {
			switch ar.State {
			case cache.Shared, cache.Owned: // need coherence permission
				extra += cohSys.Upgrade(tid, tr.PA)
			default:
				l1s[tid].UpgradeToModified(tr.PA)
			}
		}
		assumedFast := false
		if seesaws[tid] != nil {
			switch {
			case cfg.SchedulerAlwaysFast:
				assumedFast = true
			case cfg.SchedulerAlwaysSlow:
				assumedFast = false
			default:
				// The paper's counter heuristic: speculate fast when the
				// 2MB TLB holds at least a quarter of its entries. Any
				// resident 1GB translation also licenses speculation —
				// one gigabyte entry covers 512 superpage regions, so
				// superpages are certainly not scarce.
				if st := h.L1Super(); st != nil {
					assumedFast = st.ValidCount() >= superTLBThreshold
				}
				if g1 := h.L1For(addr.Page1G); g1 != nil && g1.ValidCount() > 0 {
					assumedFast = true
				}
			}
		}
		cpus[tid].Retire(int(rec.Gap), cpu.MemCost{
			Hit:          ar.Hit,
			IsStore:      store,
			Dep:          rec.Dep,
			L1Cycles:     ar.Cycles,
			SlowL1Cycles: l1s[tid].SlowCycles(),
			AssumedFast:  assumedFast,
			ExtraCycles:  extra,
		})
		return nil
	}

	// contextSwitch runs the co-runner timeslice (if configured) on
	// every core and flushes the non-ASID-tagged TFTs. The ASID-tagged
	// TLBs keep the application's entries across the switch; the page
	// walker follows the CR3 switch to the co-runner's page table.
	contextSwitch := func() error {
		if cfg.CoRunner != nil {
			proc2 := mgr.Process(coASID)
			for c := 0; c < nCores; c++ {
				// Entering the co-runner: TFT flush and CR3 switch.
				flushTFTs(seesaws[c], iseesaws, c, cfg.ICache)
				hiers[c].Walker().Table = proc2.PT
				for k := 0; k < cfg.CoRunSliceRefs; k++ {
					rec2 := coGens[c].Next(0)
					rec2.TID = uint8(c)
					if err := dataAccess(c, rec2, coASID, false); err != nil {
						return err
					}
				}
				hiers[c].Walker().Table = proc.PT
			}
		}
		// Switching back to the application: TFT flush again.
		for c := 0; c < nCores; c++ {
			flushTFTs(seesaws[c], iseesaws, c, cfg.ICache)
		}
		return nil
	}

	// Fault injection: a seeded event stream perturbing the run on a
	// reproducible schedule (see internal/faults).
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj, err = faults.New(*cfg.Faults, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	// spike holds the frames a memhog-spike fault currently pins; the
	// next spike releases them, so pressure oscillates.
	var spike []addr.PAddr
	applyFault := func(ev faults.Event) error {
		switch ev.Kind {
		case faults.Splinter:
			cands := proc.SuperChunkVAs()
			if len(cands) == 0 {
				inj.Skip()
				return nil
			}
			va := cands[int(ev.Pick%uint64(len(cands)))]
			mrec.Add(0, metrics.CtrSplinter, 1)
			mrec.Emit(-1, metrics.EvSplinter, uint64(va), 0, 0)
			return mgr.Splinter(proc, va)
		case faults.Shootdown:
			cands := proc.ChunkVAs()
			if len(cands) == 0 {
				inj.Skip()
				return nil
			}
			// An invlpg burst over mapped regions: the mappings stay,
			// the TLBs/TFTs must still see every invalidation.
			for b := 0; b < ev.Burst; b++ {
				mgr.OnInvlpg(mainASID, cands[int((ev.Pick+uint64(b))%uint64(len(cands)))])
			}
			return nil
		case faults.ContextSwitch:
			return contextSwitch()
		case faults.PromoteStorm:
			if mgr.PromoteScan(proc, ev.Burst*4) == 0 {
				inj.Skip()
			}
			return nil
		case faults.MemhogSpike:
			if len(spike) > 0 {
				for _, pa := range spike {
					buddy.Free(pa, addr.Page4K)
				}
				spike = spike[:0]
				return nil
			}
			for n := 0; n < ev.Burst*512; n++ {
				pa, ok := buddy.Alloc(addr.Page4K)
				if !ok {
					break
				}
				spike = append(spike, pa)
			}
			if len(spike) == 0 {
				inj.Skip()
			}
			return nil
		}
		return fmt.Errorf("sim: unknown fault kind %v", ev.Kind)
	}

	for i := 0; i < cfg.Refs; i++ {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		curRef = uint64(i)
		var rec trace.Record
		if cfg.Trace != nil {
			rec = cfg.Trace[i]
			if int(rec.TID) >= nCores {
				return nil, fmt.Errorf("sim: trace record %d names thread %d but the system has %d cores",
					i, rec.TID, nCores)
			}
		} else {
			rec = gen.Next(schedule[i%len(schedule)])
		}
		tid := int(rec.TID)
		h := hiers[tid]
		if err := dataAccess(tid, rec, mainASID, true); err != nil {
			return nil, err
		}
		// Instruction fetch for this block of (gap+1) instructions.
		if cfg.ICache {
			iva, jumped := gen.NextCode(tid, int(rec.Gap)+1)
			itr := h.Translate(iva, 1)
			if itr.Source == tlb.SourceFault {
				return nil, fmt.Errorf("sim: I-fetch fault at %#x", uint64(iva))
			}
			if itr.Source != tlb.SourceL1 {
				l2Lookups++
			}
			iar := l1is[tid].Access(iva, itr.PA, itr.Size, false)
			acct.AddL1CPUSide(iar.EnergyNJ)
			sampleAccess(nCores+tid, iva, iar)
			if chk != nil {
				chk.AfterAccess(check.Access{
					Ref: curRef, Core: nCores + tid, VA: iva, ASID: 1, TR: itr, AR: iar,
				})
			}
			if itr.Size.IsSuper() && itr.Source == tlb.SourceL1 && iseesaws[tid] != nil {
				iseesaws[tid].OnSuperpageTLBFill(iva)
			}
			if !iar.Hit {
				imr := cohSys.Miss(nCores+tid, itr.PA, false)
				ifill := l1is[tid].Fill(itr.PA, itr.Size, false, imr.Shared)
				acct.AddL1CPUSide(ifill.EnergyNJ)
				if ifill.Victim.Valid {
					cohSys.Evicted(nCores+tid, ifill.VictimPA, ifill.Writeback)
				}
				// Front-end miss stall: the fetch buffer hides part of
				// it on the OoO core.
				stall := iar.Cycles + itr.ExtraCycles + imr.Cycles
				if cfg.CPUKind == "ooo" {
					stall = (stall + 1) / 2
				}
				cpus[tid].Stall(stall)
			} else if jumped {
				// Fetch-redirect bubble: a taken branch waits one L1I
				// hit latency for the new fetch group — where SEESAW-I's
				// fast path pays off.
				cpus[tid].Stall(iar.Cycles + itr.ExtraCycles)
			}
		}
		// OS background activity.
		if cfg.ContextSwitchEvery > 0 && i > 0 && i%cfg.ContextSwitchEvery == 0 {
			if err := contextSwitch(); err != nil {
				return nil, err
			}
		}
		if cfg.PromoteScanEvery > 0 && i > 0 && i%cfg.PromoteScanEvery == 0 {
			mgr.PromoteScan(proc, 2)
		}
		if cfg.SplinterEvery > 0 && i > 0 && i%cfg.SplinterEvery == 0 {
			// Splinter the superpage under the most recent heap access,
			// if any — exercising Section IV-C2 in-flight.
			if proc.ChunkIsSuper(rec.VA) {
				mrec.Add(0, metrics.CtrSplinter, 1)
				mrec.Emit(-1, metrics.EvSplinter, uint64(rec.VA), 0, 0)
				mgr.Splinter(proc, rec.VA)
			}
		}
		if inj != nil {
			if ev, ok := inj.Tick(i); ok {
				// Annotate the fault before applying it, so the event dump
				// shows the injection immediately followed by its fallout
				// (shootdowns, TFT invalidations, flushes).
				mrec.Add(0, metrics.CtrFault, 1)
				mrec.Emit(-1, metrics.EvFault, 0, 0, uint64(ev.Kind))
				if err := applyFault(ev); err != nil {
					return nil, err
				}
			}
		}
		mrec.TickRef()
	}

	r, err := buildReport(cfg, gen, proc, mgr, cohSys, l1s, l1is, seesaws, hiers, cpus, acct, l2Lookups, superRefs)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		st := inj.Stats
		r.Faults = &st
	}
	if chk != nil {
		r.Check = chk.Report()
	}
	r.Metrics = mrec.Finish()
	return r, nil
}

// buildReport assembles the Report from the component stats.
func buildReport(
	cfg Config, gen *workload.Generator, proc *osmm.Process, mgr *osmm.Manager,
	cohSys *coherence.System, l1s, l1is []core.L1Cache, seesaws []*core.Seesaw,
	hiers []*tlb.Hierarchy, cpus []cpu.Model, acct *energy.Account,
	l2Lookups, superRefs uint64,
) (*Report, error) {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Design:        l1s[0].Name(),
		Workload:      cfg.Workload.Name,
		Energy:        acct,
	}
	// Application timing: the slowest app core determines runtime.
	for t := 0; t < gen.Threads(); t++ {
		if c := cpus[t].Cycles(); c > r.Cycles {
			r.Cycles = c
		}
		r.Instructions += cpus[t].Instructions()
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	r.RuntimeSec = float64(r.Cycles) / (cfg.FreqGHz * 1e9)

	var tftLookups, tftHits uint64
	for i, l1 := range l1s {
		st := l1.Storage().Stats
		r.L1Hits += st.Hits
		r.L1Misses += st.Misses
		if s := seesaws[i]; s != nil {
			ts := s.TFT().Stats
			tftLookups += ts.Lookups
			tftHits += ts.Hits
			r.TFT.Fills += ts.Fills
			r.TFT.Invalidations += ts.Invalidations
			r.TFT.Flushes += ts.Flushes
			r.TFT.StaleHitsAvoided += ts.StaleHitsAvoided
			r.TFT.SuperAccesses += s.Stats.SuperAccesses
			r.TFT.FastHits += s.Stats.FastHits
			r.TFT.FastMisses += s.Stats.FastMisses
			missedHit := s.Stats.SuperTFTMissHits
			missedMiss := s.Stats.SuperTFTMissMisses
			if s.Stats.SuperAccesses > 0 {
				den := float64(s.Stats.SuperAccesses)
				r.TFT.SuperMissedPct += 100 * float64(missedHit+missedMiss) / den
				r.TFT.SuperMissedL1HitPct += 100 * float64(missedHit) / den
				r.TFT.SuperMissedL1MissPct += 100 * float64(missedMiss) / den
			}
		}
		// Predictor accuracy (WP designs); report core 0's.
		if i == 0 {
			switch v := l1.(type) {
			case *core.BaselineVIPT:
				if v.Predictor() != nil {
					r.WPAccuracy = v.Predictor().Accuracy()
				}
			case *core.Seesaw:
				if v.Predictor() != nil {
					r.WPAccuracy = v.Predictor().Accuracy()
				}
			}
		}
	}
	// Average the per-core TFT percentages.
	if n := countSeesaws(seesaws); n > 0 {
		r.TFT.SuperMissedPct /= float64(n)
		r.TFT.SuperMissedL1HitPct /= float64(n)
		r.TFT.SuperMissedL1MissPct /= float64(n)
	}
	r.TFT.Lookups = tftLookups
	if tftLookups > 0 {
		r.TFT.HitRate = float64(tftHits) / float64(tftLookups)
	}
	if r.Instructions > 0 {
		r.MPKI = float64(r.L1Misses) / float64(r.Instructions) * 1000
	}
	for _, l1i := range l1is {
		st := l1i.Storage().Stats
		r.L1IHits += st.Hits
		r.L1IMisses += st.Misses
		if s, ok := l1i.(*core.Seesaw); ok {
			ts := s.TFT().Stats
			tftLookups += ts.Lookups
			r.TFT.Fills += ts.Fills
			r.TFT.Invalidations += ts.Invalidations
			r.TFT.Flushes += ts.Flushes
			r.TFT.StaleHitsAvoided += ts.StaleHitsAvoided
		}
	}
	r.SuperpageCoverage = proc.SuperpageCoverage()
	if cfg.Refs > 0 {
		r.SuperRefFraction = float64(superRefs) / float64(cfg.Refs)
	}
	r.Promotions = mgr.Stats.Promotions
	r.Splinters = mgr.Stats.Splinters

	// Finish energy accounting from component stats.
	tlbLookups := uint64(cfg.Refs)
	if cfg.ICache {
		tlbLookups *= 2 // every instruction block also translates its fetch
	}
	acct.AddL1TLBLookups(tlbLookups)
	acct.AddL2TLBLookups(l2Lookups)
	acct.AddTFTLookups(tftLookups)
	var walkLevels, walks uint64
	for _, h := range hiers {
		walkLevels += h.Walker().LevelsTotal
		walks += h.Walker().Walks
	}
	acct.AddWalkLevels(walkLevels)
	cs := cohSys.Stats
	acct.AddLLCAccesses(cs.LLCHits + cs.LLCMisses + cs.Writebacks)
	acct.AddDRAMAccesses(cs.DRAMReads + cs.DRAMWrites)
	acct.AddL1Coherence(cohSys.TotalCoherenceEnergyNJ())

	r.EnergyCPUSideNJ = acct.L1CPUSideNJ
	r.EnergyCoherenceNJ = acct.L1CoherenceNJ
	r.EnergyTotalNJ = acct.TotalNJ(r.RuntimeSec)
	r.Coh = cs
	r.TLB.L2Lookups = l2Lookups
	r.TLB.Walks = walks
	// Translations resolved by the (parallel) L1 TLBs never reach the L2.
	if cfg.Refs > 0 {
		r.TLB.L1HitRate = 1 - float64(l2Lookups)/float64(cfg.Refs)
	}
	return r, nil
}

// flushTFTs flushes core c's TFTs (data side and, when modeled, the
// instruction side) on a context switch — they carry no ASIDs.
func flushTFTs(d *core.Seesaw, iseesaws []*core.Seesaw, c int, icache bool) {
	if d != nil {
		d.ContextSwitch()
	}
	if icache && iseesaws[c] != nil {
		iseesaws[c].ContextSwitch()
	}
}

func countSeesaws(ss []*core.Seesaw) int {
	n := 0
	for _, s := range ss {
		if s != nil {
			n++
		}
	}
	return n
}
