package sim

import "testing"

// TestFacadeVocabularies pins the facade's pass-throughs over the leaf
// packages cmd/ is not allowed to import: the fault-schedule list and
// the event-argument namers must resolve to real names.
func TestFacadeVocabularies(t *testing.T) {
	scheds := FaultSchedules()
	if len(scheds) == 0 {
		t.Fatal("FaultSchedules returned no schedules")
	}
	for _, s := range scheds {
		if s == "" {
			t.Fatal("FaultSchedules returned an empty name")
		}
	}
	if n := FaultKindName(0); n == "" {
		t.Error("FaultKindName(0) is empty")
	}
	if n := CheckKindName(0); n == "" {
		t.Error("CheckKindName(0) is empty")
	}
}
