package sim

import (
	"errors"
	"testing"
)

// TestFacadeVocabularies pins the facade's pass-throughs over the leaf
// packages cmd/ is not allowed to import: the fault-schedule list and
// the event-argument namers must resolve to real names.
func TestFacadeVocabularies(t *testing.T) {
	scheds := FaultSchedules()
	if len(scheds) == 0 {
		t.Fatal("FaultSchedules returned no schedules")
	}
	for _, s := range scheds {
		if s == "" {
			t.Fatal("FaultSchedules returned an empty name")
		}
	}
	if n := FaultKindName(0); n == "" {
		t.Error("FaultKindName(0) is empty")
	}
	if n := CheckKindName(0); n == "" {
		t.Error("CheckKindName(0) is empty")
	}
}

// TestDesignFacade pins the registry pass-throughs: every registered
// name parses back to itself, unknown names get the typed
// RuleUnknownDesign rejection, and the metadata view agrees with the
// name list.
func TestDesignFacade(t *testing.T) {
	names := DesignNames()
	if len(names) < 4 {
		t.Fatalf("DesignNames() = %v, want at least the seed four", names)
	}
	for _, n := range names {
		kind, err := ParseCacheKind(n)
		if err != nil || kind.String() != n {
			t.Errorf("ParseCacheKind(%q) = %q, %v", n, kind, err)
		}
	}
	if _, err := ParseCacheKind("no-such-design"); err == nil {
		t.Error("unknown design name parsed without error")
	} else {
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Rule != RuleUnknownDesign {
			t.Errorf("unknown design error = %v, want rule %s", err, RuleUnknownDesign)
		}
	}
	infos := DesignInfos()
	if len(infos) != len(names) {
		t.Fatalf("DesignInfos() has %d entries, DesignNames() %d", len(infos), len(names))
	}
	for i, d := range infos {
		if string(d.Name) != names[i] || d.Display == "" {
			t.Errorf("info %d = %+v, want name %q and a display label", i, d, names[i])
		}
	}
}
