// Package tft implements SEESAW's Translation Filter Table (Section
// IV-A2): a tiny per-core predictor recording which 2MB virtual regions
// are backed by 2MB superpages. It is probed in parallel with the L1 TLBs;
// a hit licenses the L1 cache to finish after probing only one partition.
//
// The paper's configuration is 16 entries, direct-mapped, 43-bit region
// tags — 86 bytes per core — filled whenever a 2MB translation enters the
// L1 2MB TLB, invalidated by invlpg when a superpage splinters, and
// flushed on context switches (the TFT carries no ASIDs; Section IV-C3).
// The TFT can never hit for a base-page access: only superpage-backed
// regions are ever inserted.
package tft

import (
	"seesaw/internal/addr"
	"seesaw/internal/metrics"
)

// Config sizes a TFT.
type Config struct {
	// Entries is the total entry count (paper default 16).
	Entries int
	// Assoc is the set associativity; 1 (or 0) means direct-mapped as in
	// the paper. Fills in a direct-mapped TFT simply displace the
	// occupant — no replacement policy is needed.
	Assoc int
}

// DefaultConfig is the paper's 16-entry direct-mapped TFT.
func DefaultConfig() Config { return Config{Entries: 16, Assoc: 1} }

// Stats counts TFT events.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Invalidations uint64
	Flushes       uint64
	// StaleHitsAvoided counts lookups that missed on a region whose
	// entry a recent invlpg removed — each one is an access that would
	// have taken a stale fast-path hit had the invalidation been lost
	// (the Section IV-C2 hazard), so fault runs can observe the
	// invalidation path actually doing its job.
	StaleHitsAvoided uint64
}

// TFT is the filter table. Entries store the 2MB-region tag (VA bits
// 63:21); presence of a tag means "this region is superpage-backed".
// Storage is flat: set s occupies [s*assoc, s*assoc+slen[s]) of tags,
// MRU-first, so lookups and fills never allocate.
type TFT struct {
	cfg   Config
	tags  []uint64 // region tags, MRU-first within each set window
	slen  []int32  // live entries per set
	nsets int
	Stats Stats

	// invalidated remembers regions dropped by Invalidate so the next
	// missing Lookup on one can be counted as a stale hit avoided;
	// invalOrder bounds it FIFO-style at maxInvalidated regions.
	invalidated map[uint64]struct{}
	invalOrder  []uint64

	// Metrics, when non-nil, mirrors fills/invalidations/flushes into
	// the observability layer under MetricsCore.
	Metrics     *metrics.Recorder
	MetricsCore int
}

// maxInvalidated bounds the recently-invalidated region memory; it is
// observability bookkeeping, not architectural state.
const maxInvalidated = 1024

// New creates a TFT. Invalid configurations are normalized: Assoc <= 0
// becomes direct-mapped, Entries <= 0 becomes the paper default of 16.
func New(cfg Config) *TFT {
	if cfg.Entries <= 0 {
		cfg.Entries = 16
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 1
	}
	if cfg.Assoc > cfg.Entries {
		cfg.Assoc = cfg.Entries
	}
	nsets := cfg.Entries / cfg.Assoc
	if nsets == 0 {
		nsets = 1
	}
	return &TFT{
		cfg: cfg, nsets: nsets,
		tags:        make([]uint64, nsets*cfg.Assoc),
		slen:        make([]int32, nsets),
		invalidated: make(map[uint64]struct{}),
	}
}

// Config returns the normalized configuration.
func (t *TFT) Config() Config { return t.cfg }

// SizeBytes returns the storage footprint: one 43-bit tag per entry
// (64 - 21 region bits), rounded up — 86 bytes for the 16-entry default.
func (t *TFT) SizeBytes() int { return (t.cfg.Entries*43 + 7) / 8 }

// setFor hashes a region tag to a set: the paper's VA(63:21) MOD
// (#entries) for the direct-mapped case, MOD (#sets) generally.
func (t *TFT) setFor(region uint64) int { return int(region % uint64(t.nsets)) }

// Lookup reports whether va falls in a known superpage-backed region. The
// probe completes in a fraction of a cycle (quarter of the 1.33GHz cycle
// time), so it adds no latency to the cache access.
func (t *TFT) Lookup(va addr.VAddr) bool {
	t.Stats.Lookups++
	region := va.Region2M()
	si := t.setFor(region)
	set := t.tags[si*t.cfg.Assoc : si*t.cfg.Assoc+int(t.slen[si])]
	for i, tag := range set {
		if tag == region {
			copy(set[1:i+1], set[:i])
			set[0] = region
			t.Stats.Hits++
			t.Metrics.Add(t.MetricsCore, metrics.CtrTFTHit, 1)
			return true
		}
	}
	t.Stats.Misses++
	t.Metrics.Add(t.MetricsCore, metrics.CtrTFTMiss, 1)
	if _, was := t.invalidated[region]; was {
		// The only reason this region is absent is a recent invlpg:
		// without it this lookup would have hit a stale entry.
		t.Stats.StaleHitsAvoided++
		t.forgetInvalidated(region)
	}
	return false
}

// Fill marks va's 2MB region as superpage-backed, displacing the LRU
// occupant of its set (in the direct-mapped case, the single occupant).
func (t *TFT) Fill(va addr.VAddr) {
	t.Stats.Fills++
	region := va.Region2M()
	t.Metrics.Add(t.MetricsCore, metrics.CtrTFTFill, 1)
	// A refill means the region is legitimately superpage-backed again;
	// later misses on it are ordinary, not avoided stale hits.
	t.forgetInvalidated(region)
	si := t.setFor(region)
	base := si * t.cfg.Assoc
	n := int(t.slen[si])
	set := t.tags[base : base+n]
	for i, tag := range set {
		if tag == region {
			copy(set[1:i+1], set[:i])
			set[0] = region
			return
		}
	}
	// Only a genuine insertion is a state change worth an event record;
	// re-fills of a resident region would flood the bounded ring.
	t.Metrics.Emit(t.MetricsCore, metrics.EvTFTFill, region<<21, 0, 0)
	if n >= t.cfg.Assoc {
		n = t.cfg.Assoc - 1 // displace the LRU occupant
	}
	copy(t.tags[base+1:base+n+1], t.tags[base:base+n])
	t.tags[base] = region
	t.slen[si] = int32(n + 1)
}

// Invalidate drops va's region if present, returning whether an entry was
// removed. The OS's invlpg on superpage splintering triggers this
// (Section IV-C2).
func (t *TFT) Invalidate(va addr.VAddr) bool {
	region := va.Region2M()
	si := t.setFor(region)
	base := si * t.cfg.Assoc
	n := int(t.slen[si])
	for i := 0; i < n; i++ {
		if t.tags[base+i] == region {
			copy(t.tags[base+i:base+n-1], t.tags[base+i+1:base+n])
			t.slen[si] = int32(n - 1)
			t.Stats.Invalidations++
			t.Metrics.Add(t.MetricsCore, metrics.CtrTFTInvalidate, 1)
			t.Metrics.Emit(t.MetricsCore, metrics.EvTFTInvalidate, region<<21, 0, 0)
			t.rememberInvalidated(region)
			return true
		}
	}
	return false
}

// rememberInvalidated records a dropped region, evicting the oldest
// record once the bounded memory is full.
func (t *TFT) rememberInvalidated(region uint64) {
	if _, ok := t.invalidated[region]; ok {
		return
	}
	if len(t.invalOrder) >= maxInvalidated {
		delete(t.invalidated, t.invalOrder[0])
		t.invalOrder = t.invalOrder[1:]
	}
	t.invalidated[region] = struct{}{}
	t.invalOrder = append(t.invalOrder, region)
}

// forgetInvalidated drops a region from the recently-invalidated memory.
func (t *TFT) forgetInvalidated(region uint64) {
	if _, ok := t.invalidated[region]; !ok {
		return
	}
	delete(t.invalidated, region)
	for i, r := range t.invalOrder {
		if r == region {
			t.invalOrder = append(t.invalOrder[:i], t.invalOrder[i+1:]...)
			break
		}
	}
}

// Flush empties the TFT; called on context switches since entries are not
// ASID-tagged.
func (t *TFT) Flush() {
	for i := range t.slen {
		t.slen[i] = 0
	}
	// A flush resets the stale-hit bookkeeping too: post-flush misses
	// are context-switch misses, not avoided stale hits.
	t.invalidated = make(map[uint64]struct{})
	t.invalOrder = nil
	t.Stats.Flushes++
	t.Metrics.Add(t.MetricsCore, metrics.CtrTFTFlush, 1)
	t.Metrics.Emit(t.MetricsCore, metrics.EvTFTFlush, 0, 0, 0)
}

// Contains reports whether va's region is present without touching
// recency or statistics — the invariant checker's non-perturbing probe.
func (t *TFT) Contains(va addr.VAddr) bool {
	region := va.Region2M()
	si := t.setFor(region)
	base := si * t.cfg.Assoc
	for i := 0; i < int(t.slen[si]); i++ {
		if t.tags[base+i] == region {
			return true
		}
	}
	return false
}

// ValidCount returns the number of live entries.
func (t *TFT) ValidCount() int {
	n := 0
	for _, l := range t.slen {
		n += int(l)
	}
	return n
}

// HitRate returns hits/lookups.
func (t *TFT) HitRate() float64 {
	if t.Stats.Lookups == 0 {
		return 0
	}
	return float64(t.Stats.Hits) / float64(t.Stats.Lookups)
}
