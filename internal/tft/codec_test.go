package tft

import (
	"testing"

	"seesaw/internal/addr"
)

// warmTFT builds a TFT with live entries, statistics, and invalidation
// memory.
func warmTFT() *TFT {
	f := New(Config{Entries: 16})
	a := addr.VAddr(0x7f12_3450_0000)
	gone := addr.VAddr(0x7f12_34d0_0000)
	f.Fill(a)
	f.Fill(a + 4<<21)
	f.Fill(gone)
	f.Lookup(a)
	f.Lookup(a + 8<<21) // miss
	f.Invalidate(gone)
	return f
}

// TestStateRoundTrip: a TFT restored from a captured state answers
// every lookup like the original — including the stale-hit-avoided
// accounting, whose memory must travel with the state.
func TestStateRoundTrip(t *testing.T) {
	f := warmTFT()
	fresh := New(Config{Entries: 16})
	if err := fresh.SetState(f.State()); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats != f.Stats || fresh.ValidCount() != f.ValidCount() {
		t.Errorf("restored stats %+v (%d valid), want %+v (%d valid)",
			fresh.Stats, fresh.ValidCount(), f.Stats, f.ValidCount())
	}
	// Both must count the stale-hit-avoided miss on the invalidated
	// region.
	gone := addr.VAddr(0x7f12_34d0_0000)
	f.Lookup(gone)
	fresh.Lookup(gone)
	if fresh.Stats != f.Stats {
		t.Errorf("post-lookup stats diverged: %+v vs %+v", fresh.Stats, f.Stats)
	}
}

// TestStateRejections: geometry mismatches, per-set overflows, and an
// oversized invalidation memory are all corrupt states.
func TestStateRejections(t *testing.T) {
	f := warmTFT()
	if err := New(Config{Entries: 32}).SetState(f.State()); err == nil {
		t.Error("SetState accepted a state with the wrong geometry")
	}

	over := f.State()
	over.SLen[0] = 99
	if err := New(Config{Entries: 16}).SetState(over); err == nil {
		t.Error("SetState accepted a set fuller than its ways")
	}

	neg := f.State()
	neg.SLen[0] = -1
	if err := New(Config{Entries: 16}).SetState(neg); err == nil {
		t.Error("SetState accepted a negative set length")
	}

	huge := f.State()
	huge.Invalidated = make([]uint64, maxInvalidated+1)
	if err := New(Config{Entries: 16}).SetState(huge); err == nil {
		t.Error("SetState accepted an oversized invalidation memory")
	}
}
