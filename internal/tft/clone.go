package tft

// Clone returns an independent deep copy of the TFT: same region tags
// in the same MRU order, same statistics, same recently-invalidated
// memory. The metrics mirror is NOT copied — the owner of the clone
// rewires its own.
func (t *TFT) Clone() *TFT {
	c := &TFT{
		cfg:        t.cfg,
		sets:       make([][]uint64, t.nsets),
		nsets:      t.nsets,
		Stats:      t.Stats,
		invalOrder: append([]uint64(nil), t.invalOrder...),
	}
	for i, s := range t.sets {
		c.sets[i] = append([]uint64(nil), s...)
	}
	if t.invalidated != nil {
		c.invalidated = make(map[uint64]struct{}, len(t.invalidated))
		for r := range t.invalidated {
			c.invalidated[r] = struct{}{}
		}
	}
	return c
}
