package tft

// Clone returns an independent deep copy of the TFT: same region tags
// in the same MRU order, same statistics, same recently-invalidated
// memory. The metrics mirror is NOT copied — the owner of the clone
// rewires its own.
func (t *TFT) Clone() *TFT {
	c := &TFT{
		cfg:        t.cfg,
		tags:       append([]uint64(nil), t.tags...),
		slen:       append([]int32(nil), t.slen...),
		nsets:      t.nsets,
		Stats:      t.Stats,
		invalOrder: append([]uint64(nil), t.invalOrder...),
	}
	if t.invalidated != nil {
		c.invalidated = make(map[uint64]struct{}, len(t.invalidated))
		for r := range t.invalidated {
			c.invalidated[r] = struct{}{}
		}
	}
	return c
}
