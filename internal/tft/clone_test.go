package tft

import (
	"testing"

	"seesaw/internal/addr"
)

// TestClone: the clone answers every lookup like the original — same
// tags, same MRU order, same statistics, same recently-invalidated
// memory — and the two diverge independently afterwards.
func TestClone(t *testing.T) {
	f := New(Config{Entries: 16})
	a := addr.VAddr(0x7f12_3450_0000)
	b := addr.VAddr(0x7f12_3490_0000)
	gone := addr.VAddr(0x7f12_34d0_0000)
	f.Fill(a)
	f.Fill(b)
	f.Fill(gone)
	f.Lookup(a)
	f.Lookup(a + 4<<21) // a miss, for non-trivial stats
	f.Invalidate(gone)

	c := f.Clone()
	if c.Stats != f.Stats {
		t.Errorf("clone stats %+v, want %+v", c.Stats, f.Stats)
	}
	for _, va := range []addr.VAddr{a, b, gone} {
		if c.Contains(va) != f.Contains(va) {
			t.Errorf("Contains(%#x): clone %v, original %v",
				uint64(va), c.Contains(va), f.Contains(va))
		}
	}
	// Both must count the stale-hit-avoided miss on the invalidated
	// region — the invalidation memory travelled with the clone.
	f.Lookup(gone)
	c.Lookup(gone)
	if c.Stats != f.Stats {
		t.Errorf("post-lookup stats diverged: clone %+v, original %+v", c.Stats, f.Stats)
	}

	// Divergence: flushing the clone must not touch the original.
	c.Flush()
	if c.ValidCount() != 0 {
		t.Errorf("clone ValidCount after flush = %d", c.ValidCount())
	}
	if !f.Contains(a) || !f.Contains(b) {
		t.Error("flushing the clone emptied the original")
	}
}
