package tft

import (
	"testing"
	"testing/quick"

	"seesaw/internal/addr"
)

func TestPaperSizeIs86Bytes(t *testing.T) {
	f := New(DefaultConfig())
	if f.SizeBytes() != 86 {
		t.Errorf("16-entry TFT = %d bytes, want 86 (paper Section IV-A2)", f.SizeBytes())
	}
}

func TestLookupFillInvalidate(t *testing.T) {
	f := New(DefaultConfig())
	va := addr.VAddr(0x7f12_3450_0000)
	if f.Lookup(va) {
		t.Fatal("hit on empty TFT")
	}
	f.Fill(va)
	if !f.Lookup(va) {
		t.Fatal("miss after fill")
	}
	// Any address in the same 2MB region hits.
	if !f.Lookup(va.PageBase(addr.Page2M) + 0x1fffff) {
		t.Error("same-region address missed")
	}
	// A neighboring region misses.
	if f.Lookup(va + 2<<20 + 2<<20) {
		t.Error("different region hit")
	}
	if !f.Invalidate(va + 5) {
		t.Error("invalidate found nothing")
	}
	if f.Lookup(va) {
		t.Error("hit after invalidate")
	}
	if f.Invalidate(va) {
		t.Error("second invalidate removed something")
	}
}

func TestDirectMappedDisplacement(t *testing.T) {
	f := New(Config{Entries: 16, Assoc: 1})
	a := addr.VAddr(0)        // region 0 -> set 0
	b := addr.VAddr(16 << 21) // region 16 -> also set 0
	f.Fill(a)
	f.Fill(b) // displaces a without any replacement policy
	if f.Lookup(a) {
		t.Error("displaced entry still present")
	}
	if !f.Lookup(b) {
		t.Error("new entry missing")
	}
	if f.ValidCount() != 1 {
		t.Errorf("valid = %d, want 1", f.ValidCount())
	}
}

func TestSetAssociativeKeepsConflicts(t *testing.T) {
	f := New(Config{Entries: 16, Assoc: 2}) // 8 sets
	a := addr.VAddr(0)
	b := addr.VAddr(8 << 21) // same set as a (region 8 mod 8 = 0)
	f.Fill(a)
	f.Fill(b)
	if !f.Lookup(a) || !f.Lookup(b) {
		t.Error("2-way TFT must hold both conflicting regions")
	}
	c := addr.VAddr(16 << 21) // third conflicting region evicts LRU
	f.Lookup(a)               // make a MRU
	f.Fill(c)
	if !f.Lookup(a) || !f.Lookup(c) {
		t.Error("expected a (MRU) and c resident")
	}
	if f.Lookup(b) {
		t.Error("LRU b should have been evicted")
	}
}

func TestFlush(t *testing.T) {
	f := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		f.Fill(addr.VAddr(uint64(i) << 21))
	}
	f.Flush()
	if f.ValidCount() != 0 {
		t.Errorf("valid after flush = %d", f.ValidCount())
	}
	if f.Stats.Flushes != 1 {
		t.Errorf("flushes = %d", f.Stats.Flushes)
	}
}

func TestFillIdempotent(t *testing.T) {
	f := New(DefaultConfig())
	va := addr.VAddr(0x40000000)
	f.Fill(va)
	f.Fill(va + 100) // same region
	if f.ValidCount() != 1 {
		t.Errorf("duplicate fill grew TFT to %d entries", f.ValidCount())
	}
}

func TestConfigNormalization(t *testing.T) {
	f := New(Config{})
	if f.Config().Entries != 16 || f.Config().Assoc != 1 {
		t.Errorf("normalized config = %+v", f.Config())
	}
	f = New(Config{Entries: 4, Assoc: 99})
	if f.Config().Assoc != 4 {
		t.Errorf("assoc clamped to %d, want 4", f.Config().Assoc)
	}
}

func TestStatsTaxonomy(t *testing.T) {
	f := New(DefaultConfig())
	f.Lookup(0)
	f.Fill(0)
	f.Lookup(0)
	if f.Stats.Lookups != 2 || f.Stats.Hits != 1 || f.Stats.Misses != 1 || f.Stats.Fills != 1 {
		t.Errorf("stats = %+v", f.Stats)
	}
	if f.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", f.HitRate())
	}
}

// TestNeverHitsUnfilled is the Table I invariant: "a TFT never sees hits
// for non-superpage accesses" — it can only hit regions that were filled.
func TestNeverHitsUnfilled(t *testing.T) {
	f := New(DefaultConfig())
	filled := map[uint64]bool{}
	i := 0
	fn := func(raw uint64, doFill bool) bool {
		va := addr.VAddr(raw)
		i++
		if doFill {
			f.Fill(va)
			filled[va.Region2M()] = true
			return f.Lookup(va)
		}
		hit := f.Lookup(va)
		if hit && !filled[va.Region2M()] {
			return false // hit for a region never marked superpage-backed
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
