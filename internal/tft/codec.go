package tft

import (
	"fmt"
	"sort"
)

// State is a TFT's serializable mutable state: region tags in MRU
// order, statistics, and the recently-invalidated bookkeeping (the
// stale-hit-avoided counter's memory). Geometry is config-derived.
// Invalidated carries the map keys sorted for deterministic encoding;
// InvalOrder preserves the FIFO eviction order separately.
type State struct {
	Tags        []uint64
	SLen        []int32
	Stats       Stats
	Invalidated []uint64
	InvalOrder  []uint64
}

// State captures the TFT's entries, statistics, and invalidation memory.
func (t *TFT) State() State {
	s := State{
		Tags:       append([]uint64(nil), t.tags...),
		SLen:       append([]int32(nil), t.slen...),
		Stats:      t.Stats,
		InvalOrder: append([]uint64(nil), t.invalOrder...),
	}
	s.Invalidated = make([]uint64, 0, len(t.invalidated))
	for r := range t.invalidated {
		s.Invalidated = append(s.Invalidated, r)
	}
	sort.Slice(s.Invalidated, func(i, j int) bool { return s.Invalidated[i] < s.Invalidated[j] })
	return s
}

// SetState restores the TFT in place. The receiver must have the same
// geometry the state was captured from; the metrics wiring is
// untouched.
func (t *TFT) SetState(s State) error {
	if len(s.Tags) != len(t.tags) || len(s.SLen) != len(t.slen) {
		return fmt.Errorf("tft: state geometry disagrees with the table's")
	}
	for i, n := range s.SLen {
		if n < 0 || int(n) > t.cfg.Assoc {
			return fmt.Errorf("tft: set %d holds %d entries of %d ways", i, n, t.cfg.Assoc)
		}
	}
	if len(s.Invalidated) > maxInvalidated || len(s.InvalOrder) > maxInvalidated {
		return fmt.Errorf("tft: invalidation memory overflows the %d-region bound", maxInvalidated)
	}
	copy(t.tags, s.Tags)
	copy(t.slen, s.SLen)
	t.Stats = s.Stats
	t.invalidated = make(map[uint64]struct{}, len(s.Invalidated))
	for _, r := range s.Invalidated {
		t.invalidated[r] = struct{}{}
	}
	t.invalOrder = append([]uint64(nil), s.InvalOrder...)
	return nil
}
