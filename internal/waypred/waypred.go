// Package waypred implements the MRU-based way predictor SEESAW is
// compared against and combined with in the paper's Fig 15 (after Powell
// et al. [33]). The predictor guesses which way of a set will hit; a
// correct guess reads a single way (energy of a direct-mapped access), a
// wrong guess pays a second, full probe. Prediction accuracy emerges from
// workload locality: MRU predicts well for dense, local access patterns
// and poorly for pointer-chasing workloads like graph processing — which
// is exactly the behaviour Fig 15 leans on.
package waypred

// MRU is a most-recently-used way predictor: per set it remembers the way
// of the last hit (or fill) and predicts it for the next access.
type MRU struct {
	lastWay []int16

	// Stats.
	Predictions  uint64
	Correct      uint64
	NoPrediction uint64
}

// NewMRU creates a predictor for a cache with the given number of sets.
func NewMRU(sets int) *MRU {
	lw := make([]int16, sets)
	for i := range lw {
		lw[i] = -1
	}
	return &MRU{lastWay: lw}
}

// Predict returns the predicted way for a set, or ok=false if the set has
// no history yet.
func (m *MRU) Predict(set int) (way int, ok bool) {
	w := m.lastWay[set]
	if w < 0 {
		m.NoPrediction++
		return 0, false
	}
	m.Predictions++
	return int(w), true
}

// Feedback reports the way that actually hit (or was filled) so the
// predictor can learn, and whether the last Predict for this set was
// correct (for accuracy accounting). Pass way=-1 for a cache miss with no
// fill information yet.
func (m *MRU) Feedback(set, way int, predicted bool, predictedWay int) {
	if predicted && way >= 0 && way == predictedWay {
		m.Correct++
	}
	if way >= 0 {
		m.lastWay[set] = int16(way)
	}
}

// Accuracy returns correct/predictions.
func (m *MRU) Accuracy() float64 {
	if m.Predictions == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Predictions)
}

// Reset clears all history (e.g. on context switch).
func (m *MRU) Reset() {
	for i := range m.lastWay {
		m.lastWay[i] = -1
	}
}
