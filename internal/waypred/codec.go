package waypred

import "fmt"

// State is a way predictor's serializable state: the per-set MRU
// history and the accuracy counters.
type State struct {
	LastWay      []int16
	Predictions  uint64
	Correct      uint64
	NoPrediction uint64
}

// State captures the predictor.
func (m *MRU) State() State {
	return State{
		LastWay:      append([]int16(nil), m.lastWay...),
		Predictions:  m.Predictions,
		Correct:      m.Correct,
		NoPrediction: m.NoPrediction,
	}
}

// SetState restores the predictor in place.
func (m *MRU) SetState(s State) error {
	if len(s.LastWay) != len(m.lastWay) {
		return fmt.Errorf("waypred: state has %d sets, predictor has %d", len(s.LastWay), len(m.lastWay))
	}
	copy(m.lastWay, s.LastWay)
	m.Predictions = s.Predictions
	m.Correct = s.Correct
	m.NoPrediction = s.NoPrediction
	return nil
}
