package waypred

// Clone returns an independent deep copy of the predictor: same per-set
// history, same accuracy counters.
func (m *MRU) Clone() *MRU {
	return &MRU{
		lastWay:      append([]int16(nil), m.lastWay...),
		Predictions:  m.Predictions,
		Correct:      m.Correct,
		NoPrediction: m.NoPrediction,
	}
}
