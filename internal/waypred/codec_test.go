package waypred

import "testing"

// trained builds a predictor with non-trivial history and counters.
func trained() *MRU {
	m := NewMRU(8)
	m.Predict(3) // no history yet -> NoPrediction
	m.Feedback(3, 2, false, 0)
	w, _ := m.Predict(3)
	m.Feedback(3, 2, true, w) // correct
	w, _ = m.Predict(3)
	m.Feedback(3, 1, true, w) // wrong, relearn
	return m
}

// TestStateRoundTrip: a predictor restored from a captured state
// predicts and scores exactly like the original.
func TestStateRoundTrip(t *testing.T) {
	m := trained()
	fresh := NewMRU(8)
	if err := fresh.SetState(m.State()); err != nil {
		t.Fatal(err)
	}
	if fresh.Predictions != m.Predictions || fresh.Correct != m.Correct ||
		fresh.NoPrediction != m.NoPrediction || fresh.Accuracy() != m.Accuracy() {
		t.Errorf("restored counters diverge: %+v vs %+v", fresh, m)
	}
	for set := 0; set < 8; set++ {
		aw, aok := m.Predict(set)
		bw, bok := fresh.Predict(set)
		if aw != bw || aok != bok {
			t.Errorf("set %d: original predicts %d/%v, restored %d/%v", set, aw, aok, bw, bok)
		}
	}
}

// TestStateGeometryMismatch: a state captured from a differently sized
// predictor is rejected.
func TestStateGeometryMismatch(t *testing.T) {
	if err := NewMRU(4).SetState(trained().State()); err == nil {
		t.Fatal("SetState accepted a state with the wrong set count")
	}
}

// TestClone: the clone carries history and counters, then diverges
// independently.
func TestClone(t *testing.T) {
	m := trained()
	c := m.Clone()
	if c.Predictions != m.Predictions || c.Correct != m.Correct || c.NoPrediction != m.NoPrediction {
		t.Errorf("clone counters diverge: %+v vs %+v", c, m)
	}
	if w, ok := c.Predict(3); !ok || w != 1 {
		t.Errorf("clone Predict(3) = %d/%v, want 1/true", w, ok)
	}
	c.Reset()
	if _, ok := m.Predict(3); !ok {
		t.Error("resetting the clone wiped the original's history")
	}
}
