package waypred

import "testing"

func TestNoPredictionOnColdSet(t *testing.T) {
	m := NewMRU(64)
	if _, ok := m.Predict(5); ok {
		t.Error("cold set predicted")
	}
	if m.NoPrediction != 1 {
		t.Errorf("NoPrediction = %d", m.NoPrediction)
	}
}

func TestLearnAndPredict(t *testing.T) {
	m := NewMRU(64)
	m.Feedback(5, 3, false, 0)
	w, ok := m.Predict(5)
	if !ok || w != 3 {
		t.Fatalf("Predict = %d %v, want 3 true", w, ok)
	}
	m.Feedback(5, 3, true, w)
	if m.Correct != 1 || m.Predictions != 1 {
		t.Errorf("stats: correct=%d predictions=%d", m.Correct, m.Predictions)
	}
	if m.Accuracy() != 1.0 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
}

func TestMispredictionAccounting(t *testing.T) {
	m := NewMRU(8)
	m.Feedback(0, 1, false, 0)
	w, _ := m.Predict(0)
	m.Feedback(0, 2, true, w) // actual way 2 != predicted 1
	if m.Correct != 0 {
		t.Error("misprediction counted as correct")
	}
	// Predictor must have learned the new MRU way.
	if w2, _ := m.Predict(0); w2 != 2 {
		t.Errorf("predicted %d after feedback, want 2", w2)
	}
}

func TestMissWithNoFillInfoKeepsHistory(t *testing.T) {
	m := NewMRU(8)
	m.Feedback(0, 4, false, 0)
	m.Feedback(0, -1, true, 4) // miss, no way info
	if w, ok := m.Predict(0); !ok || w != 4 {
		t.Errorf("history lost on miss: %d %v", w, ok)
	}
}

func TestReset(t *testing.T) {
	m := NewMRU(4)
	m.Feedback(1, 2, false, 0)
	m.Reset()
	if _, ok := m.Predict(1); ok {
		t.Error("prediction survived reset")
	}
}

func TestAccuracyZeroWithoutPredictions(t *testing.T) {
	m := NewMRU(4)
	if m.Accuracy() != 0 {
		t.Error("accuracy without predictions must be 0")
	}
}
