package coherence

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/core"
	"seesaw/internal/tft"
)

// newSystem builds n SEESAW L1s over a small LLC so eviction paths are
// easy to exercise.
func newSystem(t *testing.T, n int, mode Mode) (*System, []*core.Seesaw) {
	t.Helper()
	l1s := make([]core.L1Cache, n)
	raw := make([]*core.Seesaw, n)
	for i := range l1s {
		s := core.MustNewSeesaw(core.Config{
			SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33, TFT: tft.DefaultConfig(),
		})
		l1s[i] = s
		raw[i] = s
	}
	cfg := DefaultConfig(1.33)
	cfg.Mode = mode
	sys, err := New(cfg, l1s)
	if err != nil {
		t.Fatal(err)
	}
	return sys, raw
}

// loadTo performs a full load (access + miss service + fill) for a core.
func loadTo(sys *System, l1 core.L1Cache, c int, pa addr.PAddr) MissResult {
	r := l1.Access(addr.VAddr(pa), pa, addr.Page4K, false)
	if r.Hit {
		return MissResult{}
	}
	mr := sys.Miss(c, pa, false)
	f := l1.Fill(pa, addr.Page4K, false, mr.Shared)
	if f.Victim.Valid {
		sys.Evicted(c, f.VictimPA, f.Writeback)
	}
	return mr
}

func storeTo(sys *System, l1 core.L1Cache, c int, pa addr.PAddr) {
	r := l1.Access(addr.VAddr(pa), pa, addr.Page4K, true)
	if r.Hit {
		if r.State == cache.Shared || r.State == cache.Owned {
			sys.Upgrade(c, pa)
		} else {
			l1.UpgradeToModified(pa)
		}
		return
	}
	mr := sys.Miss(c, pa, true)
	f := l1.Fill(pa, addr.Page4K, true, mr.Shared)
	if f.Victim.Valid {
		sys.Evicted(c, f.VictimPA, f.Writeback)
	}
	_ = mr
}

func TestFirstLoadComesFromDRAM(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	mr := loadTo(sys, l1s[0], 0, 0x1000)
	if !mr.FromDRAM || mr.FromLLC || mr.FromPeer {
		t.Fatalf("first load: %+v, want DRAM", mr)
	}
	if mr.Shared {
		t.Error("sole copy must fill Exclusive")
	}
	if sys.Stats.DRAMReads != 1 || sys.Stats.LLCMisses != 1 {
		t.Errorf("stats = %+v", sys.Stats)
	}
}

func TestSecondCoreLoadSharesFromPeer(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	loadTo(sys, l1s[0], 0, 0x1000) // core 0 now Exclusive
	mr := loadTo(sys, l1s[1], 1, 0x1000)
	if !mr.Shared {
		t.Error("second copy must fill Shared")
	}
	if !mr.FromPeer {
		t.Errorf("expected peer supply (owner downgrade): %+v", mr)
	}
	if sys.Stats.Downgrades != 1 {
		t.Errorf("downgrades = %d, want 1", sys.Stats.Downgrades)
	}
}

func TestLLCHitAfterL1Eviction(t *testing.T) {
	sys, l1s := newSystem(t, 1, Directory)
	pa := addr.PAddr(0x1000)
	loadTo(sys, l1s[0], 0, pa)
	// Push pa out of its L1 set partition with conflicting lines.
	for i := 1; i <= 4; i++ {
		loadTo(sys, l1s[0], 0, pa+addr.PAddr(i<<13))
	}
	mr := loadTo(sys, l1s[0], 0, pa)
	if !mr.FromLLC {
		t.Errorf("reload after L1 eviction: %+v, want LLC hit", mr)
	}
	if sys.Stats.LLCHits == 0 {
		t.Error("no LLC hits recorded")
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	sys, l1s := newSystem(t, 3, Directory)
	pa := addr.PAddr(0x2000)
	loadTo(sys, l1s[0], 0, pa)
	loadTo(sys, l1s[1], 1, pa)
	storeTo(sys, l1s[2], 2, pa)
	if sys.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", sys.Stats.Invalidations)
	}
	// The two old sharers must have lost their copies.
	for c := 0; c < 2; c++ {
		if r := l1s[c].Snoop(pa, core.SnoopPeek); r.Hit {
			t.Errorf("core %d still holds the line", c)
		}
	}
	// Writer holds Modified.
	if r := l1s[2].Snoop(pa, core.SnoopPeek); !r.Hit || r.State != cache.Modified {
		t.Errorf("writer state = %+v", r)
	}
}

func TestLoadDowngradesModifiedOwner(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	pa := addr.PAddr(0x3000)
	storeTo(sys, l1s[0], 0, pa) // core 0: Modified
	mr := loadTo(sys, l1s[1], 1, pa)
	if !mr.FromPeer {
		t.Errorf("load should be supplied by peer: %+v", mr)
	}
	if sys.Stats.Downgrades != 1 {
		t.Errorf("downgrades = %d", sys.Stats.Downgrades)
	}
	if r := l1s[0].Snoop(pa, core.SnoopPeek); r.State != cache.Owned {
		t.Errorf("old owner state = %v, want Owned", r.State)
	}
	if !mr.Shared {
		t.Error("requester must fill Shared")
	}
}

func TestUpgradePath(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	pa := addr.PAddr(0x4000)
	loadTo(sys, l1s[0], 0, pa)
	loadTo(sys, l1s[1], 1, pa) // both Shared
	storeTo(sys, l1s[0], 0, pa)
	if sys.Stats.UpgradeRequests != 1 {
		t.Errorf("upgrades = %d", sys.Stats.UpgradeRequests)
	}
	if r := l1s[0].Snoop(pa, core.SnoopPeek); r.State != cache.Modified {
		t.Errorf("writer state = %v", r.State)
	}
	if r := l1s[1].Snoop(pa, core.SnoopPeek); r.Hit {
		t.Error("sharer survived upgrade")
	}
}

func TestCoherenceEnergyAccounting(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	pa := addr.PAddr(0x5000)
	storeTo(sys, l1s[0], 0, pa)
	loadTo(sys, l1s[1], 1, pa) // downgrade probe to core 0
	if sys.CoherenceProbes[0] == 0 {
		t.Error("no probes accounted to core 0")
	}
	if sys.CoherenceEnergyNJ[0] <= 0 {
		t.Error("no coherence energy accounted")
	}
	if sys.TotalCoherenceEnergyNJ() < sys.CoherenceEnergyNJ[0] {
		t.Error("total < per-core energy")
	}
}

func TestSnoopyBroadcastsMoreProbes(t *testing.T) {
	run := func(mode Mode) uint64 {
		sys, l1s := newSystem(t, 4, mode)
		// Core 0 loads distinct lines nobody shares: directory sends no
		// probes, snoopy broadcasts to 3 peers each time.
		for i := 0; i < 50; i++ {
			loadTo(sys, l1s[0], 0, addr.PAddr(0x10000+i*64))
		}
		return sys.Stats.ProbesSent
	}
	dir, snoopy := run(Directory), run(Snoopy)
	if dir != 0 {
		t.Errorf("directory sent %d probes for unshared lines, want 0", dir)
	}
	if snoopy != 150 {
		t.Errorf("snoopy sent %d probes, want 150 (3 peers x 50 misses)", snoopy)
	}
}

func TestInclusiveLLCBackInvalidation(t *testing.T) {
	// Use a tiny LLC so evictions happen quickly.
	l1 := core.MustNewSeesaw(core.Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33})
	// LLC deliberately smaller than the L1 so LLC evictions hit lines
	// the L1 still holds.
	cfg := Config{
		Mode: Directory, LLCSizeBytes: 16 << 10, LLCWays: 2,
		LLCLatencyNS: 10, DRAMLatencyNS: 51, FreqGHz: 1.33,
	}
	sys := MustNew(cfg, []core.L1Cache{l1})
	// Stream far more lines than the LLC holds; inclusive back-invals
	// must eventually hit lines still resident in the L1.
	for i := 0; i < 4096; i++ {
		loadTo(sys, l1, 0, addr.PAddr(i*64))
	}
	if sys.Stats.BackInvals == 0 {
		t.Error("no back-invalidations from an oversubscribed inclusive LLC")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	sys, l1s := newSystem(t, 1, Directory)
	// Fill one L1 set's partition with dirty lines, then push one more
	// mapping to the same set/partition to force a dirty eviction.
	for i := 0; i < 5; i++ {
		pa := addr.PAddr(i << 13) // same set, same partition, new tags
		storeTo(sys, l1s[0], 0, pa)
	}
	if sys.Stats.Writebacks == 0 {
		t.Error("dirty eviction did not write back")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New(DefaultConfig(1.33), nil); err == nil {
		t.Error("no L1s must error")
	}
	cfg := DefaultConfig(0)
	l1 := core.MustNewSeesaw(core.Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33})
	if _, err := New(cfg, []core.L1Cache{l1}); err == nil {
		t.Error("zero frequency must error")
	}
	cfg = DefaultConfig(1.33)
	cfg.LLCSizeBytes = 12345
	if _, err := New(cfg, []core.L1Cache{l1}); err == nil {
		t.Error("bad LLC geometry must error")
	}
}

// TestSingleCoreNeverSelfProbes: a core's own misses must not generate
// probes to itself.
func TestSingleCoreNeverSelfProbes(t *testing.T) {
	sys, l1s := newSystem(t, 1, Snoopy)
	for i := 0; i < 100; i++ {
		loadTo(sys, l1s[0], 0, addr.PAddr(0x40000+i*64))
	}
	if sys.Stats.ProbesSent != 0 {
		t.Errorf("self-probes sent: %d", sys.Stats.ProbesSent)
	}
}

// TestDirectoryPrecisionAfterEvictions: the directory must not probe
// cores whose copies were evicted (silent clean eviction notified via
// Evicted).
func TestDirectoryPrecisionAfterEvictions(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	pa := addr.PAddr(0x6000)
	loadTo(sys, l1s[0], 0, pa)
	// Evict it from core 0's L1 by filling the set/partition.
	for i := 1; i <= 4; i++ {
		loadTo(sys, l1s[0], 0, pa+addr.PAddr(i<<13))
	}
	probesBefore := sys.Stats.ProbesSent
	storeTo(sys, l1s[1], 1, pa)
	// Directory may probe core 0 only if it still thinks it holds the
	// line; after precise Evicted bookkeeping it must not.
	if got := sys.Stats.ProbesSent - probesBefore; got != 0 {
		t.Errorf("%d probes to a core that evicted the line", got)
	}
}
