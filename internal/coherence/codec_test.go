package coherence

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/core"
	"seesaw/internal/tft"
)

// warmedSystem builds a two-core system with shared, exclusive, and
// modified lines so the directory, LLC, and per-core accumulators all
// carry state.
func warmedSystem(t *testing.T) (*System, []*core.Seesaw) {
	t.Helper()
	sys, l1s := newSystem(t, 2, Directory)
	loadTo(sys, l1s[0], 0, 0x1000)
	loadTo(sys, l1s[1], 1, 0x1000) // shared pair
	storeTo(sys, l1s[0], 0, 0x2000)
	loadTo(sys, l1s[1], 1, 0x2000) // peer supply from the modified owner
	loadTo(sys, l1s[0], 0, 0x3000) // exclusive
	return sys, l1s
}

// restoreTwin restores the system's state (L1s included) onto a fresh
// identically shaped system.
func restoreTwin(t *testing.T, sys *System) (*System, []*core.Seesaw) {
	t.Helper()
	twin, l1s := newSystem(t, 2, Directory)
	srcL1s := sys.l1s
	for i, l1 := range l1s {
		if err := core.SetL1State(l1, core.StateOf(srcL1s[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := twin.SetState(sys.State()); err != nil {
		t.Fatal(err)
	}
	return twin, l1s
}

// TestSystemStateRoundTrip: a restored memory system serves the same
// misses from the same places — directory knowledge, LLC contents,
// statistics, and the per-core coherence accumulators all travel.
func TestSystemStateRoundTrip(t *testing.T) {
	sys, l1s := warmedSystem(t)
	twin, tl1s := restoreTwin(t, sys)

	if twin.Stats != sys.Stats {
		t.Errorf("restored stats %+v, want %+v", twin.Stats, sys.Stats)
	}
	for i := range sys.CoherenceEnergyNJ {
		if twin.CoherenceEnergyNJ[i] != sys.CoherenceEnergyNJ[i] ||
			twin.CoherenceProbes[i] != sys.CoherenceProbes[i] {
			t.Errorf("core %d accumulators diverge", i)
		}
	}
	// The same store on both systems must hit the same coherence paths.
	storeTo(sys, l1s[1], 1, 0x1000)
	storeTo(twin, tl1s[1], 1, 0x1000)
	if twin.Stats != sys.Stats {
		t.Errorf("post-restore store diverged: %+v vs %+v", twin.Stats, sys.Stats)
	}
	// A load of an LLC-resident line must come from the same level.
	mr0 := sys.Miss(0, 0x9000, false)
	mr1 := twin.Miss(0, 0x9000, false)
	if mr0 != mr1 {
		t.Errorf("post-restore miss diverged: %+v vs %+v", mr0, mr1)
	}
}

// TestSystemStateRejections: core-count mismatches, out-of-range
// directory owners, and LLC geometry mismatches are corrupt states.
func TestSystemStateRejections(t *testing.T) {
	sys, _ := warmedSystem(t)

	small, _ := newSystem(t, 1, Directory)
	if err := small.SetState(sys.State()); err == nil {
		t.Error("accepted a state sized for more cores")
	}

	owner := sys.State()
	owner.Dir = append([]DirState(nil), owner.Dir...)
	owner.Dir[0].Owner = 7
	twin, _ := newSystem(t, 2, Directory)
	if err := twin.SetState(owner); err == nil {
		t.Error("accepted a directory owner outside the system")
	}

	llc := sys.State()
	llc.LLC.Tags = llc.LLC.Tags[:8]
	if err := twin.SetState(llc); err == nil {
		t.Error("accepted an LLC image with the wrong geometry")
	}
}

// TestSystemClone: the clone serves from its own directory and LLC —
// traffic on one side never moves the other's statistics.
func TestSystemClone(t *testing.T) {
	sys, l1s := warmedSystem(t)
	cl1s := make([]core.L1Cache, len(l1s))
	rawClones := make([]*core.Seesaw, len(l1s))
	for i, l1 := range l1s {
		cl1s[i] = l1.Clone()
		rawClones[i] = cl1s[i].(*core.Seesaw)
	}
	c := sys.Clone(cl1s)
	if c.Stats != sys.Stats {
		t.Errorf("clone stats %+v, want %+v", c.Stats, sys.Stats)
	}
	before := sys.Stats
	storeTo(c, cl1s[1], 1, 0x1000)
	if sys.Stats != before {
		t.Error("traffic on the clone moved the original's statistics")
	}
	_ = rawClones
}

// TestPIPTAndBaselineClone covers the non-SEESAW Clone paths next to
// the coherence wiring they are cloned for.
func TestPIPTAndBaselineClone(t *testing.T) {
	ccfg := core.Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33, TFT: tft.DefaultConfig()}
	for _, l1 := range []core.L1Cache{
		core.MustNewBaselineVIPT(ccfg), core.MustNewPIPT(ccfg),
	} {
		l1.Access(0x1000, 0x1000, addr.Page4K, false)
		l1.Fill(0x1000, addr.Page4K, false, false)
		c := l1.Clone()
		r0 := l1.Access(0x1000, 0x1000, addr.Page4K, false)
		r1 := c.Access(0x1000, 0x1000, addr.Page4K, false)
		if r0 != r1 {
			t.Errorf("%s: clone access %+v, original %+v", l1.Name(), r1, r0)
		}
	}
}
