// Package coherence implements the multi-core memory system behind the
// L1s: an inclusive shared LLC (the paper's 24MB unified last-level
// cache), a MOESI directory that filters coherence probes, and an
// alternative snoopy mode that broadcasts probes to every L1 (the paper
// reports snoopy protocols increase SEESAW's energy savings by a further
// 2-5%).
//
// Every invalidation, downgrade, and back-invalidation lands on an L1 as
// a coherence lookup — the probes whose associativity cost SEESAW's 4way
// insertion policy cuts in half (Section IV-C1, Fig 11).
package coherence

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/core"
	"seesaw/internal/metrics"
	"seesaw/internal/sram"
)

// Mode selects the coherence protocol style.
type Mode int

const (
	// Directory filters probes through a full-map directory.
	Directory Mode = iota
	// Snoopy broadcasts every miss to all other L1s.
	Snoopy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Snoopy {
		return "snoopy"
	}
	return "directory"
}

// Config sizes the shared memory system.
type Config struct {
	Mode Mode
	// LLC geometry (paper: 24MB unified).
	LLCSizeBytes uint64
	LLCWays      int
	// Latencies in nanoseconds, converted at FreqGHz.
	LLCLatencyNS  float64
	DRAMLatencyNS float64
	FreqGHz       float64
}

// DefaultConfig returns the paper's Table II memory system at the given
// frequency: 24MB LLC, 51ns DRAM round trip.
func DefaultConfig(freqGHz float64) Config {
	return Config{
		Mode:         Directory,
		LLCSizeBytes: 24 << 20,
		LLCWays:      24, // 16384 sets; real 24MB LLCs are similarly non-power-of-two in ways

		LLCLatencyNS:  10,
		DRAMLatencyNS: 51,
		FreqGHz:       freqGHz,
	}
}

// Stats counts memory-system events.
type Stats struct {
	LLCHits    uint64
	LLCMisses  uint64
	DRAMReads  uint64
	DRAMWrites uint64
	Writebacks uint64 // L1 dirty evictions reaching the LLC

	ProbesSent      uint64 // coherence lookups delivered to L1s
	Invalidations   uint64
	Downgrades      uint64
	BackInvals      uint64 // inclusive-LLC back-invalidations
	PeerTransfers   uint64 // cache-to-cache supplies
	UpgradeRequests uint64
}

// dirEntry tracks one line's L1 residency.
type dirEntry struct {
	sharers uint64 // bitmask of cores holding the line
	owner   int8   // core holding M/E/O, or -1
}

// System is the shared memory system under N L1 caches.
type System struct {
	cfg  Config
	l1s  []core.L1Cache
	llc  *cache.Cache
	geom addr.CacheGeometry
	// dir holds entries by value: hot-path updates load, mutate locally,
	// and store back, so steady-state misses never allocate (the pointer
	// map used to allocate one dirEntry per tracked line).
	dir map[addr.PAddr]dirEntry
	// snoopBuf is the reusable target buffer for snoopTargets; probes
	// never recurse into snoopTargets, so one buffer suffices.
	snoopBuf []int

	llcCycles  int
	dramCycles int

	Stats Stats
	// CoherenceEnergyNJ and CoherenceProbes accumulate per-core L1
	// coherence lookup costs (Fig 11's coherence slice).
	CoherenceEnergyNJ []float64
	CoherenceProbes   []uint64

	// Metrics, when non-nil, mirrors probe/invalidation/downgrade traffic
	// into the observability layer, attributed to the probed core.
	Metrics *metrics.Recorder
}

// New builds the memory system over the given per-core L1s.
func New(cfg Config, l1s []core.L1Cache) (*System, error) {
	if len(l1s) == 0 {
		return nil, fmt.Errorf("coherence: no L1 caches")
	}
	if len(l1s) > 64 {
		return nil, fmt.Errorf("coherence: %d cores exceed the 64-core directory bitmask", len(l1s))
	}
	if cfg.FreqGHz <= 0 {
		return nil, fmt.Errorf("coherence: non-positive frequency")
	}
	geom, err := addr.NewCacheGeometry(cfg.LLCSizeBytes, cfg.LLCWays, 1)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:               cfg,
		l1s:               l1s,
		llc:               cache.New(geom),
		geom:              geom,
		dir:               make(map[addr.PAddr]dirEntry),
		snoopBuf:          make([]int, 0, len(l1s)),
		llcCycles:         sram.Cycles(cfg.LLCLatencyNS, cfg.FreqGHz),
		dramCycles:        sram.Cycles(cfg.LLCLatencyNS+cfg.DRAMLatencyNS, cfg.FreqGHz),
		CoherenceEnergyNJ: make([]float64, len(l1s)),
		CoherenceProbes:   make([]uint64, len(l1s)),
	}, nil
}

// MustNew panics on error.
func MustNew(cfg Config, l1s []core.L1Cache) *System {
	s, err := New(cfg, l1s)
	if err != nil {
		panic(err)
	}
	return s
}

// MissResult describes how an L1 miss was satisfied.
type MissResult struct {
	// Cycles is the latency beyond the L1 lookup itself.
	Cycles int
	// Shared tells the requesting L1 to fill in Shared (other copies
	// exist) rather than Exclusive.
	Shared bool
	// FromPeer, FromLLC, FromDRAM identify the data source.
	FromPeer bool
	FromLLC  bool
	FromDRAM bool
}

// entry loads a line's directory entry (or a fresh unowned one) by
// value; callers mutate the copy and store it back when done.
func (s *System) entry(line addr.PAddr) dirEntry {
	e, ok := s.dir[line]
	if !ok {
		e = dirEntry{owner: -1}
	}
	return e
}

// probe delivers one coherence lookup to an L1 and accounts its cost.
func (s *System) probe(coreID int, pa addr.PAddr, op core.SnoopOp) core.ProbeResult {
	r := s.l1s[coreID].Snoop(pa, op)
	s.Stats.ProbesSent++
	s.CoherenceProbes[coreID]++
	s.CoherenceEnergyNJ[coreID] += r.EnergyNJ
	s.Metrics.Add(coreID, metrics.CtrCohProbe, 1)
	return r
}

// llcLookup accesses the LLC; on a miss it fetches from DRAM, installs
// the line, and back-invalidates any L1 copies of the LLC victim
// (inclusive hierarchy).
func (s *System) llcLookup(pa addr.PAddr, store bool) (hitLLC bool, cycles int) {
	line := pa.LineBase()
	set, tag := s.geom.SetIndexP(line), s.geom.TagP(line)
	if _, hit := s.llc.Access(set, cache.AnyPartition, tag); hit {
		s.Stats.LLCHits++
		return true, s.llcCycles
	}
	s.Stats.LLCMisses++
	s.Stats.DRAMReads++
	st := cache.Exclusive
	if store {
		st = cache.Modified
	}
	v := s.llc.Insert(set, cache.AnyPartition, tag, st)
	if v.Valid {
		victimPA := s.geom.LineFromSetTag(set, v.Tag)
		s.backInvalidate(victimPA)
		if v.State.Dirty() {
			s.Stats.DRAMWrites++
		}
	}
	return false, s.dramCycles
}

// backInvalidate removes every L1 copy of an LLC victim (inclusive LLC),
// writing dirty data back to DRAM.
func (s *System) backInvalidate(pa addr.PAddr) {
	e, ok := s.dir[pa.LineBase()]
	if !ok {
		return
	}
	for c := 0; c < len(s.l1s); c++ {
		if e.sharers&(1<<uint(c)) == 0 {
			continue
		}
		r := s.probe(c, pa, core.SnoopInvalidate)
		s.Stats.BackInvals++
		if r.Hit && r.State.Dirty() {
			s.Stats.DRAMWrites++
		}
	}
	delete(s.dir, pa.LineBase())
}

// snoopTargets returns the cores to probe for a request from reqCore: the
// directory filters to actual sharers; snoopy mode broadcasts. The
// returned slice aliases a scratch buffer valid until the next call.
func (s *System) snoopTargets(reqCore int, sharers uint64) []int {
	targets := s.snoopBuf[:0]
	for c := 0; c < len(s.l1s); c++ {
		if c == reqCore {
			continue
		}
		if s.cfg.Mode == Snoopy || sharers&(1<<uint(c)) != 0 {
			targets = append(targets, c)
		}
	}
	s.snoopBuf = targets
	return targets
}

// Miss services an L1 miss from reqCore for pa; store selects a
// write-intent request (RFO). The caller then fills its L1 with the
// returned sharing state and reports the fill's victim via Evicted.
func (s *System) Miss(reqCore int, pa addr.PAddr, store bool) MissResult {
	line := pa.LineBase()
	e := s.entry(line)
	res := MissResult{Cycles: s.llcCycles} // directory/LLC tag access
	// Probe peers: all sharers on a store (invalidate), the owner on a
	// load (downgrade). Snoopy mode broadcasts regardless.
	peerHadData := false
	if store {
		for _, c := range s.snoopTargets(reqCore, e.sharers) {
			r := s.probe(c, pa, core.SnoopInvalidate)
			if r.Hit {
				s.Stats.Invalidations++
				s.Metrics.Add(c, metrics.CtrCohInvalidate, 1)
				s.Metrics.Emit(c, metrics.EvCohInvalidate, 0, uint64(line), 0)
				peerHadData = true
				if r.State.Dirty() {
					s.Stats.Writebacks++
					s.llcInstall(line, cache.Modified)
				}
			}
		}
		e.sharers = 0
		e.owner = -1
	} else {
		for _, c := range s.snoopTargets(reqCore, e.sharers) {
			// Only the owner must be probed in directory mode; snoopy
			// probes everyone.
			if s.cfg.Mode == Directory && int(e.owner) != c {
				continue
			}
			r := s.probe(c, pa, core.SnoopDowngrade)
			if r.Hit {
				s.Stats.Downgrades++
				s.Metrics.Add(c, metrics.CtrCohDowngrade, 1)
				s.Metrics.Emit(c, metrics.EvCohDowngrade, 0, uint64(line), 0)
				peerHadData = true
			}
		}
	}
	if peerHadData {
		s.Stats.PeerTransfers++
		res.FromPeer = true
		res.Cycles += s.llcCycles // cache-to-cache via the LLC interconnect
	} else {
		hit, cyc := s.llcLookup(pa, store)
		res.Cycles = cyc
		res.FromLLC = hit
		res.FromDRAM = !hit
	}
	// Update directory for the requester.
	if store {
		e.sharers = 1 << uint(reqCore)
		e.owner = int8(reqCore)
		res.Shared = false
	} else {
		res.Shared = e.sharers != 0 || peerHadData
		e.sharers |= 1 << uint(reqCore)
		if !res.Shared {
			e.owner = int8(reqCore)
		} else if e.owner == int8(reqCore) {
			e.owner = -1
		}
	}
	s.dir[line] = e
	return res
}

// llcInstall writes a line into the LLC (peer writeback path).
func (s *System) llcInstall(line addr.PAddr, st cache.State) {
	set, tag := s.geom.SetIndexP(line), s.geom.TagP(line)
	if way, hit := s.llc.Probe(set, cache.AnyPartition, tag); hit {
		s.llc.SetState(set, way, st)
		return
	}
	v := s.llc.Insert(set, cache.AnyPartition, tag, st)
	if v.Valid {
		s.backInvalidate(s.geom.LineFromSetTag(set, v.Tag))
		if v.State.Dirty() {
			s.Stats.DRAMWrites++
		}
	}
}

// Upgrade services a store hit on a Shared/Owned line: every other sharer
// is invalidated and the requester becomes the Modified owner.
func (s *System) Upgrade(reqCore int, pa addr.PAddr) int {
	line := pa.LineBase()
	e := s.entry(line)
	s.Stats.UpgradeRequests++
	cycles := s.llcCycles
	for _, c := range s.snoopTargets(reqCore, e.sharers) {
		r := s.probe(c, pa, core.SnoopInvalidate)
		if r.Hit {
			s.Stats.Invalidations++
			s.Metrics.Add(c, metrics.CtrCohInvalidate, 1)
			s.Metrics.Emit(c, metrics.EvCohInvalidate, 0, uint64(line), 0)
		}
	}
	e.sharers = 1 << uint(reqCore)
	e.owner = int8(reqCore)
	s.dir[line] = e
	s.l1s[reqCore].UpgradeToModified(pa)
	return cycles
}

// Evicted reports an L1 victim so the directory stays precise; dirty
// victims write back into the LLC.
func (s *System) Evicted(coreID int, pa addr.PAddr, dirty bool) {
	line := pa.LineBase()
	if e, ok := s.dir[line]; ok {
		e.sharers &^= 1 << uint(coreID)
		if e.owner == int8(coreID) {
			e.owner = -1
		}
		if e.sharers == 0 {
			delete(s.dir, line)
		} else {
			s.dir[line] = e
		}
	}
	if dirty {
		s.Stats.Writebacks++
		s.llcInstall(line, cache.Modified)
	}
}

// Residency reports the directory's view of one line: the sharer
// bitmask (bit i set when L1 i is believed to hold the line) and the
// owner core, or -1 when none. tracked is false when the directory has
// no entry at all. The invariant checker compares this against the
// actual L1 contents — a cache holding a line the directory does not
// list is unreachable by probes and therefore incoherent.
func (s *System) Residency(pa addr.PAddr) (sharers uint64, owner int, tracked bool) {
	e, ok := s.dir[pa.LineBase()]
	if !ok {
		return 0, -1, false
	}
	return e.sharers, int(e.owner), true
}

// LLC exposes the last-level cache (stats).
func (s *System) LLC() *cache.Cache { return s.llc }

// TotalCoherenceEnergyNJ sums coherence lookup energy across cores.
func (s *System) TotalCoherenceEnergyNJ() float64 {
	var t float64
	for _, e := range s.CoherenceEnergyNJ {
		t += e
	}
	return t
}
