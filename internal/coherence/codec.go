package coherence

import (
	"fmt"
	"sort"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
)

// DirState is one directory entry, keyed by its line address.
type DirState struct {
	Line    addr.PAddr
	Sharers uint64
	Owner   int8
}

// SystemState is the memory system's serializable mutable state: the
// LLC array, the directory (sorted by line for deterministic encoding),
// statistics, and the per-core coherence energy/probe accumulators. The
// L1 wiring, latencies, and metrics mirror are config and wiring.
type SystemState struct {
	LLC      cache.Image
	Dir      []DirState
	Stats    Stats
	EnergyNJ []float64
	Probes   []uint64
}

// State captures the memory system.
func (s *System) State() SystemState {
	st := SystemState{
		LLC:      s.llc.Image(),
		Stats:    s.Stats,
		EnergyNJ: append([]float64(nil), s.CoherenceEnergyNJ...),
		Probes:   append([]uint64(nil), s.CoherenceProbes...),
	}
	st.Dir = make([]DirState, 0, len(s.dir))
	for line, e := range s.dir {
		st.Dir = append(st.Dir, DirState{Line: line, Sharers: e.sharers, Owner: e.owner})
	}
	sort.Slice(st.Dir, func(i, j int) bool { return st.Dir[i].Line < st.Dir[j].Line })
	return st
}

// SetState restores the memory system in place. The receiver must be
// wired over the same number of L1s the state was captured from.
func (s *System) SetState(st SystemState) error {
	if len(st.EnergyNJ) != len(s.CoherenceEnergyNJ) || len(st.Probes) != len(s.CoherenceProbes) {
		return fmt.Errorf("coherence: state sized for %d cores, system has %d", len(st.EnergyNJ), len(s.CoherenceEnergyNJ))
	}
	if err := s.llc.SetImage(st.LLC); err != nil {
		return err
	}
	s.dir = make(map[addr.PAddr]dirEntry, len(st.Dir))
	for _, d := range st.Dir {
		if d.Owner < -1 || int(d.Owner) >= len(s.l1s) {
			return fmt.Errorf("coherence: directory owner %d outside the system's %d caches", d.Owner, len(s.l1s))
		}
		s.dir[d.Line] = dirEntry{sharers: d.Sharers, owner: d.Owner}
	}
	copy(s.CoherenceEnergyNJ, st.EnergyNJ)
	copy(s.CoherenceProbes, st.Probes)
	s.Stats = st.Stats
	return nil
}
