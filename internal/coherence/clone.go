package coherence

import (
	"seesaw/internal/addr"
	"seesaw/internal/core"
)

// Clone returns an independent deep copy of the memory system wired to
// the given (already cloned) L1s, which must be in the same coherence
// order as the originals. The directory, LLC array, statistics, and
// per-core energy/probe accumulators all deep-copy; the metrics mirror
// is NOT copied — the owner of the clone rewires its own.
func (s *System) Clone(l1s []core.L1Cache) *System {
	c := &System{
		cfg:               s.cfg,
		l1s:               l1s,
		llc:               s.llc.Clone(),
		geom:              s.geom,
		dir:               make(map[addr.PAddr]dirEntry, len(s.dir)),
		snoopBuf:          make([]int, 0, len(l1s)),
		llcCycles:         s.llcCycles,
		dramCycles:        s.dramCycles,
		Stats:             s.Stats,
		CoherenceEnergyNJ: append([]float64(nil), s.CoherenceEnergyNJ...),
		CoherenceProbes:   append([]uint64(nil), s.CoherenceProbes...),
	}
	for line, e := range s.dir {
		c.dir[line] = e
	}
	return c
}
