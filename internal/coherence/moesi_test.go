package coherence

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/core"
)

// TestOwnedStateWritebackOnEviction: an Owned line (dirty, shared) must
// write back when evicted from its L1.
func TestOwnedStateWritebackOnEviction(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	pa := addr.PAddr(0x8000)
	storeTo(sys, l1s[0], 0, pa) // core 0 Modified
	loadTo(sys, l1s[1], 1, pa)  // downgrades core 0 to Owned
	if r := l1s[0].Snoop(pa, core.SnoopPeek); r.State != cache.Owned {
		t.Fatalf("state = %v, want Owned", r.State)
	}
	wbBefore := sys.Stats.Writebacks
	// Evict the Owned line from core 0 by filling its set/partition.
	for i := 1; i <= 4; i++ {
		loadTo(sys, l1s[0], 0, pa+addr.PAddr(i<<13))
	}
	if sys.Stats.Writebacks <= wbBefore {
		t.Error("Owned eviction did not write back")
	}
}

// TestStoreAfterDowngradeUpgrades: M -> O (peer load) -> store again must
// upgrade back to M via the directory, invalidating the sharer.
func TestStoreAfterDowngradeUpgrades(t *testing.T) {
	sys, l1s := newSystem(t, 2, Directory)
	pa := addr.PAddr(0x9000)
	storeTo(sys, l1s[0], 0, pa)
	loadTo(sys, l1s[1], 1, pa)
	storeTo(sys, l1s[0], 0, pa) // upgrade from Owned
	if r := l1s[0].Snoop(pa, core.SnoopPeek); r.State != cache.Modified {
		t.Errorf("writer state = %v, want Modified", r.State)
	}
	if r := l1s[1].Snoop(pa, core.SnoopPeek); r.Hit {
		t.Error("sharer survived the upgrade")
	}
	if sys.Stats.UpgradeRequests != 1 {
		t.Errorf("upgrades = %d", sys.Stats.UpgradeRequests)
	}
}

// TestRandomCoherenceInvariants drives random loads/stores from several
// cores and verifies the single-writer/multiple-reader invariant after
// every operation: at most one cache holds a dirty copy, and if any cache
// holds M or E, no other cache holds the line at all.
func TestRandomCoherenceInvariants(t *testing.T) {
	sys, l1s := newSystem(t, 4, Directory)
	rng := rand.New(rand.NewSource(99))
	lines := make([]addr.PAddr, 32)
	for i := range lines {
		lines[i] = addr.PAddr(0x100000 + i*64)
	}
	check := func(pa addr.PAddr) {
		var dirty, exclusive, holders int
		for c := range l1s {
			if _, way, ok := l1s[c].Storage().FindLine(pa); ok {
				holders++
				st := l1s[c].Storage().StateOf(l1s[c].Storage().Geometry().SetIndexP(pa), way)
				if st.Dirty() && st != cache.Owned {
					dirty++
				}
				if st == cache.Modified || st == cache.Exclusive {
					exclusive++
				}
			}
		}
		if dirty > 1 {
			t.Fatalf("line %#x: %d Modified copies", uint64(pa), dirty)
		}
		if exclusive > 0 && holders > 1 {
			t.Fatalf("line %#x: M/E copy coexists with %d holders", uint64(pa), holders)
		}
	}
	for i := 0; i < 20000; i++ {
		c := rng.Intn(4)
		pa := lines[rng.Intn(len(lines))]
		if rng.Intn(3) == 0 {
			storeTo(sys, l1s[c], c, pa)
		} else {
			loadTo(sys, l1s[c], c, pa)
		}
		if i%500 == 0 {
			check(pa)
		}
	}
	for _, pa := range lines {
		check(pa)
	}
}

// TestPeekDoesNotPerturbState: SnoopPeek must leave line states alone.
func TestPeekDoesNotPerturbState(t *testing.T) {
	sys, l1s := newSystem(t, 1, Directory)
	pa := addr.PAddr(0xa000)
	storeTo(sys, l1s[0], 0, pa)
	before := l1s[0].Snoop(pa, core.SnoopPeek).State
	after := l1s[0].Snoop(pa, core.SnoopPeek).State
	if before != after || after != cache.Modified {
		t.Errorf("peek perturbed state: %v -> %v", before, after)
	}
}

// TestWritebackReachesLLC: a dirty eviction must install the line in the
// LLC so a subsequent load hits there instead of DRAM.
func TestWritebackReachesLLC(t *testing.T) {
	sys, l1s := newSystem(t, 1, Directory)
	pa := addr.PAddr(0xb000)
	storeTo(sys, l1s[0], 0, pa)
	dramBefore := sys.Stats.DRAMReads
	// Force the dirty line out.
	for i := 1; i <= 4; i++ {
		loadTo(sys, l1s[0], 0, pa+addr.PAddr(i<<13))
	}
	mr := loadTo(sys, l1s[0], 0, pa)
	if !mr.FromLLC {
		t.Errorf("reload after writeback: %+v, want LLC hit", mr)
	}
	// The reload must not have touched DRAM (beyond the conflict fills).
	_ = dramBefore
}
