package pagetable

import (
	"testing"

	"seesaw/internal/addr"
)

// TestClone: the clone translates identically and is fully independent —
// promotes and unmaps on either side never leak to the other.
func TestClone(t *testing.T) {
	pt := New()
	va4 := addr.VAddr(0x7f00_1234_5000)
	va2 := addr.VAddr(0x7f00_0020_0000)
	va1 := addr.VAddr(0x40000000)
	if err := pt.Map(va4, 0xabc, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va2, 5, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va1, 2, addr.Page1G); err != nil {
		t.Fatal(err)
	}

	c := pt.Clone()
	for _, va := range []addr.VAddr{va4 + 0x123, va2 + 12345, va1 + 99} {
		pa0, s0, ok0 := pt.Translate(va)
		pa1, s1, ok1 := c.Translate(va)
		if pa0 != pa1 || s0 != s1 || ok0 != ok1 {
			t.Errorf("Translate(%#x): original %#x/%v/%v, clone %#x/%v/%v",
				uint64(va), uint64(pa0), s0, ok0, uint64(pa1), s1, ok1)
		}
	}
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		if pt.Count(s) != c.Count(s) {
			t.Errorf("Count(%v): original %d, clone %d", s, pt.Count(s), c.Count(s))
		}
	}

	// Splinter the original's 2MB page; the clone must keep it whole.
	if _, err := pt.Splinter(va2); err != nil {
		t.Fatal(err)
	}
	if _, s, ok := c.Translate(va2 + 12345); !ok || s != addr.Page2M {
		t.Errorf("clone saw the original's splinter: size=%v ok=%v", s, ok)
	}
	// Unmap the clone's 4KB page; the original must keep it.
	if err := c.Unmap(va4, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt.Translate(va4); !ok {
		t.Error("original lost a page unmapped on the clone")
	}
}

// TestWalkerClone: the cloned walker carries the statistics forward but
// walks the table it is given, accumulating independently.
func TestWalkerClone(t *testing.T) {
	pt := New()
	va := addr.VAddr(0x7f00_1234_5000)
	if err := pt.Map(va, 0xabc, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(pt, 20)
	w.Walk(va)

	cw := w.Clone(pt.Clone())
	if cw.WalkCycles() != w.WalkCycles() || cw.AvgLevels() != w.AvgLevels() {
		t.Errorf("clone stats %d/%.2f, want %d/%.2f",
			cw.WalkCycles(), cw.AvgLevels(), w.WalkCycles(), w.AvgLevels())
	}
	cw.Walk(va)
	if cw.WalkCycles() == w.WalkCycles() {
		t.Error("clone's walk mutated shared statistics")
	}
	if cw.Table == w.Table {
		t.Error("clone walks the original table")
	}
}
