package pagetable

import (
	"testing"

	"seesaw/internal/addr"
)

// mappedTable builds a table holding all three page sizes.
func mappedTable(t *testing.T) *Table {
	t.Helper()
	pt := New()
	for _, m := range []struct {
		va   addr.VAddr
		ppn  uint64
		size addr.PageSize
	}{
		{0x7f00_1234_5000, 0xabc, addr.Page4K},
		{0x7f00_1234_6000, 0xabd, addr.Page4K},
		{0x7f00_0020_0000, 5, addr.Page2M},
		{0x40000000, 2, addr.Page1G},
	} {
		if err := pt.Map(m.va, m.ppn, m.size); err != nil {
			t.Fatal(err)
		}
	}
	return pt
}

// TestTableStateRoundTrip: a table restored from a captured state
// translates identically at every page size, preserving the *Table
// identity (SetState mutates in place).
func TestTableStateRoundTrip(t *testing.T) {
	pt := mappedTable(t)
	fresh := New()
	if err := fresh.SetState(pt.State()); err != nil {
		t.Fatal(err)
	}
	for _, va := range []addr.VAddr{
		0x7f00_1234_5123, 0x7f00_1234_6fff, 0x7f00_0020_0000 + 12345, 0x40000000 + 99, 0xdead_0000,
	} {
		pa0, s0, ok0 := pt.Translate(va)
		pa1, s1, ok1 := fresh.Translate(va)
		if pa0 != pa1 || s0 != s1 || ok0 != ok1 {
			t.Errorf("Translate(%#x): original %#x/%v/%v, restored %#x/%v/%v",
				uint64(va), uint64(pa0), s0, ok0, uint64(pa1), s1, ok1)
		}
	}
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		if pt.Count(s) != fresh.Count(s) {
			t.Errorf("Count(%v): original %d, restored %d", s, pt.Count(s), fresh.Count(s))
		}
	}
	// Restoring over existing mappings replaces them wholesale.
	again := mappedTable(t)
	if err := again.SetState(New().State()); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := again.Translate(0x7f00_1234_5123); ok {
		t.Error("restoring an empty state left old mappings behind")
	}
}

// TestTableStateRejections: corrupt radix states — mismatched parallel
// arrays, out-of-range indices, bad page sizes, runaway depth — are all
// rejected before any mutation.
func TestTableStateRejections(t *testing.T) {
	base := mappedTable(t).State()

	childMismatch := base
	childMismatch.Root.ChildIdx = append([]uint16(nil), base.Root.ChildIdx...)
	childMismatch.Root.ChildIdx = append(childMismatch.Root.ChildIdx, 3)
	if err := New().SetState(childMismatch); err == nil {
		t.Error("accepted mismatched child arrays")
	}

	leafMismatch := base
	leafMismatch.Root.LeafIdx = append([]uint16(nil), base.Root.LeafIdx...)
	leafMismatch.Root.LeafIdx = append(leafMismatch.Root.LeafIdx, 3)
	if err := New().SetState(leafMismatch); err == nil {
		t.Error("accepted mismatched leaf arrays")
	}

	badChildIdx := TableState{Root: NodeState{
		ChildIdx: []uint16{512}, Children: []NodeState{{}},
	}}
	if err := New().SetState(badChildIdx); err == nil {
		t.Error("accepted a child index past the radix fanout")
	}

	badLeafIdx := TableState{Root: NodeState{
		LeafIdx: []uint16{512}, Leaves: []Entry{{}},
	}}
	if err := New().SetState(badLeafIdx); err == nil {
		t.Error("accepted a leaf index past the radix fanout")
	}

	badSize := TableState{Root: NodeState{
		LeafIdx: []uint16{0}, Leaves: []Entry{{Size: addr.NumPageSizes}},
	}}
	if err := New().SetState(badSize); err == nil {
		t.Error("accepted a leaf with an invalid page size")
	}

	// A radix deeper than the architecture allows must terminate with an
	// error instead of recursing.
	deep := NodeState{}
	for i := 0; i < LevelPML4+2; i++ {
		deep = NodeState{ChildIdx: []uint16{0}, Children: []NodeState{deep}}
	}
	if err := New().SetState(TableState{Root: deep}); err == nil {
		t.Error("accepted a radix deeper than the page-table levels")
	}
}

// TestWalkerStateRoundTrip: walker statistics travel; the table wiring
// is untouched.
func TestWalkerStateRoundTrip(t *testing.T) {
	pt := mappedTable(t)
	w := NewWalker(pt, 20)
	w.Walk(0x7f00_1234_5000)
	w.Walk(0xdead_0000) // fault

	fresh := NewWalker(pt, 20)
	fresh.SetState(w.State())
	if fresh.State() != w.State() {
		t.Errorf("restored walker state %+v, want %+v", fresh.State(), w.State())
	}
	if fresh.WalkCycles() != w.WalkCycles() || fresh.AvgLevels() != w.AvgLevels() {
		t.Errorf("restored walker stats %d/%.2f, want %d/%.2f",
			fresh.WalkCycles(), fresh.AvgLevels(), w.WalkCycles(), w.AvgLevels())
	}
}
