package pagetable

// Clone returns an independent deep copy of the table: every radix node
// and leaf entry is duplicated, so mappings, splinters, and promotions
// on the clone never touch the original.
func (t *Table) Clone() *Table {
	return &Table{root: t.root.clone(), counts: t.counts}
}

func (n *node) clone() *node {
	c := &node{
		children: make(map[uint16]*node, len(n.children)),
		leaves:   make(map[uint16]*Entry, len(n.leaves)),
	}
	for i, child := range n.children {
		c.children[i] = child.clone()
	}
	for i, e := range n.leaves {
		le := *e
		c.leaves[i] = &le
	}
	return c
}

// Clone returns a copy of the walker's statistics walking the given
// (typically cloned) table.
func (w *Walker) Clone(table *Table) *Walker {
	c := *w
	c.Table = table
	return &c
}
