// Package pagetable implements an x86-64-style 4-level radix page table
// supporting 4KB, 2MB, and 1GB mappings, plus the walker the TLB hierarchy
// falls back to on a miss. It also implements the two OS operations SEESAW
// must stay correct under (Section IV-C2): splintering a superpage into
// base pages and promoting base pages into a superpage.
package pagetable

import (
	"fmt"

	"seesaw/internal/addr"
)

// Levels of the radix tree, top down. Each level indexes 9 VA bits.
const (
	LevelPML4 = 4
	LevelPDPT = 3
	LevelPD   = 2
	LevelPT   = 1
)

// Entry is a leaf translation.
type Entry struct {
	PPN  uint64        // physical page number, in units of Size
	Size addr.PageSize // mapping granularity
}

// node is one 512-entry radix table, sparsely stored.
type node struct {
	children map[uint16]*node  // interior pointers
	leaves   map[uint16]*Entry // leaf translations at this level
}

func newNode() *node {
	return &node{children: make(map[uint16]*node), leaves: make(map[uint16]*Entry)}
}

// Table is one address space's page table.
type Table struct {
	root *node

	// counts[size] tracks live mappings per page size.
	counts [addr.NumPageSizes]uint64
}

// New creates an empty page table.
func New() *Table {
	return &Table{root: newNode()}
}

// levelFor returns the radix level at which a page size's leaf lives:
// 4KB leaves live in the PT, 2MB in the PD, 1GB in the PDPT.
func levelFor(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return LevelPT
	case addr.Page2M:
		return LevelPD
	case addr.Page1G:
		return LevelPDPT
	}
	panic(fmt.Sprintf("pagetable: invalid page size %v", s))
}

// index extracts the 9-bit radix index for a VA at a level
// (level 4 -> bits 47:39 ... level 1 -> bits 20:12).
func index(v addr.VAddr, level int) uint16 {
	return uint16(v.Bits(12+9*uint(level-1), 9))
}

// Map installs a translation from the page containing va to ppn with the
// given size. It fails if any part of the range is already mapped (at this
// or another granularity along the walked path).
func (t *Table) Map(va addr.VAddr, ppn uint64, size addr.PageSize) error {
	leafLevel := levelFor(size)
	n := t.root
	for level := LevelPML4; level > leafLevel; level-- {
		i := index(va, level)
		if _, isLeaf := n.leaves[i]; isLeaf {
			return fmt.Errorf("pagetable: %#x already covered by a larger mapping", uint64(va))
		}
		child, ok := n.children[i]
		if !ok {
			child = newNode()
			n.children[i] = child
		}
		n = child
	}
	i := index(va, leafLevel)
	if _, ok := n.leaves[i]; ok {
		return fmt.Errorf("pagetable: %#x already mapped at %v", uint64(va), size)
	}
	if _, ok := n.children[i]; ok {
		return fmt.Errorf("pagetable: %#x has smaller mappings below a would-be %v leaf", uint64(va), size)
	}
	n.leaves[i] = &Entry{PPN: ppn, Size: size}
	t.counts[size]++
	return nil
}

// Walk translates va, also reporting how many radix levels were touched
// (2 for a 1GB leaf, 3 for 2MB, 4 for 4KB) so callers can charge walk
// latency. ok is false for unmapped addresses; levels then reports how far
// the walk got before faulting.
func (t *Table) Walk(va addr.VAddr) (e Entry, levels int, ok bool) {
	n := t.root
	for level := LevelPML4; level >= LevelPT; level-- {
		levels++
		i := index(va, level)
		if leaf, isLeaf := n.leaves[i]; isLeaf {
			return *leaf, levels, true
		}
		child, hasChild := n.children[i]
		if !hasChild {
			return Entry{}, levels, false
		}
		n = child
	}
	return Entry{}, levels, false
}

// Translate is Walk without the cost accounting: it returns the physical
// address for va, or ok=false if unmapped.
func (t *Table) Translate(va addr.VAddr) (addr.PAddr, addr.PageSize, bool) {
	e, _, ok := t.Walk(va)
	if !ok {
		return 0, 0, false
	}
	return addr.Translate(va, e.PPN, e.Size), e.Size, true
}

// Unmap removes the mapping of the page containing va with the given
// size, pruning radix nodes that become empty so the space can later be
// remapped at a larger granularity.
func (t *Table) Unmap(va addr.VAddr, size addr.PageSize) error {
	leafLevel := levelFor(size)
	// Remember the path so empty interior nodes can be pruned.
	type step struct {
		n *node
		i uint16
	}
	var path []step
	n := t.root
	for level := LevelPML4; level > leafLevel; level-- {
		i := index(va, level)
		child, ok := n.children[i]
		if !ok {
			return fmt.Errorf("pagetable: %#x not mapped", uint64(va))
		}
		path = append(path, step{n, i})
		n = child
	}
	i := index(va, leafLevel)
	leaf, ok := n.leaves[i]
	if !ok || leaf.Size != size {
		return fmt.Errorf("pagetable: %#x not mapped at %v", uint64(va), size)
	}
	delete(n.leaves, i)
	t.counts[size]--
	for k := len(path) - 1; k >= 0; k-- {
		child := path[k].n.children[path[k].i]
		if len(child.leaves) > 0 || len(child.children) > 0 {
			break
		}
		delete(path[k].n.children, path[k].i)
	}
	return nil
}

// Splinter replaces the 2MB mapping covering va with 512 4KB mappings that
// preserve every translation (the frames stay where they were). It returns
// the base VA of the splintered region. This models the OS breaking a
// superpage, after which the OS executes invlpg — the caller must
// propagate that to TLBs and the TFT.
func (t *Table) Splinter(va addr.VAddr) (addr.VAddr, error) {
	base := va.PageBase(addr.Page2M)
	e, _, ok := t.Walk(base)
	if !ok || e.Size != addr.Page2M {
		return 0, fmt.Errorf("pagetable: %#x is not a 2MB mapping", uint64(va))
	}
	if err := t.Unmap(base, addr.Page2M); err != nil {
		return 0, err
	}
	basePPN4K := e.PPN << (addr.Page2M.OffsetBits() - addr.Page4K.OffsetBits())
	for i := uint64(0); i < 512; i++ {
		sub := base + addr.VAddr(i*4096)
		if err := t.Map(sub, basePPN4K+i, addr.Page4K); err != nil {
			return 0, fmt.Errorf("pagetable: splinter remap: %w", err)
		}
	}
	return base, nil
}

// Promote replaces the 512 4KB mappings covering the 2MB region of va with
// a single 2MB mapping to newPPN2M (the OS has copied/compacted the data
// into that contiguous frame). All 512 base pages must currently be
// mapped. It returns the base VA of the promoted region.
func (t *Table) Promote(va addr.VAddr, newPPN2M uint64) (addr.VAddr, error) {
	base := va.PageBase(addr.Page2M)
	// Verify full population first so we fail without mutating.
	for i := uint64(0); i < 512; i++ {
		e, _, ok := t.Walk(base + addr.VAddr(i*4096))
		if !ok || e.Size != addr.Page4K {
			return 0, fmt.Errorf("pagetable: region %#x not fully 4KB-mapped at +%d pages", uint64(base), i)
		}
	}
	for i := uint64(0); i < 512; i++ {
		if err := t.Unmap(base+addr.VAddr(i*4096), addr.Page4K); err != nil {
			return 0, err
		}
	}
	if err := t.Map(base, newPPN2M, addr.Page2M); err != nil {
		return 0, err
	}
	return base, nil
}

// Count returns the number of live mappings of the given size.
func (t *Table) Count(s addr.PageSize) uint64 { return t.counts[s] }
