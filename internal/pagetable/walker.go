package pagetable

import "seesaw/internal/addr"

// Walker wraps a Table with the latency and statistics accounting of a
// hardware page-table walker. Each radix level touched costs one memory
// access; the per-level latency models those accesses mostly hitting in
// the cache hierarchy (the paper's Simics setup behaves similarly — walks
// are expensive but far cheaper than chained DRAM accesses).
type Walker struct {
	Table *Table

	// CyclesPerLevel is the charge per radix level touched.
	CyclesPerLevel int

	// Stats.
	Walks       uint64
	Faults      uint64
	LevelsTotal uint64
	walkCycles  uint64
}

// NewWalker creates a walker over table with the given per-level cost.
func NewWalker(table *Table, cyclesPerLevel int) *Walker {
	return &Walker{Table: table, CyclesPerLevel: cyclesPerLevel}
}

// Walk translates va, returning the entry, the walk latency in cycles, and
// whether the translation exists. Faulting walks still cost the levels
// they touched.
func (w *Walker) Walk(va addr.VAddr) (Entry, int, bool) {
	e, levels, ok := w.Table.Walk(va)
	w.Walks++
	w.LevelsTotal += uint64(levels)
	cycles := levels * w.CyclesPerLevel
	w.walkCycles += uint64(cycles)
	if !ok {
		w.Faults++
	}
	return e, cycles, ok
}

// WalkCycles returns the total cycles spent walking.
func (w *Walker) WalkCycles() uint64 { return w.walkCycles }

// AvgLevels returns the mean number of radix levels touched per walk.
func (w *Walker) AvgLevels() float64 {
	if w.Walks == 0 {
		return 0
	}
	return float64(w.LevelsTotal) / float64(w.Walks)
}
