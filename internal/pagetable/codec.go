package pagetable

import (
	"fmt"
	"sort"

	"seesaw/internal/addr"
)

// NodeState is one radix node flattened for serialization: child and
// leaf indices sorted ascending so encoding is deterministic.
type NodeState struct {
	ChildIdx []uint16
	Children []NodeState
	LeafIdx  []uint16
	Leaves   []Entry
}

// TableState is a page table's serializable state.
type TableState struct {
	Root   NodeState
	Counts [addr.NumPageSizes]uint64
}

func (n *node) state() NodeState {
	s := NodeState{}
	s.ChildIdx = make([]uint16, 0, len(n.children))
	for i := range n.children {
		s.ChildIdx = append(s.ChildIdx, i)
	}
	sort.Slice(s.ChildIdx, func(a, b int) bool { return s.ChildIdx[a] < s.ChildIdx[b] })
	s.Children = make([]NodeState, len(s.ChildIdx))
	for k, i := range s.ChildIdx {
		s.Children[k] = n.children[i].state()
	}
	s.LeafIdx = make([]uint16, 0, len(n.leaves))
	for i := range n.leaves {
		s.LeafIdx = append(s.LeafIdx, i)
	}
	sort.Slice(s.LeafIdx, func(a, b int) bool { return s.LeafIdx[a] < s.LeafIdx[b] })
	s.Leaves = make([]Entry, len(s.LeafIdx))
	for k, i := range s.LeafIdx {
		s.Leaves[k] = *n.leaves[i]
	}
	return s
}

// nodeFromState rebuilds a radix node, tracking depth so corrupt input
// cannot recurse unboundedly (a well-formed table is at most 4 deep).
func nodeFromState(s NodeState, depth int) (*node, error) {
	if depth > LevelPML4 {
		return nil, fmt.Errorf("pagetable: radix deeper than %d levels", LevelPML4)
	}
	if len(s.ChildIdx) != len(s.Children) {
		return nil, fmt.Errorf("pagetable: %d child indices for %d children", len(s.ChildIdx), len(s.Children))
	}
	if len(s.LeafIdx) != len(s.Leaves) {
		return nil, fmt.Errorf("pagetable: %d leaf indices for %d leaves", len(s.LeafIdx), len(s.Leaves))
	}
	n := newNode()
	for k, i := range s.ChildIdx {
		if i >= 512 {
			return nil, fmt.Errorf("pagetable: radix index %d out of range", i)
		}
		child, err := nodeFromState(s.Children[k], depth+1)
		if err != nil {
			return nil, err
		}
		n.children[i] = child
	}
	for k, i := range s.LeafIdx {
		if i >= 512 {
			return nil, fmt.Errorf("pagetable: radix index %d out of range", i)
		}
		e := s.Leaves[k]
		if e.Size >= addr.NumPageSizes {
			return nil, fmt.Errorf("pagetable: leaf with invalid page size %d", e.Size)
		}
		n.leaves[i] = &e
	}
	return n, nil
}

// State captures the table for serialization.
func (t *Table) State() TableState {
	return TableState{Root: t.root.state(), Counts: t.counts}
}

// SetState replaces the table's contents in place: the *Table identity
// is preserved, so page walkers pointing at it observe the restored
// mappings without rewiring.
func (t *Table) SetState(s TableState) error {
	root, err := nodeFromState(s.Root, 1)
	if err != nil {
		return err
	}
	t.root = root
	t.counts = s.Counts
	return nil
}

// WalkerState is a page walker's serializable statistics; the table it
// walks and its per-level cost are wiring and config, restored
// separately.
type WalkerState struct {
	Walks       uint64
	Faults      uint64
	LevelsTotal uint64
	WalkCycles  uint64
}

// State captures the walker's statistics.
func (w *Walker) State() WalkerState {
	return WalkerState{Walks: w.Walks, Faults: w.Faults, LevelsTotal: w.LevelsTotal, WalkCycles: w.walkCycles}
}

// SetState restores the walker's statistics in place.
func (w *Walker) SetState(s WalkerState) {
	w.Walks, w.Faults, w.LevelsTotal, w.walkCycles = s.Walks, s.Faults, s.LevelsTotal, s.WalkCycles
}
