package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seesaw/internal/addr"
)

func TestMapWalk4K(t *testing.T) {
	pt := New()
	va := addr.VAddr(0x7f00_1234_5000)
	if err := pt.Map(va, 0xabc, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	e, levels, ok := pt.Walk(va + 0xfff)
	if !ok {
		t.Fatal("walk missed a mapped page")
	}
	if e.PPN != 0xabc || e.Size != addr.Page4K {
		t.Errorf("entry = %+v", e)
	}
	if levels != 4 {
		t.Errorf("4KB walk touched %d levels, want 4", levels)
	}
	pa, size, ok := pt.Translate(va + 0x123)
	if !ok || size != addr.Page4K || pa != addr.PAddr(0xabc<<12|0x123) {
		t.Errorf("Translate = %#x %v %v", uint64(pa), size, ok)
	}
}

func TestMapWalk2M1G(t *testing.T) {
	pt := New()
	va2 := addr.VAddr(0x7f00_0020_0000)
	if err := pt.Map(va2, 5, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if _, levels, ok := pt.Walk(va2 + 12345); !ok || levels != 3 {
		t.Errorf("2MB walk levels=%d ok=%v, want 3 true", levels, ok)
	}
	va1 := addr.VAddr(0x40000000)
	if err := pt.Map(va1, 2, addr.Page1G); err != nil {
		t.Fatal(err)
	}
	if _, levels, ok := pt.Walk(va1 + (1 << 29)); !ok || levels != 2 {
		t.Errorf("1GB walk levels=%d ok=%v, want 2 true", levels, ok)
	}
	pa, size, _ := pt.Translate(va1 + 99)
	if size != addr.Page1G || pa != addr.PAddr(2<<30|99) {
		t.Errorf("1GB translate = %#x %v", uint64(pa), size)
	}
}

func TestUnmappedWalkFaults(t *testing.T) {
	pt := New()
	if _, levels, ok := pt.Walk(0x1000); ok || levels != 1 {
		t.Errorf("empty table walk: levels=%d ok=%v", levels, ok)
	}
	pt.Map(addr.VAddr(0x200000), 1, addr.Page2M)
	// Sibling address under the same PML4/PDPT but different PD entry.
	if _, _, ok := pt.Walk(0x600000); ok {
		t.Error("walk of unmapped sibling succeeded")
	}
}

func TestOverlapRejected(t *testing.T) {
	pt := New()
	if err := pt.Map(0x200000, 1, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x200000+4096, 9, addr.Page4K); err == nil {
		t.Error("4KB map inside a 2MB mapping must fail")
	}
	if err := pt.Map(0x200000, 7, addr.Page2M); err == nil {
		t.Error("duplicate 2MB map must fail")
	}
	pt2 := New()
	if err := pt2.Map(0x300000, 1, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map(0x200000, 3, addr.Page2M); err == nil {
		t.Error("2MB map over an existing 4KB mapping must fail")
	}
}

func TestUnmap(t *testing.T) {
	pt := New()
	pt.Map(0x5000, 3, addr.Page4K)
	if err := pt.Unmap(0x5000, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt.Walk(0x5000); ok {
		t.Error("walk succeeded after unmap")
	}
	if err := pt.Unmap(0x5000, addr.Page4K); err == nil {
		t.Error("double unmap must fail")
	}
	if err := pt.Unmap(0x200000, addr.Page2M); err == nil {
		t.Error("unmap of never-mapped page must fail")
	}
}

func TestCounts(t *testing.T) {
	pt := New()
	pt.Map(0x1000, 1, addr.Page4K)
	pt.Map(0x2000, 2, addr.Page4K)
	pt.Map(0x200000, 1, addr.Page2M)
	if pt.Count(addr.Page4K) != 2 || pt.Count(addr.Page2M) != 1 {
		t.Errorf("counts = %d 4K, %d 2M", pt.Count(addr.Page4K), pt.Count(addr.Page2M))
	}
	pt.Unmap(0x1000, addr.Page4K)
	if pt.Count(addr.Page4K) != 1 {
		t.Errorf("4K count after unmap = %d", pt.Count(addr.Page4K))
	}
}

// TestSplinterPreservesTranslations is the Section IV-C2 correctness
// requirement: lines that belonged to the superpage must stay accessible
// at the same physical addresses after splintering.
func TestSplinterPreservesTranslations(t *testing.T) {
	pt := New()
	base := addr.VAddr(0x7f55_5520_0000).PageBase(addr.Page2M)
	ppn2M := uint64(17)
	if err := pt.Map(base, ppn2M, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var probes []addr.VAddr
	var want []addr.PAddr
	for i := 0; i < 64; i++ {
		v := base + addr.VAddr(rng.Uint64()%(2<<20))
		pa, _, ok := pt.Translate(v)
		if !ok {
			t.Fatal("pre-splinter translate failed")
		}
		probes = append(probes, v)
		want = append(want, pa)
	}
	got, err := pt.Splinter(base + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("splinter base = %#x, want %#x", uint64(got), uint64(base))
	}
	if pt.Count(addr.Page2M) != 0 || pt.Count(addr.Page4K) != 512 {
		t.Errorf("counts after splinter: %d 2M, %d 4K", pt.Count(addr.Page2M), pt.Count(addr.Page4K))
	}
	for i, v := range probes {
		pa, size, ok := pt.Translate(v)
		if !ok || size != addr.Page4K || pa != want[i] {
			t.Errorf("probe %#x: pa=%#x size=%v ok=%v, want pa=%#x 4KB", uint64(v), uint64(pa), size, ok, uint64(want[i]))
		}
	}
	if _, err := pt.Splinter(base); err == nil {
		t.Error("re-splintering must fail")
	}
}

// TestPromoteRoundTrip checks base-page promotion: after promotion the
// region translates via a single 2MB entry pointing at the new frame.
func TestPromoteRoundTrip(t *testing.T) {
	pt := New()
	base := addr.VAddr(0x4020_0000)
	for i := uint64(0); i < 512; i++ {
		if err := pt.Map(base+addr.VAddr(i*4096), 1000+i, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pt.Promote(base+777, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("promote base = %#x", uint64(got))
	}
	pa, size, ok := pt.Translate(base + 0x1234)
	if !ok || size != addr.Page2M || pa != addr.PAddr(3<<21|0x1234) {
		t.Errorf("post-promote translate = %#x %v %v", uint64(pa), size, ok)
	}
	if pt.Count(addr.Page4K) != 0 || pt.Count(addr.Page2M) != 1 {
		t.Error("counts wrong after promote")
	}
}

func TestPromotePartialRegionFails(t *testing.T) {
	pt := New()
	base := addr.VAddr(0x4020_0000)
	for i := uint64(0); i < 511; i++ { // one page missing
		pt.Map(base+addr.VAddr(i*4096), 1000+i, addr.Page4K)
	}
	if _, err := pt.Promote(base, 3); err == nil {
		t.Fatal("promotion of a partially mapped region must fail")
	}
	// And it must not have mutated anything.
	if pt.Count(addr.Page4K) != 511 {
		t.Errorf("failed promote mutated the table: %d 4K mappings", pt.Count(addr.Page4K))
	}
}

func TestSplinterPromoteInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := New()
		base := addr.VAddr(rng.Uint64() & 0x7fff_ffff_ffff).PageBase(addr.Page2M)
		ppn := rng.Uint64() & 0xffff
		if pt.Map(base, ppn, addr.Page2M) != nil {
			return true // extremely unlikely collision; skip
		}
		if _, err := pt.Splinter(base); err != nil {
			return false
		}
		if _, err := pt.Promote(base, ppn); err != nil {
			return false
		}
		pa, size, ok := pt.Translate(base + 42)
		return ok && size == addr.Page2M && pa == addr.PAddr(ppn<<21|42)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWalker(t *testing.T) {
	pt := New()
	pt.Map(0x200000, 1, addr.Page2M)
	w := NewWalker(pt, 20)
	_, cycles, ok := w.Walk(0x200000 + 5)
	if !ok || cycles != 60 {
		t.Errorf("2MB walk = %d cycles ok=%v, want 60 true", cycles, ok)
	}
	_, cycles, ok = w.Walk(0x999999000)
	if ok {
		t.Error("fault expected")
	}
	if cycles == 0 {
		t.Error("faulting walk must still cost cycles")
	}
	if w.Walks != 2 || w.Faults != 1 {
		t.Errorf("walks=%d faults=%d", w.Walks, w.Faults)
	}
	if w.AvgLevels() <= 0 {
		t.Error("AvgLevels must be positive")
	}
	if w.WalkCycles() == 0 {
		t.Error("WalkCycles must accumulate")
	}
}
