// Package stats provides the light-weight statistics plumbing used by the
// simulator: counters, running min/avg/max summaries, histograms, and
// aligned text tables for reproducing the paper's figures as row/series
// printouts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 samples and reports count, mean,
// min, and max. The zero value is ready to use.
type Summary struct {
	n          int
	sum        float64
	min, max   float64
	haveSample bool
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	if !s.haveSample || x < s.min {
		s.min = x
	}
	if !s.haveSample || x > s.max {
		s.max = x
	}
	s.haveSample = true
}

// N returns the number of samples.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Sum returns the sum of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.n, s.Mean(), s.min, s.max)
}

// Ratio returns num/den, or 0 when den is 0. It is the safe division used
// for hit rates and percentages all over the simulator.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct returns 100*num/den, or 0 when den is 0.
func Pct(num, den uint64) float64 { return 100 * Ratio(num, den) }

// PctImprovement returns the percent improvement of new over base for a
// lower-is-better metric (runtime, energy): 100*(base-new)/base.
func PctImprovement(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - new) / base
}

// GeoMean returns the geometric mean of the positive values in xs.
// Non-positive values — a degenerate cell's zero cycles, a failed ratio —
// are skipped rather than poisoning the whole mean with NaN or -Inf, so
// one bad cell cannot corrupt a summary row. It returns 0 when no
// positive values remain.
func GeoMean(xs []float64) float64 {
	logSum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Histogram counts integer-valued samples in fixed-width buckets, with an
// overflow bucket at the top. It is used for reuse-distance and latency
// distributions.
type Histogram struct {
	BucketWidth uint64
	buckets     []uint64
	overflow    uint64
	n           uint64
}

// NewHistogram creates a histogram with nBuckets buckets of the given
// width; samples >= nBuckets*width land in the overflow bucket.
func NewHistogram(bucketWidth uint64, nBuckets int) *Histogram {
	if bucketWidth == 0 {
		panic("stats: zero bucket width")
	}
	return &Histogram{BucketWidth: bucketWidth, buckets: make([]uint64, nBuckets)}
}

// Add records one sample.
func (h *Histogram) Add(x uint64) {
	h.n++
	i := x / h.BucketWidth
	if i >= uint64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// N returns the total number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow returns the overflow-bucket count.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded samples, resolving to bucket upper edges; overflow resolves to
// the top edge.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return uint64(i+1) * h.BucketWidth
		}
	}
	return uint64(len(h.buckets)) * h.BucketWidth
}

// SortedKeys returns the keys of a map[string]V in sorted order; tables and
// reports use it for deterministic iteration.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
