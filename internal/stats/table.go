package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table used to print the rows/series of
// each reproduced figure and table. Cells are strings; numeric helpers
// format consistently.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowValues appends a row, formatting each value: strings verbatim,
// float64 with 2 decimals, integers as-is.
func (t *Table) AddRowValues(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = formatCell(v)
	}
	t.AddRow(cells...)
}

// AddNote appends a free-form footnote printed after the rows.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return fmt.Sprintf("%.2f", x)
	case float32:
		return fmt.Sprintf("%.2f", x)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
