package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 {
		t.Fatal("zero Summary must report zeroes")
	}
	for _, x := range []float64{3, 1, 2} {
		s.Add(x)
	}
	if s.N() != 3 || s.Min() != 1 || s.Max() != 3 || s.Mean() != 2 {
		t.Errorf("summary = %v", s.String())
	}
}

func TestSummaryNegatives(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 {
		t.Errorf("min/max = %v/%v, want -5/-1", s.Min(), s.Max())
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue // keep the running sum out of overflow territory
			}
			s.Add(x)
		}
		if s.N() > 0 {
			ok = ok && s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator must be 0")
	}
	if got := Pct(1, 4); got != 25 {
		t.Errorf("Pct(1,4) = %v", got)
	}
	if got := PctImprovement(200, 150); got != 25 {
		t.Errorf("PctImprovement(200,150) = %v", got)
	}
	if PctImprovement(0, 5) != 0 {
		t.Error("PctImprovement with zero base must be 0")
	}
	// Improvement is negative when the new value is worse.
	if got := PctImprovement(100, 110); got != -10 {
		t.Errorf("PctImprovement(100,110) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) must be 0")
	}
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
}

// TestGeoMeanDegenerate: zero or negative inputs (a workload with no
// improvement, or a regression expressed as a negative ratio) must not
// poison the mean with NaN or -Inf; they are skipped.
func TestGeoMeanDegenerate(t *testing.T) {
	got := GeoMean([]float64{0, -3, 2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(0,-3,2,8) = %v, want 4 (non-positive inputs skipped)", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Errorf("GeoMean of all non-positive inputs = %v, want 0", got)
	}
	for _, xs := range [][]float64{{0}, {-1, -2}, {0, 5}, {1e-300, 1e300}} {
		if v := GeoMean(xs); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("GeoMean(%v) = %v, want finite", xs, v)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 4)
	for _, x := range []uint64{0, 9, 10, 35, 39, 40, 1000} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(3) != 2 {
		t.Errorf("buckets = %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d", h.Overflow())
	}
	if q := h.Quantile(0.01); q != 10 {
		t.Errorf("Quantile(0.01) = %d, want 10", q)
	}
	if q := h.Quantile(1.0); q != 40 {
		t.Errorf("Quantile(1.0) = %d, want 40 (top edge)", q)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram(8, 16)
		for _, s := range samples {
			h.Add(uint64(s))
		}
		prev := uint64(0)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroBucketWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0, 4) did not panic")
		}
	}()
	NewHistogram(0, 4)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "value")
	tb.AddRowValues("redis", 3.14159)
	tb.AddRowValues("mcf", 42)
	tb.AddNote("synthetic")
	out := tb.String()
	for _, want := range []string{"Fig X", "workload", "redis", "3.14", "42", "note: synthetic"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"r`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""r"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV headers wrong: %q", csv)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
