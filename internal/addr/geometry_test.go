package addr

import (
	"testing"
	"testing/quick"
)

func TestGeometry32K8Way(t *testing.T) {
	// The paper's running example: 32KB, 8-way, 2 partitions of 4 ways.
	g := MustCacheGeometry(32<<10, 8, 2)
	if g.Sets() != 64 {
		t.Fatalf("sets = %d, want 64", g.Sets())
	}
	if g.SetBits() != 6 {
		t.Fatalf("setBits = %d, want 6", g.SetBits())
	}
	if g.WaysPerPartition() != 4 {
		t.Fatalf("ways/partition = %d, want 4", g.WaysPerPartition())
	}
	// VIPT constraint: 64 sets fit in a 4KB page offset.
	if !g.VIPTIndexInsidePageOffset(Page4K) {
		t.Error("32KB/8w must satisfy the VIPT constraint for 4KB pages")
	}
	// Partition bit is VA bit 12: inside a 2MB page offset, outside 4KB.
	if g.PartitionIndexKnown(Page4K) {
		t.Error("partition index must be unknown for 4KB pages")
	}
	if !g.PartitionIndexKnown(Page2M) || !g.PartitionIndexKnown(Page1G) {
		t.Error("partition index must be known for superpages")
	}
	v := VAddr(1 << 12)
	if g.PartitionIndexV(v) != 1 {
		t.Errorf("PartitionIndexV(bit12 set) = %d, want 1", g.PartitionIndexV(v))
	}
	if g.PartitionIndexV(v-1) != 0 {
		t.Errorf("PartitionIndexV(bit12 clear) = %d, want 0", g.PartitionIndexV(v-1))
	}
}

func TestGeometryTableFromPaper(t *testing.T) {
	// Fig 1d (VESPA parameters): for superpages more set bits are possible;
	// in SEESAW the equivalent statement is partitions of 4 ways.
	cases := []struct {
		size       uint64
		ways       int
		partitions int
		sets       int
	}{
		{32 << 10, 8, 2, 64},
		{64 << 10, 16, 4, 64},
		{128 << 10, 32, 8, 64},
		{16 << 10, 4, 1, 64},
	}
	for _, c := range cases {
		g := MustCacheGeometry(c.size, c.ways, c.partitions)
		if g.Sets() != c.sets {
			t.Errorf("%v: sets = %d, want %d", g, g.Sets(), c.sets)
		}
		if !g.VIPTIndexInsidePageOffset(Page4K) {
			t.Errorf("%v: should satisfy VIPT constraint for 4KB", g)
		}
	}
}

func TestGeometryErrors(t *testing.T) {
	cases := []struct {
		size             uint64
		ways, partitions int
	}{
		{0, 8, 2},        // zero size
		{48 << 10, 8, 2}, // 96-set cache: sets not a power of two
		{32 << 10, 0, 1}, // zero ways
		{32 << 10, 6, 2}, // 512 lines not divisible into 6 ways
		{32 << 10, 8, 0}, // zero partitions
		{32 << 10, 8, 3}, // non power of two partitions
		{32 << 10, 4, 8}, // partitions > ways
		{256, 8, 2},      // sets=0
	}
	for _, c := range cases {
		if _, err := NewCacheGeometry(c.size, c.ways, c.partitions); err == nil {
			t.Errorf("NewCacheGeometry(%d,%d,%d): expected error", c.size, c.ways, c.partitions)
		}
	}
}

func TestTagSetRoundTrip(t *testing.T) {
	g := MustCacheGeometry(64<<10, 16, 4)
	f := func(raw uint64) bool {
		p := PAddr(raw).LineBase()
		set, tag := g.SetIndexP(p), g.TagP(p)
		return g.LineFromSetTag(set, tag) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoherencePartitionMatchesVirtualForSuperpages(t *testing.T) {
	// Invariant at the heart of SEESAW: for superpage-backed data the
	// virtual partition index equals the physical partition index, so a
	// TFT-directed probe and a later physical-address coherence probe land
	// in the same partition.
	g := MustCacheGeometry(32<<10, 8, 2)
	f := func(raw uint64, ppn uint32) bool {
		v := VAddr(raw)
		p := Translate(v, uint64(ppn), Page2M)
		return g.PartitionIndexV(v) == g.PartitionIndexP(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaselineUnpartitioned(t *testing.T) {
	g := MustCacheGeometry(32<<10, 8, 1)
	if g.PartitionBits() != 0 {
		t.Fatalf("partitionBits = %d, want 0", g.PartitionBits())
	}
	if g.PartitionIndexV(VAddr(0xffff_ffff)) != 0 {
		t.Error("unpartitioned cache must always report partition 0")
	}
	if !g.PartitionIndexKnown(Page4K) {
		t.Error("with 0 partition bits the index is trivially known")
	}
}

func TestOneGBPartitionIndexKnown(t *testing.T) {
	// Every supported SEESAW geometry has its partition bits inside the
	// 1GB page offset, so 1GB-backed accesses ride the fast path too.
	for _, c := range []struct {
		size       uint64
		ways, part int
	}{{32 << 10, 8, 2}, {64 << 10, 16, 4}, {128 << 10, 32, 8}, {64 << 10, 16, 8}} {
		g := MustCacheGeometry(c.size, c.ways, c.part)
		if !g.PartitionIndexKnown(Page1G) {
			t.Errorf("%v: partition index not a 1GB page-offset bit", g)
		}
	}
}

func TestNonPow2WaysGeometry(t *testing.T) {
	// The 24MB 24-way LLC: sets must still be a power of two.
	g := MustCacheGeometry(24<<20, 24, 1)
	if g.Sets() != 16384 {
		t.Errorf("24MB/24w sets = %d, want 16384", g.Sets())
	}
	f := func(raw uint64) bool {
		p := PAddr(raw).LineBase()
		return g.LineFromSetTag(g.SetIndexP(p), g.TagP(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
