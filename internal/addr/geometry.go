package addr

import "fmt"

// CacheGeometry describes the index structure of a set-associative cache
// and, for SEESAW, its way partitioning. It is pure arithmetic: given an
// address it yields the set index, the tag, and (when the address has
// enough known-physical bits) the partition index.
type CacheGeometry struct {
	SizeBytes  uint64 // total data capacity
	Ways       int    // associativity
	Partitions int    // number of way partitions (1 = unpartitioned)

	sets          uint64
	setBits       uint
	partitionBits uint
}

// NewCacheGeometry validates and precomputes a cache geometry. The set
// count and partition count must be powers of two (they become address
// bits); the way count only needs to divide evenly into partitions, which
// permits non-power-of-two capacities like a 24MB 24-way LLC.
func NewCacheGeometry(sizeBytes uint64, ways, partitions int) (CacheGeometry, error) {
	g := CacheGeometry{SizeBytes: sizeBytes, Ways: ways, Partitions: partitions}
	switch {
	case sizeBytes == 0 || sizeBytes%LineSize != 0:
		return g, fmt.Errorf("addr: cache size %d not a multiple of the line size", sizeBytes)
	case ways <= 0:
		return g, fmt.Errorf("addr: ways %d not positive", ways)
	case partitions <= 0 || !IsPow2(uint64(partitions)):
		return g, fmt.Errorf("addr: partitions %d not a positive power of two", partitions)
	case ways%partitions != 0:
		return g, fmt.Errorf("addr: %d ways not divisible into %d partitions", ways, partitions)
	}
	lines := sizeBytes / LineSize
	if lines%uint64(ways) != 0 {
		return g, fmt.Errorf("addr: size %d not divisible into %d ways of whole sets", sizeBytes, ways)
	}
	g.sets = lines / uint64(ways)
	if g.sets == 0 || !IsPow2(g.sets) {
		return g, fmt.Errorf("addr: set count %d not a power of two", g.sets)
	}
	g.setBits = Log2(g.sets)
	g.partitionBits = Log2(uint64(partitions))
	return g, nil
}

// MustCacheGeometry is NewCacheGeometry that panics on error; for tests and
// literal configurations.
func MustCacheGeometry(sizeBytes uint64, ways, partitions int) CacheGeometry {
	g, err := NewCacheGeometry(sizeBytes, ways, partitions)
	if err != nil {
		panic(err)
	}
	return g
}

// Sets returns the number of sets.
func (g CacheGeometry) Sets() int { return int(g.sets) }

// SetBits returns log2(number of sets).
func (g CacheGeometry) SetBits() uint { return g.setBits }

// PartitionBits returns log2(number of partitions).
func (g CacheGeometry) PartitionBits() uint { return g.partitionBits }

// WaysPerPartition returns Ways/Partitions.
func (g CacheGeometry) WaysPerPartition() int { return g.Ways / g.Partitions }

// SetIndexV extracts the set index from a virtual address (VIPT indexing:
// bits just above the byte offset).
func (g CacheGeometry) SetIndexV(v VAddr) int { return int(v.Bits(LineBits, g.setBits)) }

// SetIndexP extracts the set index from a physical address (PIPT indexing,
// and also the index used by coherence probes, which carry physical
// addresses; under VIPT the set bits sit inside the page offset so virtual
// and physical indices agree).
func (g CacheGeometry) SetIndexP(p PAddr) int { return int(p.Bits(LineBits, g.setBits)) }

// VIPTIndexInsidePageOffset reports whether the full set index fits inside
// the page offset of the given page size — the classic VIPT constraint
// k + b <= p from the paper's Fig 1.
func (g CacheGeometry) VIPTIndexInsidePageOffset(s PageSize) bool {
	return LineBits+g.setBits <= s.OffsetBits()
}

// PartitionIndexKnown reports whether the partition index bits of an
// address within a page of size s are page-offset bits, i.e. identical in
// the virtual and physical address. For a 32KB/8-way/2-partition cache the
// partition index is VA bit 12, which is a page-offset bit for 2MB and 1GB
// pages but not for 4KB pages.
func (g CacheGeometry) PartitionIndexKnown(s PageSize) bool {
	return LineBits+g.setBits+g.partitionBits <= s.OffsetBits()
}

// PartitionIndexV extracts the partition index from a virtual address: the
// bits immediately above the set index. Valid as a physical partition
// selector only when PartitionIndexKnown(pageSize) holds.
func (g CacheGeometry) PartitionIndexV(v VAddr) int {
	return int(v.Bits(LineBits+g.setBits, g.partitionBits))
}

// PartitionIndexP extracts the partition index from a physical address.
// This is always valid: it determines the unique partition a line occupies
// under SEESAW's 4way insertion policy.
func (g CacheGeometry) PartitionIndexP(p PAddr) int {
	return int(p.Bits(LineBits+g.setBits, g.partitionBits))
}

// TagP extracts the physical tag for a physical line address: everything
// above the set index. Note the tag deliberately includes the partition
// bits; partition filtering is a probe optimization, not a tag shortening.
func (g CacheGeometry) TagP(p PAddr) uint64 {
	return uint64(p) >> (LineBits + g.setBits)
}

// LineFromSetTag reconstructs the physical line base address from a set
// index and tag (inverse of SetIndexP/TagP).
func (g CacheGeometry) LineFromSetTag(set int, tag uint64) PAddr {
	return PAddr(tag<<(LineBits+g.setBits) | uint64(set)<<LineBits)
}

// String implements fmt.Stringer.
func (g CacheGeometry) String() string {
	return fmt.Sprintf("%dKB %d-way %d sets %d partitions",
		g.SizeBytes/1024, g.Ways, g.sets, g.Partitions)
}
