package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeOffsetBits(t *testing.T) {
	cases := []struct {
		s    PageSize
		bits uint
		b    uint64
	}{
		{Page4K, 12, 4096},
		{Page2M, 21, 2 << 20},
		{Page1G, 30, 1 << 30},
	}
	for _, c := range cases {
		if got := c.s.OffsetBits(); got != c.bits {
			t.Errorf("%v.OffsetBits() = %d, want %d", c.s, got, c.bits)
		}
		if got := c.s.Bytes(); got != c.b {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.b)
		}
	}
	if Page4K.IsSuper() {
		t.Error("Page4K.IsSuper() = true, want false")
	}
	if !Page2M.IsSuper() || !Page1G.IsSuper() {
		t.Error("superpages must report IsSuper")
	}
}

func TestPageSizeInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OffsetBits on invalid page size did not panic")
		}
	}()
	_ = PageSize(99).OffsetBits()
}

func TestVAddrDecomposition(t *testing.T) {
	v := VAddr(0x7f12_3456_789a)
	if got := v.PageOffset(Page4K); got != 0x89a {
		t.Errorf("PageOffset(4K) = %#x, want 0x89a", got)
	}
	if got := v.VPN(Page4K); got != 0x7f12_3456_7 {
		t.Errorf("VPN(4K) = %#x", got)
	}
	if got := v.PageBase(Page4K); got != 0x7f12_3456_7000 {
		t.Errorf("PageBase(4K) = %#x", got)
	}
	if got := v.Region2M(); got != uint64(v)>>21 {
		t.Errorf("Region2M = %#x", got)
	}
	if got := v.LineBase(); got != VAddr(uint64(v)&^0x3f) {
		t.Errorf("LineBase = %#x", got)
	}
}

func TestTranslateRoundTrip(t *testing.T) {
	f := func(raw uint64, ppn uint32, sizeSel uint8) bool {
		s := PageSize(sizeSel % 3)
		v := VAddr(raw)
		p := Translate(v, uint64(ppn), s)
		return p.PageOffset(s) == v.PageOffset(s) && p.PPN(s) == uint64(ppn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVPNOffsetRecompose(t *testing.T) {
	f := func(raw uint64, sizeSel uint8) bool {
		s := PageSize(sizeSel % 3)
		v := VAddr(raw)
		return uint64(v) == v.VPN(s)<<s.OffsetBits()|v.PageOffset(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 63; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2(12) did not panic")
		}
	}()
	Log2(12)
}

func TestIsPow2(t *testing.T) {
	for _, x := range []uint64{1, 2, 4, 1024, 1 << 40} {
		if !IsPow2(x) {
			t.Errorf("IsPow2(%d) = false", x)
		}
	}
	for _, x := range []uint64{0, 3, 6, 12, 1<<40 + 1} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true", x)
		}
	}
}
