// Package addr defines the address arithmetic shared by every component of
// the SEESAW simulator: virtual and physical addresses, the x86-64 page
// sizes, cache-line geometry, and the partition-index extraction at the
// heart of the SEESAW design.
//
// Conventions follow x86-64: 64-bit virtual addresses, 4KB base pages, 2MB
// and 1GB superpages, and 64-byte cache lines.
package addr

import "fmt"

// VAddr is a virtual address.
type VAddr uint64

// PAddr is a physical address.
type PAddr uint64

// LineSize is the cache line size in bytes used throughout the simulator.
const LineSize = 64

// LineBits is log2(LineSize).
const LineBits = 6

// PageSize enumerates the page sizes supported by the simulated
// architecture. Base pages are 4KB; 2MB and 1GB are superpages.
type PageSize int

const (
	// Page4K is the 4KB base page.
	Page4K PageSize = iota
	// Page2M is the 2MB superpage.
	Page2M
	// Page1G is the 1GB superpage.
	Page1G
	// NumPageSizes is the count of supported page sizes.
	NumPageSizes
)

// OffsetBits returns the number of page-offset bits for the page size
// (12, 21, or 30).
func (s PageSize) OffsetBits() uint {
	switch s {
	case Page4K:
		return 12
	case Page2M:
		return 21
	case Page1G:
		return 30
	}
	panic(fmt.Sprintf("addr: invalid page size %d", int(s)))
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.OffsetBits() }

// IsSuper reports whether the page size is a superpage (larger than the
// base page).
func (s PageSize) IsSuper() bool { return s != Page4K }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", int(s))
}

// Mask returns a mask covering the low n bits.
func Mask(n uint) uint64 { return (uint64(1) << n) - 1 }

// PageOffset returns the page offset of v for the given page size.
func (v VAddr) PageOffset(s PageSize) uint64 { return uint64(v) & Mask(s.OffsetBits()) }

// VPN returns the virtual page number of v for the given page size.
func (v VAddr) VPN(s PageSize) uint64 { return uint64(v) >> s.OffsetBits() }

// PageBase returns the first address of the page containing v.
func (v VAddr) PageBase(s PageSize) VAddr { return VAddr(uint64(v) &^ Mask(s.OffsetBits())) }

// Line returns the cache-line address (line number) of v.
func (v VAddr) Line() uint64 { return uint64(v) >> LineBits }

// LineBase returns the first byte address of the line containing v.
func (v VAddr) LineBase() VAddr { return VAddr(uint64(v) &^ Mask(LineBits)) }

// Region2M returns the identifier of the 2MB-aligned virtual region
// containing v (VA bits 63:21). This is the tag stored in the TFT.
func (v VAddr) Region2M() uint64 { return uint64(v) >> Page2M.OffsetBits() }

// Bit returns bit i of the address (0 or 1).
func (v VAddr) Bit(i uint) uint64 { return (uint64(v) >> i) & 1 }

// Bits returns bits [lo, lo+n) of the address.
func (v VAddr) Bits(lo, n uint) uint64 { return (uint64(v) >> lo) & Mask(n) }

// PageOffset returns the page offset of p for the given page size.
func (p PAddr) PageOffset(s PageSize) uint64 { return uint64(p) & Mask(s.OffsetBits()) }

// PPN returns the physical page (frame) number of p for the given page size.
func (p PAddr) PPN(s PageSize) uint64 { return uint64(p) >> s.OffsetBits() }

// PageBase returns the first address of the physical page containing p.
func (p PAddr) PageBase(s PageSize) PAddr { return PAddr(uint64(p) &^ Mask(s.OffsetBits())) }

// Line returns the cache-line address (line number) of p.
func (p PAddr) Line() uint64 { return uint64(p) >> LineBits }

// LineBase returns the first byte address of the line containing p.
func (p PAddr) LineBase() PAddr { return PAddr(uint64(p) &^ Mask(LineBits)) }

// Bit returns bit i of the address (0 or 1).
func (p PAddr) Bit(i uint) uint64 { return (uint64(p) >> i) & 1 }

// Bits returns bits [lo, lo+n) of the address.
func (p PAddr) Bits(lo, n uint) uint64 { return (uint64(p) >> lo) & Mask(n) }

// Translate applies a translation from a virtual page to a physical frame:
// it replaces the virtual page number of v with ppn, keeping the page
// offset, for the given page size.
func Translate(v VAddr, ppn uint64, s PageSize) PAddr {
	return PAddr(ppn<<s.OffsetBits() | v.PageOffset(s))
}

// IsPow2 reports whether x is a power of two (x > 0).
func IsPow2(x uint64) bool { return x != 0 && x&(x-1) == 0 }

// Log2 returns log2(x) for a power of two x; it panics otherwise.
func Log2(x uint64) uint {
	if !IsPow2(x) {
		panic(fmt.Sprintf("addr: Log2 of non-power-of-two %d", x))
	}
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
