package experiments

import (
	"fmt"

	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// ablationWorkloads is the default subset for the design-choice studies.
var ablationWorkloads = []string{"redis", "nutch", "olio", "mcf", "cann"}

func ablationNames(o Options) []string {
	if len(o.Workloads) != len(workload.Names()) {
		return o.Workloads
	}
	return ablationWorkloads
}

// AblationInsertionPolicy compares the paper's 4way insertion policy with
// the 4way-8way alternative (Section IV-B1): hit rates should differ by
// about a point, while 4way keeps coherence probes partition-filtered.
func AblationInsertionPolicy(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	policies := []core.InsertionPolicy{core.FourWay, core.FourEightWay}
	cells := make([][]*runner.Future, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]*runner.Future, len(policies))
		for pi, policy := range policies {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			cfg.Policy = policy
			cells[ni][pi] = o.Pool.Submit(cfg)
		}
	}
	t := stats.NewTable("Ablation: 4way vs 4way-8way insertion (64KB, 1.33GHz, OoO)",
		"workload", "policy", "L1 hit %", "coh. probe energy (nJ)", "total energy (nJ)")
	for ni, name := range names {
		for pi, policy := range policies {
			r, err := cells[ni][pi].Wait()
			if err != nil {
				return nil, err
			}
			t.AddRow(name, policy.String(),
				fmt.Sprintf("%.2f", 100*stats.Ratio(r.L1Hits, r.L1Hits+r.L1Misses)),
				fmt.Sprintf("%.1f", r.EnergyCoherenceNJ),
				fmt.Sprintf("%.0f", r.EnergyTotalNJ))
		}
	}
	t.AddNote("expected: ~1%% hit-rate cost for 4way, repaid by halved coherence probe energy (paper Section IV-B1)")
	return t, nil
}

// AblationSchedulerPolicy compares the three scheduler speculation
// policies of Section IV-B3 under heavy fragmentation, where superpages
// are scarce and always-fast speculation squashes constantly.
func AblationSchedulerPolicy(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	type policy struct{ fast, slow bool }
	policies := []policy{{true, false}, {false, false}, {false, true}}
	cells := make([][]*runner.Future, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]*runner.Future, len(policies))
		for pi, pol := range policies {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			cfg.MemhogFraction = 0.85
			cfg.SchedulerAlwaysFast = pol.fast
			cfg.SchedulerAlwaysSlow = pol.slow
			cells[ni][pi] = o.Pool.Submit(cfg)
		}
	}
	t := stats.NewTable("Ablation: scheduler speculation policy (64KB, 1.33GHz, OoO, memhog 90%)",
		"workload", "always-fast (cycles)", "counter-gated (cycles)", "always-slow (cycles)")
	for ni, name := range names {
		var cycles [3]uint64
		for pi := range policies {
			r, err := cells[ni][pi].Wait()
			if err != nil {
				return nil, err
			}
			cycles[pi] = r.Cycles
		}
		t.AddRowValues(name, cycles[0], cycles[1], cycles[2])
	}
	t.AddNote("expected: counter-gated <= always-fast under scarce superpages (paper Section IV-B3)")
	return t, nil
}

// AblationTFTAssociativity compares the paper's direct-mapped TFT with a
// 2-way variant at equal capacity.
func AblationTFTAssociativity(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	assocs := []int{1, 2}
	cells := make([][]*runner.Future, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]*runner.Future, len(assocs))
		for ai, assoc := range assocs {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			cfg.TFT.Entries = 16
			cfg.TFT.Assoc = assoc
			cells[ni][ai] = o.Pool.Submit(cfg)
		}
	}
	t := stats.NewTable("Ablation: TFT associativity (16 entries, 64KB L1, 1.33GHz)",
		"workload", "organization", "TFT hit %", "superpage accesses missed %")
	for ni, name := range names {
		for ai, assoc := range assocs {
			r, err := cells[ni][ai].Wait()
			if err != nil {
				return nil, err
			}
			org := "direct-mapped"
			if assoc == 2 {
				org = "2-way"
			}
			t.AddRow(name, org,
				fmt.Sprintf("%.2f", 100*r.TFT.HitRate),
				fmt.Sprintf("%.2f", r.TFT.SuperMissedPct))
		}
	}
	t.AddNote("the paper found direct-mapped 'performs sufficiently well' (Section IV-A2)")
	return t, nil
}

// Ablation1GPages exercises the paper's "generalizes readily to 1GB
// superpages" claim: the heap is backed by explicit 1GB pages instead of
// transparent 2MB pages. The fast path still applies (the partition index
// is a page-offset bit for 1GB pages too) and the TLB walks less.
func Ablation1GPages(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	modes := []bool{false, true}
	cells := make([][]*runner.Future, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]*runner.Future, len(modes))
		for mi, oneG := range modes {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			if oneG {
				cfg.Heap1G = true
				cfg.MemBytes = 4 << 30
			}
			cells[ni][mi] = o.Pool.Submit(cfg)
		}
	}
	t := stats.NewTable("Ablation: 2MB vs 1GB superpage backing (SEESAW, 64KB, 1.33GHz, OoO)",
		"workload", "heap pages", "cycles", "fast-path hits", "TLB walks", "energy (nJ)")
	for ni, name := range names {
		for mi, oneG := range modes {
			r, err := cells[ni][mi].Wait()
			if err != nil {
				return nil, err
			}
			kind := "2MB"
			if oneG {
				kind = "1GB"
			}
			t.AddRowValues(name, kind, r.Cycles, r.TFT.FastHits, r.TLB.Walks,
				fmt.Sprintf("%.0f", r.EnergyTotalNJ))
		}
	}
	t.AddNote("expected: 1GB backing performs at least as well, with fewer page walks")
	return t, nil
}

// AblationSnoopy compares directory and snoopy coherence: snoopy
// broadcasts make SEESAW's partition-filtered probes save more energy
// (paper: an additional 2-5% for multithreaded workloads).
func AblationSnoopy(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := []string{"cann", "tunk", "g500", "nutch"}
	modes := []coherence.Mode{coherence.Directory, coherence.Snoopy}
	cells := make([][]pair, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]pair, len(modes))
		for mi, mode := range modes {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.CoherenceMode = mode
			cells[ni][mi] = submitPair(o, cfg)
		}
	}
	t := stats.NewTable("Ablation: directory vs snoopy coherence (64KB, 1.33GHz, OoO)",
		"workload", "protocol", "probes", "saved (nJ)", "SEESAW coherence-energy saving %")
	for ni, name := range names {
		for mi, mode := range modes {
			base, see, err := cells[ni][mi].wait()
			if err != nil {
				return nil, err
			}
			saving := stats.PctImprovement(base.EnergyCoherenceNJ, see.EnergyCoherenceNJ)
			t.AddRow(name, mode.String(),
				fmt.Sprintf("%d", base.Coh.ProbesSent),
				fmt.Sprintf("%.1f", base.EnergyCoherenceNJ-see.EnergyCoherenceNJ),
				fmt.Sprintf("%.2f", saving))
		}
	}
	t.AddNote("expected: snoopy sends far more probes, so partition filtering saves more (paper Section VI-B)")
	return t, nil
}
