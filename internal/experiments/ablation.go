package experiments

import (
	"fmt"

	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// ablationWorkloads is the default subset for the design-choice studies.
var ablationWorkloads = []string{"redis", "nutch", "olio", "mcf", "cann"}

func ablationNames(o Options) []string {
	if len(o.Workloads) != len(workload.Names()) {
		return o.Workloads
	}
	return ablationWorkloads
}

// AblationInsertionPolicy compares the paper's 4way insertion policy with
// the 4way-8way alternative (Section IV-B1): hit rates should differ by
// about a point, while 4way keeps coherence probes partition-filtered.
func AblationInsertionPolicy(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: 4way vs 4way-8way insertion (64KB, 1.33GHz, OoO)",
		"workload", "policy", "L1 hit %", "coh. probe energy (nJ)", "total energy (nJ)")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, policy := range []core.InsertionPolicy{core.FourWay, core.FourEightWay} {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			cfg.Policy = policy
			r, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, policy.String(),
				fmt.Sprintf("%.2f", 100*stats.Ratio(r.L1Hits, r.L1Hits+r.L1Misses)),
				fmt.Sprintf("%.1f", r.EnergyCoherenceNJ),
				fmt.Sprintf("%.0f", r.EnergyTotalNJ))
		}
	}
	t.AddNote("expected: ~1%% hit-rate cost for 4way, repaid by halved coherence probe energy (paper Section IV-B1)")
	return t, nil
}

// AblationSchedulerPolicy compares the three scheduler speculation
// policies of Section IV-B3 under heavy fragmentation, where superpages
// are scarce and always-fast speculation squashes constantly.
func AblationSchedulerPolicy(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: scheduler speculation policy (64KB, 1.33GHz, OoO, memhog 90%)",
		"workload", "always-fast (cycles)", "counter-gated (cycles)", "always-slow (cycles)")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		run := func(fast, slow bool) (uint64, error) {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			cfg.MemhogFraction = 0.85
			cfg.SchedulerAlwaysFast = fast
			cfg.SchedulerAlwaysSlow = slow
			r, err := sim.Run(cfg)
			if err != nil {
				return 0, err
			}
			return r.Cycles, nil
		}
		af, err := run(true, false)
		if err != nil {
			return nil, err
		}
		cg, err := run(false, false)
		if err != nil {
			return nil, err
		}
		as, err := run(false, true)
		if err != nil {
			return nil, err
		}
		t.AddRowValues(name, af, cg, as)
	}
	t.AddNote("expected: counter-gated <= always-fast under scarce superpages (paper Section IV-B3)")
	return t, nil
}

// AblationTFTAssociativity compares the paper's direct-mapped TFT with a
// 2-way variant at equal capacity.
func AblationTFTAssociativity(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: TFT associativity (16 entries, 64KB L1, 1.33GHz)",
		"workload", "organization", "TFT hit %", "superpage accesses missed %")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, assoc := range []int{1, 2} {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			cfg.TFT.Entries = 16
			cfg.TFT.Assoc = assoc
			r, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			org := "direct-mapped"
			if assoc == 2 {
				org = "2-way"
			}
			t.AddRow(name, org,
				fmt.Sprintf("%.2f", 100*r.TFT.HitRate),
				fmt.Sprintf("%.2f", r.TFT.SuperMissedPct))
		}
	}
	t.AddNote("the paper found direct-mapped 'performs sufficiently well' (Section IV-A2)")
	return t, nil
}

// Ablation1GPages exercises the paper's "generalizes readily to 1GB
// superpages" claim: the heap is backed by explicit 1GB pages instead of
// transparent 2MB pages. The fast path still applies (the partition index
// is a page-offset bit for 1GB pages too) and the TLB walks less.
func Ablation1GPages(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: 2MB vs 1GB superpage backing (SEESAW, 64KB, 1.33GHz, OoO)",
		"workload", "heap pages", "cycles", "fast-path hits", "TLB walks", "energy (nJ)")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, oneG := range []bool{false, true} {
			cfg := baseConfig(o, p, sim.KindSeesaw, 64<<10, 1.33, "ooo")
			cfg.CacheKind = sim.KindSeesaw
			if oneG {
				cfg.Heap1G = true
				cfg.MemBytes = 4 << 30
			}
			r, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			kind := "2MB"
			if oneG {
				kind = "1GB"
			}
			t.AddRowValues(name, kind, r.Cycles, r.TFT.FastHits, r.TLB.Walks,
				fmt.Sprintf("%.0f", r.EnergyTotalNJ))
		}
	}
	t.AddNote("expected: 1GB backing performs at least as well, with fewer page walks")
	return t, nil
}

// AblationSnoopy compares directory and snoopy coherence: snoopy
// broadcasts make SEESAW's partition-filtered probes save more energy
// (paper: an additional 2-5% for multithreaded workloads).
func AblationSnoopy(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: directory vs snoopy coherence (64KB, 1.33GHz, OoO)",
		"workload", "protocol", "probes", "saved (nJ)", "SEESAW coherence-energy saving %")
	for _, name := range []string{"cann", "tunk", "g500", "nutch"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, mode := range []coherence.Mode{coherence.Directory, coherence.Snoopy} {
			cfg := baseConfig(o, p, 0, 64<<10, 1.33, "ooo")
			cfg.CoherenceMode = mode
			base, see, err := runPair(cfg)
			if err != nil {
				return nil, err
			}
			saving := stats.PctImprovement(base.EnergyCoherenceNJ, see.EnergyCoherenceNJ)
			t.AddRow(name, mode.String(),
				fmt.Sprintf("%d", base.Coh.ProbesSent),
				fmt.Sprintf("%.1f", base.EnergyCoherenceNJ-see.EnergyCoherenceNJ),
				fmt.Sprintf("%.2f", saving))
		}
	}
	t.AddNote("expected: snoopy sends far more probes, so partition filtering saves more (paper Section VI-B)")
	return t, nil
}
