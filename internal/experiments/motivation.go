package experiments

import (
	"fmt"
	"math/rand"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/osmm"
	"seesaw/internal/physmem"
	"seesaw/internal/runner"
	"seesaw/internal/sram"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// fig2Sizes are the cache sizes of the paper's Fig 2 sweeps.
var fig2Sizes = []uint64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}

// Fig2a reproduces "Avg. Miss-per-kilo-instructions (MPKI)" versus
// associativity for 16KB-256KB caches: raising associativity beyond ~4
// barely moves the average MPKI, while capacity does.
func Fig2a(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	// Each (size, ways, workload) replay is an independent cell; fan them
	// out on the pool, then reduce row-by-row in submission order.
	tasks := make([][][]*runner.Task[float64], len(fig2Sizes))
	for si, size := range fig2Sizes {
		tasks[si] = make([][]*runner.Task[float64], len(sram.Assocs))
		for wi, ways := range sram.Assocs {
			if uint64(ways)*addr.LineSize > size {
				continue
			}
			tasks[si][wi] = make([]*runner.Task[float64], len(profiles))
			for pi, p := range profiles {
				p, size, ways := p, size, ways
				tasks[si][wi][pi] = runner.Go(o.Pool, func() (float64, error) {
					return cacheOnlyMPKI(p, o.Seed, o.Refs, size, ways)
				})
			}
		}
	}
	t := stats.NewTable("Fig 2a: average MPKI vs associativity",
		"size", "DM", "2-way", "4-way", "8-way", "16-way", "32-way")
	for si, size := range fig2Sizes {
		row := []string{fmt.Sprintf("%dKB", size>>10)}
		for wi := range sram.Assocs {
			if tasks[si][wi] == nil {
				row = append(row, "-")
				continue
			}
			var sum stats.Summary
			for _, task := range tasks[si][wi] {
				mpki, err := task.Wait()
				if err != nil {
					return nil, err
				}
				sum.Add(mpki)
			}
			row = append(row, fmt.Sprintf("%.1f", sum.Mean()))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: MPKI flat beyond 4 ways, dropping with capacity (paper Fig 2a)")
	return t, nil
}

// cacheOnlyMPKI replays a workload against a bare cache model (identity
// translation, no timing) — the methodology of the paper's trace-driven
// motivation study.
func cacheOnlyMPKI(p workload.Profile, seed int64, refs int, size uint64, ways int) (float64, error) {
	geom, err := addr.NewCacheGeometry(size, ways, 1)
	if err != nil {
		return 0, err
	}
	g := workload.NewGenerator(p, seed)
	g.BindDefault()
	c := cache.New(geom)
	var instrs uint64
	for i := 0; i < refs; i++ {
		rec := g.Next(i % p.Threads)
		instrs += uint64(rec.Gap) + 1
		pa := addr.PAddr(rec.VA)
		set, tag := geom.SetIndexP(pa), geom.TagP(pa)
		if _, hit := c.Access(set, cache.AnyPartition, tag); !hit {
			c.Insert(set, cache.AnyPartition, tag, cache.Shared)
		}
	}
	return c.MPKI(instrs), nil
}

// Fig2b reproduces "Cache Access Latency" versus associativity from the
// SRAM model (ns, 22nm).
func Fig2b() (*stats.Table, error) {
	t := stats.NewTable("Fig 2b: access latency (ns) vs associativity",
		"size", "DM", "2-way", "4-way", "8-way", "16-way", "32-way")
	for _, size := range fig2Sizes {
		row := []string{fmt.Sprintf("%dKB", size>>10)}
		for _, ways := range sram.Assocs {
			l, err := sram.Latency(size, ways)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", l))
		}
		t.AddRow(row...)
	}
	t.AddNote("10-25%% growth per step at low associativity, blow-up beyond 8 ways (paper Fig 2b)")
	return t, nil
}

// Fig2c reproduces "Cache access energy" versus associativity (nJ).
func Fig2c() (*stats.Table, error) {
	t := stats.NewTable("Fig 2c: access energy (nJ) vs associativity",
		"size", "DM", "2-way", "4-way", "8-way", "16-way", "32-way")
	for _, size := range fig2Sizes {
		row := []string{fmt.Sprintf("%dKB", size>>10)}
		for _, ways := range sram.Assocs {
			e, err := sram.Energy(size, ways)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", e))
		}
		t.AddRow(row...)
	}
	t.AddNote("40-50%% growth per associativity doubling (paper Fig 2c)")
	return t, nil
}

// Fig3 reproduces the superpage-prevalence study: the fraction of each
// workload's footprint backed by 2MB pages as memhog fragments 0%, 40%,
// 60%, and 80% of physical memory.
func Fig3(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	hogs := []float64{0, 0.40, 0.60, 0.80}
	tasks := make([][]*runner.Task[float64], len(profiles))
	for pi, p := range profiles {
		tasks[pi] = make([]*runner.Task[float64], len(hogs))
		for hi, hog := range hogs {
			p, hog := p, hog
			tasks[pi][hi] = runner.Go(o.Pool, func() (float64, error) {
				return coverageUnderFragmentation(p, o.Seed, hog)
			})
		}
	}
	t := stats.NewTable("Fig 3: % of footprint in 2MB superpages vs memhog",
		"workload", "memhog(0%)", "memhog(40%)", "memhog(60%)", "memhog(80%)")
	for pi, p := range profiles {
		row := []string{p.Name}
		for hi := range hogs {
			cov, err := tasks[pi][hi].Wait()
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", cov*100))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: 65%%+ coverage through memhog(40-60%%), collapsing at 80%% (paper Fig 3)")
	return t, nil
}

// coverageUnderFragmentation maps one workload's footprint on fragmented
// memory and reports superpage coverage, including a khugepaged promotion
// pass (the OS keeps trying in the background, as on the paper's
// long-uptime systems).
func coverageUnderFragmentation(p workload.Profile, seed int64, hog float64) (float64, error) {
	// 1GB of physical memory: big enough that even the 96MB-footprint
	// workloads fit beside memhog(80%), as on the paper's 32GB testbed.
	buddy, err := physmem.New(1 << 30)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	mgr := osmm.NewManager(buddy, rng, true)
	if hog > 0 {
		h, err := physmem.Run(buddy, rng, hog, 0.97)
		if err != nil {
			return 0, err
		}
		mgr.Compactor = h // memhog pages are movable
	}
	proc, err := mgr.NewProcess(1)
	if err != nil {
		return 0, err
	}
	g := workload.NewGenerator(p, seed)
	if _, err := mgr.MmapHuge(proc, g.HeapBytes(), true); err != nil {
		return 0, err
	}
	if _, err := mgr.MmapHuge(proc, g.SmallBytes(), false); err != nil {
		return 0, err
	}
	mgr.PromoteScan(proc, 1<<30)
	return proc.SuperpageCoverage(), nil
}
