package experiments

import (
	"fmt"

	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// Fig11 reproduces the split of SEESAW's L1 energy savings between
// CPU-side lookups and coherence lookups, per workload, on the
// out-of-order system with 64KB L1s at 1.33GHz.
func Fig11(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	cells := make([]pair, len(profiles))
	for pi, p := range profiles {
		cells[pi] = submitPair(o, baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo"))
	}
	t := stats.NewTable("Fig 11: % of L1 energy savings from CPU-side vs coherence lookups (64KB, OoO, 1.33GHz)",
		"workload", "CPU-side %", "coherence %")
	for pi, p := range profiles {
		base, see, err := cells[pi].wait()
		if err != nil {
			return nil, err
		}
		cpuSave := base.EnergyCPUSideNJ - see.EnergyCPUSideNJ
		cohSave := base.EnergyCoherenceNJ - see.EnergyCoherenceNJ
		total := cpuSave + cohSave
		if total <= 0 {
			t.AddRow(p.Name, "-", "-")
			continue
		}
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", 100*cpuSave/total),
			fmt.Sprintf("%.1f", 100*cohSave/total))
	}
	t.AddNote("expected shape: every workload has a coherence slice; multithreaded workloads (cann, tunk) approach a third (paper Fig 11)")
	return t, nil
}

// Fig12 reproduces the fragmentation sensitivity study: performance and
// energy improvements for the cloud workloads with memhog holding 0%,
// 30%, and 60% of memory (64KB L1s at 1.33GHz).
func Fig12(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := o.Workloads
	if len(names) == len(workload.Names()) {
		names = workload.CloudNames // the paper's Fig 12 subset
	}
	hogs := []float64{0, 0.30, 0.60}
	cells := make([][]pair, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]pair, len(hogs))
		for hi, hog := range hogs {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.MemhogFraction = hog
			cells[ni][hi] = submitPair(o, cfg)
		}
	}
	t := stats.NewTable("Fig 12: % improvement vs memory fragmentation (64KB, 1.33GHz, OoO)",
		"workload", "memhog", "perf %", "energy %", "coverage %")
	for ni, name := range names {
		for hi, hog := range hogs {
			base, see, err := cells[ni][hi].wait()
			if err != nil {
				return nil, err
			}
			t.AddRow(name,
				fmt.Sprintf("mh%.0f", hog*100),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
				fmt.Sprintf("%.2f", energyImprovement(base, see)),
				fmt.Sprintf("%.1f", see.SuperpageCoverage*100))
		}
	}
	t.AddNote("expected shape: benefits shrink with fragmentation but stay positive (paper: 4-6%% at memhog 60%%)")
	return t, nil
}

// EnergyBreakdown decomposes the memory-hierarchy energy per workload for
// baseline and SEESAW (64KB, 1.33GHz, OoO) — the accounting behind Fig
// 10, useful for seeing which component each workload's savings come from
// and why miss-heavy workloads save less.
func EnergyBreakdown(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	cells := make([]pair, len(profiles))
	for pi, p := range profiles {
		cells[pi] = submitPair(o, baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo"))
	}
	t := stats.NewTable("Energy breakdown (nJ; 64KB, 1.33GHz, OoO)",
		"workload", "design", "L1 CPU-side", "L1 coherence", "TLBs+TFT", "walks", "LLC", "DRAM", "leakage", "total")
	for pi, p := range profiles {
		base, see, err := cells[pi].wait()
		if err != nil {
			return nil, err
		}
		for _, r := range []*sim.Report{base, see} {
			a := r.Energy
			t.AddRow(p.Name, r.Design,
				fmt.Sprintf("%.0f", a.L1CPUSideNJ),
				fmt.Sprintf("%.0f", a.L1CoherenceNJ),
				fmt.Sprintf("%.0f", a.TLBNJ+a.TFTNJ),
				fmt.Sprintf("%.0f", a.WalkNJ),
				fmt.Sprintf("%.0f", a.LLCNJ),
				fmt.Sprintf("%.0f", a.DRAMNJ),
				fmt.Sprintf("%.0f", a.LeakageNJ(r.RuntimeSec)),
				fmt.Sprintf("%.0f", r.EnergyTotalNJ))
		}
	}
	t.AddNote("SEESAW cuts the L1 columns and (via shorter runtime) leakage; LLC/DRAM columns explain why miss-heavy workloads save a smaller share")
	return t, nil
}

// Fig13 reproduces the TFT sizing study: the percentage of superpage
// accesses the TFT fails to identify, for 12/16/20-entry TFTs and
// 32/64/128KB caches, split into accesses that hit and miss in the L1.
func Fig13(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	entrySet := []int{12, 16, 20}
	cells := make([][][]*runner.Future, len(entrySet))
	for ei, entries := range entrySet {
		cells[ei] = make([][]*runner.Future, len(perfSizes))
		for si, size := range perfSizes {
			cells[ei][si] = make([]*runner.Future, len(profiles))
			for pi, p := range profiles {
				cfg := baseConfig(o, p, sim.KindSeesaw, size, 1.33, "ooo")
				cfg.CacheKind = sim.KindSeesaw
				cfg.TFT.Entries = entries
				cfg.TFT.Assoc = 1
				cells[ei][si][pi] = o.Pool.Submit(cfg)
			}
		}
	}
	t := stats.NewTable("Fig 13: % of superpage accesses missed by the TFT",
		"TFT entries", "L1 size", "missed, L1 hits (avg [min..max])", "missed, L1 misses (avg [min..max])")
	for ei, entries := range entrySet {
		for si, size := range perfSizes {
			var hitSide, missSide stats.Summary
			for pi := range profiles {
				r, err := cells[ei][si][pi].Wait()
				if err != nil {
					return nil, err
				}
				hitSide.Add(r.TFT.SuperMissedL1HitPct)
				missSide.Add(r.TFT.SuperMissedL1MissPct)
			}
			t.AddRow(
				fmt.Sprintf("%d", entries),
				fmt.Sprintf("%dKB", size>>10),
				fmt.Sprintf("%.2f [%.2f..%.2f]", hitSide.Mean(), hitSide.Min(), hitSide.Max()),
				fmt.Sprintf("%.2f [%.2f..%.2f]", missSide.Mean(), missSide.Min(), missSide.Max()))
		}
	}
	t.AddNote("expected shape: 16 entries keep misses under ~10%%; most TFT misses are also L1 misses (paper Fig 13)")
	return t, nil
}
