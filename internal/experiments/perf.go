package experiments

import (
	"fmt"

	"seesaw/internal/sim"
	"seesaw/internal/stats"
)

var (
	perfSizes = []uint64{32 << 10, 64 << 10, 128 << 10}
	perfFreqs = []float64{1.33, 2.80, 4.00}
)

// Fig7 reproduces the per-workload runtime improvement of SEESAW over
// baseline VIPT on the out-of-order core at 1.33GHz for 32/64/128KB L1s.
func Fig7(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	cells := make([][]pair, len(profiles))
	for pi, p := range profiles {
		cells[pi] = make([]pair, len(perfSizes))
		for si, size := range perfSizes {
			cells[pi][si] = submitPair(o, baseConfig(o, p, sim.KindBaseline, size, 1.33, "ooo"))
		}
	}
	t := stats.NewTable("Fig 7: % runtime improvement, OoO @1.33GHz",
		"workload", "32KB", "64KB", "128KB")
	var avg [3]stats.Summary
	for pi, p := range profiles {
		row := []string{p.Name}
		for si := range perfSizes {
			base, see, err := cells[pi][si].wait()
			if err != nil {
				return nil, err
			}
			imp := runtimeImprovement(base, see)
			avg[si].Add(imp)
			row = append(row, fmt.Sprintf("%.2f", imp))
		}
		t.AddRow(row...)
	}
	t.AddRow("average",
		fmt.Sprintf("%.2f", avg[0].Mean()),
		fmt.Sprintf("%.2f", avg[1].Mean()),
		fmt.Sprintf("%.2f", avg[2].Mean()))
	t.AddNote("expected shape: every workload improves; larger caches improve more (paper: 5-11%% averages)")
	return t, nil
}

// improvementSweep runs the size × frequency sweep for one CPU kind and
// reports avg/min/max runtime (and energy) improvements across workloads.
func improvementSweep(o Options, cpuKind string) (perf, energy *stats.Table, err error) {
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, nil, err
	}
	// Submit the full freq × size × workload fan-out before reducing.
	cells := make([][][]pair, len(perfFreqs))
	for fi, f := range perfFreqs {
		cells[fi] = make([][]pair, len(perfSizes))
		for si, size := range perfSizes {
			cells[fi][si] = make([]pair, len(profiles))
			for wi, p := range profiles {
				cells[fi][si][wi] = submitPair(o, baseConfig(o, p, sim.KindBaseline, size, f, cpuKind))
			}
		}
	}
	perf = stats.NewTable(
		fmt.Sprintf("%% runtime improvement (%s core): avg [min..max] across workloads", cpuKind),
		"freq", "32KB", "64KB", "128KB")
	energy = stats.NewTable(
		fmt.Sprintf("%% memory-hierarchy energy saved (%s core): avg [min..max]", cpuKind),
		"freq", "32KB", "64KB", "128KB")
	for fi, f := range perfFreqs {
		perfRow := []string{fmt.Sprintf("%.2fGHz", f)}
		enRow := []string{fmt.Sprintf("%.2fGHz", f)}
		for si := range perfSizes {
			var ps, es stats.Summary
			for wi := range profiles {
				base, see, err := cells[fi][si][wi].wait()
				if err != nil {
					return nil, nil, err
				}
				ps.Add(runtimeImprovement(base, see))
				es.Add(energyImprovement(base, see))
			}
			perfRow = append(perfRow, fmt.Sprintf("%.2f [%.2f..%.2f]", ps.Mean(), ps.Min(), ps.Max()))
			enRow = append(enRow, fmt.Sprintf("%.2f [%.2f..%.2f]", es.Mean(), es.Min(), es.Max()))
		}
		perf.AddRow(perfRow...)
		energy.AddRow(enRow...)
	}
	return perf, energy, nil
}

// Fig8 reproduces the avg/min/max runtime improvement on the out-of-order
// core across cache sizes and frequencies.
func Fig8(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	perf, _, err := improvementSweep(o, "ooo")
	if err != nil {
		return nil, err
	}
	perf.Title = "Fig 8: " + perf.Title
	perf.AddNote("expected shape: improvements grow with cache size and frequency (paper Fig 8)")
	return perf, nil
}

// Fig9 reproduces the same sweep on the in-order core, where benefits are
// higher because L1 latency cannot be hidden.
func Fig9(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	perf, _, err := improvementSweep(o, "inorder")
	if err != nil {
		return nil, err
	}
	perf.Title = "Fig 9: " + perf.Title
	perf.AddNote("expected shape: 3-5 points higher than the OoO core (paper Fig 9)")
	return perf, nil
}

// Fig10 reproduces the memory-hierarchy energy savings, separated by core
// type, across sizes and frequencies.
func Fig10(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	_, enOoO, err := improvementSweep(o, "ooo")
	if err != nil {
		return nil, err
	}
	_, enInO, err := improvementSweep(o, "inorder")
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 10: % memory-hierarchy energy saved",
		"core", "freq", "32KB", "64KB", "128KB")
	for _, row := range enInO.Rows {
		t.AddRow(append([]string{"InO"}, row...)...)
	}
	for _, row := range enOoO.Rows {
		t.AddRow(append([]string{"OOO"}, row...)...)
	}
	t.AddNote("expected shape: always positive, larger for larger caches; in-order slightly higher (paper Fig 10)")
	return t, nil
}
