// Package experiments regenerates every table and figure of the paper's
// evaluation as printable row/series tables. Each function is
// self-contained: it builds the systems it needs through internal/sim and
// returns a stats.Table whose rows mirror what the paper plots. The
// cmd/seesaw-figures tool and the repository's benchmark harness both
// drive this package; EXPERIMENTS.md records paper-vs-measured values.
//
// Generators fan their independent simulation cells out onto a
// runner.Pool (Options.Pool / Options.Parallel) and reduce the futures
// in submission order, so the printed tables are byte-identical for a
// given seed whether the cells ran serially or concurrently.
package experiments

import (
	"fmt"
	"sort"

	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Refs per simulation (default 100k).
	Refs int
	// RefsSet marks Refs as explicitly chosen, so Refs == 0 means zero
	// references instead of the default.
	RefsSet bool
	// Seed for deterministic workloads and fragmentation (default 42).
	Seed int64
	// SeedSet marks Seed as explicitly chosen, so the perfectly valid
	// seed 0 is usable instead of being replaced by the default.
	SeedSet bool
	// Workloads restricts the workload set (default: all sixteen).
	Workloads []string
	// WarmupRefs prepends an OS-only warmup phase of this many references
	// to every cell (0 = none); see machine.Config.WarmupRefs.
	WarmupRefs int
	// SharedWarmup runs the experiment on a shared-warmup pool (when Pool
	// is nil): cells that agree on their warmup signature — same
	// workload, seed, and OS parameters, differing only in measured-phase
	// design points — fork from one warmed machine instead of each
	// re-simulating WarmupRefs references. Reports are byte-identical to
	// cold runs, so tables do not change; only wall-clock time does.
	SharedWarmup bool
	// Parallel bounds concurrent simulation cells when Pool is nil:
	// 0 selects runtime.GOMAXPROCS(0), 1 restores serial execution.
	Parallel int
	// Pool runs the experiment's cells. Sharing one pool across
	// experiments (as cmd/seesaw-figures does) also shares its result
	// cache, so every figure comparing against the same baseline cell
	// reuses one run. When nil, a fresh pool with Parallel workers is
	// created per experiment.
	Pool *runner.Pool
}

func (o Options) withDefaults() Options {
	if o.Refs == 0 && !o.RefsSet {
		o.Refs = 100_000
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = 42
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Names()
	}
	if o.Pool == nil {
		if o.SharedWarmup {
			o.Pool = runner.NewSharedWarmup(o.Parallel)
		} else {
			o.Pool = runner.New(o.Parallel)
		}
	}
	return o
}

// profilesFor resolves the option's workload names.
func profilesFor(o Options) ([]workload.Profile, error) {
	ps := make([]workload.Profile, 0, len(o.Workloads))
	for _, n := range o.Workloads {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// baseConfig is the shared simulation skeleton.
func baseConfig(o Options, p workload.Profile, kind sim.CacheKind, size uint64, freq float64, cpuKind string) sim.Config {
	refs := o.Refs
	if refs == 0 {
		refs = -1 // an explicit zero survives sim's own defaulting
	}
	return sim.Config{
		Workload:   p,
		Seed:       o.Seed,
		Refs:       refs,
		WarmupRefs: o.WarmupRefs,
		CacheKind:  kind,
		L1Size:     size,
		FreqGHz:    freq,
		CPUKind:    cpuKind,
		MemBytes:   512 << 20,
	}
}

// pair is a submitted baseline+SEESAW comparison awaiting reduction.
// Generators submit every cell first, then reduce pairs in submission
// order, so rows come out byte-identical to a serial run while the
// pool's workers execute cells concurrently.
type pair struct {
	base, see *runner.Future
}

// submitPair schedules baseline VIPT and SEESAW on identical inputs.
func submitPair(o Options, cfg sim.Config) pair {
	b, s := o.Pool.Pair(cfg)
	return pair{base: b, see: s}
}

// wait blocks for both sides of the comparison.
func (pr pair) wait() (base, see *sim.Report, err error) {
	if base, err = pr.base.Wait(); err != nil {
		return nil, nil, err
	}
	if see, err = pr.see.Wait(); err != nil {
		return nil, nil, err
	}
	return base, see, nil
}

// runtimeImprovement returns the percent runtime improvement of see over
// base (positive = SEESAW faster).
func runtimeImprovement(base, see *sim.Report) float64 {
	return stats.PctImprovement(float64(base.Cycles), float64(see.Cycles))
}

// energyImprovement returns the percent memory-hierarchy energy saving.
func energyImprovement(base, see *sim.Report) float64 {
	return stats.PctImprovement(base.EnergyTotalNJ, see.EnergyTotalNJ)
}

// Generator produces one experiment table.
type Generator func(Options) (*stats.Table, error)

// registry maps experiment ids to generators.
var registry = map[string]Generator{
	"fig2a":  Fig2a,
	"fig2b":  noOpt(Fig2b),
	"fig2c":  noOpt(Fig2c),
	"fig3":   Fig3,
	"table1": noOpt(TableI),
	"table2": noOpt(TableII),
	"table3": noOpt(TableIII),
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,

	"energy-breakdown":     EnergyBreakdown,
	"vespa-vs-seesaw":      VespaVsSeesaw,
	"evolve-best":          EvolveBest,
	"ext-icache":           ExtICache,
	"ablation-1g":          Ablation1GPages,
	"ablation-partition":   AblationPartitionCount,
	"ablation-prefetch":    AblationPrefetch,
	"ablation-replacement": AblationReplacement,
	"ablation-insertion":   AblationInsertionPolicy,
	"ablation-scheduler":   AblationSchedulerPolicy,
	"ablation-tft-assoc":   AblationTFTAssociativity,
	"ablation-snoopy":      AblationSnoopy,
}

func noOpt(f func() (*stats.Table, error)) Generator {
	return func(Options) (*stats.Table, error) { return f() }
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, o Options) (*stats.Table, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return g(o)
}
