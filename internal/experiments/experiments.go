// Package experiments regenerates every table and figure of the paper's
// evaluation as printable row/series tables. Each function is
// self-contained: it builds the systems it needs through internal/sim and
// returns a stats.Table whose rows mirror what the paper plots. The
// cmd/seesaw-figures tool and the repository's benchmark harness both
// drive this package; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"

	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Refs per simulation (default 100k).
	Refs int
	// Seed for deterministic workloads and fragmentation.
	Seed int64
	// Workloads restricts the workload set (default: all sixteen).
	Workloads []string
}

func (o Options) withDefaults() Options {
	if o.Refs == 0 {
		o.Refs = 100_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Names()
	}
	return o
}

// profilesFor resolves the option's workload names.
func profilesFor(o Options) ([]workload.Profile, error) {
	ps := make([]workload.Profile, 0, len(o.Workloads))
	for _, n := range o.Workloads {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// baseConfig is the shared simulation skeleton.
func baseConfig(o Options, p workload.Profile, kind sim.CacheKind, size uint64, freq float64, cpuKind string) sim.Config {
	return sim.Config{
		Workload:  p,
		Seed:      o.Seed,
		Refs:      o.Refs,
		CacheKind: kind,
		L1Size:    size,
		FreqGHz:   freq,
		CPUKind:   cpuKind,
		MemBytes:  512 << 20,
	}
}

// runPair executes baseline VIPT and SEESAW on identical inputs and
// returns both reports.
func runPair(cfg sim.Config) (base, see *sim.Report, err error) {
	cfg.CacheKind = sim.KindBaseline
	base, err = sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.CacheKind = sim.KindSeesaw
	see, err = sim.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return base, see, nil
}

// runtimeImprovement returns the percent runtime improvement of see over
// base (positive = SEESAW faster).
func runtimeImprovement(base, see *sim.Report) float64 {
	return stats.PctImprovement(float64(base.Cycles), float64(see.Cycles))
}

// energyImprovement returns the percent memory-hierarchy energy saving.
func energyImprovement(base, see *sim.Report) float64 {
	return stats.PctImprovement(base.EnergyTotalNJ, see.EnergyTotalNJ)
}

// Generator produces one experiment table.
type Generator func(Options) (*stats.Table, error)

// registry maps experiment ids to generators.
var registry = map[string]Generator{
	"fig2a":  Fig2a,
	"fig2b":  noOpt(Fig2b),
	"fig2c":  noOpt(Fig2c),
	"fig3":   Fig3,
	"table1": noOpt(TableI),
	"table2": noOpt(TableII),
	"table3": noOpt(TableIII),
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,

	"energy-breakdown":     EnergyBreakdown,
	"ext-icache":           ExtICache,
	"ablation-1g":          Ablation1GPages,
	"ablation-partition":   AblationPartitionCount,
	"ablation-prefetch":    AblationPrefetch,
	"ablation-replacement": AblationReplacement,
	"ablation-insertion":   AblationInsertionPolicy,
	"ablation-scheduler":   AblationSchedulerPolicy,
	"ablation-tft-assoc":   AblationTFTAssociativity,
	"ablation-snoopy":      AblationSnoopy,
}

func noOpt(f func() (*stats.Table, error)) Generator {
	return func(Options) (*stats.Table, error) { return f() }
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, o Options) (*stats.Table, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return g(o)
}
