package experiments

import (
	"context"
	"fmt"

	"seesaw/internal/evolve"
	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// evolveBestFrags is the fragmentation sweep the found design is
// re-evaluated under: pristine memory, moderate pressure, and the
// fragmented regime the search itself optimized for.
var evolveBestFrags = []float64{0, 0.3, 0.6}

// EvolveBest runs a small fixed-budget evolutionary search (the
// internal/evolve machinery behind cmd/seesaw-evolve) on the fragmented
// scenario, then re-evaluates the best-found design against the paper
// default across a fragmentation sweep. Rows are fragmentation levels;
// columns compare the two designs' speedup over baseline VIPT (geomean
// across workloads) and translation MPKI. The search is seeded from
// Options.Seed, so the table is reproducible like every other figure.
func EvolveBest(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := o.Workloads
	if len(names) == len(workload.Names()) {
		// The full 16-workload search is seesaw-evolve territory; the
		// figure-sized run scores genomes on the two paper anchors.
		names = []string{"redis", "mcf"}
	}

	searchFrag := evolveBestFrags[len(evolveBestFrags)-1]
	search, err := evolve.New(evolve.Options{
		Seed:        o.Seed,
		Population:  8,
		Generations: 4,
		Scenario: evolve.Scenario{
			Workloads:  names,
			Frag:       searchFrag,
			Seed:       o.Seed,
			Refs:       o.Refs,
			WarmupRefs: o.WarmupRefs,
		},
	}, evolve.PoolEvaluator{Pool: o.Pool})
	if err != nil {
		return nil, err
	}
	res, err := search.Run(context.Background())
	if err != nil {
		return nil, err
	}
	best, def := res.Best.Genome, res.Default.Genome

	// Re-evaluate both designs across the fragmentation sweep on the
	// same pool: the search's own frag-0.6 cells are cache hits. Cells
	// use the scenario's config shape (sim defaults for the machine), so
	// they dedup against the search's cells exactly.
	profiles := make([]workload.Profile, len(names))
	for i, name := range names {
		if profiles[i], err = workload.ByName(name); err != nil {
			return nil, err
		}
	}
	scenario := func(p workload.Profile, frag float64) sim.Config {
		return sim.Config{
			Workload:       p,
			Seed:           o.Seed,
			Refs:           o.Refs,
			WarmupRefs:     o.WarmupRefs,
			MemhogFraction: frag,
		}
	}
	type cells struct{ base, def, best []*runner.Future }
	sweep := make([]cells, len(evolveBestFrags))
	for fi, frag := range evolveBestFrags {
		var c cells
		for _, p := range profiles {
			cfg := scenario(p, frag)
			baseCfg := cfg
			baseCfg.CacheKind = sim.KindBaseline
			c.base = append(c.base, o.Pool.Submit(baseCfg))
			c.def = append(c.def, o.Pool.Submit(def.Apply(cfg)))
			c.best = append(c.best, o.Pool.Submit(best.Apply(cfg)))
		}
		sweep[fi] = c
	}

	t := stats.NewTable(
		fmt.Sprintf("Autotuned SEESAW vs paper default under fragmentation (best %s, search seed %d)", best.Key(), o.Seed),
		"memhog frac", "default speedup", "best speedup", "default MPKI", "best MPKI")
	for fi, frag := range evolveBestFrags {
		baseReps, err := waitAll(sweep[fi].base)
		if err != nil {
			return nil, err
		}
		defObj, err := designPoint(sweep[fi].def, baseReps)
		if err != nil {
			return nil, err
		}
		bestObj, err := designPoint(sweep[fi].best, baseReps)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", frag),
			fmt.Sprintf("%.4f", defObj.Speedup), fmt.Sprintf("%.4f", bestObj.Speedup),
			fmt.Sprintf("%.3f", defObj.MPKI), fmt.Sprintf("%.3f", bestObj.MPKI))
	}
	t.AddNote(fmt.Sprintf("search: %d genomes over %d generations on %v at memhog %.2f; paper default %s",
		res.Evaluations, res.Generations, names, searchFrag, def.Key()))
	if res.BestDominatesDefault {
		t.AddNote("the found design strictly Pareto-dominates the paper default on the search scenario")
	}
	t.AddNote("expected: the autotuned design holds or beats the default as fragmentation rises — the regime it was searched under")
	return t, nil
}

// waitAll reduces a slice of futures in submission order.
func waitAll(fs []*runner.Future) ([]*sim.Report, error) {
	reps := make([]*sim.Report, len(fs))
	for i, f := range fs {
		r, err := f.Wait()
		if err != nil {
			return nil, err
		}
		reps[i] = r
	}
	return reps, nil
}

// designPoint folds one design's sweep cells into the search's
// objective space (geomean speedup over baseline, mean translation
// MPKI).
func designPoint(fs []*runner.Future, base []*sim.Report) (evolve.Objectives, error) {
	reps, err := waitAll(fs)
	if err != nil {
		return evolve.Objectives{}, err
	}
	return evolve.Reduce(reps, base)
}
