package experiments

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/core"
	"seesaw/internal/sram"
	"seesaw/internal/stats"
	"seesaw/internal/tft"
)

// TableI reproduces the paper's "Anatomy of a lookup using SEESAW" by
// driving a real 32KB SEESAW cache at 1.33GHz through the four cases and
// reporting the observed cycles and ways probed.
func TableI() (*stats.Table, error) {
	s, err := core.NewSeesaw(core.Config{
		SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33, TFT: tft.DefaultConfig(),
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table I: anatomy of a SEESAW lookup (32KB, 1.33GHz)",
		"page", "TFT", "cache", "cycles", "ways probed", "savings vs baseline")
	base, err := core.NewBaselineVIPT(core.Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33})
	if err != nil {
		return nil, err
	}
	baseCycles := base.SlowCycles()

	va := addr.VAddr(0x4000_0000)
	pa := addr.Translate(va, 7, addr.Page2M)

	// Row 1: 2MB, TFT hit, cache hit.
	s.OnSuperpageTLBFill(va)
	s.Fill(pa, addr.Page2M, false, false)
	r := s.Access(va, pa, addr.Page2M, false)
	t.AddRowValues("2MB", "hit", "hit", r.Cycles, r.WaysProbed,
		fmt.Sprintf("latency+energy (vs %d cycles, 8 ways)", baseCycles))

	// Row 2: 2MB, TFT hit, cache miss.
	va2 := va + 4<<20
	pa2 := addr.Translate(va2, 9, addr.Page2M)
	s.OnSuperpageTLBFill(va2)
	r = s.Access(va2, pa2, addr.Page2M, false)
	t.AddRowValues("2MB", "hit", "miss", r.Cycles, r.WaysProbed, "energy")

	// Row 3: 2MB, TFT miss.
	va3 := va + 8<<20
	pa3 := addr.Translate(va3, 11, addr.Page2M)
	s.Fill(pa3, addr.Page2M, false, false)
	r = s.Access(va3, pa3, addr.Page2M, false)
	t.AddRowValues("2MB", "miss", "*", r.Cycles, r.WaysProbed, "none")

	// Row 4: 4KB (TFT always misses for base pages).
	va4 := addr.VAddr(0x1234_5000)
	pa4 := addr.Translate(va4, 99, addr.Page4K)
	s.Fill(pa4, addr.Page4K, false, false)
	r = s.Access(va4, pa4, addr.Page4K, false)
	t.AddRowValues("4KB", "miss", "*", r.Cycles, r.WaysProbed, "none")

	t.AddNote("baseline VIPT: every lookup takes %d cycles and reads 8 ways", baseCycles)
	return t, nil
}

// TableII prints the simulated system parameters (the paper's Table II).
func TableII() (*stats.Table, error) {
	t := stats.NewTable("Table II: system parameters", "component", "configuration")
	t.AddRow("Out-of-order CPU", "~Intel Sandybridge: 168-entry ROB, 54-entry scheduler, 4-wide (analytic window model)")
	t.AddRow("In-order CPU", "~Intel Atom: dual-issue")
	t.AddRow("L1 caches", "private, split I/D; D configured 32KB-128KB VIPT/SEESAW/PIPT")
	t.AddRow("TLBs (Sandybridge)", "split L1: 128-entry 4KB, 16-entry 2MB; 512-entry L2")
	t.AddRow("TLBs (Atom)", "split L1: 64-entry 4KB, 32-entry 2MB; 512-entry L2")
	t.AddRow("TFT", "16-entry direct-mapped, 86B/core")
	t.AddRow("LLC", "unified 24MB, inclusive, 24-way")
	t.AddRow("DRAM", "51ns round-trip")
	t.AddRow("Coherence", "MOESI directory (snoopy mode available)")
	t.AddRow("Frequencies", "1.33GHz, 2.80GHz, 4.00GHz")
	t.AddRow("Technology", "22nm (latencies scaled per paper Section III-B)")
	return t, nil
}

// TableIII reproduces the L1 cache configuration table: base-page and
// superpage access latencies per size and frequency, derived from the
// SRAM model.
func TableIII() (*stats.Table, error) {
	t := stats.NewTable("Table III: L1 cache configurations",
		"size", "VIPT assoc", "freq (GHz)", "TFT (cycles)", "base-page (cycles)", "superpage (cycles)")
	type cfg struct {
		size uint64
		ways int
	}
	cfgs := []cfg{{32 << 10, 8}, {64 << 10, 16}, {128 << 10, 32}}
	freqs := []float64{1.33, 2.80, 4.00}
	for _, c := range cfgs {
		for _, f := range freqs {
			slowNS, err := sram.Latency(c.size, c.ways)
			if err != nil {
				return nil, err
			}
			fastNS, err := sram.ProbeLatency(c.size, 4, c.ways)
			if err != nil {
				return nil, err
			}
			t.AddRowValues(
				fmt.Sprintf("%dKB", c.size>>10), c.ways, fmt.Sprintf("%.2f", f),
				1, sram.Cycles(slowNS, f), sram.Cycles(fastNS, f),
			)
		}
	}
	t.AddNote("paper anchors: 32KB 2/4/5 base vs 1/2/3 super; 64KB 5/9/13 vs 1/2/3; 128KB 14/30/42 vs 2/3/4")
	return t, nil
}
