package experiments

import (
	"fmt"

	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// ExtICache evaluates the paper's proposed instruction-side application
// of SEESAW ("it is also possible to apply it to the instruction cache
// ... valuable with the advent of cloud workloads that use considerably
// larger instruction-side footprints"): both L1I and L1D use the SEESAW
// design, with the text segment mapped by 2MB pages, against a baseline
// VIPT I+D system.
func ExtICache(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := o.Workloads
	if len(names) == len(workload.Names()) {
		names = workload.CloudNames
	}
	type icCells struct{ baseI, seeI, baseD, seeD *runner.Future }
	cells := make([]icCells, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		submit := func(kind sim.CacheKind, icache bool) *runner.Future {
			cfg := baseConfig(o, p, kind, 64<<10, 1.33, "ooo")
			cfg.CacheKind = kind
			cfg.ICache = icache
			cfg.TextHuge = true
			return o.Pool.Submit(cfg)
		}
		cells[ni] = icCells{
			baseI: submit(sim.KindBaseline, true),
			seeI:  submit(sim.KindSeesaw, true),
			baseD: submit(sim.KindBaseline, false),
			seeD:  submit(sim.KindSeesaw, false),
		}
	}
	t := stats.NewTable("Extension: SEESAW on the instruction cache (32KB L1I + 64KB L1D, 1.33GHz, OoO)",
		"workload", "L1I MPKI", "perf % (D only)", "perf % (I+D)", "energy % (I+D)")
	for ni, name := range names {
		baseI, err := cells[ni].baseI.Wait()
		if err != nil {
			return nil, err
		}
		seeI, err := cells[ni].seeI.Wait()
		if err != nil {
			return nil, err
		}
		baseD, err := cells[ni].baseD.Wait()
		if err != nil {
			return nil, err
		}
		seeD, err := cells[ni].seeD.Wait()
		if err != nil {
			return nil, err
		}
		impD := runtimeImprovement(baseD, seeD)
		impI := runtimeImprovement(baseI, seeI)
		var l1iMPKI float64
		if baseI.Instructions > 0 {
			l1iMPKI = float64(baseI.L1IMisses) / float64(baseI.Instructions) * 1000
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", l1iMPKI),
			fmt.Sprintf("%.2f", impD),
			fmt.Sprintf("%.2f", impI),
			fmt.Sprintf("%.2f", energyImprovement(baseI, seeI)))
	}
	t.AddNote("expected: applying SEESAW to the I-cache adds benefit on instruction-footprint-heavy cloud workloads")
	return t, nil
}
