package experiments

import (
	"fmt"

	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// Fig14 reproduces the design-alternative comparison at 128KB: SEESAW
// versus the best of a sweep of serial PIPT designs with lower
// associativity (which shrink the effective TLB benefit by serializing
// translation), at the three frequencies.
func Fig14(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	profiles, err := profilesFor(o)
	if err != nil {
		return nil, err
	}
	piptWays := []int{2, 4, 8}
	// Submit everything: per frequency, the PIPT alternatives (each
	// against the shared 128KB baseline cell, deduped by the pool) and
	// the SEESAW pairs.
	type altCell struct{ base, alt *runner.Future }
	alts := make([][][]altCell, len(perfFreqs)) // [freq][ways][workload]
	pairs := make([][]pair, len(perfFreqs))     // [freq][workload]
	for fi, f := range perfFreqs {
		alts[fi] = make([][]altCell, len(piptWays))
		for wi, ways := range piptWays {
			alts[fi][wi] = make([]altCell, len(profiles))
			for pi, p := range profiles {
				cfg := baseConfig(o, p, sim.KindBaseline, 128<<10, f, "ooo")
				base := o.Pool.Submit(cfg) // baseline VIPT reference
				cfg.CacheKind = sim.KindPIPT
				cfg.L1Ways = ways
				// Serial translation sits on the load-to-use path: even
				// a shrunken TLB costs two cycles before indexing, and
				// its lower reach puts L2-TLB/walk latency on the
				// critical path far more often.
				cfg.SerialTLBCycles = 2
				cfg.SmallTLB = true
				alts[fi][wi][pi] = altCell{base: base, alt: o.Pool.Submit(cfg)}
			}
		}
		pairs[fi] = make([]pair, len(profiles))
		for pi, p := range profiles {
			pairs[fi][pi] = submitPair(o, baseConfig(o, p, sim.KindBaseline, 128<<10, f, "ooo"))
		}
	}
	t := stats.NewTable("Fig 14: SEESAW vs PIPT alternatives, 128KB L1",
		"freq", "metric", "others (best PIPT)", "SEESAW")
	for fi, f := range perfFreqs {
		var seePerf, seeEn stats.Summary
		bestPerf, bestEn := -1e9, -1e9
		for wi := range piptWays {
			var pp, pe stats.Summary
			for pi := range profiles {
				base, err := alts[fi][wi][pi].base.Wait()
				if err != nil {
					return nil, err
				}
				alt, err := alts[fi][wi][pi].alt.Wait()
				if err != nil {
					return nil, err
				}
				pp.Add(runtimeImprovement(base, alt))
				pe.Add(energyImprovement(base, alt))
			}
			if pp.Mean() > bestPerf {
				bestPerf = pp.Mean()
			}
			if pe.Mean() > bestEn {
				bestEn = pe.Mean()
			}
		}
		for pi := range profiles {
			base, see, err := pairs[fi][pi].wait()
			if err != nil {
				return nil, err
			}
			seePerf.Add(runtimeImprovement(base, see))
			seeEn.Add(energyImprovement(base, see))
		}
		t.AddRow(fmt.Sprintf("%.2fGHz", f), "performance %",
			fmt.Sprintf("%.2f", bestPerf), fmt.Sprintf("%.2f", seePerf.Mean()))
		t.AddRow(fmt.Sprintf("%.2fGHz", f), "energy %",
			fmt.Sprintf("%.2f", bestEn), fmt.Sprintf("%.2f", seeEn.Mean()))
	}
	t.AddNote("improvements are vs the 128KB baseline VIPT; expected shape: SEESAW >= best alternative (paper Fig 14)")
	return t, nil
}

// Fig15 reproduces the way-prediction comparison on 64KB caches at
// 1.33GHz: an MRU way predictor alone (WP), SEESAW, and the combination,
// all relative to baseline VIPT.
func Fig15(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := o.Workloads
	if len(names) == len(workload.Names()) {
		names = workload.CloudNames // the paper's Fig 15 subset
	}
	type wpCells struct{ base, wp, see, both *runner.Future }
	cells := make([]wpCells, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
		wpCfg := cfg
		wpCfg.WayPredict = true
		seeCfg := cfg
		seeCfg.CacheKind = sim.KindSeesaw
		bothCfg := seeCfg
		bothCfg.WayPredict = true
		cells[ni] = wpCells{
			base: o.Pool.Submit(cfg),
			wp:   o.Pool.Submit(wpCfg),
			see:  o.Pool.Submit(seeCfg),
			both: o.Pool.Submit(bothCfg),
		}
	}
	t := stats.NewTable("Fig 15: WP vs SEESAW vs WP+SEESAW (64KB, 1.33GHz, OoO; % vs baseline VIPT)",
		"workload", "metric", "WP", "SEESAW", "WP+SEESAW", "WP accuracy")
	for ni, name := range names {
		base, err := cells[ni].base.Wait()
		if err != nil {
			return nil, err
		}
		wp, err := cells[ni].wp.Wait()
		if err != nil {
			return nil, err
		}
		see, err := cells[ni].see.Wait()
		if err != nil {
			return nil, err
		}
		both, err := cells[ni].both.Wait()
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "perf %",
			fmt.Sprintf("%.2f", runtimeImprovement(base, wp)),
			fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
			fmt.Sprintf("%.2f", runtimeImprovement(base, both)),
			fmt.Sprintf("%.2f", wp.WPAccuracy))
		t.AddRow(name, "energy %",
			fmt.Sprintf("%.2f", energyImprovement(base, wp)),
			fmt.Sprintf("%.2f", energyImprovement(base, see)),
			fmt.Sprintf("%.2f", energyImprovement(base, both)), "")
	}
	t.AddNote("expected shape: WP alone can degrade performance (negative perf on low-accuracy workloads); WP+SEESAW saves the most energy (paper Fig 15)")
	return t, nil
}
