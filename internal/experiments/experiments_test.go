package experiments

import (
	"strconv"
	"strings"
	"testing"

	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/workload"
)

// tinyOpts keeps experiment smoke tests fast.
func tinyOpts() Options {
	return Options{Refs: 8_000, Seed: 7, Workloads: []string{"redis", "mcf"}}
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig3",
		"table1", "table2", "table3",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"ablation-insertion", "ablation-scheduler", "ablation-tft-assoc", "ablation-snoopy",
		"ablation-1g", "ext-icache", "ablation-partition", "ablation-prefetch",
		"ablation-replacement", "energy-breakdown", "evolve-best",
		"vespa-vs-seesaw",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(ids), len(want), ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", tinyOpts()); err == nil {
		t.Error("unknown id must error")
	}
}

// TestAllExperimentsProduceTables smoke-runs every registered experiment
// at tiny scale and sanity-checks table structure.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tb, err := Run(id, tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if len(tb.Headers) < 2 {
				t.Fatalf("%s: missing headers", id)
			}
			out := tb.String()
			if len(out) == 0 || !strings.Contains(out, tb.Headers[0]) {
				t.Fatalf("%s: unrenderable table", id)
			}
		})
	}
}

func TestTableIIIMatchesPaperAnchors(t *testing.T) {
	tb, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (32KB,64KB,128KB) x (1.33,2.80,4.00); columns: size, assoc,
	// freq, tft, base, super.
	wantBase := []string{"2", "4", "5", "5", "9", "13", "14", "30", "42"}
	wantSuper := []string{"1", "2", "3", "1", "2", "3", "2", "3", "4"}
	if len(tb.Rows) != 9 {
		t.Fatalf("Table III has %d rows, want 9", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if row[4] != wantBase[i] || row[5] != wantSuper[i] {
			t.Errorf("row %d: base/super = %s/%s, want %s/%s",
				i, row[4], row[5], wantBase[i], wantSuper[i])
		}
	}
}

func TestTableIReflectsHardwareBehaviour(t *testing.T) {
	tb, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(tb.Rows))
	}
	// Row 1 (2MB/TFT hit): 1 cycle, 4 ways. Rows 3-4: 2 cycles, 8 ways.
	if tb.Rows[0][3] != "1" || tb.Rows[0][4] != "4" {
		t.Errorf("fast row = %v", tb.Rows[0])
	}
	for _, i := range []int{2, 3} {
		if tb.Rows[i][3] != "2" || tb.Rows[i][4] != "8" {
			t.Errorf("slow row %d = %v", i, tb.Rows[i])
		}
	}
}

func TestFig2bMonotoneRows(t *testing.T) {
	tb, err := Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prev := 0.0
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v <= prev {
				t.Errorf("latency row %v not increasing", row)
			}
			prev = v
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Refs != 100_000 || o.Seed != 42 || len(o.Workloads) != 16 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Pool == nil {
		t.Error("withDefaults must provide a pool")
	}
	if _, err := profilesFor(Options{Workloads: []string{"nope"}}); err == nil {
		t.Error("unknown workload must error")
	}
}

// TestOptionsExplicitZero: Seed 0 and Refs 0 are valid explicit choices;
// the Set flags keep withDefaults from silently replacing them.
func TestOptionsExplicitZero(t *testing.T) {
	o := Options{SeedSet: true, RefsSet: true}.withDefaults()
	if o.Seed != 0 {
		t.Errorf("explicit seed 0 replaced with %d", o.Seed)
	}
	if o.Refs != 0 {
		t.Errorf("explicit refs 0 replaced with %d", o.Refs)
	}
	// baseConfig must carry explicit zero refs past sim's own defaulting.
	p, err := workload.ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
	if cfg.Refs >= 0 {
		t.Errorf("explicit zero refs not encoded as sentinel: %d", cfg.Refs)
	}
	r, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1Hits+r.L1Misses != 0 {
		t.Errorf("zero-ref run touched the cache: %d hits, %d misses", r.L1Hits, r.L1Misses)
	}
	// Seed 0 must actually be seed 0: it differs from the default seed 42.
	zero := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
	zero.Refs = 5_000
	def := zero
	def.Seed = 42
	rz, err := sim.Run(zero)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := sim.Run(def)
	if err != nil {
		t.Fatal(err)
	}
	if rz.Cycles == rd.Cycles && rz.L1Misses == rd.L1Misses {
		t.Error("seed 0 produced the same run as seed 42; explicit zero likely dropped")
	}
}

// TestParallelMatchesSerialTables: representative figures render
// byte-identical tables whether the cells run serially or on many
// workers — the determinism guarantee the whole harness rests on.
func TestParallelMatchesSerialTables(t *testing.T) {
	for _, id := range []string{"fig7", "fig12", "ablation-snoopy"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(parallel int) string {
				o := tinyOpts()
				o.Parallel = parallel
				tb, err := Run(id, o)
				if err != nil {
					t.Fatal(err)
				}
				return tb.String()
			}
			serial := render(1)
			concurrent := render(4)
			if serial != concurrent {
				t.Errorf("%s: parallel table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial, concurrent)
			}
		})
	}
}

// TestSharedPoolDedupesAcrossFigures: fig11 and energy-breakdown compare
// against the same (64KB, 1.33GHz, OoO) cells; a shared pool runs each
// distinct cell once.
func TestSharedPoolDedupesAcrossFigures(t *testing.T) {
	o := tinyOpts()
	o.Pool = runner.New(2)
	for _, id := range []string{"fig11", "energy-breakdown"} {
		if _, err := Run(id, o); err != nil {
			t.Fatal(err)
		}
	}
	st := o.Pool.Stats()
	if st.CacheHits == 0 {
		t.Errorf("shared pool saw no cache hits across identical figures: %+v", st)
	}
	if st.Runs+st.CacheHits != st.Submitted {
		t.Errorf("stats don't balance: %+v", st)
	}
	// The two figures submit identical cell sets, so the second is served
	// entirely from cache.
	if st.Runs != st.Submitted/2 {
		t.Errorf("expected full dedup of the second figure: %+v", st)
	}
}
