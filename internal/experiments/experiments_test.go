package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps experiment smoke tests fast.
func tinyOpts() Options {
	return Options{Refs: 8_000, Seed: 7, Workloads: []string{"redis", "mcf"}}
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig3",
		"table1", "table2", "table3",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"ablation-insertion", "ablation-scheduler", "ablation-tft-assoc", "ablation-snoopy",
		"ablation-1g", "ext-icache", "ablation-partition", "ablation-prefetch",
		"ablation-replacement", "energy-breakdown",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(ids), len(want), ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", tinyOpts()); err == nil {
		t.Error("unknown id must error")
	}
}

// TestAllExperimentsProduceTables smoke-runs every registered experiment
// at tiny scale and sanity-checks table structure.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tb, err := Run(id, tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if len(tb.Headers) < 2 {
				t.Fatalf("%s: missing headers", id)
			}
			out := tb.String()
			if len(out) == 0 || !strings.Contains(out, tb.Headers[0]) {
				t.Fatalf("%s: unrenderable table", id)
			}
		})
	}
}

func TestTableIIIMatchesPaperAnchors(t *testing.T) {
	tb, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (32KB,64KB,128KB) x (1.33,2.80,4.00); columns: size, assoc,
	// freq, tft, base, super.
	wantBase := []string{"2", "4", "5", "5", "9", "13", "14", "30", "42"}
	wantSuper := []string{"1", "2", "3", "1", "2", "3", "2", "3", "4"}
	if len(tb.Rows) != 9 {
		t.Fatalf("Table III has %d rows, want 9", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if row[4] != wantBase[i] || row[5] != wantSuper[i] {
			t.Errorf("row %d: base/super = %s/%s, want %s/%s",
				i, row[4], row[5], wantBase[i], wantSuper[i])
		}
	}
}

func TestTableIReflectsHardwareBehaviour(t *testing.T) {
	tb, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(tb.Rows))
	}
	// Row 1 (2MB/TFT hit): 1 cycle, 4 ways. Rows 3-4: 2 cycles, 8 ways.
	if tb.Rows[0][3] != "1" || tb.Rows[0][4] != "4" {
		t.Errorf("fast row = %v", tb.Rows[0])
	}
	for _, i := range []int{2, 3} {
		if tb.Rows[i][3] != "2" || tb.Rows[i][4] != "8" {
			t.Errorf("slow row %d = %v", i, tb.Rows[i])
		}
	}
}

func TestFig2bMonotoneRows(t *testing.T) {
	tb, err := Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prev := 0.0
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v <= prev {
				t.Errorf("latency row %v not increasing", row)
			}
			prev = v
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Refs != 100_000 || o.Seed != 42 || len(o.Workloads) != 16 {
		t.Errorf("defaults = %+v", o)
	}
	if _, err := profilesFor(Options{Workloads: []string{"nope"}}); err == nil {
		t.Error("unknown workload must error")
	}
}
