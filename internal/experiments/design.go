package experiments

import (
	"fmt"

	"seesaw/internal/cache"
	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// AblationPartitionCount sweeps SEESAW's ways-per-partition design choice
// (Section IV-B4: "The number of ways in each partition is a design
// choice depending upon the cache's latency-energy profile"): a 64KB
// 16-way cache split into 2, 4, or 8 partitions.
func AblationPartitionCount(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	parts := []int{2, 4, 8}
	bases := make([]*runner.Future, len(names))
	sees := make([][]*runner.Future, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
		bases[ni] = o.Pool.Submit(cfg)
		sees[ni] = make([]*runner.Future, len(parts))
		for pi, part := range parts {
			scfg := cfg
			scfg.CacheKind = sim.KindSeesaw
			scfg.Partitions = part
			sees[ni][pi] = o.Pool.Submit(scfg)
		}
	}
	t := stats.NewTable("Ablation: SEESAW partition count (64KB 16-way, 1.33GHz, OoO)",
		"workload", "partitions", "ways/partition", "perf % vs baseline", "energy % vs baseline")
	for ni, name := range names {
		base, err := bases[ni].Wait()
		if err != nil {
			return nil, err
		}
		for pi, part := range parts {
			see, err := sees[ni][pi].Wait()
			if err != nil {
				return nil, err
			}
			t.AddRow(name,
				fmt.Sprintf("%d", part),
				fmt.Sprintf("%d", 16/part),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
				fmt.Sprintf("%.2f", energyImprovement(base, see)))
		}
	}
	t.AddNote("the paper settles on 4-way (16KB) partitions; narrower partitions probe less but lose local associativity")
	return t, nil
}

// AblationReplacement compares LRU (the paper's policy) with SRRIP for
// both designs: SEESAW's partition-local victim selection must compose
// with either policy.
func AblationReplacement(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	repls := []cache.Replacement{cache.LRU, cache.SRRIP}
	cells := make([][]pair, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]pair, len(repls))
		for ri, repl := range repls {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.Replacement = repl
			cells[ni][ri] = submitPair(o, cfg)
		}
	}
	t := stats.NewTable("Ablation: L1 replacement policy (64KB, 1.33GHz, OoO)",
		"workload", "policy", "baseline hit %", "SEESAW hit %", "SEESAW perf %")
	for ni, name := range names {
		for ri, repl := range repls {
			base, see, err := cells[ni][ri].wait()
			if err != nil {
				return nil, err
			}
			t.AddRow(name, repl.String(),
				fmt.Sprintf("%.2f", 100*stats.Ratio(base.L1Hits, base.L1Hits+base.L1Misses)),
				fmt.Sprintf("%.2f", 100*stats.Ratio(see.L1Hits, see.L1Hits+see.L1Misses)),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)))
		}
	}
	t.AddNote("expected: SEESAW's improvement is replacement-agnostic; SRRIP helps scan-heavy workloads")
	return t, nil
}

// AblationPrefetch checks that SEESAW's benefits survive a next-line L1
// prefetcher (which raises hit rates and shifts traffic off the miss
// path).
func AblationPrefetch(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := ablationNames(o)
	modes := []bool{false, true}
	cells := make([][]pair, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]pair, len(modes))
		for mi, pf := range modes {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.Prefetch = pf
			cells[ni][mi] = submitPair(o, cfg)
		}
	}
	t := stats.NewTable("Ablation: next-line L1 prefetcher (64KB, 1.33GHz, OoO)",
		"workload", "prefetch", "baseline hit %", "SEESAW perf %", "SEESAW energy %")
	for ni, name := range names {
		for mi, pf := range modes {
			base, see, err := cells[ni][mi].wait()
			if err != nil {
				return nil, err
			}
			on := "off"
			if pf {
				on = "on"
			}
			t.AddRow(name, on,
				fmt.Sprintf("%.2f", 100*stats.Ratio(base.L1Hits, base.L1Hits+base.L1Misses)),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
				fmt.Sprintf("%.2f", energyImprovement(base, see)))
		}
	}
	t.AddNote("expected: prefetching raises hit rates for both designs; SEESAW's improvement persists")
	return t, nil
}
