package experiments

import (
	"fmt"

	"seesaw/internal/cache"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// AblationPartitionCount sweeps SEESAW's ways-per-partition design choice
// (Section IV-B4: "The number of ways in each partition is a design
// choice depending upon the cache's latency-energy profile"): a 64KB
// 16-way cache split into 2, 4, or 8 partitions.
func AblationPartitionCount(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: SEESAW partition count (64KB 16-way, 1.33GHz, OoO)",
		"workload", "partitions", "ways/partition", "perf % vs baseline", "energy % vs baseline")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
		base, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		for _, parts := range []int{2, 4, 8} {
			scfg := cfg
			scfg.CacheKind = sim.KindSeesaw
			scfg.Partitions = parts
			see, err := sim.Run(scfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(name,
				fmt.Sprintf("%d", parts),
				fmt.Sprintf("%d", 16/parts),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
				fmt.Sprintf("%.2f", energyImprovement(base, see)))
		}
	}
	t.AddNote("the paper settles on 4-way (16KB) partitions; narrower partitions probe less but lose local associativity")
	return t, nil
}

// AblationReplacement compares LRU (the paper's policy) with SRRIP for
// both designs: SEESAW's partition-local victim selection must compose
// with either policy.
func AblationReplacement(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: L1 replacement policy (64KB, 1.33GHz, OoO)",
		"workload", "policy", "baseline hit %", "SEESAW hit %", "SEESAW perf %")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, repl := range []cache.Replacement{cache.LRU, cache.SRRIP} {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.Replacement = repl
			base, see, err := runPair(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, repl.String(),
				fmt.Sprintf("%.2f", 100*stats.Ratio(base.L1Hits, base.L1Hits+base.L1Misses)),
				fmt.Sprintf("%.2f", 100*stats.Ratio(see.L1Hits, see.L1Hits+see.L1Misses)),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)))
		}
	}
	t.AddNote("expected: SEESAW's improvement is replacement-agnostic; SRRIP helps scan-heavy workloads")
	return t, nil
}

// AblationPrefetch checks that SEESAW's benefits survive a next-line L1
// prefetcher (which raises hit rates and shifts traffic off the miss
// path).
func AblationPrefetch(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: next-line L1 prefetcher (64KB, 1.33GHz, OoO)",
		"workload", "prefetch", "baseline hit %", "SEESAW perf %", "SEESAW energy %")
	for _, name := range ablationNames(o) {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, pf := range []bool{false, true} {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.Prefetch = pf
			base, see, err := runPair(cfg)
			if err != nil {
				return nil, err
			}
			on := "off"
			if pf {
				on = "on"
			}
			t.AddRow(name, on,
				fmt.Sprintf("%.2f", 100*stats.Ratio(base.L1Hits, base.L1Hits+base.L1Misses)),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
				fmt.Sprintf("%.2f", energyImprovement(base, see)))
		}
	}
	t.AddNote("expected: prefetching raises hit rates for both designs; SEESAW's improvement persists")
	return t, nil
}
