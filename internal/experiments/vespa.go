package experiments

import (
	"fmt"

	"seesaw/internal/runner"
	"seesaw/internal/sim"
	"seesaw/internal/stats"
	"seesaw/internal/workload"
)

// VespaVsSeesaw compares the two superpage-aware VIPT designs head to
// head under growing fragmentation (the Fig 12 regime: cloud workloads,
// 64KB L1s at 1.33GHz, memhog holding 0/30/60% of memory). Both are
// scored as runtime/energy improvement over the same-size baseline
// VIPT. VESPA indexes the full cache for superpage-backed accesses
// using the TLB's page size directly — no TFT — so it tracks SEESAW
// while superpage coverage is high, and loses its advantage as memhog
// splinters the heap into 4KB pages that force the slow full-set probe.
func VespaVsSeesaw(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	names := o.Workloads
	if len(names) == len(workload.Names()) {
		names = workload.CloudNames // the fragmentation study's subset
	}
	hogs := []float64{0, 0.30, 0.60}
	type cell struct {
		pr    pair
		vespa *runner.Future
	}
	cells := make([][]cell, len(names))
	for ni, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		cells[ni] = make([]cell, len(hogs))
		for hi, hog := range hogs {
			cfg := baseConfig(o, p, sim.KindBaseline, 64<<10, 1.33, "ooo")
			cfg.MemhogFraction = hog
			vcfg := cfg
			vcfg.CacheKind = sim.KindVespa
			cells[ni][hi] = cell{pr: submitPair(o, cfg), vespa: o.Pool.Submit(vcfg)}
		}
	}
	t := stats.NewTable("VESPA vs SEESAW under fragmentation (64KB, 1.33GHz, OoO; % improvement vs baseline VIPT)",
		"workload", "memhog", "SEESAW perf %", "VESPA perf %", "SEESAW energy %", "VESPA energy %", "coverage %")
	for ni, name := range names {
		for hi, hog := range hogs {
			base, see, err := cells[ni][hi].pr.wait()
			if err != nil {
				return nil, err
			}
			ves, err := cells[ni][hi].vespa.Wait()
			if err != nil {
				return nil, err
			}
			t.AddRow(name,
				fmt.Sprintf("mh%.0f", hog*100),
				fmt.Sprintf("%.2f", runtimeImprovement(base, see)),
				fmt.Sprintf("%.2f", runtimeImprovement(base, ves)),
				fmt.Sprintf("%.2f", energyImprovement(base, see)),
				fmt.Sprintf("%.2f", energyImprovement(base, ves)),
				fmt.Sprintf("%.1f", ves.SuperpageCoverage*100))
		}
	}
	t.AddNote("expected shape: VESPA tracks SEESAW while superpage coverage is high; fragmentation splinters pages and erodes VESPA's edge faster")
	return t, nil
}
