// Package trace defines the memory-reference trace format the simulator
// consumes — the stand-in for the paper's Pin-collected traces. A record
// is one memory access plus the instruction-level context the CPU models
// need: how many non-memory instructions preceded it and whether it
// depends on the previous load (pointer chasing), which determines how
// much latency an out-of-order core can hide.
//
// Traces stream through a compact varint binary encoding so multi-million
// reference traces can be written to disk and replayed by cmd/seesaw-tracegen.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"seesaw/internal/addr"
)

// Kind distinguishes access types.
type Kind uint8

const (
	// Load reads memory.
	Load Kind = iota
	// Store writes memory.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one memory reference.
type Record struct {
	Kind Kind
	// VA is the accessed virtual address.
	VA addr.VAddr
	// TID is the issuing hardware thread (core index).
	TID uint8
	// Gap is the number of non-memory instructions executed before this
	// access — the work available to overlap with memory latency.
	Gap uint8
	// Dep marks the access as data-dependent on the previous load of the
	// same thread (pointer chase): it cannot issue until that load
	// completes.
	Dep bool
}

const magic = "SEESAWT1"

// Writer streams records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter creates a Writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	var buf [binary.MaxVarintLen64 + 4]byte
	flags := byte(r.Kind) & 1
	if r.Dep {
		flags |= 2
	}
	buf[0] = flags
	buf[1] = r.TID
	buf[2] = r.Gap
	n := binary.PutUvarint(buf[3:], uint64(r.VA))
	if _, err := w.w.Write(buf[:3+n]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered data; call before closing the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r *bufio.Reader
}

// ErrBadMagic reports a stream that is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a SEESAW trace)")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Read returns the next record; io.EOF at end of stream.
func (r *Reader) Read() (Record, error) {
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, err // io.EOF passes through
	}
	tid, err := r.r.ReadByte()
	if err != nil {
		return Record{}, unexpectedEOF(err)
	}
	gap, err := r.r.ReadByte()
	if err != nil {
		return Record{}, unexpectedEOF(err)
	}
	va, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, unexpectedEOF(err)
	}
	return Record{
		Kind: Kind(flags & 1),
		Dep:  flags&2 != 0,
		TID:  tid,
		Gap:  gap,
		VA:   addr.VAddr(va),
	}, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
