package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"seesaw/internal/addr"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: Load, VA: 0x7fff_0000_1234, TID: 0, Gap: 3},
		{Kind: Store, VA: 0x1000, TID: 7, Gap: 0, Dep: true},
		{Kind: Load, VA: 0, TID: 255, Gap: 255},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vas []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		recs := make([]Record, len(vas))
		for i, va := range vas {
			recs[i] = Record{
				Kind: Kind(rng.Intn(2)),
				VA:   addr.VAddr(va),
				TID:  uint8(rng.Intn(256)),
				Gap:  uint8(rng.Intn(256)),
				Dep:  rng.Intn(2) == 0,
			}
			w.Write(recs[i])
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACEFILE")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewBufferString("SE")); err == nil {
		t.Error("short header must error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Kind: Load, VA: 0x123456789})
	w.Flush()
	full := buf.Bytes()
	// Drop the final byte: the last record's varint is cut short.
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Errorf("empty trace read = %v, %v", recs, err)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("kind strings wrong")
	}
}
