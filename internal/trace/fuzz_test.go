package trace

import (
	"bytes"
	"io"
	"testing"

	"seesaw/internal/addr"
)

// FuzzRoundTrip: any record must survive encode/decode bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(0x7fff_0000_1234), uint8(0), uint8(3), false)
	f.Add(uint8(1), uint64(0), uint8(255), uint8(255), true)
	f.Add(uint8(1), uint64(1)<<62, uint8(7), uint8(0), false)
	f.Fuzz(func(t *testing.T, kind uint8, va uint64, tid, gap uint8, dep bool) {
		rec := Record{Kind: Kind(kind & 1), VA: addr.VAddr(va), TID: tid, Gap: gap, Dep: dep}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != rec {
			t.Fatalf("round trip: %+v != %+v", got, rec)
		}
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}
	})
}

// FuzzReaderRobustness: arbitrary bytes must never panic the reader —
// they either parse as records or return a clean error.
func FuzzReaderRobustness(f *testing.F) {
	var good bytes.Buffer
	w, _ := NewWriter(&good)
	w.Write(Record{Kind: Store, VA: 0x123456, TID: 3, Gap: 9, Dep: true})
	w.Flush()
	f.Add(good.Bytes())
	f.Add([]byte("SEESAWT1"))
	f.Add([]byte("SEESAWT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header: fine
		}
		for i := 0; i < 10000; i++ {
			if _, err := r.Read(); err != nil {
				return // EOF or clean decode error: fine
			}
		}
	})
}
