package runner

import (
	"context"
	"sync"

	"seesaw/internal/machine"
	"seesaw/internal/sim"
)

// SnapshotStore is the slice of the disk store the ladder needs: rungs
// keyed by (warmup prefix hash, reference depth). *store.Store
// implements it; tests substitute in-memory fakes.
type SnapshotStore interface {
	// DeepestSnapshot returns the deepest stored rung for prefix at or
	// below maxRefs, or ok=false when none is usable.
	DeepestSnapshot(prefix string, maxRefs int) (data []byte, refs int, ok bool)
	// PutSnapshot persists one rung.
	PutSnapshot(prefix string, refs int, data []byte) error
	// DropSnapshot removes a rung that failed to decode or resume, so it
	// is recomputed instead of tripping every future ladder climb.
	DropSnapshot(prefix string, refs int)
}

// LadderCounters is a snapshot of one ladder's outcomes.
type LadderCounters struct {
	// Warmups is the number of distinct warmup prefixes this ladder
	// warmed (from a rung or from cold).
	Warmups uint64
	// RungHits is how many of those warmups resumed from a stored rung.
	RungHits uint64
	// ResumedRefs is the total warmup references skipped by resuming —
	// the ladder's whole payoff, measured in simulated work not redone.
	ResumedRefs uint64
	// RunRefs is the total warmup references actually executed.
	RunRefs uint64
	// RungPuts is how many rungs this ladder persisted.
	RungPuts uint64
	// RungDrops is how many stored rungs failed to decode and were
	// dropped for recomputation.
	RungDrops uint64
}

// LadderStats accumulates a ladder's counters; safe for concurrent use.
type LadderStats struct {
	mu sync.Mutex
	c  LadderCounters
}

// Counters returns a snapshot of the counters.
func (l *LadderStats) Counters() LadderCounters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c
}

func (l *LadderStats) count(f func(*LadderCounters)) {
	l.mu.Lock()
	f(&l.c)
	l.mu.Unlock()
}

// LadderRun returns a shared-warmup cell function that additionally
// climbs the snapshot ladder: before warming a signature from cold, it
// resolves the deepest stored rung for the config's warmup prefix and
// resumes from there, and as it warms it persists new rungs — every
// rungEvery references when rungEvery > 0, and always at the warmup
// boundary — so the next process (or the next retry after a crash)
// starts from the deepest point any run ever reached rather than from
// zero. Reports stay byte-identical to cold runs: a rung is a
// bit-exact machine snapshot, and the measured phase always runs fresh
// via Fork.
//
// With snaps == nil the ladder degenerates to plain shared warmup —
// SharedWarmupRun is exactly LadderRun(nil, 0) — and configs with no
// warmup phase or a replay trace take the ordinary sim.RunContext path.
func LadderRun(snaps SnapshotStore, rungEvery int) (RunFunc, *LadderStats) {
	stats := &LadderStats{}
	var mu sync.Mutex
	warmed := make(map[machine.WarmupSignature]*warmEntry)
	run := func(ctx context.Context, cfg sim.Config) (*sim.Report, error) {
		if cfg.WarmupRefs <= 0 || cfg.Trace != nil {
			return sim.RunContext(ctx, cfg)
		}
		sig := cfg.WarmupSignature()
		mu.Lock()
		e, ok := warmed[sig]
		if !ok {
			e = &warmEntry{}
			warmed[sig] = e
		}
		mu.Unlock()
		e.once.Do(func() {
			m, err := climb(ctx, cfg, snaps, rungEvery, stats)
			if err != nil {
				e.err = err
				mu.Lock()
				delete(warmed, sig)
				mu.Unlock()
				return
			}
			e.m = m
		})
		if e.err != nil {
			return nil, e.err
		}
		e.mu.Lock()
		f, err := e.m.Fork(cfg)
		e.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if err := f.Measure(ctx); err != nil {
			return nil, err
		}
		return f.Report()
	}
	return run, stats
}

// climb produces a machine warmed to cfg's warmup boundary: resume from
// the deepest stored rung if one decodes, execute the remaining warmup
// in rung-sized chunks, and persist each rung passed on the way up.
func climb(ctx context.Context, cfg sim.Config, snaps SnapshotStore, rungEvery int, stats *LadderStats) (*machine.Machine, error) {
	var m *machine.Machine
	resumedAt := 0
	if snaps != nil {
		prefix := cfg.PrefixHash()
		if data, refs, ok := snaps.DeepestSnapshot(prefix, cfg.WarmupRefs); ok {
			snap, err := machine.UnmarshalSnapshot(data)
			switch {
			case err != nil:
				// A rung that does not decode (bit rot, tampering) is
				// dropped and recomputed; resuming a sweep must never
				// fail on a bad cache entry.
				snaps.DropSnapshot(prefix, refs)
				stats.count(func(c *LadderCounters) { c.RungDrops++ })
			case snap.Signature() != cfg.WarmupSignature() || snap.Ref() != refs:
				// The rung decodes but is not what its key claims — a
				// prefix-hash collision or a mislabeled entry. Treat as
				// unusable.
				snaps.DropSnapshot(prefix, refs)
				stats.count(func(c *LadderCounters) { c.RungDrops++ })
			default:
				m = snap.Resume()
				resumedAt = refs
				stats.count(func(c *LadderCounters) {
					c.RungHits++
					c.ResumedRefs += uint64(refs)
				})
			}
		}
	}
	if m == nil {
		built, err := machine.Build(cfg)
		if err != nil {
			return nil, err
		}
		m = built
	}
	stats.count(func(c *LadderCounters) { c.Warmups++ })

	persist := func() {
		if snaps == nil {
			return
		}
		snap, err := m.Snapshot()
		if err != nil {
			return
		}
		data, err := snap.MarshalBinary()
		if err != nil {
			return
		}
		if snaps.PutSnapshot(cfg.PrefixHash(), m.Ref(), data) == nil {
			stats.count(func(c *LadderCounters) { c.RungPuts++ })
		}
	}

	if rungEvery > 0 && snaps != nil {
		// Climb rung by rung, persisting each one above the resume
		// point; a cancellation mid-climb still leaves every completed
		// rung on disk for the next attempt.
		for rung := (resumedAt/rungEvery + 1) * rungEvery; rung < cfg.WarmupRefs; rung += rungEvery {
			before := m.Ref()
			if err := m.WarmupTo(ctx, rung); err != nil {
				return nil, err
			}
			stats.count(func(c *LadderCounters) { c.RunRefs += uint64(m.Ref() - before) })
			persist()
		}
	}
	before := m.Ref()
	if err := m.WarmupTo(ctx, cfg.WarmupRefs); err != nil {
		return nil, err
	}
	stats.count(func(c *LadderCounters) { c.RunRefs += uint64(m.Ref() - before) })
	if resumedAt < cfg.WarmupRefs {
		persist() // the boundary rung: full-warmup resumes skip straight here
	}
	return m, nil
}
