package runner

import (
	"sync"
	"testing"

	"seesaw/internal/sim"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

func testConfig(t testing.TB, wl string, seed int64) sim.Config {
	t.Helper()
	p, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Workload: p, Seed: seed, Refs: 5_000,
		CacheKind: sim.KindSeesaw, L1Size: 32 << 10,
		FreqGHz: 1.33, CPUKind: "ooo", MemBytes: 256 << 20,
	}
}

// TestParallelMatchesSerial: the same cells submitted to a many-worker
// pool and a one-worker pool produce identical reports, awaited in
// submission order.
func TestParallelMatchesSerial(t *testing.T) {
	cfgs := []sim.Config{
		testConfig(t, "redis", 42),
		testConfig(t, "mcf", 42),
		testConfig(t, "nutch", 7),
		testConfig(t, "olio", 0),
	}
	cfgs[1].CacheKind = sim.KindBaseline

	collect := func(p *Pool) []*sim.Report {
		futs := make([]*Future, len(cfgs))
		for i, c := range cfgs {
			futs[i] = p.Submit(c)
		}
		out := make([]*sim.Report, len(futs))
		for i, f := range futs {
			r, err := f.Wait()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = r
		}
		return out
	}
	serial := collect(New(1))
	parallel := collect(New(8))
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Cycles != p.Cycles || s.L1Misses != p.L1Misses || s.EnergyTotalNJ != p.EnergyTotalNJ {
			t.Errorf("cell %d: serial %d/%d/%.3f vs parallel %d/%d/%.3f",
				i, s.Cycles, s.L1Misses, s.EnergyTotalNJ, p.Cycles, p.L1Misses, p.EnergyTotalNJ)
		}
	}
}

// TestCacheHit: a resubmitted identical cell runs once and both futures
// share the report.
func TestCacheHit(t *testing.T) {
	p := New(2)
	cfg := testConfig(t, "redis", 42)
	a, err := p.Submit(cfg).Wait()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Submit(cfg).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical cells must share one report")
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Runs != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 2 submitted / 1 run / 1 hit", st)
	}
}

// TestCacheKeyDiscriminates: different seeds and designs are different
// cells.
func TestCacheKeyDiscriminates(t *testing.T) {
	p := New(2)
	a := p.Submit(testConfig(t, "redis", 42))
	b := p.Submit(testConfig(t, "redis", 43))
	c := testConfig(t, "redis", 42)
	c.CacheKind = sim.KindBaseline
	d := p.Submit(c)
	for _, f := range []*Future{a, b, d} {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Runs != 3 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want 3 distinct runs", st)
	}
}

// TestPairSharesBaseline: a figure's Pair and another figure's direct
// submission of the same baseline cell share one execution.
func TestPairSharesBaseline(t *testing.T) {
	p := New(2)
	cfg := testConfig(t, "mcf", 42)
	b1, s1 := p.Pair(cfg)
	base := cfg
	base.CacheKind = sim.KindBaseline
	b2 := p.Submit(base)
	for _, f := range []*Future{b1, s1, b2} {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := b1.Wait()
	r2, _ := b2.Wait()
	if r1 != r2 {
		t.Error("baseline cell must dedupe across figures")
	}
	if st := p.Stats(); st.Runs != 2 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 2 runs / 1 hit", st)
	}
}

// TestTraceCellsNotCached: configs replaying an explicit trace bypass
// the cache (the trace contents are not part of the key).
func TestTraceCellsNotCached(t *testing.T) {
	p := New(2)
	cfg := testConfig(t, "redis", 42)
	g := workload.NewGenerator(cfg.Workload, cfg.Seed)
	g.BindDefault()
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = g.Next(0)
	}
	cfg.Trace = recs
	a := p.Submit(cfg)
	b := p.Submit(cfg)
	if _, err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Runs != 2 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want 2 uncached runs", st)
	}
}

// TestGoTasks: arbitrary cells share the pool's workers and reduce in
// submission order.
func TestGoTasks(t *testing.T) {
	p := New(4)
	tasks := make([]*Task[int], 16)
	for i := range tasks {
		i := i
		tasks[i] = Go(p, func() (int, error) { return i * i, nil })
	}
	for i, tk := range tasks {
		v, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if v != i*i {
			t.Errorf("task %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestConcurrentSubmit hammers one pool from many goroutines — the race
// gate for the cache and counters (run under -race).
func TestConcurrentSubmit(t *testing.T) {
	p := New(4)
	cfg := testConfig(t, "redis", 42)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				c := cfg
				c.Seed = int64(1 + (g+k)%3) // a few distinct cells, many dupes
				if _, err := p.Submit(c).Wait(); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Runs != 3 {
		t.Errorf("runs = %d, want 3 distinct cells", st.Runs)
	}
	if st.Submitted != 32 || st.CacheHits != 29 {
		t.Errorf("stats = %+v, want 32 submitted / 29 hits", st)
	}
}
