// Package runner executes independent simulation cells on a bounded
// worker pool and reduces their results deterministically. Every figure,
// table, and sweep of the evaluation is a fan-out of independent
// sim.Config cells followed by an order-sensitive reduction into a
// stats.Table; the pool runs the fan-out on up to GOMAXPROCS workers
// while callers await futures in submission order, so the reduced output
// is byte-identical to a serial run of the same cells with the same seed
// (sim.Run is deterministic and shares no state between runs).
//
// The pool also carries a keyed result cache: two submissions of an
// identical cell share one execution. The evaluation re-runs the same
// baseline-VIPT cell once per figure that compares against it; with one
// pool shared across figures (as cmd/seesaw-figures does) each distinct
// cell runs exactly once. Cached reports are shared between callers and
// must be treated as immutable.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"seesaw/internal/sim"
)

// Task is the handle to one asynchronously running cell. Awaiting tasks
// in submission order yields a deterministic reduction regardless of how
// workers interleave the executions.
type Task[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the cell finishes and returns its result.
func (t *Task[T]) Wait() (T, error) {
	<-t.done
	return t.val, t.err
}

// Future is the handle to a submitted simulation cell.
type Future = Task[*sim.Report]

// Stats counts the pool's scheduling outcomes.
type Stats struct {
	// Submitted is the number of cells handed to Submit.
	Submitted uint64
	// Runs is the number of cells actually executed.
	Runs uint64
	// CacheHits is the number of submissions answered by a previously
	// submitted identical cell.
	CacheHits uint64
}

// Pool schedules independent cells onto at most Workers concurrent
// executions. The zero Pool is not usable; construct with New. A pool
// with one worker executes cells inline at submission time, restoring
// the exact serial execution order of the pre-pool harness.
type Pool struct {
	workers int
	sem     chan struct{}
	run     func(sim.Config) (*sim.Report, error)

	mu    sync.Mutex
	cells map[string]*Future
	stats Stats
}

// New returns a pool with the given worker count; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: workers,
		sem:     make(chan struct{}, workers),
		run:     sim.Run,
		cells:   make(map[string]*Future),
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Stats returns a snapshot of the scheduling counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Submit schedules one simulation and returns its future immediately.
// Identical configs share a single execution and report; a config
// carrying a replay trace is never cached (the trace slice is not part
// of the key).
func (p *Pool) Submit(cfg sim.Config) *Future {
	key, cacheable := cellKey(cfg)
	p.mu.Lock()
	p.stats.Submitted++
	if cacheable {
		if f, ok := p.cells[key]; ok {
			p.stats.CacheHits++
			p.mu.Unlock()
			return f
		}
	}
	f := &Future{done: make(chan struct{})}
	if cacheable {
		p.cells[key] = f
	}
	p.mu.Unlock()
	schedule(p, f, func() (*sim.Report, error) {
		p.mu.Lock()
		p.stats.Runs++
		p.mu.Unlock()
		return p.run(cfg)
	})
	return f
}

// Pair submits the baseline-VIPT and SEESAW variants of one config —
// the comparison shape every figure uses. Baseline futures dedupe across
// every figure that compares against the same baseline cell.
func (p *Pool) Pair(cfg sim.Config) (base, see *Future) {
	b := cfg
	b.CacheKind = sim.KindBaseline
	s := cfg
	s.CacheKind = sim.KindSeesaw
	return p.Submit(b), p.Submit(s)
}

// Go schedules an arbitrary cell (a cache-only replay, a coverage
// computation) on the same workers as the simulation cells. Tasks share
// the pool's concurrency bound but not its result cache.
func Go[T any](p *Pool, fn func() (T, error)) *Task[T] {
	t := &Task[T]{done: make(chan struct{})}
	schedule(p, t, fn)
	return t
}

// schedule runs fn under the pool's worker bound and completes t. With
// one worker it runs inline so submission order is execution order.
func schedule[T any](p *Pool, t *Task[T], fn func() (T, error)) {
	if p.workers == 1 {
		t.val, t.err = fn()
		close(t.done)
		return
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		t.val, t.err = fn()
		close(t.done)
	}()
}

// cellKey derives the cache key for a config. Configs replaying an
// explicit trace are not cacheable: the trace contents are not folded
// into the key. The co-runner profile is dereferenced so the key depends
// on its value, not its address.
func cellKey(cfg sim.Config) (string, bool) {
	if cfg.Trace != nil {
		return "", false
	}
	co := ""
	if cfg.CoRunner != nil {
		co = fmt.Sprintf("%+v", *cfg.CoRunner)
	}
	c := cfg
	c.CoRunner = nil
	return fmt.Sprintf("%+v|co=%s", c, co), true
}
