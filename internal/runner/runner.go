// Package runner executes independent simulation cells on a bounded
// worker pool and reduces their results deterministically. Every figure,
// table, and sweep of the evaluation is a fan-out of independent
// sim.Config cells followed by an order-sensitive reduction into a
// stats.Table; the pool runs the fan-out on up to GOMAXPROCS workers
// while callers await futures in submission order, so the reduced output
// is byte-identical to a serial run of the same cells with the same seed
// (sim.Run is deterministic and shares no state between runs).
//
// The pool also carries a keyed result cache: two submissions of an
// identical cell share one execution. The evaluation re-runs the same
// baseline-VIPT cell once per figure that compares against it; with one
// pool shared across figures (as cmd/seesaw-figures does) each distinct
// cell runs exactly once. Cached reports are shared between callers and
// must be treated as immutable.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"seesaw/internal/metrics"
	"seesaw/internal/sim"
)

// RunFunc executes one cell under a context. The context is how the
// pool's per-cell timeout and per-pool cancellation actually stop a
// cell: sim.RunContext polls it in the reference loop and unwinds, so a
// timed-out or abandoned cell releases its goroutine and simulation
// state instead of running to completion unobserved.
type RunFunc func(context.Context, sim.Config) (*sim.Report, error)

// ResultStore is the read-through persistence seam: a disk-backed,
// content-addressed store of finished reports (see internal/store). When
// attached with WithStore, the pool consults it before executing a cell
// and writes every freshly computed report back, so identical cells
// across processes, restarts, and users cost one execution ever.
type ResultStore interface {
	// Get returns the stored report for cfg, or false on any miss
	// (absent, corrupt, stale schema, or uncacheable config).
	Get(cfg sim.Config) (*sim.Report, bool)
	// Put persists a finished report for cfg. Implementations must be
	// safe for concurrent writers of the same key.
	Put(cfg sim.Config, r *sim.Report) error
}

// CellError is the typed failure of one cell: a panic somewhere under
// sim.Run, or a wall-clock timeout. Sweeps use it to degrade gracefully
// — the failing cell is reported with enough context to reproduce it
// (Describe carries workload, design, and seed) while the remaining
// cells complete. It is also the retry discriminator: only CellErrors
// are retried, since an ordinary error from the deterministic simulator
// would just reproduce.
type CellError struct {
	// Desc identifies the cell (Describe of its config).
	Desc string
	// Panic is the recovered panic value, nil for timeouts.
	Panic any
	// Stack is the goroutine stack captured at panic time.
	Stack string
	// Timeout is the exceeded budget, zero for panics.
	Timeout time.Duration
	// Attempts is how many executions were tried before giving up.
	Attempts int
}

// Error implements error.
func (e *CellError) Error() string {
	switch {
	case e.Panic != nil:
		return fmt.Sprintf("cell [%s] panicked after %d attempt(s): %v", e.Desc, e.Attempts, e.Panic)
	case e.Timeout > 0:
		return fmt.Sprintf("cell [%s] exceeded %v after %d attempt(s)", e.Desc, e.Timeout, e.Attempts)
	}
	return fmt.Sprintf("cell [%s] failed after %d attempt(s)", e.Desc, e.Attempts)
}

// Describe renders a one-line cell identity for failure reports: enough
// to re-run the exact cell from the command line.
func Describe(cfg sim.Config) string {
	return fmt.Sprintf("workload=%s design=%v l1=%dKB/%dw freq=%.2fGHz seed=%d refs=%d",
		cfg.Workload.Name, cfg.CacheKind, cfg.L1Size>>10, cfg.L1Ways,
		cfg.FreqGHz, cfg.Seed, cfg.Refs)
}

// Task is the handle to one asynchronously running cell. Awaiting tasks
// in submission order yields a deterministic reduction regardless of how
// workers interleave the executions.
type Task[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the cell finishes and returns its result.
func (t *Task[T]) Wait() (T, error) {
	<-t.done
	return t.val, t.err
}

// Future is the handle to a submitted simulation cell.
type Future = Task[*sim.Report]

// Stats counts the pool's scheduling outcomes.
type Stats struct {
	// Submitted is the number of cells handed to Submit.
	Submitted uint64
	// Runs is the number of cells actually executed.
	Runs uint64
	// CacheHits is the number of submissions answered by a previously
	// submitted identical cell.
	CacheHits uint64
	// Retries is the number of re-executions after a CellError.
	Retries uint64
	// Failures is the number of cells that exhausted their attempts.
	Failures uint64
	// StoreHits is the number of cells answered by the attached
	// ResultStore without executing.
	StoreHits uint64
	// StorePuts is the number of freshly computed reports persisted to
	// the attached ResultStore.
	StorePuts uint64
	// RungResumes is the number of warmups the attached snapshot ladder
	// resumed from a stored rung (zero without WithLadderStats) — the
	// third evaluation source next to StoreHits and CacheHits.
	RungResumes uint64
	// RungRefsSkipped is the total warmup references those resumes
	// avoided re-simulating.
	RungRefsSkipped uint64
}

// Sources summarizes where the pool's answers came from, for one-line
// logs: cells served by the disk store, by the in-memory duplicate
// cache, and by fresh execution, plus how many of the fresh warmups
// were shortened by ladder rungs. The evolutionary search logs one of
// these per generation so dedup effectiveness is visible.
func (s Stats) Sources() string {
	return fmt.Sprintf("store %d, cached %d, fresh %d (rung resumes %d, %d warmup refs skipped)",
		s.StoreHits, s.CacheHits, s.Runs, s.RungResumes, s.RungRefsSkipped)
}

// Pool schedules independent cells onto at most Workers concurrent
// executions. The zero Pool is not usable; construct with New. A pool
// with one worker executes cells inline at submission time, restoring
// the exact serial execution order of the pre-pool harness.
type Pool struct {
	workers int
	sem     chan struct{}
	run     RunFunc
	timeout time.Duration
	retries int
	ctx     context.Context
	store   ResultStore
	ladder  *LadderStats

	// Retry backoff (WithRetryBackoff): zero backoffBase retries
	// immediately, the historical behaviour.
	backoffBase time.Duration
	backoffMax  time.Duration
	backoffRng  *rand.Rand
	// sleep is the context-aware delay seam; tests replace it to record
	// the exact delays a seed produces without waiting them out.
	sleep func(context.Context, time.Duration) error

	mu    sync.Mutex
	cells map[string]*Future
	stats Stats
	// order records every distinct scheduled execution (cache hits are
	// excluded) in submission order, so MergedSeries reduces each cell's
	// metrics exactly once, deterministically.
	order []*Future
	// progress, when set, gets a live one-line status update as cells
	// complete; completed counts them.
	progress  io.Writer
	completed uint64
}

// New returns a pool with the given worker count; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	return NewWithRunContext(workers, sim.RunContext)
}

// NewWithRun is New with a context-blind cell function injected — the
// legacy seam for tests whose stand-in cells need no cancellation. Cells
// that ignore the context cannot be stopped mid-run: a timeout still
// returns promptly but the abandoned attempt runs to completion. Prefer
// NewWithRunContext for anything that can block.
func NewWithRun(workers int, run func(sim.Config) (*sim.Report, error)) *Pool {
	return NewWithRunContext(workers, func(_ context.Context, cfg sim.Config) (*sim.Report, error) {
		return run(cfg)
	})
}

// NewWithRunContext is New with the cell-execution function injected —
// the seam harness tests and the service layer use to stand in
// panicking, hanging, flaky, or counting cells for the simulator.
func NewWithRunContext(workers int, run RunFunc) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: workers,
		sem:     make(chan struct{}, workers),
		run:     run,
		ctx:     context.Background(),
		cells:   make(map[string]*Future),
		sleep:   sleepCtx,
	}
}

// sleepCtx waits d or until ctx is canceled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// WithContext attaches a cancellation scope to every cell: when ctx is
// canceled, queued cells fail immediately with ctx's error and running
// cells unwind at sim.RunContext's next poll point. This is how the
// service layer cancels one job's whole fan-out without touching other
// jobs. Configure before the first Submit.
func (p *Pool) WithContext(ctx context.Context) *Pool {
	p.ctx = ctx
	return p
}

// WithStore attaches a read-through result store: a cell found in the
// store is returned without executing (Stats.StoreHits), and every
// freshly computed report is written back (Stats.StorePuts). Store
// lookups happen on the worker, off the Submit path, so submission stays
// non-blocking. Configure before the first Submit.
func (p *Pool) WithStore(st ResultStore) *Pool {
	p.store = st
	return p
}

// WithLadderStats folds a snapshot ladder's counters into this pool's
// Stats snapshots: Stats().RungResumes / RungRefsSkipped report the
// ladder attached to the pool's RunFunc (see LadderRun, which returns
// the *LadderStats to pass here). Without it those fields stay zero.
// Configure before the first Submit.
func (p *Pool) WithLadderStats(ls *LadderStats) *Pool {
	p.ladder = ls
	return p
}

// WithTimeout bounds each cell execution attempt to d of wall-clock
// time; zero (the default) means unbounded. Configure before the first
// Submit.
func (p *Pool) WithTimeout(d time.Duration) *Pool {
	p.timeout = d
	return p
}

// WithRetries re-executes a cell up to n extra times after a CellError
// (panic or timeout). Ordinary simulation errors are never retried: the
// simulator is deterministic, so they would only reproduce. Configure
// before the first Submit.
func (p *Pool) WithRetries(n int) *Pool {
	if n < 0 {
		n = 0
	}
	p.retries = n
	return p
}

// WithRetryBackoff spaces retry attempts with jittered exponential
// backoff instead of retrying immediately: attempt n (1-based) waits
// base·2^(n-1), capped at max, then jittered uniformly into [d/2, 3d/2)
// so a batch of cells failing together (a crashed worker, a transient
// resource spike) does not retry in lockstep. The jitter stream is
// seeded, so a pool built with the same seed produces the same delay
// sequence — the property the deterministic-seed test pins. A zero base
// disables backoff (the historical immediate retry); max <= 0 defaults
// to 32·base. Configure before the first Submit.
func (p *Pool) WithRetryBackoff(base, max time.Duration, seed int64) *Pool {
	if base <= 0 {
		p.backoffBase = 0
		return p
	}
	if max <= 0 {
		max = 32 * base
	}
	p.backoffBase = base
	p.backoffMax = max
	p.backoffRng = rand.New(rand.NewSource(seed))
	return p
}

// backoffDelay computes the jittered delay before retry attempt n
// (1-based). Callers must not hold p.mu; the rng draw is serialized so
// concurrent cells consume a single deterministic jitter stream.
func (p *Pool) backoffDelay(attempt int) time.Duration {
	d := p.backoffBase
	for i := 1; i < attempt && d < p.backoffMax; i++ {
		d *= 2
	}
	if d > p.backoffMax {
		d = p.backoffMax
	}
	p.mu.Lock()
	jitter := p.backoffRng.Int63n(int64(d))
	p.mu.Unlock()
	return d/2 + time.Duration(jitter)
}

// WithProgress enables a live progress line on w (in-place, \r-updated):
// one update per completed cell execution. Call FinishProgress once the
// final future has been awaited to terminate the line. Configure before
// the first Submit.
func (p *Pool) WithProgress(w io.Writer) *Pool {
	p.progress = w
	return p
}

// noteDone updates the live progress line after one cell execution.
func (p *Pool) noteDone() {
	if p.progress == nil {
		return
	}
	p.mu.Lock()
	p.completed++
	done, st := p.completed, p.stats
	p.mu.Unlock()
	fmt.Fprintf(p.progress, "\rcells %d/%d done (cache hits %d, retries %d, failures %d) ",
		done, st.Submitted-st.CacheHits, st.CacheHits, st.Retries, st.Failures)
}

// FinishProgress terminates the progress line; a no-op when progress
// reporting is off.
func (p *Pool) FinishProgress() {
	if p.progress != nil {
		fmt.Fprintln(p.progress)
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Stats returns a snapshot of the scheduling counters, folding in the
// attached ladder's resume counters when WithLadderStats was used.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	st := p.stats
	p.mu.Unlock()
	if p.ladder != nil {
		c := p.ladder.Counters()
		st.RungResumes = c.RungHits
		st.RungRefsSkipped = c.ResumedRefs
	}
	return st
}

// Submit schedules one simulation and returns its future immediately.
// Identical configs share a single execution and report; a config
// carrying a replay trace is never cached (the trace slice is not part
// of the key).
func (p *Pool) Submit(cfg sim.Config) *Future {
	key, cacheable := cellKey(cfg)
	p.mu.Lock()
	p.stats.Submitted++
	if cacheable {
		if f, ok := p.cells[key]; ok {
			p.stats.CacheHits++
			p.mu.Unlock()
			return f
		}
	}
	f := &Future{done: make(chan struct{})}
	if cacheable {
		p.cells[key] = f
	}
	p.order = append(p.order, f)
	p.mu.Unlock()
	schedule(p, f, func() (*sim.Report, error) {
		rep, err := p.guarded(cfg)
		p.noteDone()
		return rep, err
	})
	return f
}

// guarded runs one cell under the pool's store read-through, recovery,
// timeout, retry, and cancellation policy, converting panics and
// overruns into a typed CellError on the future instead of killing the
// process.
func (p *Pool) guarded(cfg sim.Config) (*sim.Report, error) {
	if err := p.ctx.Err(); err != nil {
		return nil, err
	}
	if p.store != nil {
		if rep, ok := p.store.Get(cfg); ok {
			p.mu.Lock()
			p.stats.StoreHits++
			p.mu.Unlock()
			return rep, nil
		}
	}
	var last error
	for attempt := 1; attempt <= p.retries+1; attempt++ {
		if err := p.ctx.Err(); err != nil {
			// The pool was canceled between attempts: surface the
			// cancellation, not a retriable CellError.
			return nil, err
		}
		p.mu.Lock()
		p.stats.Runs++
		p.mu.Unlock()
		rep, err := p.runOnce(cfg)
		if err == nil {
			if p.store != nil {
				if perr := p.store.Put(cfg, rep); perr == nil {
					p.mu.Lock()
					p.stats.StorePuts++
					p.mu.Unlock()
				}
			}
			return rep, nil
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			// A plain simulation error is deterministic; surface it
			// without burning retries.
			return nil, err
		}
		ce.Attempts = attempt
		last = err
		if attempt <= p.retries {
			p.mu.Lock()
			p.stats.Retries++
			p.mu.Unlock()
			if p.backoffBase > 0 {
				if serr := p.sleep(p.ctx, p.backoffDelay(attempt)); serr != nil {
					return nil, serr
				}
			}
		}
	}
	p.mu.Lock()
	p.stats.Failures++
	p.mu.Unlock()
	return nil, last
}

// runOnce executes a single attempt, applying the wall-clock budget. The
// budget is enforced by context: the attempt goroutine runs the cell
// under a deadline that sim.RunContext polls, so an overrunning cell
// unwinds and frees its goroutine and simulation state shortly after the
// timeout fires instead of leaking until process exit (the pre-context
// behaviour, pinned by TestTimeoutDoesNotLeak).
func (p *Pool) runOnce(cfg sim.Config) (*sim.Report, error) {
	if p.timeout <= 0 {
		return p.runRecover(p.ctx, cfg)
	}
	ctx, cancel := context.WithTimeout(p.ctx, p.timeout)
	type outcome struct {
		rep *sim.Report
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, e := p.runRecover(ctx, cfg)
		ch <- outcome{r, e}
	}()
	select {
	case o := <-ch:
		cancel()
		if errors.Is(o.err, context.DeadlineExceeded) {
			// The cell noticed its own deadline before we did.
			return nil, &CellError{Desc: Describe(cfg), Timeout: p.timeout}
		}
		return o.rep, o.err
	case <-ctx.Done():
		// Cancel eagerly (not deferred) so the attempt goroutine's next
		// context poll unwinds it even though its result is dropped.
		cancel()
		if err := p.ctx.Err(); err != nil {
			return nil, err // pool canceled, not a per-cell timeout
		}
		return nil, &CellError{Desc: Describe(cfg), Timeout: p.timeout}
	}
}

// runRecover executes the cell function, converting a panic anywhere
// beneath it into a CellError carrying the stack.
func (p *Pool) runRecover(ctx context.Context, cfg sim.Config) (rep *sim.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{Desc: Describe(cfg), Panic: r, Stack: string(debug.Stack())}
		}
	}()
	return p.run(ctx, cfg)
}

// Pair submits the baseline-VIPT and SEESAW variants of one config —
// the comparison shape every figure uses. Baseline futures dedupe across
// every figure that compares against the same baseline cell.
func (p *Pool) Pair(cfg sim.Config) (base, see *Future) {
	b := cfg
	b.CacheKind = sim.KindBaseline
	s := cfg
	s.CacheKind = sim.KindSeesaw
	return p.Submit(b), p.Submit(s)
}

// Go schedules an arbitrary cell (a cache-only replay, a coverage
// computation) on the same workers as the simulation cells. Tasks share
// the pool's concurrency bound but not its result cache.
func Go[T any](p *Pool, fn func() (T, error)) *Task[T] {
	t := &Task[T]{done: make(chan struct{})}
	schedule(p, t, fn)
	return t
}

// schedule runs fn under the pool's worker bound and completes t. With
// one worker it runs inline so submission order is execution order.
func schedule[T any](p *Pool, t *Task[T], fn func() (T, error)) {
	if p.workers == 1 {
		t.val, t.err = fn()
		close(t.done)
		return
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		t.val, t.err = fn()
		close(t.done)
	}()
}

// MergedSeries awaits every distinct executed cell in submission order
// and merges their metrics into one counters-only Series (per-epoch and
// per-core structure is per-run; see metrics.Series.Merge). Cells that
// failed, or ran without metrics enabled, contribute nothing; nil is
// returned when no cell recorded metrics. The submit-order reduction
// makes the totals independent of worker interleaving.
func (p *Pool) MergedSeries() *metrics.Series {
	p.mu.Lock()
	order := append([]*Future(nil), p.order...)
	p.mu.Unlock()
	var merged *metrics.Series
	for _, f := range order {
		rep, err := f.Wait()
		if err != nil || rep == nil || rep.Metrics == nil {
			continue
		}
		if merged == nil {
			merged = &metrics.Series{}
		}
		merged.Merge(rep.Metrics)
	}
	return merged
}

// cellKey derives the in-memory cache key for a config. Cell identity is
// owned by sim.Config.CanonicalKey so the pool's duplicate-cell cache
// and the disk store's content addressing can never disagree about which
// cells are "the same".
func cellKey(cfg sim.Config) (string, bool) {
	return cfg.CanonicalKey()
}
