package runner

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"seesaw/internal/sim"
	"seesaw/internal/workload"
)

// waitGoroutines polls until the process goroutine count drops to at
// most want, failing the test after a generous deadline. A goleak-style
// count comparison: any worker or attempt goroutine still parked in a
// cell shows up here.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers so counts settle
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("leaked goroutines: %d running, want <= %d\n%s", n, want, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTimeoutDoesNotLeak: a timed-out cell must not leave its attempt
// goroutine (or the simulation state it pins) behind. The injected cell
// blocks until its context is canceled — exactly the shape of a hung
// simulation — so if the pool's timeout did not propagate cancellation,
// the goroutine would park forever and the count below would never
// recover.
func TestTimeoutDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewWithRunContext(2, func(ctx context.Context, cfg sim.Config) (*sim.Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}).WithTimeout(20 * time.Millisecond)
	var futs []*Future
	for i := 0; i < 4; i++ {
		cfg := sim.Config{Workload: workload.Profile{Name: "hang"}, Seed: int64(i)}
		futs = append(futs, pool.Submit(cfg))
	}
	for _, f := range futs {
		_, err := f.Wait()
		var ce *CellError
		if !errors.As(err, &ce) || ce.Timeout == 0 {
			t.Fatalf("expected timeout CellError, got %v", err)
		}
	}
	waitGoroutines(t, before)
}

// TestTimeoutDoesNotLeakRealSim: the same property against the real
// simulator — sim.RunContext's reference loop must poll its context, or
// the timed-out cell's goroutine (and its entire memory system) survives
// the timeout.
func TestTimeoutDoesNotLeakRealSim(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulator leak check")
	}
	p, err := workload.ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	pool := New(1).WithTimeout(30 * time.Millisecond)
	// Far more references than 30ms allows, so the deadline fires mid-loop.
	fut := pool.Submit(sim.Config{Workload: p, Seed: 1, Refs: 50_000_000, MemBytes: 256 << 20})
	_, err = fut.Wait()
	var ce *CellError
	if !errors.As(err, &ce) || ce.Timeout == 0 {
		t.Fatalf("expected timeout CellError, got %v", err)
	}
	waitGoroutines(t, before)
}

// TestPoolContextCancel: canceling the pool's context fails queued cells
// with the context error (not a retriable CellError) and unwinds running
// ones; retries are not burned on cancellation.
func TestPoolContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	// Two workers: a serial pool runs cells inline in Submit, which would
	// block this test's goroutine before it can cancel.
	pool := NewWithRunContext(2, func(ctx context.Context, cfg sim.Config) (*sim.Report, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}).WithContext(ctx).WithRetries(3)
	fut := pool.Submit(sim.Config{Workload: workload.Profile{Name: "w"}, Seed: 1})
	<-started
	cancel()
	_, err := fut.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled pool returned %v, want context.Canceled", err)
	}
	// A cell submitted after cancellation must fail fast without running.
	fut2 := pool.Submit(sim.Config{Workload: workload.Profile{Name: "w"}, Seed: 2})
	if _, err := fut2.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel submit returned %v, want context.Canceled", err)
	}
	st := pool.Stats()
	if st.Retries != 0 {
		t.Errorf("cancellation burned %d retries", st.Retries)
	}
}

// fakeStore is an in-memory ResultStore for read-through tests.
type fakeStore struct {
	m    map[string]*sim.Report
	puts int
}

func (s *fakeStore) Get(cfg sim.Config) (*sim.Report, bool) {
	key, ok := cfg.CanonicalKey()
	if !ok {
		return nil, false
	}
	r, ok := s.m[key]
	return r, ok
}

func (s *fakeStore) Put(cfg sim.Config, r *sim.Report) error {
	key, ok := cfg.CanonicalKey()
	if !ok {
		return nil
	}
	s.m[key] = r
	s.puts++
	return nil
}

// TestStoreReadThrough: a store hit answers the cell with zero
// executions; a miss executes once and persists, so a second pool (a
// restart, another job) serves the same cell from the store.
func TestStoreReadThrough(t *testing.T) {
	st := &fakeStore{m: make(map[string]*sim.Report)}
	cfg := sim.Config{Workload: workload.Profile{Name: "w"}, Seed: 7}
	runs := 0
	newPool := func() *Pool {
		return NewWithRunContext(1, func(ctx context.Context, c sim.Config) (*sim.Report, error) {
			runs++
			return &sim.Report{Design: "fake", Workload: c.Workload.Name}, nil
		}).WithStore(st)
	}
	p1 := newPool()
	if _, err := p1.Submit(cfg).Wait(); err != nil {
		t.Fatal(err)
	}
	if s := p1.Stats(); runs != 1 || s.Runs != 1 || s.StoreHits != 0 || s.StorePuts != 1 {
		t.Fatalf("first pool: runs=%d stats=%+v", runs, s)
	}
	p2 := newPool() // fresh pool: empty in-memory cache, shared store
	r, err := p2.Submit(cfg).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != "fake" {
		t.Errorf("store served wrong report: %+v", r)
	}
	if s := p2.Stats(); runs != 1 || s.Runs != 0 || s.StoreHits != 1 {
		t.Fatalf("second pool did not read through the store: runs=%d stats=%+v", runs, s)
	}
}
