package runner

import (
	"sync"

	"seesaw/internal/machine"
)

// warmEntry is one shared warmed machine: built and warmed exactly once
// per warmup signature, then forked by every cell that matches.
type warmEntry struct {
	once sync.Once
	m    *machine.Machine
	err  error
	// mu serializes Fork calls on the shared master. Forking only reads
	// the master, but the serialization is cheap next to a measured run
	// and removes any aliasing doubt.
	mu sync.Mutex
}

// NewSharedWarmup returns a pool that shares warmup work between cells:
// every submitted config with WarmupRefs > 0 forks its measured phase
// from a machine warmed once per distinct WarmupSignature, instead of
// each cell re-executing an identical warmup. Reports are byte-identical
// to sim.RunContext's — a fork at the warmup boundary is bit-equal to a
// cold run by construction (machine.Fork) — so reductions, goldens, and
// the disk store see no difference; only wall-clock time does. A sweep
// of N cells over one workload pays for one warmup instead of N.
//
// Configs with WarmupRefs == 0 or a replay trace take the ordinary
// sim.RunContext path. The warmup of each signature is charged to
// whichever cell arrives first; if that warmup fails (e.g. the pool is
// canceled mid-warmup), the entry is dropped so a later submission can
// rebuild it. Warmed masters are held for the life of the pool.
func NewSharedWarmup(workers int) *Pool {
	return NewWithRunContext(workers, SharedWarmupRun())
}

// SharedWarmupRun returns the shared-warmup cell function on its own, so
// callers that build many short-lived pools (the service's per-request
// cell-run pools, where each request needs its own cancellation scope)
// can still share one set of warmed masters across all of them: the
// warmed map lives in the returned closure, not in any pool. It is the
// snapshot ladder with no store attached — all sharing stays in memory.
func SharedWarmupRun() RunFunc {
	run, _ := LadderRun(nil, 0)
	return run
}
