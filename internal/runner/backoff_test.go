package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"seesaw/internal/sim"
)

// failingRun always panics, so every attempt produces a retriable
// CellError and the pool walks its full backoff schedule.
func failingRun(context.Context, sim.Config) (*sim.Report, error) {
	panic("transient")
}

// recordSleeps replaces the pool's sleep seam with one that records the
// requested delays and returns immediately.
func recordSleeps(p *Pool) *[]time.Duration {
	var delays []time.Duration
	p.sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return ctx.Err()
	}
	return &delays
}

// TestBackoffDeterministicSeed pins the backoff contract: with the same
// seed the delay sequence is identical run-to-run, each delay sits in
// the jitter window [d/2, 3d/2) of the capped exponential d =
// min(base·2^(n-1), max), and a different seed produces a different
// sequence.
func TestBackoffDeterministicSeed(t *testing.T) {
	const base, max = 100 * time.Millisecond, 400 * time.Millisecond
	sequence := func(seed int64) []time.Duration {
		p := NewWithRunContext(1, failingRun).WithRetries(4).WithRetryBackoff(base, max, seed)
		delays := recordSleeps(p)
		_, err := p.Submit(sim.Config{Refs: -1}).Wait()
		var ce *CellError
		if !errors.As(err, &ce) || ce.Attempts != 5 {
			t.Fatalf("want exhausted CellError after 5 attempts, got %v", err)
		}
		return *delays
	}

	a := sequence(7)
	if len(a) != 4 {
		t.Fatalf("4 retries should sleep 4 times, got %v", a)
	}
	for n, d := range a {
		want := base << n
		if want > max {
			want = max
		}
		if d < want/2 || d >= want/2+want {
			t.Errorf("retry %d slept %v, outside jitter window [%v, %v)", n+1, d, want/2, want/2+want)
		}
	}
	// Exponential envelope: attempts 3 and 4 are both capped at max, so
	// their windows coincide; attempt 1's window is strictly below
	// attempt 3's floor.
	if a[2] < max/2 || a[3] < max/2 {
		t.Errorf("capped retries %v below max/2=%v", a[2:], max/2)
	}

	b := sequence(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, a, b)
		}
	}
	c := sequence(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}
}

// TestBackoffZeroBaseRetriesImmediately: the default (no WithRetryBackoff
// call, or a zero base) never sleeps — the historical behaviour.
func TestBackoffZeroBaseRetriesImmediately(t *testing.T) {
	p := NewWithRunContext(1, failingRun).WithRetries(2).WithRetryBackoff(0, 0, 1)
	delays := recordSleeps(p)
	p.Submit(sim.Config{Refs: -1}).Wait()
	if len(*delays) != 0 {
		t.Fatalf("zero-base backoff slept: %v", *delays)
	}
}

// TestBackoffHonorsCancellation: a canceled pool context aborts the
// backoff sleep instead of waiting it out, and the cell surfaces the
// cancellation.
func TestBackoffHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewWithRunContext(1, failingRun).WithContext(ctx).
		WithRetries(3).WithRetryBackoff(time.Hour, 0, 1)
	p.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // simulate cancellation arriving mid-sleep
		return ctx.Err()
	}
	start := time.Now()
	_, err := p.Submit(sim.Config{Refs: -1}).Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > time.Minute {
		t.Fatal("backoff sleep was waited out despite cancellation")
	}
}
