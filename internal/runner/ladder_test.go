package runner

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"seesaw/internal/sim"
	"seesaw/internal/store"
)

// ladderConfig is a warmed cell for ladder tests.
func ladderConfig(t testing.TB, kind sim.CacheKind, seed int64) sim.Config {
	t.Helper()
	c := testConfig(t, "redis", seed)
	c.CacheKind = kind
	c.WarmupRefs = 20_000
	c.Refs = 3_000
	return c
}

func openLadderStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runCell executes one cell through a RunFunc and renders its report.
func runCell(t *testing.T, run RunFunc, cfg sim.Config) []byte {
	t.Helper()
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLadderMatchesCold is the ladder's correctness contract: reports
// produced via rungs — persisted by one ladder, resumed by a fresh one
// sharing only the store directory — are byte-identical to cold runs.
func TestLadderMatchesCold(t *testing.T) {
	s := openLadderStore(t)
	cfgs := []sim.Config{
		ladderConfig(t, sim.KindBaseline, 42),
		ladderConfig(t, sim.KindSeesaw, 42),
		ladderConfig(t, sim.KindPIPT, 42),
	}
	cold := make([][]byte, len(cfgs))
	coldRun := SharedWarmupRun()
	for i, c := range cfgs {
		cold[i] = runCell(t, coldRun, c)
	}

	// First ladder: cold store, so it warms from zero and persists rungs.
	first, fs := LadderRun(s, 6_000)
	for i, c := range cfgs {
		if got := runCell(t, first, c); !bytes.Equal(cold[i], got) {
			t.Errorf("cell %d: first-ladder report differs from cold", i)
		}
	}
	fc := fs.Counters()
	if fc.Warmups != 1 || fc.RungHits != 0 {
		t.Errorf("first ladder counters = %+v, want one cold warmup", fc)
	}
	// Rungs at 6000, 12000, 18000, and the 20000 boundary.
	if fc.RungPuts != 4 {
		t.Errorf("RungPuts = %d, want 4", fc.RungPuts)
	}

	// Second ladder: same store, fresh in-memory state — the warmup must
	// resume from the boundary rung and execute zero warmup references.
	second, ss := LadderRun(s, 6_000)
	for i, c := range cfgs {
		if got := runCell(t, second, c); !bytes.Equal(cold[i], got) {
			t.Errorf("cell %d: resumed-ladder report differs from cold", i)
		}
	}
	sc := ss.Counters()
	if sc.RungHits != 1 || sc.ResumedRefs != 20_000 || sc.RunRefs != 0 {
		t.Errorf("second ladder counters = %+v, want a full-depth resume", sc)
	}
	if sc.RungPuts != 0 {
		t.Errorf("second ladder rewrote %d rungs resuming from the boundary", sc.RungPuts)
	}
}

// TestLadderResumesPartialRung: a ladder interrupted mid-warmup leaves
// its completed rungs behind; the next ladder resumes from the deepest
// one and only executes the remainder.
func TestLadderResumesPartialRung(t *testing.T) {
	s := openLadderStore(t)
	cfg := ladderConfig(t, sim.KindSeesaw, 43)

	// Cancel the context partway through the climb: rungs persisted
	// before the cancellation survive.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	cancelStore := &cancelAfterPut{SnapshotStore: s, n: 2, then: func() { once.Do(cancel) }}
	interrupted, is := LadderRun(cancelStore, 5_000)
	if _, err := interrupted(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted ladder returned %v, want context.Canceled", err)
	}
	if c := is.Counters(); c.RungPuts != 2 {
		t.Fatalf("interrupted ladder persisted %d rungs, want 2", c.RungPuts)
	}

	// The retry resumes at 10_000 and runs only the remaining half.
	retry, rs := LadderRun(s, 5_000)
	want := runCell(t, SharedWarmupRun(), cfg)
	if got := runCell(t, retry, cfg); !bytes.Equal(want, got) {
		t.Error("retried ladder report differs from cold")
	}
	c := rs.Counters()
	if c.RungHits != 1 || c.ResumedRefs != 10_000 || c.RunRefs != uint64(cfg.WarmupRefs-10_000) {
		t.Errorf("retry counters = %+v, want resume at 10000", c)
	}
}

// cancelAfterPut wraps a SnapshotStore and fires a callback after the
// n-th successful PutSnapshot — simulating a crash mid-climb.
type cancelAfterPut struct {
	SnapshotStore
	mu   sync.Mutex
	n    int
	then func()
}

func (c *cancelAfterPut) PutSnapshot(prefix string, refs int, data []byte) error {
	err := c.SnapshotStore.PutSnapshot(prefix, refs, data)
	if err == nil {
		c.mu.Lock()
		c.n--
		fire := c.n == 0
		c.mu.Unlock()
		if fire {
			c.then()
		}
	}
	return err
}

// TestLadderDropsBadRung: a corrupt stored rung is dropped and the
// warmup falls back to cold, still producing the right report.
func TestLadderDropsBadRung(t *testing.T) {
	s := openLadderStore(t)
	cfg := ladderConfig(t, sim.KindSeesaw, 44)
	if err := s.PutSnapshot(cfg.PrefixHash(), cfg.WarmupRefs, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	run, rs := LadderRun(s, 0)
	want := runCell(t, SharedWarmupRun(), cfg)
	if got := runCell(t, run, cfg); !bytes.Equal(want, got) {
		t.Error("ladder report after dropping a bad rung differs from cold")
	}
	c := rs.Counters()
	if c.RungDrops != 1 || c.RungHits != 0 {
		t.Errorf("counters = %+v, want one dropped rung and no hits", c)
	}
	// The bad rung is gone and replaced by a genuine boundary rung.
	if data, refs, ok := s.DeepestSnapshot(cfg.PrefixHash(), cfg.WarmupRefs); !ok || refs != cfg.WarmupRefs || len(data) < 64 {
		t.Errorf("boundary rung after fallback: refs=%d ok=%v len=%d", refs, ok, len(data))
	}
}

// TestLadderPassthrough: no-warmup and trace cells bypass the ladder
// entirely — no rungs written, reports identical to plain runs.
func TestLadderPassthrough(t *testing.T) {
	s := openLadderStore(t)
	cfg := testConfig(t, "mcf", 42) // WarmupRefs == 0
	run, rs := LadderRun(s, 1_000)
	want := runCell(t, SharedWarmupRun(), cfg)
	if got := runCell(t, run, cfg); !bytes.Equal(want, got) {
		t.Error("passthrough report differs")
	}
	if c := rs.Counters(); c != (LadderCounters{}) {
		t.Errorf("passthrough moved ladder counters: %+v", c)
	}
	if n := s.SnapLen(); n != 0 {
		t.Errorf("passthrough wrote %d rungs", n)
	}
}
