package runner

import (
	"bytes"
	"testing"

	"seesaw/internal/sim"
)

// TestSharedWarmupMatchesCold: the same warmed cells submitted to a
// shared-warmup pool and run cold through an ordinary pool produce
// byte-identical report text. The cells span all three cache designs on
// one warmup signature (one shared master), a second seed (a second
// master), and a WarmupRefs == 0 cell that must take the plain
// sim.RunContext path untouched.
func TestSharedWarmupMatchesCold(t *testing.T) {
	warm := func(wl string, seed int64, kind sim.CacheKind) sim.Config {
		c := testConfig(t, wl, seed)
		c.CacheKind = kind
		c.WarmupRefs = 20_000
		c.Refs = 3_000
		return c
	}
	cfgs := []sim.Config{
		warm("redis", 42, sim.KindBaseline),
		warm("redis", 42, sim.KindSeesaw),
		warm("redis", 42, sim.KindPIPT),
		warm("redis", 7, sim.KindSeesaw),
		testConfig(t, "mcf", 42), // WarmupRefs == 0: passthrough path
	}
	collect := func(p *Pool) [][]byte {
		futs := make([]*Future, len(cfgs))
		for i, c := range cfgs {
			futs[i] = p.Submit(c)
		}
		out := make([][]byte, len(futs))
		for i, f := range futs {
			r, err := f.Wait()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			out[i] = buf.Bytes()
		}
		return out
	}
	cold := collect(New(1))
	shared := collect(NewSharedWarmup(4))
	for i := range cold {
		if !bytes.Equal(cold[i], shared[i]) {
			t.Errorf("cell %d: shared-warmup report differs from cold run\n--- cold ---\n%s--- shared ---\n%s",
				i, cold[i], shared[i])
		}
	}
}

// TestSharedWarmupReusesMaster: cells agreeing on a warmup signature pay
// for one warmup, not one per cell — the pool's run count still shows
// every cell executed (forks are real runs, not cache hits).
func TestSharedWarmupReusesMaster(t *testing.T) {
	p := NewSharedWarmup(1)
	var futs []*Future
	for _, kind := range []sim.CacheKind{sim.KindBaseline, sim.KindSeesaw, sim.KindPIPT} {
		c := testConfig(t, "redis", 42)
		c.CacheKind = kind
		c.WarmupRefs = 10_000
		c.Refs = 2_000
		futs = append(futs, p.Submit(c))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Runs != 3 {
		t.Errorf("Runs = %d, want 3 (every fork is a run)", s.Runs)
	}
}
