package runner

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"seesaw/internal/faults"
	"seesaw/internal/sim"
)

// TestPanicBecomesCellError: a cell panicking anywhere under the run
// function resolves its future with a typed CellError (stack attached)
// instead of killing the process.
func TestPanicBecomesCellError(t *testing.T) {
	p := NewWithRun(2, func(cfg sim.Config) (*sim.Report, error) {
		panic("array index out of range [deep in the simulator]")
	})
	_, err := p.Submit(testConfig(t, "redis", 42)).Wait()
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CellError", err, err)
	}
	if ce.Panic == nil || ce.Stack == "" {
		t.Errorf("CellError missing panic value or stack: %+v", ce)
	}
	if ce.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", ce.Attempts)
	}
	if !strings.Contains(ce.Error(), "redis") {
		t.Errorf("error %q does not identify the cell", ce.Error())
	}
	if st := p.Stats(); st.Failures != 1 {
		t.Errorf("Failures = %d, want 1", st.Failures)
	}
}

// TestTimeoutBecomesCellError: a hanging cell is abandoned at the
// wall-clock budget and reported as a timeout CellError.
func TestTimeoutBecomesCellError(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := NewWithRun(2, func(cfg sim.Config) (*sim.Report, error) {
		<-release // hangs until the test ends
		return &sim.Report{}, nil
	}).WithTimeout(20 * time.Millisecond)
	_, err := p.Submit(testConfig(t, "redis", 42)).Wait()
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CellError", err, err)
	}
	if ce.Timeout != 20*time.Millisecond || ce.Panic != nil {
		t.Errorf("CellError = %+v, want pure timeout", ce)
	}
}

// TestRetryRecoversTransientFailure: a cell that panics once and then
// succeeds completes under WithRetries, with the retry counted.
func TestRetryRecoversTransientFailure(t *testing.T) {
	calls := 0
	p := NewWithRun(1, func(cfg sim.Config) (*sim.Report, error) {
		calls++
		if calls == 1 {
			panic("transient")
		}
		return &sim.Report{Design: "ok"}, nil
	}).WithRetries(2)
	rep, err := p.Submit(testConfig(t, "redis", 42)).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Design != "ok" {
		t.Fatalf("unexpected report %+v", rep)
	}
	st := p.Stats()
	if st.Runs != 2 || st.Retries != 1 || st.Failures != 0 {
		t.Errorf("stats = %+v, want 2 runs / 1 retry / 0 failures", st)
	}
}

// TestDeterministicErrorNotRetried: a plain simulation error (e.g. an
// invalid config) is surfaced immediately — the simulator is
// deterministic, so re-running would only reproduce it.
func TestDeterministicErrorNotRetried(t *testing.T) {
	calls := 0
	simErr := fmt.Errorf("sim: invalid geometry")
	p := NewWithRun(1, func(cfg sim.Config) (*sim.Report, error) {
		calls++
		return nil, simErr
	}).WithRetries(3)
	_, err := p.Submit(testConfig(t, "redis", 42)).Wait()
	if !errors.Is(err, simErr) {
		t.Fatalf("err = %v, want the simulation error", err)
	}
	if calls != 1 {
		t.Errorf("run called %d times, want 1 (no retries)", calls)
	}
	if st := p.Stats(); st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
}

// TestSweepSurvivesPanickingCell: one poisoned cell among many resolves
// as a CellError while every other cell completes normally — graceful
// degradation instead of a dead process.
func TestSweepSurvivesPanickingCell(t *testing.T) {
	p := NewWithRun(4, func(cfg sim.Config) (*sim.Report, error) {
		if cfg.Seed == 13 {
			panic("poisoned cell")
		}
		return &sim.Report{Design: fmt.Sprintf("seed%d", cfg.Seed)}, nil
	})
	futs := make([]*Future, 8)
	for i := range futs {
		futs[i] = p.Submit(testConfig(t, "redis", int64(10+i)))
	}
	failed, completed := 0, 0
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			var ce *CellError
			if !errors.As(err, &ce) {
				t.Fatalf("non-typed failure: %v", err)
			}
			failed++
		} else {
			completed++
		}
	}
	if failed != 1 || completed != 7 {
		t.Fatalf("failed=%d completed=%d, want 1/7", failed, completed)
	}
}

// TestRealPanicInsideSimIsContained drives the real sim.Run with a
// config whose geometry panic surfaces only if validation were skipped;
// either way the pool must return an error, never crash.
func TestRealPanicInsideSimIsContained(t *testing.T) {
	cfg := testConfig(t, "redis", 42)
	cfg.L1Size = 256 << 10 // violates the VIPT constraint
	cfg.L1Ways = 4
	if _, err := New(1).Submit(cfg).Wait(); err == nil {
		t.Fatal("impossible geometry produced no error")
	}
}

// TestFaultConfigKeyedByValue: two configs with equal fault schedules at
// different addresses share one execution; different schedules do not.
func TestFaultConfigKeyedByValue(t *testing.T) {
	runs := 0
	p := NewWithRun(1, func(cfg sim.Config) (*sim.Report, error) {
		runs++
		return &sim.Report{}, nil
	})
	a := testConfig(t, "redis", 42)
	a.Faults = &faults.Config{Schedule: "mix", Every: 500}
	b := testConfig(t, "redis", 42)
	b.Faults = &faults.Config{Schedule: "mix", Every: 500} // equal value, new pointer
	c := testConfig(t, "redis", 42)
	c.Faults = &faults.Config{Schedule: "splinter", Every: 500}
	for _, cfg := range []sim.Config{a, b, c} {
		if _, err := p.Submit(cfg).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (a and b dedupe, c is distinct)", runs)
	}
}
