package machine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/check"
	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/cpu"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/osmm"
	"seesaw/internal/pagetable"
	"seesaw/internal/physmem"
	"seesaw/internal/tlb"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
	"seesaw/internal/xrand"
)

// Hooks bundles the optional cross-cutting observers wired into a
// machine: the metrics recorder, the invariant checker, and the fault
// injector. Build populates them from the Config (each is nil when its
// config section is absent); every emit site in the machine is nil-safe
// or nil-checked, so an unhooked machine pays one branch per site.
type Hooks struct {
	// Metrics mirrors counters and events into the observability layer
	// (nil unless Config.Metrics).
	Metrics *metrics.Recorder
	// Checker audits TLB/TFT/cache/directory state against page-table
	// ground truth after every reference and OS event (nil unless
	// Config.CheckInvariants).
	Checker *check.Checker
	// Injector produces the deterministic fault schedule (nil unless
	// Config.Faults).
	Injector *faults.Injector
}

// Machine is the fully wired simulated system: physical memory under an
// OS memory manager, per-core TLB hierarchies and L1 caches over a
// coherent LLC, CPU timing models, and the workload generators driving
// them. Build constructs one; Step advances it a single reference;
// Warmup and Measure run the two phases; Snapshot/Resume/Fork
// deep-copy warm state (snapshot.go).
type Machine struct {
	cfg Config

	// Hooks holds the machine's cross-cutting observers. Build wires
	// them; Fork rebuilds them fresh for the forked cell.
	Hooks Hooks

	// Deterministic OS-side randomness: rng is shared by the memory
	// manager and the memhog; rngSrc counts its draws so clones resume
	// at the same stream position.
	rng    *rand.Rand
	rngSrc *xrand.Source

	buddy  *physmem.Buddy
	hog    *physmem.Memhog // nil unless MemhogFraction > 0
	mgr    *osmm.Manager
	proc   *osmm.Process
	gen    *workload.Generator
	coGens []*workload.Generator // nil unless CoRunner

	nCores int

	l1s      []core.L1Cache
	seesaws  []*core.Seesaw // nil entries unless KindSeesaw
	l1is     []core.L1Cache // nil unless ICache
	iseesaws []*core.Seesaw
	hiers    []*tlb.Hierarchy
	cpus     []cpu.Model
	cohSys   *coherence.System
	acct     *energy.Account

	// cohAll caches the coherence participant order cohL1s returns; it
	// is built lazily (so clones, which never copy it, rebuild their
	// own) instead of concatenating a fresh slice per call.
	cohAll []core.L1Cache

	// Devirtualized fast paths. fastD/fastI dispatch L1 accesses through
	// the concrete cache type, slowL1Cycles precomputes the per-core
	// constant SlowCycles(), and oooCPUs/inoCPUs devirtualize Retire and
	// Stall. All are derived views over l1s/l1is/cpus — wireFast rebuilds
	// them after Build and clone; the interfaces remain the coherence and
	// snapshot surfaces.
	fastD        fastL1s
	fastI        fastL1s
	slowL1Cycles []int
	oooCPUs      []*cpu.OutOfOrder
	inoCPUs      []*cpu.InOrder

	// batch holds the scratch buffers of the epoch-batched reference
	// loop (never cloned; rebuilt lazily on first use).
	batch batchState

	// schedule interleaves application threads with the system thread;
	// superTLBThreshold gates the scheduler's fast-path speculation and
	// speculates marks whether the design has a fast/slow latency split
	// the scheduler may speculate on at all (Design.Speculates).
	schedule          []int
	superTLBThreshold int
	speculates        bool
	// lastWidth tracks each coherence participant's most recent probe
	// width so EvProbeWidth fires only on transitions (metrics only).
	lastWidth []int

	// globalRef is the next reference index to execute; references
	// [0, WarmupRefs) are the warmup phase, [WarmupRefs,
	// WarmupRefs+Refs) the measured phase. curRef tags checker findings
	// and fault events with the reference they occurred at.
	globalRef int
	curRef    uint64

	l2Lookups uint64
	superRefs uint64
	// spike holds the frames a memhog-spike fault currently pins; the
	// next spike releases them, so pressure oscillates.
	spike   []addr.PAddr
	dropTFT bool
}

// mainASID is the measured application's address space; the co-runner
// (when configured) runs as coASID.
const (
	mainASID = 1
	coASID   = 2
)

// cancelCheckMask sets how often the reference loops poll their
// context: every 4096 references, cheap enough to be invisible next to
// the work of one reference yet responsive enough that a canceled or
// timed-out cell unwinds within a fraction of a millisecond.
const cancelCheckMask = 1<<12 - 1

// Build validates cfg and constructs a fully wired machine: the OS side
// (physical memory, fragmentation, page tables, mapped workload
// regions, co-runner address space) and the microarchitectural side
// (caches, TLBs, TFTs, coherence, CPUs), plus the Hooks the config asks
// for. The machine is positioned at reference 0; run it with Warmup
// then Measure, or drive it manually with Step.
func Build(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg.withDefaults()}
	if err := m.buildOS(); err != nil {
		return nil, err
	}
	if err := m.buildUarch(); err != nil {
		return nil, err
	}
	return m, nil
}

// Config returns the machine's configuration with defaults applied.
func (m *Machine) Config() Config { return m.cfg }

// buildOS constructs everything the warmup phase touches: physical
// memory and its fragmentation, the OS memory manager, the measured
// process and its mapped regions, the workload generators, and the
// co-runner's address space. Only this state (plus the RNG position)
// distinguishes a warmed machine from a cold one.
func (m *Machine) buildOS() error {
	cfg := m.cfg
	m.rng, m.rngSrc = xrand.New(cfg.Seed)

	// Physical memory, fragmentation, OS.
	buddy, err := physmem.New(cfg.MemBytes)
	if err != nil {
		return err
	}
	m.buddy = buddy
	m.mgr = osmm.NewManager(buddy, m.rng, !cfg.THPOff)
	if cfg.MemhogFraction > 0 {
		hog, err := physmem.Run(buddy, m.rng, cfg.MemhogFraction, 0.97)
		if err != nil {
			return err
		}
		// memhog's pages are movable anonymous memory: the OS can
		// migrate them when compacting for superpage allocations.
		m.hog = hog
		m.mgr.Compactor = hog
	}
	proc, err := m.mgr.NewProcess(mainASID)
	if err != nil {
		return err
	}
	m.proc = proc

	// Workload regions.
	m.gen = workload.NewGenerator(cfg.Workload, cfg.Seed)
	var heapBase addr.VAddr
	if cfg.Heap1G {
		heapBase, err = m.mgr.Mmap1G(proc, m.gen.HeapBytes())
	} else {
		heapBase, err = m.mgr.MmapHuge(proc, m.gen.HeapBytes(), true)
	}
	if err != nil {
		return fmt.Errorf("sim: mapping heap: %w", err)
	}
	smallBase, err := m.mgr.MmapHuge(proc, m.gen.SmallBytes(), false)
	if err != nil {
		return fmt.Errorf("sim: mapping small region: %w", err)
	}
	osBase, err := m.mgr.MmapHuge(proc, m.gen.OSBytes(), false)
	if err != nil {
		return fmt.Errorf("sim: mapping OS region: %w", err)
	}
	m.gen.Bind(heapBase, smallBase, osBase)
	if cfg.ICache {
		codeBase, err := m.mgr.MmapHuge(proc, m.gen.CodeBytes(), cfg.TextHuge)
		if err != nil {
			return fmt.Errorf("sim: mapping text: %w", err)
		}
		m.gen.BindCode(codeBase)
	}

	// Per-core structures: application threads + the system thread.
	m.nCores = m.gen.Threads() + 1

	// Optional co-runner process (ASID 2): its own address space, its
	// own per-core generators for the timeslices it steals.
	if cfg.CoRunner != nil {
		proc2, err := m.mgr.NewProcess(coASID)
		if err != nil {
			return err
		}
		// All cores replay the co-runner's thread-0 stream, each from an
		// independent deterministic generator.
		m.coGens = make([]*workload.Generator, m.nCores)
		cg := workload.NewGenerator(*cfg.CoRunner, cfg.Seed+1000)
		heap2, err := m.mgr.MmapHuge(proc2, cg.HeapBytes(), true)
		if err != nil {
			return fmt.Errorf("sim: mapping co-runner heap: %w", err)
		}
		small2, err := m.mgr.MmapHuge(proc2, cg.SmallBytes(), false)
		if err != nil {
			return fmt.Errorf("sim: mapping co-runner small region: %w", err)
		}
		os2, err := m.mgr.MmapHuge(proc2, cg.OSBytes(), false)
		if err != nil {
			return fmt.Errorf("sim: mapping co-runner OS region: %w", err)
		}
		for c := 0; c < m.nCores; c++ {
			g2 := workload.NewGenerator(*cfg.CoRunner, cfg.Seed+1000+int64(c))
			g2.Bind(heap2, small2, os2)
			m.coGens[c] = g2
		}
	}

	// Interleave: each application thread runs 8 references per system
	// thread reference, approximating the paper's traces of the target
	// application plus background system activity.
	for t := 0; t < m.gen.Threads(); t++ {
		for k := 0; k < 8; k++ {
			m.schedule = append(m.schedule, t)
		}
	}
	m.schedule = append(m.schedule, m.gen.SystemTID())
	return nil
}

// buildUarch constructs everything the measured phase touches — caches,
// TLB hierarchies, coherence, CPU models, energy accounting — and wires
// the Hooks and OS-event callbacks. The warmup phase never mutates any
// of this state, which is why Fork can rebuild it fresh per cell.
func (m *Machine) buildUarch() error {
	cfg := m.cfg
	// Observability: one recorder spans the whole coherence domain (data
	// caches 0..nCores-1, instruction caches nCores..2nCores-1). The
	// recorder is nil when metrics are off — every emit site is a
	// nil-safe no-op then.
	var mrec *metrics.Recorder
	if cfg.Metrics != nil {
		recCores := m.nCores
		if cfg.ICache {
			recCores = 2 * m.nCores
		}
		mrec = metrics.New(*cfg.Metrics, recCores, cfg.Refs)
	}

	m.l1s = make([]core.L1Cache, m.nCores)
	m.seesaws = make([]*core.Seesaw, m.nCores) // nil unless the design embeds a TFT
	m.hiers = make([]*tlb.Hierarchy, m.nCores)
	m.cpus = make([]cpu.Model, m.nCores)
	l1cfg := cfg.l1cfg()
	tlbCfg := tlb.SandybridgeTLBs()
	if cfg.CPUKind == "inorder" {
		tlbCfg = tlb.AtomTLBs()
	}
	if cfg.SmallTLB {
		tlbCfg = tlb.SmallTLBs()
	}
	dsg, ok := cfg.CacheKind.design()
	if !ok {
		return fmt.Errorf("sim: unknown cache kind %v", cfg.CacheKind)
	}
	m.speculates = dsg.Speculates
	newL1 := func(c core.Config) (core.L1Cache, *core.Seesaw, error) {
		l1, err := dsg.New(c)
		if err != nil {
			return nil, nil, err
		}
		// The TFT wiring (TLB-fill hooks, invlpg, context-switch
		// flushes, report section) keys off the concrete SEESAW type;
		// designs without a TFT leave a nil slot.
		s, _ := l1.(*core.Seesaw)
		return l1, s, nil
	}
	// Optional per-core L1 instruction caches (Table II: split 32KB I).
	if cfg.ICache {
		m.l1is = make([]core.L1Cache, m.nCores)
		m.iseesaws = make([]*core.Seesaw, m.nCores)
	}
	for i := 0; i < m.nCores; i++ {
		l1, s, err := newL1(l1cfg)
		if err != nil {
			return err
		}
		m.l1s[i], m.seesaws[i] = l1, s
		if cfg.ICache {
			il1, is, err := newL1(cfg.il1cfg())
			if err != nil {
				return err
			}
			m.l1is[i], m.iseesaws[i] = il1, is
		}
		walker := pagetable.NewWalker(m.proc.PT, 20)
		h, err := tlb.NewHierarchy(tlbCfg, walker)
		if err != nil {
			return err
		}
		m.hiers[i] = h
		cm, err := cpu.New(cfg.CPUKind)
		if err != nil {
			return err
		}
		m.cpus[i] = cm
	}
	m.wireSuperFills()
	m.wireFast()

	cohCfg := coherence.DefaultConfig(cfg.FreqGHz)
	cohCfg.Mode = cfg.CoherenceMode
	// The instruction caches join the coherent domain as extra read-only
	// participants: I-cache of core i sits at index nCores+i.
	cohSys, err := coherence.New(cohCfg, m.cohL1s())
	if err != nil {
		return err
	}
	m.cohSys = cohSys
	m.attachMetrics(mrec)

	// Optional shadow oracle: audits every reference and OS event
	// against page-table / directory ground truth.
	var chk *check.Checker
	if cfg.CheckInvariants {
		chk = check.New(check.Wiring{
			L1s: m.cohL1s(), Hiers: m.hiers, Seesaws: m.seesaws, ISeesaws: m.iseesaws,
			Coh: cohSys, Mgr: m.mgr,
		})
		chk.Metrics = mrec
	}

	// Fault injection: a seeded event stream perturbing the run on a
	// reproducible schedule (see internal/faults).
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj, err = faults.New(*cfg.Faults, cfg.Seed)
		if err != nil {
			return err
		}
	}
	m.Hooks = Hooks{Metrics: mrec, Checker: chk, Injector: inj}

	// OS event wiring: invlpg reaches every core's TLBs and TFT; page
	// promotion sweeps old frames out of every L1 under cover of the
	// 150-200 cycle TLB-invalidate instructions (Section IV-C2).
	// dropTFT models a broken invalidation protocol (fault-injection
	// mutation): the TLB side of the invlpg still happens, the TFT side
	// is silently lost — exactly the stale-entry hazard the Section
	// IV-C2 protocol prevents and the invariant checker must catch.
	m.dropTFT = cfg.Faults != nil && cfg.Faults.DropTFTInvalidate
	m.mgr.OnInvlpg = m.onInvlpg
	m.mgr.OnPromote = m.onPromote

	m.acct = energy.NewAccount(cfg.Prices)
	m.superTLBThreshold = 0
	if st := m.hiers[0].L1Super(); st != nil {
		m.superTLBThreshold = st.Config().Entries / 4
	}
	if cfg.SpecFastThreshold > 0 {
		m.superTLBThreshold = cfg.SpecFastThreshold
	}
	return nil
}

// attachMetrics wires a recorder (nil for the disabled path) into every
// subsystem that mirrors activity into the observability layer: L1
// storage arrays and TFTs on both sides, TLB hierarchies, the coherence
// system, and the machine's probe-width tracker. buildUarch calls it at
// construction; clone and snapshot decoding call it to point the wiring
// at their own recorder.
func (m *Machine) attachMetrics(mrec *metrics.Recorder) {
	m.Hooks.Metrics = mrec
	for i, l1 := range m.l1s {
		l1.Storage().Metrics, l1.Storage().MetricsCore = mrec, i
		if s := m.seesaws[i]; s != nil {
			s.TFT().Metrics, s.TFT().MetricsCore = mrec, i
		}
	}
	for i, il1 := range m.l1is {
		il1.Storage().Metrics, il1.Storage().MetricsCore = mrec, m.nCores+i
		if is := m.iseesaws[i]; is != nil {
			is.TFT().Metrics, is.TFT().MetricsCore = mrec, m.nCores+i
		}
	}
	for i, h := range m.hiers {
		h.Metrics, h.MetricsCore = mrec, i
	}
	if m.cohSys != nil {
		m.cohSys.Metrics = mrec
	}
	if mrec != nil {
		m.lastWidth = make([]int, len(m.cohL1s()))
	} else {
		m.lastWidth = nil
	}
}

// cohL1s returns the coherence participant order: data caches first,
// then (when modeled) the instruction caches. The slice is built once
// and cached — per-reference coherence paths used to pay a fresh
// concatenation on every call. Clones never copy the cache, so their
// first call rebuilds it over their own L1s.
func (m *Machine) cohL1s() []core.L1Cache {
	if m.cohAll == nil {
		m.cohAll = append(append(make([]core.L1Cache, 0, len(m.l1s)+len(m.l1is)), m.l1s...), m.l1is...)
	}
	return m.cohAll
}

// fastL1s is a devirtualized view over one bank of L1 caches: for the
// three known cache kinds the concrete slice is populated and every
// per-access call dispatches statically; `any` is the interface
// fallback so an unknown kind still works.
type fastL1s struct {
	sees []*core.Seesaw
	base []*core.BaselineVIPT
	pipt []*core.PIPT
	any  []core.L1Cache
}

func newFastL1s(l1s []core.L1Cache) fastL1s {
	f := fastL1s{any: l1s}
	if len(l1s) == 0 {
		return f
	}
	switch l1s[0].(type) {
	case *core.Seesaw:
		f.sees = make([]*core.Seesaw, len(l1s))
		for i, l := range l1s {
			f.sees[i] = l.(*core.Seesaw)
		}
	case *core.BaselineVIPT:
		f.base = make([]*core.BaselineVIPT, len(l1s))
		for i, l := range l1s {
			f.base[i] = l.(*core.BaselineVIPT)
		}
	case *core.PIPT:
		f.pipt = make([]*core.PIPT, len(l1s))
		for i, l := range l1s {
			f.pipt[i] = l.(*core.PIPT)
		}
	}
	return f
}

func (f *fastL1s) access(res *core.AccessResult, i int, va addr.VAddr, pa addr.PAddr, size addr.PageSize, store bool) {
	switch {
	case f.sees != nil:
		f.sees[i].AccessInto(res, va, pa, size, store)
	case f.base != nil:
		*res = f.base[i].Access(va, pa, size, store)
	case f.pipt != nil:
		*res = f.pipt[i].Access(va, pa, size, store)
	default:
		*res = f.any[i].Access(va, pa, size, store)
	}
}

func (f *fastL1s) fill(i int, pa addr.PAddr, size addr.PageSize, store, shared bool) core.FillResult {
	switch {
	case f.sees != nil:
		return f.sees[i].Fill(pa, size, store, shared)
	case f.base != nil:
		return f.base[i].Fill(pa, size, store, shared)
	case f.pipt != nil:
		return f.pipt[i].Fill(pa, size, store, shared)
	}
	return f.any[i].Fill(pa, size, store, shared)
}

func (f *fastL1s) upgrade(i int, pa addr.PAddr) {
	switch {
	case f.sees != nil:
		f.sees[i].UpgradeToModified(pa)
	case f.base != nil:
		f.base[i].UpgradeToModified(pa)
	case f.pipt != nil:
		f.pipt[i].UpgradeToModified(pa)
	default:
		f.any[i].UpgradeToModified(pa)
	}
}

// wireFast rebuilds the devirtualized dispatch tables from the
// interface-typed slices; buildUarch and clone call it after the L1s
// and CPU models exist.
func (m *Machine) wireFast() {
	m.fastD = newFastL1s(m.l1s)
	m.fastI = newFastL1s(m.l1is)
	m.slowL1Cycles = make([]int, len(m.l1s))
	for i, l1 := range m.l1s {
		m.slowL1Cycles[i] = l1.SlowCycles()
	}
	m.oooCPUs, m.inoCPUs = nil, nil
	if len(m.cpus) > 0 {
		switch m.cpus[0].(type) {
		case *cpu.OutOfOrder:
			m.oooCPUs = make([]*cpu.OutOfOrder, len(m.cpus))
			for i, c := range m.cpus {
				m.oooCPUs[i] = c.(*cpu.OutOfOrder)
			}
		case *cpu.InOrder:
			m.inoCPUs = make([]*cpu.InOrder, len(m.cpus))
			for i, c := range m.cpus {
				m.inoCPUs[i] = c.(*cpu.InOrder)
			}
		}
	}
}

// retire devirtualizes cpu.Model.Retire for the two known core models.
func (m *Machine) retire(tid, gap int, mem cpu.MemCost) {
	switch {
	case m.oooCPUs != nil:
		m.oooCPUs[tid].Retire(gap, mem)
	case m.inoCPUs != nil:
		m.inoCPUs[tid].Retire(gap, mem)
	default:
		m.cpus[tid].Retire(gap, mem)
	}
}

// stall devirtualizes cpu.Model.Stall.
func (m *Machine) stall(tid, cycles int) {
	switch {
	case m.oooCPUs != nil:
		m.oooCPUs[tid].Stall(cycles)
	case m.inoCPUs != nil:
		m.inoCPUs[tid].Stall(cycles)
	default:
		m.cpus[tid].Stall(cycles)
	}
}

// wireSuperFills connects each hierarchy's superpage-TLB-fill event to
// the core's TFTs (Fig 5 steps 6-8). Called by buildUarch and again by
// clone, which must re-close over the cloned seesaws.
func (m *Machine) wireSuperFills() {
	for i := range m.hiers {
		ds, is := m.seesaws[i], (*core.Seesaw)(nil)
		if m.cfg.ICache {
			is = m.iseesaws[i]
		}
		if ds == nil && is == nil {
			m.hiers[i].OnL1SuperFill = nil
			continue
		}
		m.hiers[i].OnL1SuperFill = func(va addr.VAddr, asid uint16) {
			if ds != nil {
				ds.OnSuperpageTLBFill(va)
			}
			if is != nil {
				is.OnSuperpageTLBFill(va)
			}
		}
	}
}

// inWarmup reports whether the machine is still inside the warmup
// phase: OS-event hooks do no microarchitectural work then (there is no
// warm cache/TLB state to invalidate and nothing is being measured).
func (m *Machine) inWarmup() bool { return m.globalRef < m.cfg.WarmupRefs }

// onInvlpg handles an OS invalidation of the 2MB region at vaBase:
// every core's TLB stack drops the region's translations (one range
// invalidation instead of 512 per-page probes), the TFTs drop the
// region, and each core pays the invlpg instruction cost.
func (m *Machine) onInvlpg(asid uint16, vaBase addr.VAddr) {
	if m.inWarmup() {
		return
	}
	// One shootdown event per 2MB region (not per 4KB page per core —
	// that would flood the ring); the per-entry drop counts land in
	// CtrTLBShootdown via Hierarchy.InvalidateRegion2M.
	m.Hooks.Metrics.Emit(-1, metrics.EvTLBShootdown, uint64(vaBase), 0, uint64(asid))
	for i := range m.hiers {
		m.hiers[i].InvalidateRegion2M(vaBase, asid)
		if !m.dropTFT {
			if m.seesaws[i] != nil {
				m.seesaws[i].InvalidatePage(vaBase)
			}
			if m.cfg.ICache && m.iseesaws[i] != nil {
				m.iseesaws[i].InvalidatePage(vaBase)
			}
		}
		m.stall(i, 175) // invlpg cost, mid paper range
	}
	if m.Hooks.Checker != nil {
		m.Hooks.Checker.AfterInvlpg(m.curRef, asid, vaBase)
	}
}

// onPromote handles a completed superpage promotion: every L1 sweeps
// the old frames' lines (Section IV-C2's cache side).
func (m *Machine) onPromote(asid uint16, vaBase addr.VAddr, oldFrames []addr.PAddr, newPA addr.PAddr) {
	if m.inWarmup() {
		return
	}
	m.Hooks.Metrics.Add(0, metrics.CtrPromotion, 1)
	m.Hooks.Metrics.Emit(-1, metrics.EvPromote, uint64(vaBase), uint64(newPA), uint64(len(oldFrames)))
	for i, l1 := range m.l1s {
		for _, f := range oldFrames {
			for _, v := range l1.EvictRange(f, f+4096) {
				m.cohSys.Evicted(i, v.PA, v.State.Dirty())
			}
		}
	}
	for i, l1i := range m.l1is {
		for _, f := range oldFrames {
			for _, v := range l1i.EvictRange(f, f+4096) {
				m.cohSys.Evicted(m.nCores+i, v.PA, v.State.Dirty())
			}
		}
	}
	if m.Hooks.Checker != nil {
		m.Hooks.Checker.AfterPromote(m.curRef, oldFrames)
	}
}

// sampleAccess mirrors one L1 access into the metrics layer.
func (m *Machine) sampleAccess(mcore int, va addr.VAddr, ar core.AccessResult) {
	mrec := m.Hooks.Metrics
	if mrec == nil {
		return
	}
	mrec.Add(mcore, metrics.CtrRefs, 1)
	mrec.Add(mcore, metrics.CtrWaysProbed, uint64(ar.WaysProbed))
	if ar.FastPath {
		mrec.Add(mcore, metrics.CtrFastProbe, 1)
	} else {
		mrec.Add(mcore, metrics.CtrSlowProbe, 1)
	}
	if ar.WaysProbed != m.lastWidth[mcore] {
		m.lastWidth[mcore] = ar.WaysProbed
		mrec.Emit(mcore, metrics.EvProbeWidth, uint64(va), 0, uint64(ar.WaysProbed))
	}
}

// dataAccess runs one data reference on core tid in the given address
// space: translate, L1 lookup, miss service / coherence upgrade,
// scheduler-speculation resolution, retire. countStats marks
// main-process references (superpage-fraction metric).
func (m *Machine) dataAccess(tid int, rec trace.Record, asid uint16, countStats bool) error {
	h := m.hiers[tid]
	tr := h.Translate(rec.VA, asid)
	if tr.Source == tlb.SourceFault {
		return fmt.Errorf("sim: fault at %#x (unmapped generator address)", uint64(rec.VA))
	}
	if tr.Source != tlb.SourceL1 {
		m.l2Lookups++
	}
	if countStats && tr.Size.IsSuper() {
		m.superRefs++
	}
	store := rec.Kind != 0
	var ar core.AccessResult
	m.fastD.access(&ar, tid, rec.VA, tr.PA, tr.Size, store)
	m.acct.AddL1CPUSide(ar.EnergyNJ)
	m.sampleAccess(tid, rec.VA, ar)
	// Audit before the miss is filled: the full-probe ground truth
	// must reflect the state this lookup actually saw.
	if m.Hooks.Checker != nil {
		m.Hooks.Checker.AfterAccess(check.Access{
			Ref: m.curRef, Core: tid, VA: rec.VA, ASID: asid, TR: tr, AR: ar,
		})
	}
	// A superpage L1 TLB hit refreshes the TFT *after* this access's
	// parallel TFT probe completed: the hitting TLB entry carries
	// the page size, so the hardware re-marks a region that a
	// conflicting fill displaced. The current access still paid
	// the slow path; the next one hits the TFT. (Completes the
	// paper's fill-on-TLB-fill policy, which alone would let a
	// region whose TLB entry stays resident miss indefinitely.)
	if tr.Size.IsSuper() && tr.Source == tlb.SourceL1 && m.seesaws[tid] != nil {
		m.seesaws[tid].OnSuperpageTLBFill(rec.VA)
	}
	extra := tr.ExtraCycles
	if !ar.Hit {
		mr := m.cohSys.Miss(tid, tr.PA, store)
		fill := m.fastD.fill(tid, tr.PA, tr.Size, store, mr.Shared)
		m.acct.AddL1CPUSide(fill.EnergyNJ)
		if fill.Victim.Valid {
			m.cohSys.Evicted(tid, fill.VictimPA, fill.Writeback)
		}
		extra += mr.Cycles
		// Next-line prefetch, staying inside the 4KB frame.
		if m.cfg.Prefetch {
			nextPA := tr.PA.LineBase() + addr.LineSize
			if nextPA.PageBase(addr.Page4K) == tr.PA.PageBase(addr.Page4K) {
				if _, _, resident := m.l1s[tid].Storage().FindLine(nextPA); !resident {
					pmr := m.cohSys.Miss(tid, nextPA, false)
					pfill := m.fastD.fill(tid, nextPA, tr.Size, false, pmr.Shared)
					m.acct.AddL1CPUSide(pfill.EnergyNJ)
					if pfill.Victim.Valid {
						m.cohSys.Evicted(tid, pfill.VictimPA, pfill.Writeback)
					}
				}
			}
		}
	} else if store {
		switch ar.State {
		case cache.Shared, cache.Owned: // need coherence permission
			extra += m.cohSys.Upgrade(tid, tr.PA)
		default:
			m.fastD.upgrade(tid, tr.PA)
		}
	}
	assumedFast := false
	if m.speculates {
		switch {
		case m.cfg.SchedulerAlwaysFast:
			assumedFast = true
		case m.cfg.SchedulerAlwaysSlow:
			assumedFast = false
		default:
			// The paper's counter heuristic: speculate fast when the
			// 2MB TLB holds at least a quarter of its entries. Any
			// resident 1GB translation also licenses speculation —
			// one gigabyte entry covers 512 superpage regions, so
			// superpages are certainly not scarce.
			if st := h.L1Super(); st != nil {
				assumedFast = st.ValidCount() >= m.superTLBThreshold
			}
			if g1 := h.L1For(addr.Page1G); g1 != nil && g1.ValidCount() > 0 {
				assumedFast = true
			}
		}
	}
	m.retire(tid, int(rec.Gap), cpu.MemCost{
		Hit:          ar.Hit,
		IsStore:      store,
		Dep:          rec.Dep,
		L1Cycles:     ar.Cycles,
		SlowL1Cycles: m.slowL1Cycles[tid],
		AssumedFast:  assumedFast,
		ExtraCycles:  extra,
	})
	return nil
}

// contextSwitch runs the co-runner timeslice (if configured) on every
// core and flushes the non-ASID-tagged TFTs. The ASID-tagged TLBs keep
// the application's entries across the switch; the page walker follows
// the CR3 switch to the co-runner's page table.
func (m *Machine) contextSwitch() error {
	if m.cfg.CoRunner != nil {
		proc2 := m.mgr.Process(coASID)
		for c := 0; c < m.nCores; c++ {
			// Entering the co-runner: TFT flush and CR3 switch.
			m.flushTFTs(c)
			m.hiers[c].Walker().Table = proc2.PT
			for k := 0; k < m.cfg.CoRunSliceRefs; k++ {
				rec2 := m.coGens[c].Next(0)
				rec2.TID = uint8(c)
				if err := m.dataAccess(c, rec2, coASID, false); err != nil {
					return err
				}
			}
			m.hiers[c].Walker().Table = m.proc.PT
		}
	}
	// Switching back to the application: TFT flush again.
	for c := 0; c < m.nCores; c++ {
		m.flushTFTs(c)
	}
	return nil
}

// flushTFTs flushes core c's TFTs (data side and, when modeled, the
// instruction side) on a context switch — they carry no ASIDs.
func (m *Machine) flushTFTs(c int) {
	if d := m.seesaws[c]; d != nil {
		d.ContextSwitch()
	}
	if m.cfg.ICache && m.iseesaws[c] != nil {
		m.iseesaws[c].ContextSwitch()
	}
}

// applyFault applies one injected fault event.
func (m *Machine) applyFault(ev faults.Event) error {
	inj := m.Hooks.Injector
	mrec := m.Hooks.Metrics
	switch ev.Kind {
	case faults.Splinter:
		cands := m.proc.SuperChunkVAs()
		if len(cands) == 0 {
			inj.Skip()
			return nil
		}
		va := cands[int(ev.Pick%uint64(len(cands)))]
		mrec.Add(0, metrics.CtrSplinter, 1)
		mrec.Emit(-1, metrics.EvSplinter, uint64(va), 0, 0)
		return m.mgr.Splinter(m.proc, va)
	case faults.Shootdown:
		cands := m.proc.ChunkVAs()
		if len(cands) == 0 {
			inj.Skip()
			return nil
		}
		// An invlpg burst over mapped regions: the mappings stay,
		// the TLBs/TFTs must still see every invalidation.
		for b := 0; b < ev.Burst; b++ {
			m.mgr.OnInvlpg(mainASID, cands[int((ev.Pick+uint64(b))%uint64(len(cands)))])
		}
		return nil
	case faults.ContextSwitch:
		return m.contextSwitch()
	case faults.PromoteStorm:
		if m.mgr.PromoteScan(m.proc, ev.Burst*4) == 0 {
			inj.Skip()
		}
		return nil
	case faults.MemhogSpike:
		if len(m.spike) > 0 {
			for _, pa := range m.spike {
				m.buddy.Free(pa, addr.Page4K)
			}
			m.spike = m.spike[:0]
			return nil
		}
		if cap(m.spike) < ev.Burst*512 {
			// One allocation for the whole burst; releases keep the
			// capacity (m.spike[:0]), so repeated spikes reuse it.
			m.spike = append(make([]addr.PAddr, 0, ev.Burst*512), m.spike...)
		}
		for n := 0; n < ev.Burst*512; n++ {
			pa, ok := m.buddy.Alloc(addr.Page4K)
			if !ok {
				break
			}
			m.spike = append(m.spike, pa)
		}
		if len(m.spike) == 0 {
			inj.Skip()
		}
		return nil
	}
	return fmt.Errorf("sim: unknown fault kind %v", ev.Kind)
}

// Step executes the next reference — a warmup step while the machine is
// inside [0, WarmupRefs), a full measured step afterwards — and
// advances the reference cursor. Warmup and Measure run epoch batches
// over the same per-step bodies with context polling.
func (m *Machine) Step() error {
	m.settle()
	if !m.batch.cur.empty() {
		// A batched run left pre-generated records behind (the generator
		// has already advanced past them); consume them in order.
		return m.stepBatch(1, 0, m.cfg.WarmupRefs+m.cfg.Refs)
	}
	i := m.globalRef
	var err error
	if i < m.cfg.WarmupRefs {
		err = m.stepWarmup(i, m.gen.Next(m.schedule[i%len(m.schedule)]))
	} else {
		rec, iva, jumped, gerr := m.nextMeasuredRec(i)
		if gerr != nil {
			return gerr
		}
		err = m.stepMeasured(i, rec, iva, jumped)
	}
	if err != nil {
		return err
	}
	m.globalRef++
	return nil
}

// nextMeasuredRec draws the next measured reference — from the trace
// when one is replayed, from the workload generator otherwise — plus
// the instruction fetch for its block when the I-cache is modeled.
func (m *Machine) nextMeasuredRec(i int) (rec trace.Record, iva addr.VAddr, jumped bool, err error) {
	if m.cfg.Trace != nil {
		rec = m.cfg.Trace[i-m.cfg.WarmupRefs]
		if int(rec.TID) >= m.nCores {
			return rec, 0, false, fmt.Errorf("sim: trace record %d names thread %d but the system has %d cores",
				i, rec.TID, m.nCores)
		}
	} else {
		rec = m.gen.Next(m.schedule[i%len(m.schedule)])
	}
	if m.cfg.ICache {
		iva, jumped = m.gen.NextCode(int(rec.TID), int(rec.Gap)+1)
	}
	return rec, iva, jumped, nil
}

// stepWarmup advances the OS-only warmup phase one reference: the
// workload generator moves (so the measured phase starts mid-stream, as
// a real attach would) and the periodic promotion/splinter scans run,
// mutating only the buddy allocator, the page tables, and the RNG. No
// cache, TLB, TFT, CPU, or energy state is touched; context switches
// and fault injection are deferred to the measured phase. All cadences
// key on the global reference index i, so a WarmupRefs=0 run is
// bit-identical to the unphased simulator. rec is reference i's record,
// drawn by the caller (inline or batch-pregenerated).
func (m *Machine) stepWarmup(i int, rec trace.Record) error {
	if m.cfg.PromoteScanEvery > 0 && i > 0 && i%m.cfg.PromoteScanEvery == 0 {
		m.mgr.PromoteScan(m.proc, 2)
	}
	if m.cfg.SplinterEvery > 0 && i > 0 && i%m.cfg.SplinterEvery == 0 {
		if m.proc.ChunkIsSuper(rec.VA) {
			m.mgr.Splinter(m.proc, rec.VA)
		}
	}
	return nil
}

// stepMeasured executes one fully modeled reference at global index i:
// the data access, the instruction fetch, periodic OS activity, and
// fault injection. rec (and iva/jumped when the I-cache is modeled) are
// reference i's pre-drawn records; generation never depends on
// execution state, so drawing them early — or in parallel per thread —
// is observationally identical.
func (m *Machine) stepMeasured(i int, rec trace.Record, iva addr.VAddr, jumped bool) error {
	m.curRef = uint64(i)
	tid := int(rec.TID)
	h := m.hiers[tid]
	if err := m.dataAccess(tid, rec, mainASID, true); err != nil {
		return err
	}
	// Instruction fetch for this block of (gap+1) instructions.
	if m.cfg.ICache {
		itr := h.Translate(iva, 1)
		if itr.Source == tlb.SourceFault {
			return fmt.Errorf("sim: I-fetch fault at %#x", uint64(iva))
		}
		if itr.Source != tlb.SourceL1 {
			m.l2Lookups++
		}
		var iar core.AccessResult
		m.fastI.access(&iar, tid, iva, itr.PA, itr.Size, false)
		m.acct.AddL1CPUSide(iar.EnergyNJ)
		m.sampleAccess(m.nCores+tid, iva, iar)
		if m.Hooks.Checker != nil {
			m.Hooks.Checker.AfterAccess(check.Access{
				Ref: m.curRef, Core: m.nCores + tid, VA: iva, ASID: 1, TR: itr, AR: iar,
			})
		}
		if itr.Size.IsSuper() && itr.Source == tlb.SourceL1 && m.iseesaws[tid] != nil {
			m.iseesaws[tid].OnSuperpageTLBFill(iva)
		}
		if !iar.Hit {
			imr := m.cohSys.Miss(m.nCores+tid, itr.PA, false)
			ifill := m.fastI.fill(tid, itr.PA, itr.Size, false, imr.Shared)
			m.acct.AddL1CPUSide(ifill.EnergyNJ)
			if ifill.Victim.Valid {
				m.cohSys.Evicted(m.nCores+tid, ifill.VictimPA, ifill.Writeback)
			}
			// Front-end miss stall: the fetch buffer hides part of
			// it on the OoO core.
			stall := iar.Cycles + itr.ExtraCycles + imr.Cycles
			if m.cfg.CPUKind == "ooo" {
				stall = (stall + 1) / 2
			}
			m.stall(tid, stall)
		} else if jumped {
			// Fetch-redirect bubble: a taken branch waits one L1I
			// hit latency for the new fetch group — where SEESAW-I's
			// fast path pays off.
			m.stall(tid, iar.Cycles+itr.ExtraCycles)
		}
	}
	// OS background activity.
	if m.cfg.ContextSwitchEvery > 0 && i > 0 && i%m.cfg.ContextSwitchEvery == 0 {
		if err := m.contextSwitch(); err != nil {
			return err
		}
	}
	if m.cfg.PromoteScanEvery > 0 && i > 0 && i%m.cfg.PromoteScanEvery == 0 {
		m.mgr.PromoteScan(m.proc, 2)
	}
	if m.cfg.SplinterEvery > 0 && i > 0 && i%m.cfg.SplinterEvery == 0 {
		// Splinter the superpage under the most recent heap access,
		// if any — exercising Section IV-C2 in-flight.
		if m.proc.ChunkIsSuper(rec.VA) {
			m.Hooks.Metrics.Add(0, metrics.CtrSplinter, 1)
			m.Hooks.Metrics.Emit(-1, metrics.EvSplinter, uint64(rec.VA), 0, 0)
			m.mgr.Splinter(m.proc, rec.VA)
		}
	}
	if m.Hooks.Injector != nil {
		if ev, ok := m.Hooks.Injector.Tick(i); ok {
			// Annotate the fault before applying it, so the event dump
			// shows the injection immediately followed by its fallout
			// (shootdowns, TFT invalidations, flushes).
			m.Hooks.Metrics.Add(0, metrics.CtrFault, 1)
			m.Hooks.Metrics.Emit(-1, metrics.EvFault, 0, 0, uint64(ev.Kind))
			if err := m.applyFault(ev); err != nil {
				return err
			}
		}
	}
	m.Hooks.Metrics.TickRef()
	return nil
}

// epochBuf holds one epoch's pre-generated records: reference
// [start+off, start+len(recs)) are still unconsumed. ivas/jumps carry
// the I-side fetch stream when icache was set at generation time.
type epochBuf struct {
	start  int
	off    int
	recs   []trace.Record
	ivas   []addr.VAddr
	jumps  []bool
	icache bool
}

func (e *epochBuf) empty() bool { return e.off >= len(e.recs) }

// clone deep-copies the buffer's unconsumed suffix. Pending records
// must travel with a machine clone: the generator has already advanced
// past them, so dropping them would desync the clone's reference
// stream.
func (e *epochBuf) clone() epochBuf {
	if e.empty() {
		return epochBuf{}
	}
	return epochBuf{
		start:  e.start + e.off,
		recs:   append([]trace.Record(nil), e.recs[e.off:]...),
		ivas:   append([]addr.VAddr(nil), e.ivas[e.off:]...),
		jumps:  append([]bool(nil), e.jumps[e.off:]...),
		icache: e.icache,
	}
}

// batchState is the double-buffered epoch pipeline: cur holds the
// records currently being executed, next is (optionally) being filled
// by generator goroutines while execution proceeds — generation never
// reads execution state, so the lookahead is free parallelism. The
// buffers are reused across epochs; clone copies any unconsumed
// records (the generator has already advanced past them).
type batchState struct {
	cur      epochBuf
	next     epochBuf
	inflight bool // generator goroutines are filling next
	wg       sync.WaitGroup
}

// settle waits for any in-flight lookahead generation and, when the
// current buffer is drained, adopts the lookahead epoch as current.
// Callers that clone the generator or read batch state must settle
// first. Both buffers may legitimately hold records — a batch that
// stopped mid-epoch leaves cur partially consumed with next already
// generated — but then next must be the epoch immediately after cur.
func (m *Machine) settle() {
	b := &m.batch
	if b.inflight {
		b.wg.Wait()
		b.inflight = false
	}
	if b.next.empty() {
		return
	}
	if b.cur.empty() {
		b.cur, b.next = b.next, b.cur
	} else if b.next.start != b.cur.start+len(b.cur.recs) {
		panic("machine: epoch pipeline out of order")
	}
}

// pregen fills buf with references [start, start+n), one goroutine per
// workload thread. Generator state is fully per-thread (each tid owns
// its RNG, cursors, and last-VA), and each position of the epoch
// belongs to exactly one tid, so the workers touch disjoint state and
// disjoint buffer slots — the result is byte-identical to serial
// generation in schedule order, at any GOMAXPROCS. With background set
// the call returns immediately and settle() joins the workers.
func (m *Machine) pregen(buf *epochBuf, start, n int, icache, background bool) {
	if cap(buf.recs) < n {
		buf.recs = make([]trace.Record, n)
		buf.ivas = make([]addr.VAddr, n)
		buf.jumps = make([]bool, n)
	}
	buf.recs, buf.ivas, buf.jumps = buf.recs[:n], buf.ivas[:n], buf.jumps[:n]
	buf.start, buf.off, buf.icache = start, 0, icache
	nt := m.gen.Threads() + 1 // app threads + the system thread
	for t := 0; t < nt; t++ {
		m.batch.wg.Add(1)
		go m.genWorker(buf, t, start, icache)
	}
	if background {
		m.batch.inflight = true
		return
	}
	m.batch.wg.Wait()
}

// genWorker pre-generates, in program order, every reference of thread
// tid inside buf's epoch.
func (m *Machine) genWorker(buf *epochBuf, tid, g0 int, icache bool) {
	defer m.batch.wg.Done()
	s := m.schedule
	pos := g0 % len(s)
	for j := range buf.recs {
		st := s[pos]
		if pos++; pos == len(s) {
			pos = 0
		}
		if st != tid {
			continue
		}
		rec := m.gen.Next(tid)
		buf.recs[j] = rec
		if icache {
			buf.ivas[j], buf.jumps[j] = m.gen.NextCode(tid, int(rec.Gap)+1)
		}
	}
}

// epochLen returns the batch length starting at ref g for the phase
// [base, end): up to the next cancellation-poll boundary or the phase
// end, whichever is nearer. Phase boundaries also clamp the warmup
// edge, so an epoch never spans warmup and measured generation.
func (m *Machine) epochLen(g, base, end int) int {
	n := cancelCheckMask + 1 - ((g - base) & cancelCheckMask)
	if rem := end - g; n > rem {
		n = rem
	}
	if w := m.cfg.WarmupRefs; g < w && g+n > w {
		n = w - g
	}
	return n
}

// stepBatch advances the machine n references as one epoch: the
// per-thread slices of the epoch are generated in parallel behind a
// barrier (usually one epoch ahead, overlapped with execution of the
// previous epoch), then executed serially in schedule order —
// coherence couples the cores (LLC recency, directory state, snoops,
// back-invalidations land on every miss), so execution order is the
// serialization point that keeps reports byte-identical. end bounds
// the phase for lookahead generation.
func (m *Machine) stepBatch(n, base, end int) error {
	// Never span the warmup boundary: the phases generate differently.
	if w := m.cfg.WarmupRefs; m.globalRef < w && m.globalRef+n > w {
		n = w - m.globalRef
	}
	measured := m.globalRef >= m.cfg.WarmupRefs
	if measured && m.cfg.Trace != nil {
		// Trace replay: records are already materialized; nothing to
		// pre-generate (NextCode draws must stay in step order).
		for k := 0; k < n; k++ {
			if err := m.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	b := &m.batch
	for n > 0 {
		if b.cur.empty() {
			m.settle()
			if b.cur.empty() {
				ic := measured && m.cfg.ICache
				m.pregen(&b.cur, m.globalRef, m.epochLen(m.globalRef, base, end), ic, false)
			}
		}
		if b.cur.start+b.cur.off != m.globalRef {
			// Pending records no longer line up with the cursor: the
			// generator advanced past references that were never
			// executed, which no supported call sequence produces.
			panic("machine: pre-generated records out of sync with reference cursor")
		}
		// Kick the next epoch's generation before executing this one
		// (not worth a goroutine handoff for single-Step calls).
		if nstart := b.cur.start + len(b.cur.recs); n > 1 && nstart < end && !b.inflight && b.next.empty() {
			ic := nstart >= m.cfg.WarmupRefs && m.cfg.ICache && m.cfg.Trace == nil
			m.pregen(&b.next, nstart, m.epochLen(nstart, base, end), ic, true)
		}
		k := len(b.cur.recs) - b.cur.off
		if k > n {
			k = n
		}
		for ; k > 0; k-- {
			i := m.globalRef
			off := b.cur.off
			var err error
			if i < m.cfg.WarmupRefs {
				err = m.stepWarmup(i, b.cur.recs[off])
			} else {
				err = m.stepMeasured(i, b.cur.recs[off], b.cur.ivas[off], b.cur.jumps[off])
			}
			if err != nil {
				return err
			}
			b.cur.off++
			m.globalRef++
			n--
		}
	}
	return nil
}

// run is the single phase-aware reference loop behind Warmup and
// Measure: it advances the machine to end in epoch batches, polling ctx
// exactly when (globalRef-base)&cancelCheckMask == 0 — the same 4096-
// reference cadence the per-step loops used, now computed once per
// epoch instead of once per reference.
func (m *Machine) run(ctx context.Context, base, end int) error {
	for m.globalRef < end {
		if (m.globalRef-base)&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Batch to the next poll boundary (or the phase end).
		n := cancelCheckMask + 1 - ((m.globalRef - base) & cancelCheckMask)
		if rem := end - m.globalRef; n > rem {
			n = rem
		}
		if err := m.stepBatch(n, base, end); err != nil {
			return err
		}
	}
	return nil
}

// Warmup runs the OS-only warmup phase to its boundary. It is a no-op
// when WarmupRefs is zero or the phase already ran.
func (m *Machine) Warmup(ctx context.Context) error {
	return m.run(ctx, 0, m.cfg.WarmupRefs)
}

// Measure runs the measured phase: cfg.Refs fully modeled references
// starting at the warmup boundary. When ctx is canceled the loop stops
// at the next poll point and returns ctx's error — this is how the
// runner's per-cell timeout and the service's per-job cancellation
// reclaim a stuck or abandoned cell.
func (m *Machine) Measure(ctx context.Context) error {
	return m.run(ctx, m.cfg.WarmupRefs, m.cfg.WarmupRefs+m.cfg.Refs)
}
