package machine

import (
	"context"
	"fmt"
	"math/rand"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/check"
	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/cpu"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/osmm"
	"seesaw/internal/pagetable"
	"seesaw/internal/physmem"
	"seesaw/internal/tlb"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
	"seesaw/internal/xrand"
)

// Hooks bundles the optional cross-cutting observers wired into a
// machine: the metrics recorder, the invariant checker, and the fault
// injector. Build populates them from the Config (each is nil when its
// config section is absent); every emit site in the machine is nil-safe
// or nil-checked, so an unhooked machine pays one branch per site.
type Hooks struct {
	// Metrics mirrors counters and events into the observability layer
	// (nil unless Config.Metrics).
	Metrics *metrics.Recorder
	// Checker audits TLB/TFT/cache/directory state against page-table
	// ground truth after every reference and OS event (nil unless
	// Config.CheckInvariants).
	Checker *check.Checker
	// Injector produces the deterministic fault schedule (nil unless
	// Config.Faults).
	Injector *faults.Injector
}

// Machine is the fully wired simulated system: physical memory under an
// OS memory manager, per-core TLB hierarchies and L1 caches over a
// coherent LLC, CPU timing models, and the workload generators driving
// them. Build constructs one; Step advances it a single reference;
// Warmup and Measure run the two phases; Snapshot/Resume/Fork
// deep-copy warm state (snapshot.go).
type Machine struct {
	cfg Config

	// Hooks holds the machine's cross-cutting observers. Build wires
	// them; Fork rebuilds them fresh for the forked cell.
	Hooks Hooks

	// Deterministic OS-side randomness: rng is shared by the memory
	// manager and the memhog; rngSrc counts its draws so clones resume
	// at the same stream position.
	rng    *rand.Rand
	rngSrc *xrand.Source

	buddy  *physmem.Buddy
	hog    *physmem.Memhog // nil unless MemhogFraction > 0
	mgr    *osmm.Manager
	proc   *osmm.Process
	gen    *workload.Generator
	coGens []*workload.Generator // nil unless CoRunner

	nCores int

	l1s      []core.L1Cache
	seesaws  []*core.Seesaw // nil entries unless KindSeesaw
	l1is     []core.L1Cache // nil unless ICache
	iseesaws []*core.Seesaw
	hiers    []*tlb.Hierarchy
	cpus     []cpu.Model
	cohSys   *coherence.System
	acct     *energy.Account

	// schedule interleaves application threads with the system thread;
	// superTLBThreshold gates the scheduler's fast-path speculation.
	schedule          []int
	superTLBThreshold int
	// lastWidth tracks each coherence participant's most recent probe
	// width so EvProbeWidth fires only on transitions (metrics only).
	lastWidth []int

	// globalRef is the next reference index to execute; references
	// [0, WarmupRefs) are the warmup phase, [WarmupRefs,
	// WarmupRefs+Refs) the measured phase. curRef tags checker findings
	// and fault events with the reference they occurred at.
	globalRef int
	curRef    uint64

	l2Lookups uint64
	superRefs uint64
	// spike holds the frames a memhog-spike fault currently pins; the
	// next spike releases them, so pressure oscillates.
	spike   []addr.PAddr
	dropTFT bool
}

// mainASID is the measured application's address space; the co-runner
// (when configured) runs as coASID.
const (
	mainASID = 1
	coASID   = 2
)

// cancelCheckMask sets how often the reference loops poll their
// context: every 4096 references, cheap enough to be invisible next to
// the work of one reference yet responsive enough that a canceled or
// timed-out cell unwinds within a fraction of a millisecond.
const cancelCheckMask = 1<<12 - 1

// Build validates cfg and constructs a fully wired machine: the OS side
// (physical memory, fragmentation, page tables, mapped workload
// regions, co-runner address space) and the microarchitectural side
// (caches, TLBs, TFTs, coherence, CPUs), plus the Hooks the config asks
// for. The machine is positioned at reference 0; run it with Warmup
// then Measure, or drive it manually with Step.
func Build(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg.withDefaults()}
	if err := m.buildOS(); err != nil {
		return nil, err
	}
	if err := m.buildUarch(); err != nil {
		return nil, err
	}
	return m, nil
}

// Config returns the machine's configuration with defaults applied.
func (m *Machine) Config() Config { return m.cfg }

// buildOS constructs everything the warmup phase touches: physical
// memory and its fragmentation, the OS memory manager, the measured
// process and its mapped regions, the workload generators, and the
// co-runner's address space. Only this state (plus the RNG position)
// distinguishes a warmed machine from a cold one.
func (m *Machine) buildOS() error {
	cfg := m.cfg
	m.rng, m.rngSrc = xrand.New(cfg.Seed)

	// Physical memory, fragmentation, OS.
	buddy, err := physmem.New(cfg.MemBytes)
	if err != nil {
		return err
	}
	m.buddy = buddy
	m.mgr = osmm.NewManager(buddy, m.rng, !cfg.THPOff)
	if cfg.MemhogFraction > 0 {
		hog, err := physmem.Run(buddy, m.rng, cfg.MemhogFraction, 0.97)
		if err != nil {
			return err
		}
		// memhog's pages are movable anonymous memory: the OS can
		// migrate them when compacting for superpage allocations.
		m.hog = hog
		m.mgr.Compactor = hog
	}
	proc, err := m.mgr.NewProcess(mainASID)
	if err != nil {
		return err
	}
	m.proc = proc

	// Workload regions.
	m.gen = workload.NewGenerator(cfg.Workload, cfg.Seed)
	var heapBase addr.VAddr
	if cfg.Heap1G {
		heapBase, err = m.mgr.Mmap1G(proc, m.gen.HeapBytes())
	} else {
		heapBase, err = m.mgr.MmapHuge(proc, m.gen.HeapBytes(), true)
	}
	if err != nil {
		return fmt.Errorf("sim: mapping heap: %w", err)
	}
	smallBase, err := m.mgr.MmapHuge(proc, m.gen.SmallBytes(), false)
	if err != nil {
		return fmt.Errorf("sim: mapping small region: %w", err)
	}
	osBase, err := m.mgr.MmapHuge(proc, m.gen.OSBytes(), false)
	if err != nil {
		return fmt.Errorf("sim: mapping OS region: %w", err)
	}
	m.gen.Bind(heapBase, smallBase, osBase)
	if cfg.ICache {
		codeBase, err := m.mgr.MmapHuge(proc, m.gen.CodeBytes(), cfg.TextHuge)
		if err != nil {
			return fmt.Errorf("sim: mapping text: %w", err)
		}
		m.gen.BindCode(codeBase)
	}

	// Per-core structures: application threads + the system thread.
	m.nCores = m.gen.Threads() + 1

	// Optional co-runner process (ASID 2): its own address space, its
	// own per-core generators for the timeslices it steals.
	if cfg.CoRunner != nil {
		proc2, err := m.mgr.NewProcess(coASID)
		if err != nil {
			return err
		}
		// All cores replay the co-runner's thread-0 stream, each from an
		// independent deterministic generator.
		m.coGens = make([]*workload.Generator, m.nCores)
		cg := workload.NewGenerator(*cfg.CoRunner, cfg.Seed+1000)
		heap2, err := m.mgr.MmapHuge(proc2, cg.HeapBytes(), true)
		if err != nil {
			return fmt.Errorf("sim: mapping co-runner heap: %w", err)
		}
		small2, err := m.mgr.MmapHuge(proc2, cg.SmallBytes(), false)
		if err != nil {
			return fmt.Errorf("sim: mapping co-runner small region: %w", err)
		}
		os2, err := m.mgr.MmapHuge(proc2, cg.OSBytes(), false)
		if err != nil {
			return fmt.Errorf("sim: mapping co-runner OS region: %w", err)
		}
		for c := 0; c < m.nCores; c++ {
			g2 := workload.NewGenerator(*cfg.CoRunner, cfg.Seed+1000+int64(c))
			g2.Bind(heap2, small2, os2)
			m.coGens[c] = g2
		}
	}

	// Interleave: each application thread runs 8 references per system
	// thread reference, approximating the paper's traces of the target
	// application plus background system activity.
	for t := 0; t < m.gen.Threads(); t++ {
		for k := 0; k < 8; k++ {
			m.schedule = append(m.schedule, t)
		}
	}
	m.schedule = append(m.schedule, m.gen.SystemTID())
	return nil
}

// buildUarch constructs everything the measured phase touches — caches,
// TLB hierarchies, coherence, CPU models, energy accounting — and wires
// the Hooks and OS-event callbacks. The warmup phase never mutates any
// of this state, which is why Fork can rebuild it fresh per cell.
func (m *Machine) buildUarch() error {
	cfg := m.cfg
	// Observability: one recorder spans the whole coherence domain (data
	// caches 0..nCores-1, instruction caches nCores..2nCores-1). The
	// recorder is nil when metrics are off — every emit site is a
	// nil-safe no-op then.
	var mrec *metrics.Recorder
	if cfg.Metrics != nil {
		recCores := m.nCores
		if cfg.ICache {
			recCores = 2 * m.nCores
		}
		mrec = metrics.New(*cfg.Metrics, recCores, cfg.Refs)
	}

	m.l1s = make([]core.L1Cache, m.nCores)
	m.seesaws = make([]*core.Seesaw, m.nCores) // nil unless KindSeesaw
	m.hiers = make([]*tlb.Hierarchy, m.nCores)
	m.cpus = make([]cpu.Model, m.nCores)
	l1cfg := core.Config{
		SizeBytes: cfg.L1Size, Ways: cfg.L1Ways, Partitions: cfg.Partitions,
		FreqGHz: cfg.FreqGHz, TFT: cfg.TFT, Policy: cfg.Policy,
		WayPredict: cfg.WayPredict, SerialTLBCycles: cfg.SerialTLBCycles,
		Replacement: cfg.Replacement,
	}
	tlbCfg := tlb.SandybridgeTLBs()
	if cfg.CPUKind == "inorder" {
		tlbCfg = tlb.AtomTLBs()
	}
	if cfg.SmallTLB {
		tlbCfg = tlb.SmallTLBs()
	}
	newL1 := func(c core.Config) (core.L1Cache, *core.Seesaw, error) {
		switch cfg.CacheKind {
		case KindBaseline:
			l1, err := core.NewBaselineVIPT(c)
			return l1, nil, err
		case KindSeesaw:
			l1, err := core.NewSeesaw(c)
			return l1, l1, err
		case KindPIPT:
			l1, err := core.NewPIPT(c)
			return l1, nil, err
		}
		return nil, nil, fmt.Errorf("sim: unknown cache kind %v", cfg.CacheKind)
	}
	// Optional per-core L1 instruction caches (Table II: split 32KB I).
	if cfg.ICache {
		m.l1is = make([]core.L1Cache, m.nCores)
		m.iseesaws = make([]*core.Seesaw, m.nCores)
	}
	for i := 0; i < m.nCores; i++ {
		l1, s, err := newL1(l1cfg)
		if err != nil {
			return err
		}
		m.l1s[i], m.seesaws[i] = l1, s
		if mrec != nil {
			l1.Storage().Metrics, l1.Storage().MetricsCore = mrec, i
			if s != nil {
				s.TFT().Metrics, s.TFT().MetricsCore = mrec, i
			}
		}
		if cfg.ICache {
			icfg := l1cfg
			icfg.SizeBytes = 32 << 10
			icfg.Ways = 8
			icfg.Partitions = 0
			il1, is, err := newL1(icfg)
			if err != nil {
				return err
			}
			m.l1is[i], m.iseesaws[i] = il1, is
			if mrec != nil {
				il1.Storage().Metrics, il1.Storage().MetricsCore = mrec, m.nCores+i
				if is != nil {
					is.TFT().Metrics, is.TFT().MetricsCore = mrec, m.nCores+i
				}
			}
		}
		walker := pagetable.NewWalker(m.proc.PT, 20)
		h, err := tlb.NewHierarchy(tlbCfg, walker)
		if err != nil {
			return err
		}
		h.Metrics, h.MetricsCore = mrec, i
		m.hiers[i] = h
		cm, err := cpu.New(cfg.CPUKind)
		if err != nil {
			return err
		}
		m.cpus[i] = cm
	}
	m.wireSuperFills()

	cohCfg := coherence.DefaultConfig(cfg.FreqGHz)
	cohCfg.Mode = cfg.CoherenceMode
	// The instruction caches join the coherent domain as extra read-only
	// participants: I-cache of core i sits at index nCores+i.
	cohSys, err := coherence.New(cohCfg, m.cohL1s())
	if err != nil {
		return err
	}
	cohSys.Metrics = mrec
	m.cohSys = cohSys

	// Optional shadow oracle: audits every reference and OS event
	// against page-table / directory ground truth.
	var chk *check.Checker
	if cfg.CheckInvariants {
		chk = check.New(check.Wiring{
			L1s: m.cohL1s(), Hiers: m.hiers, Seesaws: m.seesaws, ISeesaws: m.iseesaws,
			Coh: cohSys, Mgr: m.mgr,
		})
		chk.Metrics = mrec
	}

	// Fault injection: a seeded event stream perturbing the run on a
	// reproducible schedule (see internal/faults).
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj, err = faults.New(*cfg.Faults, cfg.Seed)
		if err != nil {
			return err
		}
	}
	m.Hooks = Hooks{Metrics: mrec, Checker: chk, Injector: inj}

	// OS event wiring: invlpg reaches every core's TLBs and TFT; page
	// promotion sweeps old frames out of every L1 under cover of the
	// 150-200 cycle TLB-invalidate instructions (Section IV-C2).
	// dropTFT models a broken invalidation protocol (fault-injection
	// mutation): the TLB side of the invlpg still happens, the TFT side
	// is silently lost — exactly the stale-entry hazard the Section
	// IV-C2 protocol prevents and the invariant checker must catch.
	m.dropTFT = cfg.Faults != nil && cfg.Faults.DropTFTInvalidate
	m.mgr.OnInvlpg = m.onInvlpg
	m.mgr.OnPromote = m.onPromote

	m.acct = energy.NewAccount(cfg.Prices)
	m.superTLBThreshold = 0
	if st := m.hiers[0].L1Super(); st != nil {
		m.superTLBThreshold = st.Config().Entries / 4
	}
	if mrec != nil {
		m.lastWidth = make([]int, len(m.cohL1s()))
	}
	return nil
}

// cohL1s returns the coherence participant order: data caches first,
// then (when modeled) the instruction caches.
func (m *Machine) cohL1s() []core.L1Cache {
	return append(append([]core.L1Cache{}, m.l1s...), m.l1is...)
}

// wireSuperFills connects each hierarchy's superpage-TLB-fill event to
// the core's TFTs (Fig 5 steps 6-8). Called by buildUarch and again by
// clone, which must re-close over the cloned seesaws.
func (m *Machine) wireSuperFills() {
	for i := range m.hiers {
		ds, is := m.seesaws[i], (*core.Seesaw)(nil)
		if m.cfg.ICache {
			is = m.iseesaws[i]
		}
		if ds == nil && is == nil {
			m.hiers[i].OnL1SuperFill = nil
			continue
		}
		m.hiers[i].OnL1SuperFill = func(va addr.VAddr, asid uint16) {
			if ds != nil {
				ds.OnSuperpageTLBFill(va)
			}
			if is != nil {
				is.OnSuperpageTLBFill(va)
			}
		}
	}
}

// inWarmup reports whether the machine is still inside the warmup
// phase: OS-event hooks do no microarchitectural work then (there is no
// warm cache/TLB state to invalidate and nothing is being measured).
func (m *Machine) inWarmup() bool { return m.globalRef < m.cfg.WarmupRefs }

// onInvlpg handles an OS invalidation of the 2MB region at vaBase:
// every core's TLB stack drops the region's translations (one range
// invalidation instead of 512 per-page probes), the TFTs drop the
// region, and each core pays the invlpg instruction cost.
func (m *Machine) onInvlpg(asid uint16, vaBase addr.VAddr) {
	if m.inWarmup() {
		return
	}
	// One shootdown event per 2MB region (not per 4KB page per core —
	// that would flood the ring); the per-entry drop counts land in
	// CtrTLBShootdown via Hierarchy.InvalidateRegion2M.
	m.Hooks.Metrics.Emit(-1, metrics.EvTLBShootdown, uint64(vaBase), 0, uint64(asid))
	for i := range m.hiers {
		m.hiers[i].InvalidateRegion2M(vaBase, asid)
		if !m.dropTFT {
			if m.seesaws[i] != nil {
				m.seesaws[i].InvalidatePage(vaBase)
			}
			if m.cfg.ICache && m.iseesaws[i] != nil {
				m.iseesaws[i].InvalidatePage(vaBase)
			}
		}
		m.cpus[i].Stall(175) // invlpg cost, mid paper range
	}
	if m.Hooks.Checker != nil {
		m.Hooks.Checker.AfterInvlpg(m.curRef, asid, vaBase)
	}
}

// onPromote handles a completed superpage promotion: every L1 sweeps
// the old frames' lines (Section IV-C2's cache side).
func (m *Machine) onPromote(asid uint16, vaBase addr.VAddr, oldFrames []addr.PAddr, newPA addr.PAddr) {
	if m.inWarmup() {
		return
	}
	m.Hooks.Metrics.Add(0, metrics.CtrPromotion, 1)
	m.Hooks.Metrics.Emit(-1, metrics.EvPromote, uint64(vaBase), uint64(newPA), uint64(len(oldFrames)))
	for i, l1 := range m.l1s {
		for _, f := range oldFrames {
			for _, v := range l1.EvictRange(f, f+4096) {
				m.cohSys.Evicted(i, v.PA, v.State.Dirty())
			}
		}
	}
	for i, l1i := range m.l1is {
		for _, f := range oldFrames {
			for _, v := range l1i.EvictRange(f, f+4096) {
				m.cohSys.Evicted(m.nCores+i, v.PA, v.State.Dirty())
			}
		}
	}
	if m.Hooks.Checker != nil {
		m.Hooks.Checker.AfterPromote(m.curRef, oldFrames)
	}
}

// sampleAccess mirrors one L1 access into the metrics layer.
func (m *Machine) sampleAccess(mcore int, va addr.VAddr, ar core.AccessResult) {
	mrec := m.Hooks.Metrics
	if mrec == nil {
		return
	}
	mrec.Add(mcore, metrics.CtrRefs, 1)
	mrec.Add(mcore, metrics.CtrWaysProbed, uint64(ar.WaysProbed))
	if ar.FastPath {
		mrec.Add(mcore, metrics.CtrFastProbe, 1)
	} else {
		mrec.Add(mcore, metrics.CtrSlowProbe, 1)
	}
	if ar.WaysProbed != m.lastWidth[mcore] {
		m.lastWidth[mcore] = ar.WaysProbed
		mrec.Emit(mcore, metrics.EvProbeWidth, uint64(va), 0, uint64(ar.WaysProbed))
	}
}

// dataAccess runs one data reference on core tid in the given address
// space: translate, L1 lookup, miss service / coherence upgrade,
// scheduler-speculation resolution, retire. countStats marks
// main-process references (superpage-fraction metric).
func (m *Machine) dataAccess(tid int, rec trace.Record, asid uint16, countStats bool) error {
	cfg := m.cfg
	h := m.hiers[tid]
	tr := h.Translate(rec.VA, asid)
	if tr.Source == tlb.SourceFault {
		return fmt.Errorf("sim: fault at %#x (unmapped generator address)", uint64(rec.VA))
	}
	if tr.Source != tlb.SourceL1 {
		m.l2Lookups++
	}
	if countStats && tr.Size.IsSuper() {
		m.superRefs++
	}
	store := rec.Kind != 0
	ar := m.l1s[tid].Access(rec.VA, tr.PA, tr.Size, store)
	m.acct.AddL1CPUSide(ar.EnergyNJ)
	m.sampleAccess(tid, rec.VA, ar)
	// Audit before the miss is filled: the full-probe ground truth
	// must reflect the state this lookup actually saw.
	if m.Hooks.Checker != nil {
		m.Hooks.Checker.AfterAccess(check.Access{
			Ref: m.curRef, Core: tid, VA: rec.VA, ASID: asid, TR: tr, AR: ar,
		})
	}
	// A superpage L1 TLB hit refreshes the TFT *after* this access's
	// parallel TFT probe completed: the hitting TLB entry carries
	// the page size, so the hardware re-marks a region that a
	// conflicting fill displaced. The current access still paid
	// the slow path; the next one hits the TFT. (Completes the
	// paper's fill-on-TLB-fill policy, which alone would let a
	// region whose TLB entry stays resident miss indefinitely.)
	if tr.Size.IsSuper() && tr.Source == tlb.SourceL1 && m.seesaws[tid] != nil {
		m.seesaws[tid].OnSuperpageTLBFill(rec.VA)
	}
	extra := tr.ExtraCycles
	if !ar.Hit {
		mr := m.cohSys.Miss(tid, tr.PA, store)
		fill := m.l1s[tid].Fill(tr.PA, tr.Size, store, mr.Shared)
		m.acct.AddL1CPUSide(fill.EnergyNJ)
		if fill.Victim.Valid {
			m.cohSys.Evicted(tid, fill.VictimPA, fill.Writeback)
		}
		extra += mr.Cycles
		// Next-line prefetch, staying inside the 4KB frame.
		if cfg.Prefetch {
			nextPA := tr.PA.LineBase() + addr.LineSize
			if nextPA.PageBase(addr.Page4K) == tr.PA.PageBase(addr.Page4K) {
				if _, _, resident := m.l1s[tid].Storage().FindLine(nextPA); !resident {
					pmr := m.cohSys.Miss(tid, nextPA, false)
					pfill := m.l1s[tid].Fill(nextPA, tr.Size, false, pmr.Shared)
					m.acct.AddL1CPUSide(pfill.EnergyNJ)
					if pfill.Victim.Valid {
						m.cohSys.Evicted(tid, pfill.VictimPA, pfill.Writeback)
					}
				}
			}
		}
	} else if store {
		switch ar.State {
		case cache.Shared, cache.Owned: // need coherence permission
			extra += m.cohSys.Upgrade(tid, tr.PA)
		default:
			m.l1s[tid].UpgradeToModified(tr.PA)
		}
	}
	assumedFast := false
	if m.seesaws[tid] != nil {
		switch {
		case cfg.SchedulerAlwaysFast:
			assumedFast = true
		case cfg.SchedulerAlwaysSlow:
			assumedFast = false
		default:
			// The paper's counter heuristic: speculate fast when the
			// 2MB TLB holds at least a quarter of its entries. Any
			// resident 1GB translation also licenses speculation —
			// one gigabyte entry covers 512 superpage regions, so
			// superpages are certainly not scarce.
			if st := h.L1Super(); st != nil {
				assumedFast = st.ValidCount() >= m.superTLBThreshold
			}
			if g1 := h.L1For(addr.Page1G); g1 != nil && g1.ValidCount() > 0 {
				assumedFast = true
			}
		}
	}
	m.cpus[tid].Retire(int(rec.Gap), cpu.MemCost{
		Hit:          ar.Hit,
		IsStore:      store,
		Dep:          rec.Dep,
		L1Cycles:     ar.Cycles,
		SlowL1Cycles: m.l1s[tid].SlowCycles(),
		AssumedFast:  assumedFast,
		ExtraCycles:  extra,
	})
	return nil
}

// contextSwitch runs the co-runner timeslice (if configured) on every
// core and flushes the non-ASID-tagged TFTs. The ASID-tagged TLBs keep
// the application's entries across the switch; the page walker follows
// the CR3 switch to the co-runner's page table.
func (m *Machine) contextSwitch() error {
	if m.cfg.CoRunner != nil {
		proc2 := m.mgr.Process(coASID)
		for c := 0; c < m.nCores; c++ {
			// Entering the co-runner: TFT flush and CR3 switch.
			m.flushTFTs(c)
			m.hiers[c].Walker().Table = proc2.PT
			for k := 0; k < m.cfg.CoRunSliceRefs; k++ {
				rec2 := m.coGens[c].Next(0)
				rec2.TID = uint8(c)
				if err := m.dataAccess(c, rec2, coASID, false); err != nil {
					return err
				}
			}
			m.hiers[c].Walker().Table = m.proc.PT
		}
	}
	// Switching back to the application: TFT flush again.
	for c := 0; c < m.nCores; c++ {
		m.flushTFTs(c)
	}
	return nil
}

// flushTFTs flushes core c's TFTs (data side and, when modeled, the
// instruction side) on a context switch — they carry no ASIDs.
func (m *Machine) flushTFTs(c int) {
	if d := m.seesaws[c]; d != nil {
		d.ContextSwitch()
	}
	if m.cfg.ICache && m.iseesaws[c] != nil {
		m.iseesaws[c].ContextSwitch()
	}
}

// applyFault applies one injected fault event.
func (m *Machine) applyFault(ev faults.Event) error {
	inj := m.Hooks.Injector
	mrec := m.Hooks.Metrics
	switch ev.Kind {
	case faults.Splinter:
		cands := m.proc.SuperChunkVAs()
		if len(cands) == 0 {
			inj.Skip()
			return nil
		}
		va := cands[int(ev.Pick%uint64(len(cands)))]
		mrec.Add(0, metrics.CtrSplinter, 1)
		mrec.Emit(-1, metrics.EvSplinter, uint64(va), 0, 0)
		return m.mgr.Splinter(m.proc, va)
	case faults.Shootdown:
		cands := m.proc.ChunkVAs()
		if len(cands) == 0 {
			inj.Skip()
			return nil
		}
		// An invlpg burst over mapped regions: the mappings stay,
		// the TLBs/TFTs must still see every invalidation.
		for b := 0; b < ev.Burst; b++ {
			m.mgr.OnInvlpg(mainASID, cands[int((ev.Pick+uint64(b))%uint64(len(cands)))])
		}
		return nil
	case faults.ContextSwitch:
		return m.contextSwitch()
	case faults.PromoteStorm:
		if m.mgr.PromoteScan(m.proc, ev.Burst*4) == 0 {
			inj.Skip()
		}
		return nil
	case faults.MemhogSpike:
		if len(m.spike) > 0 {
			for _, pa := range m.spike {
				m.buddy.Free(pa, addr.Page4K)
			}
			m.spike = m.spike[:0]
			return nil
		}
		for n := 0; n < ev.Burst*512; n++ {
			pa, ok := m.buddy.Alloc(addr.Page4K)
			if !ok {
				break
			}
			m.spike = append(m.spike, pa)
		}
		if len(m.spike) == 0 {
			inj.Skip()
		}
		return nil
	}
	return fmt.Errorf("sim: unknown fault kind %v", ev.Kind)
}

// Step executes the next reference — a warmup step while the machine is
// inside [0, WarmupRefs), a full measured step afterwards — and
// advances the reference cursor. Warmup and Measure are loops over
// Step with context polling.
func (m *Machine) Step() error {
	i := m.globalRef
	var err error
	if i < m.cfg.WarmupRefs {
		err = m.stepWarmup(i)
	} else {
		err = m.stepMeasured(i)
	}
	if err != nil {
		return err
	}
	m.globalRef++
	return nil
}

// stepWarmup advances the OS-only warmup phase one reference: the
// workload generator moves (so the measured phase starts mid-stream, as
// a real attach would) and the periodic promotion/splinter scans run,
// mutating only the buddy allocator, the page tables, and the RNG. No
// cache, TLB, TFT, CPU, or energy state is touched; context switches
// and fault injection are deferred to the measured phase. All cadences
// key on the global reference index i, so a WarmupRefs=0 run is
// bit-identical to the unphased simulator.
func (m *Machine) stepWarmup(i int) error {
	rec := m.gen.Next(m.schedule[i%len(m.schedule)])
	if m.cfg.PromoteScanEvery > 0 && i > 0 && i%m.cfg.PromoteScanEvery == 0 {
		m.mgr.PromoteScan(m.proc, 2)
	}
	if m.cfg.SplinterEvery > 0 && i > 0 && i%m.cfg.SplinterEvery == 0 {
		if m.proc.ChunkIsSuper(rec.VA) {
			m.mgr.Splinter(m.proc, rec.VA)
		}
	}
	return nil
}

// stepMeasured executes one fully modeled reference at global index i:
// the data access, the instruction fetch, periodic OS activity, and
// fault injection.
func (m *Machine) stepMeasured(i int) error {
	cfg := m.cfg
	m.curRef = uint64(i)
	var rec trace.Record
	if cfg.Trace != nil {
		rec = cfg.Trace[i-cfg.WarmupRefs]
		if int(rec.TID) >= m.nCores {
			return fmt.Errorf("sim: trace record %d names thread %d but the system has %d cores",
				i, rec.TID, m.nCores)
		}
	} else {
		rec = m.gen.Next(m.schedule[i%len(m.schedule)])
	}
	tid := int(rec.TID)
	h := m.hiers[tid]
	if err := m.dataAccess(tid, rec, mainASID, true); err != nil {
		return err
	}
	// Instruction fetch for this block of (gap+1) instructions.
	if cfg.ICache {
		iva, jumped := m.gen.NextCode(tid, int(rec.Gap)+1)
		itr := h.Translate(iva, 1)
		if itr.Source == tlb.SourceFault {
			return fmt.Errorf("sim: I-fetch fault at %#x", uint64(iva))
		}
		if itr.Source != tlb.SourceL1 {
			m.l2Lookups++
		}
		iar := m.l1is[tid].Access(iva, itr.PA, itr.Size, false)
		m.acct.AddL1CPUSide(iar.EnergyNJ)
		m.sampleAccess(m.nCores+tid, iva, iar)
		if m.Hooks.Checker != nil {
			m.Hooks.Checker.AfterAccess(check.Access{
				Ref: m.curRef, Core: m.nCores + tid, VA: iva, ASID: 1, TR: itr, AR: iar,
			})
		}
		if itr.Size.IsSuper() && itr.Source == tlb.SourceL1 && m.iseesaws[tid] != nil {
			m.iseesaws[tid].OnSuperpageTLBFill(iva)
		}
		if !iar.Hit {
			imr := m.cohSys.Miss(m.nCores+tid, itr.PA, false)
			ifill := m.l1is[tid].Fill(itr.PA, itr.Size, false, imr.Shared)
			m.acct.AddL1CPUSide(ifill.EnergyNJ)
			if ifill.Victim.Valid {
				m.cohSys.Evicted(m.nCores+tid, ifill.VictimPA, ifill.Writeback)
			}
			// Front-end miss stall: the fetch buffer hides part of
			// it on the OoO core.
			stall := iar.Cycles + itr.ExtraCycles + imr.Cycles
			if cfg.CPUKind == "ooo" {
				stall = (stall + 1) / 2
			}
			m.cpus[tid].Stall(stall)
		} else if jumped {
			// Fetch-redirect bubble: a taken branch waits one L1I
			// hit latency for the new fetch group — where SEESAW-I's
			// fast path pays off.
			m.cpus[tid].Stall(iar.Cycles + itr.ExtraCycles)
		}
	}
	// OS background activity.
	if cfg.ContextSwitchEvery > 0 && i > 0 && i%cfg.ContextSwitchEvery == 0 {
		if err := m.contextSwitch(); err != nil {
			return err
		}
	}
	if cfg.PromoteScanEvery > 0 && i > 0 && i%cfg.PromoteScanEvery == 0 {
		m.mgr.PromoteScan(m.proc, 2)
	}
	if cfg.SplinterEvery > 0 && i > 0 && i%cfg.SplinterEvery == 0 {
		// Splinter the superpage under the most recent heap access,
		// if any — exercising Section IV-C2 in-flight.
		if m.proc.ChunkIsSuper(rec.VA) {
			m.Hooks.Metrics.Add(0, metrics.CtrSplinter, 1)
			m.Hooks.Metrics.Emit(-1, metrics.EvSplinter, uint64(rec.VA), 0, 0)
			m.mgr.Splinter(m.proc, rec.VA)
		}
	}
	if m.Hooks.Injector != nil {
		if ev, ok := m.Hooks.Injector.Tick(i); ok {
			// Annotate the fault before applying it, so the event dump
			// shows the injection immediately followed by its fallout
			// (shootdowns, TFT invalidations, flushes).
			m.Hooks.Metrics.Add(0, metrics.CtrFault, 1)
			m.Hooks.Metrics.Emit(-1, metrics.EvFault, 0, 0, uint64(ev.Kind))
			if err := m.applyFault(ev); err != nil {
				return err
			}
		}
	}
	m.Hooks.Metrics.TickRef()
	return nil
}

// Warmup runs the OS-only warmup phase to its boundary. It is a no-op
// when WarmupRefs is zero or the phase already ran.
func (m *Machine) Warmup(ctx context.Context) error {
	for m.globalRef < m.cfg.WarmupRefs {
		if m.globalRef&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Measure runs the measured phase: cfg.Refs fully modeled references
// starting at the warmup boundary. When ctx is canceled the loop stops
// at the next poll point and returns ctx's error — this is how the
// runner's per-cell timeout and the service's per-job cancellation
// reclaim a stuck or abandoned cell.
func (m *Machine) Measure(ctx context.Context) error {
	end := m.cfg.WarmupRefs + m.cfg.Refs
	for m.globalRef < end {
		if (m.globalRef-m.cfg.WarmupRefs)&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
