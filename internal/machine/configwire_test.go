package machine

import (
	"reflect"
	"testing"
)

// TestConfigWireMirrorsConfig is the drift guard configwire.go promises:
// configWire must be Config field for field — same names, same types,
// same order — except for the design slot, where Config's string-typed
// CacheKind becomes the Design string plus the legacy CacheKind int.
// Adding a field to Config without adding it here silently drops it
// from every snapshot; this test turns that into a loud failure.
func TestConfigWireMirrorsConfig(t *testing.T) {
	type field struct {
		name string
		typ  reflect.Type
	}
	flatten := func(st reflect.Type) []field {
		var fs []field
		for i := 0; i < st.NumField(); i++ {
			f := st.Field(i)
			fs = append(fs, field{f.Name, f.Type})
		}
		return fs
	}

	// Rewrite Config's field list into the shape the wire must have.
	var want []field
	for _, f := range flatten(reflect.TypeOf(Config{})) {
		if f.name == "CacheKind" {
			want = append(want,
				field{"Design", reflect.TypeOf("")},
				field{"CacheKind", reflect.TypeOf(int(0))})
			continue
		}
		want = append(want, f)
	}

	got := flatten(reflect.TypeOf(configWire{}))
	if len(got) != len(want) {
		t.Fatalf("configWire has %d fields, Config implies %d — a Config field was added or removed without updating the wire struct", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("field %d: wire has %s %v, Config implies %s %v", i, got[i].name, got[i].typ, want[i].name, want[i].typ)
		}
	}
}

// TestConfigWireRoundTrip: wireOf followed by config() is the identity
// on every field, for a config that sets each design slot variant.
func TestConfigWireRoundTrip(t *testing.T) {
	for _, kind := range []CacheKind{KindBaseline, KindSeesaw, KindPIPT, KindVespa} {
		cfg := testConfig(t, kind)
		got, err := wireOf(cfg).config()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(cfg, got) {
			t.Errorf("%s: wire round trip changed the config:\nin:  %+v\nout: %+v", kind, cfg, got)
		}
	}
}

// TestConfigWireLegacyFallback: a wire struct with no Design resolves
// through the legacy enum; unknown spellings in either slot error.
func TestConfigWireLegacyFallback(t *testing.T) {
	for legacy, want := range map[int]CacheKind{
		0: KindBaseline, 1: KindSeesaw, 2: KindPIPT,
	} {
		w := wireOf(testConfig(t, want))
		w.Design = "" // as a pre-registry blob decodes
		w.CacheKind = legacy
		cfg, err := w.config()
		if err != nil {
			t.Fatalf("legacy %d: %v", legacy, err)
		}
		if cfg.CacheKind != want {
			t.Errorf("legacy %d decoded to %q, want %q", legacy, cfg.CacheKind, want)
		}
	}

	bad := wireOf(testConfig(t, KindSeesaw))
	bad.Design = ""
	bad.CacheKind = 99
	if _, err := bad.config(); err == nil {
		t.Error("unknown legacy enum value decoded without error")
	}
	bad.Design = "no-such-design"
	if _, err := bad.config(); err == nil {
		t.Error("unregistered design name decoded without error")
	}
}
