package machine

import (
	"context"
	"errors"
	"testing"

	"seesaw/internal/tft"
	"seesaw/internal/workload"
)

// TestValidateTypedErrors pins the knob-combination rules a mutator
// prunes on: each rejected config must come back as a *ConfigError
// carrying the expected stable Rule, and each legal neighbour must pass.
func TestValidateTypedErrors(t *testing.T) {
	base := func() Config { return testConfig(t, KindSeesaw) }
	cases := []struct {
		name string
		mut  func(*Config)
		rule Rule // "" = must validate cleanly
	}{
		{"default-ok", func(c *Config) {}, ""},
		{"partitions-not-pow2", func(c *Config) { c.Partitions = 3 }, RulePartitionsNotPow2},
		{"partitions-negative", func(c *Config) { c.Partitions = -2 }, RulePartitionsNotPow2},
		{"partitions-exceed-ways", func(c *Config) { c.Partitions = 16 }, RulePartitionsExceedWays},
		{"partitions-2-ok", func(c *Config) { c.Partitions = 2 }, ""},
		{"tft-entries-negative", func(c *Config) { c.TFT = tft.Config{Entries: -1} }, RuleTFTEntriesNegative},
		{"tft-assoc-exceeds-entries", func(c *Config) { c.TFT = tft.Config{Entries: 4, Assoc: 8} }, RuleTFTAssocInvalid},
		{"tft-assoc-negative", func(c *Config) { c.TFT = tft.Config{Entries: 16, Assoc: -1} }, RuleTFTAssocInvalid},
		{"tft-entries-not-divisible", func(c *Config) { c.TFT = tft.Config{Entries: 18, Assoc: 4} }, RuleTFTEntriesNotDivisible},
		{"tft-sets-not-pow2", func(c *Config) { c.TFT = tft.Config{Entries: 24, Assoc: 2} }, RuleTFTSetsNotPow2},
		// The Fig 13 study points: direct-mapped TFTs index MOD
		// entries, so non-power-of-two set counts are legal there.
		{"tft-12-direct-mapped-ok", func(c *Config) { c.TFT = tft.Config{Entries: 12, Assoc: 1} }, ""},
		{"tft-20-direct-mapped-ok", func(c *Config) { c.TFT = tft.Config{Entries: 20, Assoc: 1} }, ""},
		{"tft-32x4-ok", func(c *Config) { c.TFT = tft.Config{Entries: 32, Assoc: 4} }, ""},
		{"spec-threshold-negative", func(c *Config) { c.SpecFastThreshold = -1 }, RuleSpecThresholdNegative},
		{"spec-threshold-ok", func(c *Config) { c.SpecFastThreshold = 8 }, ""},
		{"scheduler-contradiction", func(c *Config) { c.SchedulerAlwaysFast, c.SchedulerAlwaysSlow = true, true }, RuleSchedulerContradiction},
		{"memhog-range", func(c *Config) { c.MemhogFraction = 0.99 }, RuleMemhogRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.rule == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want rule %s", tc.rule)
			}
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("Validate() = %v (%T), want *ConfigError", err, err)
			}
			if cerr.Rule != tc.rule {
				t.Fatalf("Validate() rule = %s, want %s (err: %v)", cerr.Rule, tc.rule, cerr)
			}
			if cerr.Field == "" || cerr.Value == "" || cerr.Detail == "" {
				t.Fatalf("ConfigError incompletely populated: %+v", cerr)
			}
		})
	}
}

// TestSpecFastThresholdKnob proves the override reaches the scheduler:
// a threshold of 1 speculates fast almost immediately, a huge threshold
// never does, and the two must produce different timing on a fragmented
// SEESAW run. Threshold 0 must reproduce the paper's quarter-full rule
// byte-for-byte.
func TestSpecFastThresholdKnob(t *testing.T) {
	run := func(threshold int) []byte {
		cfg := testConfig(t, KindSeesaw)
		cfg.SpecFastThreshold = threshold
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return reportText(t, m)
	}
	zero := run(0)
	eager := run(1)
	never := run(1 << 20)
	if string(eager) == string(never) {
		t.Fatal("threshold 1 and 1<<20 produced identical reports; knob not wired")
	}
	// The Sandybridge 2MB L1 TLB has 16 entries, so 0 and the explicit
	// quarter-full value must agree exactly.
	quarter := run(16 / 4)
	if string(zero) != string(quarter) {
		t.Fatal("threshold 0 does not reproduce the explicit quarter-full rule")
	}
}

// TestValidateCatchesBuildPanics keeps the recover path: geometry the
// constructors reject must still surface as an error, typed or not.
func TestValidateCatchesBuildPanics(t *testing.T) {
	p, err := workload.ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: p, CacheKind: KindSeesaw, L1Size: 32 << 10, L1Ways: 7}
	if err := cfg.Validate(); err == nil {
		t.Fatal("7-way 32KB SEESAW validated; want error")
	}
	if _, err := Build(cfg); err == nil {
		t.Fatal("Build accepted config Validate rejects")
	}
}

// TestValidatedConfigBuilds is the contract the evolutionary mutator
// relies on: any config Validate accepts must Build and run without
// panicking.
func TestValidatedConfigBuilds(t *testing.T) {
	cfg := testConfig(t, KindSeesaw)
	cfg.TFT = tft.Config{Entries: 24, Assoc: 1}
	cfg.Partitions = 2
	cfg.SpecFastThreshold = 4
	cfg.Refs = 2_000
	cfg.WarmupRefs = 1_000
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Measure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Report(); err != nil {
		t.Fatal(err)
	}
}
