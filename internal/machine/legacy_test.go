package machine

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"seesaw/internal/workload"
)

// legacyFixtureConfig is the exact config tools/genlegacy used to
// produce testdata/legacy/snapshot_*.bin before CacheKind became a
// string: the snapshots on disk carry the old int enum in their gob
// payload, so decoding them exercises the legacy fallback in
// configwire.go.
func legacyFixtureConfig(t *testing.T, kind CacheKind) Config {
	t.Helper()
	p, err := workload.ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Workload: p, Seed: 42, Refs: 2000, WarmupRefs: 2000,
		CacheKind: kind, L1Size: 32 << 10, FreqGHz: 1.33,
		CPUKind: "ooo", MemBytes: 256 << 20, MemhogFraction: 0.3,
	}
}

// TestLegacySnapshotDecode pins backward compatibility for snapshots
// written before the design registry: blobs whose embedded config
// stores CacheKind as the old int enum must decode to the matching
// design name, keep their warmup signature (so the ladder still
// recognises them), and resume to a working, deterministic machine.
func TestLegacySnapshotDecode(t *testing.T) {
	for _, kind := range []CacheKind{KindSeesaw, KindBaseline, KindPIPT} {
		name := kind.String()
		t.Run(name, func(t *testing.T) {
			blob, err := os.ReadFile(filepath.Join("testdata", "legacy", "snapshot_"+name+".bin"))
			if err != nil {
				t.Fatal(err)
			}
			snap, err := UnmarshalSnapshot(blob)
			if err != nil {
				t.Fatalf("legacy snapshot no longer decodes: %v", err)
			}

			cfg := legacyFixtureConfig(t, kind)
			if got := snap.Resume().Config().CacheKind; got != kind {
				t.Errorf("decoded CacheKind = %q, want %q", got, kind)
			}
			if snap.Ref() != cfg.WarmupRefs {
				t.Errorf("decoded rung = %d, want the warmup boundary %d", snap.Ref(), cfg.WarmupRefs)
			}
			if snap.Signature() != cfg.WarmupSignature() {
				t.Error("decoded warmup signature differs from the fixture config's — " +
					"the ladder would refuse to reuse pre-refactor snapshots")
			}

			// The decoded machine must actually run, and deterministically:
			// two independent resumes of one legacy blob agree byte for byte.
			run := func() []byte {
				m := snap.Resume()
				if err := m.Measure(context.Background()); err != nil {
					t.Fatal(err)
				}
				r, err := m.Report()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := r.WriteText(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			if a, b := run(), run(); !bytes.Equal(a, b) {
				t.Error("two resumes of the legacy snapshot disagree")
			}
		})
	}
}
