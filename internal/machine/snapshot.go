package machine

import (
	"fmt"
	"math/rand"

	"seesaw/internal/addr"
	"seesaw/internal/check"
	"seesaw/internal/core"
	"seesaw/internal/osmm"
	"seesaw/internal/pagetable"
	"seesaw/internal/workload"
)

// WarmupSignature identifies everything that shapes the warmup phase: a
// machine's state at the warmup boundary is a pure function of its
// signature. Two configs with equal signatures pass through identical
// warmup states, so a sweep may warm one machine and Fork every cell
// whose config agrees — measured-phase parameters (cache kind, geometry,
// policies, Refs, hooks, context-switch cadence, fault schedules) are
// deliberately absent. The struct is comparable and usable as a map key.
type WarmupSignature struct {
	// Workload and CoRunner are the profiles' %+v renderings (profiles
	// hold no pointers, so the rendering is a faithful identity);
	// CoRunner is empty when no co-runner is configured. The co-runner
	// matters even though its timeslices only run in the measured phase:
	// Build maps its address space up front, consuming buddy frames.
	Workload string
	CoRunner string

	Seed       int64
	WarmupRefs int

	// Fields that shape physical memory and the mapped regions.
	MemBytes       uint64
	Heap1G         bool
	ICache         bool
	TextHuge       bool
	MemhogFraction float64
	THPOff         bool

	// OS cadences that run during warmup. ContextSwitchEvery is absent:
	// context switches are deferred to the measured phase.
	PromoteScanEvery int
	SplinterEvery    int

	CoRunSliceRefs int
}

// WarmupSignature computes the signature of this config with defaults
// applied, so explicit and defaulted spellings of the same machine
// agree.
func (c Config) WarmupSignature() WarmupSignature {
	d := c.withDefaults()
	co := ""
	if d.CoRunner != nil {
		co = fmt.Sprintf("%+v", *d.CoRunner)
	}
	return WarmupSignature{
		Workload:         fmt.Sprintf("%+v", d.Workload),
		CoRunner:         co,
		Seed:             d.Seed,
		WarmupRefs:       d.WarmupRefs,
		MemBytes:         d.MemBytes,
		Heap1G:           d.Heap1G,
		ICache:           d.ICache,
		TextHuge:         d.TextHuge,
		MemhogFraction:   d.MemhogFraction,
		THPOff:           d.THPOff,
		PromoteScanEvery: d.PromoteScanEvery,
		SplinterEvery:    d.SplinterEvery,
		CoRunSliceRefs:   d.CoRunSliceRefs,
	}
}

// cloneOS deep-copies the OS half of the machine into dst: RNG position,
// physical memory, fragmentation, manager and every address space, and
// the workload generators. After it returns, dst.proc is the clone's
// main process and dst's manager hooks are still unwired.
func (m *Machine) cloneOS(dst *Machine) {
	// Join any in-flight lookahead generation (the workers mutate m.gen)
	// and carry unconsumed pre-generated records over to the clone.
	m.settle()
	dst.batch.cur = m.batch.cur.clone()
	dst.batch.next = m.batch.next.clone()
	dst.rngSrc = m.rngSrc.Clone()
	dst.rng = rand.New(dst.rngSrc)
	dst.buddy = m.buddy.Clone()
	var comp osmm.Compactor
	if m.hog != nil {
		dst.hog = m.hog.Clone(dst.buddy, dst.rng)
		comp = dst.hog
	}
	dst.mgr = m.mgr.Clone(dst.buddy, dst.rng, comp)
	dst.proc = dst.mgr.Process(mainASID)
	dst.gen = m.gen.Clone()
	if m.coGens != nil {
		dst.coGens = make([]*workload.Generator, len(m.coGens))
		for i, g := range m.coGens {
			dst.coGens[i] = g.Clone()
		}
	}
	dst.schedule = m.schedule // built once from the profile, never mutated
}

// newPT maps a page table of this machine to its counterpart in the
// cloned manager, for rewiring cloned page walkers.
func (m *Machine) newPT(clonedMgr *osmm.Manager, old *pagetable.Table) *pagetable.Table {
	if old == m.proc.PT {
		return clonedMgr.Process(mainASID).PT
	}
	if m.cfg.CoRunner != nil && old == m.mgr.Process(coASID).PT {
		return clonedMgr.Process(coASID).PT
	}
	// Walkers only ever point at a managed process's table; reaching
	// here would mean a table leaked from outside the machine.
	panic("machine: walker table belongs to no managed process")
}

// clone deep-copies the whole machine — OS state, warm
// microarchitectural state, and every attached hook — and rewires every
// cross-component reference to the clone's own parts: the cloned
// recorder replaces the original in every subsystem's metrics mirror,
// and the cloned checker audits the clone's caches and directory.
func (m *Machine) clone() *Machine {
	c := &Machine{
		cfg:               m.cfg,
		nCores:            m.nCores,
		superTLBThreshold: m.superTLBThreshold,
		speculates:        m.speculates,
		globalRef:         m.globalRef,
		curRef:            m.curRef,
		l2Lookups:         m.l2Lookups,
		superRefs:         m.superRefs,
		dropTFT:           m.dropTFT,
		spike:             append([]addr.PAddr(nil), m.spike...),
	}
	m.cloneOS(c)

	c.l1s = make([]core.L1Cache, m.nCores)
	c.seesaws = make([]*core.Seesaw, m.nCores)
	for i, l1 := range m.l1s {
		cl := l1.Clone()
		c.l1s[i] = cl
		if s, ok := cl.(*core.Seesaw); ok {
			c.seesaws[i] = s
		}
	}
	if m.cfg.ICache {
		c.l1is = make([]core.L1Cache, m.nCores)
		c.iseesaws = make([]*core.Seesaw, m.nCores)
		for i, l1i := range m.l1is {
			cl := l1i.Clone()
			c.l1is[i] = cl
			if s, ok := cl.(*core.Seesaw); ok {
				c.iseesaws[i] = s
			}
		}
	}
	for _, h := range m.hiers {
		w := h.Walker()
		c.hiers = append(c.hiers, h.Clone(w.Clone(m.newPT(c.mgr, w.Table))))
	}
	c.wireSuperFills()
	c.cohSys = m.cohSys.Clone(c.cohL1s())
	for _, cm := range m.cpus {
		c.cpus = append(c.cpus, cm.Clone())
	}
	c.wireFast()
	acct := *m.acct
	c.acct = &acct

	if m.Hooks.Injector != nil {
		c.Hooks.Injector = m.Hooks.Injector.Clone()
	}
	if m.Hooks.Metrics != nil {
		c.attachMetrics(m.Hooks.Metrics.Clone())
		copy(c.lastWidth, m.lastWidth)
	}
	if m.Hooks.Checker != nil {
		chk := m.Hooks.Checker.Clone(check.Wiring{
			L1s: c.cohL1s(), Hiers: c.hiers, Seesaws: c.seesaws, ISeesaws: c.iseesaws,
			Coh: c.cohSys, Mgr: c.mgr,
		})
		chk.Metrics = c.Hooks.Metrics
		c.Hooks.Checker = chk
	}
	c.mgr.OnInvlpg = c.onInvlpg
	c.mgr.OnPromote = c.onPromote
	return c
}

// A Snapshot is a frozen deep copy of a machine, typically taken at the
// warmup boundary. Each Resume yields an independent runnable machine,
// so one snapshot can seed any number of measured runs.
type Snapshot struct {
	m *Machine
}

// Snapshot deep-copies the machine's current state, hooks included:
// each resumed copy gets its own metrics recorder, invariant checker,
// and fault injector, all positioned exactly where the original's were,
// so a resumed run continues bit-identically to the uninterrupted one.
func (m *Machine) Snapshot() (*Snapshot, error) {
	return &Snapshot{m: m.clone()}, nil
}

// Resume returns an independent machine continuing from the snapshot's
// state. The snapshot itself is not consumed: every call returns a
// fresh copy.
func (s *Snapshot) Resume() *Machine {
	return s.m.clone()
}

// Fork creates a machine for cfg that inherits this machine's warmed OS
// state — RNG position, fragmented physical memory, page tables, mapped
// regions, generator positions — and builds the microarchitecture
// (caches, TLBs, coherence, CPUs, hooks) fresh from cfg. Because warmup
// never touches microarchitectural state, the fork is bit-identical to
// a cold run of cfg that executed the same warmup itself.
//
// The receiver must sit exactly at the warmup boundary (Warmup just
// completed, Measure not started) and cfg's WarmupSignature must equal
// the receiver's; otherwise Fork fails. Unlike Snapshot, Fork accepts
// any hooks in cfg — metrics, checker, and faults all start fresh in
// the measured phase, exactly as they would in a cold run.
func (m *Machine) Fork(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m.globalRef != m.cfg.WarmupRefs {
		return nil, fmt.Errorf("sim: fork is only valid at the warmup boundary (at ref %d, boundary is %d)",
			m.globalRef, m.cfg.WarmupRefs)
	}
	if got, want := cfg.WarmupSignature(), m.cfg.WarmupSignature(); got != want {
		return nil, fmt.Errorf("sim: fork config's warmup signature disagrees with the warmed machine's")
	}
	f := &Machine{
		cfg:       cfg.withDefaults(),
		nCores:    m.nCores,
		globalRef: m.globalRef,
	}
	m.cloneOS(f)
	if err := f.buildUarch(); err != nil {
		return nil, err
	}
	return f, nil
}
