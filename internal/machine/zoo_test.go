package machine

import (
	"bytes"
	"context"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/faults"
)

// TestZooConformance is the registry conformance battery: every design
// in the zoo — present and future — must pass the machine-level
// contracts the harness layers lean on. The legs here cover
// build-by-name and clone deep-copy isolation; the two heavyweight legs
// run registry-wide in their own tests (fork-equals-cold in
// TestForkEqualsCold, the mid-epoch snapshot codec round-trip in
// TestCodecRoundTripMidEpoch), and the chaos leg below drives every
// fault schedule under the online invariant checker.
func TestZooConformance(t *testing.T) {
	for _, name := range DesignNames() {
		kind := CacheKind(name)
		t.Run(name, func(t *testing.T) {
			t.Run("build-by-name", func(t *testing.T) {
				cfg := testConfig(t, kind)
				m, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				// The built L1 must identify as the registered design, or
				// the snapshot codec cannot route its state.
				dn, ok := m.l1s[0].(core.DesignNamed)
				if !ok {
					t.Fatalf("%T does not implement core.DesignNamed", m.l1s[0])
				}
				if dn.DesignName() != name {
					t.Fatalf("built L1 identifies as %q, want %q", dn.DesignName(), name)
				}
			})

			t.Run("clone-deep-copy", func(t *testing.T) {
				// A snapshot taken at the warmup boundary must be isolated
				// from the machine it was taken from: running the original
				// to completion cannot change what the snapshot resumes to.
				ctx := context.Background()
				cfg := testConfig(t, kind)
				m := warmMaster(t, cfg)
				snap, err := m.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				before := reportText(t, snap.Resume())
				if err := m.Measure(ctx); err != nil {
					t.Fatal(err)
				}
				after := reportText(t, snap.Resume())
				if !bytes.Equal(before, after) {
					t.Errorf("running the original changed the snapshot's resume — clone shares state:\nbefore:\n%s\nafter:\n%s",
						before, after)
				}
			})

			t.Run("chaos-invariants", func(t *testing.T) {
				if testing.Short() {
					t.Skip("chaos leg is a multi-schedule run")
				}
				for _, sched := range faults.Schedules() {
					cfg := testConfig(t, kind)
					cfg.Refs = 12_000
					cfg.WarmupRefs = 8_000
					cfg.CheckInvariants = true
					cfg.Faults = &faults.Config{Schedule: sched, Every: 3_000}
					if err := cfg.Validate(); err != nil {
						t.Fatal(err)
					}
					m, err := Build(cfg)
					if err != nil {
						t.Fatal(err)
					}
					ctx := context.Background()
					if err := m.Warmup(ctx); err != nil {
						t.Fatal(err)
					}
					if err := m.Measure(ctx); err != nil {
						t.Fatal(err)
					}
					r, err := m.Report()
					if err != nil {
						t.Fatal(err)
					}
					if r.Faults == nil || r.Faults.Injected == 0 {
						t.Errorf("schedule %s injected no faults", sched)
					}
					if r.Check == nil || r.Check.Checks == 0 {
						t.Errorf("schedule %s ran no invariant checks", sched)
					} else if r.Check.Violations != 0 {
						t.Errorf("schedule %s: %d invariant violations", sched, r.Check.Violations)
					}
				}
			})
		})
	}
}
