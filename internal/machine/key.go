package machine

import "fmt"

// CanonicalKey returns a deterministic string identity for this config:
// two configs with equal keys describe the same simulation and — because
// the machine is deterministic — produce the same Report. It is the
// single source of truth for cell identity, shared by the runner's
// in-memory duplicate-cell cache and the disk store's content addressing
// (internal/store hashes it together with the report schema version).
//
// Configs replaying an explicit trace are not canonicalizable: the trace
// contents are not folded into the key, so the second return is false
// and the cell must never be deduplicated or cached. The co-runner,
// fault, and metrics pointers are dereferenced so the key depends on
// their values, not their addresses.
func (c Config) CanonicalKey() (string, bool) {
	if c.Trace != nil {
		return "", false
	}
	co := ""
	if c.CoRunner != nil {
		co = fmt.Sprintf("%+v", *c.CoRunner)
	}
	fa := ""
	if c.Faults != nil {
		fa = fmt.Sprintf("%+v", *c.Faults)
	}
	me := ""
	if c.Metrics != nil {
		me = fmt.Sprintf("%+v", *c.Metrics)
	}
	d := c
	d.CoRunner = nil
	d.Faults = nil
	d.Metrics = nil
	return fmt.Sprintf("%+v|co=%s|faults=%s|metrics=%s", d, co, fa, me), true
}
