package machine

import (
	"bytes"
	"compress/flate"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"seesaw/internal/addr"
	"seesaw/internal/check"
	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/cpu"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/osmm"
	"seesaw/internal/physmem"
	"seesaw/internal/tlb"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
	"seesaw/internal/xrand"
)

// SnapshotSchemaVersion identifies the binary snapshot wire format.
// Bump it whenever the encoded state's shape or meaning changes — any
// new field in a component State struct, a changed serialization order,
// a semantic change to how state is applied. The store folds it into
// every snapshot key and prunes entries whose header disagrees, so old
// rungs are recomputed rather than mis-resumed.
const SnapshotSchemaVersion = 1

// snapMagic opens every encoded snapshot. The leading byte is
// deliberately non-ASCII so a snapshot is never mistaken for text.
var snapMagic = [8]byte{0x9e, 'S', 'E', 'E', 'S', 'N', 'A', 'P'}

// snapHeaderLen is magic(8) + version(2) + payload length(8) + CRC32(4).
const snapHeaderLen = 8 + 2 + 8 + 4

func crc32Of(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// maxSnapPayload bounds the declared payload length so a corrupt header
// cannot make the decoder allocate unbounded memory.
const maxSnapPayload = 1 << 32

// Typed snapshot decoding errors. Callers (the store's GC, the ladder's
// resume path, the fuzz battery) distinguish them with errors.Is; none
// of the decode paths panic on hostile input.
var (
	// ErrSnapshotTruncated: the data ends before the header or the
	// declared payload does.
	ErrSnapshotTruncated = errors.New("machine: truncated snapshot")
	// ErrSnapshotCorrupt: bad magic, checksum mismatch, undecodable
	// payload, or decoded state that contradicts its own config.
	ErrSnapshotCorrupt = errors.New("machine: corrupt snapshot")
	// ErrSnapshotSchema: the snapshot was written by a different
	// SnapshotSchemaVersion.
	ErrSnapshotSchema = errors.New("machine: snapshot schema mismatch")
)

// epochState is one epoch buffer's unconsumed pre-generated records.
type epochState struct {
	Start  int
	Recs   []trace.Record
	IVAs   []addr.VAddr
	Jumps  []bool
	ICache bool
}

func epochStateOf(e epochBuf) epochState {
	c := e.clone() // unconsumed suffix only
	return epochState{Start: c.start, Recs: c.recs, IVAs: c.ivas, Jumps: c.jumps, ICache: c.icache}
}

func (s epochState) buf() (epochBuf, error) {
	if len(s.IVAs) != len(s.Recs) || len(s.Jumps) != len(s.Recs) {
		return epochBuf{}, fmt.Errorf("pre-generated record arrays disagree (%d recs, %d ivas, %d jumps)",
			len(s.Recs), len(s.IVAs), len(s.Jumps))
	}
	return epochBuf{start: s.Start, recs: s.Recs, ivas: s.IVAs, jumps: s.Jumps, icache: s.ICache}, nil
}

// snapshotState is the complete serialized machine: the config it was
// built from plus every component's mutable state. Decoding rebuilds
// the machine with Build (which re-creates all config-derived structure
// and wiring) and then restores each component in place, so every
// cross-component pointer — walker to page table, memhog to buddy,
// recorder into every subsystem — stays valid without rewiring.
type snapshotState struct {
	// Cfg rides the wire as configWire so snapshots written when
	// CacheKind was an int enum still decode (see configwire.go).
	Cfg configWire

	GlobalRef int
	CurRef    uint64
	L2Lookups uint64
	SuperRefs uint64
	Spike     []addr.PAddr

	RNG    xrand.SourceState
	Buddy  physmem.BuddyState
	Hog    *physmem.MemhogState
	Mgr    osmm.ManagerState
	Gen    workload.GeneratorState
	CoGens []workload.GeneratorState

	L1s   []core.L1State
	L1Is  []core.L1State
	Hiers []tlb.HierarchyState
	CPUs  []cpu.CoreState
	Coh   coherence.SystemState
	Acct  energy.Account

	Injector  *faults.InjectorState
	Metrics   *metrics.RecorderState
	Checker   *check.State
	LastWidth []int

	BatchCur  epochState
	BatchNext epochState
}

// captureState serializes the machine. The receiver must be settled (no
// in-flight lookahead generation); Snapshot's clone guarantees that.
func (m *Machine) captureState() (*snapshotState, error) {
	st := &snapshotState{
		Cfg:       wireOf(m.cfg),
		GlobalRef: m.globalRef,
		CurRef:    m.curRef,
		L2Lookups: m.l2Lookups,
		SuperRefs: m.superRefs,
		Spike:     append([]addr.PAddr(nil), m.spike...),
		RNG:       m.rngSrc.State(),
		Buddy:     m.buddy.State(),
		Mgr:       m.mgr.State(),
		Gen:       m.gen.State(),
		Acct:      *m.acct,
		LastWidth: append([]int(nil), m.lastWidth...),
		BatchCur:  epochStateOf(m.batch.cur),
		BatchNext: epochStateOf(m.batch.next),
	}
	if m.hog != nil {
		hs := m.hog.State()
		st.Hog = &hs
	}
	for _, g := range m.coGens {
		st.CoGens = append(st.CoGens, g.State())
	}
	for _, l1 := range m.l1s {
		st.L1s = append(st.L1s, core.StateOf(l1))
	}
	for _, il1 := range m.l1is {
		st.L1Is = append(st.L1Is, core.StateOf(il1))
	}
	for _, h := range m.hiers {
		st.Hiers = append(st.Hiers, h.State())
	}
	for _, c := range m.cpus {
		cs, err := cpu.StateOf(c)
		if err != nil {
			return nil, err
		}
		st.CPUs = append(st.CPUs, cs)
	}
	st.Coh = m.cohSys.State()
	if m.Hooks.Injector != nil {
		is := m.Hooks.Injector.State()
		st.Injector = &is
	}
	if m.Hooks.Metrics != nil {
		ms := m.Hooks.Metrics.State()
		st.Metrics = &ms
	}
	if m.Hooks.Checker != nil {
		cs := m.Hooks.Checker.State()
		st.Checker = &cs
	}
	return st, nil
}

// applyState restores a captured state onto a machine freshly built
// from the same config. Every component is mutated in place; any
// disagreement between the state and the built machine's shape is a
// corruption error, never a panic.
func (m *Machine) applyState(st *snapshotState) error {
	total := m.cfg.WarmupRefs + m.cfg.Refs
	if st.GlobalRef < 0 || st.GlobalRef > total {
		return fmt.Errorf("reference cursor %d outside [0,%d]", st.GlobalRef, total)
	}
	if err := m.rngSrc.SetState(st.RNG); err != nil {
		return err
	}
	if err := m.buddy.SetState(st.Buddy); err != nil {
		return err
	}
	if (st.Hog != nil) != (m.hog != nil) {
		return fmt.Errorf("state and config disagree about a memhog")
	}
	if st.Hog != nil {
		if err := m.hog.SetState(*st.Hog); err != nil {
			return err
		}
	}
	if err := m.mgr.SetState(st.Mgr); err != nil {
		return err
	}
	if err := m.gen.SetState(st.Gen); err != nil {
		return err
	}
	if len(st.CoGens) != len(m.coGens) {
		return fmt.Errorf("state has %d co-runner generators, machine has %d", len(st.CoGens), len(m.coGens))
	}
	for i, gs := range st.CoGens {
		if err := m.coGens[i].SetState(gs); err != nil {
			return err
		}
	}
	if len(st.L1s) != len(m.l1s) || len(st.L1Is) != len(m.l1is) ||
		len(st.Hiers) != len(m.hiers) || len(st.CPUs) != len(m.cpus) {
		return fmt.Errorf("state sized for a different core count")
	}
	for i, ls := range st.L1s {
		if err := core.SetL1State(m.l1s[i], ls); err != nil {
			return err
		}
	}
	for i, ls := range st.L1Is {
		if err := core.SetL1State(m.l1is[i], ls); err != nil {
			return err
		}
	}
	for i, hs := range st.Hiers {
		if err := m.hiers[i].SetState(hs); err != nil {
			return err
		}
	}
	for i, cs := range st.CPUs {
		if err := cpu.SetModelState(m.cpus[i], cs); err != nil {
			return err
		}
	}
	if err := m.cohSys.SetState(st.Coh); err != nil {
		return err
	}
	*m.acct = st.Acct

	if (st.Injector != nil) != (m.Hooks.Injector != nil) {
		return fmt.Errorf("state and config disagree about a fault injector")
	}
	if st.Injector != nil {
		if err := m.Hooks.Injector.SetState(*st.Injector); err != nil {
			return err
		}
	}
	if (st.Metrics != nil) != (m.Hooks.Metrics != nil) {
		return fmt.Errorf("state and config disagree about a metrics recorder")
	}
	if st.Metrics != nil {
		if err := m.Hooks.Metrics.SetState(*st.Metrics); err != nil {
			return err
		}
		if len(st.LastWidth) != len(m.lastWidth) {
			return fmt.Errorf("probe-width tracker sized for %d cores, machine has %d", len(st.LastWidth), len(m.lastWidth))
		}
		copy(m.lastWidth, st.LastWidth)
	}
	if (st.Checker != nil) != (m.Hooks.Checker != nil) {
		return fmt.Errorf("state and config disagree about the invariant checker")
	}
	if st.Checker != nil {
		if err := m.Hooks.Checker.SetState(*st.Checker); err != nil {
			return err
		}
	}

	for _, b := range [2]epochState{st.BatchCur, st.BatchNext} {
		for _, rec := range b.Recs {
			if int(rec.TID) >= m.nCores {
				return fmt.Errorf("pre-generated record names thread %d of %d cores", rec.TID, m.nCores)
			}
		}
	}
	cur, err := st.BatchCur.buf()
	if err != nil {
		return err
	}
	next, err := st.BatchNext.buf()
	if err != nil {
		return err
	}
	if len(cur.recs) > 0 && cur.start != st.GlobalRef {
		return fmt.Errorf("pre-generated records start at %d, cursor is at %d", cur.start, st.GlobalRef)
	}
	if len(next.recs) > 0 && next.start != cur.start+len(cur.recs) {
		return fmt.Errorf("lookahead epoch out of order")
	}
	m.batch.cur, m.batch.next = cur, next

	m.globalRef = st.GlobalRef
	m.curRef = st.CurRef
	m.l2Lookups = st.L2Lookups
	m.superRefs = st.SuperRefs
	m.spike = append(m.spike[:0], st.Spike...)
	return nil
}

// MarshalBinary encodes the snapshot into the versioned binary format:
// an integrity header (magic, SnapshotSchemaVersion, payload length,
// CRC32) over a flate-compressed gob of the complete machine state,
// config included. Encoding is deterministic — no map ranges reach the
// encoder — so equal snapshots produce equal bytes.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	st, err := s.m.captureState()
	if err != nil {
		return nil, err
	}
	var payload bytes.Buffer
	fw, err := flate.NewWriter(&payload, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(fw).Encode(st); err != nil {
		return nil, fmt.Errorf("machine: encoding snapshot: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	out := make([]byte, snapHeaderLen+payload.Len())
	copy(out, snapMagic[:])
	binary.BigEndian.PutUint16(out[8:], SnapshotSchemaVersion)
	binary.BigEndian.PutUint64(out[10:], uint64(payload.Len()))
	binary.BigEndian.PutUint32(out[18:], crc32Of(payload.Bytes()))
	copy(out[snapHeaderLen:], payload.Bytes())
	return out, nil
}

// PeekSnapshotVersion reads a snapshot's schema version from its header
// without decoding the payload — the store's GC pass uses it to prune
// stale rungs by reading a handful of bytes per file.
func PeekSnapshotVersion(data []byte) (int, error) {
	if len(data) < snapHeaderLen {
		return 0, ErrSnapshotTruncated
	}
	if !bytes.Equal(data[:8], snapMagic[:]) {
		return 0, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	return int(binary.BigEndian.Uint16(data[8:10])), nil
}

// UnmarshalBinary decodes data into s: the header is verified (magic,
// schema version, length, checksum), the state payload decoded, a fresh
// machine built from the embedded config, and every component restored
// in place. All failures return typed errors (ErrSnapshotTruncated,
// ErrSnapshotSchema, ErrSnapshotCorrupt); hostile input never panics
// and never yields a machine that would silently mis-resume.
func (s *Snapshot) UnmarshalBinary(data []byte) (err error) {
	v, err := PeekSnapshotVersion(data)
	if err != nil {
		return err
	}
	if v != SnapshotSchemaVersion {
		return fmt.Errorf("%w: snapshot v%d, binary v%d", ErrSnapshotSchema, v, SnapshotSchemaVersion)
	}
	plen := binary.BigEndian.Uint64(data[10:18])
	if plen > maxSnapPayload {
		return fmt.Errorf("%w: declared payload of %d bytes", ErrSnapshotCorrupt, plen)
	}
	if uint64(len(data)-snapHeaderLen) < plen {
		return ErrSnapshotTruncated
	}
	payload := data[snapHeaderLen : snapHeaderLen+int(plen)]
	if crc32Of(payload) != binary.BigEndian.Uint32(data[18:22]) {
		return fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	// gob and flate are not guaranteed panic-free on adversarial input;
	// the battery fuzzes this path, so convert panics into the typed
	// corruption error instead of crashing the decoder's process.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: decode panic: %v", ErrSnapshotCorrupt, r)
		}
	}()
	var st snapshotState
	fr := flate.NewReader(bytes.NewReader(payload))
	if derr := gob.NewDecoder(io.LimitReader(fr, maxSnapPayload)).Decode(&st); derr != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotCorrupt, derr)
	}
	cfg, cerr := st.Cfg.config()
	if cerr != nil {
		return fmt.Errorf("%w: embedded config: %v", ErrSnapshotCorrupt, cerr)
	}
	m, berr := Build(cfg)
	if berr != nil {
		return fmt.Errorf("%w: embedded config: %v", ErrSnapshotCorrupt, berr)
	}
	if aerr := m.applyState(&st); aerr != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotCorrupt, aerr)
	}
	s.m = m
	return nil
}

// UnmarshalSnapshot decodes an encoded snapshot. See
// Snapshot.UnmarshalBinary for the error contract.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// Ref returns the reference index the snapshot was taken at — the rung
// depth when it lives in the store's ladder.
func (s *Snapshot) Ref() int { return s.m.globalRef }

// Signature returns the warmup signature of the snapshot's config.
func (s *Snapshot) Signature() WarmupSignature { return s.m.cfg.WarmupSignature() }

// Ref returns the machine's current reference index: references
// [0, WarmupRefs) are the warmup phase, [WarmupRefs, WarmupRefs+Refs)
// the measured phase.
func (m *Machine) Ref() int { return m.globalRef }

// WarmupTo advances the warmup phase to reference n (at most the warmup
// boundary), so ladder climbers can warm in rung-sized chunks and
// snapshot between them. It is a no-op if the machine is already at or
// past n; Warmup(ctx) is WarmupTo(ctx, WarmupRefs).
func (m *Machine) WarmupTo(ctx context.Context, n int) error {
	if n > m.cfg.WarmupRefs {
		return fmt.Errorf("sim: warmup target %d beyond the warmup boundary %d", n, m.cfg.WarmupRefs)
	}
	if n <= m.globalRef {
		return nil
	}
	return m.run(ctx, 0, n)
}

// PrefixHash is the content address of this config's warmup prefix: hex
// SHA-256 over the warmup signature and the snapshot schema version.
// Two configs share a prefix hash exactly when a warmup rung computed
// for one resumes the other bit-identically, so the store keys machine
// snapshots by (PrefixHash, refs). Folding SnapshotSchemaVersion in
// means a binary whose snapshot format changed looks at fresh keys.
func (c Config) PrefixHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "seesaw-snap-v%d|%+v", SnapshotSchemaVersion, c.WarmupSignature())
	return hex.EncodeToString(h.Sum(nil))
}
