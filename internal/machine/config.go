// Package machine owns the simulated machine: construction and wiring
// of physical memory, the OS memory manager and page tables, per-core
// TLB hierarchies, TFTs, L1 data/instruction caches, the coherent LLC,
// and CPU timing models, plus the optional fault/check/metrics hooks.
// Build constructs a Machine from a Config; Step advances it one memory
// reference; Warmup and Measure drive the two execution phases; and
// Snapshot/Resume/Fork deep-copy warm state so sweeps can share one
// warmed OS image across many measured design points (see snapshot.go).
//
// internal/sim re-exports Config and Report and keeps the one-call
// Run/RunContext orchestration; everything about how the machine is put
// together lives here.
package machine

import (
	"fmt"

	"seesaw/internal/cache"
	"seesaw/internal/core"
	"seesaw/internal/cpu"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/tft"
	"seesaw/internal/trace"
	"seesaw/internal/workload"

	"seesaw/internal/coherence"
)

// CacheKind names the L1 design under test. Valid values are the
// design registry's names (core.DesignNames); the zero value selects
// the baseline. It was an int enum through snapshot/report schema v1 —
// ParseCacheKind and the snapshot codec still accept the legacy
// encodings — and is now an open string so designs register instead of
// extending a switch.
type CacheKind string

const (
	// KindBaseline is the conventional VIPT L1.
	KindBaseline CacheKind = "baseline"
	// KindSeesaw is the paper's design.
	KindSeesaw CacheKind = "seesaw"
	// KindPIPT is the serial physically-indexed alternative (Fig 14).
	KindPIPT CacheKind = "pipt"
	// KindVespa is the authors' precursor design: superpage-aware VIPT
	// with the page size taken from the TLB instead of a TFT.
	KindVespa CacheKind = "vespa"
)

// String implements fmt.Stringer. The zero value renders as "baseline"
// so the canonical keys of defaulted and explicit spellings agree (and
// match the keys the int-enum encoding produced).
func (k CacheKind) String() string {
	if k == "" {
		return string(KindBaseline)
	}
	return string(k)
}

// design resolves the registry descriptor, treating "" as baseline.
// The bool is false for names no registered design claims.
func (k CacheKind) design() (*core.Design, bool) {
	return core.LookupDesign(k.String())
}

// ParseCacheKind resolves a design name against the registry. Unknown
// names are rejected with a typed *ConfigError (rule "unknown-design")
// rather than silently falling back to the baseline; the empty string
// is the baseline, as everywhere else.
func ParseCacheKind(name string) (CacheKind, error) {
	k := CacheKind(name)
	if _, ok := k.design(); !ok {
		return "", configErr("CacheKind", k.String(), RuleUnknownDesign,
			"no registered design is named %q (have %v)", k.String(), core.SortedDesignNames())
	}
	return CacheKind(k.String()), nil
}

// CacheKindFromLegacy maps an int CacheKind, as stored by pre-registry
// snapshots and checkpoints, to its design name.
func CacheKindFromLegacy(v int) (CacheKind, bool) {
	d, ok := core.DesignByLegacy(v)
	if !ok {
		return "", false
	}
	return CacheKind(d.Name), true
}

// DesignNames returns the registered design names in the registry's
// canonical order — what -cache flags and wire specs accept.
func DesignNames() []string { return core.DesignNames() }

// DesignInfo is the slice of registry metadata the harness layers key
// off when enumerating the zoo: menus (evolve filters on Speculates),
// sweep matrices (Display labels, chaos knob overrides), and docs. It
// deliberately omits the builder/codec hooks — those stay behind the
// machine boundary.
type DesignInfo struct {
	Name       CacheKind
	Display    string
	UsesTFT    bool
	Speculates bool
	FastPath   bool
	// Chaos knob overrides the chaos sweep applies to this design's
	// cells (0/false = none).
	ChaosSerialTLB int
	ChaosSmallTLB  bool
	ChaosL1Ways    int
}

// DesignInfos returns every registered design's metadata in
// registration order.
func DesignInfos() []DesignInfo {
	ds := core.Designs()
	infos := make([]DesignInfo, len(ds))
	for i, d := range ds {
		infos[i] = DesignInfo{
			Name:           CacheKind(d.Name),
			Display:        d.Display,
			UsesTFT:        d.UsesTFT,
			Speculates:     d.Speculates,
			FastPath:       d.FastPath,
			ChaosSerialTLB: d.ChaosSerialTLB,
			ChaosSmallTLB:  d.ChaosSmallTLB,
			ChaosL1Ways:    d.ChaosL1Ways,
		}
	}
	return infos
}

// Config describes one simulation.
type Config struct {
	Workload workload.Profile
	Seed     int64
	// Refs is the number of measured memory references to replay (0
	// defaults to 200k). A negative value means an explicit zero: replay
	// nothing and report an empty timeline — the escape hatch callers
	// whose own zero value must mean "default" (experiments.Options, cmd
	// flags) use to express a genuine zero.
	Refs int
	// WarmupRefs prepends an OS-only warmup phase of this many
	// references before the measured phase: the workload generator and
	// the OS (promotion scans, splinters, buddy allocator) advance, but
	// no cache, TLB, or CPU state is touched and nothing is measured.
	// All periodic OS activity is keyed on the global reference index,
	// so WarmupRefs=0 reproduces the unphased simulator exactly. Runs
	// that agree on every warmup-affecting field (see WarmupSignature)
	// pass through identical warmup states, which is what lets a sweep
	// fork many measured cells from one warmed snapshot.
	WarmupRefs int
	// Trace, when non-nil, replays these pre-recorded references (e.g.
	// from cmd/seesaw-tracegen) instead of generating them online. The
	// trace must have been produced from the same Workload profile and
	// seed-independent region layout, since addresses are interpreted
	// against this run's mappings. Refs is clamped to the trace length.
	// Traces cannot be combined with WarmupRefs.
	Trace []trace.Record

	CacheKind CacheKind
	L1Size    uint64
	L1Ways    int
	// Partitions: 0 = SEESAW default (4-way partitions).
	Partitions int
	Policy     core.InsertionPolicy
	WayPredict bool
	// Replacement selects the L1 victim policy (LRU default, SRRIP for
	// the replacement ablation).
	Replacement cache.Replacement
	TFT         tft.Config
	// SerialTLBCycles applies to PIPT only.
	SerialTLBCycles int
	// SmallTLB replaces the normal TLB hierarchy with the reduced one a
	// serial PIPT design forces (translation on the critical path must
	// resolve in one cycle) — the Fig 14 trade-off.
	SmallTLB bool

	FreqGHz float64
	// CPUKind is "ooo" (Sandybridge-like) or "inorder" (Atom-like).
	CPUKind string
	// SchedulerAlwaysFast / SchedulerAlwaysSlow override the paper's
	// counter-gated speculation policy (ablation).
	SchedulerAlwaysFast bool
	SchedulerAlwaysSlow bool
	// SpecFastThreshold overrides the counter heuristic's trigger: the
	// scheduler speculates the fast hit latency when the 2MB L1 TLB
	// holds at least this many valid entries. 0 selects the paper's
	// quarter-full rule (superpage-TLB entries / 4); the override only
	// matters under the default counter policy (neither
	// SchedulerAlwaysFast nor SchedulerAlwaysSlow set). This is one of
	// the design-space knobs cmd/seesaw-evolve tunes.
	SpecFastThreshold int

	CoherenceMode coherence.Mode

	// MemBytes is simulated physical memory (default 1GB; 4GB when
	// Heap1G is set).
	MemBytes uint64
	// Heap1G backs the workload's heap with explicit 1GB superpages
	// (hugetlbfs-style) instead of transparent 2MB pages — the paper's
	// "generalizes readily to 1GB superpages" extension.
	Heap1G bool
	// ICache models the private 32KB L1 instruction caches (Table II)
	// and the instruction-fetch stream, using the same design
	// (baseline/SEESAW) as the data cache — the paper's proposed
	// instruction-side application of SEESAW.
	ICache bool
	// TextHuge maps the text region with transparent 2MB pages (Linux's
	// hugepage-text); without it code is 4KB-backed and SEESAW-I has no
	// fast-path opportunities on fetches.
	TextHuge bool
	// MemhogFraction fragments physical memory before the workload maps
	// its footprint (Fig 3, Fig 12).
	MemhogFraction float64
	// THP disables transparent superpages entirely when false.
	THPOff bool

	// OS activity (in references; 0 disables).
	ContextSwitchEvery int
	PromoteScanEvery   int
	SplinterEvery      int

	// Prefetch enables a next-line L1 prefetcher: every demand miss also
	// fetches the following line (within the same 4KB frame, as hardware
	// prefetchers do). Prefetches run off the critical path; their
	// fills and coherence traffic are fully modeled. Used to check that
	// SEESAW's benefits survive a prefetcher's higher hit rates.
	Prefetch bool

	// Faults, when non-nil, injects a deterministic fault schedule into
	// the run: mid-run splinters, invlpg bursts, forced context
	// switches, promotion storms, and memory-pressure spikes (see
	// internal/faults). The injector draws from its own seeded RNG, so a
	// faulted run replays the same workload as its clean twin.
	Faults *faults.Config
	// CheckInvariants enables the online invariant checker (see
	// internal/check): after every reference the TLB/TFT/cache/directory
	// state is audited against page-table ground truth, and violations
	// are reported in Report.Check. Roughly doubles runtime; intended
	// for chaos sweeps and debugging, not performance measurement.
	CheckInvariants bool

	// Metrics, when non-nil, enables the observability layer (see
	// internal/metrics): per-core counters sampled into an epoch
	// time-series plus a bounded structured event ring that the fault
	// injector and invariant checker annotate. Report.Metrics carries
	// the result. Nil — the default — costs one nil check per emit site
	// and zero allocations.
	Metrics *metrics.Config

	// CoRunner, when non-nil, makes context switches real: every
	// ContextSwitchEvery references each application core switches to a
	// second process (ASID 2) running this profile for CoRunSliceRefs
	// references, then switches back. TLBs are ASID-tagged and keep the
	// application's entries across the switch; the TFT is not, and is
	// flushed (Section IV-C3). The co-runner's time is part of the
	// measured timeline, as in the paper's traces ("instructions of
	// other applications running in parallel").
	CoRunner       *workload.Profile
	CoRunSliceRefs int

	Prices energy.Prices
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Refs == 0 {
		c.Refs = 200_000
	} else if c.Refs < 0 {
		c.Refs = 0
	}
	if c.Trace != nil && c.Refs > len(c.Trace) {
		c.Refs = len(c.Trace)
	}
	if c.WarmupRefs < 0 {
		c.WarmupRefs = 0
	}
	if c.L1Size == 0 {
		c.L1Size = 32 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = int(c.L1Size / (16 << 10) * 4) // 4 ways per 16KB, as Table III
	}
	if c.FreqGHz == 0 {
		c.FreqGHz = 1.33
	}
	if c.CPUKind == "" {
		c.CPUKind = "ooo"
	}
	if c.MemBytes == 0 {
		c.MemBytes = 1 << 30
		if c.Heap1G {
			c.MemBytes = 4 << 30
		}
	}
	if c.TFT.Entries == 0 {
		c.TFT = tft.DefaultConfig()
	}
	if c.Prices == (energy.Prices{}) {
		c.Prices = energy.DefaultPrices()
	}
	if c.ContextSwitchEvery == 0 {
		c.ContextSwitchEvery = 100_000
	}
	if c.PromoteScanEvery == 0 {
		c.PromoteScanEvery = 50_000
	}
	if c.CoRunner != nil && c.CoRunSliceRefs == 0 {
		c.CoRunSliceRefs = 2_000
	}
	return c
}

// l1cfg renders the defaults-applied config's data-cache geometry.
func (c Config) l1cfg() core.Config {
	return core.Config{
		SizeBytes: c.L1Size, Ways: c.L1Ways, Partitions: c.Partitions,
		FreqGHz: c.FreqGHz, TFT: c.TFT, Policy: c.Policy,
		WayPredict: c.WayPredict, SerialTLBCycles: c.SerialTLBCycles,
		Replacement: c.Replacement,
	}
}

// il1cfg renders the instruction cache's geometry: the Table II private
// 32KB 8-way L1I with the design's own default partition split.
func (c Config) il1cfg() core.Config {
	icfg := c.l1cfg()
	icfg.SizeBytes = 32 << 10
	icfg.Ways = 8
	icfg.Partitions = 0
	return icfg
}

// DesignAreaBytes is the design's extra SRAM beyond the L1 storage
// array (SEESAW's TFT; zero for designs without side structures), from
// the registry's area hook — the evolve search's area objective.
func (c Config) DesignAreaBytes() uint64 {
	d := c.withDefaults()
	dsg, ok := d.CacheKind.design()
	if !ok || dsg.AreaBytes == nil {
		return 0
	}
	return dsg.AreaBytes(d.l1cfg())
}

// Validate reports configuration errors — impossible cache geometries,
// unknown CPU kinds, contradictory scheduler overrides, bad fault
// schedules — as errors instead of letting Build panic deep inside a
// constructor. Build calls it first, so callers get a typed error either
// way; commands call it up front to exit with a usage error.
//
// Rejections attributable to a single knob combination come back as a
// *ConfigError carrying a stable Rule identifier (unwrap with
// errors.As); the design-space mutator in internal/evolve uses those to
// prune geometry-impossible genomes. Errors from deeper constructors
// stay untyped.
func (c Config) Validate() (err error) {
	// Constructors validate their own inputs and return errors, but a
	// few deep paths (SRAM latency tables, geometry math) panic on
	// inputs no caller should produce; surface those as errors too.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: invalid config: %v", r)
		}
	}()
	d := c.withDefaults()
	if cerr := d.validateKnobs(); cerr != nil {
		return cerr
	}
	if _, err := cpu.New(d.CPUKind); err != nil {
		return err
	}
	// validateKnobs established the design exists and passed its
	// single-knob rules; the constructor round-trip catches what only
	// geometry math can judge.
	dsg, _ := d.CacheKind.design()
	if _, err = dsg.New(d.l1cfg()); err != nil {
		return err
	}
	if d.ICache {
		if _, err = dsg.New(d.il1cfg()); err != nil {
			return err
		}
	}
	if d.Faults != nil {
		if err := d.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}
