package machine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/workload"
)

// testConfig is a small-but-real cell: fragmented memory, warmup
// cadences that actually fire during the warmup window, and enough
// measured references for every design to diverge if state were copied
// wrong.
func testConfig(t *testing.T, kind CacheKind) Config {
	t.Helper()
	p, err := workload.ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:   p,
		Seed:       42,
		Refs:       30_000,
		WarmupRefs: 20_000,
		CacheKind:  kind,
		L1Size:     32 << 10,
		FreqGHz:    1.33,
		CPUKind:    "ooo",
		MemBytes:   512 << 20,

		MemhogFraction:   0.4,
		PromoteScanEvery: 7_000,
		SplinterEvery:    9_000,
	}
	// Apply the registry's per-design knob overrides (the serial PIPT
	// point only makes sense with its reduced TLB and 4 ways), so the
	// battery exercises each design in its intended configuration.
	if d, ok := kind.design(); ok {
		cfg.SerialTLBCycles = d.ChaosSerialTLB
		cfg.SmallTLB = d.ChaosSmallTLB
		if d.ChaosL1Ways != 0 {
			cfg.L1Ways = d.ChaosL1Ways
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// reportText runs a machine to completion and renders its report.
func reportText(t *testing.T, m *Machine) []byte {
	t.Helper()
	ctx := context.Background()
	if err := m.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Measure(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// warmMaster builds a machine with cfg's warmup signature and runs its
// warmup phase to the boundary.
func warmMaster(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestForkEqualsCold is the tentpole guarantee: a cell forked from a
// warmed machine produces a byte-identical report to a cold run of the
// same config. The master is warmed as the baseline design, then forked
// into every registered design — exactly how a shared-warmup sweep uses
// it, and one leg of the zoo conformance battery (see zoo_test.go).
func TestForkEqualsCold(t *testing.T) {
	ctx := context.Background()
	master := warmMaster(t, testConfig(t, KindBaseline))
	for _, name := range DesignNames() {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t, CacheKind(name))
			cold, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := reportText(t, cold)

			forked, err := master.Fork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := forked.Measure(ctx); err != nil {
				t.Fatal(err)
			}
			r, err := forked.Report()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("forked report differs from cold run:\ncold:\n%s\nforked:\n%s", want, buf.Bytes())
			}
		})
	}
}

// TestForkWithHooksEqualsCold forks a cell that turns on metrics, the
// invariant checker, and fault injection — none of which exist on the
// warmed master — and checks it still matches the cold run bit for bit.
// All three hooks start fresh at the measured phase, exactly as in a
// cold run that deferred them through its own warmup.
func TestForkWithHooksEqualsCold(t *testing.T) {
	cfg := testConfig(t, KindSeesaw)
	cfg.CheckInvariants = true
	cfg.Metrics = &metrics.Config{EpochRefs: 5_000}
	cfg.Faults = &faults.Config{Schedule: "mix", Every: 6_000}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	cold, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportText(t, cold)

	master := warmMaster(t, testConfig(t, KindBaseline))
	forked, err := master.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := reportText(t, forked)
	if !bytes.Equal(want, got) {
		t.Errorf("forked report with hooks differs from cold run:\ncold:\n%s\nforked:\n%s", want, got)
	}
	if forked.Hooks.Metrics == nil || forked.Hooks.Checker == nil || forked.Hooks.Injector == nil {
		t.Error("forked machine is missing hooks its config asked for")
	}
}

// TestWarmupZeroMatchesUnphased pins the compatibility contract: a
// WarmupRefs=0 run is the unphased simulator, so adding a warmup phase
// of zero references must not change a single byte.
func TestWarmupZeroMatchesUnphased(t *testing.T) {
	cfg := testConfig(t, KindSeesaw)
	cfg.WarmupRefs = 0
	m1, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := reportText(t, m1)
	m2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := reportText(t, m2)
	if !bytes.Equal(a, b) {
		t.Error("two identical runs disagree — machine construction is nondeterministic")
	}
}

// TestSnapshotResume checks that a snapshot at the warmup boundary can
// seed multiple independent measured runs, each matching the original
// machine's own continuation byte for byte.
func TestSnapshotResume(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, KindSeesaw)
	m := warmMaster(t, cfg)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The original continues to completion.
	if err := m.Measure(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := r.WriteText(&want); err != nil {
		t.Fatal(err)
	}

	// Two resumes, both independent, both identical to the original.
	for i := 0; i < 2; i++ {
		got := reportText(t, snap.Resume())
		if !bytes.Equal(want.Bytes(), got) {
			t.Errorf("resume %d differs from the original machine's continuation", i)
		}
	}
}

// TestSnapshotWithHooks: machines carrying a metrics recorder, the
// invariant checker, and a fault injector snapshot and resume
// bit-identically — each resumed copy gets its own recorder and checker
// positioned exactly where the original's were, wired over the copy's
// own components. (Earlier versions refused to snapshot hooked
// machines; the snapshot ladder requires it.)
func TestSnapshotWithHooks(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, KindSeesaw)
	cfg.CheckInvariants = true
	cfg.Metrics = &metrics.Config{EpochRefs: 5_000}
	cfg.Faults = &faults.Config{Schedule: "mix", Every: 6_000}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := warmMaster(t, cfg)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Measure(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := r.WriteText(&want); err != nil {
		t.Fatal(err)
	}

	re := snap.Resume()
	if re.Hooks.Metrics == nil || re.Hooks.Checker == nil || re.Hooks.Injector == nil {
		t.Fatal("resumed machine is missing hooks its config asked for")
	}
	if re.Hooks.Metrics == m.Hooks.Metrics || re.Hooks.Checker == m.Hooks.Checker {
		t.Fatal("resumed machine shares hook state with the original")
	}
	if got := reportText(t, re); !bytes.Equal(want.Bytes(), got) {
		t.Errorf("hooked resume differs from the original continuation:\nwant:\n%s\ngot:\n%s", want.Bytes(), got)
	}
}

// TestForkRejections: forking off the warmup boundary or with a
// disagreeing warmup signature must fail loudly, never silently produce
// a wrong-state machine.
func TestForkRejections(t *testing.T) {
	cfg := testConfig(t, KindBaseline)
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not at the boundary yet.
	if _, err := m.Fork(cfg); err == nil || !strings.Contains(err.Error(), "boundary") {
		t.Errorf("fork before warmup: got err %v, want boundary refusal", err)
	}
	if err := m.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Signature mismatch: different seed warms differently.
	bad := cfg
	bad.Seed = 43
	if _, err := m.Fork(bad); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Errorf("fork with different seed: got err %v, want signature refusal", err)
	}
	// Agreeing config forks fine.
	good := cfg
	good.CacheKind = KindSeesaw
	if _, err := m.Fork(good); err != nil {
		t.Errorf("fork with agreeing signature: %v", err)
	}
}

// TestWarmupSignature spot-checks which fields the signature folds in:
// measured-phase parameters must not break sharing, warmup-shaping
// parameters must.
func TestWarmupSignature(t *testing.T) {
	base := testConfig(t, KindBaseline)
	same := base
	same.CacheKind = KindSeesaw
	same.Refs = 99_999
	same.ContextSwitchEvery = 123
	same.CheckInvariants = true
	if base.WarmupSignature() != same.WarmupSignature() {
		t.Error("measured-phase parameters changed the warmup signature")
	}
	for name, mut := range map[string]func(*Config){
		"seed":        func(c *Config) { c.Seed++ },
		"warmupRefs":  func(c *Config) { c.WarmupRefs++ },
		"memhog":      func(c *Config) { c.MemhogFraction = 0.2 },
		"promoteScan": func(c *Config) { c.PromoteScanEvery = 11_111 },
	} {
		d := base
		mut(&d)
		if base.WarmupSignature() == d.WarmupSignature() {
			t.Errorf("%s change did not change the warmup signature", name)
		}
	}
}
