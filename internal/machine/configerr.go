package machine

import "fmt"

// Rule identifies, machine-readably, which configuration constraint a
// ConfigError reports. The values are stable API: the evolutionary
// search's mutation operators (internal/evolve) switch on them to prune
// geometry-impossible genomes instead of crashing a worker, and tests
// pin them, so renaming one is a breaking change.
type Rule string

const (
	// RulePartitionsNotPow2: the SEESAW partition count must be a
	// positive power of two (the partition selector is an address-bit
	// decoder).
	RulePartitionsNotPow2 Rule = "partitions-not-power-of-two"
	// RulePartitionsExceedWays: more partitions than ways leaves some
	// partitions with no ways at all.
	RulePartitionsExceedWays Rule = "partitions-exceed-ways"
	// RuleWaysNotDivisible: ways must divide evenly into partitions so
	// every partition has the same width.
	RuleWaysNotDivisible Rule = "ways-not-divisible-into-partitions"
	// RuleTFTEntriesNegative: a negative TFT entry count is not a
	// geometry (0 means "paper default").
	RuleTFTEntriesNegative Rule = "tft-entries-negative"
	// RuleTFTAssocInvalid: TFT associativity must lie in [0, Entries]
	// (0 and 1 both mean direct-mapped).
	RuleTFTAssocInvalid Rule = "tft-assoc-exceeds-entries"
	// RuleTFTEntriesNotDivisible: a set-associative TFT needs Entries
	// divisible by Assoc so every set has the same width.
	RuleTFTEntriesNotDivisible Rule = "tft-entries-not-divisible-by-assoc"
	// RuleTFTSetsNotPow2: a set-associative TFT's set count
	// (Entries/Assoc) must be a power of two. Direct-mapped TFTs are
	// exempt: they index with the paper's MOD-entries hash, which is
	// what makes the Fig 13 12- and 20-entry study points valid.
	RuleTFTSetsNotPow2 Rule = "tft-sets-not-power-of-two"
	// RuleSpecThresholdNegative: the speculation threshold is an entry
	// count; negative values are not meaningful (0 = paper default).
	RuleSpecThresholdNegative Rule = "spec-threshold-negative"
	// RuleSchedulerContradiction: the scheduler cannot be pinned both
	// always-fast and always-slow.
	RuleSchedulerContradiction Rule = "scheduler-contradiction"
	// RuleMemhogRange: the memhog fraction must lie in [0, 0.95].
	RuleMemhogRange Rule = "memhog-out-of-range"
	// RuleTraceWarmup: warmup needs online generation, so a replay
	// trace cannot carry a warmup phase.
	RuleTraceWarmup Rule = "trace-with-warmup"
)

// ConfigError is the typed, machine-readable form of a configuration
// rejection: which field, which value, and which rule it broke.
// sim.Config.Validate returns one (as error) for every knob combination
// it can attribute to a single constraint; callers unwrap it with
// errors.As. Errors surfaced from deeper constructors (SRAM latency
// tables, CPU models) remain plain errors.
type ConfigError struct {
	// Field names the offending Config field, e.g. "Partitions" or
	// "TFT.Assoc".
	Field string
	// Value is the rejected value, rendered.
	Value string
	// Rule is the stable machine-readable rule identifier.
	Rule Rule
	// Detail explains the constraint for humans.
	Detail string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s=%s violates %s: %s", e.Field, e.Value, e.Rule, e.Detail)
}

// configErr builds a ConfigError.
func configErr(field string, value any, rule Rule, format string, args ...any) *ConfigError {
	return &ConfigError{
		Field:  field,
		Value:  fmt.Sprint(value),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	}
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// validateKnobs applies the single-constraint knob checks — the ones a
// design-space mutator needs typed answers for — to a defaults-applied
// config. Geometry that only a constructor can judge (SRAM table
// coverage, set counts) is still probed by Validate's constructor
// round-trip afterwards.
func (d Config) validateKnobs() *ConfigError {
	if d.MemhogFraction < 0 || d.MemhogFraction > 0.95 {
		return configErr("MemhogFraction", d.MemhogFraction, RuleMemhogRange,
			"memhog fraction outside [0, 0.95]")
	}
	if d.SchedulerAlwaysFast && d.SchedulerAlwaysSlow {
		return configErr("SchedulerAlwaysFast", true, RuleSchedulerContradiction,
			"scheduler cannot be both always-fast and always-slow")
	}
	if d.SpecFastThreshold < 0 {
		return configErr("SpecFastThreshold", d.SpecFastThreshold, RuleSpecThresholdNegative,
			"speculation threshold is a TLB entry count (0 = paper default)")
	}
	if d.Trace != nil && d.WarmupRefs > 0 {
		return configErr("WarmupRefs", d.WarmupRefs, RuleTraceWarmup,
			"warmup requires online generation, not a trace replay")
	}
	if d.CacheKind == KindSeesaw && d.Partitions != 0 {
		switch {
		case !isPow2(d.Partitions):
			return configErr("Partitions", d.Partitions, RulePartitionsNotPow2,
				"partition count must be a positive power of two")
		case d.Partitions > d.L1Ways:
			return configErr("Partitions", d.Partitions, RulePartitionsExceedWays,
				"%d partitions over %d ways leaves empty partitions", d.Partitions, d.L1Ways)
		case d.L1Ways%d.Partitions != 0:
			return configErr("Partitions", d.Partitions, RuleWaysNotDivisible,
				"%d ways do not divide into %d equal partitions", d.L1Ways, d.Partitions)
		}
	}
	if t := d.TFT; true {
		if t.Entries < 0 {
			return configErr("TFT.Entries", t.Entries, RuleTFTEntriesNegative,
				"TFT entry count cannot be negative (0 = paper default)")
		}
		if t.Assoc < 0 || t.Assoc > t.Entries {
			return configErr("TFT.Assoc", t.Assoc, RuleTFTAssocInvalid,
				"TFT associativity must lie in [0, %d]", t.Entries)
		}
		if t.Assoc > 1 {
			if t.Entries%t.Assoc != 0 {
				return configErr("TFT.Entries", t.Entries, RuleTFTEntriesNotDivisible,
					"%d entries do not divide into %d-way sets", t.Entries, t.Assoc)
			}
			if sets := t.Entries / t.Assoc; !isPow2(sets) {
				return configErr("TFT.Entries", t.Entries, RuleTFTSetsNotPow2,
					"%d entries / %d ways = %d sets, not a power of two", t.Entries, t.Assoc, sets)
			}
		}
	}
	return nil
}
