package machine

import (
	"fmt"

	"seesaw/internal/core"
)

// Rule identifies, machine-readably, which configuration constraint a
// ConfigError reports. The type and its values live in internal/core so
// design descriptors can return typed geometry rejections; they are
// aliased here because this package's Config.Validate is where callers
// meet them. The values are stable API: the evolutionary search's
// mutation operators (internal/evolve) switch on them to prune
// geometry-impossible genomes instead of crashing a worker, and tests
// pin them, so renaming one is a breaking change.
type Rule = core.Rule

const (
	RulePartitionsNotPow2      = core.RulePartitionsNotPow2
	RulePartitionsExceedWays   = core.RulePartitionsExceedWays
	RuleWaysNotDivisible       = core.RuleWaysNotDivisible
	RuleTFTEntriesNegative     = core.RuleTFTEntriesNegative
	RuleTFTAssocInvalid        = core.RuleTFTAssocInvalid
	RuleTFTEntriesNotDivisible = core.RuleTFTEntriesNotDivisible
	RuleTFTSetsNotPow2         = core.RuleTFTSetsNotPow2
	RuleSpecThresholdNegative  = core.RuleSpecThresholdNegative
	RuleSchedulerContradiction = core.RuleSchedulerContradiction
	RuleMemhogRange            = core.RuleMemhogRange
	RuleTraceWarmup            = core.RuleTraceWarmup
	RuleUnknownDesign          = core.RuleUnknownDesign
)

// ConfigError is the typed, machine-readable form of a configuration
// rejection: which field, which value, and which rule it broke (see
// core.ConfigError). sim.Config.Validate returns one (as error) for
// every knob combination it can attribute to a single constraint;
// callers unwrap it with errors.As. Errors surfaced from deeper
// constructors (SRAM latency tables, CPU models) remain plain errors.
type ConfigError = core.ConfigError

// configErr builds a ConfigError.
func configErr(field string, value any, rule Rule, format string, args ...any) *ConfigError {
	return &ConfigError{
		Field:  field,
		Value:  fmt.Sprint(value),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	}
}

// validateKnobs applies the single-constraint knob checks — the ones a
// design-space mutator needs typed answers for — to a defaults-applied
// config: the machine-level knobs first, then the selected design's own
// registered geometry rules. Geometry that only a constructor can judge
// (SRAM table coverage, set counts) is still probed by Validate's
// constructor round-trip afterwards.
func (d Config) validateKnobs() *ConfigError {
	if d.MemhogFraction < 0 || d.MemhogFraction > 0.95 {
		return configErr("MemhogFraction", d.MemhogFraction, RuleMemhogRange,
			"memhog fraction outside [0, 0.95]")
	}
	if d.SchedulerAlwaysFast && d.SchedulerAlwaysSlow {
		return configErr("SchedulerAlwaysFast", true, RuleSchedulerContradiction,
			"scheduler cannot be both always-fast and always-slow")
	}
	if d.SpecFastThreshold < 0 {
		return configErr("SpecFastThreshold", d.SpecFastThreshold, RuleSpecThresholdNegative,
			"speculation threshold is a TLB entry count (0 = paper default)")
	}
	if d.Trace != nil && d.WarmupRefs > 0 {
		return configErr("WarmupRefs", d.WarmupRefs, RuleTraceWarmup,
			"warmup requires online generation, not a trace replay")
	}
	dsg, ok := d.CacheKind.design()
	if !ok {
		return configErr("CacheKind", d.CacheKind.String(), RuleUnknownDesign,
			"no registered design is named %q (have %v)", d.CacheKind.String(), core.SortedDesignNames())
	}
	if dsg.Validate != nil {
		if cerr := dsg.Validate(d.l1cfg()); cerr != nil {
			return cerr
		}
	}
	if t := d.TFT; true {
		if t.Entries < 0 {
			return configErr("TFT.Entries", t.Entries, RuleTFTEntriesNegative,
				"TFT entry count cannot be negative (0 = paper default)")
		}
		if t.Assoc < 0 || t.Assoc > t.Entries {
			return configErr("TFT.Assoc", t.Assoc, RuleTFTAssocInvalid,
				"TFT associativity must lie in [0, %d]", t.Entries)
		}
		if t.Assoc > 1 {
			if t.Entries%t.Assoc != 0 {
				return configErr("TFT.Entries", t.Entries, RuleTFTEntriesNotDivisible,
					"%d entries do not divide into %d-way sets", t.Entries, t.Assoc)
			}
			if sets := t.Entries / t.Assoc; !isPow2(sets) {
				return configErr("TFT.Entries", t.Entries, RuleTFTSetsNotPow2,
					"%d entries / %d ways = %d sets, not a power of two", t.Entries, t.Assoc, sets)
			}
		}
	}
	return nil
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
