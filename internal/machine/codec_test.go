package machine

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/workload"
)

// hookedConfig is testConfig with every hook attached: the codec must
// carry recorder, checker, and injector state, not just the bare
// machine.
func hookedConfig(t *testing.T, kind CacheKind) Config {
	t.Helper()
	cfg := testConfig(t, kind)
	cfg.CheckInvariants = true
	cfg.Metrics = &metrics.Config{EpochRefs: 5_000}
	cfg.Faults = &faults.Config{Schedule: "mix", Every: 6_000}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// encodeDecode round-trips a snapshot through the binary codec.
func encodeDecode(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCodecRoundTripMidEpoch is the differential battery's core case:
// for every registered cache design, with every hook attached, a
// machine is stopped mid-epoch (pre-generated records pending in the
// batch buffer), snapshotted, encoded, decoded, and resumed — and the
// decoded continuation must match the original machine's own
// continuation byte for byte. A direct (unencoded) resume is compared
// too, so a failure distinguishes "clone is wrong" from "codec is
// wrong". This is the codec leg of the zoo conformance battery (see
// zoo_test.go).
func TestCodecRoundTripMidEpoch(t *testing.T) {
	for _, name := range DesignNames() {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			cfg := hookedConfig(t, CacheKind(name))
			m := warmMaster(t, cfg)
			total := cfg.WarmupRefs + cfg.Refs

			// Leave most of a ~4096-reference epoch pending.
			if err := m.stepBatch(100, cfg.WarmupRefs, total); err != nil {
				t.Fatal(err)
			}
			if m.batch.cur.empty() {
				t.Fatal("expected pending pre-generated records mid-epoch")
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			if err := m.Measure(ctx); err != nil {
				t.Fatal(err)
			}
			r, err := m.Report()
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := r.WriteText(&want); err != nil {
				t.Fatal(err)
			}

			if got := reportText(t, snap.Resume()); !bytes.Equal(want.Bytes(), got) {
				t.Errorf("direct resume differs from original continuation:\nwant:\n%s\ngot:\n%s", want.Bytes(), got)
			}
			if got := reportText(t, encodeDecode(t, snap).Resume()); !bytes.Equal(want.Bytes(), got) {
				t.Errorf("decoded resume differs from original continuation:\nwant:\n%s\ngot:\n%s", want.Bytes(), got)
			}
		})
	}
}

// TestCodecDeterministic: encoding the same snapshot twice — and
// encoding its own decode — yields identical bytes. The ladder's
// crash-resume guarantee ("restart produces a byte-identical table")
// leans on the codec never ranging over a map.
func TestCodecDeterministic(t *testing.T) {
	cfg := hookedConfig(t, KindSeesaw)
	m := warmMaster(t, cfg)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodings of one snapshot differ")
	}
	dec, err := UnmarshalSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Error("re-encoding a decoded snapshot changes the bytes")
	}
}

// TestCodecMetadata: the header peek, the rung depth, and the signature
// survive the round trip; the prefix hash separates configs by warmup
// identity only.
func TestCodecMetadata(t *testing.T) {
	cfg := testConfig(t, KindSeesaw)
	m := warmMaster(t, cfg)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := PeekSnapshotVersion(data); err != nil || v != SnapshotSchemaVersion {
		t.Errorf("PeekSnapshotVersion = %d, %v; want %d, nil", v, err, SnapshotSchemaVersion)
	}
	if snap.Ref() != cfg.WarmupRefs {
		t.Errorf("snapshot rung = %d, want the warmup boundary %d", snap.Ref(), cfg.WarmupRefs)
	}
	dec, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Ref() != snap.Ref() || dec.Signature() != snap.Signature() {
		t.Error("decoded snapshot's rung or signature differs from the encoded one's")
	}

	// Measured-phase parameters must not move the prefix hash; warmup
	// parameters must.
	other := testConfig(t, KindPIPT)
	if cfg.PrefixHash() != other.PrefixHash() {
		t.Error("cache kind changed the prefix hash; it is a measured-phase parameter")
	}
	reseeded := cfg
	reseeded.Seed = 43
	if cfg.PrefixHash() == reseeded.PrefixHash() {
		t.Error("seed did not change the prefix hash")
	}
}

// TestCodecErrors: every class of damaged input maps to its typed
// error, and none of them panic.
func TestCodecErrors(t *testing.T) {
	cfg := testConfig(t, KindBaseline)
	m := warmMaster(t, cfg)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrSnapshotTruncated},
		{"header only", data[:snapHeaderLen], ErrSnapshotTruncated},
		{"half payload", data[:snapHeaderLen+(len(data)-snapHeaderLen)/2], ErrSnapshotTruncated},
		{"bad magic", append([]byte("NOTASNAP"), data[8:]...), ErrSnapshotCorrupt},
		{"version skew", func() []byte {
			d := append([]byte(nil), data...)
			d[8], d[9] = 0xff, 0xfe
			return d
		}(), ErrSnapshotSchema},
		{"flipped payload byte", func() []byte {
			d := append([]byte(nil), data...)
			d[len(d)/2] ^= 0x40
			return d
		}(), ErrSnapshotCorrupt},
		{"flipped checksum", func() []byte {
			d := append([]byte(nil), data...)
			d[20] ^= 0x01
			return d
		}(), ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalSnapshot(tc.data); !errors.Is(err, tc.want) {
				t.Errorf("got err %v, want %v", err, tc.want)
			}
		})
	}
}

// TestWarmupTo: climbing the warmup in chunks lands on the same state
// as one uninterrupted warmup — the resumed-from-rung continuation is
// byte-identical to the cold run — and the boundary/ordering rules
// hold.
func TestWarmupTo(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, KindSeesaw)
	cold, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportText(t, cold)

	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rung := range []int{5_000, 12_000, cfg.WarmupRefs} {
		if err := m.WarmupTo(ctx, rung); err != nil {
			t.Fatal(err)
		}
		if m.Ref() != rung {
			t.Fatalf("after WarmupTo(%d), Ref() = %d", rung, m.Ref())
		}
		// Round-trip the mid-warmup machine through the codec and keep
		// climbing on the decoded copy — exactly the ladder's resume path.
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		m = encodeDecode(t, snap).Resume()
		if m.Ref() != rung {
			t.Fatalf("decoded rung sits at %d, want %d", m.Ref(), rung)
		}
	}
	if err := m.WarmupTo(ctx, 5_000); err != nil {
		t.Errorf("WarmupTo below the cursor should be a no-op, got %v", err)
	}
	if err := m.WarmupTo(ctx, cfg.WarmupRefs+1); err == nil {
		t.Error("WarmupTo past the warmup boundary did not fail")
	}
	if err := m.Measure(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := r.WriteText(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Errorf("ladder-climbed run differs from cold run:\ncold:\n%s\nladdered:\n%s", want, got.Bytes())
	}
}

// FuzzSnapshotCodec throws arbitrary and systematically damaged bytes
// at the decoder: it must never panic, must return one of the typed
// errors on anything it rejects, and anything it accepts must actually
// run. Seeded with a genuine encoded snapshot so mutations explore the
// interesting region around valid input.
func FuzzSnapshotCodec(f *testing.F) {
	p, err := workload.ByName("redis")
	if err != nil {
		f.Fatal(err)
	}
	cfg := Config{
		Workload:   p,
		Seed:       7,
		Refs:       400,
		WarmupRefs: 300,
		CacheKind:  KindSeesaw,
		L1Size:     32 << 10,
		FreqGHz:    1.33,
		CPUKind:    "inorder",
		MemBytes:   512 << 20,
	}
	if err := cfg.Validate(); err != nil {
		f.Fatal(err)
	}
	m, err := Build(cfg)
	if err != nil {
		f.Fatal(err)
	}
	if err := m.Warmup(context.Background()); err != nil {
		f.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := snap.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add(snapMagic[:])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/3] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) &&
				!errors.Is(err, ErrSnapshotSchema) {
				t.Fatalf("decoder returned an untyped error: %v", err)
			}
			return
		}
		// Accepted input must yield a machine that can run a few
		// references and re-encode without failing.
		re := s.Resume()
		total := re.Config().WarmupRefs + re.Config().Refs
		for i := 0; i < 50 && re.Ref() < total; i++ {
			if err := re.Step(); err != nil {
				t.Fatalf("decoded machine failed to step: %v", err)
			}
		}
		if _, err := s.MarshalBinary(); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
	})
}
