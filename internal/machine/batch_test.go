package machine

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"seesaw/internal/workload"
)

// stepToEnd drives a machine to the end of its measured phase one
// Step() at a time — the fully serial path, no epoch batching beyond
// whatever pending records already exist.
func stepToEnd(t *testing.T, m *Machine) []byte {
	t.Helper()
	total := m.Config().WarmupRefs + m.Config().Refs
	for m.globalRef < total {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchedMatchesStepped pins the core batching contract: the
// epoch-batched Warmup/Measure loop produces a byte-identical report to
// driving the same machine one Step() at a time. Generation never reads
// execution state and execution stays in schedule order, so batching
// (and the lookahead pipeline behind it) must be observationally
// invisible.
func TestBatchedMatchesStepped(t *testing.T) {
	cfg := testConfig(t, KindSeesaw)
	batched, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportText(t, batched)

	stepped, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := stepToEnd(t, stepped)
	if !bytes.Equal(want, got) {
		t.Errorf("batched run differs from stepped run:\nbatched:\n%s\nstepped:\n%s", want, got)
	}
}

// parallelConfig is a 4-thread workload with the I-cache modeled, so
// epoch pre-generation runs five generator goroutines (4 app threads +
// the system thread) filling data and instruction streams concurrently.
func parallelConfig(t *testing.T) Config {
	t.Helper()
	p, err := workload.ByName("nutch")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:   p,
		Seed:       42,
		Refs:       30_000,
		WarmupRefs: 15_000,
		CacheKind:  KindSeesaw,
		L1Size:     32 << 10,
		FreqGHz:    1.33,
		CPUKind:    "ooo",
		MemBytes:   512 << 20,
		ICache:     true,
		TextHuge:   true,

		MemhogFraction:   0.4,
		PromoteScanEvery: 7_000,
		SplinterEvery:    9_000,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestParallelGenDeterminism runs the same multi-threaded cell at
// GOMAXPROCS=1 and GOMAXPROCS=8 and requires byte-identical reports:
// the per-thread generator workers touch disjoint state and disjoint
// buffer slots, so scheduling must not be observable. Run under -race
// this also audits the worker/join discipline.
func TestParallelGenDeterminism(t *testing.T) {
	cfg := parallelConfig(t)
	reports := make([][]byte, 2)
	for i, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		m, err := Build(cfg)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatal(err)
		}
		reports[i] = reportText(t, m)
		runtime.GOMAXPROCS(prev)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("reports differ across GOMAXPROCS:\nP=1:\n%s\nP=8:\n%s", reports[0], reports[1])
	}
}

// TestSnapshotMidEpochPending snapshots a machine in the middle of an
// epoch — pre-generated records pending in the batch buffer, the
// generator already advanced past them — and requires the resumed copy
// to continue byte-identically. This is the hazard epochBuf.clone
// guards: dropping pending records would desync the clone's stream.
func TestSnapshotMidEpochPending(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, KindSeesaw)
	m := warmMaster(t, cfg)
	total := cfg.WarmupRefs + cfg.Refs

	// Execute 100 references of a ~4096-reference epoch, leaving the
	// rest pending.
	if err := m.stepBatch(100, cfg.WarmupRefs, total); err != nil {
		t.Fatal(err)
	}
	if m.batch.cur.empty() {
		t.Fatal("expected pending pre-generated records mid-epoch")
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The original continues to completion through the batched loop.
	if err := m.Measure(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := m.Report()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := r.WriteText(&want); err != nil {
		t.Fatal(err)
	}

	// One resume continues batched, another drains serially via Step —
	// both must match the original continuation exactly.
	if got := reportText(t, snap.Resume()); !bytes.Equal(want.Bytes(), got) {
		t.Errorf("batched resume differs from original continuation:\nwant:\n%s\ngot:\n%s", want.Bytes(), got)
	}
	if got := stepToEnd(t, snap.Resume()); !bytes.Equal(want.Bytes(), got) {
		t.Errorf("stepped resume differs from original continuation:\nwant:\n%s\ngot:\n%s", want.Bytes(), got)
	}
}

// TestMeasuredStepAllocFree is the allocation regression gate: with
// every hook disabled, a measured-phase reference allocates nothing.
// The machine is warmed past its cold-start fills first so map growth
// and lazily sized scratch buffers have reached steady state.
func TestMeasuredStepAllocFree(t *testing.T) {
	p, err := workload.ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:   p,
		Seed:       42,
		Refs:       60_000,
		WarmupRefs: 10_000,
		CacheKind:  KindSeesaw,
		L1Size:     32 << 10,
		FreqGHz:    1.33,
		CPUKind:    "ooo",
		MemBytes:   512 << 20,

		// Cadenced OS activity off (negative disables; zero would take
		// the default): promotion scans and splinters legitimately
		// allocate page-table state, which is not what this test gates.
		ContextSwitchEvery: -1,
		PromoteScanEvery:   -1,
		SplinterEvery:      -1,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := m.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	// Warm the measured-phase state: caches, TLBs, coherence directory.
	for i := 0; i < 20_000; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(5_000, func() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("measured Step allocates %.3f objects/ref with hooks disabled, want 0", avg)
	}
}
