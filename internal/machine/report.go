package machine

import (
	"fmt"
	"io"

	"seesaw/internal/check"
	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/stats"
)

// TFTReport carries the Fig 13 metrics.
type TFTReport struct {
	Lookups uint64
	HitRate float64
	// SuperMissedPct is the percentage of superpage accesses the TFT
	// failed to identify, split by whether the data cache hit.
	SuperMissedPct       float64
	SuperMissedL1HitPct  float64
	SuperMissedL1MissPct float64
	SuperAccesses        uint64
	FastHits, FastMisses uint64
	// Flush/invalidation counters, summed over every TFT (data and
	// instruction side): how often the Section IV-C2/C3 invalidation
	// protocol actually fired, and how many stale fast-path hits the
	// invalidations demonstrably prevented.
	Fills            uint64
	Invalidations    uint64
	Flushes          uint64
	StaleHitsAvoided uint64
}

// SchemaVersion is the current Report JSON schema generation. Bump it
// whenever the meaning or layout of a Report field changes: the disk
// store (internal/store) treats an entry whose SchemaVersion differs
// from this value as a miss and recomputes the cell, so stale results
// from an older binary are never served. The golden schema test in
// internal/sim pins both this number and the field set; changing
// either without the other fails the build.
const SchemaVersion = 1

// Report is the outcome of one run.
type Report struct {
	// SchemaVersion stamps which Report generation produced this value
	// (see the SchemaVersion constant).
	SchemaVersion int

	Design   string
	Workload string

	Cycles       uint64 // slowest application core
	Instructions uint64 // application instructions
	IPC          float64
	RuntimeSec   float64

	L1Hits, L1Misses uint64
	MPKI             float64
	// L1I statistics (zero unless Config.ICache).
	L1IHits, L1IMisses uint64

	SuperpageCoverage float64 // of the mapped footprint
	SuperRefFraction  float64 // of executed references

	EnergyTotalNJ     float64
	EnergyCPUSideNJ   float64 // L1 CPU-side lookups + fills
	EnergyCoherenceNJ float64
	Energy            *energy.Account

	TFT TFTReport
	Coh coherence.Stats
	TLB struct {
		L1HitRate float64
		L2Lookups uint64
		Walks     uint64
	}
	WPAccuracy float64

	Promotions, Splinters uint64

	// Faults reports the injected-fault tally (nil unless Config.Faults).
	Faults *faults.Stats
	// Check reports the invariant-checker outcome (nil unless
	// Config.CheckInvariants).
	Check *check.Report
	// Metrics carries the epoch time-series and event log (nil unless
	// Config.Metrics).
	Metrics *metrics.Series
}

// WriteText renders the full human-readable report — timing, cache and
// TLB/TFT behaviour, coherence, OS activity, fault/check outcomes, and
// the energy breakdown. This is the exact output of seesaw-sim's default
// mode; the golden-report tests pin it byte for byte.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "design:    %s\n", r.Design)
	fmt.Fprintf(w, "workload:  %s\n", r.Workload)
	fmt.Fprintf(w, "cycles:    %d (IPC %.3f, runtime %.3f ms)\n", r.Cycles, r.IPC, r.RuntimeSec*1e3)
	fmt.Fprintf(w, "L1:        %d hits, %d misses (%.2f%% hit, MPKI %.1f)\n",
		r.L1Hits, r.L1Misses, 100*stats.Ratio(r.L1Hits, r.L1Hits+r.L1Misses), r.MPKI)
	if r.L1IHits+r.L1IMisses > 0 {
		fmt.Fprintf(w, "L1I:       %d hits, %d misses (%.2f%% hit)\n",
			r.L1IHits, r.L1IMisses, 100*stats.Ratio(r.L1IHits, r.L1IHits+r.L1IMisses))
	}
	fmt.Fprintf(w, "superpage: coverage %.1f%%, reference share %.1f%%\n",
		100*r.SuperpageCoverage, 100*r.SuperRefFraction)
	if r.TFT.Lookups > 0 {
		fmt.Fprintf(w, "TFT:       %.1f%% hit rate; %.2f%% of superpage accesses missed (%.2f%% L1-hit / %.2f%% L1-miss)\n",
			100*r.TFT.HitRate, r.TFT.SuperMissedPct, r.TFT.SuperMissedL1HitPct, r.TFT.SuperMissedL1MissPct)
		fmt.Fprintf(w, "TFT evts:  %d fills, %d invalidations, %d flushes, %d stale hits avoided\n",
			r.TFT.Fills, r.TFT.Invalidations, r.TFT.Flushes, r.TFT.StaleHitsAvoided)
	}
	fmt.Fprintf(w, "TLB:       %.2f%% L1 hit, %d L2 lookups, %d walks\n",
		100*r.TLB.L1HitRate, r.TLB.L2Lookups, r.TLB.Walks)
	fmt.Fprintf(w, "coherence: %d probes, %d invalidations, %d downgrades\n",
		r.Coh.ProbesSent, r.Coh.Invalidations, r.Coh.Downgrades)
	fmt.Fprintf(w, "OS:        %d promotions, %d splinters\n", r.Promotions, r.Splinters)
	if r.Faults != nil {
		fmt.Fprintf(w, "faults:    %d injected (%d splinters, %d shootdowns, %d ctx switches, %d promote storms, %d memhog spikes), %d skipped\n",
			r.Faults.Injected, r.Faults.Splinters, r.Faults.Shootdowns,
			r.Faults.ContextSwitches, r.Faults.PromoteStorms, r.Faults.MemhogSpikes, r.Faults.Skipped)
	}
	if r.Check != nil {
		fmt.Fprintf(w, "check:     %d invariant checks, %d violations\n", r.Check.Checks, r.Check.Violations)
		for _, v := range r.Check.Sample {
			fmt.Fprintf(w, "  VIOLATION %s\n", v.String())
		}
	}
	if r.WPAccuracy > 0 {
		fmt.Fprintf(w, "waypred:   %.1f%% accuracy\n", 100*r.WPAccuracy)
	}
	if r.Metrics != nil {
		m := r.Metrics
		fmt.Fprintf(w, "metrics:   %d epochs of %d refs; %d events emitted, %d dropped\n",
			len(m.Epochs), m.EpochRefs, m.EventsTotal, m.EventsDropped)
	}
	fmt.Fprintln(w)
	_, err := r.Energy.BreakdownTable(r.RuntimeSec).WriteTo(w)
	return err
}

// Report assembles the Report from the machine's component statistics.
// It is normally called once, after Measure; calling it mid-run yields
// a consistent snapshot of the statistics so far.
func (m *Machine) Report() (*Report, error) {
	cfg := m.cfg
	r := &Report{
		SchemaVersion: SchemaVersion,
		Design:        m.l1s[0].Name(),
		Workload:      cfg.Workload.Name,
		Energy:        m.acct,
	}
	// Application timing: the slowest app core determines runtime.
	for t := 0; t < m.gen.Threads(); t++ {
		if c := m.cpus[t].Cycles(); c > r.Cycles {
			r.Cycles = c
		}
		r.Instructions += m.cpus[t].Instructions()
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	r.RuntimeSec = float64(r.Cycles) / (cfg.FreqGHz * 1e9)

	var tftLookups, tftHits uint64
	for i, l1 := range m.l1s {
		st := l1.Storage().Stats
		r.L1Hits += st.Hits
		r.L1Misses += st.Misses
		if s := m.seesaws[i]; s != nil {
			ts := s.TFT().Stats
			tftLookups += ts.Lookups
			tftHits += ts.Hits
			r.TFT.Fills += ts.Fills
			r.TFT.Invalidations += ts.Invalidations
			r.TFT.Flushes += ts.Flushes
			r.TFT.StaleHitsAvoided += ts.StaleHitsAvoided
			r.TFT.SuperAccesses += s.Stats.SuperAccesses
			r.TFT.FastHits += s.Stats.FastHits
			r.TFT.FastMisses += s.Stats.FastMisses
			missedHit := s.Stats.SuperTFTMissHits
			missedMiss := s.Stats.SuperTFTMissMisses
			if s.Stats.SuperAccesses > 0 {
				den := float64(s.Stats.SuperAccesses)
				r.TFT.SuperMissedPct += 100 * float64(missedHit+missedMiss) / den
				r.TFT.SuperMissedL1HitPct += 100 * float64(missedHit) / den
				r.TFT.SuperMissedL1MissPct += 100 * float64(missedMiss) / den
			}
		}
		// Predictor accuracy (WP designs); report core 0's.
		if i == 0 {
			switch v := l1.(type) {
			case *core.BaselineVIPT:
				if v.Predictor() != nil {
					r.WPAccuracy = v.Predictor().Accuracy()
				}
			case *core.Seesaw:
				if v.Predictor() != nil {
					r.WPAccuracy = v.Predictor().Accuracy()
				}
			}
		}
	}
	// Average the per-core TFT percentages.
	if n := countSeesaws(m.seesaws); n > 0 {
		r.TFT.SuperMissedPct /= float64(n)
		r.TFT.SuperMissedL1HitPct /= float64(n)
		r.TFT.SuperMissedL1MissPct /= float64(n)
	}
	r.TFT.Lookups = tftLookups
	if tftLookups > 0 {
		r.TFT.HitRate = float64(tftHits) / float64(tftLookups)
	}
	if r.Instructions > 0 {
		r.MPKI = float64(r.L1Misses) / float64(r.Instructions) * 1000
	}
	for _, l1i := range m.l1is {
		st := l1i.Storage().Stats
		r.L1IHits += st.Hits
		r.L1IMisses += st.Misses
		if s, ok := l1i.(*core.Seesaw); ok {
			ts := s.TFT().Stats
			tftLookups += ts.Lookups
			r.TFT.Fills += ts.Fills
			r.TFT.Invalidations += ts.Invalidations
			r.TFT.Flushes += ts.Flushes
			r.TFT.StaleHitsAvoided += ts.StaleHitsAvoided
		}
	}
	r.SuperpageCoverage = m.proc.SuperpageCoverage()
	if cfg.Refs > 0 {
		r.SuperRefFraction = float64(m.superRefs) / float64(cfg.Refs)
	}
	r.Promotions = m.mgr.Stats.Promotions
	r.Splinters = m.mgr.Stats.Splinters

	// Finish energy accounting from component stats.
	tlbLookups := uint64(cfg.Refs)
	if cfg.ICache {
		tlbLookups *= 2 // every instruction block also translates its fetch
	}
	m.acct.AddL1TLBLookups(tlbLookups)
	m.acct.AddL2TLBLookups(m.l2Lookups)
	m.acct.AddTFTLookups(tftLookups)
	var walkLevels, walks uint64
	for _, h := range m.hiers {
		walkLevels += h.Walker().LevelsTotal
		walks += h.Walker().Walks
	}
	m.acct.AddWalkLevels(walkLevels)
	cs := m.cohSys.Stats
	m.acct.AddLLCAccesses(cs.LLCHits + cs.LLCMisses + cs.Writebacks)
	m.acct.AddDRAMAccesses(cs.DRAMReads + cs.DRAMWrites)
	m.acct.AddL1Coherence(m.cohSys.TotalCoherenceEnergyNJ())

	r.EnergyCPUSideNJ = m.acct.L1CPUSideNJ
	r.EnergyCoherenceNJ = m.acct.L1CoherenceNJ
	r.EnergyTotalNJ = m.acct.TotalNJ(r.RuntimeSec)
	r.Coh = cs
	r.TLB.L2Lookups = m.l2Lookups
	r.TLB.Walks = walks
	// Translations resolved by the (parallel) L1 TLBs never reach the L2.
	if cfg.Refs > 0 {
		r.TLB.L1HitRate = 1 - float64(m.l2Lookups)/float64(cfg.Refs)
	}
	if m.Hooks.Injector != nil {
		st := m.Hooks.Injector.Stats
		r.Faults = &st
	}
	if m.Hooks.Checker != nil {
		r.Check = m.Hooks.Checker.Report()
	}
	r.Metrics = m.Hooks.Metrics.Finish()
	return r, nil
}

func countSeesaws(ss []*core.Seesaw) int {
	n := 0
	for _, s := range ss {
		if s != nil {
			n++
		}
	}
	return n
}
