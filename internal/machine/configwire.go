package machine

import (
	"fmt"

	"seesaw/internal/cache"
	"seesaw/internal/coherence"
	"seesaw/internal/core"
	"seesaw/internal/energy"
	"seesaw/internal/faults"
	"seesaw/internal/metrics"
	"seesaw/internal/tft"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

// configWire is Config's shape on the snapshot gob wire. It exists for
// one reason: CacheKind was an int enum through the first generation of
// snapshots and is now a registry name, and gob cannot decode an int
// field into a string one. The wire therefore carries both spellings —
// Design (the registry name, what current encoders write) and the
// legacy CacheKind int slot — and decode prefers Design, falling back
// to the enum mapping for blobs written before the registry existed.
// gob matches fields by name and ignores ones the counterpart lacks, so
// old blobs (no Design) and old binaries reading new blobs (no string
// field) both keep working without a SnapshotSchemaVersion bump.
//
// Every other field mirrors Config exactly; the reflection drift guard
// in configwire_test.go fails the build if the two structs diverge.
type configWire struct {
	Workload   workload.Profile
	Seed       int64
	Refs       int
	WarmupRefs int
	Trace      []trace.Record

	// Design is the registry name of the L1 design ("seesaw", ...).
	Design string
	// CacheKind is the legacy enum slot: written for designs that have
	// a legacy value (so pre-registry binaries can still read these
	// snapshots), -1 otherwise; read only when Design is empty.
	CacheKind int

	L1Size          uint64
	L1Ways          int
	Partitions      int
	Policy          core.InsertionPolicy
	WayPredict      bool
	Replacement     cache.Replacement
	TFT             tft.Config
	SerialTLBCycles int
	SmallTLB        bool

	FreqGHz             float64
	CPUKind             string
	SchedulerAlwaysFast bool
	SchedulerAlwaysSlow bool
	SpecFastThreshold   int

	CoherenceMode coherence.Mode

	MemBytes       uint64
	Heap1G         bool
	ICache         bool
	TextHuge       bool
	MemhogFraction float64
	THPOff         bool

	ContextSwitchEvery int
	PromoteScanEvery   int
	SplinterEvery      int

	Prefetch bool

	Faults          *faults.Config
	CheckInvariants bool
	Metrics         *metrics.Config

	CoRunner       *workload.Profile
	CoRunSliceRefs int

	Prices energy.Prices
}

// wireOf renders a config for the snapshot wire.
func wireOf(c Config) configWire {
	legacy := -1
	if d, ok := c.CacheKind.design(); ok {
		legacy = d.Legacy
	}
	return configWire{
		Workload:   c.Workload,
		Seed:       c.Seed,
		Refs:       c.Refs,
		WarmupRefs: c.WarmupRefs,
		Trace:      c.Trace,

		Design:    c.CacheKind.String(),
		CacheKind: legacy,

		L1Size:          c.L1Size,
		L1Ways:          c.L1Ways,
		Partitions:      c.Partitions,
		Policy:          c.Policy,
		WayPredict:      c.WayPredict,
		Replacement:     c.Replacement,
		TFT:             c.TFT,
		SerialTLBCycles: c.SerialTLBCycles,
		SmallTLB:        c.SmallTLB,

		FreqGHz:             c.FreqGHz,
		CPUKind:             c.CPUKind,
		SchedulerAlwaysFast: c.SchedulerAlwaysFast,
		SchedulerAlwaysSlow: c.SchedulerAlwaysSlow,
		SpecFastThreshold:   c.SpecFastThreshold,

		CoherenceMode: c.CoherenceMode,

		MemBytes:       c.MemBytes,
		Heap1G:         c.Heap1G,
		ICache:         c.ICache,
		TextHuge:       c.TextHuge,
		MemhogFraction: c.MemhogFraction,
		THPOff:         c.THPOff,

		ContextSwitchEvery: c.ContextSwitchEvery,
		PromoteScanEvery:   c.PromoteScanEvery,
		SplinterEvery:      c.SplinterEvery,

		Prefetch: c.Prefetch,

		Faults:          c.Faults,
		CheckInvariants: c.CheckInvariants,
		Metrics:         c.Metrics,

		CoRunner:       c.CoRunner,
		CoRunSliceRefs: c.CoRunSliceRefs,

		Prices: c.Prices,
	}
}

// config rebuilds the Config, resolving the design name: Design when
// present (current blobs), the legacy enum otherwise (pre-registry
// blobs). Unknown spellings in either slot are decode errors, never a
// silent baseline.
func (w configWire) config() (Config, error) {
	kind := CacheKind(w.Design)
	if w.Design == "" {
		k, ok := CacheKindFromLegacy(w.CacheKind)
		if !ok {
			return Config{}, fmt.Errorf("machine: snapshot names no design and legacy cache kind %d is unknown", w.CacheKind)
		}
		kind = k
	} else if _, ok := kind.design(); !ok {
		return Config{}, fmt.Errorf("machine: snapshot names unregistered design %q", w.Design)
	}
	return Config{
		Workload:   w.Workload,
		Seed:       w.Seed,
		Refs:       w.Refs,
		WarmupRefs: w.WarmupRefs,
		Trace:      w.Trace,

		CacheKind: kind,

		L1Size:          w.L1Size,
		L1Ways:          w.L1Ways,
		Partitions:      w.Partitions,
		Policy:          w.Policy,
		WayPredict:      w.WayPredict,
		Replacement:     w.Replacement,
		TFT:             w.TFT,
		SerialTLBCycles: w.SerialTLBCycles,
		SmallTLB:        w.SmallTLB,

		FreqGHz:             w.FreqGHz,
		CPUKind:             w.CPUKind,
		SchedulerAlwaysFast: w.SchedulerAlwaysFast,
		SchedulerAlwaysSlow: w.SchedulerAlwaysSlow,
		SpecFastThreshold:   w.SpecFastThreshold,

		CoherenceMode: w.CoherenceMode,

		MemBytes:       w.MemBytes,
		Heap1G:         w.Heap1G,
		ICache:         w.ICache,
		TextHuge:       w.TextHuge,
		MemhogFraction: w.MemhogFraction,
		THPOff:         w.THPOff,

		ContextSwitchEvery: w.ContextSwitchEvery,
		PromoteScanEvery:   w.PromoteScanEvery,
		SplinterEvery:      w.SplinterEvery,

		Prefetch: w.Prefetch,

		Faults:          w.Faults,
		CheckInvariants: w.CheckInvariants,
		Metrics:         w.Metrics,

		CoRunner:       w.CoRunner,
		CoRunSliceRefs: w.CoRunSliceRefs,

		Prices: w.Prices,
	}, nil
}
