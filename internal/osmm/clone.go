package osmm

import (
	"math/rand"

	"seesaw/internal/addr"
	"seesaw/internal/physmem"
)

// Clone returns an independent deep copy of one address space: the page
// table, the per-chunk backing records, and the explicit 1GB mappings.
func (p *Process) Clone() *Process {
	c := &Process{
		ASID:        p.ASID,
		PT:          p.PT.Clone(),
		nextVA:      p.nextVA,
		chunks:      make(map[addr.VAddr]*chunk, len(p.chunks)),
		chunks1G:    make(map[addr.VAddr]addr.PAddr, len(p.chunks1G)),
		mappedBytes: p.mappedBytes,
		superBytes:  p.superBytes,
	}
	for va, ch := range p.chunks {
		cc := *ch
		cc.frames = append([]addr.PAddr(nil), ch.frames...)
		c.chunks[va] = &cc
	}
	for va, pa := range p.chunks1G {
		c.chunks1G[va] = pa
	}
	return c
}

// Clone returns an independent deep copy of the manager and every
// process it manages. The caller supplies the cloned physical memory, a
// rand whose generator sits at the same position as the original's (see
// internal/xrand), and the cloned compactor (nil when fragmentation is
// off); the OnInvlpg/OnPromote hooks are NOT copied — they close over
// the original machine's TLBs and caches, and the owner of the clone
// must rewire its own.
func (m *Manager) Clone(buddy *physmem.Buddy, rng *rand.Rand, comp Compactor) *Manager {
	c := &Manager{
		Buddy:     buddy,
		rng:       rng,
		THP:       m.THP,
		Compactor: comp,
		procs:     make(map[uint16]*Process, len(m.procs)),
		Stats:     m.Stats,
	}
	for asid, p := range m.procs {
		c.procs[asid] = p.Clone()
	}
	return c
}
