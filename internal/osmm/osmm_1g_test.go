package osmm

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/physmem"
)

func TestMmap1GBasics(t *testing.T) {
	b := physmem.MustNew(4 << 30)
	m := NewManager(b, rand.New(rand.NewSource(1)), true)
	p, _ := m.NewProcess(1)
	base, err := m.Mmap1G(p, 64<<20) // rounds up to one 1GB page
	if err != nil {
		t.Fatal(err)
	}
	if uint64(base)%(1<<30) != 0 {
		t.Errorf("1GB mapping at %#x not 1GB-aligned", uint64(base))
	}
	pa, size, ok := p.PT.Translate(base + 0x1234_5678)
	if !ok || size != addr.Page1G {
		t.Fatalf("translate = %v %v", size, ok)
	}
	if pa.PageOffset(addr.Page1G) != 0x1234_5678 {
		t.Errorf("offset not preserved: %#x", uint64(pa))
	}
	if p.SuperpageCoverage() != 1 {
		t.Errorf("coverage = %v", p.SuperpageCoverage())
	}
	if !p.ChunkIsSuper(base + 123456) {
		t.Error("ChunkIsSuper false inside a 1GB page")
	}
	if b.FreeBytes() != 3<<30 {
		t.Errorf("free = %d, want 3GB", b.FreeBytes())
	}
}

func TestMmap1GMultipleChunks(t *testing.T) {
	b := physmem.MustNew(4 << 30)
	m := NewManager(b, rand.New(rand.NewSource(1)), true)
	p, _ := m.NewProcess(1)
	base, err := m.Mmap1G(p, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{0, 1 << 30, 2<<30 - 4096} {
		if _, size, ok := p.PT.Translate(base + addr.VAddr(off)); !ok || size != addr.Page1G {
			t.Errorf("offset %#x: %v %v", off, size, ok)
		}
	}
	if p.MappedBytes() != 2<<30 {
		t.Errorf("mapped = %d", p.MappedBytes())
	}
}

func TestMmap1GFailsWithoutContiguity(t *testing.T) {
	b := physmem.MustNew(2 << 30)
	rng := rand.New(rand.NewSource(2))
	// Shred memory so no free 1GB block exists.
	if _, err := physmem.Run(b, rng, 0.3, 0.9); err != nil {
		t.Fatal(err)
	}
	m := NewManager(b, rng, true)
	p, _ := m.NewProcess(1)
	if _, err := m.Mmap1G(p, 1<<30); err == nil {
		t.Fatal("1GB mapping succeeded on shredded memory")
	}
	// The failed mapping must not leak.
	if p.MappedBytes() != 0 {
		t.Errorf("mapped = %d after failure", p.MappedBytes())
	}
}

func TestMunmap1G(t *testing.T) {
	b := physmem.MustNew(4 << 30)
	m := NewManager(b, rand.New(rand.NewSource(1)), true)
	p, _ := m.NewProcess(1)
	free0 := b.FreeBytes()
	base, err := m.Mmap1G(p, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	invlpgs := 0
	m.OnInvlpg = func(uint16, addr.VAddr) { invlpgs++ }
	m.Munmap(p, base, 1<<30)
	if b.FreeBytes() != free0 {
		t.Errorf("free = %d after munmap, want %d", b.FreeBytes(), free0)
	}
	if invlpgs != 1 {
		t.Errorf("invlpg events = %d", invlpgs)
	}
	if _, _, ok := p.PT.Translate(base); ok {
		t.Error("translation survived munmap")
	}
	if p.SuperBytes() != 0 {
		t.Errorf("super bytes = %d", p.SuperBytes())
	}
}

func TestMmap1GZeroLength(t *testing.T) {
	b := physmem.MustNew(2 << 30)
	m := NewManager(b, rand.New(rand.NewSource(1)), true)
	p, _ := m.NewProcess(1)
	if _, err := m.Mmap1G(p, 0); err == nil {
		t.Error("zero-length 1GB mmap must error")
	}
}

func TestMixed2M1GMappings(t *testing.T) {
	b := physmem.MustNew(4 << 30)
	m := NewManager(b, rand.New(rand.NewSource(1)), true)
	p, _ := m.NewProcess(1)
	heap, err := m.Mmap1G(p, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	small, err := m.MmapHuge(p, 4<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, size, _ := p.PT.Translate(heap); size != addr.Page1G {
		t.Error("heap not 1GB-backed")
	}
	if _, size, _ := p.PT.Translate(small); size != addr.Page2M {
		t.Error("second region not 2MB-backed")
	}
	if p.SuperpageCoverage() != 1 {
		t.Errorf("coverage = %v", p.SuperpageCoverage())
	}
}
