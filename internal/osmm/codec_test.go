package osmm

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/physmem"
)

// builtManager builds a manager with two processes holding superpage,
// base-page, and 1GB mappings, plus a splinter so the chunk records are
// non-trivial.
func builtManager(t *testing.T) (*Manager, *Process, addr.VAddr) {
	t.Helper()
	buddy := physmem.MustNew(2 << 30)
	m := NewManager(buddy, rand.New(rand.NewSource(7)), true)
	p, err := m.NewProcess(1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Mmap(p, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MmapHuge(p, 4<<20, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Splinter(p, base); err != nil {
		t.Fatal(err)
	}
	p2, err := m.NewProcess(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mmap(p2, 2<<20); err != nil {
		t.Fatal(err)
	}
	return m, p, base
}

// freshTwin rebuilds the same manager/process structure without any
// mappings — the "Build from config" half a snapshot restore starts
// from.
func freshTwin(t *testing.T) *Manager {
	t.Helper()
	m := NewManager(physmem.MustNew(2<<30), rand.New(rand.NewSource(7)), true)
	if _, err := m.NewProcess(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewProcess(2); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestManagerStateRoundTrip: a manager restored from a captured state
// translates every mapping identically, preserves the superpage/base
// split per chunk, and keeps the *Process pointer identities.
func TestManagerStateRoundTrip(t *testing.T) {
	m, p, base := builtManager(t)
	m2 := freshTwin(t)
	p2before := m2.Process(1)
	if err := m2.SetState(m.State()); err != nil {
		t.Fatal(err)
	}
	if m2.Process(1) != p2before {
		t.Error("SetState replaced a process instead of mutating it in place")
	}
	if m2.Stats != m.Stats {
		t.Errorf("restored stats %+v, want %+v", m2.Stats, m.Stats)
	}
	rp := m2.Process(1)
	for off := uint64(0); off < 12<<20; off += 1 << 20 {
		va := base + addr.VAddr(off)
		pa0, s0, ok0 := p.PT.Translate(va)
		pa1, s1, ok1 := rp.PT.Translate(va)
		if pa0 != pa1 || s0 != s1 || ok0 != ok1 {
			t.Errorf("Translate(%#x): original %#x/%v/%v, restored %#x/%v/%v",
				uint64(va), uint64(pa0), s0, ok0, uint64(pa1), s1, ok1)
		}
	}
	if got, want := rp.SuperBytes(), p.SuperBytes(); got != want {
		t.Errorf("restored superpage bytes %d, want %d", got, want)
	}
	if got, want := rp.MappedBytes(), p.MappedBytes(); got != want {
		t.Errorf("restored mapped bytes %d, want %d", got, want)
	}
}

// TestManagerStateRejections: process-set mismatches and corrupt nested
// page-table states are rejected.
func TestManagerStateRejections(t *testing.T) {
	m, _, _ := builtManager(t)

	short := freshTwin(t)
	if _, err := short.NewProcess(3); err != nil {
		t.Fatal(err)
	}
	if err := short.SetState(m.State()); err == nil {
		t.Error("accepted a state with the wrong process count")
	}

	renamed := m.State()
	renamed.Procs = append([]ProcessState(nil), renamed.Procs...)
	renamed.Procs[0].ASID = 42
	if err := freshTwin(t).SetState(renamed); err == nil {
		t.Error("accepted a state naming an unknown ASID")
	}

	corrupt := m.State()
	corrupt.Procs = append([]ProcessState(nil), corrupt.Procs...)
	corrupt.Procs[0].PT.Root.ChildIdx = append(corrupt.Procs[0].PT.Root.ChildIdx, 999)
	if err := freshTwin(t).SetState(corrupt); err == nil {
		t.Error("accepted a corrupt nested page-table state")
	}
}

// TestManagerClone: the clone owns its own address spaces — unmapping
// on the clone leaves the original intact.
func TestManagerClone(t *testing.T) {
	m, p, base := builtManager(t)
	buddy2 := m.Buddy.Clone()
	c := m.Clone(buddy2, rand.New(rand.NewSource(7)), nil)
	cp := c.Process(1)
	if cp == p {
		t.Fatal("clone shares a process with the original")
	}
	pa0, s0, ok0 := p.PT.Translate(base)
	pa1, s1, ok1 := cp.PT.Translate(base)
	if pa0 != pa1 || s0 != s1 || ok0 != ok1 {
		t.Errorf("clone translates %#x/%v/%v, original %#x/%v/%v",
			uint64(pa1), s1, ok1, uint64(pa0), s0, ok0)
	}
	c.Munmap(cp, base, 2<<20)
	if _, _, ok := p.PT.Translate(base); !ok {
		t.Error("unmapping on the clone unmapped the original")
	}
}
