package osmm

import (
	"fmt"
	"sort"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

// ChunkState is one 2MB chunk's backing record, keyed by its VA.
type ChunkState struct {
	VA     addr.VAddr
	Super  bool
	NoHuge bool
	PA     addr.PAddr
	Frames []addr.PAddr
	Pages  int
}

// Chunk1GState is one explicit 1GB mapping.
type Chunk1GState struct {
	VA addr.VAddr
	PA addr.PAddr
}

// ProcessState is one address space's serializable state. Chunks are
// sorted by VA for deterministic encoding.
type ProcessState struct {
	ASID        uint16
	PT          pagetable.TableState
	NextVA      addr.VAddr
	Chunks      []ChunkState
	Chunks1G    []Chunk1GState
	MappedBytes uint64
	SuperBytes  uint64
}

// ManagerState is the OS memory manager's serializable state: every
// process (sorted by ASID) plus the event counters. The buddy, RNG,
// compactor, and the OnInvlpg/OnPromote hooks are wiring, restored by
// the owner.
type ManagerState struct {
	Procs []ProcessState
	Stats Stats
}

func (p *Process) state() ProcessState {
	s := ProcessState{
		ASID:        p.ASID,
		PT:          p.PT.State(),
		NextVA:      p.nextVA,
		MappedBytes: p.mappedBytes,
		SuperBytes:  p.superBytes,
	}
	s.Chunks = make([]ChunkState, 0, len(p.chunks))
	for va, ch := range p.chunks {
		s.Chunks = append(s.Chunks, ChunkState{
			VA: va, Super: ch.super, NoHuge: ch.noHuge, PA: ch.pa,
			Frames: append([]addr.PAddr(nil), ch.frames...), Pages: ch.pages,
		})
	}
	sort.Slice(s.Chunks, func(i, j int) bool { return s.Chunks[i].VA < s.Chunks[j].VA })
	s.Chunks1G = make([]Chunk1GState, 0, len(p.chunks1G))
	for va, pa := range p.chunks1G {
		s.Chunks1G = append(s.Chunks1G, Chunk1GState{VA: va, PA: pa})
	}
	sort.Slice(s.Chunks1G, func(i, j int) bool { return s.Chunks1G[i].VA < s.Chunks1G[j].VA })
	return s
}

// setState restores the address space in place. The *Process and its
// *pagetable.Table identities are preserved, so page walkers and the
// machine's process pointer observe the restored space without
// rewiring.
func (p *Process) setState(s ProcessState) error {
	if s.ASID != p.ASID {
		return fmt.Errorf("osmm: state for ASID %d applied to process %d", s.ASID, p.ASID)
	}
	if err := p.PT.SetState(s.PT); err != nil {
		return err
	}
	p.nextVA = s.NextVA
	p.chunks = make(map[addr.VAddr]*chunk, len(s.Chunks))
	for _, cs := range s.Chunks {
		p.chunks[cs.VA] = &chunk{
			super: cs.Super, noHuge: cs.NoHuge, pa: cs.PA,
			frames: append([]addr.PAddr(nil), cs.Frames...), pages: cs.Pages,
		}
	}
	p.chunks1G = make(map[addr.VAddr]addr.PAddr, len(s.Chunks1G))
	for _, cs := range s.Chunks1G {
		p.chunks1G[cs.VA] = cs.PA
	}
	p.mappedBytes = s.MappedBytes
	p.superBytes = s.SuperBytes
	return nil
}

// State captures the manager and every process it manages.
func (m *Manager) State() ManagerState {
	s := ManagerState{Stats: m.Stats}
	s.Procs = make([]ProcessState, 0, len(m.procs))
	for _, p := range m.procs {
		s.Procs = append(s.Procs, p.state())
	}
	sort.Slice(s.Procs, func(i, j int) bool { return s.Procs[i].ASID < s.Procs[j].ASID })
	return s
}

// SetState restores the manager in place. Every process in the state
// must already exist on the receiver (the machine is rebuilt from the
// same config before state is applied, so the address spaces match);
// each is mutated in place to preserve pointer identity.
func (m *Manager) SetState(s ManagerState) error {
	if len(s.Procs) != len(m.procs) {
		return fmt.Errorf("osmm: state has %d processes, manager has %d", len(s.Procs), len(m.procs))
	}
	for _, ps := range s.Procs {
		p, ok := m.procs[ps.ASID]
		if !ok {
			return fmt.Errorf("osmm: state names unknown ASID %d", ps.ASID)
		}
		if err := p.setState(ps); err != nil {
			return err
		}
	}
	m.Stats = s.Stats
	return nil
}
