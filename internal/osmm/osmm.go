// Package osmm models the operating system's memory manager: per-process
// address spaces, anonymous mmap, and transparent 2MB superpage support in
// the style of Linux THP. When a process maps memory, each 2MB-aligned
// chunk is backed by a 2MB physical block if the buddy allocator can
// provide one, else by 512 scattered base pages — so superpage coverage
// degrades with physical fragmentation exactly as the paper's Fig 3
// measures. It also implements khugepaged-style promotion and superpage
// splintering, firing the invlpg/sweep hooks SEESAW's correctness story
// (Section IV-C2) depends on.
package osmm

import (
	"fmt"
	"math/rand"
	"sort"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
	"seesaw/internal/physmem"
)

// chunk records how one 2MB-aligned VA chunk is backed.
type chunk struct {
	super  bool
	noHuge bool         // region was mapped with superpages disallowed
	pa     addr.PAddr   // 2MB block base when super
	frames []addr.PAddr // 4KB frame per page when !super
	pages  int          // mapped 4KB pages in this chunk (tail chunks may be partial)
}

// Process is one simulated address space.
type Process struct {
	ASID uint16
	PT   *pagetable.Table

	nextVA   addr.VAddr
	chunks   map[addr.VAddr]*chunk     // keyed by 2MB-aligned VA
	chunks1G map[addr.VAddr]addr.PAddr // explicit 1GB mappings, keyed by 1GB-aligned VA

	mappedBytes uint64
	superBytes  uint64
}

// Stats counts manager events.
type Stats struct {
	SuperAllocs    uint64 // 2MB chunks backed by superpages at mmap time
	BaseAllocs     uint64 // 2MB chunks that fell back to base pages
	Promotions     uint64
	PromoteFails   uint64
	Splinters      uint64
	UnmappedBytes  uint64
	Compactions    uint64 // successful compaction-assisted 2MB allocations
	CompactFails   uint64 // compactor found no vacatable region
	CompactGiveups uint64 // pressure heuristic skipped compaction
}

// Compactor relocates movable pages to vacate a naturally aligned block
// of 2^order frames. physmem.Memhog implements it (its pages are movable
// anonymous memory, exactly like the real microbenchmark's).
type Compactor interface {
	Compact(order int) bool
}

// Manager is the OS memory manager.
type Manager struct {
	Buddy *physmem.Buddy
	rng   *rand.Rand

	// THP enables transparent 2MB allocation at mmap time (Linux's
	// "always" mode, as the paper's testbed ran).
	THP bool

	// Compactor, when set, is invoked on failed 2MB allocations —
	// Linux's "sophisticated memory defragmentation algorithms" that
	// keep superpages coming under non-trivial fragmentation (paper
	// Section III-C). Attempts are gated by memory pressure: as free
	// memory tightens, the kernel increasingly gives up.
	Compactor Compactor

	procs map[uint16]*Process
	Stats Stats

	// OnInvlpg fires when the OS invalidates a page's translations
	// (splinter and promote both do); the simulator propagates it to
	// TLBs and TFTs. va is the base of the affected 2MB region.
	OnInvlpg func(asid uint16, va addr.VAddr)
	// OnPromote fires after base pages are promoted: oldFrames are the
	// 4KB frames whose cached lines must be swept (SEESAW's promotion
	// sweep), newPA the fresh 2MB block.
	OnPromote func(asid uint16, vaBase addr.VAddr, oldFrames []addr.PAddr, newPA addr.PAddr)
}

// NewManager creates a manager over the given physical memory.
func NewManager(buddy *physmem.Buddy, rng *rand.Rand, thp bool) *Manager {
	return &Manager{Buddy: buddy, rng: rng, THP: thp, procs: make(map[uint16]*Process)}
}

// alloc2M tries a 2MB allocation, falling back to compaction when
// enabled. The compaction attempt probability drops linearly with free
// memory below 30% (above that the kernel compacts eagerly; close to
// exhaustion it gives up), which is what makes superpage coverage degrade
// gracefully rather than cliff (Fig 3).
func (m *Manager) alloc2M() (addr.PAddr, bool) {
	if pa, ok := m.Buddy.Alloc(addr.Page2M); ok {
		return pa, true
	}
	if m.Compactor == nil {
		return 0, false
	}
	// Attempt probability scales with free memory: with ample memory the
	// kernel compacts eagerly; as pressure mounts it increasingly gives
	// up (watermarks, deferred compaction, unmovable-page interference).
	// Calibrated so coverage stays high through memhog(40%), degrades
	// around 60%, and collapses at 80-90% — the paper's Figs 3 and 12.
	freeFrac := float64(m.Buddy.FreeBytes()) / float64(m.Buddy.TotalBytes())
	p := 1.3 * freeFrac
	if p > 1 {
		p = 1
	}
	if p <= 0 || m.rng.Float64() >= p {
		m.Stats.CompactGiveups++
		return 0, false
	}
	if !m.Compactor.Compact(physmem.Order2M) {
		m.Stats.CompactFails++
		return 0, false
	}
	m.Stats.Compactions++
	return m.Buddy.Alloc(addr.Page2M)
}

// NewProcess creates an address space. VA allocation starts at a
// canonical user-space base.
func (m *Manager) NewProcess(asid uint16) (*Process, error) {
	if _, ok := m.procs[asid]; ok {
		return nil, fmt.Errorf("osmm: ASID %d already exists", asid)
	}
	p := &Process{
		ASID:     asid,
		PT:       pagetable.New(),
		nextVA:   0x5555_5540_0000, // 2MB-aligned, x86-64 mmap-ish base
		chunks:   make(map[addr.VAddr]*chunk),
		chunks1G: make(map[addr.VAddr]addr.PAddr),
	}
	m.procs[asid] = p
	return p, nil
}

// Process returns the process for an ASID, or nil.
func (m *Manager) Process(asid uint16) *Process { return m.procs[asid] }

// Mmap maps length bytes of anonymous memory (rounded up to 4KB) and
// returns the base VA. With THP enabled, each fully covered 2MB-aligned
// chunk is backed by a superpage when the buddy allocator has a free 2MB
// block; everything else falls back to base pages. Partial failure
// unwinds cleanly.
func (m *Manager) Mmap(p *Process, length uint64) (addr.VAddr, error) {
	return m.MmapHuge(p, length, true)
}

// MmapHuge is Mmap with per-region control over superpage eligibility:
// allowHuge=false models regions the OS never backs with superpages
// (madvise(MADV_NOHUGEPAGE), stacks, small file mappings) — the
// base-page-only share of each workload's footprint.
func (m *Manager) MmapHuge(p *Process, length uint64, allowHuge bool) (addr.VAddr, error) {
	if length == 0 {
		return 0, fmt.Errorf("osmm: zero-length mmap")
	}
	pages := (length + 4095) / 4096
	base := p.nextVA
	// Advance the bump pointer to the next 2MB boundary past the region
	// so chunks never straddle regions.
	p.nextVA += addr.VAddr((pages*4096 + (2<<20 - 1)) &^ uint64(2<<20-1))

	var mappedChunks []addr.VAddr
	unwind := func() {
		for _, cva := range mappedChunks {
			m.unmapChunk(p, cva)
		}
	}
	for off := uint64(0); off < pages*4096; off += 2 << 20 {
		cva := base + addr.VAddr(off)
		chunkPages := int((pages*4096 - off + 4095) / 4096)
		if chunkPages > 512 {
			chunkPages = 512
		}
		full := chunkPages == 512
		if m.THP && allowHuge && full {
			if pa, ok := m.alloc2M(); ok {
				if err := p.PT.Map(cva, pa.PPN(addr.Page2M), addr.Page2M); err != nil {
					unwind()
					return 0, err
				}
				p.chunks[cva] = &chunk{super: true, pa: pa, pages: 512}
				p.mappedBytes += 2 << 20
				p.superBytes += 2 << 20
				m.Stats.SuperAllocs++
				mappedChunks = append(mappedChunks, cva)
				continue
			}
		}
		// Base-page fallback.
		c := &chunk{frames: make([]addr.PAddr, 0, chunkPages), pages: chunkPages, noHuge: !allowHuge}
		for i := 0; i < chunkPages; i++ {
			fpa, ok := m.Buddy.Alloc(addr.Page4K)
			if !ok {
				// Out of memory: free this chunk's frames then unwind.
				for _, fp := range c.frames {
					m.Buddy.Free(fp, addr.Page4K)
				}
				unwind()
				return 0, fmt.Errorf("osmm: out of physical memory at %d bytes", off)
			}
			va := cva + addr.VAddr(i*4096)
			if err := p.PT.Map(va, fpa.PPN(addr.Page4K), addr.Page4K); err != nil {
				m.Buddy.Free(fpa, addr.Page4K)
				for _, fp := range c.frames {
					m.Buddy.Free(fp, addr.Page4K)
				}
				unwind()
				return 0, err
			}
			c.frames = append(c.frames, fpa)
		}
		p.chunks[cva] = c
		p.mappedBytes += uint64(chunkPages) * 4096
		if full {
			m.Stats.BaseAllocs++
		}
		mappedChunks = append(mappedChunks, cva)
	}
	return base, nil
}

// Mmap1G maps length bytes (rounded up to 1GB) backed entirely by 1GB
// superpages — the hugetlbfs-style explicit allocation path, since
// transparent 1GB support "is an area of active study" (paper Section
// III-C). It fails if the buddy allocator cannot supply the contiguous
// gigabyte blocks.
func (m *Manager) Mmap1G(p *Process, length uint64) (addr.VAddr, error) {
	if length == 0 {
		return 0, fmt.Errorf("osmm: zero-length mmap")
	}
	nChunks := (length + (1<<30 - 1)) >> 30
	// 1GB pages need 1GB-aligned virtual addresses.
	base := addr.VAddr((uint64(p.nextVA) + (1<<30 - 1)) &^ uint64(1<<30-1))
	p.nextVA = base + addr.VAddr(nChunks<<30)
	var mapped []addr.VAddr
	for i := uint64(0); i < nChunks; i++ {
		va := base + addr.VAddr(i<<30)
		pa, ok := m.Buddy.Alloc(addr.Page1G)
		if !ok {
			for _, v := range mapped {
				m.unmap1G(p, v)
			}
			return 0, fmt.Errorf("osmm: no contiguous 1GB block for chunk %d", i)
		}
		if err := p.PT.Map(va, pa.PPN(addr.Page1G), addr.Page1G); err != nil {
			m.Buddy.Free(pa, addr.Page1G)
			for _, v := range mapped {
				m.unmap1G(p, v)
			}
			return 0, err
		}
		p.chunks1G[va] = pa
		p.mappedBytes += 1 << 30
		p.superBytes += 1 << 30
		mapped = append(mapped, va)
	}
	return base, nil
}

// unmap1G releases one 1GB mapping.
func (m *Manager) unmap1G(p *Process, va addr.VAddr) {
	pa, ok := p.chunks1G[va]
	if !ok {
		return
	}
	p.PT.Unmap(va, addr.Page1G)
	m.Buddy.Free(pa, addr.Page1G)
	p.mappedBytes -= 1 << 30
	p.superBytes -= 1 << 30
	delete(p.chunks1G, va)
	if m.OnInvlpg != nil {
		m.OnInvlpg(p.ASID, va)
	}
}

// unmapChunk releases one chunk's mappings and physical memory.
func (m *Manager) unmapChunk(p *Process, cva addr.VAddr) {
	c, ok := p.chunks[cva]
	if !ok {
		return
	}
	if c.super {
		p.PT.Unmap(cva, addr.Page2M)
		m.Buddy.Free(c.pa, addr.Page2M)
		p.superBytes -= 2 << 20
		p.mappedBytes -= 2 << 20
	} else {
		for i, fpa := range c.frames {
			p.PT.Unmap(cva+addr.VAddr(i*4096), addr.Page4K)
			m.Buddy.Free(fpa, addr.Page4K)
		}
		p.mappedBytes -= uint64(len(c.frames)) * 4096
	}
	delete(p.chunks, cva)
	if m.OnInvlpg != nil {
		m.OnInvlpg(p.ASID, cva)
	}
}

// Munmap unmaps every chunk overlapping [base, base+length), including
// explicit 1GB mappings.
func (m *Manager) Munmap(p *Process, base addr.VAddr, length uint64) {
	start := base.PageBase(addr.Page2M)
	for cva := start; cva < base+addr.VAddr(length); cva += 2 << 20 {
		if _, ok := p.chunks[cva]; ok {
			m.unmapChunk(p, cva)
			m.Stats.UnmappedBytes += 2 << 20
		}
	}
	for gva := base.PageBase(addr.Page1G); gva < base+addr.VAddr(length); gva += 1 << 30 {
		if _, ok := p.chunks1G[gva]; ok {
			m.unmap1G(p, gva)
			m.Stats.UnmappedBytes += 1 << 30
		}
	}
}

// Splinter breaks the superpage backing va into base pages (e.g. for
// finer-grained protection), preserving translations, and fires OnInvlpg.
func (m *Manager) Splinter(p *Process, va addr.VAddr) error {
	cva := va.PageBase(addr.Page2M)
	c, ok := p.chunks[cva]
	if !ok || !c.super {
		return fmt.Errorf("osmm: %#x is not superpage-backed", uint64(va))
	}
	if _, err := p.PT.Splinter(cva); err != nil {
		return err
	}
	// Physical memory stays where it is; bookkeeping switches to frames.
	c.super = false
	c.frames = make([]addr.PAddr, 512)
	for i := range c.frames {
		c.frames[i] = c.pa + addr.PAddr(i*4096)
	}
	// The 2MB buddy block is now owned as 512 base pages: on unmap the
	// frames are freed individually at order 0 and the buddy coalesces
	// them back into the original 2MB block.
	p.superBytes -= 2 << 20
	m.Stats.Splinters++
	if m.OnInvlpg != nil {
		m.OnInvlpg(p.ASID, cva)
	}
	return nil
}

// Promote attempts khugepaged-style promotion of the fully base-mapped
// 2MB region at va: it allocates a fresh 2MB block (fails under
// fragmentation), rewrites the page table, frees the old scattered
// frames, and fires OnPromote (cache sweep) and OnInvlpg.
func (m *Manager) Promote(p *Process, va addr.VAddr) error {
	cva := va.PageBase(addr.Page2M)
	c, ok := p.chunks[cva]
	if !ok || c.super {
		return fmt.Errorf("osmm: %#x is not base-page-backed", uint64(va))
	}
	if c.noHuge {
		return fmt.Errorf("osmm: %#x was mapped with superpages disallowed", uint64(va))
	}
	if c.pages != 512 {
		return fmt.Errorf("osmm: %#x is a partial chunk (%d pages)", uint64(va), c.pages)
	}
	newPA, allocOK := m.alloc2M()
	if !allocOK {
		m.Stats.PromoteFails++
		return fmt.Errorf("osmm: no contiguous 2MB block for promotion")
	}
	if _, err := p.PT.Promote(cva, newPA.PPN(addr.Page2M)); err != nil {
		m.Buddy.Free(newPA, addr.Page2M)
		return err
	}
	oldFrames := c.frames
	for _, fpa := range oldFrames {
		m.Buddy.Free(fpa, addr.Page4K)
	}
	c.super = true
	c.pa = newPA
	c.frames = nil
	p.superBytes += 2 << 20
	m.Stats.Promotions++
	if m.OnInvlpg != nil {
		m.OnInvlpg(p.ASID, cva)
	}
	if m.OnPromote != nil {
		m.OnPromote(p.ASID, cva, oldFrames, newPA)
	}
	return nil
}

// PromoteScan walks up to maxChunks base-mapped full chunks of p and
// attempts promotion, returning how many succeeded. This is the
// khugepaged background pass.
func (m *Manager) PromoteScan(p *Process, maxChunks int) int {
	// Scan candidates in address order: the chunk map's random iteration
	// order must not decide which chunks get promoted when maxChunks caps
	// the pass, or runs stop being reproducible.
	cvas := make([]addr.VAddr, 0, len(p.chunks))
	for cva, c := range p.chunks {
		if !c.super && !c.noHuge && c.pages == 512 {
			cvas = append(cvas, cva)
		}
	}
	sort.Slice(cvas, func(i, j int) bool { return cvas[i] < cvas[j] })
	promoted := 0
	for _, cva := range cvas {
		if promoted >= maxChunks {
			break
		}
		if m.Promote(p, cva) == nil {
			promoted++
		}
	}
	return promoted
}

// SuperpageCoverage returns the fraction of p's mapped bytes backed by
// 2MB superpages — the paper's Fig 3 metric.
func (p *Process) SuperpageCoverage() float64 {
	if p.mappedBytes == 0 {
		return 0
	}
	return float64(p.superBytes) / float64(p.mappedBytes)
}

// MappedBytes returns the total mapped footprint.
func (p *Process) MappedBytes() uint64 { return p.mappedBytes }

// SuperBytes returns the superpage-backed footprint.
func (p *Process) SuperBytes() uint64 { return p.superBytes }

// SuperChunkVAs returns the base VAs of the chunks currently backed by
// 2MB superpages, in ascending address order — the deterministic
// candidate list fault injection splinters from (explicit 1GB mappings
// are not splinterable and are excluded).
func (p *Process) SuperChunkVAs() []addr.VAddr {
	var out []addr.VAddr
	for cva, c := range p.chunks {
		if c.super {
			out = append(out, cva)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChunkVAs returns the base VAs of every mapped 2MB chunk in ascending
// address order (shootdown-burst targeting).
func (p *Process) ChunkVAs() []addr.VAddr {
	out := make([]addr.VAddr, 0, len(p.chunks))
	for cva := range p.chunks {
		out = append(out, cva)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChunkIsSuper reports whether the chunk containing va is superpage-
// backed — by a 2MB page or an explicit 1GB page.
func (p *Process) ChunkIsSuper(va addr.VAddr) bool {
	if _, ok := p.chunks1G[va.PageBase(addr.Page1G)]; ok {
		return true
	}
	c, ok := p.chunks[va.PageBase(addr.Page2M)]
	return ok && c.super
}
