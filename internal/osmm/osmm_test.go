package osmm

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/physmem"
)

func newMgr(t *testing.T, memBytes uint64, thp bool) (*Manager, *Process) {
	t.Helper()
	b := physmem.MustNew(memBytes)
	m := NewManager(b, rand.New(rand.NewSource(1)), thp)
	p, err := m.NewProcess(1)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestMmapTHPPrefersSuperpages(t *testing.T) {
	m, p := newMgr(t, 64<<20, true)
	base, err := m.Mmap(p, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if base%(2<<20) != 0 {
		t.Errorf("mmap base %#x not 2MB-aligned", uint64(base))
	}
	if p.SuperpageCoverage() != 1.0 {
		t.Errorf("coverage = %v, want 1.0 on pristine memory", p.SuperpageCoverage())
	}
	if m.Stats.SuperAllocs != 4 {
		t.Errorf("super allocs = %d, want 4", m.Stats.SuperAllocs)
	}
	// Every address translates, at 2MB granularity.
	pa, size, ok := p.PT.Translate(base + 3<<20 | 0x123)
	if !ok || size != addr.Page2M {
		t.Errorf("translate = %#x %v %v", uint64(pa), size, ok)
	}
}

func TestMmapWithoutTHPUsesBasePages(t *testing.T) {
	m, p := newMgr(t, 64<<20, false)
	if _, err := m.Mmap(p, 4<<20); err != nil {
		t.Fatal(err)
	}
	if p.SuperpageCoverage() != 0 {
		t.Errorf("coverage = %v with THP off", p.SuperpageCoverage())
	}
	_ = m
}

func TestMmapPartialTailChunkUsesBasePages(t *testing.T) {
	m, p := newMgr(t, 64<<20, true)
	base, err := m.Mmap(p, 2<<20+4096) // one full chunk + one page
	if err != nil {
		t.Fatal(err)
	}
	if !p.ChunkIsSuper(base) {
		t.Error("full chunk should be super")
	}
	if p.ChunkIsSuper(base + 2<<20) {
		t.Error("partial tail chunk must use base pages")
	}
	if p.MappedBytes() != 2<<20+4096 {
		t.Errorf("mapped = %d", p.MappedBytes())
	}
	// The tail page translates at 4KB.
	_, size, ok := p.PT.Translate(base + 2<<20)
	if !ok || size != addr.Page4K {
		t.Errorf("tail translate = %v %v", size, ok)
	}
}

func TestMmapFallsBackUnderFragmentation(t *testing.T) {
	b := physmem.MustNew(128 << 20)
	rng := rand.New(rand.NewSource(5))
	// memhog pins 60% of memory (touching 90%, with the churn excess
	// freed at scattered positions): only the untouched ~10% can still
	// serve 2MB blocks. No compactor is registered here, so the OS must
	// fall back to base pages.
	if _, err := physmem.Run(b, rng, 0.6, 0.97); err != nil {
		t.Fatal(err)
	}
	m := NewManager(b, rng, true)
	p, _ := m.NewProcess(1)
	if _, err := m.Mmap(p, 32<<20); err != nil {
		t.Fatal(err)
	}
	cov := p.SuperpageCoverage()
	if cov >= 1.0 {
		t.Errorf("coverage = %v under heavy fragmentation, expected < 1", cov)
	}
	if p.MappedBytes() != 32<<20 {
		t.Errorf("mapped = %d despite fallback", p.MappedBytes())
	}
	// Every page must still translate.
	base := addr.VAddr(0x5555_5540_0000)
	for off := uint64(0); off < 32<<20; off += 4096 {
		if _, _, ok := p.PT.Translate(base + addr.VAddr(off)); !ok {
			t.Fatalf("page at +%d unmapped", off)
		}
	}
}

func TestCoverageDecreasesWithFragmentation(t *testing.T) {
	prev := 2.0
	covs := make([]float64, 0, 3)
	for _, frac := range []float64{0.0, 0.3, 0.6} {
		b := physmem.MustNew(128 << 20)
		rng := rand.New(rand.NewSource(7))
		physmem.Run(b, rng, frac, 0.97)
		m := NewManager(b, rng, true)
		p, _ := m.NewProcess(1)
		if _, err := m.Mmap(p, 32<<20); err != nil {
			t.Fatal(err)
		}
		cov := p.SuperpageCoverage()
		if cov > prev {
			t.Errorf("memhog %.0f%%: coverage %.2f increased vs %.2f", frac*100, cov, prev)
		}
		prev = cov
		covs = append(covs, cov)
	}
	if covs[0] != 1.0 {
		t.Errorf("pristine coverage = %v, want 1", covs[0])
	}
	if covs[2] >= covs[0] {
		t.Errorf("heavy fragmentation did not reduce coverage: %v", covs)
	}
}

func TestMunmapReleasesMemory(t *testing.T) {
	m, p := newMgr(t, 64<<20, true)
	free0 := m.Buddy.FreeBytes()
	base, _ := m.Mmap(p, 6<<20)
	m.Munmap(p, base, 6<<20)
	if m.Buddy.FreeBytes() != free0 {
		t.Errorf("free = %d, want %d after munmap", m.Buddy.FreeBytes(), free0)
	}
	if p.MappedBytes() != 0 {
		t.Errorf("mapped = %d after munmap", p.MappedBytes())
	}
	if _, _, ok := p.PT.Translate(base); ok {
		t.Error("translation survived munmap")
	}
}

func TestSplinterFiresInvlpgAndKeepsTranslations(t *testing.T) {
	m, p := newMgr(t, 64<<20, true)
	base, _ := m.Mmap(p, 2<<20)
	paBefore, _, _ := p.PT.Translate(base + 0x1234)
	var invlpgs []addr.VAddr
	m.OnInvlpg = func(asid uint16, va addr.VAddr) { invlpgs = append(invlpgs, va) }
	if err := m.Splinter(p, base+999); err != nil {
		t.Fatal(err)
	}
	if len(invlpgs) != 1 || invlpgs[0] != base {
		t.Errorf("invlpg events = %v", invlpgs)
	}
	paAfter, size, ok := p.PT.Translate(base + 0x1234)
	if !ok || size != addr.Page4K || paAfter != paBefore {
		t.Errorf("post-splinter translate = %#x %v %v, want same PA at 4KB",
			uint64(paAfter), size, ok)
	}
	if p.SuperpageCoverage() != 0 {
		t.Errorf("coverage = %v after splinter", p.SuperpageCoverage())
	}
	if err := m.Splinter(p, base); err == nil {
		t.Error("double splinter must fail")
	}
	// Unmap after splinter returns all memory (frames coalesce).
	free := m.Buddy.FreeBytes()
	m.Munmap(p, base, 2<<20)
	if m.Buddy.FreeBytes() != free+2<<20 {
		t.Error("splintered chunk did not free cleanly")
	}
}

func TestPromoteMovesToFreshBlockAndFiresHooks(t *testing.T) {
	m, p := newMgr(t, 64<<20, false) // THP off -> base pages
	base, _ := m.Mmap(p, 2<<20)
	var promoteEvents int
	var sweptOld []addr.PAddr
	m.OnPromote = func(asid uint16, va addr.VAddr, old []addr.PAddr, newPA addr.PAddr) {
		promoteEvents++
		sweptOld = old
		if newPA%(2<<20) != 0 {
			t.Errorf("promoted block %#x misaligned", uint64(newPA))
		}
	}
	invlpgs := 0
	m.OnInvlpg = func(uint16, addr.VAddr) { invlpgs++ }
	if err := m.Promote(p, base+12345); err != nil {
		t.Fatal(err)
	}
	if promoteEvents != 1 || invlpgs != 1 {
		t.Errorf("events: promote=%d invlpg=%d", promoteEvents, invlpgs)
	}
	if len(sweptOld) != 512 {
		t.Errorf("old frames = %d, want 512", len(sweptOld))
	}
	if p.SuperpageCoverage() != 1 {
		t.Errorf("coverage = %v after promote", p.SuperpageCoverage())
	}
	if _, size, _ := p.PT.Translate(base); size != addr.Page2M {
		t.Error("promotion did not rewrite the page table")
	}
	if m.Stats.Promotions != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestPromoteFailsWithoutContiguousMemory(t *testing.T) {
	// 8MB of memory, THP off; map ~all of it as base pages, then
	// fragment what's left so no 2MB block exists.
	b := physmem.MustNew(8 << 20)
	rng := rand.New(rand.NewSource(3))
	m := NewManager(b, rng, false)
	p, _ := m.NewProcess(1)
	base, err := m.Mmap(p, 6<<20)
	if err != nil {
		t.Fatal(err)
	}
	physmem.Run(b, rng, 0.2, 0.9) // fragment the remainder
	if b.FreeBytesAtLeast(physmem.Order2M) >= 2<<20 {
		t.Skip("fragmentation attempt left a 2MB block; adjust seed")
	}
	if err := m.Promote(p, base); err == nil {
		t.Error("promotion must fail without a free 2MB block")
	}
	if m.Stats.PromoteFails != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestPromoteScan(t *testing.T) {
	m, p := newMgr(t, 64<<20, false)
	m.Mmap(p, 8<<20)
	n := m.PromoteScan(p, 2)
	if n != 2 {
		t.Errorf("promoted %d chunks, want 2", n)
	}
	n = m.PromoteScan(p, 100)
	if n != 2 {
		t.Errorf("second scan promoted %d, want remaining 2", n)
	}
	if p.SuperpageCoverage() != 1 {
		t.Errorf("coverage = %v", p.SuperpageCoverage())
	}
}

func TestProcessManagement(t *testing.T) {
	m, _ := newMgr(t, 16<<20, true)
	if _, err := m.NewProcess(1); err == nil {
		t.Error("duplicate ASID must error")
	}
	if m.Process(1) == nil || m.Process(2) != nil {
		t.Error("Process lookup wrong")
	}
	if _, err := m.Mmap(m.Process(1), 0); err == nil {
		t.Error("zero-length mmap must error")
	}
}

func TestMmapOutOfMemory(t *testing.T) {
	m, p := newMgr(t, 8<<20, true)
	if _, err := m.Mmap(p, 64<<20); err == nil {
		t.Fatal("mmap larger than physical memory must fail")
	}
	// Failure must unwind completely.
	if p.MappedBytes() != 0 {
		t.Errorf("mapped = %d after failed mmap", p.MappedBytes())
	}
	if m.Buddy.FreeBytes() != 8<<20 {
		t.Errorf("leaked memory: free = %d", m.Buddy.FreeBytes())
	}
}

func TestTwoProcessesIsolated(t *testing.T) {
	m, p1 := newMgr(t, 64<<20, true)
	p2, _ := m.NewProcess(2)
	b1, _ := m.Mmap(p1, 2<<20)
	b2, _ := m.Mmap(p2, 2<<20)
	pa1, _, _ := p1.PT.Translate(b1)
	pa2, _, _ := p2.PT.Translate(b2)
	if pa1 == pa2 {
		t.Error("two processes share a physical block")
	}
}
