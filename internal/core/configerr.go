package core

import "fmt"

// Rule identifies, machine-readably, which configuration constraint a
// ConfigError reports. The values are stable API: the evolutionary
// search's mutation operators (internal/evolve) switch on them to prune
// geometry-impossible genomes instead of crashing a worker, and tests
// pin them, so renaming one is a breaking change.
//
// The type lives here so design descriptors (see registry.go) can
// report typed geometry rejections; internal/machine aliases it and its
// values, which is where most callers import them from.
type Rule string

const (
	// RulePartitionsNotPow2: the partition count of a way-partitioned
	// design must be a positive power of two (the partition selector is
	// an address-bit decoder).
	RulePartitionsNotPow2 Rule = "partitions-not-power-of-two"
	// RulePartitionsExceedWays: more partitions than ways leaves some
	// partitions with no ways at all.
	RulePartitionsExceedWays Rule = "partitions-exceed-ways"
	// RuleWaysNotDivisible: ways must divide evenly into partitions so
	// every partition has the same width.
	RuleWaysNotDivisible Rule = "ways-not-divisible-into-partitions"
	// RuleTFTEntriesNegative: a negative TFT entry count is not a
	// geometry (0 means "paper default").
	RuleTFTEntriesNegative Rule = "tft-entries-negative"
	// RuleTFTAssocInvalid: TFT associativity must lie in [0, Entries]
	// (0 and 1 both mean direct-mapped).
	RuleTFTAssocInvalid Rule = "tft-assoc-exceeds-entries"
	// RuleTFTEntriesNotDivisible: a set-associative TFT needs Entries
	// divisible by Assoc so every set has the same width.
	RuleTFTEntriesNotDivisible Rule = "tft-entries-not-divisible-by-assoc"
	// RuleTFTSetsNotPow2: a set-associative TFT's set count
	// (Entries/Assoc) must be a power of two. Direct-mapped TFTs are
	// exempt: they index with the paper's MOD-entries hash, which is
	// what makes the Fig 13 12- and 20-entry study points valid.
	RuleTFTSetsNotPow2 Rule = "tft-sets-not-power-of-two"
	// RuleSpecThresholdNegative: the speculation threshold is an entry
	// count; negative values are not meaningful (0 = paper default).
	RuleSpecThresholdNegative Rule = "spec-threshold-negative"
	// RuleSchedulerContradiction: the scheduler cannot be pinned both
	// always-fast and always-slow.
	RuleSchedulerContradiction Rule = "scheduler-contradiction"
	// RuleMemhogRange: the memhog fraction must lie in [0, 0.95].
	RuleMemhogRange Rule = "memhog-out-of-range"
	// RuleTraceWarmup: warmup needs online generation, so a replay
	// trace cannot carry a warmup phase.
	RuleTraceWarmup Rule = "trace-with-warmup"
	// RuleUnknownDesign: the named cache design is not in the registry.
	// Unknown names are a hard rejection, never a silent fallback to the
	// baseline.
	RuleUnknownDesign Rule = "unknown-design"
)

// ConfigError is the typed, machine-readable form of a configuration
// rejection: which field, which value, and which rule it broke.
// sim.Config.Validate returns one (as error) for every knob combination
// it can attribute to a single constraint; callers unwrap it with
// errors.As. Errors surfaced from deeper constructors (SRAM latency
// tables, CPU models) remain plain errors.
type ConfigError struct {
	// Field names the offending Config field, e.g. "Partitions" or
	// "TFT.Assoc".
	Field string
	// Value is the rejected value, rendered.
	Value string
	// Rule is the stable machine-readable rule identifier.
	Rule Rule
	// Detail explains the constraint for humans.
	Detail string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s=%s violates %s: %s", e.Field, e.Value, e.Rule, e.Detail)
}

// configErr builds a ConfigError.
func configErr(field string, value any, rule Rule, format string, args ...any) *ConfigError {
	return &ConfigError{
		Field:  field,
		Value:  fmt.Sprint(value),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	}
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// partitionRules is the shared geometry validator of the
// way-partitioned designs (SEESAW, VESPA): Partitions == 0 means "use
// the design default" and is always legal; an explicit count must be a
// power of two that divides the ways evenly.
func partitionRules(c Config) *ConfigError {
	if c.Partitions == 0 {
		return nil
	}
	switch {
	case !isPow2(c.Partitions):
		return configErr("Partitions", c.Partitions, RulePartitionsNotPow2,
			"partition count must be a positive power of two")
	case c.Partitions > c.Ways:
		return configErr("Partitions", c.Partitions, RulePartitionsExceedWays,
			"%d partitions over %d ways leaves empty partitions", c.Partitions, c.Ways)
	case c.Ways%c.Partitions != 0:
		return configErr("Partitions", c.Partitions, RuleWaysNotDivisible,
			"%d ways do not divide into %d equal partitions", c.Ways, c.Partitions)
	}
	return nil
}
