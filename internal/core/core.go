// Package core implements the paper's contribution: the SEESAW
// (Set-Enhanced Superpage-Aware) L1 data cache, alongside the baseline
// VIPT cache it improves on and the serial PIPT design alternative it is
// compared against in Fig 14.
//
// All three present the same L1Cache interface to the CPU models and the
// coherence layer. Lookups report their latency in cycles, how many ways
// they probed, and their energy, so the simulator can account performance
// and energy exactly as the paper's Tables I/III describe.
package core

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/sram"
	"seesaw/internal/tft"
)

// AccessResult describes one CPU-side L1 lookup.
type AccessResult struct {
	// Hit reports whether the line was found (the caller fetches from
	// the next level and calls Fill otherwise).
	Hit bool
	// State is the MOESI state of the hit line (Invalid on a miss); the
	// simulator uses it to detect stores that need a coherence upgrade.
	State cache.State
	// Cycles is the L1 lookup latency (TLB/L2/walk penalties are
	// accounted separately by the TLB hierarchy).
	Cycles int
	// FastPath reports a SEESAW partition-only lookup (TFT hit). For
	// baseline and PIPT caches it is always false.
	FastPath bool
	// WaysProbed counts ways read by this lookup.
	WaysProbed int
	// EnergyNJ is the lookup energy.
	EnergyNJ float64
	// Superpage reports the access touched superpage-backed memory.
	Superpage bool
	// TFTHit reports the TFT predicted a superpage (SEESAW only).
	TFTHit bool
}

// FillResult describes a line installation after a miss.
type FillResult struct {
	// Victim is the displaced line, if any.
	Victim cache.Victim
	// VictimPA is the physical line address of the victim (valid iff
	// Victim.Valid).
	VictimPA addr.PAddr
	// Writeback reports the victim was dirty.
	Writeback bool
	// EnergyNJ is the installation energy (victim selection + write).
	EnergyNJ float64
}

// ProbeResult describes a coherence lookup (invalidation or probe).
type ProbeResult struct {
	Hit        bool
	State      cache.State
	WaysProbed int
	EnergyNJ   float64
}

// SnoopOp is the action a coherence probe applies on a hit.
type SnoopOp int

const (
	// SnoopPeek only observes (directory consistency checks).
	SnoopPeek SnoopOp = iota
	// SnoopInvalidate removes the line (store by another core).
	SnoopInvalidate
	// SnoopDowngrade demotes M/E to O/S (load by another core); the
	// line stays resident.
	SnoopDowngrade
)

// L1Cache is the interface shared by the SEESAW, baseline VIPT, and PIPT
// L1 data caches.
type L1Cache interface {
	// Name identifies the design for reports.
	Name() string
	// Access performs a CPU-side lookup; store marks intent to write
	// (a hit on a non-writable state still counts as a hit here — the
	// coherence layer upgrades it).
	Access(va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) AccessResult
	// Fill installs pa after a miss. store selects Modified vs
	// Exclusive/Shared; shared reports other caches hold the line.
	Fill(pa addr.PAddr, psize addr.PageSize, store, shared bool) FillResult
	// Snoop performs a coherence lookup with the given operation.
	Snoop(pa addr.PAddr, op SnoopOp) ProbeResult
	// UpgradeToModified marks a resident line Modified (store hit after
	// coherence permission is granted). It is a no-op if absent.
	UpgradeToModified(pa addr.PAddr)
	// EvictRange sweeps all lines in [lo,hi) (superpage promotion).
	EvictRange(lo, hi addr.PAddr) []cache.Victim
	// FastCycles and SlowCycles expose the two possible hit latencies;
	// for designs without a fast path they are equal. The OoO
	// scheduler's speculation logic needs both.
	FastCycles() int
	SlowCycles() int
	// Storage exposes the underlying array for stats.
	Storage() *cache.Cache
	// Clone returns an independent deep copy of the design's warm state
	// (tags, recency, TFT, way-predictor history, statistics), for
	// warm-state snapshots.
	Clone() L1Cache
}

// Config describes an L1 data cache design point.
type Config struct {
	SizeBytes uint64
	Ways      int
	// Partitions is the SEESAW way-partition count; baseline and PIPT
	// designs ignore it.
	Partitions int
	// FreqGHz converts SRAM nanoseconds to cycles.
	FreqGHz float64
	// TFT configures SEESAW's filter table; zero value = paper default.
	TFT tft.Config
	// Policy selects SEESAW's insertion policy (default FourWay).
	Policy InsertionPolicy
	// SerialTLBCycles, for PIPT only: cycles of TLB lookup serialized
	// before the cache access (VIPT designs overlap this).
	SerialTLBCycles int
	// WayPredict enables the MRU way predictor (Fig 15): correct
	// predictions read one way; mispredictions pay a second probe of the
	// relevant scope (the whole set for baseline, the partition for
	// SEESAW fast-path accesses).
	WayPredict bool
	// Replacement selects the victim policy (LRU, the paper's choice,
	// or SRRIP for the replacement ablation).
	Replacement cache.Replacement
}

// InsertionPolicy selects how SEESAW picks insertion victims
// (Section IV-B1).
type InsertionPolicy int

const (
	// FourWay (the paper's choice): every line — base page or superpage
	// — inserts into the partition its *physical* address names, with
	// partition-local LRU. Correct under page-size aliasing and makes
	// coherence lookups partition-filterable.
	FourWay InsertionPolicy = iota
	// FourEightWay (the ablation): superpages insert into their
	// partition; base pages use global LRU across the whole set.
	// Coherence probes must then search the full set.
	FourEightWay
)

func (p InsertionPolicy) String() string {
	if p == FourWay {
		return "4way"
	}
	return "4way-8way"
}

// timing bundles the precomputed latency/energy numbers of a design.
type timing struct {
	fastCycles  int
	slowCycles  int
	eFull       float64 // full-set probe energy
	ePart       float64 // partition probe energy
	eOne        float64 // single-way probe energy (way prediction)
	eFill       float64 // line install energy (one-way write)
	eVictimFull float64 // victim-selection overhead, global scope
	eVictimPart float64 // victim-selection overhead, partition scope
}

func newTiming(cfg Config, partitions int) (timing, error) {
	var t timing
	slowNS, err := sram.Latency(cfg.SizeBytes, cfg.Ways)
	if err != nil {
		return t, err
	}
	t.slowCycles = sram.Cycles(slowNS, cfg.FreqGHz)
	t.fastCycles = t.slowCycles
	wpp := cfg.Ways / partitions
	if partitions > 1 {
		fastNS, err := sram.ProbeLatency(cfg.SizeBytes, wpp, cfg.Ways)
		if err != nil {
			return t, err
		}
		t.fastCycles = sram.Cycles(fastNS, cfg.FreqGHz)
	}
	if t.eFull, err = sram.ProbeEnergy(cfg.SizeBytes, cfg.Ways, cfg.Ways); err != nil {
		return t, err
	}
	if partitions > 1 {
		if t.ePart, err = sram.ProbeEnergy(cfg.SizeBytes, wpp, cfg.Ways); err != nil {
			return t, err
		}
	} else {
		t.ePart = t.eFull
	}
	if t.eOne, err = sram.ProbeEnergy(cfg.SizeBytes, 1, cfg.Ways); err != nil {
		return t, err
	}
	// A fill writes one way; we charge the direct-mapped access energy
	// of the array as the write cost, plus an LRU victim-selection
	// overhead proportional to the replacement scope (the reason the
	// paper's 4way policy also saves installation energy).
	if t.eFill, err = sram.Energy(cfg.SizeBytes, 1); err != nil {
		return t, err
	}
	t.eVictimFull = t.eFull * 0.15
	t.eVictimPart = t.ePart * 0.15
	return t, nil
}

func validateFreq(cfg Config) error {
	if cfg.FreqGHz <= 0 {
		return fmt.Errorf("core: non-positive frequency %v", cfg.FreqGHz)
	}
	return nil
}

// fillState picks the MOESI state for a newly installed line.
func fillState(store, shared bool) cache.State {
	switch {
	case store:
		return cache.Modified
	case shared:
		return cache.Shared
	default:
		return cache.Exclusive
	}
}

// snoopApply applies a snoop operation to a hit line and returns whether
// the line stays resident.
func snoopApply(c *cache.Cache, set, way int, op SnoopOp) {
	switch op {
	case SnoopPeek:
	case SnoopInvalidate:
		c.SetState(set, way, cache.Invalid)
	case SnoopDowngrade:
		switch c.StateOf(set, way) {
		case cache.Modified:
			c.SetState(set, way, cache.Owned)
		case cache.Exclusive:
			c.SetState(set, way, cache.Shared)
		}
	}
}
