package core

import (
	"encoding/json"
	"fmt"

	"seesaw/internal/tft"
)

// DesignName implements DesignNamed.
func (b *BaselineVIPT) DesignName() string { return "baseline" }

// DesignName implements DesignNamed.
func (s *Seesaw) DesignName() string { return "seesaw" }

// DesignName implements DesignNamed.
func (p *PIPT) DesignName() string { return "pipt" }

// init registers the built-in zoo in its canonical enumeration order:
// the paper's baseline first, the paper's design, the serial
// alternative, then the zoo additions.
func init() {
	Register(Design{
		Name:    "baseline",
		Display: "VIPT (baseline)",
		Legacy:  0,
		New: func(c Config) (L1Cache, error) {
			v, err := NewBaselineVIPT(c)
			if err != nil {
				return nil, err
			}
			return v, nil
		},
		FastPath: true,
		State: func(l L1Cache, st *L1State) {
			if v := l.(*BaselineVIPT); v.wp != nil {
				ws := v.wp.State()
				st.WP = &ws
			}
		},
		SetState: func(l L1Cache, st L1State) error {
			if st.TFT != nil {
				return fmt.Errorf("core: baseline VIPT state carries a TFT")
			}
			return setWP(l.(*BaselineVIPT).wp, st.WP)
		},
	})
	Register(Design{
		Name:    "seesaw",
		Display: "SEESAW",
		Legacy:  1,
		New: func(c Config) (L1Cache, error) {
			s, err := NewSeesaw(c)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		Validate:   partitionRules,
		UsesTFT:    true,
		Speculates: true,
		FastPath:   true,
		AreaBytes: func(c Config) uint64 {
			return uint64(tft.New(c.TFT).SizeBytes())
		},
		State: func(l L1Cache, st *L1State) {
			s := l.(*Seesaw)
			fs := s.f.State()
			st.TFT = &fs
			st.Stats = s.Stats
			if s.wp != nil {
				ws := s.wp.State()
				st.WP = &ws
			}
		},
		SetState: func(l L1Cache, st L1State) error {
			s := l.(*Seesaw)
			if st.TFT == nil {
				return fmt.Errorf("core: SEESAW state is missing its TFT")
			}
			if err := s.f.SetState(*st.TFT); err != nil {
				return err
			}
			s.Stats = st.Stats
			return setWP(s.wp, st.WP)
		},
	})
	Register(Design{
		Name:    "pipt",
		Display: "PIPT (small TLB)",
		Legacy:  2,
		New: func(c Config) (L1Cache, error) {
			p, err := NewPIPT(c)
			if err != nil {
				return nil, err
			}
			return p, nil
		},
		FastPath:       true,
		ChaosSerialTLB: 2,
		ChaosSmallTLB:  true,
		ChaosL1Ways:    4,
		SetState: func(l L1Cache, st L1State) error {
			if st.TFT != nil || st.WP != nil {
				return fmt.Errorf("core: PIPT state carries a TFT or way predictor")
			}
			return nil
		},
	})
	Register(Design{
		Name:    "vespa",
		Display: "VESPA",
		Legacy:  -1,
		New: func(c Config) (L1Cache, error) {
			v, err := NewVespa(c)
			if err != nil {
				return nil, err
			}
			return v, nil
		},
		Validate:   partitionRules,
		Speculates: true,
		State: func(l L1Cache, st *L1State) {
			v := l.(*Vespa)
			// Design-specific statistics ride the opaque Extra field:
			// the gob wire shape of L1State stays fixed as the zoo grows.
			b, err := json.Marshal(v.Stats)
			if err != nil {
				panic(fmt.Sprintf("core: VESPA stats encode: %v", err)) // struct of uint64s cannot fail
			}
			st.Extra = b
		},
		SetState: func(l L1Cache, st L1State) error {
			v := l.(*Vespa)
			if st.TFT != nil || st.WP != nil {
				return fmt.Errorf("core: VESPA state carries a TFT or way predictor")
			}
			if len(st.Extra) == 0 {
				return fmt.Errorf("core: VESPA state is missing its statistics")
			}
			var vs VespaStats
			if err := json.Unmarshal(st.Extra, &vs); err != nil {
				return fmt.Errorf("core: VESPA stats decode: %w", err)
			}
			v.Stats = vs
			return nil
		},
	})
}
