package core

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
)

// VespaStats counts VESPA's lookup split: superpage-backed accesses ride
// the full-index fast path, base-page accesses pay the associative
// search.
type VespaStats struct {
	Accesses      uint64
	SuperAccesses uint64 // superpage-backed: single-partition fast probes
	SuperHits     uint64
	SuperMisses   uint64
	BaseAccesses  uint64 // base pages: full-set slow probes

	// Coherence lookups pay only the partition cost under the 4way
	// policy, as in SEESAW.
	CoherenceProbes uint64

	// PromotionSweeps counts EvictRange sweeps from page promotions;
	// SweptLines the lines they evicted.
	PromotionSweeps uint64
	SweptLines      uint64
}

// Vespa is the authors' precursor design (per PAPERS.md): a
// superpage-aware VIPT cache. Accesses to 2MB-backed data may use
// virtual index bits beyond the 4KB page offset — those bits equal the
// physical ones inside a superpage — so they index the full cache and
// probe a single partition's ways. Base-page accesses are restricted to
// the page-offset index bits and search the whole set.
//
// Unlike SEESAW there is no TFT: the page size is taken from the TLB
// (the simulator's Access already carries the translation's ground
// truth), so VESPA pays no filter-table SRAM and never mispredicts —
// but it also has no way to accelerate an access whose translation has
// not resolved, which is the gap SEESAW's TFT closes. In this model the
// difference shows up through fragmentation: when the OS splinters
// superpages, VESPA's fast-path share collapses with the superpage
// reference share.
type Vespa struct {
	cfg  Config
	geom addr.CacheGeometry
	c    *cache.Cache
	t    timing

	Stats VespaStats
}

// NewVespa builds a VESPA cache. Partitions defaults to Ways/4 (the
// same split SEESAW uses) when zero.
func NewVespa(cfg Config) (*Vespa, error) {
	if err := validateFreq(cfg); err != nil {
		return nil, err
	}
	if cfg.WayPredict {
		return nil, fmt.Errorf("core: VESPA does not model way prediction")
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = cfg.Ways / 4
		if cfg.Partitions < 1 {
			cfg.Partitions = 1
		}
	}
	geom, err := addr.NewCacheGeometry(cfg.SizeBytes, cfg.Ways, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	if !geom.VIPTIndexInsidePageOffset(addr.Page4K) {
		return nil, fmt.Errorf("core: %v violates the VIPT constraint for 4KB pages", geom)
	}
	// Superpage accesses index with VA bits up to the partition index;
	// those must still be 2MB page-offset bits or VA != PA there.
	if !geom.PartitionIndexKnown(addr.Page2M) {
		return nil, fmt.Errorf("core: %v partition index exceeds the 2MB page offset", geom)
	}
	t, err := newTiming(cfg, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	return &Vespa{cfg: cfg, geom: geom, c: cache.NewWithPolicy(geom, cfg.Replacement), t: t}, nil
}

// Name implements L1Cache.
func (v *Vespa) Name() string {
	return fmt.Sprintf("VESPA-%dKB-%dw/%dp", v.cfg.SizeBytes>>10, v.cfg.Ways, v.cfg.Partitions)
}

// DesignName implements DesignNamed.
func (v *Vespa) DesignName() string { return "vespa" }

// Geometry exposes the partitioned geometry.
func (v *Vespa) Geometry() addr.CacheGeometry { return v.geom }

// Access implements L1Cache: superpage-backed accesses (the TLB's page
// size is ground truth here — no filter table) index the full cache and
// probe one partition at the fast latency; base-page accesses search
// the whole set at the baseline latency.
func (v *Vespa) Access(va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) AccessResult {
	var res AccessResult
	v.AccessInto(&res, va, pa, psize, store)
	return res
}

// AccessInto is Access writing its result through res, mirroring the
// other designs' devirtualized entry point.
func (v *Vespa) AccessInto(res *AccessResult, va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) {
	v.Stats.Accesses++
	set := v.geom.SetIndexV(va)
	tag := v.geom.TagP(pa)
	if psize.IsSuper() {
		v.Stats.SuperAccesses++
		part := v.geom.PartitionIndexV(va)
		way, hit := v.c.Access(set, part, tag)
		*res = AccessResult{
			Hit: hit, Cycles: v.t.fastCycles, FastPath: true,
			WaysProbed: v.geom.WaysPerPartition(), EnergyNJ: v.t.ePart,
			Superpage: true,
		}
		if hit {
			res.State = v.c.StateOf(set, way)
			v.Stats.SuperHits++
		} else {
			v.Stats.SuperMisses++
		}
		return
	}
	v.Stats.BaseAccesses++
	way, hit := v.c.Access(set, cache.AnyPartition, tag)
	*res = AccessResult{
		Hit: hit, Cycles: v.t.slowCycles,
		WaysProbed: v.cfg.Ways, EnergyNJ: v.t.eFull,
	}
	if hit {
		res.State = v.c.StateOf(set, way)
	}
}

// insertPartition picks the insertion scope per the configured policy,
// exactly as SEESAW does: every line's location stays derivable from
// its PA under the 4way policy.
func (v *Vespa) insertPartition(pa addr.PAddr, psize addr.PageSize) int {
	if v.cfg.Policy == FourEightWay && !psize.IsSuper() {
		return cache.AnyPartition
	}
	return v.geom.PartitionIndexP(pa)
}

// Fill implements L1Cache.
func (v *Vespa) Fill(pa addr.PAddr, psize addr.PageSize, store, shared bool) FillResult {
	set := v.geom.SetIndexP(pa)
	part := v.insertPartition(pa, psize)
	vic := v.c.Insert(set, part, v.geom.TagP(pa), fillState(store, shared))
	eVictim := v.t.eVictimPart
	if part == cache.AnyPartition {
		eVictim = v.t.eVictimFull
	}
	r := FillResult{Victim: vic, EnergyNJ: v.t.eFill + eVictim}
	if vic.Valid {
		r.VictimPA = v.geom.LineFromSetTag(set, vic.Tag)
		r.Writeback = vic.State.Dirty()
	}
	return r
}

// Snoop implements L1Cache. Coherence lookups carry physical addresses,
// so under the 4way policy the partition is always known and every
// probe pays only the partition cost.
func (v *Vespa) Snoop(pa addr.PAddr, op SnoopOp) ProbeResult {
	v.Stats.CoherenceProbes++
	set := v.geom.SetIndexP(pa)
	tag := v.geom.TagP(pa)
	if v.cfg.Policy == FourWay {
		part := v.geom.PartitionIndexP(pa)
		way, hit := v.c.Probe(set, part, tag)
		res := ProbeResult{Hit: hit, WaysProbed: v.geom.WaysPerPartition(), EnergyNJ: v.t.ePart}
		if hit {
			res.State = v.c.StateOf(set, way)
			snoopApply(v.c, set, way, op)
		}
		return res
	}
	way, hit := v.c.Probe(set, cache.AnyPartition, tag)
	res := ProbeResult{Hit: hit, WaysProbed: v.cfg.Ways, EnergyNJ: v.t.eFull}
	if hit {
		res.State = v.c.StateOf(set, way)
		snoopApply(v.c, set, way, op)
	}
	return res
}

// UpgradeToModified implements L1Cache.
func (v *Vespa) UpgradeToModified(pa addr.PAddr) {
	if set, way, ok := v.c.FindLine(pa); ok {
		v.c.SetState(set, way, cache.Modified)
	}
}

// EvictRange implements L1Cache (promotion sweeps).
func (v *Vespa) EvictRange(lo, hi addr.PAddr) []cache.Victim {
	victims := v.c.EvictRange(lo, hi)
	v.Stats.PromotionSweeps++
	v.Stats.SweptLines += uint64(len(victims))
	return victims
}

// FastCycles implements L1Cache.
func (v *Vespa) FastCycles() int { return v.t.fastCycles }

// SlowCycles implements L1Cache.
func (v *Vespa) SlowCycles() int { return v.t.slowCycles }

// Storage implements L1Cache.
func (v *Vespa) Storage() *cache.Cache { return v.c }

// Clone implements L1Cache.
func (v *Vespa) Clone() L1Cache {
	c := *v
	c.c = v.c.Clone()
	return &c
}

var _ L1Cache = (*Vespa)(nil)
var _ DesignNamed = (*Vespa)(nil)
