package core

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/tft"
	"seesaw/internal/waypred"
)

// SeesawStats counts the Table I lookup cases and the Fig 13 TFT-miss
// taxonomy.
type SeesawStats struct {
	// Accesses splits CPU-side lookups.
	Accesses           uint64
	SuperAccesses      uint64 // accesses to superpage-backed data
	FastHits           uint64 // TFT hit, cache hit (Table I row 1)
	FastMisses         uint64 // TFT hit, cache miss (Table I row 2)
	SuperTFTMissHits   uint64 // superpage access, TFT miss, cache hit
	SuperTFTMissMisses uint64 // superpage access, TFT miss, cache miss
	BaseAccesses       uint64 // base-page accesses (always slow)

	// Coherence lookups all pay only the partition cost under the 4way
	// policy.
	CoherenceProbes uint64

	// PromotionSweeps counts EvictRange sweeps from page promotions;
	// SweptLines the lines they evicted.
	PromotionSweeps uint64
	SweptLines      uint64

	TFTFlushes uint64
}

// Seesaw is the SEESAW L1 data cache (Section IV): a VIPT cache whose sets
// are way-partitioned, with a TFT predicting superpage-backed regions so
// that superpage accesses (and, via the 4way insertion policy, all
// coherence lookups) probe a single partition.
type Seesaw struct {
	cfg  Config
	geom addr.CacheGeometry
	c    *cache.Cache
	f    *tft.TFT
	t    timing
	wp   *waypred.MRU // nil unless cfg.WayPredict

	Stats SeesawStats
}

// NewSeesaw builds a SEESAW cache. Partitions defaults to Ways/4 (the
// paper's 4-way partitions) when zero.
func NewSeesaw(cfg Config) (*Seesaw, error) {
	if err := validateFreq(cfg); err != nil {
		return nil, err
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = cfg.Ways / 4
		if cfg.Partitions < 1 {
			cfg.Partitions = 1
		}
	}
	geom, err := addr.NewCacheGeometry(cfg.SizeBytes, cfg.Ways, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	if !geom.VIPTIndexInsidePageOffset(addr.Page4K) {
		return nil, fmt.Errorf("core: %v violates the VIPT constraint for 4KB pages", geom)
	}
	// The partition index bits must be page-offset bits of a 2MB page,
	// or the whole design premise collapses.
	if !geom.PartitionIndexKnown(addr.Page2M) {
		return nil, fmt.Errorf("core: %v partition index exceeds the 2MB page offset", geom)
	}
	t, err := newTiming(cfg, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	s := &Seesaw{cfg: cfg, geom: geom, c: cache.NewWithPolicy(geom, cfg.Replacement), f: tft.New(cfg.TFT), t: t}
	if cfg.WayPredict {
		s.wp = waypred.NewMRU(geom.Sets())
	}
	return s, nil
}

// MustNewSeesaw panics on error.
func MustNewSeesaw(cfg Config) *Seesaw {
	s, err := NewSeesaw(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements L1Cache.
func (s *Seesaw) Name() string {
	return fmt.Sprintf("SEESAW-%dKB-%dw/%dp", s.cfg.SizeBytes>>10, s.cfg.Ways, s.cfg.Partitions)
}

// TFT exposes the filter table (stats, Fig 13).
func (s *Seesaw) TFT() *tft.TFT { return s.f }

// Geometry exposes the partitioned geometry.
func (s *Seesaw) Geometry() addr.CacheGeometry { return s.geom }

// Access implements L1Cache, realizing Table I:
//
//   - The TFT is probed in parallel with the (speculative) partition
//     lookup using the VA's partition-index bits.
//   - TFT hit: the access completes after the single partition probe —
//     fast latency, partition energy — whether it hits or misses.
//   - TFT miss (base page, or superpage the TFT forgot): the remaining
//     partitions are probed too — slow latency, full energy.
func (s *Seesaw) Access(va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) AccessResult {
	var res AccessResult
	s.AccessInto(&res, va, pa, psize, store)
	return res
}

// AccessInto is Access writing its result through res — the simulator's
// devirtualized per-reference path uses it to keep the (40-byte) result
// from being copied once per call layer.
func (s *Seesaw) AccessInto(res *AccessResult, va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) {
	s.Stats.Accesses++
	set := s.geom.SetIndexV(va)
	tag := s.geom.TagP(pa)
	super := psize.IsSuper()
	if super {
		s.Stats.SuperAccesses++
	} else {
		s.Stats.BaseAccesses++
	}
	if s.f.Lookup(va) {
		// The TFT can only hold regions that were superpage-backed when
		// a 2MB translation was filled; a hit licenses the fast path.
		part := s.geom.PartitionIndexV(va)
		s.fastLookup(res, set, part, tag)
		if res.Hit {
			s.Stats.FastHits++
		} else {
			s.Stats.FastMisses++
		}
		res.Superpage = super
		res.TFTHit = true
		return
	}
	// TFT miss: the speculative partition probe is followed by the
	// remaining partitions — equivalent to a full-set search at the
	// baseline's latency and energy (Table I rows 3-4).
	s.slowLookup(res, set, tag)
	if super {
		if res.Hit {
			s.Stats.SuperTFTMissHits++
		} else {
			s.Stats.SuperTFTMissMisses++
		}
	}
	res.Superpage = super
}

// fastLookup probes a single partition (TFT hit path), optionally through
// the way predictor: SEESAW presents the right partition to the
// predictor, so a misprediction only costs a re-probe of that partition
// (Section IV-B2).
func (s *Seesaw) fastLookup(res *AccessResult, set, part int, tag uint64) {
	wpp := s.geom.WaysPerPartition()
	if s.wp != nil {
		if pred, ok := s.wp.Predict(set); ok && s.c.PartitionOfWay(pred) == part {
			if s.c.ProbeWay(set, pred, tag) {
				s.c.Touch(set, pred)
				s.wp.Feedback(set, pred, true, pred)
				*res = AccessResult{
					Hit: true, State: s.c.StateOf(set, pred),
					Cycles: s.t.fastCycles, FastPath: true,
					WaysProbed: 1, EnergyNJ: s.t.eOne,
				}
				return
			}
			way, hit := s.c.Access(set, part, tag)
			feedbackWay := -1
			*res = AccessResult{
				Hit: hit, Cycles: 2 * s.t.fastCycles, FastPath: true,
				WaysProbed: 1 + wpp, EnergyNJ: s.t.eOne + s.t.ePart,
			}
			if hit {
				feedbackWay = way
				res.State = s.c.StateOf(set, way)
			}
			s.wp.Feedback(set, feedbackWay, true, pred)
			return
		}
	}
	way, hit := s.c.Access(set, part, tag)
	*res = AccessResult{
		Hit: hit, Cycles: s.t.fastCycles, FastPath: true,
		WaysProbed: wpp, EnergyNJ: s.t.ePart,
	}
	if hit {
		res.State = s.c.StateOf(set, way)
		if s.wp != nil {
			s.wp.Feedback(set, way, false, 0)
		}
	}
}

// slowLookup searches the whole set (TFT miss / base page), optionally
// through the way predictor.
func (s *Seesaw) slowLookup(res *AccessResult, set int, tag uint64) {
	if s.wp != nil {
		if pred, ok := s.wp.Predict(set); ok {
			if s.c.ProbeWay(set, pred, tag) {
				s.c.Touch(set, pred)
				s.wp.Feedback(set, pred, true, pred)
				*res = AccessResult{
					Hit: true, State: s.c.StateOf(set, pred),
					Cycles:     s.t.slowCycles,
					WaysProbed: 1, EnergyNJ: s.t.eOne,
				}
				return
			}
			way, hit := s.c.Access(set, cache.AnyPartition, tag)
			feedbackWay := -1
			*res = AccessResult{
				Hit: hit, Cycles: 2 * s.t.slowCycles,
				WaysProbed: 1 + s.cfg.Ways, EnergyNJ: s.t.eOne + s.t.eFull,
			}
			if hit {
				feedbackWay = way
				res.State = s.c.StateOf(set, way)
			}
			s.wp.Feedback(set, feedbackWay, true, pred)
			return
		}
	}
	way, hit := s.c.Access(set, cache.AnyPartition, tag)
	*res = AccessResult{
		Hit: hit, Cycles: s.t.slowCycles,
		WaysProbed: s.cfg.Ways, EnergyNJ: s.t.eFull,
	}
	if hit {
		res.State = s.c.StateOf(set, way)
		if s.wp != nil {
			s.wp.Feedback(set, way, false, 0)
		}
	}
}

// Predictor exposes the way predictor (nil when disabled).
func (s *Seesaw) Predictor() *waypred.MRU { return s.wp }

// insertPartition picks the insertion scope per the configured policy.
func (s *Seesaw) insertPartition(pa addr.PAddr, psize addr.PageSize) int {
	if s.cfg.Policy == FourEightWay && !psize.IsSuper() {
		return cache.AnyPartition
	}
	return s.geom.PartitionIndexP(pa)
}

// Fill implements L1Cache: the 4way policy inserts into the partition the
// physical address names with partition-local LRU (for superpages the VA
// names the same partition), keeping every line's location derivable from
// its PA.
func (s *Seesaw) Fill(pa addr.PAddr, psize addr.PageSize, store, shared bool) FillResult {
	set := s.geom.SetIndexP(pa)
	part := s.insertPartition(pa, psize)
	v := s.c.Insert(set, part, s.geom.TagP(pa), fillState(store, shared))
	if s.wp != nil {
		s.wp.Feedback(set, v.Way, false, 0) // the filled way becomes MRU
	}
	eVictim := s.t.eVictimPart
	if part == cache.AnyPartition {
		eVictim = s.t.eVictimFull
	}
	r := FillResult{Victim: v, EnergyNJ: s.t.eFill + eVictim}
	if v.Valid {
		r.VictimPA = s.geom.LineFromSetTag(set, v.Tag)
		r.Writeback = v.State.Dirty()
	}
	return r
}

// Snoop implements L1Cache. Coherence lookups carry physical addresses,
// so under the 4way policy the partition is always known: every probe —
// superpage or base page — pays only the partition cost (Section IV-C1).
// Under the 4way-8way ablation base pages may sit anywhere, so the full
// set is searched.
func (s *Seesaw) Snoop(pa addr.PAddr, op SnoopOp) ProbeResult {
	s.Stats.CoherenceProbes++
	set := s.geom.SetIndexP(pa)
	tag := s.geom.TagP(pa)
	if s.cfg.Policy == FourWay {
		part := s.geom.PartitionIndexP(pa)
		way, hit := s.c.Probe(set, part, tag)
		res := ProbeResult{Hit: hit, WaysProbed: s.geom.WaysPerPartition(), EnergyNJ: s.t.ePart}
		if hit {
			res.State = s.c.StateOf(set, way)
			snoopApply(s.c, set, way, op)
		}
		return res
	}
	way, hit := s.c.Probe(set, cache.AnyPartition, tag)
	res := ProbeResult{Hit: hit, WaysProbed: s.cfg.Ways, EnergyNJ: s.t.eFull}
	if hit {
		res.State = s.c.StateOf(set, way)
		snoopApply(s.c, set, way, op)
	}
	return res
}

// UpgradeToModified implements L1Cache.
func (s *Seesaw) UpgradeToModified(pa addr.PAddr) {
	if set, way, ok := s.c.FindLine(pa); ok {
		s.c.SetState(set, way, cache.Modified)
	}
}

// EvictRange implements L1Cache; SEESAW uses it for the promotion sweep
// (Section IV-C2), done under cover of the OS's 150-200 cycle TLB
// invalidation instruction.
func (s *Seesaw) EvictRange(lo, hi addr.PAddr) []cache.Victim {
	victims := s.c.EvictRange(lo, hi)
	s.Stats.PromotionSweeps++
	s.Stats.SweptLines += uint64(len(victims))
	return victims
}

// FastCycles implements L1Cache.
func (s *Seesaw) FastCycles() int { return s.t.fastCycles }

// SlowCycles implements L1Cache.
func (s *Seesaw) SlowCycles() int { return s.t.slowCycles }

// Storage implements L1Cache.
func (s *Seesaw) Storage() *cache.Cache { return s.c }

// OnSuperpageTLBFill is the TFT fill hook (Fig 5 steps 6-8): wire it to
// tlb.Hierarchy.OnL1SuperFill. va is any address in the filled 2MB page.
func (s *Seesaw) OnSuperpageTLBFill(va addr.VAddr) { s.f.Fill(va) }

// InvalidatePage is the TFT side of invlpg: executed when the OS
// splinters or unmaps a 2MB page (Section IV-C2).
func (s *Seesaw) InvalidatePage(va addr.VAddr) { s.f.Invalidate(va) }

// ContextSwitch flushes the TFT (it carries no ASIDs; Section IV-C3).
func (s *Seesaw) ContextSwitch() {
	s.f.Flush()
	s.Stats.TFTFlushes++
}
