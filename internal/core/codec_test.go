package core

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/waypred"
)

// warmSeesaw advances a predicting SEESAW L1 through fast-path hits,
// slow-path hits, and misses so storage, TFT, way predictor, and the
// SEESAW statistics all carry state.
func warmSeesaw() *Seesaw {
	s := MustNewSeesaw(wpCfg())
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	s.OnSuperpageTLBFill(va)
	s.Fill(pa, addr.Page2M, false, false)
	s.Access(va, pa, addr.Page2M, false) // fast-path hit
	s.Access(va+64, pa+64, addr.Page2M, false)
	s.Access(0x1000, 0x1000, addr.Page4K, false) // base-page miss
	s.Fill(0x1000, addr.Page4K, false, false)
	return s
}

// TestSeesawStateRoundTrip: a SEESAW L1 restored from a captured state
// answers the same accesses with the same latencies and probe scopes —
// storage image, TFT, way-predictor history, and statistics all travel.
func TestSeesawStateRoundTrip(t *testing.T) {
	s := warmSeesaw()
	fresh := MustNewSeesaw(wpCfg())
	if err := SetL1State(fresh, StateOf(s)); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats != s.Stats {
		t.Errorf("restored SEESAW stats %+v, want %+v", fresh.Stats, s.Stats)
	}
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	for _, probe := range []struct {
		va addr.VAddr
		pa addr.PAddr
		ps addr.PageSize
	}{
		{va, pa, addr.Page2M},
		{0x1000, 0x1000, addr.Page4K},
		{0x5000, 0x5000, addr.Page4K}, // miss
	} {
		r0 := s.Access(probe.va, probe.pa, probe.ps, false)
		r1 := fresh.Access(probe.va, probe.pa, probe.ps, false)
		if r0 != r1 {
			t.Errorf("Access(%#x): original %+v, restored %+v", uint64(probe.va), r0, r1)
		}
	}
	if got, want := fresh.Predictor().Predictions, s.Predictor().Predictions; got != want {
		t.Errorf("restored predictor at %d predictions, want %d", got, want)
	}
}

// TestBaselineAndPIPTStateRoundTrip covers the two non-SEESAW designs
// through the same interface surface.
func TestBaselineAndPIPTStateRoundTrip(t *testing.T) {
	b := MustNewBaselineVIPT(wpCfg())
	b.Access(0x1000, 0x1000, addr.Page4K, false)
	b.Fill(0x1000, addr.Page4K, false, false)
	b2 := MustNewBaselineVIPT(wpCfg())
	if err := SetL1State(b2, StateOf(b)); err != nil {
		t.Fatal(err)
	}
	if r0, r1 := b.Access(0x1000, 0x1000, addr.Page4K, false), b2.Access(0x1000, 0x1000, addr.Page4K, false); r0 != r1 {
		t.Errorf("baseline: original %+v, restored %+v", r0, r1)
	}

	p := MustNewPIPT(cfg32K(1.33))
	p.Access(0x2000, 0x2000, addr.Page4K, true)
	p.Fill(0x2000, addr.Page4K, true, false)
	p2 := MustNewPIPT(cfg32K(1.33))
	if err := SetL1State(p2, StateOf(p)); err != nil {
		t.Fatal(err)
	}
	if r0, r1 := p.Access(0x2000, 0x2000, addr.Page4K, false), p2.Access(0x2000, 0x2000, addr.Page4K, false); r0 != r1 {
		t.Errorf("PIPT: original %+v, restored %+v", r0, r1)
	}
}

// fakeL1 is an unknown design for the rejection path: real storage (the
// image restore runs before the design switch), unknown everything else.
type fakeL1 struct {
	L1Cache
	c *cache.Cache
}

func (f fakeL1) Storage() *cache.Cache { return f.c }

// TestL1StateRejections: cross-design restores are corrupt — a state
// must carry exactly the side structures its design owns.
func TestL1StateRejections(t *testing.T) {
	seesawState := StateOf(warmSeesaw())

	noTFT := seesawState
	noTFT.TFT = nil
	if err := SetL1State(MustNewSeesaw(wpCfg()), noTFT); err == nil {
		t.Error("SEESAW accepted a state missing its TFT")
	}

	if err := SetL1State(MustNewBaselineVIPT(wpCfg()), seesawState); err == nil {
		t.Error("baseline accepted a SEESAW state (stray TFT)")
	}
	if err := SetL1State(MustNewPIPT(cfg32K(1.33)), seesawState); err == nil {
		t.Error("PIPT accepted a SEESAW state (stray TFT/predictor)")
	}

	noWP := seesawState
	noWP.WP = nil
	if err := SetL1State(MustNewSeesaw(wpCfg()), noWP); err == nil {
		t.Error("predicting SEESAW accepted a state without predictor history")
	}
	stray := StateOf(MustNewSeesaw(cfg32K(1.33)))
	ws := waypred.NewMRU(4).State()
	stray.WP = &ws
	if err := SetL1State(MustNewSeesaw(cfg32K(1.33)), stray); err == nil {
		t.Error("non-predicting SEESAW accepted predictor history")
	}

	geom := StateOf(warmSeesaw())
	geom.Cache.Tags = geom.Cache.Tags[:4]
	if err := SetL1State(MustNewSeesaw(wpCfg()), geom); err == nil {
		t.Error("accepted a storage image with the wrong geometry")
	}

	fake := fakeL1{c: MustNewSeesaw(cfg32K(1.33)).Storage()}
	if err := SetL1State(fake, L1State{Cache: fake.c.Image()}); err == nil {
		t.Error("accepted an unknown L1 design")
	}
}

// TestSeesawClone: the clone answers like the original, then diverges.
func TestSeesawClone(t *testing.T) {
	s := warmSeesaw()
	c := s.Clone().(*Seesaw)
	if c.Stats != s.Stats {
		t.Errorf("clone stats %+v, want %+v", c.Stats, s.Stats)
	}
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	if r0, r1 := s.Access(va, pa, addr.Page2M, false), c.Access(va, pa, addr.Page2M, false); r0 != r1 {
		t.Errorf("clone access %+v, original %+v", r1, r0)
	}
	c.ContextSwitch() // flushes the clone's TFT only
	before := s.Stats
	s.Access(va, pa, addr.Page2M, false)
	if s.Stats == before {
		t.Error("original stopped counting after the clone's context switch")
	}
}
