package core

import (
	"fmt"
	"sort"
)

// Design describes one registered L1 cache design: how to build it, how
// to validate its geometry knobs, how to capture and restore its
// mutable state for snapshots, and the metadata the harnesses
// (machine build, chaos sweep, evolve menus, service wire spec) need to
// enumerate the zoo without hardcoding names.
//
// A design is added in one place: implement L1Cache (plus DesignNamed),
// fill in a Design, and Register it. Everything downstream — seesaw-sim
// -cache, the sweep matrix, the served spec, the conformance battery —
// picks it up from the registry.
type Design struct {
	// Name is the registry key and the wire spelling: the value of
	// machine.Config.CacheKind, the service spec's "cache" field, and
	// the -cache/-caches flag argument.
	Name string
	// Display is the human-facing table label ("VIPT (baseline)").
	Display string
	// Legacy is the int this design was encoded as when
	// machine.Config.CacheKind was an enum; -1 for designs that
	// postdate the enum. Snapshot and checkpoint decoding map stored
	// ints back through it.
	Legacy int

	// New builds one core's worth of the design.
	New func(Config) (L1Cache, error)
	// Validate applies the design's single-knob geometry rules to a
	// defaults-applied config, returning a typed rejection the evolve
	// mutators can switch on; nil when the design has none beyond what
	// New itself enforces.
	Validate func(Config) *ConfigError

	// UsesTFT marks designs embedding a superpage filter table; the
	// machine wires TLB-fill/invlpg/context-switch hooks and TFT energy
	// accounting only for these.
	UsesTFT bool
	// Speculates marks designs with a fast/slow latency split the
	// scheduler may speculate on (the paper's counter heuristic).
	Speculates bool
	// FastPath marks designs with a devirtualized concrete dispatch
	// path in the machine's hot loop; others run through the clean
	// L1Cache interface fallback.
	FastPath bool

	// AreaBytes is the design's extra SRAM beyond the storage array
	// (e.g. SEESAW's TFT), for the evolve area objective; nil = none.
	AreaBytes func(Config) uint64

	// State captures design-specific mutable state beyond the storage
	// array into st (whose Cache image is already filled); nil when the
	// design has none.
	State func(l L1Cache, st *L1State)
	// SetState restores what State captured and cross-checks that the
	// state actually belongs to this design; nil when the design
	// carries none (the restore then only rejects foreign state).
	SetState func(l L1Cache, st L1State) error

	// ChaosSerialTLB / ChaosSmallTLB / ChaosL1Ways are the knob
	// overrides the chaos sweep applies to this design's cells (0/false
	// = none): e.g. the serial PIPT point is only meaningful with the
	// reduced TLB and 4 ways.
	ChaosSerialTLB int
	ChaosSmallTLB  bool
	ChaosL1Ways    int
}

// DesignNamed reports which registered design an L1Cache instance
// realizes. Every registered design's cache type implements it; the
// snapshot codec routes capture/restore through it.
type DesignNamed interface {
	DesignName() string
}

var (
	designOrder []*Design
	designNames = map[string]*Design{}
)

// Register adds a design to the zoo. It panics on a duplicate or empty
// name — registration is an init-time, programmer-error-only affair.
func Register(d Design) {
	if d.Name == "" {
		panic("core: Register: empty design name")
	}
	if _, dup := designNames[d.Name]; dup {
		panic(fmt.Sprintf("core: Register: duplicate design %q", d.Name))
	}
	if d.New == nil {
		panic(fmt.Sprintf("core: Register: design %q has no builder", d.Name))
	}
	cp := d
	designOrder = append(designOrder, &cp)
	designNames[d.Name] = &cp
}

// LookupDesign resolves a design by its registry name.
func LookupDesign(name string) (*Design, bool) {
	d, ok := designNames[name]
	return d, ok
}

// DesignByLegacy resolves a design by its pre-registry enum value.
func DesignByLegacy(v int) (*Design, bool) {
	for _, d := range designOrder {
		if d.Legacy == v && v >= 0 {
			return d, true
		}
	}
	return nil, false
}

// DesignNames returns every registered name in registration order —
// the canonical enumeration order for menus, sweeps, and usage strings.
func DesignNames() []string {
	names := make([]string, len(designOrder))
	for i, d := range designOrder {
		names[i] = d.Name
	}
	return names
}

// Designs returns the registered descriptors in registration order.
// The slice is a copy; the pointed-to descriptors are shared and must
// not be mutated.
func Designs() []*Design {
	return append([]*Design(nil), designOrder...)
}

// SortedDesignNames returns the registered names sorted, for stable
// error messages.
func SortedDesignNames() []string {
	names := DesignNames()
	sort.Strings(names)
	return names
}

// designOf resolves the descriptor an L1 instance belongs to.
func designOf(l L1Cache) (*Design, bool) {
	if dn, ok := l.(DesignNamed); ok {
		return LookupDesign(dn.DesignName())
	}
	return nil, false
}
