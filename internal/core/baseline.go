package core

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/waypred"
)

// BaselineVIPT is the conventional virtually-indexed, physically-tagged
// L1: the set index comes from page-offset bits (identical in VA and PA),
// every lookup probes all ways, and coherence probes also pay the full
// associativity — the costs SEESAW attacks.
type BaselineVIPT struct {
	cfg  Config
	geom addr.CacheGeometry
	c    *cache.Cache
	t    timing
	wp   *waypred.MRU // nil unless cfg.WayPredict
}

// NewBaselineVIPT builds a baseline VIPT L1.
func NewBaselineVIPT(cfg Config) (*BaselineVIPT, error) {
	if err := validateFreq(cfg); err != nil {
		return nil, err
	}
	geom, err := addr.NewCacheGeometry(cfg.SizeBytes, cfg.Ways, 1)
	if err != nil {
		return nil, err
	}
	if !geom.VIPTIndexInsidePageOffset(addr.Page4K) {
		return nil, fmt.Errorf("core: %v violates the VIPT constraint for 4KB pages", geom)
	}
	t, err := newTiming(cfg, 1)
	if err != nil {
		return nil, err
	}
	b := &BaselineVIPT{cfg: cfg, geom: geom, c: cache.NewWithPolicy(geom, cfg.Replacement), t: t}
	if cfg.WayPredict {
		b.wp = waypred.NewMRU(geom.Sets())
	}
	return b, nil
}

// MustNewBaselineVIPT panics on error.
func MustNewBaselineVIPT(cfg Config) *BaselineVIPT {
	b, err := NewBaselineVIPT(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements L1Cache.
func (b *BaselineVIPT) Name() string {
	return fmt.Sprintf("VIPT-%dKB-%dw", b.cfg.SizeBytes>>10, b.cfg.Ways)
}

// Access implements L1Cache: index with the VA (free under VIPT), compare
// physical tags across all ways. With way prediction enabled a predicted
// way is probed first: correct predictions save energy (not latency — the
// TLB still gates the tag compare); mispredictions pay a second full
// probe, which is where Fig 15's WP slowdowns come from.
func (b *BaselineVIPT) Access(va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) AccessResult {
	set := b.geom.SetIndexV(va)
	tag := b.geom.TagP(pa)
	res := AccessResult{
		Cycles:     b.t.slowCycles,
		WaysProbed: b.cfg.Ways,
		EnergyNJ:   b.t.eFull,
		Superpage:  psize.IsSuper(),
	}
	if b.wp != nil {
		if pred, ok := b.wp.Predict(set); ok {
			if b.c.ProbeWay(set, pred, tag) {
				b.c.Touch(set, pred)
				b.wp.Feedback(set, pred, true, pred)
				res.Hit = true
				res.State = b.c.StateOf(set, pred)
				res.WaysProbed = 1
				res.EnergyNJ = b.t.eOne
				return res
			}
			// Misprediction: sequential second probe of the full set.
			way, hit := b.c.Access(set, cache.AnyPartition, tag)
			feedbackWay := -1
			if hit {
				feedbackWay = way
				res.State = b.c.StateOf(set, way)
			}
			b.wp.Feedback(set, feedbackWay, true, pred)
			res.Hit = hit
			res.Cycles = 2 * b.t.slowCycles
			res.WaysProbed = 1 + b.cfg.Ways
			res.EnergyNJ = b.t.eOne + b.t.eFull
			return res
		}
	}
	way, hit := b.c.Access(set, cache.AnyPartition, tag)
	if hit {
		res.State = b.c.StateOf(set, way)
		if b.wp != nil {
			b.wp.Feedback(set, way, false, 0)
		}
	}
	res.Hit = hit
	return res
}

// Predictor exposes the way predictor (nil when disabled).
func (b *BaselineVIPT) Predictor() *waypred.MRU { return b.wp }

// Fill implements L1Cache with global LRU across the set.
func (b *BaselineVIPT) Fill(pa addr.PAddr, psize addr.PageSize, store, shared bool) FillResult {
	set := b.geom.SetIndexP(pa)
	v := b.c.Insert(set, cache.AnyPartition, b.geom.TagP(pa), fillState(store, shared))
	if b.wp != nil {
		b.wp.Feedback(set, v.Way, false, 0) // the filled way becomes MRU
	}
	r := FillResult{Victim: v, EnergyNJ: b.t.eFill + b.t.eVictimFull}
	if v.Valid {
		r.VictimPA = b.geom.LineFromSetTag(set, v.Tag)
		r.Writeback = v.State.Dirty()
	}
	return r
}

// Snoop implements L1Cache: coherence probes pay the full associativity.
func (b *BaselineVIPT) Snoop(pa addr.PAddr, op SnoopOp) ProbeResult {
	set := b.geom.SetIndexP(pa)
	way, hit := b.c.Probe(set, cache.AnyPartition, b.geom.TagP(pa))
	res := ProbeResult{Hit: hit, WaysProbed: b.cfg.Ways, EnergyNJ: b.t.eFull}
	if hit {
		res.State = b.c.StateOf(set, way)
		snoopApply(b.c, set, way, op)
	}
	return res
}

// UpgradeToModified implements L1Cache.
func (b *BaselineVIPT) UpgradeToModified(pa addr.PAddr) {
	if set, way, ok := b.c.FindLine(pa); ok {
		b.c.SetState(set, way, cache.Modified)
	}
}

// EvictRange implements L1Cache.
func (b *BaselineVIPT) EvictRange(lo, hi addr.PAddr) []cache.Victim {
	return b.c.EvictRange(lo, hi)
}

// FastCycles implements L1Cache; the baseline has a single hit latency.
func (b *BaselineVIPT) FastCycles() int { return b.t.slowCycles }

// SlowCycles implements L1Cache.
func (b *BaselineVIPT) SlowCycles() int { return b.t.slowCycles }

// Storage implements L1Cache.
func (b *BaselineVIPT) Storage() *cache.Cache { return b.c }

// PIPT is the physically-indexed alternative of Fig 14: associativity can
// be lowered (more sets), but the TLB lookup serializes before the cache
// access, adding SerialTLBCycles to every hit.
type PIPT struct {
	cfg  Config
	geom addr.CacheGeometry
	c    *cache.Cache
	t    timing
}

// NewPIPT builds a PIPT L1; unlike VIPT there is no set-count constraint.
func NewPIPT(cfg Config) (*PIPT, error) {
	if err := validateFreq(cfg); err != nil {
		return nil, err
	}
	geom, err := addr.NewCacheGeometry(cfg.SizeBytes, cfg.Ways, 1)
	if err != nil {
		return nil, err
	}
	t, err := newTiming(cfg, 1)
	if err != nil {
		return nil, err
	}
	if cfg.SerialTLBCycles <= 0 {
		cfg.SerialTLBCycles = 1
	}
	return &PIPT{cfg: cfg, geom: geom, c: cache.NewWithPolicy(geom, cfg.Replacement), t: t}, nil
}

// MustNewPIPT panics on error.
func MustNewPIPT(cfg Config) *PIPT {
	p, err := NewPIPT(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements L1Cache.
func (p *PIPT) Name() string {
	return fmt.Sprintf("PIPT-%dKB-%dw", p.cfg.SizeBytes>>10, p.cfg.Ways)
}

// Access implements L1Cache: physical indexing, so the TLB must finish
// first; its latency is added serially.
func (p *PIPT) Access(va addr.VAddr, pa addr.PAddr, psize addr.PageSize, store bool) AccessResult {
	set := p.geom.SetIndexP(pa)
	way, hit := p.c.Access(set, cache.AnyPartition, p.geom.TagP(pa))
	res := AccessResult{
		Hit:        hit,
		Cycles:     p.cfg.SerialTLBCycles + p.t.slowCycles,
		WaysProbed: p.cfg.Ways,
		EnergyNJ:   p.t.eFull,
		Superpage:  psize.IsSuper(),
	}
	if hit {
		res.State = p.c.StateOf(set, way)
	}
	return res
}

// Fill implements L1Cache.
func (p *PIPT) Fill(pa addr.PAddr, psize addr.PageSize, store, shared bool) FillResult {
	set := p.geom.SetIndexP(pa)
	v := p.c.Insert(set, cache.AnyPartition, p.geom.TagP(pa), fillState(store, shared))
	r := FillResult{Victim: v, EnergyNJ: p.t.eFill + p.t.eVictimFull}
	if v.Valid {
		r.VictimPA = p.geom.LineFromSetTag(set, v.Tag)
		r.Writeback = v.State.Dirty()
	}
	return r
}

// Snoop implements L1Cache.
func (p *PIPT) Snoop(pa addr.PAddr, op SnoopOp) ProbeResult {
	set := p.geom.SetIndexP(pa)
	way, hit := p.c.Probe(set, cache.AnyPartition, p.geom.TagP(pa))
	res := ProbeResult{Hit: hit, WaysProbed: p.cfg.Ways, EnergyNJ: p.t.eFull}
	if hit {
		res.State = p.c.StateOf(set, way)
		snoopApply(p.c, set, way, op)
	}
	return res
}

// UpgradeToModified implements L1Cache.
func (p *PIPT) UpgradeToModified(pa addr.PAddr) {
	if set, way, ok := p.c.FindLine(pa); ok {
		p.c.SetState(set, way, cache.Modified)
	}
}

// EvictRange implements L1Cache.
func (p *PIPT) EvictRange(lo, hi addr.PAddr) []cache.Victim {
	return p.c.EvictRange(lo, hi)
}

// FastCycles implements L1Cache.
func (p *PIPT) FastCycles() int { return p.cfg.SerialTLBCycles + p.t.slowCycles }

// SlowCycles implements L1Cache.
func (p *PIPT) SlowCycles() int { return p.cfg.SerialTLBCycles + p.t.slowCycles }

// Storage implements L1Cache.
func (p *PIPT) Storage() *cache.Cache { return p.c }

// ensure interface compliance.
var (
	_ L1Cache = (*BaselineVIPT)(nil)
	_ L1Cache = (*PIPT)(nil)
	_ L1Cache = (*Seesaw)(nil)
)
