package core

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
	"seesaw/internal/tft"
)

func cfg32K(freq float64) Config {
	return Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: freq, TFT: tft.DefaultConfig()}
}

// translate2M builds matching VA/PA pairs within a 2MB page.
func translate2M(va addr.VAddr, ppn uint64) addr.PAddr {
	return addr.Translate(va, ppn, addr.Page2M)
}

func TestBaselineLatencyMatchesTableIII(t *testing.T) {
	cases := []struct {
		size   uint64
		ways   int
		freq   float64
		cycles int
	}{
		{32 << 10, 8, 1.33, 2},
		{32 << 10, 8, 2.80, 4},
		{32 << 10, 8, 4.00, 5},
		{64 << 10, 16, 1.33, 5},
		{128 << 10, 32, 4.00, 42},
	}
	for _, c := range cases {
		b := MustNewBaselineVIPT(Config{SizeBytes: c.size, Ways: c.ways, FreqGHz: c.freq})
		r := b.Access(0x1000, 0x1000, addr.Page4K, false)
		if r.Cycles != c.cycles {
			t.Errorf("%s @%.2fGHz: %d cycles, want %d", b.Name(), c.freq, r.Cycles, c.cycles)
		}
		if r.FastPath {
			t.Error("baseline has no fast path")
		}
	}
}

func TestSeesawLatencyMatchesTableIII(t *testing.T) {
	cases := []struct {
		size       uint64
		ways       int
		freq       float64
		slow, fast int
	}{
		{32 << 10, 8, 1.33, 2, 1},
		{32 << 10, 8, 2.80, 4, 2},
		{32 << 10, 8, 4.00, 5, 3},
		{64 << 10, 16, 1.33, 5, 1},
		{64 << 10, 16, 2.80, 9, 2},
		{64 << 10, 16, 4.00, 13, 3},
		{128 << 10, 32, 1.33, 14, 2},
		{128 << 10, 32, 2.80, 30, 3},
		{128 << 10, 32, 4.00, 42, 4},
	}
	for _, c := range cases {
		s := MustNewSeesaw(Config{SizeBytes: c.size, Ways: c.ways, FreqGHz: c.freq})
		if s.SlowCycles() != c.slow || s.FastCycles() != c.fast {
			t.Errorf("%s @%.2f: slow=%d fast=%d, want %d/%d",
				s.Name(), c.freq, s.SlowCycles(), s.FastCycles(), c.slow, c.fast)
		}
	}
}

func TestSeesawDefaultPartitions(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	if s.Geometry().Partitions != 2 || s.Geometry().WaysPerPartition() != 4 {
		t.Errorf("geometry = %v, want 2 partitions of 4 ways", s.Geometry())
	}
	s64 := MustNewSeesaw(Config{SizeBytes: 64 << 10, Ways: 16, FreqGHz: 1.33})
	if s64.Geometry().Partitions != 4 {
		t.Errorf("64KB partitions = %d, want 4", s64.Geometry().Partitions)
	}
}

// TestTableIRow1 exercises 2MB + TFT hit + cache hit: fast latency,
// partition-only probe.
func TestTableIRow1(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x4000_0000 | 1<<12) // partition bit set
	pa := translate2M(va, 7)
	s.OnSuperpageTLBFill(va) // TLB filled the 2MB entry -> TFT knows
	s.Fill(pa, addr.Page2M, false, false)
	r := s.Access(va, pa, addr.Page2M, false)
	if !r.Hit || !r.FastPath || !r.TFTHit {
		t.Fatalf("result = %+v", r)
	}
	if r.Cycles != 1 {
		t.Errorf("cycles = %d, want 1 (Table I row 1 at 1.33GHz)", r.Cycles)
	}
	if r.WaysProbed != 4 {
		t.Errorf("ways probed = %d, want 4", r.WaysProbed)
	}
	if s.Stats.FastHits != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

// TestTableIRow2: 2MB + TFT hit + cache miss — energy savings only; the
// lookup still completes after the single partition probe.
func TestTableIRow2(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x4000_0000)
	pa := translate2M(va, 7)
	s.OnSuperpageTLBFill(va)
	r := s.Access(va, pa, addr.Page2M, false)
	if r.Hit || !r.FastPath || r.WaysProbed != 4 {
		t.Fatalf("result = %+v", r)
	}
	if s.Stats.FastMisses != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

// TestTableIRow3: superpage access the TFT does not know — all ways read,
// slow latency, no savings.
func TestTableIRow3(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x4000_0000)
	pa := translate2M(va, 7)
	s.Fill(pa, addr.Page2M, false, false)
	r := s.Access(va, pa, addr.Page2M, false)
	if !r.Hit || r.FastPath || r.TFTHit {
		t.Fatalf("result = %+v", r)
	}
	if r.Cycles != s.SlowCycles() || r.WaysProbed != 8 {
		t.Errorf("cycles=%d ways=%d, want slow/8", r.Cycles, r.WaysProbed)
	}
	if s.Stats.SuperTFTMissHits != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

// TestTableIRow4: base-page access — same as traditional VIPT.
func TestTableIRow4(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	b := MustNewBaselineVIPT(cfg32K(1.33))
	va := addr.VAddr(0x12345000)
	pa := addr.Translate(va, 99, addr.Page4K)
	s.Fill(pa, addr.Page4K, false, false)
	b.Fill(pa, addr.Page4K, false, false)
	rs := s.Access(va, pa, addr.Page4K, false)
	rb := b.Access(va, pa, addr.Page4K, false)
	if !rs.Hit || rs.FastPath {
		t.Fatalf("seesaw base-page result = %+v", rs)
	}
	if rs.Cycles != rb.Cycles || rs.WaysProbed != rb.WaysProbed {
		t.Errorf("base-page access differs from baseline: %+v vs %+v", rs, rb)
	}
	// The small partition-mux overhead makes SEESAW's full-set energy a
	// hair above baseline, bounded by PartitionOverhead.
	if rs.EnergyNJ < rb.EnergyNJ || rs.EnergyNJ > rb.EnergyNJ*1.01 {
		t.Errorf("base-page energy %.4f vs baseline %.4f", rs.EnergyNJ, rb.EnergyNJ)
	}
}

func TestFastPathSavesLatencyAndEnergy(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x4000_0000)
	pa := translate2M(va, 7)
	s.OnSuperpageTLBFill(va)
	s.Fill(pa, addr.Page2M, false, false)
	fast := s.Access(va, pa, addr.Page2M, false)
	s.ContextSwitch() // flush TFT
	slow := s.Access(va, pa, addr.Page2M, false)
	if fast.Cycles >= slow.Cycles {
		t.Errorf("fast %d cycles !< slow %d", fast.Cycles, slow.Cycles)
	}
	if fast.EnergyNJ >= slow.EnergyNJ {
		t.Errorf("fast %.4f nJ !< slow %.4f", fast.EnergyNJ, slow.EnergyNJ)
	}
	// ~39.4% lookup energy saving (Section IV-A4).
	saving := 100 * (slow.EnergyNJ - fast.EnergyNJ) / slow.EnergyNJ
	if saving < 38 || saving < 0 {
		t.Errorf("energy saving = %.1f%%, want ~39.4%%", saving)
	}
}

// TestCoherenceProbesPartitionFiltered: under the 4way policy every
// coherence lookup probes only 4 ways, base pages included (Section
// IV-C1).
func TestCoherenceProbesPartitionFiltered(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	b := MustNewBaselineVIPT(cfg32K(1.33))
	va := addr.VAddr(0x12345000)
	pa := addr.Translate(va, 99, addr.Page4K) // base page!
	s.Fill(pa, addr.Page4K, true, false)
	b.Fill(pa, addr.Page4K, true, false)
	ps := s.Snoop(pa, SnoopPeek)
	pb := b.Snoop(pa, SnoopPeek)
	if !ps.Hit || !pb.Hit {
		t.Fatal("snoops missed resident line")
	}
	if ps.WaysProbed != 4 {
		t.Errorf("SEESAW coherence probe read %d ways, want 4", ps.WaysProbed)
	}
	if pb.WaysProbed != 8 {
		t.Errorf("baseline coherence probe read %d ways, want 8", pb.WaysProbed)
	}
	if ps.EnergyNJ >= pb.EnergyNJ {
		t.Error("SEESAW coherence energy not lower than baseline")
	}
	if ps.State != cache.Modified {
		t.Errorf("state = %v, want M", ps.State)
	}
}

func TestSnoopOps(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x1000)
	pa := addr.Translate(va, 5, addr.Page4K)
	s.Fill(pa, addr.Page4K, true, false) // Modified
	r := s.Snoop(pa, SnoopDowngrade)
	if !r.Hit || r.State != cache.Modified {
		t.Fatalf("downgrade probe = %+v", r)
	}
	r = s.Snoop(pa, SnoopPeek)
	if r.State != cache.Owned {
		t.Errorf("state after downgrade = %v, want O", r.State)
	}
	r = s.Snoop(pa, SnoopInvalidate)
	if !r.Hit {
		t.Fatal("invalidate missed")
	}
	if r2 := s.Snoop(pa, SnoopPeek); r2.Hit {
		t.Error("line survived invalidation")
	}
}

func TestUpgradeToModified(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	pa := addr.PAddr(0x2000)
	s.Fill(pa, addr.Page4K, false, true) // Shared
	s.UpgradeToModified(pa)
	if r := s.Snoop(pa, SnoopPeek); r.State != cache.Modified {
		t.Errorf("state = %v, want M", r.State)
	}
	s.UpgradeToModified(0xdead000) // absent: must not panic
}

// TestFourWayInsertionByPhysicalPartition: base pages land in the
// partition their PA names, so coherence filtering stays correct.
func TestFourWayInsertionByPhysicalPartition(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	g := s.Geometry()
	// A base page whose VA partition bit differs from its PA bit.
	va := addr.VAddr(0x0000_1000)               // VA bit 12 = 1
	pa := addr.Translate(va, 0x20, addr.Page4K) // PA = 0x20000|0x... bit12 from PPN
	s.Fill(pa, addr.Page4K, false, false)
	set, way, ok := s.Storage().FindLine(pa)
	if !ok {
		t.Fatal("line not resident")
	}
	if s.Storage().PartitionOfWay(way) != g.PartitionIndexP(pa) {
		t.Errorf("line in partition %d, PA names %d (set %d)",
			s.Storage().PartitionOfWay(way), g.PartitionIndexP(pa), set)
	}
}

// TestFourEightWayCoherenceSearchesFullSet: the ablation policy cannot
// filter coherence probes.
func TestFourEightWayCoherenceSearchesFullSet(t *testing.T) {
	cfg := cfg32K(1.33)
	cfg.Policy = FourEightWay
	s := MustNewSeesaw(cfg)
	pa := addr.PAddr(0x3000)
	s.Fill(pa, addr.Page4K, false, false)
	r := s.Snoop(pa, SnoopPeek)
	if r.WaysProbed != 8 {
		t.Errorf("4way-8way snoop probed %d ways, want 8", r.WaysProbed)
	}
}

func TestInvlpgInvalidatesTFT(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x4000_0000)
	s.OnSuperpageTLBFill(va)
	pa := translate2M(va, 7)
	if r := s.Access(va, pa, addr.Page2M, false); !r.TFTHit {
		t.Fatal("TFT should know the region")
	}
	s.InvalidatePage(va + 12345) // OS splinters the superpage
	if r := s.Access(va, pa, addr.Page4K, false); r.TFTHit {
		t.Error("TFT hit after invlpg")
	}
}

// TestSplinterKeepsLinesAccessible: after a superpage splinters, lines
// cached under the superpage must remain reachable via base-page accesses
// (Section IV-C2) — they sit in the PA-named partition, which the slow
// path searches.
func TestSplinterKeepsLinesAccessible(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	s.OnSuperpageTLBFill(va)
	s.Fill(pa, addr.Page2M, true, false) // dirty line under the superpage
	// OS splinters: TFT invalidated; the same VA/PA is now a base page.
	s.InvalidatePage(va)
	r := s.Access(va, pa, addr.Page4K, false)
	if !r.Hit {
		t.Fatal("line unreachable after splinter")
	}
	if r.FastPath {
		t.Error("post-splinter access must take the slow path")
	}
}

// TestPromotionSweep: when base pages are promoted, SEESAW sweeps the old
// lines so none linger in an unprobed partition.
func TestPromotionSweep(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	// Old base-page frames scattered in physical memory.
	oldPAs := []addr.PAddr{0x1000, 0x5000, 0x9000}
	for _, pa := range oldPAs {
		s.Fill(pa, addr.Page4K, true, false)
	}
	victims := s.EvictRange(0x0, 0x10000)
	if len(victims) != len(oldPAs) {
		t.Errorf("sweep evicted %d lines, want %d", len(victims), len(oldPAs))
	}
	if s.Stats.PromotionSweeps != 1 || s.Stats.SweptLines != 3 {
		t.Errorf("stats = %+v", s.Stats)
	}
	for _, pa := range oldPAs {
		if r := s.Snoop(pa, SnoopPeek); r.Hit {
			t.Errorf("line %#x survived the sweep", uint64(pa))
		}
	}
}

func TestSeesawFillEnergyCheaperThanGlobal(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	b := MustNewBaselineVIPT(cfg32K(1.33))
	fs := s.Fill(0x1000, addr.Page4K, false, false)
	fb := b.Fill(0x1000, addr.Page4K, false, false)
	if fs.EnergyNJ >= fb.EnergyNJ {
		t.Errorf("4way install energy %.4f !< global %.4f (paper: LRU over fewer ways)",
			fs.EnergyNJ, fb.EnergyNJ)
	}
}

func TestFillVictimReporting(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	g := s.Geometry()
	// Fill one partition of set 0 to capacity with dirty lines, all in
	// partition 0 (PA bit 12 clear), same set (PA bits 11:6 = 0).
	mk := func(i uint64) addr.PAddr { return addr.PAddr(i << 13) } // varies tag only
	for i := uint64(0); i < 4; i++ {
		s.Fill(mk(i), addr.Page4K, true, false)
	}
	f := s.Fill(mk(4), addr.Page4K, false, false)
	if !f.Victim.Valid || !f.Writeback {
		t.Fatalf("fill result = %+v, want dirty victim", f)
	}
	if g.SetIndexP(f.VictimPA) != 0 || g.PartitionIndexP(f.VictimPA) != 0 {
		t.Errorf("victim PA %#x not from set 0 partition 0", uint64(f.VictimPA))
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewSeesaw(Config{SizeBytes: 32 << 10, Ways: 8}); err == nil {
		t.Error("zero frequency must error")
	}
	if _, err := NewSeesaw(Config{SizeBytes: 1 << 20, Ways: 8, FreqGHz: 1.33}); err == nil {
		t.Error("1MB/8w violates VIPT constraint and must error")
	}
	if _, err := NewBaselineVIPT(Config{SizeBytes: 1 << 20, Ways: 8, FreqGHz: 1.33}); err == nil {
		t.Error("baseline VIPT constraint must be enforced")
	}
	// PIPT has no such constraint: 1MB 8-way is fine... but only for
	// supported SRAM sizes; use 256KB 8-way which VIPT cannot do.
	if _, err := NewPIPT(Config{SizeBytes: 256 << 10, Ways: 8, FreqGHz: 1.33}); err != nil {
		t.Errorf("PIPT 256KB/8w should build: %v", err)
	}
}

func TestPIPTSerialLatency(t *testing.T) {
	p := MustNewPIPT(Config{SizeBytes: 32 << 10, Ways: 4, FreqGHz: 1.33, SerialTLBCycles: 1})
	v := MustNewBaselineVIPT(Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 1.33})
	r := p.Access(0x1000, 0x1000, addr.Page4K, false)
	// 32KB 4-way = 0.76ns -> 2 cycles at 1.33, +1 serial TLB = 3.
	if r.Cycles != 3 {
		t.Errorf("PIPT cycles = %d, want 3", r.Cycles)
	}
	if p.FastCycles() != p.SlowCycles() {
		t.Error("PIPT has one latency")
	}
	_ = v
}

func TestNamesDistinct(t *testing.T) {
	s := MustNewSeesaw(cfg32K(1.33))
	b := MustNewBaselineVIPT(cfg32K(1.33))
	p := MustNewPIPT(Config{SizeBytes: 32 << 10, Ways: 4, FreqGHz: 1.33})
	names := map[string]bool{s.Name(): true, b.Name(): true, p.Name(): true}
	if len(names) != 3 {
		t.Errorf("names collide: %v", names)
	}
}
