package core

import (
	"fmt"

	"seesaw/internal/cache"
	"seesaw/internal/tft"
	"seesaw/internal/waypred"
)

// L1State is the serializable mutable state of any registered L1
// design: the storage array always, the TFT and SEESAW statistics for
// SEESAW caches, the way-predictor history when predicting, and an
// opaque design-owned blob for zoo designs with state of their own
// (e.g. VESPA's counters). Design kind, geometry, and timing are
// config-derived.
type L1State struct {
	Cache cache.Image
	TFT   *tft.State
	WP    *waypred.State
	Stats SeesawStats
	// Extra carries state the design registered privately (see
	// Design.State/SetState); nil for designs without any. Keeping it
	// opaque means new zoo designs never change this struct's wire
	// shape.
	Extra []byte
}

// StateOf captures an L1's mutable state through its design's
// registered codec.
func StateOf(l L1Cache) L1State {
	s := L1State{Cache: l.Storage().Image()}
	if d, ok := designOf(l); ok && d.State != nil {
		d.State(l, &s)
	}
	return s
}

// SetL1State restores an L1 in place. The receiver must be the same
// design kind and geometry the state was captured from.
func SetL1State(l L1Cache, s L1State) error {
	if err := l.Storage().SetImage(s.Cache); err != nil {
		return err
	}
	d, ok := designOf(l)
	if !ok {
		return fmt.Errorf("core: unknown L1 design %T", l)
	}
	if d.SetState == nil {
		return nil
	}
	return d.SetState(l, s)
}

func setWP(wp *waypred.MRU, s *waypred.State) error {
	if (wp != nil) != (s != nil) {
		return fmt.Errorf("core: state and cache disagree about way prediction")
	}
	if wp == nil {
		return nil
	}
	return wp.SetState(*s)
}
