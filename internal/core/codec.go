package core

import (
	"fmt"

	"seesaw/internal/cache"
	"seesaw/internal/tft"
	"seesaw/internal/waypred"
)

// L1State is the serializable mutable state of any of the three L1
// designs: the storage array always, the TFT and SEESAW statistics for
// SEESAW caches, and the way-predictor history when predicting. Design
// kind, geometry, and timing are config-derived.
type L1State struct {
	Cache cache.Image
	TFT   *tft.State
	WP    *waypred.State
	Stats SeesawStats
}

// StateOf captures an L1's mutable state.
func StateOf(l L1Cache) L1State {
	s := L1State{Cache: l.Storage().Image()}
	switch v := l.(type) {
	case *Seesaw:
		fs := v.f.State()
		s.TFT = &fs
		s.Stats = v.Stats
		if v.wp != nil {
			ws := v.wp.State()
			s.WP = &ws
		}
	case *BaselineVIPT:
		if v.wp != nil {
			ws := v.wp.State()
			s.WP = &ws
		}
	}
	return s
}

// SetL1State restores an L1 in place. The receiver must be the same
// design kind and geometry the state was captured from.
func SetL1State(l L1Cache, s L1State) error {
	if err := l.Storage().SetImage(s.Cache); err != nil {
		return err
	}
	switch v := l.(type) {
	case *Seesaw:
		if s.TFT == nil {
			return fmt.Errorf("core: SEESAW state is missing its TFT")
		}
		if err := v.f.SetState(*s.TFT); err != nil {
			return err
		}
		v.Stats = s.Stats
		if err := setWP(v.wp, s.WP); err != nil {
			return err
		}
	case *BaselineVIPT:
		if s.TFT != nil {
			return fmt.Errorf("core: baseline VIPT state carries a TFT")
		}
		if err := setWP(v.wp, s.WP); err != nil {
			return err
		}
	case *PIPT:
		if s.TFT != nil || s.WP != nil {
			return fmt.Errorf("core: PIPT state carries a TFT or way predictor")
		}
	default:
		return fmt.Errorf("core: unknown L1 design %T", l)
	}
	return nil
}

func setWP(wp *waypred.MRU, s *waypred.State) error {
	if (wp != nil) != (s != nil) {
		return fmt.Errorf("core: state and cache disagree about way prediction")
	}
	if wp == nil {
		return nil
	}
	return wp.SetState(*s)
}
