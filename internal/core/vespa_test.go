package core

import (
	"testing"

	"seesaw/internal/addr"
)

func mustNewVespa(t *testing.T, cfg Config) *Vespa {
	t.Helper()
	v, err := NewVespa(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVespaConstructor(t *testing.T) {
	v := mustNewVespa(t, cfg32K(1.33))
	if v.Geometry().Partitions != 2 || v.Geometry().WaysPerPartition() != 4 {
		t.Errorf("geometry = %v, want 2 partitions of 4 ways", v.Geometry())
	}
	if v.Name() == "" || v.DesignName() != "vespa" {
		t.Errorf("Name %q / DesignName %q", v.Name(), v.DesignName())
	}
	if v.FastCycles() >= v.SlowCycles() {
		t.Errorf("fast %d not below slow %d", v.FastCycles(), v.SlowCycles())
	}
	if v.Storage() == nil {
		t.Error("no storage")
	}

	bad := cfg32K(1.33)
	bad.WayPredict = true
	if _, err := NewVespa(bad); err == nil {
		t.Error("accepted way prediction, which VESPA does not model")
	}
	if _, err := NewVespa(Config{SizeBytes: 32 << 10, Ways: 8, FreqGHz: 0}); err == nil {
		t.Error("accepted a non-positive frequency")
	}
	// 64KB over 8 ways puts the set index past the 4KB page offset.
	if _, err := NewVespa(Config{SizeBytes: 64 << 10, Ways: 8, FreqGHz: 1.33}); err == nil {
		t.Error("accepted a geometry violating the 4KB VIPT constraint")
	}
}

// TestVespaFastSlowSplit: the TLB's page size is ground truth — a
// superpage-backed access probes one partition at the fast latency, a
// base-page access searches the whole set at the slow one, and the
// statistics record the split.
func TestVespaFastSlowSplit(t *testing.T) {
	v := mustNewVespa(t, cfg32K(1.33))
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	v.Fill(pa, addr.Page2M, false, false)

	super := v.Access(va, pa, addr.Page2M, false)
	if !super.Hit || !super.FastPath || !super.Superpage {
		t.Errorf("superpage access = %+v, want fast-path hit", super)
	}
	if super.WaysProbed != v.Geometry().WaysPerPartition() || super.Cycles != v.FastCycles() {
		t.Errorf("superpage probe scope %d ways / %d cycles, want %d / %d",
			super.WaysProbed, super.Cycles, v.Geometry().WaysPerPartition(), v.FastCycles())
	}

	v.Fill(0x1000, addr.Page4K, false, false)
	base := v.Access(0x1000, 0x1000, addr.Page4K, false)
	if !base.Hit || base.FastPath {
		t.Errorf("base-page access = %+v, want slow-path hit", base)
	}
	if base.WaysProbed != 8 || base.Cycles != v.SlowCycles() {
		t.Errorf("base probe scope %d ways / %d cycles, want 8 / %d", base.WaysProbed, base.Cycles, v.SlowCycles())
	}
	if base.EnergyNJ <= super.EnergyNJ {
		t.Errorf("full-set probe energy %.3f not above partition probe %.3f", base.EnergyNJ, super.EnergyNJ)
	}

	if miss := v.Access(va+1<<21, pa+1<<21, addr.Page2M, false); miss.Hit {
		t.Errorf("expected a superpage miss, got %+v", miss)
	}
	st := v.Stats
	if st.Accesses != 3 || st.SuperAccesses != 2 || st.SuperHits != 1 || st.SuperMisses != 1 || st.BaseAccesses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestVespaInsertionPolicy: under 4way every fill is partition-scoped;
// under 4way-8way base pages insert with global LRU (AnyPartition) and
// pay the full-set victim-search energy.
func TestVespaInsertionPolicy(t *testing.T) {
	fourWay := mustNewVespa(t, cfg32K(1.33))
	mixed := func() *Vespa {
		c := cfg32K(1.33)
		c.Policy = FourEightWay
		return mustNewVespa(t, c)
	}()

	fw := fourWay.Fill(0x1000, addr.Page4K, false, false)
	mx := mixed.Fill(0x1000, addr.Page4K, false, false)
	if mx.EnergyNJ <= fw.EnergyNJ {
		t.Errorf("4way-8way base fill energy %.3f not above 4way's %.3f", mx.EnergyNJ, fw.EnergyNJ)
	}

	// Coherence: 4way knows the partition, 4way-8way must search all ways.
	if p := fourWay.Snoop(0x1000, SnoopInvalidate); p.WaysProbed != fourWay.Geometry().WaysPerPartition() || !p.Hit {
		t.Errorf("4way snoop = %+v, want partition-filtered hit", p)
	}
	if p := mixed.Snoop(0x1000, SnoopInvalidate); p.WaysProbed != 8 || !p.Hit {
		t.Errorf("4way-8way snoop = %+v, want full-set hit", p)
	}
	if fourWay.Stats.CoherenceProbes != 1 || mixed.Stats.CoherenceProbes != 1 {
		t.Error("coherence probes not counted")
	}
	// Both invalidated the line.
	if fourWay.Access(0x1000, 0x1000, addr.Page4K, false).Hit {
		t.Error("line survived SnoopInvalidate")
	}
}

func TestVespaFillVictimsAndSweeps(t *testing.T) {
	v := mustNewVespa(t, cfg32K(1.33))
	// Overfill one partition of one set until a dirty victim pops out.
	var sawVictim, sawWriteback bool
	for i := uint64(0); i < 16; i++ {
		pa := addr.PAddr(0x1000 + i<<15) // same set, same partition bits, distinct tags
		r := v.Fill(pa, addr.Page4K, true, false)
		if r.Victim.Valid {
			sawVictim = true
			if r.Writeback {
				sawWriteback = true
			}
			if r.VictimPA == 0 {
				t.Error("victim without a reconstructed PA")
			}
		}
	}
	if !sawVictim || !sawWriteback {
		t.Errorf("overfill produced victim=%t writeback=%t, want both", sawVictim, sawWriteback)
	}

	v.Fill(0x2000, addr.Page4K, true, false)
	v.UpgradeToModified(0x2000)
	v.UpgradeToModified(0xdead_0000) // absent line: no-op

	victims := v.EvictRange(0, 1<<30)
	if len(victims) == 0 {
		t.Fatal("promotion sweep evicted nothing")
	}
	if v.Stats.PromotionSweeps != 1 || v.Stats.SweptLines != uint64(len(victims)) {
		t.Errorf("sweep stats = %+v, want 1 sweep / %d lines", v.Stats, len(victims))
	}
	if v.Access(0x2000, 0x2000, addr.Page4K, false).Hit {
		t.Error("line survived EvictRange")
	}
}

// warmVespa advances a VESPA through both paths so storage and the
// stats carry state.
func warmVespa(t *testing.T) *Vespa {
	t.Helper()
	v := mustNewVespa(t, cfg32K(1.33))
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	v.Fill(pa, addr.Page2M, false, false)
	v.Access(va, pa, addr.Page2M, false)
	v.Access(0x1000, 0x1000, addr.Page4K, false) // miss
	v.Fill(0x1000, addr.Page4K, false, false)
	return v
}

func TestVespaClone(t *testing.T) {
	v := warmVespa(t)
	c := v.Clone().(*Vespa)
	if c.Stats != v.Stats {
		t.Errorf("clone stats %+v, want %+v", c.Stats, v.Stats)
	}
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	if r0, r1 := v.Access(va, pa, addr.Page2M, false), c.Access(va, pa, addr.Page2M, false); r0 != r1 {
		t.Errorf("clone access %+v, original %+v", r1, r0)
	}
	// Divergence: evicting from the clone must not touch the original.
	c.EvictRange(0, 1<<30)
	if !v.Access(va, pa, addr.Page2M, false).Hit {
		t.Error("clone's eviction emptied the original — storage is shared")
	}
}

// TestVespaStateRoundTrip drives the registry State/SetState hooks:
// VESPA's statistics ride the opaque Extra field, and cross-design or
// damaged state is rejected.
func TestVespaStateRoundTrip(t *testing.T) {
	v := warmVespa(t)
	fresh := mustNewVespa(t, cfg32K(1.33))
	if err := SetL1State(fresh, StateOf(v)); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats != v.Stats {
		t.Errorf("restored stats %+v, want %+v", fresh.Stats, v.Stats)
	}
	va := addr.VAddr(0x4000_0000 | 1<<12)
	pa := translate2M(va, 7)
	if r0, r1 := v.Access(va, pa, addr.Page2M, false), fresh.Access(va, pa, addr.Page2M, false); r0 != r1 {
		t.Errorf("restored access %+v, original %+v", r1, r0)
	}

	if err := SetL1State(mustNewVespa(t, cfg32K(1.33)), StateOf(warmSeesaw())); err == nil {
		t.Error("VESPA accepted a SEESAW state (stray TFT)")
	}
	noExtra := StateOf(v)
	noExtra.Extra = nil
	if err := SetL1State(mustNewVespa(t, cfg32K(1.33)), noExtra); err == nil {
		t.Error("VESPA accepted a state missing its statistics")
	}
	garbled := StateOf(v)
	garbled.Extra = []byte("{")
	if err := SetL1State(mustNewVespa(t, cfg32K(1.33)), garbled); err == nil {
		t.Error("VESPA accepted undecodable statistics")
	}
}
