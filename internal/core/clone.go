package core

// Clone implements L1Cache. Timing is pure value state; the storage
// array, TFT, and way predictor deep-copy.
func (s *Seesaw) Clone() L1Cache {
	c := &Seesaw{cfg: s.cfg, geom: s.geom, c: s.c.Clone(), f: s.f.Clone(), t: s.t, Stats: s.Stats}
	if s.wp != nil {
		c.wp = s.wp.Clone()
	}
	return c
}

// Clone implements L1Cache.
func (b *BaselineVIPT) Clone() L1Cache {
	c := &BaselineVIPT{cfg: b.cfg, geom: b.geom, c: b.c.Clone(), t: b.t}
	if b.wp != nil {
		c.wp = b.wp.Clone()
	}
	return c
}

// Clone implements L1Cache.
func (p *PIPT) Clone() L1Cache {
	return &PIPT{cfg: p.cfg, geom: p.geom, c: p.c.Clone(), t: p.t}
}
