package core

import (
	"testing"

	"seesaw/internal/addr"
)

func wpCfg() Config {
	c := cfg32K(1.33)
	c.WayPredict = true
	return c
}

func TestWPCorrectPredictionSavesEnergyNotLatency(t *testing.T) {
	b := MustNewBaselineVIPT(wpCfg())
	va := addr.VAddr(0x1000)
	pa := addr.Translate(va, 3, addr.Page4K)
	b.Fill(pa, addr.Page4K, false, false) // trains the predictor
	r := b.Access(va, pa, addr.Page4K, false)
	if !r.Hit || r.WaysProbed != 1 {
		t.Fatalf("result = %+v, want 1-way hit", r)
	}
	if r.Cycles != b.SlowCycles() {
		t.Errorf("WP hit latency = %d, want %d (no latency benefit: TLB gates tag compare)",
			r.Cycles, b.SlowCycles())
	}
	plain := MustNewBaselineVIPT(cfg32K(1.33))
	plain.Fill(pa, addr.Page4K, false, false)
	rp := plain.Access(va, pa, addr.Page4K, false)
	if r.EnergyNJ >= rp.EnergyNJ {
		t.Errorf("WP hit energy %.4f !< full probe %.4f", r.EnergyNJ, rp.EnergyNJ)
	}
}

func TestWPMispredictionCostsDouble(t *testing.T) {
	b := MustNewBaselineVIPT(wpCfg())
	// Two lines in the same set, alternate between them: MRU mispredicts
	// every time.
	va1, va2 := addr.VAddr(0x0), addr.VAddr(0x10000) // same set index, different tags
	pa1 := addr.Translate(va1, 1, addr.Page4K)
	pa2 := addr.Translate(va2, 16, addr.Page4K)
	b.Fill(pa1, addr.Page4K, false, false)
	b.Fill(pa2, addr.Page4K, false, false) // MRU now way of pa2
	r := b.Access(va1, pa1, addr.Page4K, false)
	if !r.Hit {
		t.Fatal("line resident but missed")
	}
	if r.Cycles != 2*b.SlowCycles() {
		t.Errorf("mispredict latency = %d, want %d", r.Cycles, 2*b.SlowCycles())
	}
	if r.WaysProbed != 1+8 {
		t.Errorf("mispredict probed %d ways", r.WaysProbed)
	}
	if b.Predictor().Accuracy() != 0 {
		t.Errorf("accuracy = %v, want 0", b.Predictor().Accuracy())
	}
}

func TestWPPlusSeesawFastPath(t *testing.T) {
	s := MustNewSeesaw(wpCfg())
	va := addr.VAddr(0x4000_0000)
	pa := addr.Translate(va, 7, addr.Page2M)
	s.OnSuperpageTLBFill(va)
	s.Fill(pa, addr.Page2M, false, false)
	r := s.Access(va, pa, addr.Page2M, false)
	if !r.Hit || !r.FastPath || r.WaysProbed != 1 {
		t.Fatalf("result = %+v, want 1-way fast hit", r)
	}
	if r.Cycles != s.FastCycles() {
		t.Errorf("WP+SEESAW hit = %d cycles, want fast %d", r.Cycles, s.FastCycles())
	}
	// Energy must beat both plain SEESAW fast path and baseline.
	plain := MustNewSeesaw(cfg32K(1.33))
	plain.OnSuperpageTLBFill(va)
	plain.Fill(pa, addr.Page2M, false, false)
	rp := plain.Access(va, pa, addr.Page2M, false)
	if r.EnergyNJ >= rp.EnergyNJ {
		t.Errorf("WP+SEESAW energy %.4f !< SEESAW %.4f", r.EnergyNJ, rp.EnergyNJ)
	}
}

// TestWPPlusSeesawMispredictBoundedByPartition: SEESAW contains the
// misprediction penalty to the partition (Section IV-B2).
func TestWPPlusSeesawMispredictBoundedByPartition(t *testing.T) {
	s := MustNewSeesaw(wpCfg())
	region := addr.VAddr(0x4000_0000)
	s.OnSuperpageTLBFill(region)
	// Two superpage lines in the same set and partition, alternate.
	va1 := region
	va2 := region + addr.VAddr(s.Geometry().SizeBytes) // same set/partition, new tag
	s.OnSuperpageTLBFill(va2)
	pa1 := addr.Translate(va1, 7, addr.Page2M)
	pa2 := addr.Translate(va2, 9, addr.Page2M)
	s.Fill(pa1, addr.Page2M, false, false)
	s.Fill(pa2, addr.Page2M, false, false)
	r := s.Access(va1, pa1, addr.Page2M, false)
	if !r.Hit || !r.FastPath {
		t.Fatalf("result = %+v", r)
	}
	if r.Cycles != 2*s.FastCycles() {
		t.Errorf("contained mispredict = %d cycles, want %d (2x fast, not 2x slow)",
			r.Cycles, 2*s.FastCycles())
	}
	if r.WaysProbed != 1+4 {
		t.Errorf("probed %d ways, want 5 (1 predicted + 4 partition)", r.WaysProbed)
	}
}

func TestWPPredictionOutsidePartitionIgnored(t *testing.T) {
	s := MustNewSeesaw(wpCfg())
	// Train MRU on a base-page line in partition 1.
	vaBase := addr.VAddr(0x1000)                     // VA bit 12 set -> partition 1 (via PA)
	paBase := addr.Translate(vaBase, 1, addr.Page4K) // PPN 1 -> PA 0x1000+... bit12=1
	s.Fill(paBase, addr.Page4K, false, false)
	// Now a superpage access to partition 0 of the same set: the MRU
	// entry points into partition 1, outside the fast partition — it
	// must be ignored, not treated as a misprediction.
	vaSuper := addr.VAddr(0x4000_0000)
	paSuper := addr.Translate(vaSuper, 7, addr.Page2M)
	s.OnSuperpageTLBFill(vaSuper)
	s.Fill(paSuper, addr.Page2M, false, false)
	// Re-train MRU to point at partition-1 way again.
	s.Access(vaBase, paBase, addr.Page4K, false)
	r := s.Access(vaSuper, paSuper, addr.Page2M, false)
	if !r.Hit || !r.FastPath {
		t.Fatalf("result = %+v", r)
	}
	if r.Cycles != s.FastCycles() || r.WaysProbed != 4 {
		t.Errorf("out-of-partition prediction mishandled: %+v", r)
	}
}

func TestWPAccuracyImprovesWithLocality(t *testing.T) {
	b := MustNewBaselineVIPT(wpCfg())
	va := addr.VAddr(0x2000)
	pa := addr.Translate(va, 5, addr.Page4K)
	b.Fill(pa, addr.Page4K, false, false)
	for i := 0; i < 100; i++ {
		b.Access(va, pa, addr.Page4K, false)
	}
	if acc := b.Predictor().Accuracy(); acc < 0.99 {
		t.Errorf("repeated access accuracy = %v, want ~1", acc)
	}
}
