package core

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"seesaw/internal/addr"
)

// TestRegistryEnumeration pins the zoo's canonical order and the lookup
// surfaces every harness layer leans on.
func TestRegistryEnumeration(t *testing.T) {
	want := []string{"baseline", "seesaw", "pipt", "vespa"}
	if got := DesignNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DesignNames() = %v, want %v", got, want)
	}
	sorted := SortedDesignNames()
	if !sort.StringsAreSorted(sorted) || len(sorted) != len(want) {
		t.Errorf("SortedDesignNames() = %v", sorted)
	}
	if ds := Designs(); len(ds) != len(want) || ds[0].Name != "baseline" {
		t.Errorf("Designs() = %d descriptors, first %q", len(ds), ds[0].Name)
	}

	for legacy, name := range map[int]string{0: "baseline", 1: "seesaw", 2: "pipt"} {
		d, ok := DesignByLegacy(legacy)
		if !ok || d.Name != name {
			t.Errorf("DesignByLegacy(%d) = %v, %t; want %s", legacy, d, ok, name)
		}
	}
	// VESPA postdates the enum (Legacy -1), which must never resolve —
	// -1 is the "no legacy value" sentinel, not an address.
	if _, ok := DesignByLegacy(-1); ok {
		t.Error("DesignByLegacy(-1) resolved; -1 is the no-legacy sentinel")
	}
	if _, ok := DesignByLegacy(99); ok {
		t.Error("DesignByLegacy(99) resolved an unknown enum value")
	}
	if _, ok := LookupDesign("no-such-design"); ok {
		t.Error("LookupDesign resolved an unregistered name")
	}
}

// TestRegistryDescriptorsBuild drives every registered design through
// its own descriptor: build, identify, access both paths, snoop,
// upgrade, sweep, clone — the generic exercise any future design gets
// for free by being registered.
func TestRegistryDescriptorsBuild(t *testing.T) {
	for _, d := range Designs() {
		t.Run(d.Name, func(t *testing.T) {
			l, err := d.New(cfg32K(1.33))
			if err != nil {
				t.Fatal(err)
			}
			dn, ok := l.(DesignNamed)
			if !ok || dn.DesignName() != d.Name {
				t.Fatalf("built L1 identifies as %v, want %q", dn, d.Name)
			}
			if l.Name() == "" {
				t.Error("empty display name")
			}
			if l.FastCycles() > l.SlowCycles() {
				t.Errorf("fast %d above slow %d", l.FastCycles(), l.SlowCycles())
			}

			l.Fill(0x1000, addr.Page4K, true, false)
			if r := l.Access(0x1000, 0x1000, addr.Page4K, false); !r.Hit {
				t.Errorf("filled line missed: %+v", r)
			}
			l.UpgradeToModified(0x1000)
			if p := l.Snoop(0x1000, SnoopPeek); !p.Hit {
				t.Errorf("snoop missed a resident line: %+v", p)
			}

			c := l.Clone()
			c.EvictRange(0, 1<<30)
			if r := l.Access(0x1000, 0x1000, addr.Page4K, false); !r.Hit {
				t.Error("evicting from the clone emptied the original")
			}
			if r := c.Access(0x1000, 0x1000, addr.Page4K, false); r.Hit {
				t.Error("line survived the clone's EvictRange")
			}

			if d.AreaBytes != nil && d.AreaBytes(cfg32K(1.33)) == 0 {
				t.Error("declared AreaBytes hook reports zero extra SRAM")
			}
		})
	}
}

// TestRegisterRejections: registration is init-time programmer error
// territory — empty names, duplicates, and builderless designs panic.
func TestRegisterRejections(t *testing.T) {
	mustPanic := func(name string, d Design) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("empty name", Design{})
	mustPanic("duplicate", Design{Name: "seesaw", New: func(Config) (L1Cache, error) { return nil, nil }})
	mustPanic("no builder", Design{Name: "builderless"})
}

// TestPartitionRules covers the shared geometry validator's typed
// rejections, and TestConfigErrorRendering the error surface evolve's
// mutators switch on.
func TestPartitionRules(t *testing.T) {
	base := cfg32K(1.33)
	if err := partitionRules(base); err != nil {
		t.Errorf("Partitions=0 (design default) rejected: %v", err)
	}
	cases := []struct {
		parts, ways int
		rule        Rule
	}{
		{3, 8, RulePartitionsNotPow2},
		{16, 8, RulePartitionsExceedWays},
		{8, 12, RuleWaysNotDivisible},
	}
	for _, c := range cases {
		cfg := base
		cfg.Partitions, cfg.Ways = c.parts, c.ways
		err := partitionRules(cfg)
		if err == nil || err.Rule != c.rule {
			t.Errorf("partitions=%d ways=%d: got %v, want rule %s", c.parts, c.ways, err, c.rule)
		}
	}
}

func TestConfigErrorRendering(t *testing.T) {
	err := configErr("Partitions", 3, RulePartitionsNotPow2, "must be a power of two")
	for _, part := range []string{"Partitions", "3", string(RulePartitionsNotPow2), "power of two"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q is missing %q", err.Error(), part)
		}
	}
}

func TestInsertionPolicyString(t *testing.T) {
	if FourWay.String() != "4way" || FourEightWay.String() != "4way-8way" {
		t.Errorf("policy strings = %q, %q", FourWay.String(), FourEightWay.String())
	}
}
