package tlb

import (
	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

// Clone returns an independent deep copy of the TLB: same entries, same
// per-set MRU order, same statistics, in the same flat layout.
func (t *TLB) Clone() *TLB {
	return &TLB{
		cfg: t.cfg, nsets: t.nsets, setMask: t.setMask,
		vpns:  append([]uint64(nil), t.vpns...),
		ppns:  append([]uint64(nil), t.ppns...),
		sizes: append([]addr.PageSize(nil), t.sizes...),
		asids: append([]uint16(nil), t.asids...),
		slen:  append([]int32(nil), t.slen...),
		Stats: t.Stats,
	}
}

// Clone returns an independent deep copy of the hierarchy walking the
// given (typically cloned) walker. The OnL1SuperFill hook and the
// metrics mirror are NOT copied — they close over the original
// machine's TFTs and recorder, and the owner of the clone must rewire
// its own.
func (h *Hierarchy) Clone(walker *pagetable.Walker) *Hierarchy {
	c := &Hierarchy{cfg: h.cfg, walker: walker}
	for _, t := range h.l1 {
		c.l1 = append(c.l1, t.Clone())
	}
	if h.l2 != nil {
		c.l2 = h.l2.Clone()
	}
	return c
}
