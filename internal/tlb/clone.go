package tlb

import "seesaw/internal/pagetable"

// Clone returns an independent deep copy of the TLB: same entries, same
// per-set MRU order, same statistics.
func (t *TLB) Clone() *TLB {
	c := &TLB{cfg: t.cfg, nsets: t.nsets, Stats: t.Stats, sets: make([][]Entry, t.nsets)}
	for i, s := range t.sets {
		c.sets[i] = append([]Entry(nil), s...)
	}
	return c
}

// Clone returns an independent deep copy of the hierarchy walking the
// given (typically cloned) walker. The OnL1SuperFill hook and the
// metrics mirror are NOT copied — they close over the original
// machine's TFTs and recorder, and the owner of the clone must rewire
// its own.
func (h *Hierarchy) Clone(walker *pagetable.Walker) *Hierarchy {
	c := &Hierarchy{cfg: h.cfg, walker: walker}
	for _, t := range h.l1 {
		c.l1 = append(c.l1, t.Clone())
	}
	if h.l2 != nil {
		c.l2 = h.l2.Clone()
	}
	return c
}
