package tlb

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/metrics"
	"seesaw/internal/pagetable"
)

// Source identifies where a translation was resolved.
type Source int

const (
	// SourceL1 means an L1 TLB hit (fully overlapped with VIPT cache
	// indexing, so it adds no cycles to the access).
	SourceL1 Source = iota
	// SourceL2 means an L2 TLB hit.
	SourceL2
	// SourceWalk means a page-table walk.
	SourceWalk
	// SourceFault means the address is unmapped.
	SourceFault
)

func (s Source) String() string {
	switch s {
	case SourceL1:
		return "L1"
	case SourceL2:
		return "L2"
	case SourceWalk:
		return "walk"
	case SourceFault:
		return "fault"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Result is the outcome of a hierarchy translation.
type Result struct {
	PA     addr.PAddr
	Size   addr.PageSize
	Source Source
	// ExtraCycles is the translation latency beyond the L1 TLB lookup
	// that VIPT already overlaps with cache indexing: 0 on an L1 hit,
	// the L2 latency on an L2 hit, L2 latency + walk cycles on a walk.
	ExtraCycles int
	// FilledL1Super reports that this translation filled the 2MB L1 TLB
	// — the event that also fills the TFT (Fig 5 steps 6-8).
	FilledL1Super bool
}

// HierarchyConfig sizes a core's TLB hierarchy.
type HierarchyConfig struct {
	// L1 per-size configurations; typical Sandybridge: 128-entry 4KB,
	// 16-entry 2MB. A nil slice entry disables that level.
	L1 []Config
	// L2 unified configuration; nil disables the L2 TLB.
	L2 *Config
	// L2LatencyCycles is charged on L1 misses that reach the L2.
	L2LatencyCycles int
}

// SandybridgeTLBs returns the paper's out-of-order configuration (Table
// II): split L1s, 128-entry 4KB and 16-entry 2MB, 4-way; no unified L2 is
// listed for Sandybridge in the paper's table, but a 512-entry L2 is used
// for Atom. We model Sandybridge's real 512-entry L2 as well so walks are
// not overstated.
func SandybridgeTLBs() HierarchyConfig {
	return HierarchyConfig{
		L1: []Config{
			{Name: "L1-4K", Entries: 128, Assoc: 4, Sizes: []addr.PageSize{addr.Page4K}},
			{Name: "L1-2M", Entries: 16, Assoc: 4, Sizes: []addr.PageSize{addr.Page2M}},
			{Name: "L1-1G", Entries: 4, Assoc: 4, Sizes: []addr.PageSize{addr.Page1G}},
		},
		L2:              &Config{Name: "L2", Entries: 512, Assoc: 4, Sizes: []addr.PageSize{addr.Page4K, addr.Page2M}},
		L2LatencyCycles: 7,
	}
}

// AtomTLBs returns the paper's in-order configuration (Table II):
// 64-entry 4KB L1, 32-entry 2MB L1, 512-entry L2.
func AtomTLBs() HierarchyConfig {
	return HierarchyConfig{
		L1: []Config{
			{Name: "L1-4K", Entries: 64, Assoc: 4, Sizes: []addr.PageSize{addr.Page4K}},
			{Name: "L1-2M", Entries: 32, Assoc: 4, Sizes: []addr.PageSize{addr.Page2M}},
			{Name: "L1-1G", Entries: 4, Assoc: 4, Sizes: []addr.PageSize{addr.Page1G}},
		},
		L2:              &Config{Name: "L2", Entries: 512, Assoc: 4, Sizes: []addr.PageSize{addr.Page4K, addr.Page2M}},
		L2LatencyCycles: 7,
	}
}

// SmallTLBs returns the reduced TLB hierarchy a serial PIPT L1 forces:
// translation sits on the load-to-use critical path, so the L1 TLBs must
// be small enough to resolve in a single cycle, and the L2 shrinks with
// them. This is the TLB-hit-rate cost the paper's Fig 14 alternatives pay
// ("without shrinking TLB sizes, which other approaches frequently need
// to do").
func SmallTLBs() HierarchyConfig {
	return HierarchyConfig{
		L1: []Config{
			{Name: "L1-4K", Entries: 16, Assoc: 4, Sizes: []addr.PageSize{addr.Page4K}},
			{Name: "L1-2M", Entries: 2, Assoc: 2, Sizes: []addr.PageSize{addr.Page2M}},
			{Name: "L1-1G", Entries: 2, Assoc: 2, Sizes: []addr.PageSize{addr.Page1G}},
		},
		L2:              &Config{Name: "L2", Entries: 128, Assoc: 4, Sizes: []addr.PageSize{addr.Page4K, addr.Page2M}},
		L2LatencyCycles: 7,
	}
}

// Hierarchy is one core's TLB stack plus its page walker.
type Hierarchy struct {
	cfg    HierarchyConfig
	l1     []*TLB
	l2     *TLB
	walker *pagetable.Walker

	// OnL1SuperFill, if set, is called whenever a 2MB translation is
	// filled into the L1 2MB TLB; the TFT hooks in here.
	OnL1SuperFill func(va addr.VAddr, asid uint16)

	// Metrics, when non-nil, mirrors fills, walks, and shootdowns into
	// the observability layer under MetricsCore.
	Metrics     *metrics.Recorder
	MetricsCore int
}

// NewHierarchy builds the TLB stack over the given walker.
func NewHierarchy(cfg HierarchyConfig, walker *pagetable.Walker) (*Hierarchy, error) {
	h := &Hierarchy{cfg: cfg, walker: walker}
	for _, c := range cfg.L1 {
		t, err := New(c)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, t)
	}
	if cfg.L2 != nil {
		t, err := New(*cfg.L2)
		if err != nil {
			return nil, err
		}
		h.l2 = t
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy that panics on error.
func MustNewHierarchy(cfg HierarchyConfig, walker *pagetable.Walker) *Hierarchy {
	h, err := NewHierarchy(cfg, walker)
	if err != nil {
		panic(err)
	}
	return h
}

// l1For returns the L1 TLB holding the given page size, or nil.
func (h *Hierarchy) l1For(s addr.PageSize) *TLB {
	for _, t := range h.l1 {
		if t.holds(s) {
			return t
		}
	}
	return nil
}

// L1Super returns the 2MB L1 TLB (the one whose occupancy the scheduler
// heuristic watches), or nil if absent.
func (h *Hierarchy) L1Super() *TLB { return h.l1For(addr.Page2M) }

// L1For exposes the L1 TLB holding a page size (for stats).
func (h *Hierarchy) L1For(s addr.PageSize) *TLB { return h.l1For(s) }

// L2 exposes the unified second-level TLB (may be nil).
func (h *Hierarchy) L2TLB() *TLB { return h.l2 }

// Walker exposes the page walker (for stats).
func (h *Hierarchy) Walker() *pagetable.Walker { return h.walker }

// fillL1 installs a translation in the right per-size L1 TLB. va is the
// access that triggered the fill: superpage fills mark the TFT with the
// 2MB region containing va — for 2MB pages that is the page itself, for
// 1GB pages the specific 2MB-aligned sub-region being touched (the paper:
// "this approach generalizes readily to 1GB superpages too").
func (h *Hierarchy) fillL1(e Entry, va addr.VAddr) {
	t := h.l1For(e.Size)
	if t == nil {
		return
	}
	t.Fill(e)
	if e.Size.IsSuper() && h.OnL1SuperFill != nil {
		h.OnL1SuperFill(va.PageBase(addr.Page2M), e.ASID)
	}
}

// Translate resolves va for asid through the hierarchy: all L1 TLBs are
// probed in parallel (free under VIPT), then the L2, then the walker.
// Fills propagate to the L2 and the appropriate L1.
func (h *Hierarchy) Translate(va addr.VAddr, asid uint16) Result {
	// Parallel L1 probes.
	for _, t := range h.l1 {
		if e, ok := t.Lookup(va, asid); ok {
			return Result{
				PA:     addr.Translate(va, e.PPN, e.Size),
				Size:   e.Size,
				Source: SourceL1,
			}
		}
	}
	extra := 0
	if h.l2 != nil {
		extra += h.cfg.L2LatencyCycles
		if e, ok := h.l2.Lookup(va, asid); ok {
			h.Metrics.Add(h.MetricsCore, metrics.CtrTLBFill, 1)
			h.fillL1(e, va)
			return Result{
				PA:            addr.Translate(va, e.PPN, e.Size),
				Size:          e.Size,
				Source:        SourceL2,
				ExtraCycles:   extra,
				FilledL1Super: e.Size.IsSuper(),
			}
		}
	}
	pte, walkCycles, ok := h.walker.Walk(va)
	extra += walkCycles
	if !ok {
		return Result{Source: SourceFault, ExtraCycles: extra}
	}
	e := Entry{VPN: va.VPN(pte.Size), PPN: pte.PPN, Size: pte.Size, ASID: asid}
	h.Metrics.Add(h.MetricsCore, metrics.CtrWalk, 1)
	h.Metrics.Add(h.MetricsCore, metrics.CtrTLBFill, 1)
	h.Metrics.Emit(h.MetricsCore, metrics.EvTLBFill,
		uint64(va), uint64(addr.Translate(va, e.PPN, e.Size)), uint64(e.Size.Bytes()))
	if h.l2 != nil && h.l2.holds(e.Size) {
		h.l2.Fill(e)
	}
	h.fillL1(e, va)
	return Result{
		PA:            addr.Translate(va, e.PPN, e.Size),
		Size:          e.Size,
		Source:        SourceWalk,
		ExtraCycles:   extra,
		FilledL1Super: e.Size.IsSuper(),
	}
}

// Invalidate implements invlpg: it drops va's translations from every
// level for asid and returns the number of entries dropped. (The TFT
// invalidation happens alongside in the SEESAW cache; see internal/core.)
func (h *Hierarchy) Invalidate(va addr.VAddr, asid uint16) int {
	n := 0
	for _, t := range h.l1 {
		n += t.Invalidate(va, asid)
	}
	if h.l2 != nil {
		n += h.l2.Invalidate(va, asid)
	}
	if n > 0 {
		h.Metrics.Add(h.MetricsCore, metrics.CtrTLBShootdown, uint64(n))
	}
	return n
}

// Contains reports whether any level still holds a translation of va
// for asid, without perturbing recency or statistics. The invariant
// checker uses it to assert an invlpg really reached every level.
func (h *Hierarchy) Contains(va addr.VAddr, asid uint16) bool {
	for _, t := range h.l1 {
		if t.Contains(va, asid) {
			return true
		}
	}
	return h.l2 != nil && h.l2.Contains(va, asid)
}

// FlushASID drops all of asid's entries from every level.
func (h *Hierarchy) FlushASID(asid uint16) int {
	n := 0
	for _, t := range h.l1 {
		n += t.FlushASID(asid)
	}
	if h.l2 != nil {
		n += h.l2.FlushASID(asid)
	}
	return n
}
