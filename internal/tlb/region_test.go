package tlb

import (
	"math/rand"
	"reflect"
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

// fillPair fills two hierarchies with an identical pseudo-random mix of
// 4KB, 2MB, and 1GB entries across two ASIDs, some inside the 2MB
// region at base and some far away.
func fillPair(t *testing.T, a, b *Hierarchy, base addr.VAddr, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 4000; i++ {
		var va addr.VAddr
		if rng.Intn(3) == 0 {
			va = base + addr.VAddr(rng.Intn(512)*4096)
		} else {
			va = addr.VAddr(uint64(rng.Intn(1<<20)) * 4096)
		}
		size := addr.Page4K
		switch rng.Intn(4) {
		case 0:
			size = addr.Page2M
		case 1:
			if rng.Intn(8) == 0 {
				size = addr.Page1G
			}
		}
		asid := uint16(1 + rng.Intn(2))
		e := Entry{VPN: va.VPN(size), PPN: uint64(i), Size: size, ASID: asid}
		for _, h := range []*Hierarchy{a, b} {
			if l1 := h.l1For(size); l1 != nil {
				if err := l1.Fill(e); err != nil {
					t.Fatal(err)
				}
			}
			if h.l2 != nil && h.l2.holds(size) {
				h.l2.Fill(e)
			}
		}
	}
}

// liveContents reconstructs the live entries of every set in MRU order,
// ignoring stale storage beyond each set's length (which may differ
// between equivalent invalidation paths).
func liveContents(t *TLB) [][]Entry {
	out := make([][]Entry, t.nsets)
	for si := 0; si < t.nsets; si++ {
		base := si * t.cfg.Assoc
		for i := 0; i < int(t.slen[si]); i++ {
			out[si] = append(out[si], Entry{
				VPN: t.vpns[base+i], PPN: t.ppns[base+i],
				Size: t.sizes[base+i], ASID: t.asids[base+i],
			})
		}
	}
	return out
}

// invalidatePerPage is the old shootdown loop: one invlpg probe per 4KB
// page of the 2MB region, through every level.
func invalidatePerPage(h *Hierarchy, base addr.VAddr, asid uint16) int {
	n := 0
	for off := addr.VAddr(0); off < addr.VAddr(addr.Page2M.Bytes()); off += addr.VAddr(addr.Page4K.Bytes()) {
		n += h.Invalidate(base+off, asid)
	}
	return n
}

// TestInvalidateRegionEquivalence proves the range invalidation is
// observationally identical to the 512-probe loop it replaces: same
// entries dropped, same survivor MRU order, same statistics.
func TestInvalidateRegionEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		pt := pagetable.New()
		a := MustNewHierarchy(SandybridgeTLBs(), pagetable.NewWalker(pt, 20))
		b := MustNewHierarchy(SandybridgeTLBs(), pagetable.NewWalker(pt, 20))
		base := addr.VAddr(0x40000000) // 2MB-aligned, inside the random fill range
		fillPair(t, a, b, base, seed)

		nOld := invalidatePerPage(a, base, 1)
		nNew := b.InvalidateRegion2M(base, 1)
		if nOld != nNew {
			t.Fatalf("seed %d: per-page dropped %d, region dropped %d", seed, nOld, nNew)
		}
		tlbsA := append(append([]*TLB(nil), a.l1...), a.l2)
		tlbsB := append(append([]*TLB(nil), b.l1...), b.l2)
		for i := range tlbsA {
			if !reflect.DeepEqual(liveContents(tlbsA[i]), liveContents(tlbsB[i])) {
				t.Fatalf("seed %d: %s contents diverge after region invalidate", seed, tlbsA[i].cfg.Name)
			}
			if tlbsA[i].Stats.Invalidations != tlbsB[i].Stats.Invalidations {
				t.Fatalf("seed %d: %s Invalidations: per-page %d, region %d", seed,
					tlbsA[i].cfg.Name, tlbsA[i].Stats.Invalidations, tlbsB[i].Stats.Invalidations)
			}
		}
	}
}

// TestInvalidateRegionEmpty: invalidating a region nothing maps is a
// counted no-op, exactly like 512 empty probes.
func TestInvalidateRegionEmpty(t *testing.T) {
	pt := pagetable.New()
	h := MustNewHierarchy(SandybridgeTLBs(), pagetable.NewWalker(pt, 20))
	if n := h.InvalidateRegion2M(addr.VAddr(0x40000000), 1); n != 0 {
		t.Fatalf("dropped %d from empty hierarchy", n)
	}
	for _, l1 := range h.l1 {
		if l1.Stats.Invalidations != 0 {
			t.Fatalf("%s counted %d invalidations", l1.cfg.Name, l1.Stats.Invalidations)
		}
	}
}

func benchFill(h *Hierarchy) {
	// Entries outside the shootdown region: the benchmark then measures
	// pure scan cost and every iteration sees identical state.
	for i := 0; i < 600; i++ {
		va := addr.VAddr(0x100000000) + addr.VAddr(i)*addr.VAddr(addr.Page4K.Bytes())
		e := Entry{VPN: va.VPN(addr.Page4K), PPN: uint64(i), Size: addr.Page4K, ASID: 1}
		h.l1For(addr.Page4K).Fill(e)
		h.l2.Fill(e)
	}
}

func BenchmarkInvalidatePerPage2M(b *testing.B) {
	pt := pagetable.New()
	h := MustNewHierarchy(SandybridgeTLBs(), pagetable.NewWalker(pt, 20))
	benchFill(h)
	base := addr.VAddr(0x40000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invalidatePerPage(h, base, 1)
	}
}

func BenchmarkInvalidateRegion2M(b *testing.B) {
	pt := pagetable.New()
	h := MustNewHierarchy(SandybridgeTLBs(), pagetable.NewWalker(pt, 20))
	benchFill(h)
	base := addr.VAddr(0x40000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.InvalidateRegion2M(base, 1)
	}
}
