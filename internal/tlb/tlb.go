// Package tlb models the TLB hierarchy SEESAW sits next to: per-page-size
// split L1 TLBs (as on Intel Sandybridge/Atom), a unified L2 TLB holding
// 4KB and 2MB translations, and the fall-back to the hardware page walker.
// Entries are ASID-tagged, so context switches do not flush TLBs (the TFT,
// which is not ASID-tagged, is flushed instead — see internal/tft).
package tlb

import (
	"fmt"

	"seesaw/internal/addr"
)

// Entry is one cached translation.
type Entry struct {
	VPN  uint64
	PPN  uint64
	Size addr.PageSize
	ASID uint16
}

// Config describes one TLB structure.
type Config struct {
	Name    string
	Entries int
	// Assoc is the set associativity; 0 or >= Entries means fully
	// associative.
	Assoc int
	// Sizes lists the page sizes this TLB holds.
	Sizes []addr.PageSize
}

// Stats counts TLB events.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Evictions     uint64
	Invalidations uint64
}

// TLB is a set-associative (or fully associative) translation cache with
// true-LRU replacement within each set. Storage is flat: set s occupies
// [s*assoc, s*assoc+slen[s]) of the parallel entry arrays, kept in MRU-
// to-LRU order, so lookups scan a few contiguous words and fills rotate
// in place instead of allocating.
type TLB struct {
	cfg     Config
	nsets   int
	setMask uint64 // nsets-1; nsets is a power of two

	// Parallel flat entry arrays (struct-of-arrays), MRU-first per set.
	vpns  []uint64
	ppns  []uint64
	sizes []addr.PageSize
	asids []uint16
	slen  []int32 // live entries per set

	Stats Stats
}

// New creates a TLB from cfg.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("tlb %q: %d entries", cfg.Name, cfg.Entries)
	}
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("tlb %q: no page sizes", cfg.Name)
	}
	assoc := cfg.Assoc
	if assoc <= 0 || assoc >= cfg.Entries {
		assoc = cfg.Entries
	}
	if cfg.Entries%assoc != 0 {
		return nil, fmt.Errorf("tlb %q: %d entries not divisible by associativity %d",
			cfg.Name, cfg.Entries, assoc)
	}
	nsets := cfg.Entries / assoc
	if !addr.IsPow2(uint64(nsets)) {
		return nil, fmt.Errorf("tlb %q: %d sets not a power of two", cfg.Name, nsets)
	}
	cfg.Assoc = assoc
	n := nsets * assoc
	return &TLB{
		cfg: cfg, nsets: nsets, setMask: uint64(nsets - 1),
		vpns:  make([]uint64, n),
		ppns:  make([]uint64, n),
		sizes: make([]addr.PageSize, n),
		asids: make([]uint16, n),
		slen:  make([]int32, nsets),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB's configuration (with Assoc normalized).
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) holds(s addr.PageSize) bool {
	for _, hs := range t.cfg.Sizes {
		if hs == s {
			return true
		}
	}
	return false
}

func (t *TLB) setIndex(vpn uint64) int { return int(vpn & t.setMask) }

// moveToFront rotates the entry at base+i to the front of its set,
// shifting [base, base+i) down by one — the in-place MRU promotion.
func (t *TLB) moveToFront(base, i int) {
	if i == 0 {
		return
	}
	vpn, ppn, size, asid := t.vpns[base+i], t.ppns[base+i], t.sizes[base+i], t.asids[base+i]
	copy(t.vpns[base+1:base+i+1], t.vpns[base:base+i])
	copy(t.ppns[base+1:base+i+1], t.ppns[base:base+i])
	copy(t.sizes[base+1:base+i+1], t.sizes[base:base+i])
	copy(t.asids[base+1:base+i+1], t.asids[base:base+i])
	t.vpns[base], t.ppns[base], t.sizes[base], t.asids[base] = vpn, ppn, size, asid
}

// Lookup searches for a translation of va for asid. For multi-size TLBs
// every held page size is tried. On a hit the entry is promoted to MRU.
func (t *TLB) Lookup(va addr.VAddr, asid uint16) (Entry, bool) {
	t.Stats.Lookups++
	for _, s := range t.cfg.Sizes {
		vpn := va.VPN(s)
		base := t.setIndex(vpn) * t.cfg.Assoc
		n := int(t.slen[t.setIndex(vpn)])
		for i := 0; i < n; i++ {
			if t.vpns[base+i] == vpn && t.sizes[base+i] == s && t.asids[base+i] == asid {
				e := Entry{VPN: vpn, PPN: t.ppns[base+i], Size: s, ASID: asid}
				t.moveToFront(base, i)
				t.Stats.Hits++
				return e, true
			}
		}
	}
	t.Stats.Misses++
	return Entry{}, false
}

// Fill inserts a translation, evicting the LRU entry of its set if full.
// Filling a page size the TLB does not hold is a caller bug.
func (t *TLB) Fill(e Entry) error {
	if !t.holds(e.Size) {
		return fmt.Errorf("tlb %q: fill of unsupported page size %v", t.cfg.Name, e.Size)
	}
	t.Stats.Fills++
	set := t.setIndex(e.VPN)
	base := set * t.cfg.Assoc
	n := int(t.slen[set])
	// Replace an existing entry for the same page in place.
	for i := 0; i < n; i++ {
		if t.vpns[base+i] == e.VPN && t.sizes[base+i] == e.Size && t.asids[base+i] == e.ASID {
			t.moveToFront(base, i)
			t.ppns[base] = e.PPN
			return nil
		}
	}
	if n >= t.cfg.Assoc {
		n = t.cfg.Assoc - 1 // drop LRU
		t.Stats.Evictions++
	}
	// Shift the survivors down one slot and install at the MRU front.
	copy(t.vpns[base+1:base+n+1], t.vpns[base:base+n])
	copy(t.ppns[base+1:base+n+1], t.ppns[base:base+n])
	copy(t.sizes[base+1:base+n+1], t.sizes[base:base+n])
	copy(t.asids[base+1:base+n+1], t.asids[base:base+n])
	t.vpns[base], t.ppns[base], t.sizes[base], t.asids[base] = e.VPN, e.PPN, e.Size, e.ASID
	t.slen[set] = int32(n + 1)
	return nil
}

// Contains reports whether any held page size translates va for asid,
// without touching recency or statistics — the invariant checker's
// non-perturbing probe.
func (t *TLB) Contains(va addr.VAddr, asid uint16) bool {
	for _, s := range t.cfg.Sizes {
		vpn := va.VPN(s)
		set := t.setIndex(vpn)
		base := set * t.cfg.Assoc
		for i := 0; i < int(t.slen[set]); i++ {
			if t.vpns[base+i] == vpn && t.sizes[base+i] == s && t.asids[base+i] == asid {
				return true
			}
		}
	}
	return false
}

// compactSet removes every entry of a set for which drop returns true,
// preserving MRU order, and returns how many were removed.
func (t *TLB) compactSet(set int, drop func(i int) bool) int {
	base := set * t.cfg.Assoc
	n := int(t.slen[set])
	w := 0
	for i := 0; i < n; i++ {
		if drop(base + i) {
			continue
		}
		if w != i {
			t.vpns[base+w], t.ppns[base+w] = t.vpns[base+i], t.ppns[base+i]
			t.sizes[base+w], t.asids[base+w] = t.sizes[base+i], t.asids[base+i]
		}
		w++
	}
	t.slen[set] = int32(w)
	return n - w
}

// Invalidate removes any entry translating va for asid (all held sizes),
// returning how many entries were dropped. This is the TLB side of
// invlpg.
func (t *TLB) Invalidate(va addr.VAddr, asid uint16) int {
	dropped := 0
	for _, s := range t.cfg.Sizes {
		vpn := va.VPN(s)
		set := t.setIndex(vpn)
		dropped += t.compactSet(set, func(i int) bool {
			return t.vpns[i] == vpn && t.sizes[i] == s && t.asids[i] == asid
		})
	}
	t.Stats.Invalidations += uint64(dropped)
	return dropped
}

// FlushASID drops every entry belonging to asid.
func (t *TLB) FlushASID(asid uint16) int {
	dropped := 0
	for si := 0; si < t.nsets; si++ {
		dropped += t.compactSet(si, func(i int) bool { return t.asids[i] == asid })
	}
	t.Stats.Invalidations += uint64(dropped)
	return dropped
}

// ValidCount returns the number of valid entries currently held. The OoO
// scheduler's speculation heuristic (Section IV-B3) reads this from the
// superpage L1 TLB.
func (t *TLB) ValidCount() int {
	n := 0
	for _, l := range t.slen {
		n += int(l)
	}
	return n
}

// HitRate returns hits/lookups.
func (t *TLB) HitRate() float64 {
	if t.Stats.Lookups == 0 {
		return 0
	}
	return float64(t.Stats.Hits) / float64(t.Stats.Lookups)
}
