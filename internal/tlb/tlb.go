// Package tlb models the TLB hierarchy SEESAW sits next to: per-page-size
// split L1 TLBs (as on Intel Sandybridge/Atom), a unified L2 TLB holding
// 4KB and 2MB translations, and the fall-back to the hardware page walker.
// Entries are ASID-tagged, so context switches do not flush TLBs (the TFT,
// which is not ASID-tagged, is flushed instead — see internal/tft).
package tlb

import (
	"fmt"

	"seesaw/internal/addr"
)

// Entry is one cached translation.
type Entry struct {
	VPN  uint64
	PPN  uint64
	Size addr.PageSize
	ASID uint16
}

// Config describes one TLB structure.
type Config struct {
	Name    string
	Entries int
	// Assoc is the set associativity; 0 or >= Entries means fully
	// associative.
	Assoc int
	// Sizes lists the page sizes this TLB holds.
	Sizes []addr.PageSize
}

// Stats counts TLB events.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Evictions     uint64
	Invalidations uint64
}

// TLB is a set-associative (or fully associative) translation cache with
// true-LRU replacement within each set.
type TLB struct {
	cfg   Config
	sets  [][]Entry // each set ordered most- to least-recently used
	nsets int
	Stats Stats
}

// New creates a TLB from cfg.
func New(cfg Config) (*TLB, error) {
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("tlb %q: %d entries", cfg.Name, cfg.Entries)
	}
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("tlb %q: no page sizes", cfg.Name)
	}
	assoc := cfg.Assoc
	if assoc <= 0 || assoc >= cfg.Entries {
		assoc = cfg.Entries
	}
	if cfg.Entries%assoc != 0 {
		return nil, fmt.Errorf("tlb %q: %d entries not divisible by associativity %d",
			cfg.Name, cfg.Entries, assoc)
	}
	nsets := cfg.Entries / assoc
	if !addr.IsPow2(uint64(nsets)) {
		return nil, fmt.Errorf("tlb %q: %d sets not a power of two", cfg.Name, nsets)
	}
	cfg.Assoc = assoc
	t := &TLB{cfg: cfg, nsets: nsets, sets: make([][]Entry, nsets)}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB's configuration (with Assoc normalized).
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) holds(s addr.PageSize) bool {
	for _, hs := range t.cfg.Sizes {
		if hs == s {
			return true
		}
	}
	return false
}

func (t *TLB) setIndex(vpn uint64) int { return int(vpn % uint64(t.nsets)) }

// Lookup searches for a translation of va for asid. For multi-size TLBs
// every held page size is tried. On a hit the entry is promoted to MRU.
func (t *TLB) Lookup(va addr.VAddr, asid uint16) (Entry, bool) {
	t.Stats.Lookups++
	for _, s := range t.cfg.Sizes {
		vpn := va.VPN(s)
		set := t.setIndex(vpn)
		for i, e := range t.sets[set] {
			if e.VPN == vpn && e.Size == s && e.ASID == asid {
				// Move to front (MRU).
				copy(t.sets[set][1:i+1], t.sets[set][:i])
				t.sets[set][0] = e
				t.Stats.Hits++
				return e, true
			}
		}
	}
	t.Stats.Misses++
	return Entry{}, false
}

// Fill inserts a translation, evicting the LRU entry of its set if full.
// Filling a page size the TLB does not hold is a caller bug.
func (t *TLB) Fill(e Entry) error {
	if !t.holds(e.Size) {
		return fmt.Errorf("tlb %q: fill of unsupported page size %v", t.cfg.Name, e.Size)
	}
	t.Stats.Fills++
	set := t.setIndex(e.VPN)
	// Replace an existing entry for the same page in place.
	for i, old := range t.sets[set] {
		if old.VPN == e.VPN && old.Size == e.Size && old.ASID == e.ASID {
			copy(t.sets[set][1:i+1], t.sets[set][:i])
			t.sets[set][0] = e
			return nil
		}
	}
	if len(t.sets[set]) >= t.cfg.Assoc {
		t.sets[set] = t.sets[set][:t.cfg.Assoc-1] // drop LRU
		t.Stats.Evictions++
	}
	t.sets[set] = append([]Entry{e}, t.sets[set]...)
	return nil
}

// Contains reports whether any held page size translates va for asid,
// without touching recency or statistics — the invariant checker's
// non-perturbing probe.
func (t *TLB) Contains(va addr.VAddr, asid uint16) bool {
	for _, s := range t.cfg.Sizes {
		vpn := va.VPN(s)
		for _, e := range t.sets[t.setIndex(vpn)] {
			if e.VPN == vpn && e.Size == s && e.ASID == asid {
				return true
			}
		}
	}
	return false
}

// Invalidate removes any entry translating va for asid (all held sizes),
// returning how many entries were dropped. This is the TLB side of
// invlpg.
func (t *TLB) Invalidate(va addr.VAddr, asid uint16) int {
	dropped := 0
	for _, s := range t.cfg.Sizes {
		vpn := va.VPN(s)
		set := t.setIndex(vpn)
		kept := t.sets[set][:0]
		for _, e := range t.sets[set] {
			if e.VPN == vpn && e.Size == s && e.ASID == asid {
				dropped++
				continue
			}
			kept = append(kept, e)
		}
		t.sets[set] = kept
	}
	t.Stats.Invalidations += uint64(dropped)
	return dropped
}

// FlushASID drops every entry belonging to asid.
func (t *TLB) FlushASID(asid uint16) int {
	dropped := 0
	for si := range t.sets {
		kept := t.sets[si][:0]
		for _, e := range t.sets[si] {
			if e.ASID == asid {
				dropped++
				continue
			}
			kept = append(kept, e)
		}
		t.sets[si] = kept
	}
	t.Stats.Invalidations += uint64(dropped)
	return dropped
}

// ValidCount returns the number of valid entries currently held. The OoO
// scheduler's speculation heuristic (Section IV-B3) reads this from the
// superpage L1 TLB.
func (t *TLB) ValidCount() int {
	n := 0
	for _, s := range t.sets {
		n += len(s)
	}
	return n
}

// HitRate returns hits/lookups.
func (t *TLB) HitRate() float64 {
	if t.Stats.Lookups == 0 {
		return 0
	}
	return float64(t.Stats.Hits) / float64(t.Stats.Lookups)
}
