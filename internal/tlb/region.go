package tlb

import (
	"seesaw/internal/addr"
	"seesaw/internal/metrics"
)

// regionSpan returns the VPN range [lo, lo+n) at page size s that a 2MB
// region starting at base covers: 512 4KB pages, the one 2MB page, or
// the single covering page for sizes larger than the region.
func regionSpan(base addr.VAddr, s addr.PageSize) (lo, n uint64) {
	if s.Bytes() >= addr.Page2M.Bytes() {
		return base.VPN(s), 1
	}
	return base.VPN(s), addr.Page2M.Bytes() / s.Bytes()
}

// InvalidateRegion drops every entry for asid whose page overlaps the
// 2MB region starting at base (2MB-aligned), returning how many entries
// were dropped. It is equivalent to calling Invalidate for each 4KB
// page of the region — same entries dropped, same survivor MRU order,
// same Stats.Invalidations — but does one pass over each set instead of
// 512 per-page probes, so a shootdown of a splintered superpage no
// longer rescans the 4KB sets hundreds of times.
func (t *TLB) InvalidateRegion(base addr.VAddr, asid uint16) int {
	dropped := 0
	for si := 0; si < t.nsets; si++ {
		dropped += t.compactSet(si, func(i int) bool {
			if t.asids[i] != asid {
				return false
			}
			lo, n := regionSpan(base, t.sizes[i])
			return t.vpns[i] >= lo && t.vpns[i] < lo+n
		})
	}
	t.Stats.Invalidations += uint64(dropped)
	return dropped
}

// InvalidateRegion2M drops every translation overlapping the 2MB region
// at base from every level, returning the number of entries dropped.
// This is the TLB side of a superpage shootdown (promotion, splinter,
// or unmap of a 2MB region): one range invalidation instead of 512
// per-page invlpg probes through the whole stack.
func (h *Hierarchy) InvalidateRegion2M(base addr.VAddr, asid uint16) int {
	n := 0
	for _, t := range h.l1 {
		n += t.InvalidateRegion(base, asid)
	}
	if h.l2 != nil {
		n += h.l2.InvalidateRegion(base, asid)
	}
	if n > 0 {
		h.Metrics.Add(h.MetricsCore, metrics.CtrTLBShootdown, uint64(n))
	}
	return n
}
