package tlb

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

// warmTLB builds a small TLB with fills, hits, misses, and an eviction.
func warmTLB(t *testing.T) *TLB {
	t.Helper()
	tb, err := New(Config{Name: "t", Entries: 8, Assoc: 2, Sizes: []addr.PageSize{addr.Page4K}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 12; i++ {
		tb.Fill(Entry{VPN: i * 4, PPN: 100 + i, Size: addr.Page4K, ASID: 1})
	}
	tb.Lookup(addr.VAddr(44<<12), 1)
	tb.Lookup(addr.VAddr(999<<12), 1) // miss
	return tb
}

// TestTLBStateRoundTrip: a TLB restored from a captured state holds the
// same entries in the same MRU order with the same statistics.
func TestTLBStateRoundTrip(t *testing.T) {
	tb := warmTLB(t)
	fresh, err := New(tb.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetState(tb.State()); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats != tb.Stats || fresh.ValidCount() != tb.ValidCount() {
		t.Errorf("restored %+v (%d valid), want %+v (%d valid)",
			fresh.Stats, fresh.ValidCount(), tb.Stats, tb.ValidCount())
	}
	for vpn := uint64(0); vpn < 48; vpn += 4 {
		va := addr.VAddr(vpn << 12)
		e0, ok0 := tb.Lookup(va, 1)
		e1, ok1 := fresh.Lookup(va, 1)
		if e0 != e1 || ok0 != ok1 {
			t.Errorf("Lookup(%#x): original %+v/%v, restored %+v/%v", uint64(va), e0, ok0, e1, ok1)
		}
	}
}

// TestTLBStateRejections: wrong geometry and overfull sets are corrupt.
func TestTLBStateRejections(t *testing.T) {
	tb := warmTLB(t)
	other, err := New(Config{Name: "o", Entries: 16, Assoc: 2, Sizes: []addr.PageSize{addr.Page4K}})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.SetState(tb.State()); err == nil {
		t.Error("accepted a state with the wrong geometry")
	}

	over := tb.State()
	over.SLen = append([]int32(nil), over.SLen...)
	over.SLen[0] = 9
	fresh, _ := New(tb.Config())
	if err := fresh.SetState(over); err == nil {
		t.Error("accepted a set fuller than its ways")
	}
	over.SLen[0] = -1
	if err := fresh.SetState(over); err == nil {
		t.Error("accepted a negative set length")
	}
}

// hierOver builds a Sandybridge hierarchy over the given table, with a
// few translations resolved so every level and the walker have state.
func hierOver(t *testing.T, pt *pagetable.Table) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(SandybridgeTLBs(), pagetable.NewWalker(pt, 20))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHierarchyStateRoundTrip: a hierarchy restored from a captured
// state resolves from the same levels with the same statistics — an L1
// hit stays an L1 hit, a fault stays a fault.
func TestHierarchyStateRoundTrip(t *testing.T) {
	pt := pagetable.New()
	if err := pt.Map(0x7f00_0000_0000, 0xaa, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x7f00_0020_0000, 5, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	h := hierOver(t, pt)
	h.Translate(0x7f00_0000_0000, 1) // walk, fills L1+L2
	h.Translate(0x7f00_0020_1234, 1) // superpage walk
	h.Translate(0x6000_0000_0000, 1) // fault

	h2 := hierOver(t, pt)
	if err := h2.SetState(h.State()); err != nil {
		t.Fatal(err)
	}
	for _, va := range []addr.VAddr{0x7f00_0000_0000, 0x7f00_0020_1234, 0x6000_0000_0000} {
		r0 := h.Translate(va, 1)
		r1 := h2.Translate(va, 1)
		if r0 != r1 {
			t.Errorf("Translate(%#x): original %+v, restored %+v", uint64(va), r0, r1)
		}
	}
	if h2.Walker().State() != h.Walker().State() {
		t.Errorf("walker stats diverge: %+v vs %+v", h2.Walker().State(), h.Walker().State())
	}
}

// TestHierarchyStateRejections: level-count and L2-presence mismatches
// are corrupt, and per-TLB geometry errors propagate.
func TestHierarchyStateRejections(t *testing.T) {
	pt := pagetable.New()
	h := hierOver(t, pt)

	missing := h.State()
	missing.L1 = missing.L1[:len(missing.L1)-1]
	if err := h.SetState(missing); err == nil {
		t.Error("accepted a state missing an L1 TLB")
	}

	noL2 := h.State()
	noL2.L2 = nil
	if err := h.SetState(noL2); err == nil {
		t.Error("accepted a state missing the L2 TLB")
	}

	badL1 := h.State()
	badL1.L1 = append([]State(nil), badL1.L1...)
	badL1.L1[0].VPNs = badL1.L1[0].VPNs[:1]
	if err := h.SetState(badL1); err == nil {
		t.Error("accepted an L1 state with the wrong geometry")
	}

	badL2 := h.State()
	l2 := *badL2.L2
	l2.SLen = append([]int32(nil), l2.SLen...)
	l2.SLen[0] = 99
	badL2.L2 = &l2
	if err := h.SetState(badL2); err == nil {
		t.Error("accepted an overfull L2 set")
	}
}

// TestHierarchyClone: the clone resolves identically over its own
// walker and diverges independently.
func TestHierarchyClone(t *testing.T) {
	pt := pagetable.New()
	if err := pt.Map(0x7f00_0000_0000, 0xaa, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	h := hierOver(t, pt)
	h.Translate(0x7f00_0000_0000, 1)

	c := h.Clone(pagetable.NewWalker(pt, 20))
	r0, r1 := h.Translate(0x7f00_0000_0000, 1), c.Translate(0x7f00_0000_0000, 1)
	if r0 != r1 {
		t.Errorf("clone translate %+v, original %+v", r1, r0)
	}
	c.FlushASID(1)
	if !h.Contains(0x7f00_0000_0000, 1) {
		t.Error("flushing the clone emptied the original")
	}
}
