package tlb

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

// State is one TLB's serializable mutable state: the flat entry arrays
// in their MRU order plus the statistics. Geometry is config-derived.
type State struct {
	VPNs  []uint64
	PPNs  []uint64
	Sizes []addr.PageSize
	ASIDs []uint16
	SLen  []int32
	Stats Stats
}

// State captures the TLB's entries and statistics.
func (t *TLB) State() State {
	return State{
		VPNs:  append([]uint64(nil), t.vpns...),
		PPNs:  append([]uint64(nil), t.ppns...),
		Sizes: append([]addr.PageSize(nil), t.sizes...),
		ASIDs: append([]uint16(nil), t.asids...),
		SLen:  append([]int32(nil), t.slen...),
		Stats: t.Stats,
	}
}

// SetState restores the TLB in place. The receiver must have the same
// geometry the state was captured from.
func (t *TLB) SetState(s State) error {
	if len(s.VPNs) != len(t.vpns) || len(s.PPNs) != len(t.ppns) ||
		len(s.Sizes) != len(t.sizes) || len(s.ASIDs) != len(t.asids) || len(s.SLen) != len(t.slen) {
		return fmt.Errorf("tlb %q: state geometry disagrees with the TLB's", t.cfg.Name)
	}
	assoc := 0
	if t.nsets > 0 {
		assoc = len(t.vpns) / t.nsets
	}
	for i, n := range s.SLen {
		if n < 0 || int(n) > assoc {
			return fmt.Errorf("tlb %q: set %d holds %d entries of %d ways", t.cfg.Name, i, n, assoc)
		}
	}
	copy(t.vpns, s.VPNs)
	copy(t.ppns, s.PPNs)
	copy(t.sizes, s.Sizes)
	copy(t.asids, s.ASIDs)
	copy(t.slen, s.SLen)
	t.Stats = s.Stats
	return nil
}

// HierarchyState is a TLB hierarchy's serializable state: each level's
// entries plus the page walker's statistics. The walker's table pointer
// and the OnL1SuperFill/metrics wiring are restored by the owner.
type HierarchyState struct {
	L1     []State
	L2     *State
	Walker pagetable.WalkerState
}

// State captures the hierarchy.
func (h *Hierarchy) State() HierarchyState {
	s := HierarchyState{Walker: h.walker.State()}
	for _, t := range h.l1 {
		s.L1 = append(s.L1, t.State())
	}
	if h.l2 != nil {
		l2 := h.l2.State()
		s.L2 = &l2
	}
	return s
}

// SetState restores the hierarchy in place.
func (h *Hierarchy) SetState(s HierarchyState) error {
	if len(s.L1) != len(h.l1) {
		return fmt.Errorf("tlb: state has %d L1 TLBs, hierarchy has %d", len(s.L1), len(h.l1))
	}
	if (s.L2 != nil) != (h.l2 != nil) {
		return fmt.Errorf("tlb: state and hierarchy disagree about an L2 TLB")
	}
	for i, st := range s.L1 {
		if err := h.l1[i].SetState(st); err != nil {
			return err
		}
	}
	if s.L2 != nil {
		if err := h.l2.SetState(*s.L2); err != nil {
			return err
		}
	}
	h.walker.SetState(s.Walker)
	return nil
}
