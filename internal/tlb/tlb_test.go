package tlb

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
)

func cfg4K(entries, assoc int) Config {
	return Config{Name: "t", Entries: entries, Assoc: assoc, Sizes: []addr.PageSize{addr.Page4K}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Entries: 0, Sizes: []addr.PageSize{addr.Page4K}}); err == nil {
		t.Error("zero entries must error")
	}
	if _, err := New(Config{Entries: 16}); err == nil {
		t.Error("no sizes must error")
	}
	if _, err := New(cfg4K(10, 4)); err == nil {
		t.Error("entries not divisible by assoc must error")
	}
	if _, err := New(cfg4K(24, 4)); err == nil {
		t.Error("non-pow2 set count must error")
	}
	// Fully associative normalization.
	tl := MustNew(cfg4K(16, 0))
	if tl.Config().Assoc != 16 {
		t.Errorf("assoc normalized to %d, want 16", tl.Config().Assoc)
	}
}

func TestLookupMissFillHit(t *testing.T) {
	tl := MustNew(cfg4K(16, 4))
	va := addr.VAddr(0x12345000)
	if _, ok := tl.Lookup(va, 1); ok {
		t.Fatal("hit on empty TLB")
	}
	tl.Fill(Entry{VPN: va.VPN(addr.Page4K), PPN: 77, Size: addr.Page4K, ASID: 1})
	e, ok := tl.Lookup(va+0xfff, 1)
	if !ok || e.PPN != 77 {
		t.Fatalf("lookup after fill: ok=%v e=%+v", ok, e)
	}
	// Different ASID must miss.
	if _, ok := tl.Lookup(va, 2); ok {
		t.Error("cross-ASID hit")
	}
	if tl.Stats.Lookups != 3 || tl.Stats.Hits != 1 || tl.Stats.Misses != 2 {
		t.Errorf("stats = %+v", tl.Stats)
	}
}

func TestFillUnsupportedSize(t *testing.T) {
	tl := MustNew(cfg4K(16, 4))
	if err := tl.Fill(Entry{VPN: 1, Size: addr.Page2M}); err == nil {
		t.Error("fill of unsupported size must error")
	}
}

func TestLRUWithinSet(t *testing.T) {
	// Fully associative with 2 entries: classic LRU check.
	tl := MustNew(cfg4K(2, 0))
	fill := func(vpn uint64) { tl.Fill(Entry{VPN: vpn, PPN: vpn, Size: addr.Page4K}) }
	look := func(vpn uint64) bool {
		_, ok := tl.Lookup(addr.VAddr(vpn<<12), 0)
		return ok
	}
	fill(1)
	fill(2)
	look(1) // 1 becomes MRU
	fill(3) // evicts 2
	if !look(1) || !look(3) {
		t.Error("expected 1 and 3 resident")
	}
	if look(2) {
		t.Error("2 should have been evicted (LRU)")
	}
	if tl.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", tl.Stats.Evictions)
	}
}

func TestFillReplacesDuplicate(t *testing.T) {
	tl := MustNew(cfg4K(4, 0))
	tl.Fill(Entry{VPN: 9, PPN: 1, Size: addr.Page4K})
	tl.Fill(Entry{VPN: 9, PPN: 2, Size: addr.Page4K})
	if tl.ValidCount() != 1 {
		t.Fatalf("duplicate fill created %d entries", tl.ValidCount())
	}
	e, _ := tl.Lookup(addr.VAddr(9<<12), 0)
	if e.PPN != 2 {
		t.Errorf("PPN = %d, want refreshed 2", e.PPN)
	}
}

func TestInvalidate(t *testing.T) {
	tl := MustNew(Config{Name: "multi", Entries: 8, Sizes: []addr.PageSize{addr.Page4K, addr.Page2M}})
	va := addr.VAddr(0x40000000)
	tl.Fill(Entry{VPN: va.VPN(addr.Page2M), PPN: 3, Size: addr.Page2M, ASID: 5})
	if n := tl.Invalidate(va+4096, 5); n != 1 {
		t.Errorf("Invalidate dropped %d, want 1", n)
	}
	if _, ok := tl.Lookup(va, 5); ok {
		t.Error("hit after invalidate")
	}
	if n := tl.Invalidate(va, 5); n != 0 {
		t.Errorf("second invalidate dropped %d", n)
	}
}

func TestFlushASID(t *testing.T) {
	tl := MustNew(cfg4K(8, 0))
	tl.Fill(Entry{VPN: 1, Size: addr.Page4K, ASID: 1})
	tl.Fill(Entry{VPN: 2, Size: addr.Page4K, ASID: 1})
	tl.Fill(Entry{VPN: 3, Size: addr.Page4K, ASID: 2})
	if n := tl.FlushASID(1); n != 2 {
		t.Errorf("FlushASID dropped %d, want 2", n)
	}
	if tl.ValidCount() != 1 {
		t.Errorf("remaining = %d, want 1", tl.ValidCount())
	}
}

func TestValidCountAndHitRate(t *testing.T) {
	tl := MustNew(cfg4K(8, 0))
	if tl.HitRate() != 0 {
		t.Error("empty hit rate must be 0")
	}
	tl.Fill(Entry{VPN: 1, Size: addr.Page4K})
	tl.Lookup(addr.VAddr(1<<12), 0)
	tl.Lookup(addr.VAddr(2<<12), 0)
	if tl.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", tl.HitRate())
	}
	if tl.ValidCount() != 1 {
		t.Errorf("valid = %d", tl.ValidCount())
	}
}

func TestSetIndexingDistributes(t *testing.T) {
	tl := MustNew(cfg4K(64, 4)) // 16 sets
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		tl.Fill(Entry{VPN: rng.Uint64() & 0xfffff, Size: addr.Page4K})
	}
	if tl.ValidCount() < 32 {
		t.Errorf("only %d entries resident after 64 spread fills", tl.ValidCount())
	}
}
