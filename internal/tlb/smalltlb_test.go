package tlb

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

func TestSmallTLBsBuildAndShrink(t *testing.T) {
	pt := pagetable.New()
	w := pagetable.NewWalker(pt, 20)
	small := MustNewHierarchy(SmallTLBs(), w)
	big := MustNewHierarchy(SandybridgeTLBs(), w)
	if small.L1For(addr.Page4K).Config().Entries >= big.L1For(addr.Page4K).Config().Entries {
		t.Error("small hierarchy's 4KB TLB is not smaller")
	}
	if small.L2TLB().Config().Entries >= big.L2TLB().Config().Entries {
		t.Error("small hierarchy's L2 TLB is not smaller")
	}
}

// TestSmallTLBThrashesSooner: with a working set beyond its reach, the
// small hierarchy must miss to the L2 far more often — the effect that
// penalizes the Fig 14 PIPT designs.
func TestSmallTLBThrashesSooner(t *testing.T) {
	pt := pagetable.New()
	for i := uint64(0); i < 64; i++ {
		if err := pt.Map(addr.VAddr(i<<12), 100+i, addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	miss := func(cfg HierarchyConfig) uint64 {
		h := MustNewHierarchy(cfg, pagetable.NewWalker(pt, 20))
		var l2 uint64
		for round := 0; round < 20; round++ {
			for i := uint64(0); i < 64; i++ {
				r := h.Translate(addr.VAddr(i<<12), 1)
				if r.Source != SourceL1 {
					l2++
				}
			}
		}
		return l2
	}
	small, big := miss(SmallTLBs()), miss(SandybridgeTLBs())
	if small <= big {
		t.Errorf("small TLB missed %d times, big %d — expected far more", small, big)
	}
	if big > 64 { // 64 compulsory fills only
		t.Errorf("big TLB missed %d times on a 64-page set it should hold", big)
	}
}
