package tlb

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/pagetable"
)

func newTestHierarchy(t *testing.T) (*Hierarchy, *pagetable.Table) {
	t.Helper()
	pt := pagetable.New()
	w := pagetable.NewWalker(pt, 20)
	h := MustNewHierarchy(SandybridgeTLBs(), w)
	return h, pt
}

func TestHierarchyWalkThenL1Hit(t *testing.T) {
	h, pt := newTestHierarchy(t)
	va := addr.VAddr(0x7f00_0000_3000)
	if err := pt.Map(va, 0x123, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	r := h.Translate(va+5, 1)
	if r.Source != SourceWalk || r.Size != addr.Page4K {
		t.Fatalf("first access: %+v", r)
	}
	if r.PA != addr.PAddr(0x123<<12|5) {
		t.Errorf("PA = %#x", uint64(r.PA))
	}
	if r.ExtraCycles <= 0 {
		t.Error("walk must cost extra cycles")
	}
	r = h.Translate(va+6, 1)
	if r.Source != SourceL1 || r.ExtraCycles != 0 {
		t.Errorf("second access: %+v, want L1 hit with 0 extra cycles", r)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h, pt := newTestHierarchy(t)
	va := addr.VAddr(0x1000)
	pt.Map(va, 1, addr.Page4K)
	h.Translate(va, 1) // walk + fill L1 & L2
	// Force the 4KB L1 to evict va by filling it past capacity with
	// conflicting entries.
	l1 := h.L1For(addr.Page4K)
	sets := l1.Config().Entries / l1.Config().Assoc
	for i := 1; i <= l1.Config().Assoc; i++ {
		vpn := va.VPN(addr.Page4K) + uint64(i*sets)
		l1.Fill(Entry{VPN: vpn, PPN: vpn, Size: addr.Page4K, ASID: 1})
	}
	r := h.Translate(va, 1)
	if r.Source != SourceL2 {
		t.Fatalf("expected L2 hit, got %v", r.Source)
	}
	if r.ExtraCycles != 7 {
		t.Errorf("L2 hit extra cycles = %d, want 7", r.ExtraCycles)
	}
}

func TestHierarchySuperpageFillCallback(t *testing.T) {
	h, pt := newTestHierarchy(t)
	va := addr.VAddr(0x4000_0000)
	pt.Map(va.PageBase(addr.Page2M), 9, addr.Page2M)
	var fills []addr.VAddr
	h.OnL1SuperFill = func(v addr.VAddr, asid uint16) { fills = append(fills, v) }
	r := h.Translate(va+77, 3)
	if r.Source != SourceWalk || r.Size != addr.Page2M || !r.FilledL1Super {
		t.Fatalf("result = %+v", r)
	}
	if len(fills) != 1 || fills[0] != va.PageBase(addr.Page2M) {
		t.Errorf("TFT fill callback got %v", fills)
	}
	// Second access: L1 hit, no new fill.
	h.Translate(va+100, 3)
	if len(fills) != 1 {
		t.Errorf("L1 hit should not refill, fills = %d", len(fills))
	}
}

func TestHierarchyFault(t *testing.T) {
	h, _ := newTestHierarchy(t)
	r := h.Translate(0xdead000, 1)
	if r.Source != SourceFault {
		t.Fatalf("expected fault, got %v", r.Source)
	}
	if r.ExtraCycles <= 0 {
		t.Error("fault still costs L2 + partial walk cycles")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h, pt := newTestHierarchy(t)
	va := addr.VAddr(0x4000_0000)
	pt.Map(va, 9, addr.Page2M)
	h.Translate(va, 1)
	if n := h.Invalidate(va+123, 1); n < 2 { // L1-2M + L2
		t.Errorf("invalidate dropped %d entries, want >= 2 (L1 and L2)", n)
	}
	r := h.Translate(va, 1)
	if r.Source != SourceWalk {
		t.Errorf("post-invlpg translate source = %v, want walk", r.Source)
	}
}

func TestHierarchyFlushASID(t *testing.T) {
	h, pt := newTestHierarchy(t)
	pt.Map(0x1000, 1, addr.Page4K)
	pt.Map(0x200000, 2, addr.Page2M)
	h.Translate(0x1000, 1)
	h.Translate(0x200000, 1)
	h.Translate(0x1000, 2) // same pages, other ASID
	if n := h.FlushASID(1); n < 3 {
		t.Errorf("flush dropped %d, want >= 3", n)
	}
	// ASID 2's entry must survive.
	if r := h.Translate(0x1000, 2); r.Source != SourceL1 {
		t.Errorf("ASID 2 entry lost: source = %v", r.Source)
	}
}

func TestAtomConfigBuilds(t *testing.T) {
	pt := pagetable.New()
	w := pagetable.NewWalker(pt, 20)
	h := MustNewHierarchy(AtomTLBs(), w)
	if h.L1Super() == nil {
		t.Fatal("Atom hierarchy missing 2MB L1 TLB")
	}
	if h.L1Super().Config().Entries != 32 {
		t.Errorf("Atom 2MB TLB entries = %d, want 32", h.L1Super().Config().Entries)
	}
	if h.L2TLB() == nil || h.L2TLB().Config().Entries != 512 {
		t.Error("Atom L2 TLB must have 512 entries")
	}
}

func TestSuperTLBValidCountForScheduler(t *testing.T) {
	h, pt := newTestHierarchy(t)
	if h.L1Super().ValidCount() != 0 {
		t.Fatal("fresh 2MB TLB not empty")
	}
	for i := 0; i < 6; i++ {
		va := addr.VAddr(uint64(i) << 21)
		pt.Map(va, uint64(100+i), addr.Page2M)
		h.Translate(va, 1)
	}
	if got := h.L1Super().ValidCount(); got != 6 {
		t.Errorf("2MB TLB valid count = %d, want 6", got)
	}
}
