package physmem

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
)

func TestAllocFrameAtSplitsCoveringBlock(t *testing.T) {
	b := MustNew(8 << 20) // seeded as order-9+ blocks
	// Claim one specific 4KB frame in the middle of a 2MB block.
	if err := b.AllocFrameAt(300, Order4K); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != 8<<20-4096 {
		t.Errorf("free = %d", b.FreeBytes())
	}
	// Claiming it again must fail; a neighbor must succeed.
	if err := b.AllocFrameAt(300, Order4K); err == nil {
		t.Error("double targeted alloc succeeded")
	}
	if err := b.AllocFrameAt(301, Order4K); err != nil {
		t.Errorf("neighbor frame: %v", err)
	}
	// Free both; the 2MB block must fully coalesce again.
	b.FreeOrder(300, Order4K)
	b.FreeOrder(301, Order4K)
	if got := b.FreeBytesAtLeast(Order2M); got != 8<<20 {
		t.Errorf("coalesced = %d, want all", got)
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFrameAtValidation(t *testing.T) {
	b := MustNew(4 << 20)
	if err := b.AllocFrameAt(1, Order2M); err == nil {
		t.Error("misaligned targeted alloc must fail")
	}
	if err := b.AllocFrameAt(1<<30, Order4K); err == nil {
		t.Error("out-of-range targeted alloc must fail")
	}
}

func TestForEachFreeBlockAccountsAllFreeMemory(t *testing.T) {
	b := MustNew(16 << 20)
	b.AllocOrder(Order4K)
	b.AllocOrder(Order2M)
	var frames uint64
	b.ForEachFreeBlock(func(frame uint64, order int) { frames += 1 << order })
	if frames*4096 != b.FreeBytes() {
		t.Errorf("iterated %d bytes, free %d", frames*4096, b.FreeBytes())
	}
}

// TestCompactVacatesRegion is the defragmentation end-to-end check: after
// memhog shreds every 2MB block, a compaction must migrate pinned pages
// and make a 2MB allocation succeed again.
func TestCompactVacatesRegion(t *testing.T) {
	b := MustNew(32 << 20)
	rng := rand.New(rand.NewSource(21))
	h, err := Run(b, rng, 0.55, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Consume any surviving whole 2MB blocks so only compaction can help.
	for {
		if _, ok := b.Alloc(addr.Page2M); !ok {
			break
		}
	}
	if _, ok := b.Alloc(addr.Page2M); ok {
		t.Fatal("setup failed: 2MB still allocatable")
	}
	pinnedBefore := h.PinnedBytes()
	if !h.Compact(Order2M) {
		t.Fatal("compaction found no vacatable region despite movable pages")
	}
	if h.Migrations == 0 {
		t.Error("compaction reported success without migrating anything")
	}
	if h.PinnedBytes() != pinnedBefore {
		t.Errorf("compaction changed pinned memory: %d -> %d", pinnedBefore, h.PinnedBytes())
	}
	if _, ok := b.Alloc(addr.Page2M); !ok {
		t.Error("2MB allocation still fails after successful compaction")
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactFailsWhenMemoryTrulyFull(t *testing.T) {
	b := MustNew(8 << 20)
	rng := rand.New(rand.NewSource(3))
	h, err := Run(b, rng, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust all remaining memory with unmovable allocations.
	for {
		if _, ok := b.AllocOrder(Order4K); !ok {
			break
		}
	}
	if h.Compact(Order2M) {
		t.Error("compaction succeeded with zero free frames")
	}
}

func TestCompactRepeatedlyUntilExhausted(t *testing.T) {
	b := MustNew(32 << 20)
	rng := rand.New(rand.NewSource(5))
	h, err := Run(b, rng, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	allocated := 0
	for {
		if _, ok := b.Alloc(addr.Page2M); ok {
			allocated++
			continue
		}
		if !h.Compact(Order2M) {
			break
		}
	}
	// 50% pinned of 32MB leaves ~16MB allocatable as superpages with
	// perfect compaction; require we got most of it.
	if allocated < 6 {
		t.Errorf("compaction-assisted superpage allocations = %d, want >= 6", allocated)
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
