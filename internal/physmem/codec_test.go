package physmem

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
)

// fragmented builds a buddy with non-trivial free-list structure: a mix
// of allocations and frees that forces splits and leaves holes.
func fragmented(t *testing.T) *Buddy {
	t.Helper()
	b, err := New(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var frames []addr.PAddr
	for i := 0; i < 40; i++ {
		pa, ok := b.Alloc(addr.Page4K)
		if !ok {
			t.Fatal("allocation failed")
		}
		frames = append(frames, pa)
	}
	if _, ok := b.Alloc(addr.Page2M); !ok {
		t.Fatal("2MB allocation failed")
	}
	for i := 0; i < len(frames); i += 3 {
		b.Free(frames[i], addr.Page4K)
	}
	return b
}

// TestBuddyStateRoundTrip: an allocator restored from a captured state
// has the same free memory and pops the same frames in the same order —
// the heap invariant survives the flattened free lists.
func TestBuddyStateRoundTrip(t *testing.T) {
	b := fragmented(t)
	fresh := MustNew(64 << 20)
	if err := fresh.SetState(b.State()); err != nil {
		t.Fatal(err)
	}
	if fresh.FreeBytes() != b.FreeBytes() {
		t.Fatalf("restored FreeBytes %d, want %d", fresh.FreeBytes(), b.FreeBytes())
	}
	for i := 0; i < 30; i++ {
		size := addr.Page4K
		if i%10 == 9 {
			size = addr.Page2M
		}
		pa0, ok0 := b.Alloc(size)
		pa1, ok1 := fresh.Alloc(size)
		if pa0 != pa1 || ok0 != ok1 {
			t.Fatalf("alloc %d diverged: original %#x/%v, restored %#x/%v",
				i, uint64(pa0), ok0, uint64(pa1), ok1)
		}
	}
}

// TestBuddyStateRejections: states from a different geometry or with
// inconsistent free-order arrays are rejected.
func TestBuddyStateRejections(t *testing.T) {
	b := fragmented(t)

	if err := MustNew(32 << 20).SetState(b.State()); err == nil {
		t.Error("accepted a state from a larger memory")
	}

	frames := b.State()
	frames.FreeFrames = frames.FreeFrames[:len(frames.FreeFrames)-1]
	if err := MustNew(64 << 20).SetState(frames); err == nil {
		t.Error("accepted mismatched free-order arrays")
	}

	beyond := b.State()
	beyond.FreeFrames = append([]uint64(nil), beyond.FreeFrames...)
	beyond.FreeFrames[0] = beyond.TotalFrames
	if err := MustNew(64 << 20).SetState(beyond); err == nil {
		t.Error("accepted a free frame beyond the memory")
	}

	order := b.State()
	order.FreeOrders = append([]int(nil), order.FreeOrders...)
	order.FreeOrders[0] = Order1G + 1
	if err := MustNew(64 << 20).SetState(order); err == nil {
		t.Error("accepted a free order past the allocator's maximum")
	}

	lists := b.State()
	lists.FreeLists = lists.FreeLists[:len(lists.FreeLists)-1]
	if err := MustNew(64 << 20).SetState(lists); err == nil {
		t.Error("accepted a state with the wrong order-list count")
	}
}

// TestMemhogStateRoundTrip: a hog restored from a captured state holds
// the same pinned set and compacts identically.
func TestMemhogStateRoundTrip(t *testing.T) {
	b := MustNew(64 << 20)
	h, err := Run(b, rand.New(rand.NewSource(7)), 0.3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	h.Compact(Order2M)

	b2 := MustNew(64 << 20)
	if err := b2.SetState(b.State()); err != nil {
		t.Fatal(err)
	}
	h2, err := Run(b2, rand.New(rand.NewSource(99)), 0, 0) // empty hog over matching memory
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.SetState(h.State()); err != nil {
		t.Fatal(err)
	}
	if h2.Migrations != h.Migrations || h2.Compactions != h.Compactions {
		t.Errorf("restored counters %d/%d, want %d/%d",
			h2.Migrations, h2.Compactions, h.Migrations, h.Compactions)
	}
	// Note: b2's state was captured before h2's restore, so both buddies
	// and both hogs now agree; compaction must behave the same way.
	if got, want := h2.Compact(Order2M), h.Compact(Order2M); got != want {
		t.Errorf("restored hog compaction = %v, original = %v", got, want)
	}
}

// TestMemhogStateRejections: inconsistent pinned arrays and a negative
// cursor are corrupt states.
func TestMemhogStateRejections(t *testing.T) {
	b := MustNew(64 << 20)
	h, err := Run(b, rand.New(rand.NewSource(7)), 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	arrays := h.State()
	arrays.PinnedIdx = arrays.PinnedIdx[:len(arrays.PinnedIdx)-1]
	if err := h.SetState(arrays); err == nil {
		t.Error("accepted mismatched pinned arrays")
	}

	idx := h.State()
	idx.PinnedIdx = append([]int(nil), idx.PinnedIdx...)
	idx.PinnedIdx[0] = len(idx.Frames)
	if err := h.SetState(idx); err == nil {
		t.Error("accepted a pinned index past the frame list")
	}

	cursor := h.State()
	cursor.Cursor = -1
	if err := h.SetState(cursor); err == nil {
		t.Error("accepted a negative cursor")
	}
}
