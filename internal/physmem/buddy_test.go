package physmem

import (
	"math/rand"
	"testing"

	"seesaw/internal/addr"
)

func TestNewSeedsAllMemoryFree(t *testing.T) {
	b := MustNew(64 << 20) // 64MB
	if b.FreeBytes() != 64<<20 {
		t.Fatalf("free = %d, want all", b.FreeBytes())
	}
	if b.Fragmentation() != 0 {
		t.Fatalf("fresh memory fragmentation = %v, want 0", b.Fragmentation())
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, sz := range []uint64{0, 4096, 3 << 20, 2<<20 + 4096} {
		if _, err := New(sz); err == nil {
			t.Errorf("New(%d): expected error", sz)
		}
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	b := MustNew(16 << 20)
	p, ok := b.Alloc(addr.Page2M)
	if !ok {
		t.Fatal("2MB alloc failed on empty memory")
	}
	if uint64(p)%(2<<20) != 0 {
		t.Errorf("2MB page at %#x not 2MB-aligned", uint64(p))
	}
	if b.FreeBytes() != 14<<20 {
		t.Errorf("free = %d", b.FreeBytes())
	}
	if err := b.Free(p, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != 16<<20 {
		t.Errorf("free after free = %d", b.FreeBytes())
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocLowestFirst(t *testing.T) {
	b := MustNew(16 << 20)
	f0, _ := b.AllocOrder(Order4K)
	f1, _ := b.AllocOrder(Order4K)
	if f0 != 0 || f1 != 1 {
		t.Errorf("first allocations at frames %d,%d, want 0,1", f0, f1)
	}
}

func TestCoalescing(t *testing.T) {
	b := MustNew(4 << 20) // exactly 2 order-9 blocks
	var frames []uint64
	for {
		f, ok := b.AllocOrder(Order4K)
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) != 1024 {
		t.Fatalf("allocated %d 4KB pages, want 1024", len(frames))
	}
	if _, ok := b.AllocOrder(Order2M); ok {
		t.Fatal("2MB alloc succeeded with no free memory")
	}
	for _, f := range frames {
		if err := b.FreeOrder(f, Order4K); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, both 2MB blocks must have coalesced.
	if got := b.FreeBytesAtLeast(Order2M); got != 4<<20 {
		t.Errorf("coalesced superpage-usable bytes = %d, want all", got)
	}
	if _, ok := b.AllocOrder(Order2M); !ok {
		t.Error("2MB alloc failed after coalescing")
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndAlignment(t *testing.T) {
	b := MustNew(8 << 20)
	// Take one 4KB page: this splits an order-9 (or larger) block; a
	// following 2MB alloc must still succeed and be aligned.
	if _, ok := b.AllocOrder(Order4K); !ok {
		t.Fatal("4KB alloc failed")
	}
	f, ok := b.AllocOrder(Order2M)
	if !ok {
		t.Fatal("2MB alloc failed")
	}
	if f%(1<<Order2M) != 0 {
		t.Errorf("2MB block frame %d misaligned", f)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	b := MustNew(4 << 20)
	f, _ := b.AllocOrder(Order4K)
	if err := b.FreeOrder(f, Order4K); err != nil {
		t.Fatal(err)
	}
	if err := b.FreeOrder(f, Order4K); err == nil {
		t.Error("double free not detected")
	}
}

func TestBadFreeArguments(t *testing.T) {
	b := MustNew(4 << 20)
	if err := b.FreeOrder(1, Order2M); err == nil {
		t.Error("misaligned free not detected")
	}
	if err := b.FreeOrder(1<<30, Order4K); err == nil {
		t.Error("out-of-range free not detected")
	}
	if err := b.FreeOrder(0, -1); err == nil {
		t.Error("negative order not detected")
	}
}

func TestRandomAllocFreeInvariants(t *testing.T) {
	b := MustNew(32 << 20)
	rng := rand.New(rand.NewSource(42))
	type block struct {
		frame uint64
		order int
	}
	var live []block
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			order := []int{0, 0, 0, 1, 3, 9}[rng.Intn(6)]
			if f, ok := b.AllocOrder(order); ok {
				live = append(live, block{f, order})
			}
		} else {
			i := rng.Intn(len(live))
			bl := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := b.FreeOrder(bl.frame, bl.order); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// No two live blocks may overlap.
	seen := map[uint64]bool{}
	for _, bl := range live {
		for f := bl.frame; f < bl.frame+(1<<bl.order); f++ {
			if seen[f] {
				t.Fatalf("frame %d allocated twice", f)
			}
			seen[f] = true
		}
	}
	// Free everything: memory must return to fully coalesced.
	for _, bl := range live {
		if err := b.FreeOrder(bl.frame, bl.order); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreeBytes() != 32<<20 {
		t.Errorf("free = %d after releasing all", b.FreeBytes())
	}
	if b.Fragmentation() != 0 {
		t.Errorf("fragmentation = %v after releasing all", b.Fragmentation())
	}
}

func TestMemhogFragmentationGrowsWithFraction(t *testing.T) {
	prevFail := -1.0
	for _, frac := range []float64{0.0, 0.4, 0.8} {
		b := MustNew(256 << 20)
		rng := rand.New(rand.NewSource(7))
		h, err := Run(b, rng, frac, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		// Try to allocate 2MB pages; count the success rate.
		want := 40
		got := 0
		for i := 0; i < want; i++ {
			if _, ok := b.AllocOrder(Order2M); ok {
				got++
			}
		}
		fail := 1 - float64(got)/float64(want)
		if fail < prevFail {
			t.Errorf("memhog(%.0f%%): 2MB failure rate %.2f decreased vs lighter fragmentation %.2f",
				frac*100, fail, prevFail)
		}
		prevFail = fail
		if frac == 0 && fail != 0 {
			t.Errorf("memhog(0%%): 2MB allocations failed (rate %.2f)", fail)
		}
		_ = h.PinnedBytes()
	}
}

func TestMemhogReleaseRestoresMemory(t *testing.T) {
	b := MustNew(64 << 20)
	rng := rand.New(rand.NewSource(1))
	h, err := Run(b, rng, 0.6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.PinnedBytes() == 0 {
		t.Fatal("memhog pinned nothing")
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != 64<<20 {
		t.Errorf("free = %d after release", b.FreeBytes())
	}
	if b.Fragmentation() != 0 {
		t.Errorf("fragmentation = %v after release", b.Fragmentation())
	}
}

func TestMemhogArgValidation(t *testing.T) {
	b := MustNew(4 << 20)
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(b, rng, 1.5, 0.5); err == nil {
		t.Error("fraction > 0.95 must error")
	}
	if _, err := Run(b, rng, 0.5, -0.1); err == nil {
		t.Error("bad release ratio must error")
	}
}

func TestMemhogTouch(t *testing.T) {
	b := MustNew(16 << 20)
	rng := rand.New(rand.NewSource(3))
	h, err := Run(b, rng, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	pages := h.Touch(10)
	if len(pages) != 10 {
		t.Fatalf("Touch(10) returned %d pages", len(pages))
	}
	huge := h.Touch(1 << 30)
	if uint64(len(huge))*4096 != h.PinnedBytes() {
		t.Errorf("Touch(all) = %d pages, want %d", len(huge), h.PinnedBytes()/4096)
	}
}
