package physmem

import (
	"fmt"
	"sort"
)

// BuddyState is the serializable mutable state of a Buddy allocator.
// Geometry (total frames, max order) is config-derived and re-created by
// physmem.New; only the free-block structure travels. FreeLists carries
// each order's heap backing slice verbatim — copying a heap's backing
// slice preserves the heap invariant, so the restored allocator pops the
// same frames in the same order. FreeOrder is flattened as sorted
// (frame, order) pairs for deterministic encoding.
type BuddyState struct {
	FreeLists   [][]uint64
	FreeFrames  []uint64 // frame keys of freeOrder, sorted
	FreeOrders  []int    // order values, parallel to FreeFrames
	FreeCount   uint64   // buddy.freeFrames
	TotalFrames uint64   // for cross-checking against the rebuilt allocator
}

// State captures the allocator's free-block structure.
func (b *Buddy) State() BuddyState {
	s := BuddyState{
		FreeLists:   make([][]uint64, len(b.freeLists)),
		FreeCount:   b.freeFrames,
		TotalFrames: b.totalFrames,
	}
	for k, h := range b.freeLists {
		s.FreeLists[k] = append([]uint64(nil), h.frames...)
	}
	s.FreeFrames = make([]uint64, 0, len(b.freeOrder))
	for f := range b.freeOrder {
		s.FreeFrames = append(s.FreeFrames, f)
	}
	sort.Slice(s.FreeFrames, func(i, j int) bool { return s.FreeFrames[i] < s.FreeFrames[j] })
	s.FreeOrders = make([]int, len(s.FreeFrames))
	for i, f := range s.FreeFrames {
		s.FreeOrders[i] = b.freeOrder[f]
	}
	return s
}

// SetState restores the free-block structure in place, so every holder
// of this *Buddy (the OS manager, the memhog) observes the restored
// state without rewiring. The receiver must have the same geometry the
// state was captured from.
func (b *Buddy) SetState(s BuddyState) error {
	if len(s.FreeLists) != len(b.freeLists) {
		return fmt.Errorf("physmem: state has %d order lists, allocator has %d", len(s.FreeLists), len(b.freeLists))
	}
	if s.TotalFrames != b.totalFrames {
		return fmt.Errorf("physmem: state covers %d frames, allocator has %d", s.TotalFrames, b.totalFrames)
	}
	if len(s.FreeFrames) != len(s.FreeOrders) {
		return fmt.Errorf("physmem: free-order arrays disagree (%d frames, %d orders)", len(s.FreeFrames), len(s.FreeOrders))
	}
	for k := range b.freeLists {
		b.freeLists[k].frames = append(b.freeLists[k].frames[:0], s.FreeLists[k]...)
	}
	b.freeOrder = make(map[uint64]int, len(s.FreeFrames))
	for i, f := range s.FreeFrames {
		if f >= b.totalFrames {
			return fmt.Errorf("physmem: free frame %d beyond %d total frames", f, b.totalFrames)
		}
		if s.FreeOrders[i] < 0 || s.FreeOrders[i] > b.maxOrder {
			return fmt.Errorf("physmem: free order %d outside [0,%d]", s.FreeOrders[i], b.maxOrder)
		}
		b.freeOrder[f] = s.FreeOrders[i]
	}
	b.freeFrames = s.FreeCount
	return nil
}

// MemhogState is the serializable mutable state of a Memhog: which
// frames it pins (flattened deterministically), its compaction cursor,
// and its counters. The buddy and RNG it draws from are restored
// separately and stay wired.
type MemhogState struct {
	PinnedFrames []uint64 // pinned keys, sorted
	PinnedIdx    []int    // pinned values, parallel to PinnedFrames
	Frames       []uint64
	Cursor       int
	Migrations   uint64
	Compactions  uint64
}

// State captures the hog's pinned-frame set and counters.
func (h *Memhog) State() MemhogState {
	s := MemhogState{
		Frames:      append([]uint64(nil), h.frames...),
		Cursor:      h.cursor,
		Migrations:  h.Migrations,
		Compactions: h.Compactions,
	}
	s.PinnedFrames = make([]uint64, 0, len(h.pinned))
	for f := range h.pinned {
		s.PinnedFrames = append(s.PinnedFrames, f)
	}
	sort.Slice(s.PinnedFrames, func(i, j int) bool { return s.PinnedFrames[i] < s.PinnedFrames[j] })
	s.PinnedIdx = make([]int, len(s.PinnedFrames))
	for i, f := range s.PinnedFrames {
		s.PinnedIdx[i] = h.pinned[f]
	}
	return s
}

// SetState restores the hog in place; its buddy and rng pointers are
// untouched (the caller restores those separately).
func (h *Memhog) SetState(s MemhogState) error {
	if len(s.PinnedFrames) != len(s.PinnedIdx) {
		return fmt.Errorf("physmem: pinned arrays disagree (%d frames, %d indices)", len(s.PinnedFrames), len(s.PinnedIdx))
	}
	h.frames = append(h.frames[:0], s.Frames...)
	h.pinned = make(map[uint64]int, len(s.PinnedFrames))
	for i, f := range s.PinnedFrames {
		if s.PinnedIdx[i] < 0 || s.PinnedIdx[i] >= len(h.frames) {
			return fmt.Errorf("physmem: pinned index %d outside the hog's %d frames", s.PinnedIdx[i], len(h.frames))
		}
		h.pinned[f] = s.PinnedIdx[i]
	}
	if s.Cursor < 0 {
		return fmt.Errorf("physmem: negative hog cursor %d", s.Cursor)
	}
	h.cursor = s.Cursor
	h.Migrations = s.Migrations
	h.Compactions = s.Compactions
	return nil
}
