package physmem

import (
	"fmt"
	"math/rand"

	"seesaw/internal/addr"
)

// Memhog reproduces the paper's memory-fragmentation microbenchmark. It
// pins `fraction` of physical memory in scattered 4KB pages: memhog(40%)
// corresponds to the paper's scenario where memhog holds 40% of system
// memory. To scatter its pages it over-allocates by a churn factor and
// frees the excess at random positions, poking 4KB holes through the
// buddy allocator's large blocks.
//
// Memhog's pages are *movable* anonymous memory, exactly like the real
// microbenchmark's — so it also plays the role Linux's movable pages play
// during memory compaction: Compact vacates a 2MB region by migrating the
// hog's pages elsewhere, which is how OSes keep allocating superpages at
// non-trivial fragmentation (paper Section III-C).
type Memhog struct {
	buddy *Buddy
	rng   *rand.Rand
	// The pinned frames form an indexed set: pinned maps a frame to its
	// position in frames. Iterating frames (instead of the map) keeps
	// Touch and Release deterministic — Go's map iteration order is
	// random, and leaking it into the simulation makes runs with
	// fragmentation irreproducible.
	pinned map[uint64]int
	frames []uint64
	cursor int // next Touch position in frames

	// Migrations counts pages moved by compaction.
	Migrations uint64
	// Compactions counts successful region vacations.
	Compactions uint64
}

func (h *Memhog) pin(f uint64) {
	h.pinned[f] = len(h.frames)
	h.frames = append(h.frames, f)
}

func (h *Memhog) unpin(f uint64) {
	i := h.pinned[f]
	last := len(h.frames) - 1
	h.frames[i] = h.frames[last]
	h.pinned[h.frames[i]] = i
	h.frames = h.frames[:last]
	delete(h.pinned, f)
}

// Run fragments memory, pinning `fraction` of it. touch is the total
// fraction of memory transiently allocated (>= fraction; capped at 0.97);
// the excess is freed at scattered positions. On a long-uptime loaded
// system essentially all memory has been touched, so callers typically
// pass touch close to 1. The rng makes runs deterministic.
func Run(b *Buddy, rng *rand.Rand, fraction, touch float64) (*Memhog, error) {
	if fraction < 0 || fraction > 0.95 {
		return nil, fmt.Errorf("physmem: memhog fraction %.2f outside [0,0.95]", fraction)
	}
	if touch < 0 || touch > 1 {
		return nil, fmt.Errorf("physmem: memhog touch %.2f outside [0,1]", touch)
	}
	if touch < fraction {
		touch = fraction
	}
	if touch > 0.97 {
		touch = 0.97
	}
	h := &Memhog{buddy: b, rng: rng, pinned: make(map[uint64]int)}
	totalFrames := b.TotalBytes() / 4096
	pinTarget := uint64(float64(totalFrames) * fraction)
	allocTarget := uint64(float64(totalFrames) * touch)
	frames := make([]uint64, 0, allocTarget)
	for uint64(len(frames)) < allocTarget {
		f, ok := b.AllocOrder(Order4K)
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	// Free the excess at scattered positions; keep pinTarget pinned.
	rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	keep := pinTarget
	if keep > uint64(len(frames)) {
		keep = uint64(len(frames))
	}
	for _, f := range frames[keep:] {
		if err := b.FreeOrder(f, Order4K); err != nil {
			return nil, err
		}
	}
	for _, f := range frames[:keep] {
		h.pin(f)
	}
	return h, nil
}

// PinnedBytes returns how much memory the hog still holds.
func (h *Memhog) PinnedBytes() uint64 { return uint64(len(h.frames)) * 4096 }

// Release frees every pinned page, undoing the fragmentation pressure
// (free blocks coalesce again).
func (h *Memhog) Release() error {
	for _, f := range h.frames {
		if err := h.buddy.FreeOrder(f, Order4K); err != nil {
			return err
		}
	}
	h.pinned = make(map[uint64]int)
	h.frames = nil
	h.cursor = 0
	return nil
}

// Touch returns the physical addresses of up to n pinned pages; the
// simulator uses them to generate memhog's background memory traffic. A
// cursor walks the pinned set so successive calls spread the traffic
// across the hog's footprint, deterministically.
func (h *Memhog) Touch(n int) []addr.PAddr {
	if n > len(h.frames) {
		n = len(h.frames)
	}
	out := make([]addr.PAddr, 0, n)
	for k := 0; k < n; k++ {
		if h.cursor >= len(h.frames) {
			h.cursor = 0
		}
		out = append(out, addr.PAddr(h.frames[h.cursor]*4096))
		h.cursor++
	}
	return out
}

// Compact implements osmm.Compactor: it vacates one naturally aligned
// block of 2^order frames whose frames are all either free or pinned by
// the hog (movable), migrating the hog's pages to free frames elsewhere.
// On success the block is left free and coalesced, ready for a superpage
// allocation. It picks the candidate region needing the fewest
// migrations.
func (h *Memhog) Compact(order int) bool {
	blockFrames := uint64(1) << order

	// Count free frames per candidate region.
	freePerRegion := make(map[uint64]uint64)
	h.buddy.ForEachFreeBlock(func(frame uint64, o int) {
		if o >= order {
			return // already a full free block; nothing to compact
		}
		freePerRegion[frame/blockFrames] += 1 << o
	})
	// Add the hog's movable frames.
	type cand struct{ free, movable uint64 }
	cands := make(map[uint64]*cand)
	for region, n := range freePerRegion {
		cands[region] = &cand{free: n}
	}
	for f := range h.pinned {
		region := f / blockFrames
		c, ok := cands[region]
		if !ok {
			c = &cand{}
			cands[region] = c
		}
		c.movable++
	}
	best := uint64(0)
	bestMovable := blockFrames + 1
	found := false
	for region, c := range cands {
		if c.free+c.movable != blockFrames {
			continue
		}
		// Fully ordered pick (fewest migrations, then lowest region) so
		// the map's random iteration order cannot leak into the result.
		if c.movable < bestMovable || (c.movable == bestMovable && region < best) {
			best, bestMovable, found = region, c.movable, true
		}
	}
	if !found {
		return false
	}
	// Migration targets must exist: bestMovable free frames *outside*
	// the region. Free frames inside it are being vacated, so the total
	// free count must be at least a whole block's worth.
	if h.buddy.FreeBytes()/4096 < blockFrames {
		return false
	}
	start := best * blockFrames
	// Step 1: claim every free frame inside the region so replacement
	// allocations cannot land there.
	var claimed []uint64
	for f := start; f < start+blockFrames; f++ {
		if _, mine := h.pinned[f]; mine {
			continue
		}
		if err := h.buddy.AllocFrameAt(f, Order4K); err != nil {
			// Raced with our own bookkeeping; undo and bail.
			for _, c := range claimed {
				h.buddy.FreeOrder(c, Order4K)
			}
			return false
		}
		claimed = append(claimed, f)
	}
	// Step 2: migrate the hog's pages out.
	var moved []uint64
	for f := start; f < start+blockFrames; f++ {
		if _, mine := h.pinned[f]; !mine {
			continue
		}
		nf, ok := h.buddy.AllocOrder(Order4K)
		if !ok {
			// Out of memory mid-migration: restore and fail.
			for _, m := range moved {
				h.buddy.FreeOrder(m, Order4K)
			}
			for _, c := range claimed {
				h.buddy.FreeOrder(c, Order4K)
			}
			return false
		}
		moved = append(moved, nf)
		h.unpin(f)
		h.pin(nf)
		h.Migrations++
	}
	// Step 3: release the whole region; the buddy coalesces it back into
	// one order-`order` block. Old pinned frames are freed here; claimed
	// frames too.
	for f := start; f < start+blockFrames; f++ {
		if err := h.buddy.FreeOrder(f, Order4K); err != nil {
			return false
		}
	}
	h.Compactions++
	return true
}
