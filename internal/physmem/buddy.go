// Package physmem simulates physical memory with a binary buddy allocator,
// the mechanism that determines whether the OS can find the contiguous,
// aligned 2MB blocks that transparent superpages need. Fragmentation of
// the buddy free lists — e.g. from the paper's memhog microbenchmark — is
// what makes superpage allocation fail, which is the effect Figures 3 and
// 12 of the paper measure.
//
// Frames are counted in 4KB units. Order k describes a block of 2^k
// contiguous, naturally aligned 4KB frames: order 0 is a base page, order
// 9 a 2MB superpage, order 18 a 1GB superpage.
package physmem

import (
	"container/heap"
	"fmt"

	"seesaw/internal/addr"
)

// Orders of interest.
const (
	Order4K = 0
	Order2M = 9
	Order1G = 18
)

// OrderFor returns the buddy order of a page size.
func OrderFor(s addr.PageSize) int {
	switch s {
	case addr.Page4K:
		return Order4K
	case addr.Page2M:
		return Order2M
	case addr.Page1G:
		return Order1G
	}
	panic(fmt.Sprintf("physmem: invalid page size %v", s))
}

// frameHeap is a min-heap of frame numbers giving the allocator
// deterministic lowest-address-first behaviour at O(log n). Entries may
// be stale (the block was removed by coalescing or targeted allocation);
// popFree validates each candidate against freeOrder before using it.
type frameHeap struct {
	frames []uint64
}

func (h *frameHeap) Len() int           { return len(h.frames) }
func (h *frameHeap) Less(i, j int) bool { return h.frames[i] < h.frames[j] }
func (h *frameHeap) Swap(i, j int)      { h.frames[i], h.frames[j] = h.frames[j], h.frames[i] }
func (h *frameHeap) Push(x any)         { h.frames = append(h.frames, x.(uint64)) }
func (h *frameHeap) Pop() any {
	old := h.frames
	n := len(old)
	x := old[n-1]
	h.frames = old[:n-1]
	return x
}

// Buddy is a binary buddy allocator over a simulated physical memory.
type Buddy struct {
	totalFrames uint64
	maxOrder    int

	// freeLists[k] holds the start frames of free order-k blocks.
	freeLists []*frameHeap
	// freeOrder maps a free block's start frame to its order, for O(1)
	// buddy-coalescing checks. A frame appears here iff it heads a free
	// block.
	freeOrder map[uint64]int

	freeFrames uint64
}

// New creates a buddy allocator managing totalBytes of physical memory.
// totalBytes must be a multiple of the largest block size implied by
// maxOrder blocks; memory is seeded as maximal free blocks.
func New(totalBytes uint64) (*Buddy, error) {
	if totalBytes == 0 || totalBytes%(4096<<Order2M) != 0 {
		return nil, fmt.Errorf("physmem: total %d bytes not a multiple of 2MB", totalBytes)
	}
	frames := totalBytes / 4096
	maxOrder := Order1G
	for (uint64(1) << maxOrder) > frames {
		maxOrder--
	}
	b := &Buddy{
		totalFrames: frames,
		maxOrder:    maxOrder,
		freeLists:   make([]*frameHeap, maxOrder+1),
		freeOrder:   make(map[uint64]int),
		freeFrames:  frames,
	}
	for k := range b.freeLists {
		b.freeLists[k] = &frameHeap{}
	}
	// Seed free memory greedily with the largest blocks that fit.
	frame := uint64(0)
	for frame < frames {
		k := maxOrder
		for (uint64(1)<<k) > frames-frame || frame%(1<<k) != 0 {
			k--
		}
		b.pushFree(frame, k)
		frame += 1 << k
	}
	return b, nil
}

// MustNew is New that panics on error.
func MustNew(totalBytes uint64) *Buddy {
	b, err := New(totalBytes)
	if err != nil {
		panic(err)
	}
	return b
}

func (b *Buddy) pushFree(frame uint64, order int) {
	heap.Push(b.freeLists[order], frame)
	b.freeOrder[frame] = order
}

// popFree removes and returns the lowest free block of exactly this order,
// or false if none exists. Heap entries invalidated by coalescing or
// targeted allocation are recognized (freeOrder no longer lists them at
// this order) and skipped.
func (b *Buddy) popFree(order int) (uint64, bool) {
	h := b.freeLists[order]
	for h.Len() > 0 {
		frame := heap.Pop(h).(uint64)
		if o, ok := b.freeOrder[frame]; !ok || o != order {
			continue // stale entry
		}
		delete(b.freeOrder, frame)
		return frame, true
	}
	return 0, false
}

// removeFree removes a specific free block (used when coalescing and by
// targeted allocation); its heap entry goes stale and is skipped later.
func (b *Buddy) removeFree(frame uint64, order int) {
	delete(b.freeOrder, frame)
}

// AllocOrder allocates a naturally aligned block of 2^order frames,
// splitting larger blocks as needed, lowest address first. It returns the
// start frame and whether the allocation succeeded.
func (b *Buddy) AllocOrder(order int) (uint64, bool) {
	if order < 0 || order > b.maxOrder {
		return 0, false
	}
	// Find the smallest order >= requested with a free block.
	k := order
	var frame uint64
	for {
		if k > b.maxOrder {
			return 0, false
		}
		if f, ok := b.popFree(k); ok {
			frame = f
			break
		}
		k++
	}
	// Split back down, returning the high halves to the free lists.
	for k > order {
		k--
		b.pushFree(frame+(1<<k), k)
	}
	b.freeFrames -= 1 << order
	return frame, true
}

// Alloc allocates a page of the given size, returning its base physical
// address.
func (b *Buddy) Alloc(s addr.PageSize) (addr.PAddr, bool) {
	frame, ok := b.AllocOrder(OrderFor(s))
	if !ok {
		return 0, false
	}
	return addr.PAddr(frame * 4096), true
}

// AllocFrameAt allocates the specific naturally aligned order-`order`
// block starting at frame, splitting any larger free block that covers
// it. It fails if the block is not currently (entirely) free. Memory
// compaction uses this to claim the region it has just vacated.
func (b *Buddy) AllocFrameAt(frame uint64, order int) error {
	if order < 0 || order > b.maxOrder || frame%(1<<order) != 0 || frame+(1<<order) > b.totalFrames {
		return fmt.Errorf("physmem: bad targeted alloc of frame %d order %d", frame, order)
	}
	// Find the free block covering [frame, frame+2^order).
	cover := -1
	var coverHead uint64
	for k := order; k <= b.maxOrder; k++ {
		head := frame &^ ((uint64(1) << k) - 1)
		if o, ok := b.freeOrder[head]; ok && o == k && head+(1<<k) >= frame+(1<<order) {
			cover, coverHead = k, head
			break
		}
	}
	if cover < 0 {
		return fmt.Errorf("physmem: frame %d order %d not free", frame, order)
	}
	b.removeFree(coverHead, cover)
	// Split the covering block down, keeping the halves that do not
	// contain the target.
	for cover > order {
		cover--
		half := coverHead + (1 << cover)
		if frame >= half {
			b.pushFree(coverHead, cover)
			coverHead = half
		} else {
			b.pushFree(half, cover)
		}
	}
	b.freeFrames -= 1 << order
	return nil
}

// ForEachFreeBlock visits every free block (head frame and order).
// Iteration order is unspecified.
func (b *Buddy) ForEachFreeBlock(fn func(frame uint64, order int)) {
	for frame, order := range b.freeOrder {
		fn(frame, order)
	}
}

// FreeOrder frees a previously allocated block, coalescing with free
// buddies as far as possible. Freeing a block that was not allocated at
// this order corrupts the allocator; callers own that bookkeeping.
func (b *Buddy) FreeOrder(frame uint64, order int) error {
	if order < 0 || order > b.maxOrder || frame%(1<<order) != 0 || frame+(1<<order) > b.totalFrames {
		return fmt.Errorf("physmem: bad free of frame %d order %d", frame, order)
	}
	if _, isFree := b.freeOrder[frame]; isFree {
		return fmt.Errorf("physmem: double free of frame %d", frame)
	}
	b.freeFrames += 1 << order
	for order < b.maxOrder {
		buddy := frame ^ (1 << order)
		if bo, ok := b.freeOrder[buddy]; !ok || bo != order {
			break
		}
		b.removeFree(buddy, order)
		if buddy < frame {
			frame = buddy
		}
		order++
	}
	b.pushFree(frame, order)
	return nil
}

// Free frees a page of the given size at the given base address.
func (b *Buddy) Free(p addr.PAddr, s addr.PageSize) error {
	return b.FreeOrder(uint64(p)/4096, OrderFor(s))
}

// TotalBytes returns the managed memory size.
func (b *Buddy) TotalBytes() uint64 { return b.totalFrames * 4096 }

// FreeBytes returns the number of free bytes.
func (b *Buddy) FreeBytes() uint64 { return b.freeFrames * 4096 }

// MaxOrder returns the largest supported order.
func (b *Buddy) MaxOrder() int { return b.maxOrder }

// FreeBlocks returns how many free blocks exist of exactly the given
// order.
func (b *Buddy) FreeBlocks(order int) int {
	n := 0
	for _, o := range b.freeOrder {
		if o == order {
			n++
		}
	}
	return n
}

// FreeBytesAtLeast returns the number of free bytes held in blocks of at
// least the given order — the memory actually usable for superpages of
// that order without compaction.
func (b *Buddy) FreeBytesAtLeast(order int) uint64 {
	var frames uint64
	for _, o := range b.freeOrder {
		if o >= order {
			frames += 1 << o
		}
	}
	return frames * 4096
}

// Fragmentation returns 1 - (free bytes in >=2MB blocks / free bytes): 0
// means all free memory is superpage-usable, 1 means none of it is.
func (b *Buddy) Fragmentation() float64 {
	free := b.FreeBytes()
	if free == 0 {
		return 1
	}
	return 1 - float64(b.FreeBytesAtLeast(Order2M))/float64(free)
}

// checkInvariants verifies internal consistency; used by tests.
func (b *Buddy) checkInvariants() error {
	var frames uint64
	for frame, order := range b.freeOrder {
		if frame%(1<<order) != 0 {
			return fmt.Errorf("free block %d misaligned for order %d", frame, order)
		}
		frames += 1 << order
	}
	if frames != b.freeFrames {
		return fmt.Errorf("free frame count %d != accounted %d", b.freeFrames, frames)
	}
	return nil
}
