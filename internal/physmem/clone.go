package physmem

import "math/rand"

// Clone returns an independent deep copy of the allocator: same free
// blocks, same fragmentation, same deterministic lowest-address-first
// behaviour from here on. Copying a heap's backing slice preserves the
// heap invariant, so the clone pops the same frames in the same order.
func (b *Buddy) Clone() *Buddy {
	c := &Buddy{
		totalFrames: b.totalFrames,
		maxOrder:    b.maxOrder,
		freeLists:   make([]*frameHeap, len(b.freeLists)),
		freeOrder:   make(map[uint64]int, len(b.freeOrder)),
		freeFrames:  b.freeFrames,
	}
	for k, h := range b.freeLists {
		c.freeLists[k] = &frameHeap{frames: append([]uint64(nil), h.frames...)}
	}
	for f, o := range b.freeOrder {
		c.freeOrder[f] = o
	}
	return c
}

// Clone returns an independent deep copy of the hog pinned into buddy,
// drawing from rng. The caller passes the cloned buddy and a rand whose
// generator sits at the same position as the original's (see
// internal/xrand) so compactions replay identically.
func (h *Memhog) Clone(buddy *Buddy, rng *rand.Rand) *Memhog {
	c := &Memhog{
		buddy:       buddy,
		rng:         rng,
		pinned:      make(map[uint64]int, len(h.pinned)),
		frames:      append([]uint64(nil), h.frames...),
		cursor:      h.cursor,
		Migrations:  h.Migrations,
		Compactions: h.Compactions,
	}
	for f, i := range h.pinned {
		c.pinned[f] = i
	}
	return c
}
