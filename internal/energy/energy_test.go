package energy

import (
	"strings"
	"testing"
)

func TestAccountAccumulates(t *testing.T) {
	a := NewAccount(DefaultPrices())
	a.AddL1CPUSide(10)
	a.AddL1Coherence(2)
	a.AddL1TLBLookups(100)
	a.AddL2TLBLookups(10)
	a.AddTFTLookups(100)
	a.AddWalkLevels(4)
	a.AddLLCAccesses(5)
	a.AddDRAMAccesses(2)
	want := 10.0 + 2 + 100*0.008 + 10*0.030 + 100*0.0008 + 4*0.4 + 5*0.4 + 2*2.5
	if got := a.DynamicNJ(); got != want {
		t.Errorf("dynamic = %v, want %v", got, want)
	}
}

func TestLeakageScalesWithRuntime(t *testing.T) {
	a := NewAccount(DefaultPrices())
	l1 := a.LeakageNJ(1e-3)
	l2 := a.LeakageNJ(2e-3)
	if l2 != 2*l1 {
		t.Errorf("leakage not linear: %v vs %v", l1, l2)
	}
	// 20mW for 1ms = 20µJ = 20000 nJ.
	if l1 != 20000 {
		t.Errorf("leakage(1ms) = %v nJ, want 20000", l1)
	}
}

func TestTotalIsDynamicPlusLeakage(t *testing.T) {
	a := NewAccount(DefaultPrices())
	a.AddDRAMAccesses(10)
	rt := 5e-4
	if a.TotalNJ(rt) != a.DynamicNJ()+a.LeakageNJ(rt) {
		t.Error("total mismatch")
	}
}

func TestZeroAccount(t *testing.T) {
	a := NewAccount(DefaultPrices())
	if a.DynamicNJ() != 0 || a.TotalNJ(0) != 0 {
		t.Error("fresh account not zero")
	}
}

func TestBreakdownTable(t *testing.T) {
	a := NewAccount(DefaultPrices())
	a.AddL1CPUSide(50)
	out := a.BreakdownTable(1e-6).String()
	for _, want := range []string{"L1 CPU-side", "leakage", "total", "DRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}
