package energy

import (
	"strings"
	"testing"

	"seesaw/internal/sram"
)

func TestAccountAccumulates(t *testing.T) {
	a := NewAccount(DefaultPrices())
	a.AddL1CPUSide(10)
	a.AddL1Coherence(2)
	a.AddL1TLBLookups(100)
	a.AddL2TLBLookups(10)
	a.AddTFTLookups(100)
	a.AddWalkLevels(4)
	a.AddLLCAccesses(5)
	a.AddDRAMAccesses(2)
	want := 10.0 + 2 + 100*0.008 + 10*0.030 + 100*0.0008 + 4*0.4 + 5*0.4 + 2*2.5
	if got := a.DynamicNJ(); got != want {
		t.Errorf("dynamic = %v, want %v", got, want)
	}
}

func TestLeakageScalesWithRuntime(t *testing.T) {
	a := NewAccount(DefaultPrices())
	l1 := a.LeakageNJ(1e-3)
	l2 := a.LeakageNJ(2e-3)
	if l2 != 2*l1 {
		t.Errorf("leakage not linear: %v vs %v", l1, l2)
	}
	// 20mW for 1ms = 20µJ = 20000 nJ.
	if l1 != 20000 {
		t.Errorf("leakage(1ms) = %v nJ, want 20000", l1)
	}
}

func TestTotalIsDynamicPlusLeakage(t *testing.T) {
	a := NewAccount(DefaultPrices())
	a.AddDRAMAccesses(10)
	rt := 5e-4
	if a.TotalNJ(rt) != a.DynamicNJ()+a.LeakageNJ(rt) {
		t.Error("total mismatch")
	}
}

func TestZeroAccount(t *testing.T) {
	a := NewAccount(DefaultPrices())
	if a.DynamicNJ() != 0 || a.TotalNJ(0) != 0 {
		t.Error("fresh account not zero")
	}
}

func TestBreakdownTable(t *testing.T) {
	a := NewAccount(DefaultPrices())
	a.AddL1CPUSide(50)
	out := a.BreakdownTable(1e-6).String()
	for _, want := range []string{"L1 CPU-side", "leakage", "total", "DRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}

// TestL1ProbeSavingWithinPaperEnvelope charges two accounts with the
// same access stream — one paying full 8-way probes, one paying SEESAW
// 4-way partition probes — and asserts the L1 component saving lands in
// the paper's ~40% envelope at every cache size, with the TFT lookups
// that enable the fast path priced in and still negligible.
func TestL1ProbeSavingWithinPaperEnvelope(t *testing.T) {
	const accesses = 100_000
	for _, sizeKB := range []uint64{16, 32, 64, 128} {
		size := sizeKB << 10
		e8, err := sram.Energy(size, 8)
		if err != nil {
			t.Fatalf("%dKB: %v", sizeKB, err)
		}
		e4, err := sram.ProbeEnergy(size, 4, 8)
		if err != nil {
			t.Fatalf("%dKB: %v", sizeKB, err)
		}
		base := NewAccount(DefaultPrices())
		base.AddL1CPUSide(float64(accesses) * e8)

		seesaw := NewAccount(DefaultPrices())
		seesaw.AddL1CPUSide(float64(accesses) * e4)
		seesaw.AddTFTLookups(accesses) // every fast probe was licensed by a TFT hit

		saving := 100 * (base.L1CPUSideNJ - seesaw.L1CPUSideNJ) / base.L1CPUSideNJ
		if saving < 38.5 || saving > 40.5 {
			t.Errorf("%dKB: L1 probe saving = %.2f%%, want ~39.4%%", sizeKB, saving)
		}
		// The TFT's own energy must not eat the saving: even at the
		// smallest array it stays under a tenth of what the narrower
		// probes recovered.
		recovered := base.L1CPUSideNJ - seesaw.L1CPUSideNJ
		if seesaw.TFTNJ >= 0.10*recovered {
			t.Errorf("%dKB: TFT energy %.1fnJ eats into the %.1fnJ recovered by partition probes",
				sizeKB, seesaw.TFTNJ, recovered)
		}
		// End-to-end, the dynamic totals preserve the ordering.
		if seesaw.DynamicNJ() >= base.DynamicNJ() {
			t.Errorf("%dKB: SEESAW dynamic energy %.1fnJ not below baseline %.1fnJ",
				sizeKB, seesaw.DynamicNJ(), base.DynamicNJ())
		}
	}
}
