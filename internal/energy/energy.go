// Package energy prices and accumulates the energy of the entire memory
// hierarchy — L1 lookups (CPU-side and coherence), TLBs, the TFT, page
// walks, LLC and DRAM accesses, plus leakage integrated over runtime —
// matching the paper's Fig 10 accounting ("the energy expended on the
// entire memory hierarchy (rather than just the L1 cache)").
//
// L1 array energies come from internal/sram; the remaining constants
// below are calibration anchors chosen so the component shares match the
// paper's observed behaviour: L1 dynamic energy is a major slice that
// grows with associativity, misses add LLC/DRAM energy, and leakage is a
// 10-20% tail that shrinks when the program runs faster (the effect the
// paper credits for part of SEESAW's savings on large-footprint
// workloads).
package energy

import "seesaw/internal/stats"

// Prices lists per-event energies in nanojoules and the leakage power in
// watts.
type Prices struct {
	L1TLBLookupNJ  float64
	L2TLBLookupNJ  float64
	TFTLookupNJ    float64
	WalkPerLevelNJ float64
	LLCAccessNJ    float64
	DRAMAccessNJ   float64
	// LeakageW is the effective (post-power-gating) leakage power of
	// the memory hierarchy, integrated over runtime.
	LeakageW float64
}

// DefaultPrices returns the calibrated 22nm model.
func DefaultPrices() Prices {
	return Prices{
		L1TLBLookupNJ:  0.008,
		L2TLBLookupNJ:  0.030,
		TFTLookupNJ:    0.0008, // 86B structure: negligible, but accounted
		WalkPerLevelNJ: 0.4,    // each level is roughly an LLC access
		LLCAccessNJ:    0.4,
		DRAMAccessNJ:   2.5, // per-64B interface energy; refresh/background power is workload-invariant and excluded
		LeakageW:       0.020,
	}
}

// Account accumulates energy by component.
type Account struct {
	Prices Prices

	// Dynamic components, in nJ.
	L1CPUSideNJ   float64 // CPU-side L1 lookups + fills
	L1CoherenceNJ float64 // coherence probes into the L1
	TLBNJ         float64
	TFTNJ         float64
	WalkNJ        float64
	LLCNJ         float64
	DRAMNJ        float64
}

// NewAccount creates an account with the given prices.
func NewAccount(p Prices) *Account { return &Account{Prices: p} }

// AddL1CPUSide records CPU-side L1 lookup/fill energy (already priced by
// the sram model).
func (a *Account) AddL1CPUSide(nj float64) { a.L1CPUSideNJ += nj }

// AddL1Coherence records coherence-probe energy (priced by the L1s).
func (a *Account) AddL1Coherence(nj float64) { a.L1CoherenceNJ += nj }

// AddL1TLBLookups records n L1 TLB lookups.
func (a *Account) AddL1TLBLookups(n uint64) { a.TLBNJ += float64(n) * a.Prices.L1TLBLookupNJ }

// AddL2TLBLookups records n L2 TLB lookups.
func (a *Account) AddL2TLBLookups(n uint64) { a.TLBNJ += float64(n) * a.Prices.L2TLBLookupNJ }

// AddTFTLookups records n TFT lookups.
func (a *Account) AddTFTLookups(n uint64) { a.TFTNJ += float64(n) * a.Prices.TFTLookupNJ }

// AddWalkLevels records n page-walk level accesses.
func (a *Account) AddWalkLevels(n uint64) { a.WalkNJ += float64(n) * a.Prices.WalkPerLevelNJ }

// AddLLCAccesses records n LLC accesses.
func (a *Account) AddLLCAccesses(n uint64) { a.LLCNJ += float64(n) * a.Prices.LLCAccessNJ }

// AddDRAMAccesses records n DRAM accesses.
func (a *Account) AddDRAMAccesses(n uint64) { a.DRAMNJ += float64(n) * a.Prices.DRAMAccessNJ }

// DynamicNJ returns total dynamic energy.
func (a *Account) DynamicNJ() float64 {
	return a.L1CPUSideNJ + a.L1CoherenceNJ + a.TLBNJ + a.TFTNJ + a.WalkNJ + a.LLCNJ + a.DRAMNJ
}

// LeakageNJ returns leakage energy for the given runtime.
func (a *Account) LeakageNJ(runtimeSeconds float64) float64 {
	return a.Prices.LeakageW * runtimeSeconds * 1e9
}

// TotalNJ returns dynamic plus leakage energy for the given runtime.
func (a *Account) TotalNJ(runtimeSeconds float64) float64 {
	return a.DynamicNJ() + a.LeakageNJ(runtimeSeconds)
}

// BreakdownTable renders the components for reports.
func (a *Account) BreakdownTable(runtimeSeconds float64) *stats.Table {
	t := stats.NewTable("memory hierarchy energy (nJ)", "component", "nJ", "share %")
	total := a.TotalNJ(runtimeSeconds)
	row := func(name string, v float64) {
		t.AddRowValues(name, v, stats.PctImprovement(total, total-v))
	}
	row("L1 CPU-side", a.L1CPUSideNJ)
	row("L1 coherence", a.L1CoherenceNJ)
	row("TLBs", a.TLBNJ)
	row("TFT", a.TFTNJ)
	row("page walks", a.WalkNJ)
	row("LLC", a.LLCNJ)
	row("DRAM", a.DRAMNJ)
	row("leakage", a.LeakageNJ(runtimeSeconds))
	t.AddRowValues("total", total, 100.0)
	return t
}
