package xrand

import (
	"math/rand"
	"testing"
)

// TestMirrorFaithful pins the layout assumption behind the fast path:
// on the toolchains this repo targets, the rngSource mirror must pass
// its self-check. If this starts failing after a Go upgrade the
// simulator still runs correctly (everything falls back to the
// interface path) — the failure is the signal to update or retire the
// mirror.
func TestMirrorFaithful(t *testing.T) {
	if !mirrorOK {
		t.Error("rngSource mirror failed its self-check; fast path permanently disabled on this toolchain")
	}
}

// TestRandMatchesStdlib: the concrete Rand must reproduce
// rand.New(rand.NewSource(seed))'s stream exactly across every method
// it offers, interleaved.
func TestRandMatchesStdlib(t *testing.T) {
	want := rand.New(rand.NewSource(99))
	got, _ := NewRand(99)
	for i := 0; i < 100_000; i++ {
		switch i % 3 {
		case 0:
			if w, g := want.Float64(), got.Float64(); w != g {
				t.Fatalf("Float64 draw %d: got %v want %v", i, g, w)
			}
		case 1:
			if w, g := want.Int63(), got.Int63(); w != g {
				t.Fatalf("Int63 draw %d: got %v want %v", i, g, w)
			}
		case 2:
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("Uint64 draw %d: got %v want %v", i, g, w)
			}
		}
	}
}

// TestRandCloneAfterManyDraws: cloning a deeply advanced source (well
// past the 607-word state ring) and continuing through RandOver must
// match the original's future stream, and the copies must be
// independent. With the mirror active this clone is a state copy, not
// a draw-history replay; the stream contract is identical either way.
func TestRandCloneAfterManyDraws(t *testing.T) {
	r, src := NewRand(5)
	for i := 0; i < 250_000; i++ {
		r.Float64()
	}
	c := src.Clone()
	rc := RandOver(c)
	if c.Draws() != src.Draws() {
		t.Fatalf("clone draws = %d, want %d", c.Draws(), src.Draws())
	}
	for i := 0; i < 10_000; i++ {
		if w, g := r.Uint64(), rc.Uint64(); w != g {
			t.Fatalf("draw %d after clone: got %v want %v", i, g, w)
		}
	}
	before := src.Draws()
	rc.Float64()
	if src.Draws() != before {
		t.Fatal("advancing the clone moved the original's counter")
	}
}

// TestRandCloneMixedConsumers: a cloned source feeding a stock
// rand.Rand and the original feeding the concrete Rand stay in
// lockstep — the two consumer types are interchangeable views over the
// same stream.
func TestRandCloneMixedConsumers(t *testing.T) {
	r, src := NewRand(11)
	for i := 0; i < 1_000; i++ {
		r.Uint64()
	}
	std := rand.New(src.Clone())
	for i := 0; i < 5_000; i++ {
		if w, g := r.Float64(), std.Float64(); w != g {
			t.Fatalf("draw %d: concrete %v, stdlib-over-clone %v", i, w, g)
		}
	}
}

// fallbackSource builds a counting Source with the state mirror
// disabled, as NewSource would produce on a toolchain where the layout
// self-check fails.
func fallbackSource(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// TestFallbackPathStream: with the mirror disabled the portable
// interface path must still produce the exact stdlib stream, through
// both the Source methods and the concrete Rand, and Clone must fall
// back to draw-history replay.
func TestFallbackPathStream(t *testing.T) {
	want := rand.New(rand.NewSource(21))
	src := fallbackSource(21)
	r := RandOver(src)
	for i := 0; i < 1_000; i++ {
		switch i % 3 {
		case 0:
			if w, g := want.Float64(), r.Float64(); w != g {
				t.Fatalf("Float64 draw %d: got %v want %v", i, g, w)
			}
		case 1:
			if w, g := want.Int63(), r.Int63(); w != g {
				t.Fatalf("Int63 draw %d: got %v want %v", i, g, w)
			}
		case 2:
			if w, g := want.Uint64(), r.Uint64(); w != g {
				t.Fatalf("Uint64 draw %d: got %v want %v", i, g, w)
			}
		}
	}

	// Clone replays the counted draws (c.st is nil too only when the
	// mirror is globally unavailable; a mirror-less original with a
	// mirrored clone still lands on the same stream, so just pin the
	// stream either way).
	c := src.Clone()
	if c.Draws() != src.Draws() {
		t.Fatalf("clone draws = %d, want %d", c.Draws(), src.Draws())
	}
	rc := rand.New(c)
	std := rand.New(src)
	for i := 0; i < 500; i++ {
		if w, g := std.Uint64(), rc.Uint64(); w != g {
			t.Fatalf("draw %d after fallback clone: got %v want %v", i, g, w)
		}
	}
}

// TestFallbackReplayClone forces the replay path on both sides of the
// clone: neither the original nor the copy may rely on the mirror.
func TestFallbackReplayClone(t *testing.T) {
	src := fallbackSource(33)
	for i := 0; i < 777; i++ {
		src.Uint64()
	}
	// Clone() reseeds via NewSource (which may re-enable the mirror);
	// replicate its replay arm directly against a mirror-less copy.
	c := fallbackSource(33)
	for i := uint64(0); i < src.Draws(); i++ {
		c.Uint64()
	}
	for i := 0; i < 500; i++ {
		if w, g := src.Uint64(), c.Uint64(); w != g {
			t.Fatalf("draw %d: got %v want %v", i, g, w)
		}
	}
}

// TestFloat64Resample forces the probability-2⁻⁵³ branch of Float64:
// an Int63 draw within half an ULP of 2⁶³ makes the division round up
// to exactly 1.0, which the stdlib (and so this package) resamples.
// The mirrored state is crafted so the next draw lands in that window
// and the one after is 0.
func TestFloat64Resample(t *testing.T) {
	r, src := NewRand(1)
	if src.st == nil {
		t.Skip("state mirror unavailable on this toolchain")
	}
	st := src.st
	for i := range st.vec {
		st.vec[i] = 0
	}
	feed1 := (st.feed - 1 + rngLen) % rngLen
	st.vec[feed1] = 1<<63 - 1 // draw 1: rounds to 1.0, resampled
	before := src.Draws()
	if f := r.Float64(); f != 0 {
		t.Fatalf("Float64 after forced resample = %v, want 0", f)
	}
	if got := src.Draws() - before; got != 2 {
		t.Fatalf("resample consumed %d draws, want 2", got)
	}
}

// TestFallbackInt63Direct covers the Source-level fallback arms that
// rand.Rand never reaches (it draws through Uint64 on Source64s).
func TestFallbackInt63Direct(t *testing.T) {
	want := rand.NewSource(55)
	src := fallbackSource(55)
	for i := 0; i < 200; i++ {
		if w, g := want.Int63(), src.Int63(); w != g {
			t.Fatalf("draw %d: got %v want %v", i, g, w)
		}
	}
	if src.Draws() != 200 {
		t.Fatalf("draws = %d, want 200", src.Draws())
	}
}

// BenchmarkFloat64 measures the concrete fast path against what the
// generators previously used: a stock rand.Rand over the counting
// Source (two interface hops per draw).
func BenchmarkFloat64(b *testing.B) {
	b.Run("xrand", func(b *testing.B) {
		r, _ := NewRand(1)
		for i := 0; i < b.N; i++ {
			r.Float64()
		}
	})
	b.Run("stdlib-over-source", func(b *testing.B) {
		r, _ := New(1)
		for i := 0; i < b.N; i++ {
			r.Float64()
		}
	})
}
