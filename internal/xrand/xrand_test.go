package xrand

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesStockSource: wrapping must not change the stream —
// every rand.Rand method used by the simulator produces exactly the
// values the stock source would.
func TestStreamMatchesStockSource(t *testing.T) {
	want := rand.New(rand.NewSource(42))
	got, _ := New(42)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if w, g := want.Float64(), got.Float64(); w != g {
				t.Fatalf("Float64 draw %d: got %v want %v", i, g, w)
			}
		case 1:
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("Uint64 draw %d: got %v want %v", i, g, w)
			}
		case 2:
			if w, g := want.Intn(97), got.Intn(97); w != g {
				t.Fatalf("Intn draw %d: got %v want %v", i, g, w)
			}
		case 3:
			if w, g := want.Int63(), got.Int63(); w != g {
				t.Fatalf("Int63 draw %d: got %v want %v", i, g, w)
			}
		case 4:
			wp, gp := make([]int, 9), make([]int, 9)
			for j := range wp {
				wp[j], gp[j] = j, j
			}
			want.Shuffle(9, func(a, b int) { wp[a], wp[b] = wp[b], wp[a] })
			got.Shuffle(9, func(a, b int) { gp[a], gp[b] = gp[b], gp[a] })
			for j := range wp {
				if wp[j] != gp[j] {
					t.Fatalf("Shuffle draw %d diverged", i)
				}
			}
		}
	}
}

// TestCloneContinuesStream: after an arbitrary mix of draws, a clone
// produces the same future stream as the original, and the two are
// independent.
func TestCloneContinuesStream(t *testing.T) {
	r, src := New(7)
	for i := 0; i < 137; i++ {
		switch i % 3 {
		case 0:
			r.Float64()
		case 1:
			r.Intn(1000) // rejection sampling: draw count != call count
		case 2:
			r.Uint64()
		}
	}
	c := src.Clone()
	rc := rand.New(c)
	if c.Draws() != src.Draws() {
		t.Fatalf("clone draws = %d, want %d", c.Draws(), src.Draws())
	}
	for i := 0; i < 200; i++ {
		if w, g := r.Uint64(), rc.Uint64(); w != g {
			t.Fatalf("draw %d after clone: got %v want %v", i, g, w)
		}
	}
	// Independence: advancing the clone must not move the original.
	before := src.Draws()
	rc.Uint64()
	if src.Draws() != before {
		t.Fatalf("advancing the clone moved the original's counter")
	}
}

// TestSeedResets: Seed restarts the stream and the counter.
func TestSeedResets(t *testing.T) {
	r, src := New(3)
	r.Uint64()
	r.Uint64()
	src.Seed(3)
	if src.Draws() != 0 {
		t.Fatalf("Draws after Seed = %d, want 0", src.Draws())
	}
	fresh := rand.New(rand.NewSource(3))
	if w, g := fresh.Uint64(), r.Uint64(); w != g {
		t.Fatalf("post-Seed stream diverged: got %v want %v", g, w)
	}
}
