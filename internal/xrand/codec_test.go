package xrand

import (
	"math/rand"
	"testing"
)

// TestSourceStateRoundTrip: a source repositioned from a captured state
// emits exactly the stream the original emits from the same point, for
// both a fresh source and one parked at an unrelated position.
func TestSourceStateRoundTrip(t *testing.T) {
	orig := NewSource(42)
	r := rand.New(orig)
	for i := 0; i < 137; i++ {
		r.Intn(100) // rejection sampling burns a variable number of draws
		r.Float64()
	}
	st := orig.State()
	if st.Seed != 42 || st.Draws != orig.Draws() {
		t.Fatalf("State() = %+v, want seed 42 at %d draws", st, orig.Draws())
	}

	// Restore onto a source at a completely different position and seed.
	resumed := NewSource(7)
	rand.New(resumed).Uint64()
	if err := resumed.SetState(st); err != nil {
		t.Fatal(err)
	}
	if resumed.Draws() != st.Draws {
		t.Errorf("resumed Draws() = %d, want %d", resumed.Draws(), st.Draws)
	}
	for i := 0; i < 64; i++ {
		if a, b := orig.Uint64(), resumed.Uint64(); a != b {
			t.Fatalf("stream diverged at post-restore draw %d: %#x vs %#x", i, a, b)
		}
	}
}

// TestSourceStateRandWiring: SetState mutates the source in place, so a
// rand.Rand wrapped around it before the restore keeps working and
// matches the original's wrapped stream.
func TestSourceStateRandWiring(t *testing.T) {
	orig := NewSource(9)
	rand.New(orig).Shuffle(50, func(i, j int) {})

	resumed := NewSource(1)
	wrapped := rand.New(resumed) // wired before the restore
	if err := resumed.SetState(orig.State()); err != nil {
		t.Fatal(err)
	}
	want := rand.New(orig.Clone())
	for i := 0; i < 32; i++ {
		if a, b := want.Int63(), wrapped.Int63(); a != b {
			t.Fatalf("pre-wired rand diverged at draw %d", i)
		}
	}
}

// TestSourceStateWithoutMirror: a source whose state mirror is absent
// (the defensive path — real constructors always attach one when the
// mirror check passes) is still repositioned correctly.
func TestSourceStateWithoutMirror(t *testing.T) {
	orig := NewSource(5)
	rand.New(orig).Intn(1000)

	bare := &Source{seed: 1, src: rand.NewSource(1).(rand.Source64)}
	if err := bare.SetState(orig.State()); err != nil {
		t.Fatal(err)
	}
	want := orig.Clone()
	for i := 0; i < 32; i++ {
		if a, b := want.Uint64(), bare.Uint64(); a != b {
			t.Fatalf("mirror-less restore diverged at draw %d", i)
		}
	}
}

// TestSourceStateMirrorDisabled: on a toolchain where the state mirror
// fails its self-check, SetState falls back to reseed-and-replay and
// must still land on the exact generator position.
func TestSourceStateMirrorDisabled(t *testing.T) {
	defer func(ok bool) { mirrorOK = ok }(mirrorOK)
	mirrorOK = false

	orig := NewSource(5)
	rand.New(orig).Intn(1000)
	st := orig.State()

	resumed := NewSource(1)
	if err := resumed.SetState(st); err != nil {
		t.Fatal(err)
	}
	want := NewSource(5)
	for i := uint64(0); i < st.Draws; i++ {
		want.Uint64()
	}
	for i := 0; i < 32; i++ {
		if a, b := want.Uint64(), resumed.Uint64(); a != b {
			t.Fatalf("replay-restored stream diverged at draw %d", i)
		}
	}
}

// TestSourceStateReplayBound: a draw count past the replay bound is a
// corrupt state and must be rejected, leaving the source untouched.
func TestSourceStateReplayBound(t *testing.T) {
	s := NewSource(3)
	s.Uint64()
	before := s.State()
	if err := s.SetState(SourceState{Seed: 3, Draws: maxReplayDraws + 1}); err == nil {
		t.Fatal("SetState accepted a draw count past the replay bound")
	}
	if got := s.State(); got != before {
		t.Errorf("failed SetState mutated the source: %+v, want %+v", got, before)
	}
}
