package xrand

import (
	"fmt"
	"math/rand"
)

// maxReplayDraws bounds how many generator steps SetState will replay.
// Real runs draw a few source steps per reference, so realistic warmups
// stay orders of magnitude below this; a count beyond it can only come
// from a corrupt snapshot, and replaying it would stall the decoder.
const maxReplayDraws = 1 << 30

// SourceState is the serializable identity of a Source's generator
// position: reseeding with Seed and advancing Draws steps reproduces the
// exact stream the source would emit from here on.
type SourceState struct {
	Seed  int64
	Draws uint64
}

// State captures the source's position for serialization.
func (s *Source) State() SourceState {
	return SourceState{Seed: s.seed, Draws: s.n}
}

// SetState repositions the source in place: the underlying generator is
// reseeded with st.Seed and fast-forwarded st.Draws steps (O(1) when
// the state mirror is available — the registers of a replayed twin are
// copied directly). Mutating in place keeps every rand.Rand wrapped
// around this source valid, so consumers need no rewiring.
func (s *Source) SetState(st SourceState) error {
	if st.Draws > maxReplayDraws {
		return fmt.Errorf("xrand: %d draws exceeds the replay bound (corrupt state?)", st.Draws)
	}
	src := rand.NewSource(st.Seed).(rand.Source64)
	if mirrorOK {
		twin := stateOf(src)
		for i := uint64(0); i < st.Draws; i++ {
			twin.step()
		}
		if s.st == nil {
			// The source was built before the mirror check passed (it
			// cannot have been: mirrorOK is decided at init), but stay
			// defensive and keep a consistent view.
			s.src = src
			s.st = twin
		} else {
			*s.st = *twin
		}
	} else {
		for i := uint64(0); i < st.Draws; i++ {
			src.Uint64()
		}
		s.src = src
	}
	s.seed = st.Seed
	s.n = st.Draws
	return nil
}
