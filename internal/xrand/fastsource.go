package xrand

import (
	"math/rand"
	"unsafe"
)

// The hot loops of the simulator burn a meaningful fraction of their
// cycles inside math/rand: every Float64 the workload generator draws
// crosses two interface dispatches (rand.Rand -> Source, counting
// Source -> wrapped Source) before reaching the stock generator, and
// cloning a warm source replays its entire draw history. Both costs
// disappear if we can touch the stock generator's state directly.
//
// math/rand's default source is a 607-word additive lagged-Fibonacci
// generator (Mitchell & Reeds) whose state struct — {tap, feed int;
// vec [607]int64} — has had the same layout since Go 1. We mirror that
// layout and, when a runtime self-check proves the mirror faithful,
// step the generator in-place without any dispatch and clone it by
// copying the 607 words instead of replaying history. If the stdlib
// ever changes the layout, the self-check fails and everything falls
// back to the portable interface path; the value stream is identical
// either way.

const (
	rngLen  = 607
	rngMask = 1<<63 - 1
)

// rngState mirrors math/rand.rngSource's layout.
type rngState struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// stateOf returns the state of a stock *rand.rngSource held in src.
// Only valid when mirrorOK: callers must check it first.
func stateOf(src rand.Source64) *rngState {
	type iface struct{ typ, data unsafe.Pointer }
	return (*rngState)((*iface)(unsafe.Pointer(&src)).data)
}

// step advances the generator one draw: the stock source's Uint64.
func (s *rngState) step() uint64 {
	if s.tap--; s.tap < 0 {
		s.tap += rngLen
	}
	if s.feed--; s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// mirrorOK reports whether the in-place mirror reproduces the stock
// generator exactly on this toolchain.
var mirrorOK = func() bool {
	ref := rand.NewSource(0x5ee5a).(rand.Source64)
	mir := rand.NewSource(0x5ee5a).(rand.Source64)
	st := stateOf(mir)
	if st == nil || st.tap < 0 || st.tap >= rngLen || st.feed < 0 || st.feed >= rngLen {
		return false
	}
	for i := 0; i < 64; i++ {
		if st.step() != ref.Uint64() {
			return false
		}
	}
	return true
}()

// A Rand is a concrete replacement for *math/rand.Rand over a counting
// Source: the same value stream for the methods it offers, without the
// per-draw interface dispatch. Hot-path consumers (the workload
// generators) hold a *Rand; everything else keeps using rand.New over
// the Source, which stays byte-compatible.
type Rand struct {
	s *Source
}

// NewRand returns a Rand whose stream is identical to
// rand.New(rand.NewSource(seed)), plus its counting source for cloning.
func NewRand(seed int64) (*Rand, *Source) {
	s := NewSource(seed)
	return &Rand{s: s}, s
}

// RandOver returns a Rand drawing from an existing counting source.
func RandOver(s *Source) *Rand { return &Rand{s: s} }

// Int63 matches rand.Rand.Int63.
func (r *Rand) Int63() int64 {
	s := r.s
	s.n++
	if s.st != nil {
		return int64(s.st.step() & rngMask)
	}
	return s.src.Int63()
}

// Uint64 matches rand.Rand.Uint64 over a Source64.
func (r *Rand) Uint64() uint64 {
	s := r.s
	s.n++
	if s.st != nil {
		return s.st.step()
	}
	return s.src.Uint64()
}

// Float64 matches rand.Rand.Float64: Go 1's value stream, resampling
// the (probability 2⁻⁵³) draws that would round up to 1.0.
func (r *Rand) Float64() float64 {
again:
	f := float64(r.Int63()) / (1 << 63)
	if f == 1 {
		goto again
	}
	return f
}
