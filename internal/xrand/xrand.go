// Package xrand wraps math/rand sources with a draw counter so warm
// simulator state can be deep-copied. Go's rand.Rand carries hidden
// generator state that cannot be copied directly, but every draw a
// rand.Rand makes — Float64, Intn, Uint64, Shuffle — bottoms out in
// exactly one Int63 or Uint64 call on its Source, and for the stock
// rngSource both advance the generator by one identical step. Counting
// those source-level steps therefore identifies the generator's exact
// position, and a clone is "reseed, replay n steps": a fresh source with
// the same seed fast-forwarded by n draws produces the same stream the
// original will produce from here on.
//
// Counting at the source level (not the call level) is what makes
// rejection-sampling consumers like Intn cloneable: however many draws a
// call burned, the counter advanced with the generator.
package xrand

import "math/rand"

// Source is a counting math/rand source: a stock rand.NewSource wrapped
// so every generator step is counted. It implements rand.Source64, so
// rand.New(src) behaves byte-for-byte like rand.New(rand.NewSource(seed)).
type Source struct {
	seed int64
	n    uint64
	src  rand.Source64
	st   *rngState // direct view of src's state when mirrorOK, else nil
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	src := rand.NewSource(seed).(rand.Source64)
	s := &Source{seed: seed, src: src}
	if mirrorOK {
		s.st = stateOf(src)
	}
	return s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.n++
	if s.st != nil {
		return int64(s.st.step() & rngMask)
	}
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.n++
	if s.st != nil {
		return s.st.step()
	}
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.n = 0
	s.src.Seed(seed)
}

// Draws returns how many generator steps have been taken.
func (s *Source) Draws() uint64 { return s.n }

// Clone returns an independent source at the same generator position.
// With the state mirror available this copies the generator registers
// directly (O(1)); otherwise it reseeds and replays the counted number
// of steps. The clone and the original produce identical streams from
// here on and never influence each other.
func (s *Source) Clone() *Source {
	c := NewSource(s.seed)
	if s.st != nil && c.st != nil {
		*c.st = *s.st
	} else {
		for i := uint64(0); i < s.n; i++ {
			c.src.Uint64()
		}
	}
	c.n = s.n
	return c
}

// New returns a rand.Rand over a new counting source, plus the source
// handle for later cloning. The Rand's stream is identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) (*rand.Rand, *Source) {
	s := NewSource(seed)
	return rand.New(s), s
}
