package workload

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	p, _ := ByName("redis")
	if err := SaveProfile(p, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: %+v != %+v", got, p)
	}
}

func TestLoadProfileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadProfile(bad); err == nil {
		t.Error("malformed JSON must error")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"Name":"x","FootprintMB":8,"Threads":0}`), 0o644)
	if _, err := LoadProfile(invalid); err == nil {
		t.Error("invalid profile must error")
	}
}

func TestValidate(t *testing.T) {
	// Every built-in profile must validate.
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	cases := []Profile{
		{},                                       // no name
		{Name: "x"},                              // no footprint
		{Name: "x", FootprintMB: 8},              // no threads
		{Name: "x", FootprintMB: 8, Threads: 99}, // too many threads
		{Name: "x", FootprintMB: 8, Threads: 1, Seq: 0.7, Chase: 0.5},            // Seq+Chase > 1
		{Name: "x", FootprintMB: 8, Threads: 1, SmallAccess: 0.8, OSShared: 0.3}, // too few heap refs
		{Name: "x", FootprintMB: 8, Threads: 1, HotProb: 1.5},                    // out of range
		{Name: "x", FootprintMB: 8, Threads: 1, MeanGap: -1},                     // negative gap
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) passed validation", i, p)
		}
	}
}

// TestCustomProfileRunsEndToEnd: a user-authored profile must drive the
// generator like any built-in.
func TestCustomProfileRunsEndToEnd(t *testing.T) {
	p := Profile{
		Name: "custom", FootprintMB: 8, SmallMB: 2, HotKB: 16,
		HotProb: 0.8, Seq: 0.2, Chase: 0.1, Store: 0.2,
		MeanGap: 3, Threads: 2, SharedFrac: 0.2,
		SmallAccess: 0.1, OSShared: 0.02, Repeat: 0.5,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 5)
	g.BindDefault()
	for i := 0; i < 5000; i++ {
		rec := g.Next(i % p.Threads)
		if rec.VA == 0 {
			t.Fatal("zero address generated")
		}
	}
}
