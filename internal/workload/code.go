package workload

import (
	"seesaw/internal/addr"
)

// Instruction-side modeling. The paper notes SEESAW "is also possible to
// apply ... to the instruction cache. This may be valuable with the
// advent of cloud workloads that use considerably larger
// instruction-side footprints" (Section V, citing Ferdman et al.). The
// code-stream generator produces instruction-fetch addresses per retired
// instruction block: mostly sequential flow through a hot code region,
// with jumps to hot functions and — for the cloud profiles — a long tail
// of cold code that overwhelms a 32KB L1I.

// codeParams returns the text footprint for a profile: total code bytes
// and the hot (loop/function working set) bytes. Cloud/server profiles
// carry the large instruction footprints the paper highlights; Spec-like
// profiles run from compact hot loops.
func (p Profile) codeParams() (codeBytes, hotBytes uint64) {
	for _, n := range CloudNames {
		if p.Name == n {
			return 24 << 20, 64 << 10
		}
	}
	return 2 << 20, 20 << 10
}

// CodeBytes returns the size of the text region to map.
func (g *Generator) CodeBytes() uint64 {
	c, _ := g.p.codeParams()
	return c
}

// BindCode installs the mapped base of the text region. Optional: data
// generation works without it, but NextCode panics if unbound.
func (g *Generator) BindCode(base addr.VAddr) {
	g.codeBase = base
	g.codeBound = true
	if g.codeCur == nil {
		g.codeCur = make([]uint64, len(g.rngs))
	}
}

// NextCode returns the instruction-fetch address for the next block of
// nInstr instructions on thread tid, and whether control flow jumped
// (taken branch/call — the fetch-redirect bubble whose length is the
// L1I hit latency). The cursor advances sequentially (4 bytes per
// instruction); jumps usually stay within the hot code working set but
// sometimes land in the cold text tail.
func (g *Generator) NextCode(tid int, nInstr int) (addr.VAddr, bool) {
	if !g.codeBound {
		panic("workload: code generator not bound")
	}
	codeBytes, hotBytes := g.p.codeParams()
	r := g.rngs[tid]
	cur := g.codeCur[tid]
	cur += uint64(nInstr) * 4
	jumped := false
	x := r.Float64()
	switch {
	case x < 0.16:
		// Loop back-edge or call into the innermost hot loops: code
		// execution is heavily skewed toward a small kernel.
		inner := hotBytes / 4
		cur = r.Uint64() % inner
		jumped = true
	case x < 0.22:
		// Call across the wider hot working set.
		cur = r.Uint64() % hotBytes
		jumped = true
	case x < 0.24:
		// Cold-path code: error handling, rarely-run framework layers.
		cur = r.Uint64() % codeBytes
		jumped = true
	}
	if cur >= codeBytes {
		cur %= hotBytes // execution returns to the hot loops
		jumped = true
	}
	g.codeCur[tid] = cur
	return g.codeBase + addr.VAddr(cur&^3), jumped
}
