package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadProfile reads a custom workload profile from a JSON file, so
// downstream users can model their own applications without recompiling:
//
//	{
//	  "Name": "myservice",
//	  "FootprintMB": 48, "SmallMB": 6, "HotKB": 40,
//	  "HotProb": 0.85, "Seq": 0.1, "Chase": 0.15, "Store": 0.25,
//	  "MeanGap": 2.8, "Threads": 4, "SharedFrac": 0.2,
//	  "SmallAccess": 0.15, "OSShared": 0.04, "Repeat": 0.6
//	}
//
// Missing fields default to zero; Validate reports inconsistent knobs.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("workload: %s: %w", path, err)
	}
	return p, nil
}

// SaveProfile writes a profile as indented JSON (a starting template for
// custom profiles).
func SaveProfile(p Profile, path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks a profile's knobs for consistency.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("profile has no name")
	case p.FootprintMB <= 0:
		return fmt.Errorf("FootprintMB must be positive, got %d", p.FootprintMB)
	case p.Threads <= 0 || p.Threads > 63:
		return fmt.Errorf("Threads must be in [1,63], got %d", p.Threads)
	case p.MeanGap < 0:
		return fmt.Errorf("MeanGap must be non-negative")
	case p.Seq < 0 || p.Chase < 0 || p.Seq+p.Chase > 1:
		return fmt.Errorf("Seq+Chase must fit in [0,1], got %.2f+%.2f", p.Seq, p.Chase)
	case p.SmallAccess < 0 || p.OSShared < 0 || p.SmallAccess+p.OSShared >= 1:
		return fmt.Errorf("SmallAccess+OSShared must be below 1")
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"HotProb", p.HotProb}, {"Store", p.Store}, {"SharedFrac", p.SharedFrac},
		{"Repeat", p.Repeat},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%s must be in [0,1], got %v", f.name, f.v)
		}
	}
	return nil
}
