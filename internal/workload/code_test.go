package workload

import (
	"testing"

	"seesaw/internal/addr"
)

func codeGen(t *testing.T, name string) *Generator {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 42)
	g.BindDefault()
	g.BindCode(addr.VAddr(0x40_0000_0000))
	return g
}

func TestCodeUnboundPanics(t *testing.T) {
	p, _ := ByName("redis")
	g := NewGenerator(p, 1)
	defer func() {
		if recover() == nil {
			t.Error("NextCode on unbound generator did not panic")
		}
	}()
	g.NextCode(0, 4)
}

func TestCodeAddressesStayInRegion(t *testing.T) {
	g := codeGen(t, "nutch")
	base := uint64(0x40_0000_0000)
	size := g.CodeBytes()
	for i := 0; i < 20000; i++ {
		a, _ := g.NextCode(0, 4+i%8)
		va := uint64(a)
		if va < base || va >= base+size {
			t.Fatalf("fetch %#x outside text region", va)
		}
	}
}

func TestCloudCodeFootprintLarger(t *testing.T) {
	cloud := codeGen(t, "olio")
	spec := codeGen(t, "astar")
	if cloud.CodeBytes() <= spec.CodeBytes() {
		t.Errorf("cloud text %d !> spec text %d (paper: cloud workloads have larger i-footprints)",
			cloud.CodeBytes(), spec.CodeBytes())
	}
}

func TestCodeStreamIsMostlySequential(t *testing.T) {
	g := codeGen(t, "astar")
	jumps := 0
	n := 20000
	for i := 0; i < n; i++ {
		_, jumped := g.NextCode(0, 4)
		if jumped {
			jumps++
		}
	}
	frac := float64(jumps) / float64(n)
	if frac < 0.1 || frac > 0.45 {
		t.Errorf("jump fraction = %.2f, want ~0.25", frac)
	}
}

func TestCodeDeterminism(t *testing.T) {
	g1 := codeGen(t, "redis")
	g2 := codeGen(t, "redis")
	for i := 0; i < 2000; i++ {
		v1, j1 := g1.NextCode(0, 5)
		v2, j2 := g2.NextCode(0, 5)
		if v1 != v2 || j1 != j2 {
			t.Fatalf("divergence at %d", i)
		}
	}
}
