package workload

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/cache"
)

// rawHitRate replays one thread of a workload against a plain 64KB 16-way
// cache with identity translation — a calibration probe for the locality
// knobs.
func rawHitRate(t *testing.T, name string) float64 {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 42)
	heap := addr.VAddr(0x5555_5540_0000)
	small := heap + addr.VAddr(g.HeapBytes()+2<<20)
	os := small + addr.VAddr(g.SmallBytes()+2<<20)
	g.Bind(heap, small, os)
	geom := addr.MustCacheGeometry(64<<10, 16, 1)
	c := cache.New(geom)
	for i := 0; i < 60000; i++ {
		pa := addr.PAddr(g.Next(0).VA)
		set, tag := geom.SetIndexP(pa), geom.TagP(pa)
		if _, hit := c.Access(set, cache.AnyPartition, tag); !hit {
			c.Insert(set, cache.AnyPartition, tag, cache.Shared)
		}
	}
	return float64(c.Stats.Hits) / float64(c.Stats.Hits+c.Stats.Misses)
}

// TestLocalitySpectrum pins the calibration ordering the evaluation
// relies on: cache-friendly profiles (nutch) sit near real L1 hit rates,
// pointer-chasers (g500, olio) sit far below, and gups is the
// random-access worst case.
func TestLocalitySpectrum(t *testing.T) {
	nutch := rawHitRate(t, "nutch")
	redis := rawHitRate(t, "redis")
	olio := rawHitRate(t, "olio")
	gups := rawHitRate(t, "gups")
	if nutch < 0.90 {
		t.Errorf("nutch hit rate %.3f < 0.90", nutch)
	}
	if redis < 0.80 {
		t.Errorf("redis hit rate %.3f < 0.80", redis)
	}
	if !(nutch > redis && redis > olio && olio > gups) {
		t.Errorf("locality ordering violated: nutch %.2f, redis %.2f, olio %.2f, gups %.2f",
			nutch, redis, olio, gups)
	}
	if gups > 0.5 {
		t.Errorf("gups hit rate %.3f implausibly high for random access", gups)
	}
}
