package workload

import (
	"seesaw/internal/addr"
	"seesaw/internal/xrand"
)

// Clone returns an independent deep copy of the generator: every
// per-thread RNG continues from its current position (see
// internal/xrand), and all cursors, chase positions, and reuse state
// copy, so the clone emits exactly the record stream the original would
// have emitted from here on.
func (g *Generator) Clone() *Generator {
	c := &Generator{
		p:         g.p,
		heapBase:  g.heapBase,
		smallBase: g.smallBase,
		osBase:    g.osBase,
		bound:     g.bound,
		rngs:      make([]*xrand.Rand, len(g.rngs)),
		srcs:      make([]*xrand.Source, len(g.srcs)),
		seqCur:    append([]uint64(nil), g.seqCur...),
		chaseAt:   append([]uint64(nil), g.chaseAt...),
		lastVA:    append([]addr.VAddr(nil), g.lastVA...),
		codeBase:  g.codeBase,
		codeBound: g.codeBound,
		codeCur:   append([]uint64(nil), g.codeCur...),
	}
	for i, s := range g.srcs {
		c.srcs[i] = s.Clone()
		c.rngs[i] = xrand.RandOver(c.srcs[i])
	}
	return c
}
