package workload

import (
	"testing"

	"seesaw/internal/addr"
	"seesaw/internal/trace"
)

func boundGen(t *testing.T, name string) *Generator {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 42)
	heap := addr.VAddr(0x5555_5540_0000)
	small := heap + addr.VAddr(g.HeapBytes()+2<<20)
	os := small + addr.VAddr(g.SmallBytes()+2<<20)
	g.Bind(heap, small, os)
	return g
}

func TestSixteenProfiles(t *testing.T) {
	if len(Profiles()) != 16 {
		t.Fatalf("%d profiles, want 16 (the paper's workload list)", len(Profiles()))
	}
	names := map[string]bool{}
	for _, p := range Profiles() {
		if names[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.FootprintMB <= 0 || p.Threads <= 0 || p.MeanGap <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
		if p.Seq+p.Chase > 1 {
			t.Errorf("%s: Seq+Chase = %v > 1", p.Name, p.Seq+p.Chase)
		}
		if p.SmallAccess+p.OSShared >= 0.6 {
			t.Errorf("%s: too few heap accesses", p.Name)
		}
	}
	for _, n := range CloudNames {
		if !names[n] {
			t.Errorf("cloud workload %q not in profiles", n)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("redis"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestUnboundPanics(t *testing.T) {
	p, _ := ByName("astar")
	g := NewGenerator(p, 1)
	defer func() {
		if recover() == nil {
			t.Error("Next on unbound generator did not panic")
		}
	}()
	g.Next(0)
}

func TestDeterminism(t *testing.T) {
	g1 := boundGen(t, "redis")
	g2 := boundGen(t, "redis")
	for i := 0; i < 1000; i++ {
		if g1.Next(0) != g2.Next(0) {
			t.Fatalf("divergence at record %d", i)
		}
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	for _, name := range []string{"astar", "cann", "redis", "g500"} {
		g := boundGen(t, name)
		heapLo := uint64(0x5555_5540_0000)
		heapHi := heapLo + g.HeapBytes()
		smallLo := heapHi + 2<<20
		smallHi := smallLo + g.SmallBytes()
		osLo := smallHi + 2<<20
		osHi := osLo + g.OSBytes()
		for tid := 0; tid <= g.SystemTID(); tid++ {
			for i := 0; i < 5000; i++ {
				va := uint64(g.Next(tid).VA)
				inHeap := va >= heapLo && va < heapHi
				inSmall := va >= smallLo && va < smallHi
				inOS := va >= osLo && va < osHi
				if !inHeap && !inSmall && !inOS {
					t.Fatalf("%s tid %d: VA %#x outside all regions", name, tid, va)
				}
				if tid == g.SystemTID() && !inOS {
					t.Fatalf("%s: system thread escaped the OS region (%#x)", name, va)
				}
			}
		}
	}
}

func TestSuperpageEligibleFractionMatchesProfile(t *testing.T) {
	// With full coverage, the heap-access fraction approximates the
	// superpage reference fraction; the paper reports 53-95%.
	for _, p := range Profiles() {
		g := NewGenerator(p, 7)
		heap := addr.VAddr(0x5555_5540_0000)
		small := heap + addr.VAddr(g.HeapBytes()+2<<20)
		os := small + addr.VAddr(g.SmallBytes()+2<<20)
		g.Bind(heap, small, os)
		n, inHeap := 20000, 0
		for i := 0; i < n; i++ {
			tid := i % p.Threads
			va := g.Next(tid).VA
			if va >= heap && va < heap+addr.VAddr(g.HeapBytes()) {
				inHeap++
			}
		}
		frac := float64(inHeap) / float64(n)
		if frac < 0.50 || frac > 0.97 {
			t.Errorf("%s: heap (superpage-eligible) fraction %.2f outside [0.50,0.97]", p.Name, frac)
		}
	}
}

func TestCloudWorkloadsHaveHighSuperpageFraction(t *testing.T) {
	// "workloads like Nutch, Olio, Redis, MongoDB, graph500, and
	// tunkrank ... see 70-95% of their references going to superpages".
	for _, name := range []string{"nutch", "olio", "redis", "mongo", "g500", "tunk"} {
		p, _ := ByName(name)
		if f := 1 - p.SmallAccess - p.OSShared; f < 0.70 {
			t.Errorf("%s: superpage-eligible fraction %.2f < 0.70", name, f)
		}
	}
}

func TestStoreFractionApproximate(t *testing.T) {
	g := boundGen(t, "gups") // store fraction 0.5
	stores := 0
	n := 20000
	for i := 0; i < n; i++ {
		if g.Next(0).Kind == trace.Store {
			stores++
		}
	}
	frac := float64(stores) / float64(n)
	if frac < 0.35 || frac > 0.60 {
		t.Errorf("gups store fraction = %.2f, want ~0.5 (dep loads excluded)", frac)
	}
}

func TestChaseProducesDependentLoads(t *testing.T) {
	g := boundGen(t, "g500") // chase 0.5
	deps := 0
	n := 10000
	for i := 0; i < n; i++ {
		if g.Next(0).Dep {
			deps++
		}
	}
	frac := float64(deps) / float64(n)
	if frac < 0.3 || frac > 0.6 {
		t.Errorf("g500 dependent fraction = %.2f, want ~0.45", frac)
	}
	g2 := boundGen(t, "cact") // chase 0.02
	deps = 0
	for i := 0; i < n; i++ {
		if g2.Next(0).Dep {
			deps++
		}
	}
	if float64(deps)/float64(n) > 0.05 {
		t.Errorf("cact dependent fraction = %.2f, want ~0.02", float64(deps)/float64(n))
	}
}

func TestLocalityDiffersAcrossProfiles(t *testing.T) {
	// nutch (hot, local) must re-reference lines far more than g500
	// (pointer chasing): count distinct lines in a fixed window.
	distinct := func(name string) int {
		g := boundGen(t, name)
		lines := map[uint64]bool{}
		for i := 0; i < 8000; i++ {
			lines[g.Next(0).VA.Line()] = true
		}
		return len(lines)
	}
	n, g5 := distinct("nutch"), distinct("g500")
	if n >= g5 {
		t.Errorf("nutch touched %d distinct lines, g500 %d: locality ordering wrong", n, g5)
	}
}

func TestGapDistribution(t *testing.T) {
	g := boundGen(t, "astar") // mean gap 3.0
	var sum int
	n := 20000
	for i := 0; i < n; i++ {
		sum += int(g.Next(0).Gap)
	}
	mean := float64(sum) / float64(n)
	if mean < 2.0 || mean > 4.0 {
		t.Errorf("mean gap = %.2f, want ~3", mean)
	}
}

func TestSystemThreadStores(t *testing.T) {
	g := boundGen(t, "redis")
	stores := 0
	for i := 0; i < 4000; i++ {
		if g.Next(g.SystemTID()).Kind == trace.Store {
			stores++
		}
	}
	if f := float64(stores) / 4000; f < 0.4 || f > 0.6 {
		t.Errorf("system thread store fraction = %.2f, want ~0.5", f)
	}
}
