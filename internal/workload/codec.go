package workload

import (
	"fmt"

	"seesaw/internal/addr"
	"seesaw/internal/xrand"
)

// GeneratorState is a generator's serializable mutable state: every
// per-thread RNG position plus the cursors that shape the record
// stream. The profile and the bound region bases are config-derived
// (Build re-creates and re-binds them identically), but the bases
// travel anyway so a restore onto a mismatched generator is caught
// rather than silently desynchronized.
type GeneratorState struct {
	HeapBase  addr.VAddr
	SmallBase addr.VAddr
	OSBase    addr.VAddr
	Bound     bool

	Srcs    []xrand.SourceState
	SeqCur  []uint64
	ChaseAt []uint64
	LastVA  []addr.VAddr

	CodeBase  addr.VAddr
	CodeBound bool
	CodeCur   []uint64
}

// State captures the generator's stream position.
func (g *Generator) State() GeneratorState {
	s := GeneratorState{
		HeapBase: g.heapBase, SmallBase: g.smallBase, OSBase: g.osBase, Bound: g.bound,
		SeqCur:   append([]uint64(nil), g.seqCur...),
		ChaseAt:  append([]uint64(nil), g.chaseAt...),
		LastVA:   append([]addr.VAddr(nil), g.lastVA...),
		CodeBase: g.codeBase, CodeBound: g.codeBound,
		CodeCur: append([]uint64(nil), g.codeCur...),
	}
	s.Srcs = make([]xrand.SourceState, len(g.srcs))
	for i, src := range g.srcs {
		s.Srcs[i] = src.State()
	}
	return s
}

// SetState restores the generator in place. The receiver must have been
// built from the same profile and bound to the same regions the state
// was captured from.
func (g *Generator) SetState(s GeneratorState) error {
	n := len(g.srcs)
	if len(s.Srcs) != n || len(s.SeqCur) != n || len(s.ChaseAt) != n || len(s.LastVA) != n {
		return fmt.Errorf("workload: state sized for %d threads, generator has %d", len(s.Srcs), n)
	}
	if s.Bound != g.bound || s.HeapBase != g.heapBase || s.SmallBase != g.smallBase || s.OSBase != g.osBase {
		return fmt.Errorf("workload: state bound to different regions than the generator")
	}
	if s.CodeBound != g.codeBound || s.CodeBase != g.codeBase {
		return fmt.Errorf("workload: state bound to a different code region than the generator")
	}
	if len(s.CodeCur) != len(g.codeCur) {
		return fmt.Errorf("workload: code cursors sized for %d threads, generator has %d", len(s.CodeCur), len(g.codeCur))
	}
	for i, st := range s.Srcs {
		if err := g.srcs[i].SetState(st); err != nil {
			return err
		}
		// g.rngs[i] wraps g.srcs[i], which was mutated in place — no
		// rewiring needed.
	}
	copy(g.seqCur, s.SeqCur)
	copy(g.chaseAt, s.ChaseAt)
	copy(g.lastVA, s.LastVA)
	copy(g.codeCur, s.CodeCur)
	return nil
}
