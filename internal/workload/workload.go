// Package workload provides deterministic synthetic memory-reference
// generators standing in for the paper's Pin traces of Spec, Parsec,
// Cloudsuite, Biobench and cloud/server workloads (Section V). Each named
// profile is parameterized so that the properties the evaluation actually
// depends on land in the ranges the paper reports:
//
//   - the fraction of references to superpage-backed memory (53-95%,
//     70-95% for the cloud workloads), set by how much of the footprint
//     lives in never-huge regions;
//   - L1 locality (hot-set size and re-reference probability), which
//     drives MPKI (Fig 2a) and MRU way-predictor accuracy (Fig 15 —
//     pointer-chasing profiles like graph500 and olio predict poorly);
//   - instruction-level context (gaps between memory ops, load-load
//     dependences) that determines how much latency an OoO core hides;
//   - thread count and sharing, which drive coherence traffic (Fig 11).
package workload

import (
	"fmt"

	"seesaw/internal/xrand"

	"seesaw/internal/addr"
	"seesaw/internal/trace"
)

// Profile parameterizes one named workload.
type Profile struct {
	Name string
	// FootprintMB is the heap size in MB (superpage-eligible region).
	FootprintMB int
	// SmallMB is the size of the never-huge region (stacks, small
	// mappings); accesses here are always base-page accesses.
	SmallMB int
	// HotKB is the size of each thread's hot working set.
	HotKB int
	// HotProb is the probability a non-sequential, non-chasing access
	// re-references the hot set.
	HotProb float64
	// Seq is the fraction of accesses that stream sequentially.
	Seq float64
	// Chase is the fraction of accesses that are dependent pointer
	// chases (poor locality, serialized issue).
	Chase float64
	// Store is the store fraction.
	Store float64
	// MeanGap is the mean number of non-memory instructions between
	// memory accesses.
	MeanGap float64
	// Threads is the number of application threads.
	Threads int
	// SharedFrac is the fraction of the heap shared between threads and
	// the probability an access targets the shared zone.
	SharedFrac float64
	// SmallAccess is the probability an access targets the never-huge
	// region (1 - superpage reference fraction, under full coverage).
	SmallAccess float64
	// OSShared is the probability an application access touches the
	// OS-shared region (syscall buffers etc.), which the system thread
	// also writes — the source of coherence traffic into otherwise
	// single-threaded workloads.
	OSShared float64
	// Repeat is the probability an access re-touches the previously
	// accessed cache line (adjacent struct fields, register spills).
	// This line-level temporal locality is what MRU way prediction
	// exploits: high-Repeat workloads like nutch predict >85%
	// accurately, pointer-chasers like g500/olio predict poorly
	// (Fig 15).
	Repeat float64
}

// profiles lists the paper's sixteen workloads. Parameters are synthetic
// but chosen per the calibration notes in DESIGN.md.
var profiles = []Profile{
	{Name: "astar", FootprintMB: 16, SmallMB: 4, HotKB: 48, HotProb: 0.93, Seq: 0.15, Chase: 0.20, Store: 0.25, MeanGap: 3.0, Threads: 1, SmallAccess: 0.35, OSShared: 0.04, Repeat: 0.72},
	{Name: "cact", FootprintMB: 32, SmallMB: 4, HotKB: 96, HotProb: 0.92, Seq: 0.55, Chase: 0.02, Store: 0.30, MeanGap: 3.5, Threads: 1, SmallAccess: 0.25, OSShared: 0.02, Repeat: 0.78},
	{Name: "cann", FootprintMB: 64, SmallMB: 8, HotKB: 32, HotProb: 0.78, Seq: 0.05, Chase: 0.30, Store: 0.20, MeanGap: 2.5, Threads: 4, SharedFrac: 0.30, SmallAccess: 0.20, OSShared: 0.03, Repeat: 0.50},
	{Name: "gems", FootprintMB: 48, SmallMB: 6, HotKB: 128, HotProb: 0.92, Seq: 0.50, Chase: 0.03, Store: 0.32, MeanGap: 3.0, Threads: 1, SmallAccess: 0.30, OSShared: 0.02, Repeat: 0.78},
	{Name: "g500", FootprintMB: 96, SmallMB: 8, HotKB: 24, HotProb: 0.60, Seq: 0.05, Chase: 0.50, Store: 0.10, MeanGap: 2.0, Threads: 4, SharedFrac: 0.20, SmallAccess: 0.08, OSShared: 0.04, Repeat: 0.32},
	{Name: "gups", FootprintMB: 64, SmallMB: 6, HotKB: 16, HotProb: 0.30, Seq: 0.02, Chase: 0.05, Store: 0.50, MeanGap: 2.0, Threads: 1, SmallAccess: 0.15, OSShared: 0.02, Repeat: 0.15},
	{Name: "mcf", FootprintMB: 48, SmallMB: 8, HotKB: 40, HotProb: 0.80, Seq: 0.08, Chase: 0.35, Store: 0.18, MeanGap: 2.2, Threads: 1, SmallAccess: 0.40, OSShared: 0.03, Repeat: 0.55},
	{Name: "mumm", FootprintMB: 32, SmallMB: 8, HotKB: 64, HotProb: 0.90, Seq: 0.40, Chase: 0.10, Store: 0.12, MeanGap: 2.8, Threads: 1, SmallAccess: 0.45, OSShared: 0.02, Repeat: 0.72},
	{Name: "omnet", FootprintMB: 24, SmallMB: 6, HotKB: 56, HotProb: 0.92, Seq: 0.10, Chase: 0.28, Store: 0.28, MeanGap: 3.2, Threads: 1, SmallAccess: 0.35, OSShared: 0.03, Repeat: 0.72},
	{Name: "tigr", FootprintMB: 40, SmallMB: 6, HotKB: 80, HotProb: 0.90, Seq: 0.45, Chase: 0.06, Store: 0.10, MeanGap: 3.0, Threads: 1, SmallAccess: 0.30, OSShared: 0.02, Repeat: 0.76},
	{Name: "tunk", FootprintMB: 64, SmallMB: 6, HotKB: 32, HotProb: 0.75, Seq: 0.06, Chase: 0.40, Store: 0.15, MeanGap: 2.2, Threads: 4, SharedFrac: 0.30, SmallAccess: 0.10, OSShared: 0.04, Repeat: 0.50},
	{Name: "xalanc", FootprintMB: 24, SmallMB: 6, HotKB: 64, HotProb: 0.93, Seq: 0.20, Chase: 0.15, Store: 0.25, MeanGap: 3.4, Threads: 1, SmallAccess: 0.25, OSShared: 0.03, Repeat: 0.78},
	{Name: "nutch", FootprintMB: 32, SmallMB: 4, HotKB: 40, HotProb: 0.95, Seq: 0.25, Chase: 0.06, Store: 0.20, MeanGap: 3.0, Threads: 4, SharedFrac: 0.15, SmallAccess: 0.12, OSShared: 0.05, Repeat: 0.88},
	{Name: "olio", FootprintMB: 48, SmallMB: 4, HotKB: 24, HotProb: 0.60, Seq: 0.05, Chase: 0.45, Store: 0.22, MeanGap: 2.4, Threads: 4, SharedFrac: 0.20, SmallAccess: 0.08, OSShared: 0.06, Repeat: 0.32},
	{Name: "redis", FootprintMB: 64, SmallMB: 4, HotKB: 32, HotProb: 0.92, Seq: 0.08, Chase: 0.12, Store: 0.30, MeanGap: 2.6, Threads: 1, SmallAccess: 0.06, OSShared: 0.08, Repeat: 0.72},
	{Name: "mongo", FootprintMB: 80, SmallMB: 8, HotKB: 48, HotProb: 0.88, Seq: 0.12, Chase: 0.20, Store: 0.28, MeanGap: 2.8, Threads: 4, SharedFrac: 0.15, SmallAccess: 0.15, OSShared: 0.05, Repeat: 0.66},
}

// CloudNames lists the workloads the paper calls out as modern
// cloud/server workloads (used by Figs 12 and 15).
var CloudNames = []string{"olio", "redis", "nutch", "tunk", "g500", "mongo", "cann", "mcf"}

// Profiles returns all sixteen named profiles.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the workload names in canonical (paper) order.
func Names() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// OSRegionMB is the size of the per-process OS-shared region (kernel
// buffers the system thread and application both touch).
const OSRegionMB = 1

// Generator produces a deterministic access stream for one workload. The
// caller maps the three regions (heap: superpage-eligible; small:
// never-huge; os: never-huge, shared with the system thread) and then
// binds their base addresses.
type Generator struct {
	p Profile

	heapBase, smallBase, osBase addr.VAddr
	bound                       bool

	rngs    []*xrand.Rand   // one per thread + one for the system thread
	srcs    []*xrand.Source // counting sources under rngs, for Clone
	seqCur  []uint64        // per-thread sequential cursor (offset in zone)
	chaseAt []uint64        // per-thread pointer-chase position
	lastVA  []addr.VAddr    // per-thread previous access (line reuse)

	// Instruction-side state (see code.go).
	codeBase  addr.VAddr
	codeBound bool
	codeCur   []uint64
}

// NewGenerator creates a generator with a deterministic seed.
func NewGenerator(p Profile, seed int64) *Generator {
	g := &Generator{p: p}
	n := p.Threads + 1 // + system thread
	g.rngs = make([]*xrand.Rand, n)
	g.srcs = make([]*xrand.Source, n)
	g.seqCur = make([]uint64, n)
	g.chaseAt = make([]uint64, n)
	g.lastVA = make([]addr.VAddr, n)
	for i := range g.rngs {
		g.rngs[i], g.srcs[i] = xrand.NewRand(seed + int64(i)*7919)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// HeapBytes returns the size of the superpage-eligible heap region.
func (g *Generator) HeapBytes() uint64 { return uint64(g.p.FootprintMB) << 20 }

// SmallBytes returns the size of the never-huge region.
func (g *Generator) SmallBytes() uint64 {
	if g.p.SmallMB <= 0 {
		return 1 << 20
	}
	return uint64(g.p.SmallMB) << 20
}

// OSBytes returns the size of the OS-shared region.
func (g *Generator) OSBytes() uint64 { return OSRegionMB << 20 }

// Bind installs the mapped base addresses of the three regions.
func (g *Generator) Bind(heap, small, os addr.VAddr) {
	g.heapBase, g.smallBase, g.osBase = heap, small, os
	g.bound = true
}

// MmapBase is the canonical first mmap address the OS memory manager
// hands out (see osmm.NewProcess).
const MmapBase = addr.VAddr(0x5555_5540_0000)

// DefaultLayout returns the region bases the OS memory manager produces
// when the three regions are mapped in order (heap, small, OS) starting
// at base: each region is rounded up to the next 2MB boundary. Trace
// files recorded against this layout replay correctly in the simulator.
func (g *Generator) DefaultLayout(base addr.VAddr) (heap, small, os addr.VAddr) {
	round := func(b uint64) addr.VAddr { return addr.VAddr((b + (2<<20 - 1)) &^ uint64(2<<20-1)) }
	heap = base
	small = heap + round(g.HeapBytes())
	os = small + round(g.SmallBytes())
	return heap, small, os
}

// BindDefault is Bind with the canonical layout at MmapBase.
func (g *Generator) BindDefault() {
	g.Bind(g.DefaultLayout(MmapBase))
}

// Threads returns the number of application threads.
func (g *Generator) Threads() int { return g.p.Threads }

// SystemTID returns the thread id of the background system thread.
func (g *Generator) SystemTID() int { return g.p.Threads }

// zone returns the [base, size) the access lands in for an app thread:
// the shared heap slice, the thread's private slice, or (handled by the
// caller) the small/OS regions.
func (g *Generator) privateZone(tid int) (addr.VAddr, uint64) {
	heap := g.HeapBytes()
	shared := uint64(float64(heap) * g.p.SharedFrac)
	shared &^= 63
	per := (heap - shared) / uint64(g.p.Threads)
	per &^= 63
	return g.heapBase + addr.VAddr(shared) + addr.VAddr(uint64(tid)*per), per
}

func (g *Generator) sharedZone() (addr.VAddr, uint64) {
	shared := uint64(float64(g.HeapBytes()) * g.p.SharedFrac)
	shared &^= 63
	return g.heapBase, shared
}

// geometricGap draws a gap with the profile's mean, capped at 255.
func geometricGap(r *xrand.Rand, mean float64) uint8 {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	gap := 0
	for gap < 255 && r.Float64() > p {
		gap++
	}
	return uint8(gap)
}

// mix64 is splitmix64, used for deterministic pointer-chase jumps.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Next produces the next access of thread tid (0..Threads for app
// threads, SystemTID() for the system thread). It panics if the generator
// is unbound.
func (g *Generator) Next(tid int) trace.Record {
	if !g.bound {
		panic("workload: generator not bound to mapped regions")
	}
	r := g.rngs[tid]
	rec := trace.Record{TID: uint8(tid), Gap: geometricGap(r, g.p.MeanGap)}
	// Line-level temporal reuse: re-touch the previous access's cache
	// line at a different offset.
	if tid != g.SystemTID() && g.lastVA[tid] != 0 && r.Float64() < g.p.Repeat {
		rec.VA = g.lastVA[tid].LineBase() + addr.VAddr(r.Uint64()%8*8)
		if r.Float64() < g.p.Store {
			rec.Kind = trace.Store
		}
		g.lastVA[tid] = rec.VA
		return rec
	}
	if tid == g.SystemTID() {
		// System thread: works the OS region with a high store ratio
		// (kernel filling buffers). It concentrates on the same hot
		// slice the application reads, so its writes invalidate lines
		// the application has cached — the coherence traffic that
		// reaches even single-threaded workloads (Fig 11).
		size := g.OSBytes()
		if r.Float64() < 0.8 {
			size = size / 10
		}
		off := r.Uint64() % size
		rec.VA = g.osBase + addr.VAddr(off&^7)
		if r.Float64() < 0.5 {
			rec.Kind = trace.Store
		}
		return rec
	}
	x := r.Float64()
	switch {
	case x < g.p.OSShared:
		// Application touches of the OS-shared region reuse a hot
		// slice (the same syscall buffers, repeatedly) — the lines the
		// system thread's writes then invalidate.
		size := g.OSBytes()
		if r.Float64() < 0.8 {
			size = size / 10
		}
		off := r.Uint64() % size
		rec.VA = g.osBase + addr.VAddr(off&^7)
	case x < g.p.OSShared+g.p.SmallAccess:
		// Never-huge region: always a base-page access. Stacks and
		// small mappings are highly local: most accesses reuse a small
		// hot slice.
		size := g.SmallBytes()
		if r.Float64() < 0.85 {
			size = size / 32
		}
		off := r.Uint64() % size
		rec.VA = g.smallBase + addr.VAddr(off&^7)
	default:
		base, size := g.privateZone(tid)
		if g.p.Threads > 1 && r.Float64() < g.p.SharedFrac {
			base, size = g.sharedZone()
			// Shared data is hot: threads contend on the same locks,
			// queues, and tables, so most shared accesses reuse a small
			// slice — the lines that actually ping-pong between caches
			// and generate invalidation traffic (Fig 11).
			if hot := uint64(32 << 10); size > hot && r.Float64() < 0.75 {
				size = hot
			}
		}
		if size == 0 {
			base, size = g.privateZone(tid)
		}
		y := r.Float64()
		switch {
		case y < g.p.Seq:
			// Word-granularity streaming: ~8 accesses touch each line
			// before moving on, as real sequential scans do.
			g.seqCur[tid] = (g.seqCur[tid] + 8) % size
			rec.VA = base + addr.VAddr(g.seqCur[tid])
		case y < g.p.Seq+g.p.Chase:
			g.chaseAt[tid] = mix64(g.chaseAt[tid]+uint64(tid)+1) % size
			rec.VA = base + addr.VAddr(g.chaseAt[tid]&^7)
			rec.Dep = true
		default:
			hot := uint64(g.p.HotKB) << 10
			if hot > size || hot == 0 {
				hot = size
			}
			var off uint64
			if r.Float64() < g.p.HotProb {
				off = r.Uint64() % hot
			} else {
				off = r.Uint64() % size
			}
			rec.VA = base + addr.VAddr(off&^7)
		}
	}
	if !rec.Dep && g.rngs[tid].Float64() < g.p.Store {
		rec.Kind = trace.Store
	}
	g.lastVA[tid] = rec.VA
	return rec
}
