package workload

import (
	"testing"

	"seesaw/internal/xrand"
)

// advancedGen builds a bound generator with both data and code streams
// advanced to a non-trivial position.
func advancedGen(t *testing.T) *Generator {
	t.Helper()
	p, err := ByName("redis")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 11)
	g.BindDefault()
	g.BindCode(MmapBase + 1<<30)
	for i := 0; i < 500; i++ {
		g.Next(i % g.Threads())
		g.NextCode(i%g.Threads(), 4)
	}
	g.Next(g.SystemTID())
	return g
}

// TestGeneratorStateRoundTrip: a generator restored from a captured
// state emits exactly the data and code streams the original emits from
// the same position — every per-thread RNG, cursor, and chase position
// travelled.
func TestGeneratorStateRoundTrip(t *testing.T) {
	g := advancedGen(t)

	p, _ := ByName("redis")
	fresh := NewGenerator(p, 99) // different seed: SetState must reposition it
	fresh.BindDefault()
	fresh.BindCode(MmapBase + 1<<30)
	if err := fresh.SetState(g.State()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		tid := i % (g.Threads() + 1)
		a, b := g.Next(tid), fresh.Next(tid)
		if a != b {
			t.Fatalf("data stream diverged at %d: %+v vs %+v", i, a, b)
		}
		va0, j0 := g.NextCode(i%g.Threads(), 4)
		va1, j1 := fresh.NextCode(i%g.Threads(), 4)
		if va0 != va1 || j0 != j1 {
			t.Fatalf("code stream diverged at %d: %#x/%v vs %#x/%v", i, uint64(va0), j0, uint64(va1), j1)
		}
	}
}

// TestGeneratorStateRejections: thread-count and region mismatches are
// corrupt states, and a corrupt RNG position propagates up.
func TestGeneratorStateRejections(t *testing.T) {
	g := advancedGen(t)
	p, _ := ByName("redis")

	threads := g.State()
	threads.Srcs = threads.Srcs[:1]
	fresh := NewGenerator(p, 11)
	fresh.BindDefault()
	fresh.BindCode(MmapBase + 1<<30)
	if err := fresh.SetState(threads); err == nil {
		t.Error("accepted a state sized for fewer threads")
	}

	unbound := NewGenerator(p, 11)
	unbound.BindCode(MmapBase + 1<<30)
	if err := unbound.SetState(g.State()); err == nil {
		t.Error("accepted a bound state on an unbound generator")
	}

	noCode := NewGenerator(p, 11)
	noCode.BindDefault()
	if err := noCode.SetState(g.State()); err == nil {
		t.Error("accepted a code-bound state on a generator without code")
	}

	badSrc := g.State()
	badSrc.Srcs = append([]xrand.SourceState(nil), badSrc.Srcs...)
	badSrc.Srcs[0].Draws = 1 << 62
	if err := fresh.SetState(badSrc); err == nil {
		t.Error("accepted an RNG position past the replay bound")
	}
}

// TestGeneratorClone: the clone emits the original's exact future
// stream and the two diverge independently.
func TestGeneratorClone(t *testing.T) {
	g := advancedGen(t)
	c := g.Clone()
	for i := 0; i < 200; i++ {
		tid := i % (g.Threads() + 1)
		if a, b := g.Next(tid), c.Next(tid); a != b {
			t.Fatalf("clone stream diverged at %d: %+v vs %+v", i, a, b)
		}
	}
	// Advance only the clone; the original must not move.
	before := g.State()
	c.Next(0)
	after := g.State()
	if len(before.Srcs) > 0 && before.Srcs[0] != after.Srcs[0] {
		t.Error("advancing the clone moved the original's RNG")
	}
}
