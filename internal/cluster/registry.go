package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"seesaw/internal/service"
	"seesaw/internal/sim"
)

// worker is one registered seesaw-served process as the coordinator sees
// it. Mutable fields are guarded by the coordinator's mutex; the client
// is immutable and used outside it.
type worker struct {
	addr   string
	client *workerClient

	healthy     bool
	evicted     bool // crossed the failure threshold (vs never yet probed healthy)
	consecFails int
	slots       int // concurrent-cell capacity, from /healthz (workers field)
	active      int // leases currently held
	schema      int // worker's report schema version
	lastProbe   time.Time
	lastErr     string
}

func newWorker(addr string, probeTimeout time.Duration) *worker {
	return &worker{
		addr:   addr,
		client: newWorkerClient(addr, probeTimeout),
		slots:  1, // conservative until the first probe reports capacity
	}
}

// WorkerStatus is the wire form of one worker row (GET
// /v1/cluster/workers and the coordinator healthz).
type WorkerStatus struct {
	Addr        string `json:"addr"`
	Healthy     bool   `json:"healthy"`
	Slots       int    `json:"slots"`
	Active      int    `json:"active"`
	ConsecFails int    `json:"consec_fails,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// applyProbe folds one probe outcome into the registry: successes reset
// the failure streak and readmit evicted workers, failures count toward
// the eviction threshold, and crossing it cancels the worker's leases so
// their cells requeue immediately instead of waiting out the lease TTL.
func (c *Coordinator) applyProbe(w *worker, h *workerHealth, err error) {
	now := time.Now()
	if err == nil && h != nil && h.SchemaVersion != 0 && h.SchemaVersion != sim.SchemaVersion {
		// A worker speaking a different report schema cannot contribute to
		// byte-identical merged tables; hold it out of routing.
		err = fmt.Errorf("schema version %d, coordinator wants %d", h.SchemaVersion, sim.SchemaVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w.lastProbe = now
	if err != nil {
		w.lastErr = err.Error()
		w.consecFails++
		if w.healthy && w.consecFails >= c.cfg.EvictAfter {
			c.evictLocked(w, now)
		}
		return
	}
	w.lastErr = ""
	w.consecFails = 0
	if h.Workers > 0 {
		w.slots = h.Workers
	}
	w.schema = h.SchemaVersion
	if !w.healthy {
		w.healthy = true
		if w.evicted {
			w.evicted = false
			c.counters.WorkersReadmitted++
			c.cfg.Logger.Printf("cluster: readmitted worker %s (%d slots)", w.addr, w.slots)
		}
	}
}

// evictLocked marks a worker unhealthy, cancels its in-flight leases
// (their dispatch goroutines requeue the cells), and clears its affinity
// assignments so signatures re-home to surviving workers. Queued work is
// untouched. Callers hold the coordinator mutex.
func (c *Coordinator) evictLocked(w *worker, now time.Time) {
	w.healthy = false
	w.evicted = true
	c.counters.WorkersEvicted++
	canceled := 0
	for _, l := range c.leases {
		if l.w == w && l.reason == "" {
			l.reason = reasonEvicted
			c.counters.LeasesEvicted++
			l.cancel()
			canceled++
		}
	}
	if aff, ok := c.router.(*affinity); ok {
		for sig, owner := range aff.owners {
			if owner == w {
				delete(aff.owners, sig)
			}
		}
	}
	c.cfg.Logger.Printf("cluster: evicted worker %s after %d failed probes (%d leases canceled)", w.addr, w.consecFails, canceled)
}

// healthLoop probes every worker on the configured cadence. Probes run
// concurrently and off the coordinator mutex; evicted workers keep being
// probed so they readmit as soon as they recover.
func (c *Coordinator) healthLoop() {
	defer c.bg.Done()
	tick := time.NewTicker(c.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.rootCtx.Done():
			return
		case <-tick.C:
		}
		c.mu.Lock()
		ws := make([]*worker, 0, len(c.workers))
		for _, addr := range c.order {
			ws = append(ws, c.workers[addr])
		}
		c.mu.Unlock()
		done := make(chan struct{}, len(ws))
		for _, w := range ws {
			go func(w *worker) {
				h, err := w.client.probe(c.rootCtx)
				c.applyProbe(w, h, err)
				done <- struct{}{}
			}(w)
		}
		for range ws {
			<-done
		}
		c.wakeUp()
	}
}

// workerHealth is the subset of the worker's /healthz body the
// coordinator consumes.
type workerHealth struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	CellsRunning  int    `json:"cells_running"`
	SchemaVersion int    `json:"schema_version"`
}

// workerClient speaks the worker's HTTP surface: /healthz probes and the
// SSE-framed POST /v1/cells/run dispatch stream.
type workerClient struct {
	base         string
	http         *http.Client
	probeTimeout time.Duration
}

func newWorkerClient(addr string, probeTimeout time.Duration) *workerClient {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	// No overall client timeout: cell streams legitimately run for
	// minutes, bounded instead by heartbeat-renewed lease contexts.
	return &workerClient{base: base, http: &http.Client{}, probeTimeout: probeTimeout}
}

// probe fetches /healthz. Any transport error, non-200, or non-"ok"
// status (a draining worker refuses new cells) counts as a failed probe.
func (wc *workerClient) probe(ctx context.Context) (*workerHealth, error) {
	ctx, cancel := context.WithTimeout(ctx, wc.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wc.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := wc.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	var h workerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("healthz: status %q", h.Status)
	}
	return &h, nil
}

// runCell dispatches one cell and consumes its event stream, invoking
// onBeat for every heartbeat (the lease renewal) until the terminal
// result arrives. Cancel ctx to abandon the dispatch: the worker
// observes the disconnect and unwinds the cell.
func (wc *workerClient) runCell(ctx context.Context, spec service.CellSpec, leaseID string, hb time.Duration, onBeat func()) (*sim.Report, error) {
	body, err := json.Marshal(service.CellRunRequest{
		Cell:        spec,
		LeaseID:     leaseID,
		HeartbeatMS: int(hb / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wc.base+"/v1/cells/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wc.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := readErrorBody(resp)
		return nil, fmt.Errorf("cells/run: HTTP %d: %s", resp.StatusCode, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	// Result events carry whole reports (epoch series included); size the
	// line buffer for them.
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "heartbeat":
				onBeat()
			case "result":
				var res service.CellRunResult
				if err := json.Unmarshal([]byte(data), &res); err != nil {
					return nil, fmt.Errorf("cells/run: bad result: %w", err)
				}
				if res.Error != "" {
					return nil, &remoteCellError{msg: res.Error}
				}
				if res.Report == nil {
					return nil, fmt.Errorf("cells/run: result carried no report")
				}
				return res.Report, nil
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cells/run: stream: %w", err)
	}
	return nil, fmt.Errorf("cells/run: stream ended without a result")
}

// remoteCellError marks a cell the worker executed and reported failed —
// as opposed to a transport failure. Both consume a dispatch attempt
// (the failure may be the worker's: a poisoned box fails cells a healthy
// one would finish), but remote errors are surfaced verbatim once the
// attempt budget runs out.
type remoteCellError struct{ msg string }

func (e *remoteCellError) Error() string { return e.msg }

func readErrorBody(resp *http.Response) (string, error) {
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		return "", err
	}
	return eb.Error, nil
}
