// Package cluster shards the simulation service across worker processes:
// a coordinator fronts N seesaw-served workers behind the same /v1/jobs
// API one daemon serves, engineered so that any worker can crash, hang,
// or be restarted mid-cell and the sweep still finishes with
// byte-identical merged tables.
//
// The moving parts:
//
//   - Leases. Every dispatched cell is covered by an expiring lease.
//     The worker streams heartbeat events while the cell runs (POST
//     /v1/cells/run); each heartbeat renews the lease. A crashed worker
//     resets the stream, a wedged worker stops heartbeating — either
//     way the lease's deadline passes, the dispatch is canceled, and
//     the cell is requeued exactly once per lease, capped by a per-cell
//     attempt budget with jittered exponential backoff.
//   - Health. Workers are registered (statically or via POST
//     /v1/cluster/workers, which seesaw-served -register drives) and
//     probed on a cadence; a consecutive-failure threshold evicts a
//     worker — its in-flight leases requeue, its queued work is
//     untouched — and a later successful probe readmits it. A worker
//     whose report schema differs from the coordinator's is refused:
//     mixed-version clusters cannot merge byte-identical tables.
//   - Routing. Pluggable policies pick the worker for each dispatch:
//     round-robin, least-loaded, and warmup-signature affinity, which
//     routes cells sharing a machine.WarmupSignature to the worker
//     already holding the forked warm snapshot (the analogue of
//     prefix-affinity KV-cache routing in inference clusters) and falls
//     back to least-loaded when that worker dies.
//   - Admission. Job submissions pass a token bucket; past the rate the
//     API answers 429 with a Retry-After hint, exactly like the single
//     daemon's bounded queue.
//   - The store. The content-addressed result store is the shared
//     read-through cache: the coordinator answers previously computed
//     cells without dispatching, duplicate cells piggyback on the one
//     in-flight lease, and a coordinator restarted mid-sweep resumes
//     from whatever the workers already persisted.
package cluster

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"seesaw/internal/runner"
	"seesaw/internal/service"
	"seesaw/internal/sim"
	"seesaw/internal/store"
)

// Config sizes and wires one Coordinator.
type Config struct {
	// Store is the shared content-addressed result store (strongly
	// recommended: it is what makes re-dispatched and duplicate cells
	// free, and what lets a restarted coordinator resume a sweep).
	Store *store.Store
	// Workers are statically registered worker addresses (host:port);
	// more may register themselves at runtime.
	Workers []string
	// LeaseTTL is how long a dispatched cell may go without a heartbeat
	// before its lease expires and the cell requeues (default 10s).
	LeaseTTL time.Duration
	// MaxAttempts is the per-cell dispatch budget: a cell whose lease
	// fails this many times is reported failed (default 5).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the jittered exponential delay before
	// a requeued cell redispatches (defaults 250ms / 8s); Seed seeds the
	// jitter stream.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64
	// Route picks the routing policy: "affinity" (default),
	// "least-loaded", or "round-robin".
	Route string
	// ProbeEvery and ProbeTimeout shape health checks (defaults 2s/1s);
	// EvictAfter is the consecutive-failure eviction threshold
	// (default 3).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	EvictAfter   int
	// RatePerSec admits this many job submissions per second through a
	// token bucket of capacity Burst (0 = unlimited).
	RatePerSec float64
	Burst      int
	// MaxCellsPerJob bounds one submission (default 4096) and
	// MaxQueuedCells the coordinator-wide pending queue (default 65536,
	// the backpressure bound behind 429).
	MaxCellsPerJob int
	MaxQueuedCells int
	// Logger receives dispatch, eviction, and lease-expiry lines.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * time.Second
	}
	if c.Route == "" {
		c.Route = RouteAffinity
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.MaxCellsPerJob <= 0 {
		c.MaxCellsPerJob = 4096
	}
	if c.MaxQueuedCells <= 0 {
		c.MaxQueuedCells = 65536
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// Counters are the coordinator's lifetime scheduling outcomes; every
// requeue, eviction, and store hit is accounted here, which is what the
// chaos test audits against the per-job results.
type Counters struct {
	JobsAccepted    uint64 `json:"jobs_accepted"`
	JobsRateLimited uint64 `json:"jobs_rate_limited"`
	JobsQueueFull   uint64 `json:"jobs_queue_full"`

	CellsTotal    uint64 `json:"cells_total"`
	CellsDone     uint64 `json:"cells_done"`
	CellsFailed   uint64 `json:"cells_failed"`
	CellsCanceled uint64 `json:"cells_canceled"`

	StoreHits  uint64 `json:"store_hits"`
	DupHits    uint64 `json:"dup_hits"`
	RemoteRuns uint64 `json:"remote_runs"`

	LeasesGranted   uint64 `json:"leases_granted"`
	LeasesRenewed   uint64 `json:"leases_renewed"`
	LeasesExpired   uint64 `json:"leases_expired"`
	LeasesEvicted   uint64 `json:"leases_evicted"`
	DispatchErrors  uint64 `json:"dispatch_errors"`
	Requeues        uint64 `json:"requeues"`
	BudgetExhausted uint64 `json:"budget_exhausted"`

	WorkersRegistered uint64 `json:"workers_registered"`
	WorkersEvicted    uint64 `json:"workers_evicted"`
	WorkersReadmitted uint64 `json:"workers_readmitted"`

	AffinityHits       uint64 `json:"affinity_hits"`
	AffinityReassigned uint64 `json:"affinity_reassigned"`
}

// Coordinator is the cluster front end: the job registry, pending-cell
// queue, lease table, worker registry, and the scheduling loop over
// them. Construct with New, serve Handler, stop with Drain or Close.
type Coordinator struct {
	cfg    Config
	router router
	bucket *tokenBucket

	rootCtx    context.Context
	rootCancel context.CancelFunc
	bg         sync.WaitGroup
	wake       chan struct{}

	mu       sync.Mutex
	workers  map[string]*worker
	order    []string // worker registration order, for deterministic routing scans
	jobs     map[string]*cjob
	jobOrder []string
	seq      int
	queue    []*unit
	leases   map[string]*lease
	leaseSeq int
	// dupWait holds, per canonical cell key with an in-flight lease, the
	// identical queued units waiting to share its result.
	dupWait  map[string][]*unit
	rng      *rand.Rand
	counters Counters
	draining bool
}

// New builds the coordinator, registers cfg.Workers, and starts the
// scheduler and health-monitor loops.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		rootCtx:    ctx,
		rootCancel: cancel,
		wake:       make(chan struct{}, 1),
		workers:    make(map[string]*worker),
		jobs:       make(map[string]*cjob),
		leases:     make(map[string]*lease),
		dupWait:    make(map[string][]*unit),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
	switch cfg.Route {
	case RouteRoundRobin:
		c.router = &roundRobin{}
	case RouteLeastLoaded:
		c.router = &leastLoaded{}
	case RouteAffinity:
		c.router = newAffinity()
	default:
		// Unknown policies degrade to least-loaded rather than failing a
		// daemon that is otherwise fine; the choice is logged once.
		cfg.Logger.Printf("cluster: unknown route policy %q, using %s", cfg.Route, RouteLeastLoaded)
		c.router = &leastLoaded{}
	}
	if cfg.RatePerSec > 0 {
		c.bucket = newTokenBucket(cfg.RatePerSec, float64(cfg.Burst))
	}
	for _, addr := range cfg.Workers {
		c.Register(addr)
	}
	c.bg.Add(2)
	go c.schedulerLoop()
	go c.healthLoop()
	return c
}

// wakeUp nudges the scheduler without blocking.
func (c *Coordinator) wakeUp() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Counters snapshots the lifetime scheduling counters.
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Submit validates and enqueues one job, returning its id.
func (c *Coordinator) Submit(req service.JobRequest) (string, error) {
	if len(req.Cells) == 0 {
		return "", &badRequestError{"job has no cells"}
	}
	if len(req.Cells) > c.cfg.MaxCellsPerJob {
		return "", &badRequestError{fmt.Sprintf("job has %d cells, limit %d", len(req.Cells), c.cfg.MaxCellsPerJob)}
	}
	cfgs := make([]sim.Config, len(req.Cells))
	for i, spec := range req.Cells {
		cfg, err := spec.Config()
		if err != nil {
			return "", &badRequestError{fmt.Sprintf("cell %d: %v", i, err)}
		}
		cfgs[i] = cfg
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return "", ErrDraining
	}
	if c.bucket != nil {
		if ok, retry := c.bucket.take(); !ok {
			c.counters.JobsRateLimited++
			return "", &RateLimitedError{RetryAfter: retry}
		}
	}
	if len(c.queue)+len(req.Cells) > c.cfg.MaxQueuedCells {
		c.counters.JobsQueueFull++
		return "", &RateLimitedError{RetryAfter: time.Second, queueFull: true}
	}
	c.seq++
	id := fmt.Sprintf("c%06d", c.seq)
	j := newCJob(id, req.Label, len(cfgs), c.rootCtx, time.Now())
	for i, cfg := range cfgs {
		u := &unit{
			job:   j,
			index: i,
			spec:  req.Cells[i],
			cfg:   cfg,
			desc:  runner.Describe(cfg),
		}
		u.key, _ = cfg.CanonicalKey()
		if cfg.WarmupRefs > 0 && cfg.Trace == nil {
			u.sig, u.hasSig = cfg.WarmupSignature(), true
		}
		j.units[i] = u
		j.results[i] = service.CellResult{Index: i, Desc: u.desc, Status: "pending"}
		c.queue = append(c.queue, u)
	}
	c.jobs[id] = j
	c.jobOrder = append(c.jobOrder, id)
	c.counters.JobsAccepted++
	c.counters.CellsTotal += uint64(len(cfgs))
	j.setState(service.StateRunning, time.Now())
	c.wakeUp()
	return id, nil
}

// Cancel cancels a job: queued cells complete as canceled at the next
// scheduler pass, leased cells have their dispatch canceled.
func (c *Coordinator) Cancel(id string) (service.JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return service.JobStatus{}, ErrNotFound
	}
	j.cancel()
	c.mu.Unlock()
	c.wakeUp()
	c.mu.Lock()
	defer c.mu.Unlock()
	return j.status(false), nil
}

// Status returns one job's status.
func (c *Coordinator) Status(id string, withResults bool) (service.JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return service.JobStatus{}, ErrNotFound
	}
	return j.status(withResults), nil
}

// Register adds (or refreshes) a worker by address. A new worker is
// probed before it is routed to; a known worker re-registering is
// scheduled for an immediate probe, which is how a restarted worker
// readmits quickly. A worker whose report schema version disagrees with
// the coordinator's is registered but held unhealthy.
func (c *Coordinator) Register(addr string) error {
	if addr == "" {
		return &badRequestError{"empty worker address"}
	}
	c.mu.Lock()
	w, known := c.workers[addr]
	if !known {
		w = newWorker(addr, c.cfg.ProbeTimeout)
		c.workers[addr] = w
		c.order = append(c.order, addr)
		c.counters.WorkersRegistered++
	}
	c.mu.Unlock()
	// Probe outside the lock; apply the result like the health loop does.
	h, err := w.client.probe(c.rootCtx)
	c.applyProbe(w, h, err)
	c.wakeUp()
	if !known {
		c.cfg.Logger.Printf("cluster: registered worker %s (healthy=%v)", addr, err == nil)
	}
	return nil
}

// Drain stops intake (submissions get 503) and waits until every job has
// reached a terminal state, or ctx expires — in which case remaining
// jobs are canceled.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		idle := true
		for _, j := range c.jobs {
			if !terminalState(j.state) {
				idle = false
				break
			}
		}
		c.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			c.rootCancel()
			return fmt.Errorf("cluster: drain deadline: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// Close cancels every lease and job and stops the background loops.
func (c *Coordinator) Close() {
	c.rootCancel()
	c.bg.Wait()
}

// backoffDelay computes the jittered exponential requeue delay before
// dispatch attempt n+1, given n completed attempts. Callers hold mu.
func (c *Coordinator) backoffDelay(attempts int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < attempts && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// Errors mirrored from the single-daemon service so the HTTP layer maps
// them to the same status codes.
var (
	ErrDraining = service.ErrDraining
	ErrNotFound = service.ErrNotFound
)

// RateLimitedError is Submit's 429: the token bucket is empty or the
// pending-cell queue is at capacity. RetryAfter is the client hint.
type RateLimitedError struct {
	RetryAfter time.Duration
	queueFull  bool
}

func (e *RateLimitedError) Error() string {
	if e.queueFull {
		return "cluster: pending-cell queue full"
	}
	return "cluster: job admission rate exceeded"
}

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func terminalState(state string) bool {
	return state == service.StateDone || state == service.StateFailed || state == service.StateCanceled
}
