package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seesaw/internal/service"
)

// instantSleeps replaces the client's wait seam with a recorder.
func instantSleeps(c *Client) *[]time.Duration {
	var waits []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return ctx.Err()
	}
	return &waits
}

// TestClientSubmitHonorsRetryAfter: 429s are paced out per the server's
// Retry-After hint, not surfaced as failures.
func TestClientSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"c000001","state":"running"}`)
	}))
	defer ts.Close()
	cl := NewClient(ts.URL)
	waits := instantSleeps(cl)
	st, err := cl.Submit(context.Background(), service.JobRequest{Cells: []service.CellSpec{{Workload: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "c000001" {
		t.Fatalf("got %+v", st)
	}
	if len(*waits) != 2 || (*waits)[0] != 3*time.Second || (*waits)[1] != 3*time.Second {
		t.Fatalf("waits = %v, want [3s 3s]", *waits)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d submits, want 3", calls.Load())
	}
}

// TestClientSubmitGivesUpEventually: a server that never admits exhausts
// SubmitAttempts.
func TestClientSubmitGivesUpEventually(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"nope"}`)
	}))
	defer ts.Close()
	cl := NewClient(ts.URL)
	cl.SubmitAttempts = 3
	instantSleeps(cl)
	if _, err := cl.Submit(context.Background(), service.JobRequest{Cells: []service.CellSpec{{Workload: "x"}}}); err == nil {
		t.Fatal("expected rate-limit exhaustion error")
	}
}

// TestClientStreamReconnects: a stream severed mid-job reconnects with
// Last-Event-ID and the caller sees every event exactly once.
func TestClientStreamReconnects(t *testing.T) {
	events := []service.Event{
		{Seq: 1, Type: "state", State: "running"},
		{Seq: 2, Type: "cell", Index: 0, OK: true},
		{Seq: 3, Type: "cell", Index: 1, OK: true},
		{Seq: 4, Type: "done", State: "done"},
	}
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		last := 0
		fmt.Sscanf(r.Header.Get("Last-Event-ID"), "%d", &last)
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		for _, ev := range events {
			if ev.Seq <= last {
				continue
			}
			if n == 1 && ev.Seq > 2 {
				return // first connection dies after two events
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: {\"type\":%q,\"index\":%d}\n\n", ev.Seq, ev.Type, ev.Type, ev.Index)
			fl.Flush()
		}
	}))
	defer ts.Close()
	cl := NewClient(ts.URL)
	instantSleeps(cl)
	var got []int
	if err := cl.Stream(context.Background(), "c000001", func(ev service.Event) {
		got = append(got, ev.Seq)
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("events seen %v, want [1 2 3 4] exactly once each", got)
	}
	if conns.Load() != 2 {
		t.Fatalf("stream used %d connections, want 2", conns.Load())
	}
	hdrsSeen := conns.Load()
	_ = hdrsSeen
}

// TestClientStreamStopsOnNotFound: a 404 is terminal, not retried.
func TestClientStreamStopsOnNotFound(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job"}`)
	}))
	defer ts.Close()
	cl := NewClient(ts.URL)
	instantSleeps(cl)
	err := cl.Stream(context.Background(), "nope", func(service.Event) {})
	if err == nil {
		t.Fatal("expected 404 error")
	}
}

// TestTokenBucket exercises refill arithmetic on a fake clock.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(2, 2) // 2/sec, burst 2
	b.now = func() time.Time { return now }
	b.last = now
	if ok, _ := b.take(); !ok {
		t.Fatal("burst token 1 refused")
	}
	if ok, _ := b.take(); !ok {
		t.Fatal("burst token 2 refused")
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 500ms]", retry)
	}
	now = now.Add(time.Second) // refills 2 tokens
	if ok, _ := b.take(); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := b.take(); !ok {
		t.Fatal("second refilled token refused")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("over-refilled past burst")
	}
}

// TestRouters exercises the pick policies over a hand-built registry.
func TestRouters(t *testing.T) {
	c := &Coordinator{workers: map[string]*worker{}, cfg: Config{}.withDefaults()}
	add := func(addr string, slots, active int, healthy bool) *worker {
		w := &worker{addr: addr, slots: slots, active: active, healthy: healthy}
		c.workers[addr] = w
		c.order = append(c.order, addr)
		return w
	}
	w1 := add("a:1", 2, 2, true)  // full
	w2 := add("b:1", 4, 1, true)  // 3 free
	w3 := add("c:1", 2, 0, false) // dead
	w4 := add("d:1", 2, 1, true)  // 1 free

	u := &unit{}
	if got := (leastLoaded{}).pick(c, u); got != w2 {
		t.Fatalf("least-loaded picked %v", got)
	}
	rr := &roundRobin{}
	if got := rr.pick(c, u); got != w2 {
		t.Fatalf("round-robin first pick %v (a is full, c dead)", got)
	}
	if got := rr.pick(c, u); got != w4 {
		t.Fatalf("round-robin second pick %v", got)
	}

	// Affinity: first signed cell elects an owner; followers stick to it;
	// owner saturation means wait; owner death re-elects.
	a := newAffinity()
	su := &unit{hasSig: true}
	su.sig.Seed = 7
	if got := a.pick(c, su); got != w2 {
		t.Fatalf("affinity elected %v", got)
	}
	w2.active = w2.slots
	if got := a.pick(c, su); got != nil {
		t.Fatalf("affinity should wait for saturated owner, picked %v", got)
	}
	w2.active = 1
	if got := a.pick(c, su); got != w2 {
		t.Fatal("affinity abandoned its owner")
	}
	w2.healthy = false
	if got := a.pick(c, su); got != w4 {
		t.Fatalf("affinity failed to re-home after owner death, picked %v", got)
	}
	if c.counters.AffinityReassigned == 0 {
		t.Fatal("reassignment not counted")
	}
	_, _ = w1, w3
}
