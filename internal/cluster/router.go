package cluster

import (
	"time"

	"seesaw/internal/machine"
)

// Routing policy names accepted by Config.Route.
const (
	RouteRoundRobin  = "round-robin"
	RouteLeastLoaded = "least-loaded"
	RouteAffinity    = "affinity"
)

// router picks the worker for one dispatchable unit. Called under the
// coordinator mutex; returning nil leaves the unit queued for the next
// pass. Policies may keep state (rotation cursors, affinity maps) —
// there is exactly one router per coordinator.
type router interface {
	pick(c *Coordinator, u *unit) *worker
	name() string
}

// hasSlot reports whether w can take one more lease.
func hasSlot(w *worker) bool {
	return w.healthy && w.active < w.slots
}

// roundRobin rotates through workers with free slots in registration
// order, ignoring load differences — the baseline policy.
type roundRobin struct{ next int }

func (r *roundRobin) name() string { return RouteRoundRobin }

func (r *roundRobin) pick(c *Coordinator, _ *unit) *worker {
	n := len(c.order)
	for i := 0; i < n; i++ {
		w := c.workers[c.order[(r.next+i)%n]]
		if hasSlot(w) {
			r.next = (r.next + i + 1) % n
			return w
		}
	}
	return nil
}

// leastLoaded picks the worker with the most free slots (ties broken by
// registration order, keeping scans deterministic).
type leastLoaded struct{}

func (leastLoaded) name() string { return RouteLeastLoaded }

func (leastLoaded) pick(c *Coordinator, _ *unit) *worker {
	var best *worker
	bestFree := 0
	for _, addr := range c.order {
		w := c.workers[addr]
		if !hasSlot(w) {
			continue
		}
		if free := w.slots - w.active; free > bestFree {
			best, bestFree = w, free
		}
	}
	return best
}

// affinity routes cells sharing a machine.WarmupSignature to the worker
// that already warmed that machine: the first cell of a signature elects
// whichever worker least-loaded picks as the signature's owner, and
// every later cell follows — landing in the worker's shared-warmup run
// function, which forks the warm snapshot instead of re-warming. If the
// owner is saturated the cell waits (a queued cell is cheaper than a
// redundant multi-second warmup); if the owner was evicted the next cell
// re-elects an owner among the living and the sweep continues with one
// re-warm — the clean fallback the failure matrix demands. Cells without
// a signature (no warmup, trace replay) fall through to least-loaded.
type affinity struct {
	owners map[machine.WarmupSignature]*worker
	spill  leastLoaded
	// lastSweep drops stale assignments so a long-lived coordinator's
	// owner map cannot grow without bound.
	lastSweep time.Time
}

func newAffinity() *affinity {
	return &affinity{owners: make(map[machine.WarmupSignature]*worker)}
}

func (a *affinity) name() string { return RouteAffinity }

func (a *affinity) pick(c *Coordinator, u *unit) *worker {
	if !u.hasSig {
		return a.spill.pick(c, u)
	}
	if owner, ok := a.owners[u.sig]; ok {
		if owner.healthy {
			if !hasSlot(owner) {
				return nil // wait for the warm worker rather than re-warm elsewhere
			}
			c.counters.AffinityHits++
			return owner
		}
		// Owner died between eviction cleanup and now; fall through to
		// re-election.
		delete(a.owners, u.sig)
		c.counters.AffinityReassigned++
	}
	w := a.spill.pick(c, u)
	if w != nil {
		a.owners[u.sig] = w
	}
	return w
}
