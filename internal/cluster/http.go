package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"seesaw/internal/service"
	"seesaw/internal/sim"
)

// Handler serves the coordinator's HTTP surface: the single-daemon
// /v1/jobs API (clients need not know whether they talk to one worker or
// a fleet) plus the cluster-only worker registry endpoints.
//
//	POST   /v1/jobs              submit; 202, 429 + Retry-After, 503 draining
//	GET    /v1/jobs              list job summaries
//	GET    /v1/jobs/{id}         status (+results unless results=0)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/stream  SSE progress (Last-Event-ID resume)
//	POST   /v1/cluster/workers   register a worker {"addr": "host:port"}
//	GET    /v1/cluster/workers   worker registry snapshot
//	GET    /healthz              coordinator + fleet health
//	GET    /metrics              Prometheus text exposition
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", c.handleStream)
	mux.HandleFunc("POST /v1/cluster/workers", c.handleRegister)
	mux.HandleFunc("GET /v1/cluster/workers", c.handleWorkers)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.JobRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad job JSON: " + err.Error()})
		return
	}
	id, err := c.Submit(req)
	if err == nil {
		st, _ := c.Status(id, false)
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	var rl *RateLimitedError
	var br *badRequestError
	switch {
	case errors.As(err, &rl):
		secs := int(math.Ceil(rl.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.As(err, &br):
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]service.JobStatus, 0, len(c.jobOrder))
	for _, id := range c.jobOrder {
		out = append(out, c.jobs[id].status(false))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := c.Status(r.PathValue("id"), r.URL.Query().Get("results") != "0")
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := c.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream mirrors the single-daemon SSE stream: replay history past
// Last-Event-ID, then tail live events until "done".
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	if !ok {
		c.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{ErrNotFound.Error()})
		return
	}
	fl, flok := w.(http.Flusher)
	if !flok {
		c.mu.Unlock()
		writeJSON(w, http.StatusInternalServerError, errorBody{"streaming unsupported"})
		return
	}
	// Capacity covers everything the job can still publish: state
	// transitions plus, per cell, one completion and up to MaxAttempts-1
	// requeue events.
	ch := make(chan service.Event, len(j.units)*c.cfg.MaxAttempts+4)
	history := j.subscribe(ch)
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		j.unsubscribe(ch)
		c.mu.Unlock()
	}()
	lastID, _ := strconv.Atoi(r.Header.Get("Last-Event-ID"))
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev service.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return ev.Type != "done"
	}
	for _, ev := range history {
		if ev.Seq <= lastID {
			continue
		}
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !send(ev) {
				return
			}
		}
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad register JSON: " + err.Error()})
		return
	}
	if err := c.Register(req.Addr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, c.workerStatuses())
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.workerStatuses())
}

func (c *Coordinator) workerStatuses() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.order))
	for _, addr := range c.order {
		w := c.workers[addr]
		out = append(out, WorkerStatus{
			Addr: w.addr, Healthy: w.healthy, Slots: w.slots,
			Active: w.active, ConsecFails: w.consecFails, LastError: w.lastErr,
		})
	}
	return out
}

// healthBody is the coordinator's GET /healthz payload.
type healthBody struct {
	Status        string         `json:"status"` // "ok" or "draining"
	SchemaVersion int            `json:"schema_version"`
	Route         string         `json:"route"`
	Queued        int            `json:"queued"`
	Leases        int            `json:"leases"`
	Jobs          int            `json:"jobs"`
	Workers       []WorkerStatus `json:"workers"`
	Counters      Counters       `json:"counters"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	h := healthBody{
		Status:        "ok",
		SchemaVersion: sim.SchemaVersion,
		Route:         c.router.name(),
		Queued:        len(c.queue),
		Leases:        len(c.leases),
		Jobs:          len(c.jobs),
		Counters:      c.counters,
	}
	if c.draining {
		h.Status = "draining"
	}
	for _, addr := range c.order {
		wk := c.workers[addr]
		h.Workers = append(h.Workers, WorkerStatus{
			Addr: wk.addr, Healthy: wk.healthy, Slots: wk.slots,
			Active: wk.active, ConsecFails: wk.consecFails, LastError: wk.lastErr,
		})
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics exposes the scheduling counters in Prometheus text
// format — the audit trail the failure-matrix tests assert against.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	ct := c.counters
	queued := len(c.queue)
	leases := len(c.leases)
	jobs := len(c.jobs)
	healthy := 0
	for _, wk := range c.workers {
		if wk.healthy {
			healthy++
		}
	}
	total := len(c.workers)
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(name, help, typ string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	p("seesaw_coord_jobs_accepted_total", "Jobs admitted.", "counter", ct.JobsAccepted)
	p("seesaw_coord_jobs_rate_limited_total", "Submissions refused by the token bucket.", "counter", ct.JobsRateLimited)
	p("seesaw_coord_jobs_queue_full_total", "Submissions refused by the queue bound.", "counter", ct.JobsQueueFull)
	p("seesaw_coord_cells_total", "Cells accepted.", "counter", ct.CellsTotal)
	p("seesaw_coord_cells_done_total", "Cells completed successfully.", "counter", ct.CellsDone)
	p("seesaw_coord_cells_failed_total", "Cells failed after exhausting their budget.", "counter", ct.CellsFailed)
	p("seesaw_coord_cells_canceled_total", "Cells canceled with their job.", "counter", ct.CellsCanceled)
	p("seesaw_coord_store_hits_total", "Cells answered from the shared store.", "counter", ct.StoreHits)
	p("seesaw_coord_dup_hits_total", "Cells that piggybacked on an in-flight lease.", "counter", ct.DupHits)
	p("seesaw_coord_remote_runs_total", "Cells computed by workers.", "counter", ct.RemoteRuns)
	p("seesaw_coord_leases_granted_total", "Leases granted.", "counter", ct.LeasesGranted)
	p("seesaw_coord_leases_renewed_total", "Lease renewals (heartbeats).", "counter", ct.LeasesRenewed)
	p("seesaw_coord_leases_expired_total", "Leases expired for missed heartbeats.", "counter", ct.LeasesExpired)
	p("seesaw_coord_leases_evicted_total", "Leases canceled by worker eviction.", "counter", ct.LeasesEvicted)
	p("seesaw_coord_dispatch_errors_total", "Dispatches that failed without lease expiry.", "counter", ct.DispatchErrors)
	p("seesaw_coord_requeues_total", "Cells returned to the queue after a failed lease.", "counter", ct.Requeues)
	p("seesaw_coord_budget_exhausted_total", "Cells failed at the attempt budget.", "counter", ct.BudgetExhausted)
	p("seesaw_coord_workers_registered_total", "Workers ever registered.", "counter", ct.WorkersRegistered)
	p("seesaw_coord_workers_evicted_total", "Worker evictions.", "counter", ct.WorkersEvicted)
	p("seesaw_coord_workers_readmitted_total", "Worker readmissions.", "counter", ct.WorkersReadmitted)
	p("seesaw_coord_affinity_hits_total", "Dispatches routed to the warm owner.", "counter", ct.AffinityHits)
	p("seesaw_coord_affinity_reassigned_total", "Warmup signatures re-homed after worker loss.", "counter", ct.AffinityReassigned)
	p("seesaw_coord_queue_cells", "Cells pending dispatch.", "gauge", uint64(queued))
	p("seesaw_coord_leases_active", "Leases currently held.", "gauge", uint64(leases))
	p("seesaw_coord_jobs", "Jobs known.", "gauge", uint64(jobs))
	p("seesaw_coord_workers_healthy", "Workers currently healthy.", "gauge", uint64(healthy))
	p("seesaw_coord_workers", "Workers registered.", "gauge", uint64(total))
}
