package cluster

import (
	"context"
	"fmt"
	"time"

	"seesaw/internal/service"
	"seesaw/internal/sim"
)

// Lease failure reasons. A lease's reason is set exactly once, under the
// coordinator mutex, by whichever party gives up on it first; the
// dispatch goroutine reads it when the canceled HTTP stream unwinds.
const (
	reasonExpired = "lease expired" // heartbeats stopped (crashed or wedged worker)
	reasonEvicted = "worker evicted"
	reasonRemote  = "remote error" // transport or worker-reported failure
)

// lease covers one dispatched cell on one worker. Its context is a child
// of the job's, so job cancellation unwinds the dispatch; expiry and
// eviction cancel it with a reason. All requeue decisions happen in
// settle, on the single dispatch goroutine that owns the lease — the
// scheduler only ever cancels, which is what makes "requeue exactly once
// per lease" structural rather than a convention.
type lease struct {
	id       string
	u        *unit
	w        *worker
	deadline time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	reason   string
}

// schedulerLoop drives dispatching: it wakes on submissions, settlements,
// probe results, and a safety tick that also sweeps expired leases.
func (c *Coordinator) schedulerLoop() {
	defer c.bg.Done()
	every := c.cfg.LeaseTTL / 4
	if every > 250*time.Millisecond {
		every = 250 * time.Millisecond
	}
	if every < time.Millisecond {
		every = time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-c.rootCtx.Done():
			return
		case <-c.wake:
		case <-tick.C:
		}
		c.step()
	}
}

// step is one scheduling pass: expire overdue leases, then walk the
// pending queue in submission order resolving each cell the cheapest way
// available — store hit, duplicate-lease piggyback, or dispatch to a
// routed worker. Cells it cannot place (backoff pending, no worker with
// a free slot) stay queued in order.
func (c *Coordinator) step() {
	now := time.Now()
	var dispatches []*lease
	c.mu.Lock()
	for _, l := range c.leases {
		if l.reason == "" && now.After(l.deadline) {
			l.reason = reasonExpired
			c.counters.LeasesExpired++
			c.cfg.Logger.Printf("cluster: lease %s expired on %s (cell %s[%d])", l.id, l.w.addr, l.u.job.id, l.u.index)
			l.cancel()
		}
	}
	var rest []*unit
	for _, u := range c.queue {
		if u.state != unitPending {
			continue // settled while queued (job cancel)
		}
		if u.job.ctx.Err() != nil {
			c.counters.CellsCanceled++
			u.job.completeUnit(u, nil, u.job.ctx.Err(), now)
			continue
		}
		if now.Before(u.readyAt) {
			rest = append(rest, u)
			continue
		}
		if u.key != "" {
			// Read-through: previously computed cells — this sweep, another
			// job, a worker's own store put, a coordinator life before a
			// restart — resolve without dispatching.
			if c.cfg.Store != nil {
				if rep, ok := c.cfg.Store.Get(u.cfg); ok {
					u.job.storeHits++
					c.counters.StoreHits++
					c.counters.CellsDone++
					u.job.completeUnit(u, rep, nil, now)
					continue
				}
			}
			if _, inflight := c.dupWait[u.key]; inflight {
				c.dupWait[u.key] = append(c.dupWait[u.key], u)
				u.state = unitWaiting
				u.job.dupHits++
				c.counters.DupHits++
				continue
			}
		}
		w := c.router.pick(c, u)
		if w == nil {
			rest = append(rest, u)
			continue
		}
		dispatches = append(dispatches, c.grantLocked(u, w, now))
	}
	c.queue = rest
	c.mu.Unlock()
	for _, l := range dispatches {
		go c.dispatch(l)
	}
}

// grantLocked creates the lease for u on w. Callers hold the mutex.
func (c *Coordinator) grantLocked(u *unit, w *worker, now time.Time) *lease {
	c.leaseSeq++
	ctx, cancel := context.WithCancel(u.job.ctx)
	l := &lease{
		id:       fmt.Sprintf("l%06d", c.leaseSeq),
		u:        u,
		w:        w,
		deadline: now.Add(c.cfg.LeaseTTL),
		ctx:      ctx,
		cancel:   cancel,
	}
	u.state = unitInflight
	u.attempts++
	w.active++
	c.leases[l.id] = l
	c.counters.LeasesGranted++
	if u.key != "" {
		c.dupWait[u.key] = nil // mark in-flight; duplicates park here
	}
	return l
}

// dispatch runs one lease to completion on its goroutine: stream the
// cell from the worker, renewing the lease on every heartbeat, then
// settle whatever happened. It always reaches settle — a canceled lease
// context unwinds the HTTP stream.
func (c *Coordinator) dispatch(l *lease) {
	hb := c.cfg.LeaseTTL / 3
	if hb < time.Millisecond {
		hb = time.Millisecond
	}
	rep, err := l.w.client.runCell(l.ctx, l.u.spec, l.id, hb, func() {
		c.mu.Lock()
		if _, live := c.leases[l.id]; live && l.reason == "" {
			l.deadline = time.Now().Add(c.cfg.LeaseTTL)
			c.counters.LeasesRenewed++
		}
		c.mu.Unlock()
	})
	c.settle(l, rep, err)
	l.cancel()
	c.wakeUp()
}

// settle resolves one finished lease: success completes the cell and
// releases any duplicate waiters with the same report; failure either
// requeues the cell with backoff (once — this is the only requeue site,
// and this goroutine owns the lease) or, with the attempt budget
// exhausted, fails it. Waiters always requeue on failure: their own
// budgets are untouched.
func (c *Coordinator) settle(l *lease, rep *sim.Report, err error) {
	u := l.u
	now := time.Now()
	c.mu.Lock()
	delete(c.leases, l.id)
	l.w.active--
	waiters := c.dupWait[u.key]
	if u.key != "" {
		delete(c.dupWait, u.key)
	}
	if err == nil {
		u.job.runs++
		c.counters.RemoteRuns++
		c.counters.CellsDone++
		u.job.completeUnit(u, rep, nil, now)
		for _, du := range waiters {
			du.state = unitPending
			if du.job.ctx.Err() != nil {
				c.counters.CellsCanceled++
				du.job.completeUnit(du, nil, du.job.ctx.Err(), now)
				continue
			}
			c.counters.CellsDone++
			du.job.completeUnit(du, rep, nil, now)
		}
		c.mu.Unlock()
		// The worker's pool already put the report; this covers workers
		// running storeless.
		if c.cfg.Store != nil && u.key != "" {
			if perr := c.cfg.Store.Put(u.cfg, rep); perr != nil {
				c.cfg.Logger.Printf("cluster: store put: %v", perr)
			}
		}
		return
	}
	defer c.mu.Unlock()
	// Requeue duplicate waiters regardless of what happens to u; the next
	// scheduling pass re-resolves them (store, new dup lease, dispatch).
	for _, du := range waiters {
		du.state = unitPending
		du.readyAt = now
		c.queue = append(c.queue, du)
	}
	if u.job.ctx.Err() != nil {
		c.counters.CellsCanceled++
		u.job.completeUnit(u, nil, u.job.ctx.Err(), now)
		return
	}
	reason := l.reason
	if reason == "" {
		reason = reasonRemote
		c.counters.DispatchErrors++
	}
	if u.attempts >= c.cfg.MaxAttempts {
		c.counters.BudgetExhausted++
		c.counters.CellsFailed++
		u.job.completeUnit(u, nil, fmt.Errorf("cell failed after %d dispatch attempts (last on %s: %s: %v)", u.attempts, l.w.addr, reason, err), now)
		return
	}
	u.state = unitPending
	u.requeues++
	u.job.retries++
	u.readyAt = now.Add(c.backoffDelay(u.attempts))
	c.queue = append(c.queue, u)
	c.counters.Requeues++
	u.job.publish(service.Event{
		Type: "requeue", Index: u.index, Desc: u.desc,
		Error: fmt.Sprintf("attempt %d on %s: %s: %v", u.attempts, l.w.addr, reason, err),
		Cells: len(u.job.units),
	})
	c.cfg.Logger.Printf("cluster: requeued %s[%d] after attempt %d on %s (%s: %v)", u.job.id, u.index, u.attempts, l.w.addr, reason, err)
}
