package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seesaw/internal/runner"
	"seesaw/internal/service"
	"seesaw/internal/sim"
	"seesaw/internal/store"
	"seesaw/internal/workload"
)

// fakeRun is a deterministic stand-in for the simulator: the report is a
// pure function of the config (hashed canonical key), so byte-identical
// merged tables are meaningful, and the optional delay keeps cells in
// flight long enough for chaos to land on them.
func fakeRun(delay time.Duration) runner.RunFunc {
	return func(ctx context.Context, cfg sim.Config) (*sim.Report, error) {
		if delay > 0 {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		key, _ := cfg.CanonicalKey()
		h := fnv.New64a()
		io.WriteString(h, key)
		v := h.Sum64()
		rep := &sim.Report{
			SchemaVersion: sim.SchemaVersion,
			Design:        "fake",
			Workload:      fmt.Sprintf("%+v", cfg.Workload)[:8],
			Cycles:        v % 1_000_000,
			Instructions:  v % 500_000,
			L1Hits:        v % 90_000,
			L1Misses:      v % 10_000,
			IPC:           float64(v%1000) / 1000,
		}
		return rep, nil
	}
}

// testWorker is one fake seesaw-served process: a real service.Server
// (healthz, /v1/cells/run, drain semantics) over an injected run
// function, behind an httptest listener and an optional chaos middleware.
type testWorker struct {
	svc  *service.Server
	ts   *httptest.Server
	addr string
	// wedgeNext, while positive, makes the next cell dispatches hang
	// without writing anything — the "hung worker" row of the failure
	// matrix: the connection stays open, no heartbeats flow.
	wedgeNext atomic.Int32
	// down, while set, fails every request — the "unhealthy worker" used
	// by the eviction/readmission test.
	down   atomic.Bool
	killed atomic.Bool
	quit   chan struct{} // closed on kill so wedged handlers unblock
}

func (tw *testWorker) kill() {
	if tw.killed.Swap(true) {
		return
	}
	close(tw.quit)
	tw.ts.CloseClientConnections()
	tw.ts.Close()
	tw.svc.Close()
}

// startWorker boots one fake worker. st may be shared across workers (the
// cluster's shared read-through store) or nil.
func startWorker(t *testing.T, run runner.RunFunc, st *store.Store) *testWorker {
	t.Helper()
	svc := service.New(service.Config{
		Workers: 2,
		Store:   st,
		Run:     run,
		Logger:  log.New(io.Discard, "", 0),
	})
	tw := &testWorker{svc: svc, quit: make(chan struct{})}
	inner := svc.Handler()
	tw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tw.down.Load() {
			http.Error(w, "chaos: down", http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/v1/cells/run" && tw.wedgeNext.Load() > 0 {
			tw.wedgeNext.Add(-1)
			select { // hang silently until the lease gives up
			case <-r.Context().Done():
			case <-tw.quit:
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	tw.addr = tw.ts.Listener.Addr().String()
	t.Cleanup(tw.kill)
	return tw
}

// startCoordinator boots a coordinator over the given workers.
func startCoordinator(t *testing.T, cfg Config, workers ...*testWorker) (*Coordinator, *httptest.Server) {
	t.Helper()
	for _, w := range workers {
		cfg.Workers = append(cfg.Workers, w.addr)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	c := New(cfg)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() { ts.Close(); c.Close() })
	return c, ts
}

// fastClusterConfig is tuned so lease expiry, eviction, and backoff all
// play out in milliseconds.
func fastClusterConfig() Config {
	return Config{
		LeaseTTL:     400 * time.Millisecond,
		MaxAttempts:  8,
		BackoffBase:  20 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		Seed:         1,
		ProbeEvery:   50 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		EvictAfter:   2,
	}
}

// sweepRequest builds a deterministic multi-signature cell matrix:
// designs x seeds over one workload, every cell warmed (so affinity
// routing engages), plus duplicate spellings of the first cell.
func sweepRequest(cells int) service.JobRequest {
	wl := workload.Names()[0]
	req := service.JobRequest{Label: "chaos"}
	for i := 0; i < cells; i++ {
		req.Cells = append(req.Cells, service.CellSpec{
			Workload:   wl,
			Cache:      []string{"seesaw", "baseline", "pipt"}[i%3],
			Seed:       int64(i / 3),
			Refs:       1000,
			WarmupRefs: 500,
		})
	}
	return req
}

func clientFor(ts *httptest.Server) *Client { return NewClient(ts.URL) }

// runSingleDaemon executes req on a plain one-process service and
// returns the per-cell reports as raw JSON — the reference table the
// cluster must reproduce byte-for-byte.
func runSingleDaemon(t *testing.T, req service.JobRequest, run runner.RunFunc) []json.RawMessage {
	t.Helper()
	svc := service.New(service.Config{Workers: 4, Run: run, Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	cl := clientFor(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("single-daemon submit: %v", err)
	}
	st, err = cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("single-daemon wait: %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("single-daemon job ended %s: %s", st.State, st.Error)
	}
	return reportTable(t, st)
}

// reportTable marshals each cell's report; a nil report fails the test.
func reportTable(t *testing.T, st service.JobStatus) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(st.Results))
	for i, r := range st.Results {
		if r.Status != "done" || r.Report == nil {
			t.Fatalf("cell %d not done: status=%s err=%s", i, r.Status, r.Error)
		}
		data, err := json.Marshal(r.Report)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

// TestClusterSweepMatchesSingleDaemon is the calm-weather contract: the
// same job through a 3-worker cluster and through one daemon produces
// byte-identical tables, duplicates piggyback, and the audit counters
// balance.
func TestClusterSweepMatchesSingleDaemon(t *testing.T) {
	run := fakeRun(2 * time.Millisecond)
	req := sweepRequest(24)
	// Exact duplicates of the first two cells: dup suppression or store
	// hits must resolve them without extra computes.
	req.Cells = append(req.Cells, req.Cells[0], req.Cells[1])
	want := runSingleDaemon(t, req, run)

	workers := []*testWorker{
		startWorker(t, run, nil),
		startWorker(t, run, nil),
		startWorker(t, run, nil),
	}
	c, ts := startCoordinator(t, fastClusterConfig(), workers...)
	cl := clientFor(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("cluster job ended %s: %s", st.State, st.Error)
	}
	got := reportTable(t, st)
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("cell %d diverged:\ncluster: %s\ndaemon:  %s", i, got[i], want[i])
		}
	}
	ct := c.Counters()
	if ct.CellsTotal != uint64(len(req.Cells)) || ct.CellsDone != ct.CellsTotal {
		t.Fatalf("cell accounting: %+v", ct)
	}
	if ct.DupHits == 0 {
		t.Fatalf("expected duplicate cells to piggyback, counters %+v", ct)
	}
	if ct.RemoteRuns+ct.DupHits+ct.StoreHits != ct.CellsTotal {
		t.Fatalf("resolution accounting: %+v", ct)
	}
	if ct.AffinityHits == 0 {
		t.Fatalf("warmed sweep should hit affinity routing, counters %+v", ct)
	}
}

// TestClusterChaos is the failure matrix end to end: a seeded schedule
// kills workers mid-cell, wedges dispatches (hang, no heartbeats), and
// registers replacements while an 8-worker sweep runs. The sweep must
// finish with zero lost cells, a merged table byte-identical to the
// single-daemon run, and every requeue accounted for in the counters.
func TestClusterChaos(t *testing.T) {
	run := fakeRun(8 * time.Millisecond)
	req := sweepRequest(48)
	want := runSingleDaemon(t, req, run)

	var workers []*testWorker
	for i := 0; i < 8; i++ {
		workers = append(workers, startWorker(t, run, nil))
	}
	// Two workers start wedge-prone: their next dispatches hang without
	// heartbeats until the lease expires — the hung-worker row.
	workers[0].wedgeNext.Store(2)
	workers[1].wedgeNext.Store(1)

	c, ts := startCoordinator(t, fastClusterConfig(), workers...)
	cl := clientFor(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos driver: a seeded schedule (the process-level analogue of the
	// simulator's internal/faults idiom) that kills live workers and
	// registers replacements while the sweep runs.
	var mu sync.Mutex
	live := append([]*testWorker(nil), workers...)
	rng := rand.New(rand.NewSource(42))
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		kills := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			switch rng.Intn(3) {
			case 0:
				mu.Lock()
				if kills < 3 && len(live) > 2 {
					i := rng.Intn(len(live))
					w := live[i]
					live = append(live[:i], live[i+1:]...)
					kills++
					mu.Unlock()
					w.kill() // crashed worker: every in-flight stream resets
					continue
				}
				mu.Unlock()
			case 1:
				if kills > 0 {
					w := startWorker(t, run, nil)
					mu.Lock()
					live = append(live, w)
					mu.Unlock()
					if err := c.Register(w.addr); err != nil {
						t.Error(err)
						return
					}
					kills--
				}
			}
		}
	}()

	st, err = cl.Wait(ctx, st.ID, 20*time.Millisecond)
	close(stop)
	chaos.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("chaos job ended %s: %s", st.State, st.Error)
	}

	// Zero lost cells, byte-identical table.
	got := reportTable(t, st)
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("cell %d diverged under chaos:\ncluster: %s\ndaemon:  %s", i, got[i], want[i])
		}
	}

	// Every requeue accounted for: requeues happen only when a lease
	// failed (expired, evicted, or errored), and every cell is resolved
	// exactly once.
	ct := c.Counters()
	if ct.CellsTotal != uint64(len(req.Cells)) || ct.CellsDone != ct.CellsTotal || ct.CellsFailed != 0 || ct.CellsCanceled != 0 {
		t.Fatalf("lost or failed cells: %+v", ct)
	}
	if ct.RemoteRuns+ct.DupHits+ct.StoreHits != ct.CellsTotal {
		t.Fatalf("resolution accounting: %+v", ct)
	}
	if ct.Requeues == 0 {
		t.Fatalf("chaos provoked no requeues (wedges + kills should): %+v", ct)
	}
	failedLeases := ct.LeasesExpired + ct.LeasesEvicted + ct.DispatchErrors
	if ct.Requeues+ct.BudgetExhausted > failedLeases {
		t.Fatalf("requeues (%d) + budget failures (%d) exceed failed leases (%d): %+v",
			ct.Requeues, ct.BudgetExhausted, failedLeases, ct)
	}
	if ct.LeasesExpired == 0 {
		t.Fatalf("wedged workers should expire leases: %+v", ct)
	}
	t.Logf("chaos counters: %+v", ct)
}

// TestClusterPoisonedCell: a cell that fails on every worker must burn
// its attempt budget (each failure requeued and backed off) and then
// fail alone — the rest of the job completes.
func TestClusterPoisonedCell(t *testing.T) {
	inner := fakeRun(time.Millisecond)
	run := func(ctx context.Context, cfg sim.Config) (*sim.Report, error) {
		if cfg.Seed == 13 {
			return nil, fmt.Errorf("poisoned cell")
		}
		return inner(ctx, cfg)
	}
	workers := []*testWorker{startWorker(t, run, nil), startWorker(t, run, nil)}
	cfg := fastClusterConfig()
	cfg.MaxAttempts = 3
	c, ts := startCoordinator(t, cfg, workers...)
	cl := clientFor(ts)

	wl := workload.Names()[0]
	req := service.JobRequest{Cells: []service.CellSpec{
		{Workload: wl, Seed: 1, Refs: 1000},
		{Workload: wl, Seed: 13, Refs: 1000},
		{Workload: wl, Seed: 2, Refs: 1000},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed || st.Failed != 1 {
		t.Fatalf("want failed job with 1 failed cell, got %s failed=%d err=%q", st.State, st.Failed, st.Error)
	}
	if st.Results[1].Status != "failed" || st.Results[0].Status != "done" || st.Results[2].Status != "done" {
		t.Fatalf("wrong cells failed: %+v", st.Results)
	}
	ct := c.Counters()
	if ct.BudgetExhausted != 1 || ct.CellsFailed != 1 {
		t.Fatalf("budget accounting: %+v", ct)
	}
	if want := uint64(cfg.MaxAttempts - 1); ct.Requeues != want {
		t.Fatalf("poisoned cell should requeue %d times, counters %+v", want, ct)
	}
}

// TestCoordinatorRestartResumesFromStore: kill the coordinator mid-sweep
// and start a fresh one over the same store and workers; resubmitting
// the sweep completes, with already-computed cells answered from the
// store instead of redispatched.
func TestCoordinatorRestartResumesFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Logger = log.New(io.Discard, "", 0)
	run := fakeRun(5 * time.Millisecond)
	workers := []*testWorker{startWorker(t, run, st), startWorker(t, run, st)}
	req := sweepRequest(24)

	c1 := New(Config{Store: st, Workers: []string{workers[0].addr, workers[1].addr},
		LeaseTTL: 400 * time.Millisecond, ProbeEvery: 50 * time.Millisecond,
		Logger: log.New(io.Discard, "", 0)})
	id, err := c1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until some cells have completed, then kill the coordinator
	// mid-sweep (leases in flight).
	deadline := time.Now().Add(20 * time.Second)
	for {
		stj, _ := c1.Status(id, false)
		if stj.Completed >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first coordinator made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c1.Close()

	c2, ts := startCoordinator(t, Config{Store: st, LeaseTTL: 400 * time.Millisecond,
		ProbeEvery: 50 * time.Millisecond}, workers...)
	cl := clientFor(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st2, err = cl.Wait(ctx, st2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateDone {
		t.Fatalf("resumed sweep ended %s: %s", st2.State, st2.Error)
	}
	ct := c2.Counters()
	if ct.StoreHits == 0 {
		t.Fatalf("restarted coordinator should resume from the store, counters %+v", ct)
	}
	if st2.Pool.StoreHits == 0 {
		t.Fatalf("job stats should surface store resumption: %+v", st2.Pool)
	}
}

// TestWorkerEvictionAndReadmission: a worker that stops answering is
// evicted after the failure threshold (its queued work survives) and
// readmitted when it recovers.
func TestWorkerEvictionAndReadmission(t *testing.T) {
	run := fakeRun(2 * time.Millisecond)
	w1, w2 := startWorker(t, run, nil), startWorker(t, run, nil)
	cfg := fastClusterConfig()
	c, ts := startCoordinator(t, cfg, w1, w2)

	w2.down.Store(true)
	waitFor(t, 5*time.Second, func() bool {
		for _, ws := range c.workerStatuses() {
			if ws.Addr == w2.addr && !ws.Healthy {
				return true
			}
		}
		return false
	}, "worker eviction")

	// The cluster still works with the evicted worker down.
	cl := clientFor(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, sweepRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || st.State != service.StateDone {
		t.Fatalf("sweep with evicted worker: state=%v err=%v", st.State, err)
	}

	w2.down.Store(false)
	waitFor(t, 5*time.Second, func() bool {
		for _, ws := range c.workerStatuses() {
			if ws.Addr == w2.addr && ws.Healthy {
				return true
			}
		}
		return false
	}, "worker readmission")
	ct := c.Counters()
	if ct.WorkersEvicted == 0 || ct.WorkersReadmitted == 0 {
		t.Fatalf("eviction accounting: %+v", ct)
	}
}

// TestClusterCancel: canceling a job settles every cell and releases the
// workers.
func TestClusterCancel(t *testing.T) {
	run := fakeRun(5 * time.Second) // cells effectively run forever
	w := startWorker(t, run, nil)
	c, ts := startCoordinator(t, fastClusterConfig(), w)
	cl := clientFor(ts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, sweepRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCanceled {
		t.Fatalf("want canceled, got %s", st.State)
	}
	waitFor(t, 5*time.Second, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.leases) == 0 && len(c.queue) == 0
	}, "lease cleanup after cancel")
	if ct := c.Counters(); ct.CellsCanceled == 0 {
		t.Fatalf("cancel accounting: %+v", ct)
	}
}

// TestClusterAdmission: the token bucket rate-limits submissions with
// 429 + Retry-After, and the client seam absorbs it.
func TestClusterAdmission(t *testing.T) {
	run := fakeRun(0)
	w := startWorker(t, run, nil)
	cfg := fastClusterConfig()
	cfg.RatePerSec = 0.5 // one token every 2s
	cfg.Burst = 1
	_, ts := startCoordinator(t, cfg, w)

	req := sweepRequest(2)
	body, _ := json.Marshal(req)
	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := post()
	io.Copy(io.Discard, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", r1.StatusCode)
	}
	r2 := post()
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: HTTP %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
