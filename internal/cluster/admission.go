package cluster

import (
	"sync"
	"time"
)

// tokenBucket is the submission admission controller: rate tokens/sec
// refill up to burst, one job submission costs one token, and an empty
// bucket yields the Retry-After hint the API surfaces with 429. It keeps
// its own lock and clock seam so it is testable in isolation and callers
// need not hold the coordinator mutex.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// take spends one token. When the bucket is empty it reports the wait
// until one accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
