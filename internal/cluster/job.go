package cluster

import (
	"context"
	"time"

	"seesaw/internal/machine"
	"seesaw/internal/service"
	"seesaw/internal/sim"
)

// Unit states. A unit is one cell of one job as the scheduler sees it.
const (
	unitPending  = iota // in the coordinator queue, dispatchable once readyAt passes
	unitWaiting         // parked behind an in-flight lease for the same canonical key
	unitInflight        // covered by a lease
	unitDone
	unitFailed
	unitCanceled
)

// unit is one schedulable cell. All fields are guarded by the
// coordinator's mutex.
type unit struct {
	job   *cjob
	index int
	spec  service.CellSpec
	cfg   sim.Config
	desc  string
	// key is the canonical cell identity ("" when the cell is not
	// canonicalizable and must never be deduplicated or cached).
	key string
	// sig/hasSig carry the warmup signature for affinity routing.
	sig    machine.WarmupSignature
	hasSig bool

	state    int
	attempts int       // dispatch attempts consumed
	requeues int       // leases that failed and were requeued
	readyAt  time.Time // earliest next dispatch (backoff)
}

// cjob mirrors the single-daemon job (internal/service.job) over the
// coordinator's unit queue: same states, same wire types, same SSE event
// history, plus cluster-only "requeue" events and per-job scheduling
// counters. Guarded by the coordinator's mutex.
type cjob struct {
	id    string
	label string
	units []*unit

	ctx    context.Context
	cancel context.CancelFunc

	state    string
	results  []service.CellResult
	done     int
	failed   int
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	// Per-job scheduling outcomes, reported as PoolStats in statuses.
	runs      uint64
	storeHits uint64
	dupHits   uint64
	retries   uint64

	events []service.Event
	subs   map[chan service.Event]struct{}
}

func newCJob(id, label string, cells int, parent context.Context, now time.Time) *cjob {
	ctx, cancel := context.WithCancel(parent)
	return &cjob{
		id: id, label: label,
		units:   make([]*unit, cells),
		ctx:     ctx,
		cancel:  cancel,
		state:   service.StateQueued,
		results: make([]service.CellResult, cells),
		created: now,
		subs:    make(map[chan service.Event]struct{}),
	}
}

// publish appends one event to the history and fans it out. Callers hold
// the coordinator mutex.
func (j *cjob) publish(ev service.Event) {
	ev.Seq = len(j.events) + 1
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: the live send is dropped, but the stream
			// handler replays from the history via Last-Event-ID, so
			// nothing is lost.
		}
	}
}

func (j *cjob) setState(state string, now time.Time) {
	if terminalState(j.state) {
		return
	}
	j.state = state
	switch state {
	case service.StateRunning:
		j.started = now
	case service.StateDone, service.StateFailed, service.StateCanceled:
		j.finished = now
	}
	typ := "state"
	if terminalState(state) {
		typ = "done"
	}
	j.publish(service.Event{Type: typ, State: state})
}

// completeUnit records one finished cell (done, failed, or canceled) and
// drives the job to its terminal state once every cell has settled.
// Callers hold the coordinator mutex; the unit must not already be
// settled.
func (j *cjob) completeUnit(u *unit, rep *sim.Report, err error, now time.Time) {
	r := &j.results[u.index]
	ev := service.Event{Type: "cell", Index: u.index, Desc: u.desc, Cells: len(j.units)}
	if err != nil {
		u.state = unitFailed
		if j.ctx.Err() != nil {
			u.state = unitCanceled
		}
		r.Status = "failed"
		r.Error = err.Error()
		j.failed++
		if j.errMsg == "" {
			j.errMsg = err.Error()
		}
		ev.Error = r.Error
	} else {
		u.state = unitDone
		r.Status = "done"
		r.Report = rep
		ev.OK = true
		if rep.Metrics != nil {
			ev.Refs = rep.Metrics.Refs
			ev.Epochs = len(rep.Metrics.Epochs)
		}
		ev.L1Hits, ev.L1Misses = rep.L1Hits, rep.L1Misses
	}
	j.done++
	ev.Completed = j.done
	j.publish(ev)
	if j.done == len(j.units) {
		switch {
		case j.ctx.Err() != nil:
			j.setState(service.StateCanceled, now)
		case j.failed > 0:
			j.setState(service.StateFailed, now)
		default:
			j.setState(service.StateDone, now)
		}
		j.cancel()
	}
}

// subscribe registers a live-event channel and returns the history
// snapshot taken atomically with the registration. Callers hold the
// coordinator mutex.
func (j *cjob) subscribe(ch chan service.Event) (history []service.Event) {
	history = append([]service.Event(nil), j.events...)
	if !terminalState(j.state) {
		j.subs[ch] = struct{}{}
	}
	return history
}

func (j *cjob) unsubscribe(ch chan service.Event) {
	delete(j.subs, ch)
}

// status snapshots the job in the single-daemon wire shape. Callers hold
// the coordinator mutex.
func (j *cjob) status(withResults bool) service.JobStatus {
	st := service.JobStatus{
		ID: j.id, Label: j.label, State: j.state,
		Cells: len(j.units), Completed: j.done, Failed: j.failed,
		Error: j.errMsg, Created: j.created,
		Pool: service.PoolStats{
			Submitted: uint64(len(j.units)),
			Runs:      j.runs,
			CacheHits: j.dupHits,
			Retries:   j.retries,
			Failures:  uint64(j.failed),
			StoreHits: j.storeHits,
		},
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if withResults {
		st.Results = append([]service.CellResult(nil), j.results...)
	}
	return st
}
