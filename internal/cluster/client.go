package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seesaw/internal/service"
)

// Client speaks the /v1/jobs API — served identically by one
// seesaw-served daemon and by a coordinator fronting a fleet, so every
// command-line tool takes an address and works against either. It bakes
// in the two client-side halves of the cluster's robustness story:
// submissions honor 429 + Retry-After instead of failing, and event
// streams auto-reconnect with Last-Event-ID so a dropped connection
// resumes exactly where it left off.
type Client struct {
	base string
	http *http.Client

	// SubmitAttempts bounds how many 429s one Submit absorbs before
	// giving up (default 8); MaxRetryAfter caps how long a single
	// Retry-After hint is honored (default 30s).
	SubmitAttempts int
	MaxRetryAfter  time.Duration
	// StreamAttempts bounds consecutive failed stream connections
	// (default 5); receiving any event resets the streak.
	StreamAttempts int

	// sleep is the wait seam (tests replace it to run instantly).
	sleep func(context.Context, time.Duration) error
}

// NewClient points a client at addr (host:port or http URL).
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base:           strings.TrimRight(base, "/"),
		http:           &http.Client{},
		SubmitAttempts: 8,
		MaxRetryAfter:  30 * time.Second,
		StreamAttempts: 5,
		sleep:          sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Submit posts one job. A 429 is not an error — the server is asking the
// client to pace itself — so Submit sleeps out the Retry-After hint and
// tries again, up to SubmitAttempts.
func (c *Client) Submit(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	var lastErr error
	for attempt := 0; attempt < c.SubmitAttempts; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return service.JobStatus{}, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			return service.JobStatus{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := retryAfter(resp, time.Second)
			if wait > c.MaxRetryAfter {
				wait = c.MaxRetryAfter
			}
			msg := drainError(resp)
			lastErr = fmt.Errorf("submit: HTTP 429: %s (retry in %s)", msg, wait)
			if err := c.sleep(ctx, wait); err != nil {
				return service.JobStatus{}, err
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return service.JobStatus{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, drainError(resp))
		}
		var st service.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return service.JobStatus{}, fmt.Errorf("submit: %w", err)
		}
		return st, nil
	}
	return service.JobStatus{}, fmt.Errorf("submit: rate-limited %d times: %w", c.SubmitAttempts, lastErr)
}

// Status fetches one job, with per-cell results when withResults.
func (c *Client) Status(ctx context.Context, id string, withResults bool) (service.JobStatus, error) {
	url := c.base + "/v1/jobs/" + id
	if !withResults {
		url += "?results=0"
	}
	var st service.JobStatus
	if err := c.getJSON(ctx, url, &st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}

// List fetches every job summary.
func (c *Client) List(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	if err := c.getJSON(ctx, c.base+"/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, fmt.Errorf("cancel: HTTP %d: %s", resp.StatusCode, drainError(resp))
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, err
	}
	return st, nil
}

// Wait polls until the job reaches a terminal state and returns its
// final status with results.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id, true)
		if err != nil {
			return service.JobStatus{}, err
		}
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return service.JobStatus{}, err
		}
	}
}

// Stream tails the job's SSE progress events, invoking fn for each, and
// returns once the terminal "done" event arrives. A dropped connection
// reconnects with Last-Event-ID set to the last event's sequence, so fn
// sees every event exactly once across reconnects.
func (c *Client) Stream(ctx context.Context, id string, fn func(service.Event)) error {
	lastSeq := 0
	fails := 0
	for {
		done, err := c.streamOnce(ctx, id, &lastSeq, fn)
		if done {
			return nil
		}
		if err != nil {
			var he *httpError
			if errors.As(err, &he) {
				return err // 404 and friends: reconnecting cannot help
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fails++
			if fails >= c.StreamAttempts {
				return fmt.Errorf("stream: giving up after %d failed connections: %w", fails, err)
			}
			if serr := c.sleep(ctx, time.Duration(fails)*500*time.Millisecond); serr != nil {
				return serr
			}
			continue
		}
		// Clean EOF without "done": the server went away mid-job;
		// reconnect and resume.
		fails = 0
	}
}

// streamOnce runs one stream connection. It advances *lastSeq as events
// arrive and reports done=true once the terminal event is delivered.
func (c *Client) streamOnce(ctx context.Context, id string, lastSeq *int, fn func(service.Event)) (done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return false, err
	}
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastSeq))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, &httpError{code: resp.StatusCode, msg: drainError(resp)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	seq, event, data := 0, "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			seq, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" {
				continue
			}
			var ev service.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return false, fmt.Errorf("stream: bad event: %w", err)
			}
			ev.Seq = seq
			if seq > *lastSeq {
				*lastSeq = seq
				fn(ev)
			}
			if ev.Type == "done" {
				return true, nil
			}
			seq, event, data = 0, "", ""
		}
	}
	return false, sc.Err()
}

// httpError is a non-200 stream response; not retriable.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return fmt.Sprintf("stream: HTTP %d: %s", e.code, e.msg) }

func (c *Client) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, drainError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// retryAfter parses the Retry-After header (seconds form), defaulting
// when absent or malformed.
func retryAfter(resp *http.Response, def time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return def
}

// drainError extracts the {"error": ...} body, or a truncated raw body.
func drainError(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err == nil && eb.Error != "" {
		return eb.Error
	}
	return strings.TrimSpace(string(raw))
}
