package evolve

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"seesaw/internal/runner"
	"seesaw/internal/store"
)

// testOptions is a tiny-but-real search: two workloads, fragmented
// memory, a few generations — small enough for the determinism tests to
// run the whole search several times.
func testOptions(log *bytes.Buffer) Options {
	return Options{
		Seed:        7,
		Population:  6,
		Generations: 3,
		Scenario: Scenario{
			Workloads:  []string{"redis", "mcf"},
			Frag:       0.6,
			Seed:       42,
			Refs:       6_000,
			WarmupRefs: 4_000,
		},
		Log: log,
	}
}

// newLocalEvaluator builds the evaluation stack the searches under test
// share with production: a laddered shared-warmup pool, optionally
// store-backed.
func newLocalEvaluator(st *store.Store) PoolEvaluator {
	var run runner.RunFunc
	var ls *runner.LadderStats
	if st != nil {
		run, ls = runner.LadderRun(st, 0)
	} else {
		run, ls = runner.LadderRun(nil, 0)
	}
	pool := runner.NewWithRunContext(2, run).WithLadderStats(ls)
	if st != nil {
		pool.WithStore(st)
	}
	return PoolEvaluator{Pool: pool}
}

func runSearch(t *testing.T, opts Options, ev Evaluator) *Result {
	t.Helper()
	s, err := New(opts, ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSearchDeterminism is the core reproducibility contract: two
// in-process runs with the same seed produce byte-identical generation
// logs and identical fronts.
func TestSearchDeterminism(t *testing.T) {
	var log1, log2 bytes.Buffer
	res1 := runSearch(t, testOptions(&log1), newLocalEvaluator(nil))
	res2 := runSearch(t, testOptions(&log2), newLocalEvaluator(nil))
	if log1.String() != log2.String() {
		t.Fatalf("generation logs differ:\n--- run 1\n%s--- run 2\n%s", log1.String(), log2.String())
	}
	if !frontsEqual(res1.Front, res2.Front) {
		t.Fatalf("fronts differ:\n%v\n%v", res1.Front, res2.Front)
	}
	if len(res1.Front) == 0 {
		t.Fatal("empty front")
	}
	if res1.Default.Genome.Key() != DefaultGenome().Key() {
		t.Fatalf("default genome missing from result: %+v", res1.Default)
	}
}

func frontsEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Genome != b[i].Genome || a[i].Obj != b[i].Obj || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestSearchResume kills a search at every generation boundary in turn
// and resumes it from the checkpoint, requiring the identical front.
// The resumed search shares the first run's store, so re-running the
// interrupted generation costs store hits, not fresh simulations.
func TestSearchResume(t *testing.T) {
	var wantLog bytes.Buffer
	wantStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wantOpts := testOptions(&wantLog)
	wantOpts.Checkpoint = wantStore
	want := runSearch(t, wantOpts, newLocalEvaluator(wantStore))

	for stopAfter := 1; stopAfter <= 2; stopAfter++ {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		// Phase 1: the full search, killed (context-canceled) after
		// stopAfter completed generations. The checkpoint left behind
		// is the one a SIGKILL mid-generation leaves, since checkpoints
		// are written at generation start.
		runPartialSearch(t, st, stopAfter)

		var resumeLog bytes.Buffer
		ropts := testOptions(&resumeLog)
		ropts.Checkpoint = st
		s, err := New(ropts, newLocalEvaluator(st))
		if err != nil {
			t.Fatal(err)
		}
		if !s.resumed {
			t.Fatalf("stopAfter=%d: search did not resume from checkpoint", stopAfter)
		}
		got, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !frontsEqual(got.Front, want.Front) {
			t.Fatalf("stopAfter=%d: resumed front differs\nwant %v\ngot  %v", stopAfter, want.Front, got.Front)
		}
	}
}

// runPartialSearch runs the standard test search against st but cancels
// it once `gens` generations have completed, leaving the checkpoint a
// kill at that point would leave.
func runPartialSearch(t *testing.T, st *store.Store, gens int) {
	t.Helper()
	opts := testOptions(&bytes.Buffer{})
	opts.Checkpoint = st
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	opts.Log = writerFunc(func(p []byte) (int, error) {
		done++
		if done >= gens {
			cancel() // aborts at the next generation's context check
		}
		return len(p), nil
	})
	s, err := New(opts, newLocalEvaluator(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); err == nil {
		t.Fatalf("partial search (gens=%d) ran to completion", gens)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestWarmStoreRerunIsFree re-runs an identical search against the
// first run's store: the second search must perform zero fresh
// simulations — every cell, baseline included, is a store hit.
func TestWarmStoreRerunIsFree(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := runSearch(t, testOptions(&bytes.Buffer{}), newLocalEvaluator(st))

	ev := newLocalEvaluator(st)
	second := runSearch(t, testOptions(&bytes.Buffer{}), ev)
	if !frontsEqual(first.Front, second.Front) {
		t.Fatal("warm-store re-run produced a different front")
	}
	if stats := ev.Pool.Stats(); stats.Runs != 0 {
		t.Fatalf("warm-store re-run performed %d fresh simulations, want 0", stats.Runs)
	}
}

// TestSearchBeatsDefault pins the headline acceptance: on the
// fragmented scenario the search finds a genome strictly Pareto-
// dominating the paper default.
func TestSearchBeatsDefault(t *testing.T) {
	var log bytes.Buffer
	opts := testOptions(&log)
	opts.Generations = 4
	res := runSearch(t, opts, newLocalEvaluator(nil))
	if !res.BestDominatesDefault {
		t.Fatalf("no evaluated genome dominates the paper default\nfront: %+v\ndefault: %+v\nlog:\n%s",
			res.Front, res.Default, log.String())
	}
}

// TestGenerationLogHasSources checks the dedup-visibility satellite:
// every generation line carries the evaluation-source counters.
func TestGenerationLogHasSources(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	runSearch(t, testOptions(&log), newLocalEvaluator(st))
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 generation lines, got %d:\n%s", len(lines), log.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "store ") || !strings.Contains(l, "fresh ") || !strings.Contains(l, "rung resumes") {
			t.Fatalf("generation line missing source counters: %s", l)
		}
	}
}

// TestMutationBoundedAndValid: mutants stay on the menus and validate;
// the operator prunes geometry-impossible steps instead of emitting
// them.
func TestMutationBoundedAndValid(t *testing.T) {
	opts := testOptions(&bytes.Buffer{})
	s, err := New(opts, newLocalEvaluator(nil))
	if err != nil {
		t.Fatal(err)
	}
	g := DefaultGenome()
	for i := 0; i < 500; i++ {
		g = s.mutate(g)
		if err := g.onMenus(); err != nil {
			t.Fatal(err)
		}
		if err := g.validate(opts.withDefaults().Scenario); err != nil {
			t.Fatalf("mutation produced invalid genome %s: %v", g.Key(), err)
		}
	}
}

// TestGenomeNormalization: the speculation threshold collapses to 0
// under non-counter policies so equivalent genomes share a key.
func TestGenomeNormalization(t *testing.T) {
	g := DefaultGenome()
	g.Sched = "always-fast"
	g.SpecThreshold = 8
	if n := g.normalize(); n.SpecThreshold != 0 {
		t.Fatalf("normalize kept threshold %d under %s", n.SpecThreshold, n.Sched)
	}
}

// TestCheckpointFingerprintGuards: a checkpoint from different options
// is not resumed.
func TestCheckpointFingerprintGuards(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(&bytes.Buffer{})
	opts.Checkpoint = st
	opts.CheckpointName = "shared"
	runSearch(t, opts, newLocalEvaluator(st))

	other := opts
	other.Seed = 99 // different trajectory
	s, err := New(other, newLocalEvaluator(st))
	if err != nil {
		t.Fatal(err)
	}
	if s.resumed {
		t.Fatal("resumed a checkpoint written by a different search")
	}
}
