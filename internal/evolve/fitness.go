package evolve

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"seesaw/internal/sim"
	"seesaw/internal/stats"
)

// Objectives is one genome's multi-objective fitness, reduced over the
// scenario's workloads. Speedup is better higher; the other three are
// better lower — dominance and Score both encode those directions.
type Objectives struct {
	// Speedup is the geomean over workloads of baseline-VIPT cycles /
	// SEESAW cycles against the fixed paper-default baseline.
	Speedup float64 `json:"speedup"`
	// MPKI is the mean translation misses — TLB walks plus TFT misses —
	// per kilo-instruction.
	MPKI float64 `json:"mpki"`
	// EnergyNJ is the mean dynamic energy of the run (internal/energy's
	// account, which prices L1/TLB/TFT lookups and coherence from the
	// internal/sram tables).
	EnergyNJ float64 `json:"energy_nj"`
	// AreaBytes is the per-core TFT SRAM area.
	AreaBytes float64 `json:"area_bytes"`
}

// dominates reports strict Pareto dominance: at least as good in every
// objective and strictly better in at least one.
func (o Objectives) dominates(p Objectives) bool {
	geq := o.Speedup >= p.Speedup && o.MPKI <= p.MPKI &&
		o.EnergyNJ <= p.EnergyNJ && o.AreaBytes <= p.AreaBytes
	gt := o.Speedup > p.Speedup || o.MPKI < p.MPKI ||
		o.EnergyNJ < p.EnergyNJ || o.AreaBytes < p.AreaBytes
	return geq && gt
}

// Weights scalarizes the objectives for selection pressure; the Pareto
// front is reported regardless, so the weights steer the search without
// deciding the final answer.
type Weights struct {
	Speedup float64 `json:"speedup"`
	MPKI    float64 `json:"mpki"`
	Energy  float64 `json:"energy"`
	Area    float64 `json:"area"`
}

// DefaultWeights leans on speedup, with translation misses and energy
// as secondary pressure and a small tax on area so the search does not
// simply buy the largest TFT on the menu.
func DefaultWeights() Weights {
	return Weights{Speedup: 1, MPKI: 0.25, Energy: 0.25, Area: 0.1}
}

// ParseWeights parses a "speedup=1,mpki=0.25,energy=0.25,area=0.1"
// flag; omitted keys keep their defaults.
func ParseWeights(s string) (Weights, error) {
	w := DefaultWeights()
	if s == "" {
		return w, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return w, fmt.Errorf("evolve: weight %q is not key=value", kv)
		}
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return w, fmt.Errorf("evolve: weight %q needs a non-negative number", kv)
		}
		switch k {
		case "speedup":
			w.Speedup = f
		case "mpki":
			w.MPKI = f
		case "energy":
			w.Energy = f
		case "area":
			w.Area = f
		default:
			return w, fmt.Errorf("evolve: unknown weight %q (want speedup, mpki, energy, area)", k)
		}
	}
	return w, nil
}

// Score scalarizes on log scales, so each weight prices a relative
// improvement rather than an absolute unit: +1% speedup trades against
// -1% energy at equal weights regardless of the magnitudes involved.
func (o Objectives) Score(w Weights) float64 {
	s := w.Speedup * math.Log(math.Max(o.Speedup, 1e-9))
	s -= w.MPKI * math.Log1p(math.Max(o.MPKI, 0))
	s -= w.Energy * math.Log(math.Max(o.EnergyNJ, 1e-9))
	s -= w.Area * math.Log(math.Max(o.AreaBytes, 1))
	return s
}

// Candidate pairs a genome with its measured objectives and scalar
// score — one row of the front.
type Candidate struct {
	Genome Genome     `json:"genome"`
	Obj    Objectives `json:"objectives"`
	Score  float64    `json:"score"`
}

// front filters candidates to the Pareto-optimal set, ordered by score
// (descending) with the genome key as the deterministic tie-break.
func front(cands []Candidate) []Candidate {
	var f []Candidate
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i != j && d.Obj.dominates(c.Obj) {
				dominated = true
				break
			}
		}
		if !dominated {
			f = append(f, c)
		}
	}
	sortCandidates(f)
	return f
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Score != cs[j].Score {
			return cs[i].Score > cs[j].Score
		}
		return cs[i].Genome.Key() < cs[j].Genome.Key()
	})
}

// Reduce folds a design's per-workload reports into the search's
// objective space against a matching slice of baseline VIPT reports
// (same workloads, same order). AreaBytes is left zero — it is a
// property of the genome, not the reports. Exported for consumers that
// re-evaluate found designs outside a search, like the evolve-best
// experiment.
func Reduce(reports, base []*sim.Report) (Objectives, error) {
	if len(reports) != len(base) {
		return Objectives{}, fmt.Errorf("evolve: Reduce: %d reports vs %d baselines", len(reports), len(base))
	}
	baseCycles := make([]float64, len(base))
	for i, b := range base {
		baseCycles[i] = float64(b.Cycles)
	}
	return reduce(reports, baseCycles), nil
}

// reduce folds per-workload reports into the genome's objectives.
// baseCycles is the fixed paper-default baseline, keyed like reports —
// by workload, in scenario order.
func reduce(reports []*sim.Report, baseCycles []float64) Objectives {
	var ratios, mpkis, energies []float64
	for i, r := range reports {
		ratios = append(ratios, baseCycles[i]/float64(r.Cycles))
		misses := float64(r.TLB.Walks) + float64(r.TFT.Lookups)*(1-r.TFT.HitRate)
		mpkis = append(mpkis, 1000*misses/float64(r.Instructions))
		energies = append(energies, r.EnergyTotalNJ)
	}
	return Objectives{
		Speedup:  stats.GeoMean(ratios),
		MPKI:     mean(mpkis),
		EnergyNJ: mean(energies),
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
