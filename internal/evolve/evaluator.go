package evolve

import (
	"seesaw/internal/runner"
	"seesaw/internal/sim"
)

// Future is the one thing the search needs from a submitted cell.
// *runner.Future satisfies it for local evaluation; the cluster
// evaluator's promises do for remote.
type Future interface {
	Wait() (*sim.Report, error)
}

// Evaluator is where the search's cells go. Submit must not block;
// Flush is the generation barrier — after it, every Wait on a
// previously returned future completes. Sources renders the one-line
// evaluation-source summary (store hits vs fresh runs vs ladder
// resumes) the generation log carries.
type Evaluator interface {
	Submit(cfg sim.Config) Future
	Flush()
	Sources() string
}

// PoolEvaluator adapts a runner.Pool — typically one built over
// LadderRun with a store attached, so identical genomes across
// generations and processes cost one simulation ever.
type PoolEvaluator struct {
	Pool *runner.Pool
}

// Submit implements Evaluator.
func (e PoolEvaluator) Submit(cfg sim.Config) Future { return e.Pool.Submit(cfg) }

// Flush implements Evaluator; pool cells run eagerly, so the waits
// themselves are the barrier.
func (e PoolEvaluator) Flush() {}

// Sources implements Evaluator.
func (e PoolEvaluator) Sources() string { return e.Pool.Stats().Sources() }
