package evolve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seesaw/internal/runner"
	"seesaw/internal/store"
)

// copyTree copies the checked-in fixture store into a scratch dir:
// resuming a search writes a fresh checkpoint back, and testdata must
// stay exactly as genlegacy produced it.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLegacyCheckpointResume pins checkpoint compatibility across the
// design-gene addition: the checked-in checkpoint was written before
// Genome had a Design field, so its population and ledger genomes carry
// no "design" key. Resuming must normalize them to the seesaw design,
// keep their pre-design-gene ledger keys (so no cell is re-evaluated),
// and match the options fingerprint computed by today's code.
func TestLegacyCheckpointResume(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy", "store", "checkpoints", "legacy-fixture.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	// Guard the guard: if the fixture were ever regenerated with current
	// code its genomes would serialize a design key and this test would
	// stop exercising the legacy path.
	if strings.Contains(string(raw), `"design"`) {
		t.Fatal("fixture checkpoint contains a design key — it no longer predates the design gene")
	}

	dir := t.TempDir()
	copyTree(t, filepath.Join("testdata", "legacy", "store"), dir)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// The exact options tools/genlegacy ran with: the fingerprint over
	// them must still match the one stored in the checkpoint.
	opts := Options{
		Seed: 7, Population: 4, Generations: 2,
		Scenario: Scenario{
			Workloads: []string{"redis"}, Frag: 0.4, Seed: 42, Refs: 2000,
		},
		Checkpoint:     st,
		CheckpointName: "legacy-fixture",
	}
	pool := runner.New(0).WithStore(st)
	search, err := New(opts, PoolEvaluator{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("search did not resume — the options fingerprint drifted from the pre-refactor one")
	}
	// The ledger rebuilt under legacy keys: the paper default keeps its
	// pre-design-gene key, and its genome normalized to seesaw.
	if got, want := res.Default.Genome.Key(), "tft16x1-part2-counter-t0-promo50000-splin0"; got != want {
		t.Errorf("default genome key = %q, want the legacy format %q", got, want)
	}
	if res.Default.Genome.Design != "seesaw" {
		t.Errorf("default genome design = %q, want normalized %q", res.Default.Genome.Design, "seesaw")
	}
	for _, c := range res.Front {
		if c.Genome.designOrDefault() != "seesaw" {
			t.Errorf("front genome %s resolved to design %q, want seesaw", c.Genome.Key(), c.Genome.designOrDefault())
		}
	}
	// Every cell the resumed search touched was served from the fixture
	// store or the rebuilt ledger — resuming must not re-simulate.
	if st := pool.Stats(); st.Runs != 0 {
		t.Errorf("resume re-ran %d cells; all should come from the store", st.Runs)
	}
}
