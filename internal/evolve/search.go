package evolve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"seesaw/internal/sim"
	"seesaw/internal/workload"
	"seesaw/internal/xrand"
)

// Scenario fixes everything the search is NOT allowed to move: which
// workloads the design must serve, how fragmented memory is, and the
// measurement window. Every genome is evaluated on exactly these cells.
type Scenario struct {
	// Workloads names the profiles a genome is scored on.
	Workloads []string
	// Frag is the memhog fraction fragmenting physical memory before
	// the workload maps its footprint — the regime SEESAW exists for.
	Frag float64
	// Seed is the workload/OS seed (not the search seed).
	Seed int64
	// Refs / WarmupRefs shape each cell's phases.
	Refs, WarmupRefs int
}

// config builds the scenario's base cell for one workload; the caller
// picks the design (Apply for a genome, KindBaseline for the fixed
// reference).
func (sc Scenario) config(name string) (sim.Config, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Workload:       p,
		Seed:           sc.Seed,
		Refs:           sc.Refs,
		WarmupRefs:     sc.WarmupRefs,
		MemhogFraction: sc.Frag,
	}, nil
}

// Options configures one search.
type Options struct {
	// Seed drives every stochastic decision (mutation, crossover,
	// tournament draws). Same seed, same scenario, same budget → byte-
	// identical generation logs and front.
	Seed int64
	// Population is the genomes per generation (minimum 2).
	Population int
	// Generations is the budget in generations.
	Generations int
	// MaxEvals, when > 0, additionally stops the search at the first
	// generation boundary where the ledger holds at least this many
	// distinct evaluated genomes.
	MaxEvals int
	// Weights steer selection; the front is reported regardless.
	Weights Weights
	// Scenario is what every genome is measured on.
	Scenario Scenario
	// Elite is how many best-by-score genomes survive unchanged into
	// the next generation (default 1).
	Elite int
	// TournamentK is the tournament size for parent selection
	// (default 3).
	TournamentK int
	// Log receives the per-generation summary lines (nil = discard).
	Log io.Writer
	// Checkpoint, when non-nil, persists search state at each
	// generation boundary under CheckpointName, and Run resumes from an
	// existing checkpoint whose options fingerprint matches.
	Checkpoint CheckpointStore
	// CheckpointName overrides the derived checkpoint name.
	CheckpointName string
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.Population < 2 {
		o.Population = 12
	}
	if o.Generations <= 0 {
		o.Generations = 8
	}
	if o.Weights == (Weights{}) {
		o.Weights = DefaultWeights()
	}
	if o.Elite <= 0 {
		o.Elite = 1
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	if len(o.Scenario.Workloads) == 0 {
		o.Scenario.Workloads = []string{"redis", "mcf"}
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// Result is the search's outcome.
type Result struct {
	// Front is the Pareto-optimal set over every genome evaluated,
	// best score first.
	Front []Candidate `json:"front"`
	// Best is the highest-scoring evaluated genome.
	Best Candidate `json:"best"`
	// Default is the paper-default genome's point, always evaluated.
	Default Candidate `json:"default"`
	// BestDominatesDefault reports whether some evaluated genome
	// strictly Pareto-dominates the paper default (not merely
	// out-scores it).
	BestDominatesDefault bool `json:"best_dominates_default"`
	// Generations and Evaluations are the consumed budget: generations
	// run (across resumes) and distinct genomes evaluated.
	Generations int `json:"generations"`
	Evaluations int `json:"evaluations"`
	// Pruned counts candidate genomes rejected by validation before
	// ever being simulated.
	Pruned int `json:"pruned"`
	// Resumed reports whether this run continued from a checkpoint.
	Resumed bool `json:"resumed"`
}

// Search carries one run's state. Construct with New, drive with Run.
type Search struct {
	opts Options
	ev   Evaluator

	rng *rand.Rand
	src *xrand.Source

	gen    int
	pop    []Genome
	ledger map[string]Candidate
	order  []string // ledger keys in first-evaluation order
	pruned int

	baseCycles []float64
	resumed    bool
}

// New prepares a search. If opts.Checkpoint holds a checkpoint for
// these options, the search resumes from it: population, RNG stream,
// and evaluation ledger are restored, so the continued run converges to
// the same front the uninterrupted run would have.
func New(opts Options, ev Evaluator) (*Search, error) {
	opts = opts.withDefaults()
	for _, w := range opts.Scenario.Workloads {
		if _, err := opts.Scenario.config(w); err != nil {
			return nil, err
		}
	}
	if err := DefaultGenome().validate(opts.Scenario); err != nil {
		return nil, fmt.Errorf("evolve: scenario rejects the default genome: %w", err)
	}
	s := &Search{
		opts:   opts,
		ev:     ev,
		ledger: make(map[string]Candidate),
	}
	s.rng, s.src = xrand.New(opts.Seed)
	if ok, err := s.loadCheckpoint(); err != nil {
		return nil, err
	} else if ok {
		s.resumed = true
		return s, nil
	}
	s.pop = s.initialPopulation()
	return s, nil
}

// initialPopulation seeds generation 0: the paper default first (so the
// comparison point is always evaluated), then bounded mutants of it.
func (s *Search) initialPopulation() []Genome {
	pop := []Genome{DefaultGenome()}
	for len(pop) < s.opts.Population {
		steps := 1 + len(pop)%3
		pop = append(pop, s.mutateN(DefaultGenome(), steps))
	}
	return pop
}

// Run executes the remaining generations and returns the front.
func (s *Search) Run(ctx context.Context) (*Result, error) {
	if err := s.evalBaselines(ctx); err != nil {
		return nil, err
	}
	for ; s.gen < s.opts.Generations; s.gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.saveCheckpoint(); err != nil {
			return nil, err
		}
		fresh, err := s.evalPopulation(ctx)
		if err != nil {
			return nil, err
		}
		f := s.currentFront()
		best := s.best()
		fmt.Fprintf(s.opts.Log,
			"gen %d: pop %d (%d new), ledger %d, pruned %d, front %d, best %.4f %s [speedup %.4f mpki %.3f energy %.0fnJ area %.0fB] | %s\n",
			s.gen, len(s.pop), fresh, len(s.ledger), s.pruned, len(f),
			best.Score, best.Genome.Key(), best.Obj.Speedup, best.Obj.MPKI,
			best.Obj.EnergyNJ, best.Obj.AreaBytes, s.ev.Sources())
		if s.opts.MaxEvals > 0 && len(s.ledger) >= s.opts.MaxEvals {
			s.gen++
			break
		}
		if s.gen < s.opts.Generations-1 {
			s.pop = s.nextPopulation()
		}
	}
	if err := s.saveCheckpoint(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// evalBaselines runs the fixed paper-default baseline-VIPT cell for
// each scenario workload — the denominator-free reference every
// genome's speedup is measured against. With a warm store these are
// store hits, never fresh simulations.
func (s *Search) evalBaselines(ctx context.Context) error {
	if s.baseCycles != nil {
		return nil
	}
	var futs []Future
	for _, w := range s.opts.Scenario.Workloads {
		cfg, err := s.opts.Scenario.config(w)
		if err != nil {
			return err
		}
		cfg.CacheKind = sim.KindBaseline
		futs = append(futs, s.ev.Submit(cfg))
	}
	s.ev.Flush()
	for i, f := range futs {
		if err := ctx.Err(); err != nil {
			return err
		}
		rep, err := f.Wait()
		if err != nil {
			return fmt.Errorf("evolve: baseline %s: %w", s.opts.Scenario.Workloads[i], err)
		}
		s.baseCycles = append(s.baseCycles, float64(rep.Cycles))
	}
	return nil
}

// evalPopulation measures every not-yet-evaluated genome in the current
// population and folds the results into the ledger. Submission and
// reduction follow population order, so the ledger's contents are
// independent of worker interleaving. Returns how many genomes were
// newly evaluated.
func (s *Search) evalPopulation(ctx context.Context) (int, error) {
	type pending struct {
		g    Genome
		futs []Future
	}
	var work []pending
	seen := make(map[string]bool)
	for _, g := range s.pop {
		k := g.Key()
		if _, done := s.ledger[k]; done || seen[k] {
			continue
		}
		seen[k] = true
		p := pending{g: g}
		for _, w := range s.opts.Scenario.Workloads {
			base, err := s.opts.Scenario.config(w)
			if err != nil {
				return 0, err
			}
			p.futs = append(p.futs, s.ev.Submit(g.Apply(base)))
		}
		work = append(work, p)
	}
	s.ev.Flush()
	for _, p := range work {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var reports []*sim.Report
		for i, f := range p.futs {
			rep, err := f.Wait()
			if err != nil {
				return 0, fmt.Errorf("evolve: genome %s on %s: %w",
					p.g.Key(), s.opts.Scenario.Workloads[i], err)
			}
			reports = append(reports, rep)
		}
		obj := reduce(reports, s.baseCycles)
		obj.AreaBytes = p.g.AreaBytes()
		k := p.g.Key()
		s.ledger[k] = Candidate{Genome: p.g, Obj: obj, Score: obj.Score(s.opts.Weights)}
		s.order = append(s.order, k)
	}
	return len(work), nil
}

// currentFront is the Pareto front over everything evaluated so far.
func (s *Search) currentFront() []Candidate {
	cands := make([]Candidate, 0, len(s.order))
	for _, k := range s.order {
		cands = append(cands, s.ledger[k])
	}
	return front(cands)
}

// best is the highest-scoring evaluated candidate (key tie-break).
func (s *Search) best() Candidate {
	var b Candidate
	first := true
	for _, k := range s.order {
		c := s.ledger[k]
		if first || c.Score > b.Score || (c.Score == b.Score && c.Genome.Key() < b.Genome.Key()) {
			b, first = c, false
		}
	}
	return b
}

// nextPopulation applies elitism, tournament selection, crossover, and
// bounded mutation to produce the next generation.
func (s *Search) nextPopulation() []Genome {
	scored := make([]Candidate, 0, len(s.pop))
	seen := make(map[string]bool)
	for _, g := range s.pop {
		k := g.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if c, ok := s.ledger[k]; ok {
			scored = append(scored, c)
		}
	}
	sortCandidates(scored)
	var next []Genome
	for i := 0; i < s.opts.Elite && i < len(scored); i++ {
		next = append(next, scored[i].Genome)
	}
	for len(next) < s.opts.Population {
		a := s.tournament(scored)
		b := s.tournament(scored)
		child := s.crossover(a, b)
		next = append(next, s.mutateN(child, 1))
	}
	return next
}

// tournament draws K members (with replacement) and returns the best.
func (s *Search) tournament(scored []Candidate) Genome {
	best := scored[s.rng.Intn(len(scored))]
	for i := 1; i < s.opts.TournamentK; i++ {
		c := scored[s.rng.Intn(len(scored))]
		if c.Score > best.Score || (c.Score == best.Score && c.Genome.Key() < best.Genome.Key()) {
			best = c
		}
	}
	return best.Genome
}

// crossover mixes two parents gene-by-gene (uniform crossover); an
// invalid child falls back to parent a, so the operator can never
// produce an unsimulatable genome.
func (s *Search) crossover(a, b Genome) Genome {
	child := a
	for gi, sp := range genes {
		if s.rng.Intn(2) == 1 {
			child = sp.set(child, genes[gi].get(b))
		}
	}
	child = child.normalize()
	if err := child.validate(s.opts.Scenario); err != nil {
		s.pruned++
		return a
	}
	return child
}

// mutateN applies n bounded mutations: each picks one gene and steps
// its menu index by ±1 (clamped at the ends). A step that lands on an
// invalid genome is pruned and redrawn, falling back to the unmutated
// genome after a bounded number of attempts — the search slows at walls
// of the design space, it never crashes into them.
func (s *Search) mutateN(g Genome, n int) Genome {
	for i := 0; i < n; i++ {
		g = s.mutate(g)
	}
	return g
}

func (s *Search) mutate(g Genome) Genome {
	const attempts = 8
	for try := 0; try < attempts; try++ {
		gi := s.rng.Intn(len(genes))
		sp := genes[gi]
		idx := sp.get(g)
		step := 1
		if s.rng.Intn(2) == 0 {
			step = -1
		}
		nidx := idx + step
		if nidx < 0 {
			nidx = idx - step
		} else if nidx >= sp.n {
			nidx = idx - step
		}
		if nidx < 0 || nidx >= sp.n || nidx == idx {
			continue
		}
		cand := sp.set(g, nidx).normalize()
		if err := cand.validate(s.opts.Scenario); err != nil {
			s.pruned++
			continue
		}
		return cand
	}
	return g
}

// result assembles the final Result.
func (s *Search) result() *Result {
	f := s.currentFront()
	def := s.ledger[DefaultGenome().Key()]
	dominates := false
	for _, c := range f {
		if c.Obj.dominates(def.Obj) {
			dominates = true
			break
		}
	}
	return &Result{
		Front:                f,
		Best:                 s.best(),
		Default:              def,
		BestDominatesDefault: dominates,
		Generations:          s.gen,
		Evaluations:          len(s.ledger),
		Pruned:               s.pruned,
		Resumed:              s.resumed,
	}
}

// sortedLedger returns the ledger as a key-sorted slice — the stable
// form checkpoints persist.
func (s *Search) sortedLedger() []Candidate {
	keys := make([]string, 0, len(s.ledger))
	for k := range s.ledger {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Candidate, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.ledger[k])
	}
	return out
}
