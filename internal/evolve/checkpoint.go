package evolve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"seesaw/internal/xrand"
)

// CheckpointStore is the slice of the disk store the search needs:
// named blobs written atomically. *store.Store implements it; tests
// substitute in-memory fakes.
type CheckpointStore interface {
	GetCheckpoint(name string) ([]byte, bool)
	PutCheckpoint(name string, blob []byte) error
}

// checkpointSchema versions the checkpoint encoding; a mismatch means
// the blob was written by different code and is ignored rather than
// misread.
const checkpointSchema = 1

// checkpointState is the JSON the search persists at every generation
// boundary: enough to resume mid-search to the byte-identical front.
// The evaluated cells themselves live in the content-addressed result
// store, so the ledger here is belt (fast resume, no re-reads) and the
// store is suspenders (a truncated ledger only costs store hits).
type checkpointState struct {
	Schema      int               `json:"schema"`
	Fingerprint string            `json:"fingerprint"`
	Generation  int               `json:"generation"`
	Population  []Genome          `json:"population"`
	RNG         xrand.SourceState `json:"rng"`
	Ledger      []Candidate       `json:"ledger"` // key-sorted
	Pruned      int               `json:"pruned"`
}

// fingerprint hashes every option that shapes the search's trajectory,
// so a checkpoint is only ever resumed into the exact search that wrote
// it; resuming with a different budget, scenario, or weights starts
// fresh instead of continuing an incompatible run.
func (o Options) fingerprint() string {
	h := sha256.New()
	ws := append([]string(nil), o.Scenario.Workloads...)
	sort.Strings(ws)
	fmt.Fprintf(h, "evolve-v%d|seed=%d|pop=%d|gens=%d|evals=%d|elite=%d|k=%d|w=%+v|frag=%g|wseed=%d|refs=%d|warmup=%d|loads=%v",
		checkpointSchema, o.Seed, o.Population, o.Generations, o.MaxEvals,
		o.Elite, o.TournamentK, o.Weights, o.Scenario.Frag, o.Scenario.Seed,
		o.Scenario.Refs, o.Scenario.WarmupRefs, ws)
	return hex.EncodeToString(h.Sum(nil))
}

// checkpointName is the blob name: explicit override, or one derived
// from the fingerprint so unrelated searches sharing a store directory
// never clobber each other's state.
func (o Options) checkpointName() string {
	if o.CheckpointName != "" {
		return o.CheckpointName
	}
	return "evolve-" + o.fingerprint()[:16]
}

// saveCheckpoint persists the search state; a no-op without a store.
func (s *Search) saveCheckpoint() error {
	if s.opts.Checkpoint == nil {
		return nil
	}
	st := checkpointState{
		Schema:      checkpointSchema,
		Fingerprint: s.opts.fingerprint(),
		Generation:  s.gen,
		Population:  s.pop,
		RNG:         s.src.State(),
		Ledger:      s.sortedLedger(),
		Pruned:      s.pruned,
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("evolve: checkpoint: %w", err)
	}
	if err := s.opts.Checkpoint.PutCheckpoint(s.opts.checkpointName(), blob); err != nil {
		return fmt.Errorf("evolve: checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint restores state from a matching checkpoint. ok=false
// (no error) when there is nothing usable to resume: no store, no blob,
// a different schema, or a different search's fingerprint.
func (s *Search) loadCheckpoint() (ok bool, err error) {
	if s.opts.Checkpoint == nil {
		return false, nil
	}
	blob, found := s.opts.Checkpoint.GetCheckpoint(s.opts.checkpointName())
	if !found {
		return false, nil
	}
	var st checkpointState
	if err := json.Unmarshal(blob, &st); err != nil {
		return false, nil // corrupt blob: start fresh, the store still dedups
	}
	if st.Schema != checkpointSchema || st.Fingerprint != s.opts.fingerprint() {
		return false, nil
	}
	if len(st.Population) == 0 {
		return false, nil
	}
	// Checkpoints written before the design gene existed carry genomes
	// with no design field; normalize resolves those to seesaw (and
	// canonicalizes any other redundant spellings) before the menu check
	// and the ledger rebuild key off them.
	for i, g := range st.Population {
		st.Population[i] = g.normalize()
		if err := st.Population[i].onMenus(); err != nil {
			return false, err
		}
	}
	if err := s.src.SetState(st.RNG); err != nil {
		return false, fmt.Errorf("evolve: checkpoint RNG: %w", err)
	}
	s.gen = st.Generation
	s.pop = st.Population
	s.pruned = st.Pruned
	s.ledger = make(map[string]Candidate, len(st.Ledger))
	s.order = s.order[:0]
	for _, c := range st.Ledger {
		c.Genome = c.Genome.normalize()
		k := c.Genome.Key()
		s.ledger[k] = c
		s.order = append(s.order, k)
	}
	return true, nil
}
