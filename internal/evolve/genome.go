// Package evolve is the design-space search layer: a deterministic,
// seeded evolutionary search over SEESAW's coupled knobs — TFT
// geometry, page-size partition split, speculation policy, and the OS
// promotion/splinter cadences — evaluated through the same warmed,
// laddered, content-addressed stack every figure uses. The paper
// samples a few points of this space; the search walks it, reporting a
// Pareto front over speedup, translation MPKI, dynamic energy, and
// SRAM area rather than a single scalar winner.
//
// Everything is reproducible by construction: one seeded RNG drives
// mutation, crossover, and selection; evaluation order is submission
// order; and the simulator itself is deterministic — so a search run
// twice with the same seed produces byte-identical generation logs and
// fronts, and a search killed mid-generation resumes from its
// checkpoint (see checkpoint.go) to the identical front.
package evolve

import (
	"errors"
	"fmt"

	"seesaw/internal/sim"
	"seesaw/internal/tft"
)

// Genome is one point of the design space: the sim.Config knobs the
// search is allowed to move. Everything else (workload, seed, cache
// size, fragmentation) is fixed by the Scenario, so two genomes differ
// only in design decisions, never in what they are asked to run.
type Genome struct {
	// Design names the registered L1 design the genome builds on. The
	// menu is derived from the design registry (every speculating
	// design, i.e. one with a fast/slow latency split the other genes
	// tune); "" is the legacy spelling of "seesaw", kept decodable so
	// pre-registry checkpoints resume. See normalize.
	Design string `json:"design,omitempty"`
	// TFTEntries / TFTAssoc size the translation filter table.
	TFTEntries int `json:"tft_entries"`
	TFTAssoc   int `json:"tft_assoc"`
	// Partitions is the SEESAW page-size partition count.
	Partitions int `json:"partitions"`
	// Sched is the speculation policy: "counter" (the paper's
	// quarter-full heuristic), "always-fast", or "always-slow".
	Sched string `json:"sched"`
	// SpecThreshold tunes the counter policy's trigger (0 = the paper's
	// quarter-full rule); forced to 0 under the other policies, where
	// the simulator ignores it, so equivalent genomes share one key.
	SpecThreshold int `json:"spec_threshold"`
	// PromoteEvery / SplinterEvery are the OS cadences in references:
	// how often the promotion scan runs, and how often (0 = never) the
	// OS splinters a superpage.
	PromoteEvery  int `json:"promote_every"`
	SplinterEvery int `json:"splinter_every"`
}

// The menus bound each gene to a short ordered list of sensible values,
// so mutation is a ±1 step along a menu rather than an unbounded jump.
// Some combinations are geometry-impossible (a 24-entry 2-way TFT has
// 12 sets; 8 partitions of a 32KB cache are 4KB sliver arrays the SRAM
// model has no row for) — those stay in the menus deliberately, and the
// mutator prunes them through sim.Config.Validate's typed errors.
var (
	// designMenu is drawn from the registry: every design with a
	// fast/slow latency split (Speculates) is a point the search may
	// move to, so landing a new design in the zoo automatically widens
	// the search space. designUsesTFT mirrors the registry's UsesTFT
	// flag for normalize. (Var initializers, not init(): the genes table
	// below sizes itself off designMenu during var initialization.)
	designMenu = func() []string {
		var names []string
		for _, d := range sim.DesignInfos() {
			if d.Speculates {
				names = append(names, string(d.Name))
			}
		}
		return names
	}()
	designUsesTFT = func() map[string]bool {
		m := map[string]bool{}
		for _, d := range sim.DesignInfos() {
			m[string(d.Name)] = d.UsesTFT
		}
		return m
	}()

	tftEntriesMenu    = []int{8, 12, 16, 20, 24, 32, 48, 64}
	tftAssocMenu      = []int{1, 2, 4}
	partitionsMenu    = []int{2, 4, 8}
	schedMenu         = []string{"counter", "always-fast", "always-slow"}
	specThresholdMenu = []int{0, 1, 2, 4, 8, 16}
	promoteEveryMenu  = []int{10_000, 25_000, 50_000, 100_000, 200_000}
	splinterEveryMenu = []int{0, 50_000, 200_000}
)

// DefaultGenome is the paper's configuration: 16-entry direct-mapped
// TFT, 4-way partitions (2 partitions of the 8-way 32KB L1), the
// quarter-full counter policy, and the simulator's default OS cadences.
// It seeds generation 0 and is the comparison point for "does the
// search beat the paper".
func DefaultGenome() Genome {
	return Genome{
		Design:        "seesaw",
		TFTEntries:    16,
		TFTAssoc:      1,
		Partitions:    2,
		Sched:         "counter",
		SpecThreshold: 0,
		PromoteEvery:  50_000,
		SplinterEvery: 0,
	}
}

// genes maps the genome onto a uniform index space so the operators
// need no per-field code: every gene is "an index into its menu".
type geneSpec struct {
	name string
	n    int
	get  func(Genome) int
	set  func(Genome, int) Genome
}

func intGene(name string, menu []int, get func(Genome) int, set func(*Genome, int)) geneSpec {
	return geneSpec{
		name: name,
		n:    len(menu),
		get:  func(g Genome) int { return indexOf(menu, get(g)) },
		set: func(g Genome, i int) Genome {
			set(&g, menu[i])
			return g
		},
	}
}

var genes = []geneSpec{
	{
		name: "design",
		n:    len(designMenu),
		get:  func(g Genome) int { return indexOfString(designMenu, g.designOrDefault()) },
		set: func(g Genome, i int) Genome {
			g.Design = designMenu[i]
			return g
		},
	},
	intGene("tft-entries", tftEntriesMenu,
		func(g Genome) int { return g.TFTEntries },
		func(g *Genome, v int) { g.TFTEntries = v }),
	intGene("tft-assoc", tftAssocMenu,
		func(g Genome) int { return g.TFTAssoc },
		func(g *Genome, v int) { g.TFTAssoc = v }),
	intGene("partitions", partitionsMenu,
		func(g Genome) int { return g.Partitions },
		func(g *Genome, v int) { g.Partitions = v }),
	{
		name: "sched",
		n:    len(schedMenu),
		get:  func(g Genome) int { return indexOfString(schedMenu, g.Sched) },
		set: func(g Genome, i int) Genome {
			g.Sched = schedMenu[i]
			return g
		},
	},
	intGene("spec-threshold", specThresholdMenu,
		func(g Genome) int { return g.SpecThreshold },
		func(g *Genome, v int) { g.SpecThreshold = v }),
	intGene("promote-every", promoteEveryMenu,
		func(g Genome) int { return g.PromoteEvery },
		func(g *Genome, v int) { g.PromoteEvery = v }),
	intGene("splinter-every", splinterEveryMenu,
		func(g Genome) int { return g.SplinterEvery },
		func(g *Genome, v int) { g.SplinterEvery = v }),
}

func indexOf(menu []int, v int) int {
	for i, m := range menu {
		if m == v {
			return i
		}
	}
	return -1
}

func indexOfString(menu []string, v string) int {
	for i, m := range menu {
		if m == v {
			return i
		}
	}
	return -1
}

// designOrDefault resolves the legacy empty spelling: genomes written
// before the design gene existed are seesaw genomes.
func (g Genome) designOrDefault() string {
	if g.Design == "" {
		return "seesaw"
	}
	return g.Design
}

// normalize canonicalizes redundant encodings so behaviourally
// identical genomes share one key (and therefore one evaluation): the
// legacy empty design is seesaw, the speculation threshold only exists
// under the counter policy, and the TFT genes only exist on designs
// that have a TFT (VESPA takes the page size from the TLB, so two
// VESPA genomes differing only in TFT geometry run the same machine).
func (g Genome) normalize() Genome {
	g.Design = g.designOrDefault()
	if g.Sched != "counter" {
		g.SpecThreshold = 0
	}
	if !designUsesTFT[g.Design] {
		d := DefaultGenome()
		g.TFTEntries, g.TFTAssoc = d.TFTEntries, d.TFTAssoc
	}
	return g
}

// onMenus reports whether every gene value is drawn from its menu —
// the well-formedness a checkpoint or hand-written genome must satisfy
// before the index-space operators can touch it.
func (g Genome) onMenus() error {
	for _, sp := range genes {
		if sp.get(g) < 0 {
			return fmt.Errorf("evolve: genome %s has an off-menu %s", g.Key(), sp.name)
		}
	}
	return nil
}

// Key is the genome's compact identity, used in logs, the ledger, and
// tie-breaking. Distinct genomes have distinct keys. Seesaw genomes
// keep the pre-design-gene format, so ledgers in old checkpoints rebuild
// under the same keys; other designs prefix their name.
func (g Genome) Key() string {
	base := fmt.Sprintf("tft%dx%d-part%d-%s-t%d-promo%d-splin%d",
		g.TFTEntries, g.TFTAssoc, g.Partitions, g.Sched,
		g.SpecThreshold, g.PromoteEvery, g.SplinterEvery)
	if d := g.designOrDefault(); d != "seesaw" {
		return d + "-" + base
	}
	return base
}

// Apply overlays the genome's knobs on a scenario base config and
// selects the genome's design.
func (g Genome) Apply(base sim.Config) sim.Config {
	base.CacheKind = sim.CacheKind(g.designOrDefault())
	base.TFT = tft.Config{Entries: g.TFTEntries, Assoc: g.TFTAssoc}
	base.Partitions = g.Partitions
	base.SchedulerAlwaysFast = g.Sched == "always-fast"
	base.SchedulerAlwaysSlow = g.Sched == "always-slow"
	base.SpecFastThreshold = g.SpecThreshold
	base.PromoteScanEvery = g.PromoteEvery
	base.SplinterEvery = g.SplinterEvery
	return base
}

// AreaBytes is the genome's SRAM area objective, from the design
// registry's area hook: the side structures beyond the L1 storage array
// (SEESAW's TFT — 43-bit region tags, the paper's 86-byte default; zero
// for VESPA, which has none). The other structures the genome moves
// (partition select, scheduler policy) are control logic, not arrays.
func (g Genome) AreaBytes() float64 {
	return float64(g.Apply(sim.Config{}).DesignAreaBytes())
}

// validate prunes a candidate genome against a scenario: sched must be
// a known policy and the resulting config must pass sim.Config.Validate
// for every scenario workload. The typed *sim.ConfigError rules are
// what make this cheap and observable — the mutator counts them
// instead of crashing a worker on an impossible geometry.
func (g Genome) validate(sc Scenario) error {
	if indexOfString(designMenu, g.designOrDefault()) < 0 {
		return fmt.Errorf("evolve: design %q is not on the search menu %v", g.designOrDefault(), designMenu)
	}
	if indexOfString(schedMenu, g.Sched) < 0 {
		return fmt.Errorf("evolve: unknown sched policy %q", g.Sched)
	}
	for _, w := range sc.Workloads {
		base, err := sc.config(w)
		if err != nil {
			return err
		}
		if err := g.Apply(base).Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ruleOf extracts the machine-readable rule from a validation
// rejection, or "" for untyped (constructor-level) errors.
func ruleOf(err error) sim.Rule {
	var cerr *sim.ConfigError
	if errors.As(err, &cerr) {
		return cerr.Rule
	}
	return ""
}
